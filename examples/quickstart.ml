(* Quickstart: the "helloworld" sandbox of the paper's artifact (E2),
   end to end on the public API.

   A CVM is assembled, EREBOR-MONITOR is installed and verifies/boots the
   kernel, a client attests the monitor and opens a secure channel, data
   flows into an EREBOR-SANDBOX, a tiny "service" produces 0x41…41 ("AA…A"),
   and the result comes back encrypted while the untrusted proxy sees only
   ciphertext.

   Run with:  dune exec examples/quickstart.exe *)

let hw_key = Crypto.Sha256.digest_string "example hardware key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Syscall; Hw.Isa.Ret ] };
      ];
  }

let () =
  (* 1. The confidential VM: memory, a core, the TDX module, the host. *)
  let mem = Hw.Phys_mem.create ~frames:16384 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);

  (* 2. Stage-one boot: only firmware + monitor are measured into MRTD. *)
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  print_endline "[boot] monitor installed and measured";

  (* 3. Stage-two boot: the kernel image is byte-scanned, then booted with
     every sensitive instruction delegated through EMC gates. *)
  let kern =
    match
      Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128
        ~cma_frames:2048
    with
    | Ok kern -> kern
    | Error e -> failwith e
  in
  Printf.printf "[boot] kernel verified and booted (EMCs so far: %d)\n"
    (Erebor.Monitor.emc_total monitor);

  (* 4. A sandbox with a LibOS runtime. *)
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox mgr ~name:"helloworld" ~confined_budget:(64 * 4096))
  in
  let libos =
    Result.get_ok
      (Libos.boot ~mgr ~sb ~heap_bytes:(32 * 4096) ~threads:2
         ~preload:[ ("/app/helloworld", Bytes.of_string "program image") ])
  in
  Printf.printf "[sandbox] id=%d confined=%dKiB threads=%d\n" (Erebor.Sandbox.id sb)
    (Erebor.Sandbox.confined_bytes sb / 1024)
    (Libos.thread_count libos);

  (* 5. The remote client attests the monitor and opens a secure channel
     over the untrusted proxy wire. *)
  let rng_client = Crypto.Drbg.create ~seed:"client" in
  let rng_monitor = Crypto.Drbg.create ~seed:"monitor" in
  let expected_mrtd =
    (Erebor.Monitor.tdreport monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client =
    Erebor.Channel.Client.create ~rng:rng_client ~hw_key ~expected_mrtd
  in
  let wire = Erebor.Channel.Wire.create () in
  Erebor.Channel.Wire.send wire (Erebor.Channel.Client.hello client);
  let server, server_hello =
    Result.get_ok
      (Erebor.Channel.Server.accept ~monitor ~rng:rng_monitor
         ~client_hello:(Option.get (Erebor.Channel.Wire.recv wire)))
  in
  Erebor.Channel.Wire.send wire server_hello;
  (match
     Erebor.Channel.Client.finish client
       ~server_hello:(Option.get (Erebor.Channel.Wire.recv wire))
   with
  | Ok () -> print_endline "[channel] attestation verified, session keys derived"
  | Error e -> failwith e);

  (* 6. Client data travels encrypted; the monitor installs the plaintext
     into confined memory and seals the sandbox. *)
  let secret = Bytes.of_string "the client's secret input" in
  Erebor.Channel.Wire.send wire (Erebor.Channel.Client.seal_request client secret);
  let plaintext =
    Result.get_ok
      (Erebor.Channel.Server.open_request server (Option.get (Erebor.Channel.Wire.recv wire)))
  in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb plaintext));
  print_endline "[monitor] client data installed; sandbox sealed";

  (* 7. The sandboxed "program": read the input through the LibOS ioctl
     channel, work, emit 0x41…41 like the artifact's helloworld. *)
  let input = Result.get_ok (Libos.recv_input libos) in
  Printf.printf "[program] received %d bytes of client data\n" (Bytes.length input);
  Result.get_ok (Libos.send_output libos (Bytes.make 10 'A'));

  (* 8. The monitor pads and seals the response; the client decrypts it. *)
  let raw = Erebor.Sandbox.take_output mgr sb in
  Erebor.Channel.Wire.send wire
    (Erebor.Channel.Server.seal_response server ~bucket:256 raw);
  (match
     Erebor.Channel.Client.open_response client
       (Option.get (Erebor.Channel.Wire.recv wire))
   with
  | Ok result -> Printf.printf "[client] result: %s\n" (Bytes.to_string result)
  | Error e -> failwith e);

  (* 9. Did the untrusted proxy learn anything? *)
  let leaked =
    List.exists
      (fun msg ->
        let s = Bytes.to_string msg in
        let contains needle =
          let n = String.length needle and l = String.length s in
          let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
          go 0
        in
        contains "secret" || contains "AAAAAAAAAA")
      (Erebor.Channel.Wire.snoop wire)
  in
  Printf.printf "[wire] plaintext visible to the proxy: %b\n" leaked;

  (* 10. Session over: confined memory is zeroed and released. *)
  Erebor.Sandbox.terminate mgr sb;
  Printf.printf "[done] sandbox terminated and scrubbed; total EMCs: %d\n"
    (Erebor.Monitor.emc_total monitor)
