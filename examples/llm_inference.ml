(* LLM inference in a sandbox — the paper's headline scenario and artifact
   experiment E3 (llama.cpp). The same workload runs twice: natively, then
   inside full Erebor, mirroring run-tests-native.sh / run-tests-erebor-demo.sh.

   Run with:  dune exec examples/llm_inference.exe *)

let describe label (r : Sim.Machine.run_result) =
  let s = r.Sim.Machine.stats in
  Printf.printf "\n--- %s ---\n" label;
  Printf.printf "inference output (%d bytes):\n  %s\n"
    (Bytes.length r.Sim.Machine.output)
    (String.concat "\n  "
       (String.split_on_char '\n' (Bytes.to_string r.Sim.Machine.output)));
  Printf.printf
    "exec: %.2fs virtual | #PF %.0f/s | #Timer %.0f/s | #VE %.0f/s | EMC %.1fk/s\n"
    (Hw.Cycles.to_seconds r.Sim.Machine.run_cycles
    *. float_of_int Workloads.Workload.time_scale)
    (Sim.Stats.pf_rate s) (Sim.Stats.timer_rate s) (Sim.Stats.ve_rate s)
    (Sim.Stats.emc_rate s /. 1000.0);
  (match r.Sim.Machine.killed with
  | Some reason -> Printf.printf "sandbox killed: %s\n" reason
  | None -> ());
  r.Sim.Machine.run_cycles

let () =
  print_endline "LLM inference service (llama.cpp scenario, Table 5)";
  print_endline "model: shared 4 GiB common instance; KV cache: confined memory";

  let native =
    describe "native CVM (no protection)"
      (Sim.Machine.run_fresh ~setting:Sim.Config.Native (Workloads.Llm.spec ()))
  in
  let erebor =
    describe "full Erebor sandbox"
      (Sim.Machine.run_fresh ~setting:Sim.Config.Erebor_full (Workloads.Llm.spec ()))
  in
  Printf.printf "\nruntime overhead of the sandbox: %.2f%%  (paper: 13.15%%)\n"
    (100.0 *. ((float_of_int erebor /. float_of_int native) -. 1.0));

  (* The inference itself is a real (if tiny) language model: *)
  let model = Workloads.Llm.default_model in
  Printf.printf "\n(the stand-in model knows %d n-gram contexts)\n"
    (Workloads.Llm.Model.contexts model)
