(* Fleet deployment: everything §9.2 and §11 talk about in one place — a
   warm-start pool of sandboxes sharing one model instance, side-channel
   mitigations armed, serving a stream of clients.

   Run with:  dune exec examples/fleet.exe *)

let hw_key = Crypto.Sha256.digest_string "example hardware key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

let () =
  print_endline "Multi-tenant fleet: warm pool + shared model + mitigations";
  let mem = Hw.Phys_mem.create ~frames:131072 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128
         ~cma_frames:32768)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in

  (* Harden every sandbox exit (§11). *)
  Erebor.Sandbox.set_mitigations mgr Erebor.Mitigations.paranoid;
  print_endline "[fleet] mitigations armed: rate limit + quantized output + flush";

  (* Pre-warm four ready sandboxes (§9.2 warm start). *)
  let t0 = Hw.Cycles.now clock in
  let pool =
    Result.get_ok
      (Sim.Pool.create ~mgr ~name_prefix:"tenant" ~heap_bytes:(256 * 4096) ~threads:4
         ~size:4 ())
  in
  Printf.printf "[fleet] pre-warmed 4 sandboxes in %.2f ms of guest time\n"
    (1000.0 *. Hw.Cycles.to_seconds (Hw.Cycles.now clock - t0));

  (* One shared model instance across the whole fleet. *)
  let model_bytes = 2048 * 4096 in
  let serve i prompt =
    let t_start = Hw.Cycles.now clock in
    let entry = Result.get_ok (Sim.Pool.acquire pool) in
    let sb = entry.Sim.Pool.sb and libos = entry.Sim.Pool.libos in
    let model_base =
      Result.get_ok (Erebor.Sandbox.attach_common mgr sb ~name:"model" ~size:model_bytes)
    in
    (* The tenant streams part of the model: frames materialize once and are
       shared by everyone after. *)
    (match
       Kernel.populate kern (Erebor.Sandbox.main_task sb) ~start:model_base
         ~len:(64 * 4096)
     with
    | Ok () -> ()
    | Error e -> failwith e);
    ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string prompt)));
    let input = Result.get_ok (Libos.recv_input libos) in
    Result.get_ok
      (Libos.send_output libos
         (Bytes.of_string (Printf.sprintf "tenant-%d processed %d bytes" i (Bytes.length input))));
    let answer = Erebor.Sandbox.take_output mgr sb in
    Erebor.Sandbox.terminate mgr sb;
    Printf.printf "[client %d] %-32s  (time-to-answer %.2f ms, warm=%b)\n" i
      (Bytes.to_string answer)
      (1000.0 *. Hw.Cycles.to_seconds (Hw.Cycles.now clock - t_start))
      (Sim.Pool.cold_boots pool = 0 || i <= 4)
  in
  List.iteri (fun i prompt -> serve (i + 1) prompt)
    [ "analyze my records"; "translate this"; "classify these logs";
      "summarize the report"; "one more than the pool held" ];
  Printf.printf "[fleet] warm hits: %d, cold boots: %d\n" (Sim.Pool.warm_hits pool)
    (Sim.Pool.cold_boots pool);
  Printf.printf "[fleet] model frames shared across tenants: %d\n"
    (Erebor.Sandbox.common_instance_frames mgr ~name:"model");
  match Erebor.Sandbox.mitigation_stats mgr with
  | Some (stalls, stall_cycles, flushes) ->
      Printf.printf "[fleet] mitigation activity: %d stalls (%d cycles), %d flushes\n"
        stalls stall_cycles flushes
  | None -> ()
