(* Fleet deployment: everything §9.2 and §11 talk about in one place — a
   warm-start pool of sandboxes sharing one model instance, side-channel
   mitigations armed, serving a stream of clients over the attested channel.

   Every client request mints a trace context at the channel client; the
   context travels inside the sealed request header, so the collector can
   assemble a cross-machine causal tree (client segment + fleet segment)
   per request. Every completed request is also recorded into a fleet
   aggregator part (mergeable quantile sketch + per-tenant heavy hitters +
   tail exemplars), and the run finishes with the fleet telemetry panel.
   With --audit FILE the monitor's security decisions are written as a
   hash-chained log that `erebor_sim audit verify` checks; with
   --record FILE the fleet machine's event stream is journaled and each
   exemplar carries the journal frame offset of its request, resolvable
   offline with `erebor_sim journal topk FILE --offset N`.

   Run with:  dune exec examples/fleet.exe -- [--audit FILE] [--trace FILE]
                                              [--record FILE]
*)

module C = Workloads.Cli

let hw_key = Crypto.Sha256.digest_string "example hardware key"

(* Same derivation as bin/erebor_sim.ml, so `erebor_sim audit verify`
   accepts the chain this example writes. *)
let audit_key = Crypto.Sha256.digest_string "erebor-sim audit key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

let audit_flag =
  C.flag ~docv:"FILE" [ "--audit" ]
    "Record every monitor security decision in a hash-chained audit log \
     and write it (JSONL) on exit; check offline with audit verify."

let trace_flag =
  C.flag ~docv:"FILE" [ "--trace" ]
    "Write the last request's cross-machine causal tree as a Chrome-trace \
     JSON file."

let record_flag =
  C.flag ~docv:"FILE" [ "--record" ]
    "Journal the fleet machine's event stream (flight recorder); fleet \
     exemplars then carry resolvable journal frame offsets."

let main p =
  print_endline "Multi-tenant fleet: warm pool + shared model + mitigations";
  let audit_file = C.str p audit_flag in
  let trace_file = C.str p trace_flag in
  let record_file = C.str p record_flag in
  let mem = Hw.Phys_mem.create ~frames:131072 in
  let clock = Hw.Cycles.clock () in
  let now () = Hw.Cycles.now clock in

  (* Two emitters: the fleet machine's (carried by its CPU, where the
     monitor audits and emits spans) and one standing in for the remote
     client machine. A single collector watches both. *)
  let obs_fleet = Obs.Emitter.create () in
  let obs_client = Obs.Emitter.create () in
  (* The journal writer attaches first so it records boot too. *)
  let journal =
    match record_file with
    | None -> None
    | Some path ->
        let w =
          Obs.Journal.Writer.create ~meta:[ ("example", "fleet") ] ~path ()
        in
        Obs.Journal.Writer.attach ~machine:"fleet" w obs_fleet;
        Some w
  in
  let requests = Obs.Request.create () in
  Obs.Request.attach requests ~machine:"fleet" obs_fleet;
  Obs.Request.attach requests ~machine:"client" obs_client;
  (* The fleet aggregator part: per-tenant latency sketches, (tenant x
     kind) heavy hitters, tail exemplars. In a real fleet one part lives
     on every machine and the sealed parts merge order-invariantly. *)
  let part = Obs.Agg.part ~machine:"fleet" () in
  ignore (Obs.Agg.attach obs_fleet part);
  (match audit_file with
  | Some _ ->
      Obs.Emitter.set_audit obs_fleet
        (Some (Obs.Audit.create ~key:audit_key))
  | None -> ());

  let cpu =
    Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 ~obs:obs_fleet ()
  in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128
         ~cma_frames:32768)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in

  (* Harden every sandbox exit (§11). *)
  Erebor.Sandbox.set_mitigations mgr Erebor.Mitigations.paranoid;
  print_endline "[fleet] mitigations armed: rate limit + quantized output + flush";

  (* Pre-warm four ready sandboxes (§9.2 warm start). *)
  let t0 = now () in
  let pool =
    Result.get_ok
      (Sim.Pool.create ~mgr ~name_prefix:"tenant" ~heap_bytes:(256 * 4096) ~threads:4
         ~size:4 ())
  in
  Printf.printf "[fleet] pre-warmed 4 sandboxes in %.2f ms of guest time\n"
    (1000.0 *. Hw.Cycles.to_seconds (now () - t0));

  let expected_mrtd =
    (Erebor.Monitor.tdreport monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in

  (* One shared model instance across the whole fleet. *)
  let model_bytes = 2048 * 4096 in
  let mismatches = ref 0 in
  let last_trace = ref 0 in
  let serve i prompt =
    (* The request window opens at the client: the minted context covers
       handshake, sealed request, fleet-side service, sealed response. *)
    let cx = Obs.Request.mint requests in
    last_trace := cx.Obs.Request.trace_id;
    (* Each client maps to one of the pool's tenants; the aggregator keys
       heavy hitters by (tenant x kind). Read the journal frame offset
       BEFORE serving: the request's own events may seal the open frame. *)
    let tn =
      Obs.Agg.tenant part (Printf.sprintf "tenant-%d" (((i - 1) mod 4) + 1))
    in
    let frame_off =
      match journal with
      | Some w -> Obs.Journal.Writer.offset w
      | None -> -1
    in
    let t_start = now () in
    Obs.Emitter.emit obs_client Obs.Trace.Req_begin ~ts:t_start
      ~arg:(Obs.Request.pack cx ~root:true);
    let client, server =
      Obs.with_span obs_client ~now Obs.Trace.Attest @@ fun () ->
      let rng_c = Crypto.Drbg.create ~seed:(Printf.sprintf "client:%d" i) in
      let rng_s = Crypto.Drbg.create ~seed:(Printf.sprintf "monitor:%d" i) in
      let client =
        Erebor.Channel.Client.create ~rng:rng_c ~hw_key ~expected_mrtd
      in
      let hello = Erebor.Channel.Client.hello client in
      let server, server_hello =
        Result.get_ok
          (Erebor.Channel.Server.accept ~monitor ~rng:rng_s ~client_hello:hello)
      in
      Result.get_ok (Erebor.Channel.Client.finish client ~server_hello);
      (client, server)
    in
    let sealed =
      Obs.with_span obs_client ~now Obs.Trace.Channel_crypto @@ fun () ->
      Erebor.Channel.Client.seal_request ~ctx:cx client (Bytes.of_string prompt)
    in
    (* Fleet side: opening the request emits Req_begin there, so the
       sandbox service lands inside the fleet segment of this trace. *)
    let plaintext = Result.get_ok (Erebor.Channel.Server.open_request server sealed) in
    let entry = Result.get_ok (Sim.Pool.acquire pool) in
    let sb = entry.Sim.Pool.sb and libos = entry.Sim.Pool.libos in
    let model_base =
      Result.get_ok (Erebor.Sandbox.attach_common mgr sb ~name:"model" ~size:model_bytes)
    in
    (* The tenant streams part of the model: frames materialize once and are
       shared by everyone after. *)
    (match
       Kernel.populate kern (Erebor.Sandbox.main_task sb) ~start:model_base
         ~len:(64 * 4096)
     with
    | Ok () -> ()
    | Error e -> failwith e);
    ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb plaintext));
    let input = Result.get_ok (Libos.recv_input libos) in
    Result.get_ok
      (Libos.send_output libos
         (Bytes.of_string (Printf.sprintf "tenant-%d processed %d bytes" i (Bytes.length input))));
    let answer = Erebor.Sandbox.take_output mgr sb in
    Erebor.Sandbox.terminate mgr sb;
    let response = Erebor.Channel.Server.seal_response server ~bucket:256 answer in
    let answer =
      Obs.with_span obs_client ~now Obs.Trace.Channel_crypto @@ fun () ->
      Result.get_ok (Erebor.Channel.Client.open_response client response)
    in
    let t_end = now () in
    Obs.Emitter.emit obs_client Obs.Trace.Req_end ~ts:t_end
      ~arg:(Obs.Request.pack cx ~root:true);
    let measured = t_end - t_start in
    Obs.Agg.record part tn Obs.Trace.Req_end ~latency:measured
      ~trace_id:cx.Obs.Request.trace_id ~offset:frame_off ~ts:t_end;
    (* The collector's root segment must account for exactly the cycles we
       measured end to end — the tree is causal, not decorative. *)
    (match Obs.Request.root_cycles requests ~trace_id:cx.Obs.Request.trace_id with
    | Some c when c = measured -> ()
    | Some c ->
        Printf.eprintf "[client %d] trace %d root %d cycles <> measured %d\n" i
          cx.Obs.Request.trace_id c measured;
        incr mismatches
    | None ->
        Printf.eprintf "[client %d] trace %d: no root segment collected\n" i
          cx.Obs.Request.trace_id;
        incr mismatches);
    Printf.printf "[client %d] %-32s  (time-to-answer %.2f ms, warm=%b)\n" i
      (Bytes.to_string answer)
      (1000.0 *. Hw.Cycles.to_seconds measured)
      (Sim.Pool.cold_boots pool = 0 || i <= 4)
  in
  List.iteri (fun i prompt -> serve (i + 1) prompt)
    [ "analyze my records"; "translate this"; "classify these logs";
      "summarize the report"; "one more than the pool held" ];
  Printf.printf "[fleet] warm hits: %d, cold boots: %d\n" (Sim.Pool.warm_hits pool)
    (Sim.Pool.cold_boots pool);
  Printf.printf "[fleet] model frames shared across tenants: %d\n"
    (Erebor.Sandbox.common_instance_frames mgr ~name:"model");
  (match Erebor.Sandbox.mitigation_stats mgr with
  | Some (stalls, stall_cycles, flushes) ->
      Printf.printf "[fleet] mitigation activity: %d stalls (%d cycles), %d flushes\n"
        stalls stall_cycles flushes
  | None -> ());

  (* One request's cross-machine causal tree, plus the fleet-wide latency
     distribution the collector kept for every request. *)
  Printf.printf "\n[fleet] served %d requests, latency p50=%d p95=%d cycles\n"
    (Obs.Request.completed requests)
    (Obs.Request.latency_percentile requests ~p:0.50)
    (Obs.Request.latency_percentile requests ~p:0.95);
  Printf.printf "[fleet] causal tree of request %d (cross-machine):\n" !last_trace;
  Format.printf "%a@?" Obs.Request.pp_tree (requests, !last_trace);
  (match trace_file with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Obs.Request.to_chrome_json requests ~trace_id:!last_trace));
      Printf.printf "[fleet] chrome trace of request %d -> %s\n" !last_trace path
  | None -> ());

  (* Flush sinks and close the audit chain (mandatory close record); the
     emitter finalizer also seals and closes the journal, if any. *)
  Obs.Emitter.finalize obs_fleet ~now:(now ());
  (match (audit_file, Obs.Emitter.audit obs_fleet) with
  | Some path, Some chain ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Obs.Audit.to_string chain));
      Printf.printf "[fleet] audit log: %d records (chained, finalized) -> %s\n"
        (Obs.Audit.length chain) path
  | _ -> ());

  (* The fleet telemetry panel: seal this machine's part and render it. In
     a deployment, every machine's sealed part would be merged here first
     (byte-identical for any merge order). *)
  let snap = Obs.Agg.seal part in
  print_newline ();
  print_string (Obs.Agg.render snap);
  (match (record_file, Obs.Agg.exemplar_for snap ~p:0.99) with
  | Some path, Some e when e.Obs.Exemplar.i_offset >= 0 ->
      Printf.printf
        "[fleet] resolve the p99 exemplar offline:\n\
        \         erebor_sim journal topk %s --offset %d\n"
        path e.Obs.Exemplar.i_offset
  | _ -> ());
  if !mismatches > 0 then begin
    Printf.eprintf "[fleet] %d request(s) with unaccounted cycles\n" !mismatches;
    exit 1
  end

let () =
  C.run ~prog:"fleet" ~default:"run"
    ~doc:"Warm-pool fleet example: attested channel, shared model, telemetry"
    [
      C.cmd ~name:"run"
        ~doc:"Serve five clients from a warm sandbox pool (the default)"
        ~flags:[ audit_flag; trace_flag; record_flag ]
        main;
    ]
