(* Multi-tenant density: three different services — private retrieval, LLM
   inference and intrusion detection — side by side as mutually-distrusting
   sandboxes in ONE CVM under one monitor, on a pluggable isolation backend.

   Each tenant gets its own address-space root, confined frames, channel fd
   and Policy.tenant limits; the monitor walls them off with protection
   keys (pks, the paper's TDX configuration) or per-tenant memory-
   encryption key ids (tmemk). The example serves two request rounds
   round-robin, prints per-tenant exit statistics (the N>1 form of
   Table 6's columns), terminates one tenant mid-run to show the terminal
   scrub leaves its neighbours untouched, and finishes with an adversarial
   probe that must be denied.

   Run with:  dune exec examples/multi_tenant.exe -- [--backend pks|tmemk]
                                                     [--tenants N]
*)

module C = Workloads.Cli

let hw_key = Crypto.Sha256.digest_string "example hardware key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

let page = Hw.Phys_mem.page_size

(* The three service kinds; tenant i runs service (i mod 3), so --tenants N
   packs replicas of all three into the same CVM. *)
type service = Retrieval | Llm | Ids

let service_of i =
  match i mod 3 with 0 -> Retrieval | 1 -> Llm | _ -> Ids

let service_name = function
  | Retrieval -> "retrieval"
  | Llm -> "llm"
  | Ids -> "intrusion-detection"

let service_input = function
  | Retrieval -> Workloads.Retrieval.drug_key 42
  | Llm -> "Patient presents with"
  | Ids -> "audit-window-7"

(* The genuine compute kernels from the workloads library — the same code
   the Fig. 9 machines run, here answering each tenant's request. *)
let serve_request service (input : bytes) =
  match service with
  | Retrieval ->
      let rng = Crypto.Drbg.create ~seed:"mt-retrieval" in
      let db = Workloads.Retrieval.synthetic_db ~rng ~entries:256 in
      let key = Bytes.to_string input in
      (match Workloads.Retrieval.Hashmap.get db key with
      | Some r -> Printf.sprintf "%s: %s (%s)" key r.Workloads.Retrieval.name r.Workloads.Retrieval.indication
      | None -> Printf.sprintf "%s: not found" key)
  | Llm ->
      let rng = Crypto.Drbg.create ~seed:"mt-llm" in
      Workloads.Llm.Model.generate Workloads.Llm.default_model ~rng
        ~prompt:(Bytes.to_string input) ~n:24
  | Ids ->
      let rng = Crypto.Drbg.create ~seed:"mt-ids" in
      let baseline = Workloads.Ids.baseline ~rng in
      let log = Workloads.Ids.synthetic_log ~rng ~events:200 ~anomaly_rate:0.05 in
      Printf.sprintf "anomaly score %.3f" (Workloads.Ids.score ~baseline log)

let backend_flag =
  C.flag ~docv:"NAME" [ "--backend" ]
    "Isolation backend: pks (protection keys, the paper's TDX \
     configuration) or tmemk (per-tenant memory-encryption key ids)."

let tenants_flag =
  C.flag ~docv:"N" [ "--tenants" ]
    "Number of mutually-distrusting tenants to pack into the CVM \
     (default 3: one replica of each service)."

let main p =
  let backend =
    match C.str p backend_flag with
    | None -> Erebor.Isolation.Pks
    | Some s -> (
        match Erebor.Isolation.kind_of_name s with
        | Ok b -> b
        | Error e -> C.fail p (Printf.sprintf "--backend: %s" e))
  in
  let tenants = C.int_of p ~min:1 ~default:3 tenants_flag in
  Printf.printf "Multi-tenant CVM: %d tenants on the %s backend\n" tenants
    (Erebor.Isolation.kind_name backend);

  let mem = Hw.Phys_mem.create ~frames:65536 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~backend ~cpu ~mem ~td
      ~firmware:(Bytes.of_string "OVMF") ~monitor_frames:32
      ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128
         ~cma_frames:16384)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in

  (* Provision every tenant: own confined region, a shared reference corpus
     in common memory, per-tenant policy (the IDS replicas run with an
     output cap, demonstrating Policy.tenant limits). *)
  let tenant_list =
    List.init tenants (fun i ->
        let service = service_of i in
        let name = Printf.sprintf "%s-%d" (service_name service) (i + 1) in
        let policy =
          let base = Erebor.Policy.default_tenant ~label:name in
          match service with
          | Ids -> { base with Erebor.Policy.max_output_bytes = 4096 }
          | Retrieval | Llm -> base
        in
        let sb =
          Result.get_ok
            (Erebor.Sandbox.create_sandbox ~policy mgr ~name
               ~confined_budget:(32 * page))
        in
        let base_addr =
          Result.get_ok (Erebor.Sandbox.declare_confined mgr sb ~len:(16 * page))
        in
        let common_addr =
          Result.get_ok
            (Erebor.Sandbox.attach_common mgr sb ~name:"reference-corpus"
               ~size:(32 * page))
        in
        ignore
          (Result.get_ok
             (Erebor.Sandbox.load_client_data mgr sb
                (Bytes.of_string (service_input service))));
        (sb, service, base_addr, common_addr))
  in
  Printf.printf "[cvm] %d sandboxes sealed\n" (Erebor.Sandbox.sandbox_count mgr);

  (* Serve round-robin: each request switches into the tenant's address
     space (the backend's tenant_enter point — TME-MK swaps its active key
     here), touches confined memory through the MMU, and moves input/output
     over the monitored channel ioctl. *)
  let serve round (sb, service, base_addr, common_addr) =
    if Erebor.Sandbox.kill_reason sb = None
       && Erebor.Sandbox.phase sb <> Erebor.Sandbox.Terminated
    then begin
      let task = Erebor.Sandbox.main_task sb in
      kern.Kernel.privops.Kernel.Privops.write_cr3
        ~root_pfn:task.Kernel.Task.root_pfn;
      (* One corpus page per round, demand-paged on first touch — the
         frames behind "reference-corpus" are shared across tenants. *)
      let cpage = common_addr + ((round mod 32) * page) in
      (match Kernel.resolve_pfn kern task ~addr:cpage with
      | Some _ -> ()
      | None ->
          Result.get_ok
            (Erebor.Sandbox.page_fault mgr sb ~addr:cpage ~kind:Hw.Fault.Read));
      cpu.Hw.Cpu.mode <- Hw.Cpu.User;
      ignore (Hw.Cpu.read_u8 cpu cpage);
      for p = 0 to 3 do
        ignore (Hw.Cpu.read_u8 cpu (base_addr + (((round + p) mod 16) * page)))
      done;
      cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
      let input =
        match
          Erebor.Sandbox.handle_syscall mgr sb
            (Kernel.Syscall.Ioctl
               { fd = Erebor.Sandbox.channel_fd sb; request = 1; arg = Bytes.empty })
        with
        | Kernel.Syscall.Rbytes b -> b
        | _ -> failwith "input fetch failed"
      in
      let answer = serve_request service input in
      (match
         Erebor.Sandbox.handle_syscall mgr sb
           (Kernel.Syscall.Ioctl
              { fd = Erebor.Sandbox.channel_fd sb; request = 2;
                arg = Bytes.of_string answer })
       with
      | Kernel.Syscall.Rok -> ()
      | _ -> failwith "output emit failed");
      Erebor.Sandbox.timer_tick mgr sb;
      if round = 0 && Erebor.Sandbox.id sb <= 3 then
        Printf.printf "[%s] %s\n" (Erebor.Sandbox.name sb)
          (String.sub answer 0 (min 48 (String.length answer)))
    end
  in
  List.iter (serve 0) tenant_list;
  Printf.printf "[cvm] %d frames back the shared corpus across %d tenants\n"
    (Erebor.Sandbox.common_instance_frames mgr ~name:"reference-corpus")
    tenants;

  (* Terminate the first tenant between rounds: its confined frames are
     scrubbed and freed while every other tenant keeps serving. *)
  let first, _, _, _ = List.hd tenant_list in
  Erebor.Sandbox.terminate mgr first;
  Printf.printf "[cvm] terminated %s (terminal scrub); siblings keep serving\n"
    (Erebor.Sandbox.name first);
  List.iter (serve 1) tenant_list;

  (* Per-tenant exit accounting — Table 6's columns stay attributable with
     N tenants because the counters are per-sandbox. *)
  print_endline "[cvm] per-tenant exit statistics:";
  List.iter
    (fun row ->
      Format.printf "  %a@." Sim.Stats.pp_sandbox_row
        (Sim.Stats.sandbox_row_of row))
    (Erebor.Sandbox.exit_stats_all mgr);

  (* Adversarial probe: a compromised-kernel context tries to map a live
     tenant's confined frame. The monitor must refuse, whatever the
     backend. *)
  let victim_sb, _, victim_base, _ =
    List.nth tenant_list (min 1 (tenants - 1))
  in
  let victim_pfn =
    Option.get
      (Kernel.resolve_pfn kern (Erebor.Sandbox.main_task victim_sb)
         ~addr:victim_base)
  in
  let attacker = Kernel.create_task kern ~name:"adversary" ~kind:Kernel.Task.Normal in
  let a_addr =
    Result.get_ok
      (Kernel.mmap kern attacker ~len:page ~prot:Kernel.Vma.prot_rw
         ~kind:Kernel.Vma.Anon)
  in
  Result.get_ok (Kernel.handle_page_fault kern attacker ~addr:a_addr ~kind:Hw.Fault.Write);
  let leaf_addr =
    Option.get
      (Hw.Page_table.leaf_addr mem ~root_pfn:attacker.Kernel.Task.root_pfn a_addr)
  in
  (match
     kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf_addr
       (Hw.Pte.make ~pfn:victim_pfn { Hw.Pte.default_flags with user = true })
   with
  | () ->
      Printf.eprintf "[cvm] ISOLATION VIOLATION: cross-tenant map accepted\n";
      exit 1
  | exception Erebor.Monitor.Policy_violation reason ->
      Printf.printf "[cvm] cross-tenant map denied by the monitor (%s)\n" reason);

  List.iter (fun (sb, _, _, _) -> Erebor.Sandbox.terminate mgr sb) tenant_list;
  Printf.printf "[cvm] done: %d tenants served and scrubbed, 0 violations\n"
    tenants

let () =
  C.run ~prog:"multi_tenant" ~default:"run"
    ~doc:"Three services as mutually-distrusting sandboxes in one CVM"
    [
      C.cmd ~name:"run"
        ~doc:"Provision, serve two rounds, scrub, adversarial probe (the \
              default)"
        ~flags:[ backend_flag; tenants_flag ]
        main;
    ]
