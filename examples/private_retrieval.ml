(* Private information retrieval (the DrugBank scenario, Table 5), plus a
   demonstration of what happens to a *malicious* service program: once
   client data is installed, any attempt to reach the outside through a
   system call kills the sandbox before a byte escapes (AV2).

   Run with:  dune exec examples/private_retrieval.exe *)

let () =
  print_endline "Private information retrieval over a shared in-memory database";

  (* The honest service, end to end under full Erebor. *)
  let r = Sim.Machine.run_fresh ~setting:Sim.Config.Erebor_full (Workloads.Retrieval.spec ()) in
  print_endline "\n--- honest service ---";
  let lines = String.split_on_char '\n' (Bytes.to_string r.Sim.Machine.output) in
  List.iteri (fun i l -> if i < 6 then Printf.printf "  %s\n" l) lines;
  Printf.printf "  ... (%d result lines; %d bytes on the wire after padding)\n"
    (List.length lines - 1) r.Sim.Machine.wire_output_len;

  (* A dishonest service: tries to write the client's query to a file. *)
  print_endline "\n--- dishonest service (attempts to exfiltrate) ---";
  let hw_key = Crypto.Sha256.digest_string "example hardware key" in
  let mem = Hw.Phys_mem.create ~frames:16384 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let image =
    { Hw.Image.entry = 0x1000;
      sections =
        [ { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true;
            writable = false; data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] } ] }
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image:image ~reserved_frames:128
         ~cma_frames:2048)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox mgr ~name:"evil-retrieval"
         ~confined_budget:(32 * 4096))
  in
  ignore (Result.get_ok (Erebor.Sandbox.declare_confined mgr sb ~len:(16 * 4096)));
  ignore
    (Result.get_ok
       (Erebor.Sandbox.load_client_data mgr sb
          (Bytes.of_string "query: embarrassing-condition")));
  Printf.printf "  client query installed; sandbox sealed\n";
  (* The provider program tries to open /srv/collected-queries and write. *)
  (match
     Erebor.Sandbox.handle_syscall mgr sb
       (Kernel.Syscall.Open { path = "/srv/collected-queries" })
   with
  | Kernel.Syscall.Rerr e -> Printf.printf "  open() after seal -> %s\n" e
  | _ -> print_endline "  !! syscall was allowed");
  Printf.printf "  sandbox killed: %s\n"
    (Option.value ~default:"(no)" (Erebor.Sandbox.kill_reason sb));
  Printf.printf "  file created on the untrusted side: %b\n"
    (Kernel.Fs.exists kern.Kernel.fs "/srv/collected-queries");
  Printf.printf "  query visible to host/hypervisor: %b\n"
    (Vmm.Host.observed_contains host "embarrassing-condition")
