(* erebor-sim: the command-line front end to the simulated Erebor CVM —
   the counterpart of the artifact's run scripts (§A.4). Parsing is the
   declarative Workloads.Cli subcommand framework (no cmdliner): every
   subcommand carries its flag list, and an unknown flag prints the usage
   of exactly the subcommand it occurred under. *)

module C = Workloads.Cli

let workloads = Workloads.Eval.all_programs

let setting_of p s =
  match Sim.Config.of_name s with
  | Some setting -> setting
  | None ->
      C.fail p
        (Printf.sprintf "unknown setting %S (expected one of: %s)" s
           (String.concat ", " (List.map Sim.Config.name Sim.Config.all)))

let workload_of p s =
  match List.assoc_opt s workloads with
  | Some spec -> (s, spec)
  | None ->
      C.fail p
        (Printf.sprintf "unknown workload %S (expected one of: %s)" s
           (String.concat ", " (List.map fst workloads)))

(* Shared flags. *)
let workload_flag =
  C.flag ~docv:"NAME" [ "-w"; "--workload" ] "Workload to run (see list)."

let setting_flag =
  C.flag ~docv:"SETTING" [ "-s"; "--setting" ]
    "Evaluation setting: native, libos-only, erebor-mmu, erebor-exit, erebor."

let get_workload p =
  match C.str p workload_flag with
  | Some s -> workload_of p s
  | None -> C.fail p "a workload is required (-w NAME; see the list command)"

let get_setting p =
  match C.str p setting_flag with
  | None -> Sim.Config.Erebor_full
  | Some s -> setting_of p s

(* The audit chain's MAC key. A real deployment would derive this from a
   sealed monitor secret; the simulator uses a fixed derivation shared with
   [audit verify] so chains written by [run --audit] verify offline (the
   same substitution DESIGN.md makes for the attestation hw_key). *)
let audit_key = Crypto.Sha256.digest_string "erebor-sim audit key"

let print_run name setting (r : Sim.Machine.run_result) =
  Printf.printf "workload : %s\n" name;
  Printf.printf "setting  : %s\n" (Sim.Config.name setting);
  Printf.printf "exec time: %.2f s (virtual, descaled)\n"
    (Hw.Cycles.to_seconds r.Sim.Machine.run_cycles
    *. float_of_int Workloads.Workload.time_scale);
  Printf.printf "init time: %.2f s\n"
    (Hw.Cycles.to_seconds r.Sim.Machine.init_cycles
    *. float_of_int Workloads.Workload.time_scale);
  let s = r.Sim.Machine.stats in
  Printf.printf "exits    : #PF %.0f/s, #Timer %.0f/s, #VE %.0f/s, EMC %.1fk/s\n"
    (Sim.Stats.pf_rate s) (Sim.Stats.timer_rate s) (Sim.Stats.ve_rate s)
    (Sim.Stats.emc_rate s /. 1000.0);
  (match r.Sim.Machine.killed with
  | Some reason -> Printf.printf "KILLED   : %s\n" reason
  | None -> ());
  Printf.printf "output   : %d bytes (%d on the wire)\n---\n%s\n"
    (Bytes.length r.Sim.Machine.output)
    r.Sim.Machine.wire_output_len
    (Bytes.to_string r.Sim.Machine.output)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let trace_flag =
  C.flag ~docv:"FILE" [ "--trace" ]
    "Record every trace event (boot included) and write a Chrome-trace JSON \
     file loadable in chrome://tracing / Perfetto."

let debug_flag =
  C.flag [ "--debug" ]
    "Keep a ring buffer of the most recent trace events and dump it to \
     stderr post mortem when the run dies on an unexpected fault or the \
     sandbox is killed."

let audit_flag =
  C.flag ~docv:"FILE" [ "--audit" ]
    "Record every monitor security decision in an HMAC-SHA256 hash-chained \
     audit log and write it (JSONL) on exit — normal or abnormal. Check it \
     offline with audit verify."

let dash_flag =
  C.flag ~docv:"FILE" [ "--dash" ]
    "Live monitoring: attach a sliding-window sink, machine-level SLO \
     burn-rate alerts and a health watchdog; repaint an ASCII dashboard to \
     stderr every 50 virtual ms and write a JSON telemetry snapshot to FILE \
     on exit — normal or abnormal."

let record_flag =
  C.flag ~docv:"FILE" [ "--record" ]
    "Flight recorder: journal every trace event (boot included) to a \
     crash-safe binary file. Analyze offline with the journal subcommands."

let run_body p =
  let name, spec_fn = get_workload p in
  let setting = get_setting p in
  let trace = C.str p trace_flag in
  let debug = C.has p debug_flag in
  let audit_file = C.str p audit_flag in
  let dash_file = C.str p dash_flag in
  let record = C.str p record_flag in
  if
    trace = None && (not debug) && audit_file = None && dash_file = None
    && record = None
  then print_run name setting (Sim.Machine.run_fresh ~setting (spec_fn ()))
  else begin
    let obs = Obs.Emitter.create () in
    (* The journal writer attaches before anything else so boot events land
       in the recording; its finalizer seals and closes the file on both
       exit paths. *)
    let journal =
      match record with
      | None -> None
      | Some path ->
          let w =
            Obs.Journal.Writer.create
              ~meta:
                [ ("workload", name); ("setting", Sim.Config.name setting) ]
              ~path ()
          in
          Obs.Journal.Writer.attach ~machine:"sim" w obs;
          Some (w, path)
    in
    let recorder =
      if trace = None then None
      else Some (Obs.Chrome.attach obs (Obs.Chrome.create ()))
    in
    let ring =
      if debug then Some (Obs.Ring.attach obs (Obs.Ring.create ~capacity:512))
      else None
    in
    let chain =
      match audit_file with
      | None -> None
      | Some _ ->
          let chain = Obs.Audit.create ~key:audit_key in
          Obs.Emitter.set_audit obs (Some chain);
          Some chain
    in
    (* Live telemetry: a sliding window over the machine's event stream
       (attached pre-boot via [~window]), machine-level SLOs with generous
       ceilings — a healthy run must stay silent — and a health watchdog
       fed by the same emitter. The dashboard repaints on a virtual-time
       cadence and the final snapshot is written by an emitter finalizer,
       so abnormal exits still leave a complete, parseable file. *)
    let window =
      match dash_file with
      | None -> None
      | Some _ -> Some (Obs.Window.create ~width:10_500_000 ~buckets:120 ())
    in
    let dash =
      match (dash_file, window) with
      | Some _, Some window ->
          let slo =
            Obs.Slo.create ~emit:obs ~window
              ~objectives:
                [
                  Obs.Slo.objective ~name:"emc-latency"
                    ~condition:
                      (Obs.Slo.Latency_above
                         { kind = Obs.Trace.Emc_entry; threshold = 65536 })
                    ~budget:0.02 ();
                  Obs.Slo.objective ~name:"emc-rate"
                    ~condition:
                      (Obs.Slo.Rate_above
                         { kind = Obs.Trace.Emc_entry; per_second = 500_000.0 })
                    ~budget:1.0 ();
                  Obs.Slo.objective ~name:"audit-denials"
                    ~condition:
                      (Obs.Slo.Ratio
                         { bad = Obs.Trace.Mmu_deny; total = Obs.Trace.Emc_entry })
                    ~budget:0.02 ();
                ]
              ()
          in
          (* A [run] session spans the whole body, so a per-request deadline
             is meaningless here — the watchdogs that matter for a single
             machine are the EMC stall (1 virtual second of in-flight
             silence) and denial spikes. *)
          let health =
            Obs.Health.create ~emit:obs
              ~rules:
                {
                  Obs.Health.default_rules with
                  Obs.Health.stall_cycles = 2_100_000_000;
                  deadline_cycles = max_int / 2;
                }
              ()
          in
          Some (slo, health, window)
      | _ -> None
    in
    let m = Sim.Machine.create ~obs ?window ~setting () in
    (match (dash_file, dash) with
    | Some path, Some (slo, health, window) ->
        let subject =
          Obs.Health.register health ~name
            ~now:(Hw.Cycles.now (Sim.Machine.clock m))
        in
        Obs.Health.watch health subject obs;
        let d =
          Obs.Dash.attach obs
            (Obs.Dash.create ~label:name ~out:stderr ~slo ~health
               ~refresh_cycles:105_000_000 ~window ())
        in
        Obs.Emitter.add_finalizer obs (fun ~now ->
            let oc = open_out path in
            output_string oc (Obs.Dash.snapshot_json d ~now);
            close_out oc;
            Printf.printf "dash     : %d refreshes, snapshot -> %s\n"
              (Obs.Dash.refreshes d) path)
    | _ -> ());
    let dump_ring reason =
      match ring with
      | None -> ()
      | Some ring ->
          Printf.eprintf
            "post-mortem (%s): last %d trace events (%d older dropped):\n"
            reason (Obs.Ring.length ring) (Obs.Ring.dropped ring);
          List.iter
            (fun e -> Format.eprintf "  %a@." Obs.Trace.pp_event e)
            (Obs.Ring.to_list ring)
    in
    let write_trace () =
      match (trace, recorder) with
      | Some path, Some recorder ->
          let oc = open_out path in
          output_string oc (Obs.Chrome.to_chrome_json recorder);
          close_out oc;
          Printf.printf "trace    : %d events -> %s\n"
            (Obs.Chrome.length recorder) path
      | _ -> ()
    in
    (* Flush every export that has buffered state — the trace file, the
       finalized audit chain, the sealed journal — on BOTH exit paths, so
       an abnormal exit never drops a partially-written export. *)
    let flush_exports () =
      Obs.Emitter.finalize obs ~now:(Hw.Cycles.now (Sim.Machine.clock m));
      write_trace ();
      (match journal with
      | Some (w, path) ->
          Printf.printf "journal  : %d events in %d segments -> %s\n"
            (Obs.Journal.Writer.events w)
            (Obs.Journal.Writer.segments w)
            path
      | None -> ());
      match (audit_file, chain) with
      | Some path, Some chain ->
          let oc = open_out path in
          output_string oc (Obs.Audit.to_string chain);
          close_out oc;
          Printf.printf "audit    : %d records (chained, finalized) -> %s\n"
            (Obs.Audit.length chain) path
      | _ -> ()
    in
    match Sim.Machine.run m (spec_fn ()) with
    | r ->
        print_run name setting r;
        flush_exports ();
        (match r.Sim.Machine.killed with
        | Some reason when debug -> dump_ring ("sandbox killed: " ^ reason)
        | _ -> ())
    | exception e ->
        dump_ring (Printexc.to_string e);
        flush_exports ();
        Printf.eprintf "run aborted: %s\n" (Printexc.to_string e);
        exit 2
  end

let run_cmd =
  C.cmd ~name:"run"
    ~doc:"Run one workload under one setting and print its results"
    ~flags:
      [ workload_flag; setting_flag; trace_flag; debug_flag; audit_flag;
        dash_flag; record_flag ]
    run_body

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let flame_flag =
  C.flag ~docv:"FILE" [ "--flame" ]
    "Write the cycle-attribution context tree as a collapsed-stack file \
     (flamegraph.pl / speedscope / inferno input)."

let metrics_flag =
  C.flag ~docv:"FILE" [ "--metrics" ]
    "Write counters, latency histograms and cycle attribution as Prometheus \
     text exposition (or JSON when FILE ends in .json)."

let profile_body p =
  let name, spec_fn = get_workload p in
  let setting = get_setting p in
  let flame = C.str p flame_flag in
  let metrics = C.str p metrics_flag in
  let obs = Obs.Emitter.create () in
  let counters = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let hist = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  let attrib = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
  (* The attribution context tree must be closed before export; doing it
     through the finalizer registry means the exception path below flushes
     exactly the same way the normal path does. *)
  Obs.Emitter.add_finalizer obs (fun ~now -> Obs.Attrib.close attrib ~now);
  let m = Sim.Machine.create ~obs ~setting () in
  let write_exports () =
    (match flame with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Flame.collapsed attrib);
        close_out oc;
        Printf.printf "flame    : collapsed stacks -> %s\n" path);
    match metrics with
    | None -> ()
    | Some path ->
        let reg = Obs.Metrics.create () in
        Obs.Metrics.add reg ~label:name ~counter:counters ~histogram:hist
          ~attrib ();
        let rendered =
          if Filename.check_suffix path ".json" then Obs.Metrics.to_json reg
          else Obs.Metrics.to_prometheus reg
        in
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Printf.printf "metrics  : %s -> %s\n"
          (if Filename.check_suffix path ".json" then "JSON" else "Prometheus")
          path
  in
  let r =
    match Sim.Machine.run m (spec_fn ()) with
    | r -> r
    | exception e ->
        (* Abnormal exit: finalize the sinks and write well-formed exports
           before dying, so a crash never loses the profile. *)
        Obs.Emitter.finalize obs ~now:(Hw.Cycles.now (Sim.Machine.clock m));
        write_exports ();
        Printf.eprintf "profile aborted: %s (exports flushed)\n"
          (Printexc.to_string e);
        exit 2
  in
  let total = Hw.Cycles.now (Sim.Machine.clock m) in
  Obs.Emitter.finalize obs ~now:total;
  Printf.printf "profile  : %s under %s (%d virtual cycles total)\n" name
    (Sim.Config.name setting) total;
  Printf.printf "  %-16s %10s %14s\n" "kind" "count" "cycles";
  (* Cycle attribution: measured kinds carry their cycles as the event
     argument; fixed-cost kinds are count x calibrated cost. EMC service
     cycles are nested inside their gate round trips. *)
  let attributed kind n =
    match kind with
    | Obs.Trace.Emc_entry | Obs.Trace.Emc _ | Obs.Trace.Tdcall | Obs.Trace.Vmcall
      ->
        Some (Obs.Counter.arg_sum counters kind)
    | Obs.Trace.Syscall -> Some (n * Hw.Cycles.Cost.syscall_roundtrip)
    | Obs.Trace.Page_fault -> Some (n * Hw.Cycles.Cost.page_fault_base)
    | Obs.Trace.Timer_irq -> Some (n * Hw.Cycles.Cost.interrupt_delivery)
    | Obs.Trace.Ve_exit -> Some (n * Hw.Cycles.Cost.ve_handling)
    | Obs.Trace.Context_switch -> Some (n * Hw.Cycles.Cost.context_switch)
    | _ -> None
  in
  List.iter
    (fun kind ->
      let n = Obs.Counter.count counters kind in
      match kind with
      | Obs.Trace.Span_begin _ | Obs.Trace.Span_end _ -> ()
      | _ when n = 0 -> ()
      | _ -> (
          match attributed kind n with
          | Some cycles ->
              Printf.printf "  %-16s %10d %14d\n" (Obs.Trace.name kind) n cycles
          | None ->
              Printf.printf "  %-16s %10d %14s\n" (Obs.Trace.name kind) n "-"))
    Obs.Trace.all;
  (* Exact span-based decomposition: every virtual cycle lands in exactly
     one domain x phase context (or "outside" for pre/post-span glue). *)
  Printf.printf "attribution (domain x phase, sums exactly to total):\n";
  Printf.printf "  %-8s %-10s %14s %8s\n" "domain" "phase" "cycles" "share";
  List.iter
    (fun (d, p, cycles) ->
      Printf.printf "  %-8s %-10s %14d %7.2f%%\n" (Obs.Trace.domain_name d)
        (Obs.Trace.phase_name p) cycles
        (100.0 *. float_of_int cycles /. float_of_int total))
    (Obs.Attrib.breakdown attrib);
  Printf.printf "  %-8s %-10s %14d %7.2f%%\n" "-" "(outside)"
    (Obs.Attrib.unattributed attrib)
    (100.0
    *. float_of_int (Obs.Attrib.unattributed attrib)
    /. float_of_int total);
  write_exports ();
  match r.Sim.Machine.killed with
  | Some reason -> Printf.printf "KILLED   : %s\n" reason
  | None -> ()

let profile_cmd =
  C.cmd ~name:"profile"
    ~doc:
      "Run one workload and print per-event-kind counts plus the exact \
       domain x phase cycle decomposition; optionally export a flamegraph \
       and Prometheus/JSON metrics"
    ~flags:[ workload_flag; setting_flag; flame_flag; metrics_flag ]
    profile_body

(* ------------------------------------------------------------------ *)
(* compare / list / selfcheck                                          *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  C.cmd ~name:"compare"
    ~doc:"Run one workload under every setting (Fig. 9 for one program)"
    ~flags:[ workload_flag ]
    (fun p ->
      let name, spec_fn = get_workload p in
      Printf.printf "%s across all settings:\n" name;
      let native = ref 0 in
      List.iter
        (fun setting ->
          let r = Sim.Machine.run_fresh ~setting (spec_fn ()) in
          if setting = Sim.Config.Native then native := r.Sim.Machine.run_cycles;
          Printf.printf "  %-12s %8.2fs  %+6.2f%%  EMC %6.1fk/s\n"
            (Sim.Config.name setting)
            (Hw.Cycles.to_seconds r.Sim.Machine.run_cycles
            *. float_of_int Workloads.Workload.time_scale)
            (100.0
            *. ((float_of_int r.Sim.Machine.run_cycles /. float_of_int !native)
               -. 1.0))
            (Sim.Stats.emc_rate r.Sim.Machine.stats /. 1000.0))
        Sim.Config.all)

let list_cmd =
  C.cmd ~name:"list" ~doc:"List workloads and settings" (fun _ ->
      print_endline "workloads:";
      List.iter (fun (name, _) -> Printf.printf "  %s\n" name) workloads;
      print_endline "settings:";
      List.iter (fun s -> Printf.printf "  %s\n" (Sim.Config.name s))
        Sim.Config.all)

let selfcheck_cmd =
  C.cmd ~name:"selfcheck"
    ~doc:"Run the security-claim battery (C1-C8) on a fresh stack"
    (fun _ ->
      (* An operator-facing rendition of §8's security analysis: build a
         fresh stack, throw the attack battery, report per-claim verdicts. *)
      let hw_key = Crypto.Sha256.digest_string "selfcheck key" in
      let mem = Hw.Phys_mem.create ~frames:32768 in
      let clock = Hw.Cycles.clock () in
      let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
      let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
      let host = Vmm.Host.create () in
      Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
      let monitor =
        Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
          ~monitor_frames:32 ~device_shared_frames:32 ()
      in
      let benign =
        { Hw.Image.entry = 0x1000;
          sections =
            [ { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true;
                writable = false;
                data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] } ] }
      in
      let kern =
        match
          Erebor.Monitor.boot_kernel monitor ~kernel_image:benign
            ~reserved_frames:128 ~cma_frames:8192
        with
        | Ok k -> k
        | Error e -> failwith e
      in
      let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
      let failures = ref 0 in
      let claim name expect_blocked f =
        let blocked =
          match f () with
          | _ -> false
          | exception Erebor.Monitor.Policy_violation _ -> true
          | exception Hw.Fault.Fault _ -> true
        in
        let ok = blocked = expect_blocked in
        if not ok then incr failures;
        Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name
      in
      print_endline "C1: verified boot";
      let evil =
        { benign with
          Hw.Image.sections =
            [ { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true;
                writable = false; data = Hw.Isa.assemble [ Hw.Isa.Wrmsr ] } ] }
      in
      (match
         Erebor.Monitor.boot_kernel monitor ~kernel_image:evil
           ~reserved_frames:128 ~cma_frames:64
       with
      | Error _ -> print_endline "  [PASS] kernel with sensitive instructions refused"
      | Ok _ ->
          incr failures;
          print_endline "  [FAIL] kernel with sensitive instructions booted");
      print_endline "C2-C4: privileged-mode enforcement";
      let ops = kern.Kernel.privops in
      claim "clearing SMAP blocked" true (fun () ->
          ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap false);
      claim "writing IA32_PKRS blocked" true (fun () ->
          ops.Kernel.Privops.write_msr Hw.Msr.ia32_pkrs 0L);
      claim "stray PTE store blocked" true (fun () ->
          ops.Kernel.Privops.write_pte ~pte_addr:(Hw.Phys_mem.addr_of_pfn 9000)
            (Hw.Pte.make ~pfn:5 Hw.Pte.default_flags));
      Kernel.ensure_direct_map kern ~pfn:kern.Kernel.kernel_root;
      claim "direct write to page tables blocked" true (fun () ->
          Hw.Cpu.write_u64 cpu
            (Kernel.Layout.direct_map
               (Hw.Phys_mem.addr_of_pfn kern.Kernel.kernel_root))
            0xBADL);
      print_endline "C5: attestation exclusivity";
      claim "kernel tdreport blocked" true (fun () ->
          ignore
            (ops.Kernel.Privops.tdcall
               (Tdx.Ghci.Tdreport { report_data = Bytes.empty })));
      print_endline "C6-C8: sandbox protection";
      let sb =
        Result.get_ok
          (Erebor.Sandbox.create_sandbox mgr ~name:"probe"
             ~confined_budget:(64 * 4096))
      in
      let base =
        Result.get_ok (Erebor.Sandbox.declare_confined mgr sb ~len:(16 * 4096))
      in
      ignore
        (Result.get_ok
           (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "secret")));
      ops.Kernel.Privops.write_cr3
        ~root_pfn:(Erebor.Sandbox.main_task sb).Kernel.Task.root_pfn;
      claim "kernel read of sandbox memory blocked (SMAP)" true (fun () ->
          ignore (Hw.Cpu.read_u8 cpu base));
      claim "usercopy exfiltration blocked" true (fun () ->
          ignore (ops.Kernel.Privops.copy_from_user ~user_addr:base ~len:6));
      (match
         Erebor.Sandbox.handle_syscall mgr sb
           (Kernel.Syscall.Open { path = "/leak" })
       with
      | Kernel.Syscall.Rerr _ ->
          print_endline "  [PASS] post-data syscall killed the sandbox"
      | _ ->
          incr failures;
          print_endline "  [FAIL] post-data syscall allowed");
      Printf.printf "\nself-check %s (%d failure(s))\n"
        (if !failures = 0 then "PASSED" else "FAILED")
        !failures;
      if !failures > 0 then exit 1)

(* ------------------------------------------------------------------ *)
(* audit verify                                                        *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  C.group ~name:"audit" ~doc:"Inspect tamper-evident audit logs"
    [
      C.cmd ~name:"verify"
        ~doc:
          "Re-walk an audit log's HMAC chain offline; any tampered, dropped, \
           reordered or truncated record fails the check"
        (fun p ->
          let path =
            match C.pos p with
            | [ path ] -> path
            | _ -> C.fail p "exactly one FILE argument expected"
          in
          let ic =
            try open_in_bin path
            with Sys_error e -> C.fail p e
          in
          let len = in_channel_length ic in
          let contents = really_input_string ic len in
          close_in ic;
          match Obs.Audit.verify_string ~key:audit_key contents with
          | Ok n ->
              Printf.printf
                "audit verify: OK — %d record(s), chain intact and finalized\n"
                n
          | Error msg ->
              Printf.eprintf "audit verify: FAILED — %s\n" msg;
              exit 1);
    ]

(* ------------------------------------------------------------------ *)
(* journal query | critical | diff | export                            *)
(* ------------------------------------------------------------------ *)

let journal_file p =
  match C.pos p with
  | [ path ] -> path
  | _ -> C.fail p "exactly one journal FILE argument expected"

let kind_of_name p s =
  match List.find_opt (fun k -> Obs.Trace.name k = s) Obs.Trace.all with
  | Some k -> k
  | None -> C.fail p (Printf.sprintf "unknown event kind %S" s)

let print_info (info : Obs.Journal.info) =
  Printf.printf "journal  : %d events in %d segments, %s, last ts %d\n"
    info.Obs.Journal.events info.Obs.Journal.segments
    (if info.Obs.Journal.complete then "finalized"
     else "NOT finalized (truncated tail)")
    info.Obs.Journal.last_ts;
  List.iter
    (fun (k, v) -> Printf.printf "  meta   %-10s %s\n" k v)
    info.Obs.Journal.meta;
  List.iter
    (fun (id, name) -> Printf.printf "  stream %-10d %s\n" id name)
    info.Obs.Journal.machines

let kind_flag =
  C.flag ~docv:"NAME" [ "--kind" ]
    "Keep only events of this kind (wire name, e.g. emc.mmu, page_fault)."

let machine_flag =
  C.flag ~docv:"NAME" [ "--machine" ] "Keep only this machine's stream."

let sandbox_flag =
  C.flag ~docv:"ID" [ "--sandbox" ]
    "Keep only events inside this sandbox's lifetime window \
     (create..exit/kill)."

let from_flag =
  C.flag ~docv:"CYCLES" [ "--from" ] "Keep events at or after this timestamp."

let to_flag =
  C.flag ~docv:"CYCLES" [ "--to" ] "Keep events at or before this timestamp."

let group_flag =
  C.flag ~docv:"BY" [ "--group" ]
    "Aggregation key: kind (default), machine, phase, none."

let query_cmd =
  C.cmd ~name:"query"
    ~doc:"Filter + group-by over a journal: counts, sums, log2 percentiles"
    ~flags:[ kind_flag; machine_flag; sandbox_flag; from_flag; to_flag; group_flag ]
    (fun p ->
      let path = journal_file p in
      let filter =
        {
          Obs.Query.kinds =
            (match C.str p kind_flag with
            | None -> []
            | Some s -> [ kind_of_name p s ]);
          machines =
            (match C.str p machine_flag with None -> [] | Some m -> [ m ]);
          sandbox =
            (match C.str p sandbox_flag with
            | None -> None
            | Some _ -> Some (C.int_of p ~min:0 ~default:0 sandbox_flag));
          t0 =
            (match C.str p from_flag with
            | None -> None
            | Some _ -> Some (C.int_of p ~min:0 ~default:0 from_flag));
          t1 =
            (match C.str p to_flag with
            | None -> None
            | Some _ -> Some (C.int_of p ~min:0 ~default:0 to_flag));
        }
      in
      let group =
        match C.str p group_flag with
        | None | Some "kind" -> Obs.Query.By_kind
        | Some "machine" -> Obs.Query.By_machine
        | Some "phase" -> Obs.Query.By_phase
        | Some "none" -> Obs.Query.By_none
        | Some g ->
            C.fail p
              (Printf.sprintf
                 "unknown group %S (expected kind, machine, phase or none)" g)
      in
      match Obs.Query.run ~filter ~group ~path () with
      | Error e ->
          Printf.eprintf "journal query: %s\n" e;
          exit 1
      | Ok (rows, info) ->
          print_info info;
          print_string (Obs.Query.render rows))

let top_flag =
  C.flag ~docv:"N" [ "--top" ] "Show the N slowest requests (default 10)."

let critical_cmd =
  C.cmd ~name:"critical"
    ~doc:
      "Reconstruct per-request windows and split latency into queueing vs \
       service with per-phase blame"
    ~flags:[ top_flag ]
    (fun p ->
      let path = journal_file p in
      let top = C.int_of p ~min:1 ~default:10 top_flag in
      match Obs.Critical.analyze ~top ~path () with
      | Error e ->
          Printf.eprintf "journal critical: %s\n" e;
          exit 1
      | Ok (report, info) ->
          print_info info;
          print_string (Obs.Critical.render report))

let threshold_flag =
  C.flag ~docv:"PCT" [ "--threshold" ]
    "Regression threshold in percent (default 5.0)."

let min_cycles_flag =
  C.flag ~docv:"N" [ "--min-cycles" ]
    "Ignore deltas smaller than N absolute cycles (default 1000)."

let diff_cmd =
  C.cmd ~name:"diff"
    ~doc:
      "Compare two journals by domain x phase attribution; exit 1 when run \
       B regresses past the threshold"
    ~flags:[ threshold_flag; min_cycles_flag ]
    (fun p ->
      let a, b =
        match C.pos p with
        | [ a; b ] -> (a, b)
        | _ -> C.fail p "exactly two journal FILE arguments expected (A B)"
      in
      let threshold = C.float_of p ~default:5.0 threshold_flag in
      let min_cycles = C.int_of p ~min:0 ~default:1000 min_cycles_flag in
      match Obs.Diff.compare_files ~a ~b with
      | Error e ->
          Printf.eprintf "journal diff: %s\n" e;
          exit 1
      | Ok d ->
          print_string (Obs.Diff.render ~threshold ~min_cycles d);
          if Obs.Diff.regressions ~threshold ~min_cycles d <> [] then exit 1)

let chrome_flag =
  C.flag ~docv:"FILE" [ "--chrome" ]
    "Regenerate a Chrome-trace JSON file from the journal alone."

let export_flame_flag =
  C.flag ~docv:"FILE" [ "--flame" ]
    "Regenerate a collapsed-stack flamegraph from the journal alone \
     (attribution replay)."

let export_cmd =
  C.cmd ~name:"export"
    ~doc:"Regenerate Chrome-trace / flamegraph exports from a journal"
    ~flags:[ chrome_flag; export_flame_flag ]
    (fun p ->
      let path = journal_file p in
      if C.str p chrome_flag = None && C.str p export_flame_flag = None then
        C.fail p "nothing to export (pass --chrome and/or --flame)";
      (match C.str p chrome_flag with
      | None -> ()
      | Some out -> (
          (* Replay through the live Chrome sink: streams merge into one
             timeline (virtual timestamps are shared). *)
          let obs = Obs.Emitter.create () in
          let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
          match
            Obs.Journal.fold ~path ~init:() (fun () (e : Obs.Journal.event) ->
                Obs.Emitter.emit obs e.kind ~ts:e.ts ~arg:e.arg)
          with
          | Error e ->
              Printf.eprintf "journal export: %s\n" e;
              exit 1
          | Ok ((), _) ->
              let oc = open_out out in
              output_string oc (Obs.Chrome.to_chrome_json rec_);
              close_out oc;
              Printf.printf "chrome   : %d events -> %s\n"
                (Obs.Chrome.length rec_) out));
      match C.str p export_flame_flag with
      | None -> ()
      | Some out -> (
          (* The flamegraph needs the full context tree, not just per-phase
             totals — replay stream 0 through a dedicated Attrib instance. *)
          let att = Obs.Attrib.create () in
          let sink = Obs.Attrib.sink att in
          let last = ref 0 in
          match
            Obs.Journal.fold ~path ~init:() (fun () (e : Obs.Journal.event) ->
                if e.stream = 0 then begin
                  sink e.kind ~ts:e.ts ~arg:e.arg;
                  if e.ts > !last then last := e.ts
                end)
          with
          | Error e ->
              Printf.eprintf "journal export: %s\n" e;
              exit 1
          | Ok ((), _) ->
              Obs.Attrib.close att ~now:!last;
              let oc = open_out out in
              output_string oc (Obs.Flame.collapsed att);
              close_out oc;
              Printf.printf "flame    : collapsed stacks -> %s\n" out))

let key_flag =
  C.flag ~docv:"BY" [ "--key" ]
    "Heavy-hitter key: machine-kind (default), kind, machine."

let capacity_flag =
  C.flag ~docv:"N" [ "--capacity" ]
    "Space-saving table capacity (default 64)."

let offset_flag =
  C.flag ~docv:"BYTES" [ "--offset" ]
    "Resolve a frame offset (as carried by a fleet p99 exemplar) instead: \
     list the events recorded in the SEGM frame at this byte offset."

let topk_cmd =
  C.cmd ~name:"topk"
    ~doc:
      "Offline heavy hitters over a journal (space-saving, with guaranteed \
       count bounds); --offset resolves an exemplar's frame"
    ~flags:[ key_flag; capacity_flag; top_flag; offset_flag ]
    (fun p ->
      let path = journal_file p in
      match C.str p offset_flag with
      | Some _ -> (
          (* The exemplar-resolution path: a fleet p99 exemplar carries the
             byte offset of the SEGM frame its request was recorded into;
             this lists exactly that frame's events. *)
          let off = C.int_of p ~min:0 ~default:0 offset_flag in
          match
            Obs.Journal.fold ~path ~init:[]
              (fun acc (e : Obs.Journal.event) ->
                if e.off = off then e :: acc else acc)
          with
          | Error e ->
              Printf.eprintf "journal topk: %s\n" e;
              exit 1
          | Ok (acc, info) ->
              print_info info;
              let evs = List.rev acc in
              Printf.printf "frame at offset %d: %d event(s)\n" off
                (List.length evs);
              List.iter
                (fun (e : Obs.Journal.event) ->
                  Printf.printf "  %-10s %-14s ts %-14d arg %d\n"
                    (Obs.Journal.machine_name info e.stream)
                    (Obs.Trace.name e.kind) e.ts e.arg)
                evs;
              if evs = [] then begin
                Printf.eprintf
                  "journal topk: no events at offset %d (not a SEGM frame \
                   of this journal?)\n"
                  off;
                exit 1
              end)
      | None -> (
          let capacity = C.int_of p ~min:1 ~default:64 capacity_flag in
          let top = C.int_of p ~min:1 ~default:10 top_flag in
          let mode =
            match C.str p key_flag with
            | None | Some "machine-kind" -> `Machine_kind
            | Some "kind" -> `Kind
            | Some "machine" -> `Machine
            | Some g ->
                C.fail p
                  (Printf.sprintf
                     "unknown key %S (expected machine-kind, kind or machine)"
                     g)
          in
          (* Machine names are interned in the stream itself, so resolve
             them first (one metadata pass), then fold the events through a
             space-saving table with one interned key string per
             (stream, kind) class. *)
          match Obs.Journal.read_info ~path with
          | Error e ->
              Printf.eprintf "journal topk: %s\n" e;
              exit 1
          | Ok info -> (
              let tk = Obs.Topk.create ~capacity () in
              let cache : (int, string) Hashtbl.t = Hashtbl.create 64 in
              let key (e : Obs.Journal.event) =
                let ki = Obs.Trace.index e.kind in
                let ck =
                  match mode with
                  | `Machine_kind -> (e.stream * Obs.Trace.n_kinds) + ki
                  | `Kind -> ki
                  | `Machine -> -1 - e.stream
                in
                match Hashtbl.find_opt cache ck with
                | Some s -> s
                | None ->
                    let s =
                      match mode with
                      | `Machine_kind ->
                          Obs.Journal.machine_name info e.stream
                          ^ "/" ^ Obs.Trace.name e.kind
                      | `Kind -> Obs.Trace.name e.kind
                      | `Machine -> Obs.Journal.machine_name info e.stream
                    in
                    Hashtbl.add cache ck s;
                    s
              in
              match
                Obs.Journal.fold ~path ~init:()
                  (fun () (e : Obs.Journal.event) ->
                    Obs.Topk.observe tk ~key:(key e) ~weight:1)
              with
              | Error e ->
                  Printf.eprintf "journal topk: %s\n" e;
                  exit 1
              | Ok ((), info) ->
                  print_info info;
                  let s = Obs.Topk.seal tk in
                  Printf.printf
                    "heavy hitters: %d key(s) tracked, capacity %d, absent \
                     keys <= %d\n"
                    (Obs.Topk.n_keys s) capacity (Obs.Topk.floor_total s);
                  List.iter
                    (fun (r : Obs.Topk.ranked) ->
                      Printf.printf "  %10d  %-28s true in [%d, %d]\n"
                        r.Obs.Topk.rcount r.Obs.Topk.rkey r.Obs.Topk.lower
                        r.Obs.Topk.upper)
                    (Obs.Topk.top ~n:top s))))

let journal_cmd =
  C.group ~name:"journal"
    ~doc:"Analyze flight-recorder journals written by run --record"
    [ query_cmd; critical_cmd; diff_cmd; export_cmd; topk_cmd ]

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  C.run ~prog:"erebor-sim"
    ~doc:"Run the paper's workloads on the simulated Erebor CVM"
    [
      run_cmd; profile_cmd; compare_cmd; list_cmd; selfcheck_cmd; audit_cmd;
      journal_cmd;
    ]
