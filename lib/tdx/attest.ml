let report_data_size = 64
let rtmr_count = 4
let digest_size = Crypto.Sha256.digest_size

type report = {
  mrtd : bytes;
  rtmrs : bytes array;
  report_data : bytes;
  mac : bytes;
}

type measurements = {
  mutable mrtd_value : bytes;
  rtmr_values : bytes array;
}

let create_measurements () =
  {
    mrtd_value = Bytes.make digest_size '\000';
    rtmr_values = Array.init rtmr_count (fun _ -> Bytes.make digest_size '\000');
  }

let chain current data =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx current;
  Crypto.Sha256.feed ctx (Crypto.Sha256.digest_bytes data);
  Crypto.Sha256.digest ctx

let extend_mrtd m data = m.mrtd_value <- chain m.mrtd_value data
let mrtd m = Bytes.copy m.mrtd_value

let check_index index =
  if index < 0 || index >= rtmr_count then invalid_arg "Attest: bad RTMR index"

let extend_rtmr m ~index data =
  check_index index;
  m.rtmr_values.(index) <- chain m.rtmr_values.(index) data

let rtmr m ~index =
  check_index index;
  Bytes.copy m.rtmr_values.(index)

let pad_report_data data =
  if Bytes.length data > report_data_size then
    invalid_arg "Attest: report_data exceeds 64 bytes";
  let out = Bytes.make report_data_size '\000' in
  Bytes.blit data 0 out 0 (Bytes.length data);
  out

let serialize_body r =
  Bytes.concat Bytes.empty
    (Bytes.of_string "TDREPORT" :: r.mrtd :: (Array.to_list r.rtmrs @ [ r.report_data ]))

let generate m ~hw_key ~report_data =
  let body =
    {
      mrtd = Bytes.copy m.mrtd_value;
      rtmrs = Array.map Bytes.copy m.rtmr_values;
      report_data = pad_report_data report_data;
      mac = Bytes.empty;
    }
  in
  { body with mac = Crypto.Hmac.mac ~key:hw_key (serialize_body body) }

let verify ~hw_key r = Crypto.Hmac.verify ~key:hw_key (serialize_body r) ~tag:r.mac

(* Short, log-friendly identity of a report: first 8 hex chars of MRTD and
   of the MAC — enough to correlate audit records with a handshake without
   copying whole measurements into the log. *)
let fingerprint r =
  let short b = String.sub (Crypto.Sha256.hex b) 0 8 in
  Printf.sprintf "mrtd=%s mac=%s" (short r.mrtd) (short r.mac)
