type vmcall_result = V_int of int64 | V_bytes of bytes | V_unit | V_error of string

type vmm_handler = Ghci.vmcall -> vmcall_result

type t = {
  sept : Sept.t;
  measurements : Attest.measurements;
  hw_key : bytes;
  clock : Hw.Cycles.clock;
  mutable vmm : vmm_handler option;
  mutable finalized : bool;
  mutable tdcalls : int;
  mutable vmcalls : int;
  mutable tdreports : int;
  mutable map_gpas : int;
}

let create ~mem ~clock ~hw_key =
  {
    sept = Sept.create ~frames:(Hw.Phys_mem.frames mem);
    measurements = Attest.create_measurements ();
    hw_key;
    clock;
    vmm = None;
    finalized = false;
    tdcalls = 0;
    vmcalls = 0;
    tdreports = 0;
    map_gpas = 0;
  }

let sept t = t.sept
let measurements t = t.measurements
let set_vmm t h = t.vmm <- Some h

let measure_initial t data =
  if t.finalized then invalid_arg "Td_module.measure_initial: TD build already finalized";
  Attest.extend_mrtd t.measurements data

type tdcall_result =
  | Ok_int of int64
  | Ok_bytes of bytes
  | Ok_report of Attest.report
  | Ok_unit
  | Error_leaf of string

let do_tdcall t cpu leaf =
  match leaf with
  | Ghci.Vmcall v -> (
      t.vmcalls <- t.vmcalls + 1;
      Hw.Cycles.advance t.clock Hw.Cycles.Cost.tdcall_roundtrip;
      match t.vmm with
      | None -> Error_leaf "no VMM attached"
      | Some handler -> (
          (* The TDX module protects guest context across the synchronous
             exit: the host handler runs against scrubbed registers. *)
          let saved = Hw.Cpu.snapshot_regs cpu in
          Hw.Cpu.scrub_regs cpu;
          let result = handler v in
          Hw.Cpu.restore_regs cpu saved;
          match result with
          | V_int v -> Ok_int v
          | V_bytes b -> Ok_bytes b
          | V_unit -> Ok_unit
          | V_error e -> Error_leaf e))
  | Ghci.Tdreport { report_data } ->
      t.tdreports <- t.tdreports + 1;
      Hw.Cycles.advance t.clock Hw.Cycles.Cost.tdreport_native;
      Ok_report (Attest.generate t.measurements ~hw_key:t.hw_key ~report_data)
  | Ghci.Map_gpa { pfn; shared } ->
      t.map_gpas <- t.map_gpas + 1;
      Hw.Cycles.advance t.clock Hw.Cycles.Cost.tdcall_roundtrip;
      if pfn < 0 || pfn >= Sept.frames t.sept then Error_leaf "map_gpa: pfn out of range"
      else begin
        Sept.convert t.sept pfn (if shared then Sept.Shared else Sept.Private);
        Ok_unit
      end
  | Ghci.Rtmr_extend { index; data } ->
      Hw.Cycles.advance t.clock Hw.Cycles.Cost.tdcall_roundtrip;
      (try
         Attest.extend_rtmr t.measurements ~index data;
         Ok_unit
       with Invalid_argument e -> Error_leaf e)

let tdcall t cpu leaf =
  if cpu.Hw.Cpu.mode = Hw.Cpu.User then
    Hw.Fault.raise_fault (Hw.Fault.General_protection "tdcall from user mode");
  t.finalized <- true;
  t.tdcalls <- t.tdcalls + 1;
  let t0 = Hw.Cycles.now t.clock in
  let result = do_tdcall t cpu leaf in
  let spent = Hw.Cycles.now t.clock - t0 in
  Obs.Emitter.emit cpu.Hw.Cpu.obs Obs.Trace.Tdcall ~ts:t0 ~arg:spent;
  (match leaf with
  | Ghci.Vmcall _ -> Obs.Emitter.emit cpu.Hw.Cpu.obs Obs.Trace.Vmcall ~ts:t0 ~arg:spent
  | Ghci.Tdreport _ | Ghci.Map_gpa _ | Ghci.Rtmr_extend _ -> ());
  result

let with_async_exit t cpu f =
  ignore t;
  let saved = Hw.Cpu.snapshot_regs cpu in
  Hw.Cpu.scrub_regs cpu;
  Fun.protect ~finally:(fun () -> Hw.Cpu.restore_regs cpu saved) f

let tdcall_count t = t.tdcalls
let vmcall_count t = t.vmcalls
let tdreport_count t = t.tdreports
let map_gpa_count t = t.map_gpas
