(** TDX attestation: the MRTD build-time measurement, runtime measurement
    registers, and TDREPORT generation/verification.

    Substitution note (DESIGN.md): real TDX reports are MACed with a
    CPU-fused key and converted to ECDSA quotes by the quoting enclave. Here
    the "hardware key" is a per-machine secret shared with the verifier
    library, and the report MAC is HMAC-SHA256 over the serialized report
    body. The trust structure is identical: only the TDX module can produce
    a valid MAC, and the report binds measurements to caller data. *)

val report_data_size : int (** 64. *)
val rtmr_count : int       (** 4. *)

type report = {
  mrtd : bytes;                (** 32-byte build measurement. *)
  rtmrs : bytes array;         (** 4 × 32-byte runtime registers. *)
  report_data : bytes;         (** 64-byte caller binding. *)
  mac : bytes;                 (** HMAC over the serialized body. *)
}

type measurements
(** Mutable measurement state owned by the TDX module. *)

val create_measurements : unit -> measurements

val extend_mrtd : measurements -> bytes -> unit
(** MRTD <- SHA256(MRTD || SHA256(data)) — boot-time only in spirit; callers
    enforce the phase. *)

val mrtd : measurements -> bytes

val extend_rtmr : measurements -> index:int -> bytes -> unit
(** Same chaining for a runtime register; raises on a bad index. *)

val rtmr : measurements -> index:int -> bytes

val generate : measurements -> hw_key:bytes -> report_data:bytes -> report
(** Build a MACed report. [report_data] shorter than 64 bytes is zero-padded;
    longer raises [Invalid_argument]. *)

val verify : hw_key:bytes -> report -> bool
(** Check the MAC (the verifier side of quote verification). *)

val serialize_body : report -> bytes
(** The MACed byte string, exposed for tests. *)

val fingerprint : report -> string
(** Short log-friendly identity (["mrtd=<8 hex> mac=<8 hex>"]) for audit
    records and debug output. *)
