(** Multi-tenant sandbox density: per-backend overhead on the Fig. 9
    workloads plus the 1→256 sandboxes-per-CVM scaling curve.

    The paper runs one sandbox per CVM; with pluggable {!Erebor.Isolation}
    backends the same monitor hosts N mutually-distrusting tenants, so two
    new questions appear: what does each backend cost on the calibrated
    workloads, and how does density scale — memory overhead (confined +
    page-table frames), EMC-rate interference between tenants, and
    per-tenant tail latency from {!Obs.Request} root windows. Every scaling
    machine also runs an adversarial probe (cross-tenant confined mapping,
    key-id forgery under TME-MK, sealed-common writable mapping); any
    attempt that is {e not} denied counts as an isolation violation. *)

(** {2 Per-backend Fig. 9 overhead} *)

type backend_row = {
  bprogram : string;
  bbackend : Erebor.Isolation.kind;
  native_cycles : int;
  backend_cycles : int;
  boverhead_pct : float;   (** Run-phase overhead vs the same program native. *)
}

val backend_overhead :
  ?jobs:int -> ?smoke:bool -> ?backends:Erebor.Isolation.kind list ->
  unit -> backend_row list
(** Each Fig. 9 program under full Erebor with each backend, against one
    native baseline per program. [smoke] restricts to drugbank (the @ci
    gate); backends default to [[Pks; Tme_mk]]. Fanned over [jobs]
    domains; rows independent of [jobs]. *)

(** {2 1→256 tenants-per-CVM scaling} *)

type tenant_latency = {
  tenant_id : int;
  tenant_name : string;
  treqs : int;       (** Requests completed by this tenant. *)
  t_p50 : int;       (** Median root-window cycles. *)
  t_p99 : int;       (** Tail root-window cycles. *)
}

type scale_row = {
  sbackend : Erebor.Isolation.kind;
  tenants : int;
  confined_frames : int;    (** Pinned confined frames across all tenants. *)
  ptp_frames : int;         (** Guard-registered page-table pages. *)
  common_frames : int;      (** Frames backing the shared common instance. *)
  frames_per_tenant : float;
      (** (confined + ptp + common) / tenants — the CVM memory overhead
          of packing one more sandbox in. *)
  emc_per_request : float;  (** EMCs per completed request at this density. *)
  emc_interference_pct : float;
      (** Per-request EMC cost vs the same backend's 1-tenant row — the
          interference neighbours add. *)
  worst_p99 : int;          (** Max per-tenant p99 (cycles). *)
  tenant_rows : tenant_latency list;
  violations : int;         (** Adversarial attempts NOT denied; must be 0. *)
}

val scaling :
  ?jobs:int -> ?smoke:bool -> ?backends:Erebor.Isolation.kind list ->
  ?tenant_counts:int list -> ?requests_per_tenant:int ->
  unit -> scale_row list
(** One fresh machine per (backend, tenant-count): N sandboxes share one
    common instance, each is sealed with its own client data, then
    round-robin request traffic is driven through the monitored paths
    (CR3 switch, confined/common touches, channel ioctls, timer ticks)
    with one {!Obs.Request} root window per request. [tenant_counts]
    defaults to powers of two 1→256 (smoke: [[1; 2; 4]]). *)
