(** Workload construction: a per-program event profile (Table 5/6) plus a
    genuine compute kernel. The profile drives the machine's event stream —
    page faults, host I/O, MMU churn, synchronization — while the kernel
    produces the actual request/response bytes.

    Scaling (documented in DESIGN.md): memory regions are simulated at
    1/[mem_scale] of the paper's sizes and runs last 1/[time_scale] of the
    paper's wall-clock; all reported *rates* are per-second and the
    overhead percentages are scale-free. *)

val mem_scale : int   (** 16. *)
val time_scale : int  (** 8. *)

val cycles_per_second : int
(** 2.1e9 — the nominal core frequency. *)

val set_scale : float -> unit
(** Multiply every profile's simulated duration by this factor (default 1.0;
    the bench harness's [--scale]). Overheads are scale-free; this only
    trades fidelity of the rate estimates against wall-clock. Set it before
    running machines — in particular before spawning worker domains. *)

type profile = {
  name : string;
  nominal_seconds : float;      (** Table 6 "Time". *)
  nominal_confined_mb : int;    (** Table 6 "Conf.". *)
  common : (string * int) option;  (** Instance name, Table 6 "Com." MB. *)
  threads : int;
  timer_hz : int;               (** Table 6 #Timer target. *)
  pf_per_sec : float;           (** Table 6 #PF target. *)
  hostio_per_sec : float;       (** Table 6 #VE target (proxy networking). *)
  hostio_bytes : int;
  pte_churn_per_sec : float;    (** Background kernel MMU work (EMC rate knob). *)
  sync_per_sec : float;         (** Thread synchronization rate. *)
  contention : float;
  service_per_sec : float;      (** Runtime services (heap/fs). *)
  init_cycles_per_page : int;   (** Content-loading work per confined page. *)
  output_bucket : int;
}

val to_spec :
  profile -> input:bytes -> real_work:(Sim.Machine.ops -> unit) -> Sim.Machine.spec
(** Build a machine spec: [real_work] runs first (producing genuine output
    through the ops channel); then the event loop replays the profile for
    the scaled duration. *)
