let mem_scale = 16
let time_scale = 8
let cycles_per_second = 2_100_000_000
let steps_per_second = 100

type profile = {
  name : string;
  nominal_seconds : float;
  nominal_confined_mb : int;
  common : (string * int) option;
  threads : int;
  timer_hz : int;
  pf_per_sec : float;
  hostio_per_sec : float;
  hostio_bytes : int;
  pte_churn_per_sec : float;
  sync_per_sec : float;
  contention : float;
  service_per_sec : float;
  init_cycles_per_page : int;
  output_bucket : int;
}

let mb = 1024 * 1024
let page_size = Hw.Phys_mem.page_size

(* Duration multiplier (the bench --scale knob). Set once before any machine
   runs — and before any domains spawn — then only read, so the plain ref is
   domain-safe. *)
let scale = ref 1.0

let set_scale f =
  if f <= 0.0 then invalid_arg "Workload.set_scale: scale must be positive";
  scale := f

(* Fractional event accumulator: emits whole events as the fraction
   accumulates across steps. *)
let accumulator rate_per_step =
  let acc = ref 0.0 in
  fun emit ->
    acc := !acc +. rate_per_step;
    while !acc >= 1.0 do
      acc := !acc -. 1.0;
      emit ()
    done

let to_spec p ~input ~real_work =
  let confined_bytes = p.nominal_confined_mb * mb / mem_scale in
  let confined_pages = max 1 (confined_bytes / page_size) in
  let body (ops : Sim.Machine.ops) =
    real_work ops;
    let sim_seconds = p.nominal_seconds *. !scale /. float_of_int time_scale in
    let steps = int_of_float (sim_seconds *. float_of_int steps_per_second) in
    let per_step rate = rate /. float_of_int steps_per_second in
    let pf = accumulator (per_step p.pf_per_sec) in
    let hostio = accumulator (per_step p.hostio_per_sec) in
    let churn = accumulator (per_step p.pte_churn_per_sec) in
    let sync = accumulator (per_step p.sync_per_sec) in
    let services = accumulator (per_step p.service_per_sec) in
    let step_cycles = cycles_per_second / steps_per_second in
    for _ = 1 to steps do
      pf (fun () -> ops.Sim.Machine.cold_fault ());
      hostio (fun () -> ops.Sim.Machine.host_io ~bytes:p.hostio_bytes);
      churn (fun () -> ops.Sim.Machine.pte_churn ~n:1);
      services (fun () -> ops.Sim.Machine.service ());
      let sync_ops = ref 0 in
      sync (fun () -> incr sync_ops);
      (* All [threads] workers run flat out for one step of wall-clock. *)
      ops.Sim.Machine.parallel ~total:(step_cycles * p.threads) ~sync_ops:!sync_ops
    done
  in
  {
    Sim.Machine.name = p.name;
    sandboxed = true;
    timer_hz = p.timer_hz;
    init_compute = confined_pages * p.init_cycles_per_page;
    confined_bytes;
    nominal_confined_mb = p.nominal_confined_mb;
    common =
      Option.map (fun (name, size_mb) -> (name, size_mb * mb / mem_scale, size_mb)) p.common;
    threads = p.threads;
    contention = p.contention;
    input;
    output_bucket = p.output_bucket;
    body;
  }
