(* Experiment drivers for every table and figure in §9. *)

type transition_row = {
  transition : string;
  cycles : int;
  ratio_vs_emc : float;
  paper_cycles : int;
}

let measure clock f =
  let t0 = Hw.Cycles.now clock in
  f ();
  Hw.Cycles.now clock - t0

(* [?instrument] lets callers attach passive sinks (windows, recorders) to
   each bench machine's emitter before it boots; the measured numbers must
   not move — the bench gate's byte-identity check rides on this hook. When
   absent the machine makes its own emitter, exactly as before. *)
let bench_machine ?backend ?instrument ~setting () =
  match instrument with
  | None -> Sim.Machine.create ?backend ~frames:16384 ~cma_frames:1024 ~setting ()
  | Some f ->
      let obs = Obs.Emitter.create () in
      f obs;
      Sim.Machine.create ~obs ?backend ~frames:16384 ~cma_frames:1024 ~setting ()

let table3 ?backend ?instrument () =
  (* EMC: an empty monitor call through the gate. *)
  let full = bench_machine ?backend ?instrument ~setting:Sim.Config.Erebor_full () in
  let gate =
    match Sim.Machine.manager full with
    | Some mgr -> Erebor.Monitor.gate (Erebor.Sandbox.manager_monitor mgr)
    | None -> assert false
  in
  let emc = measure (Sim.Machine.clock full) (fun () -> Erebor.Gate.call gate (fun () -> ())) in
  (* SYSCALL: an empty syscall on a native machine. *)
  let native = bench_machine ?instrument ~setting:Sim.Config.Native () in
  let kern = Sim.Machine.kern native in
  let task = Kernel.create_task kern ~name:"bench" ~kind:Kernel.Task.Normal in
  let syscall =
    measure (Sim.Machine.clock native) (fun () ->
        ignore (Kernel.syscall kern task Kernel.Syscall.Getpid))
  in
  (* TDCALL: a guest hypercall in a TD. *)
  let tdcall =
    measure (Sim.Machine.clock native) (fun () ->
        ignore (kern.Kernel.privops.Kernel.Privops.tdcall (Tdx.Ghci.Vmcall Tdx.Ghci.Hlt)))
  in
  (* VMCALL: a hypercall in a normal (non-TD) guest — no TDX module context
     protection, taken from the calibrated model. *)
  let vmcall = Hw.Cycles.Cost.vmcall_roundtrip in
  let ratio v = float_of_int v /. float_of_int emc in
  [
    { transition = "EMC"; cycles = emc; ratio_vs_emc = ratio emc; paper_cycles = 1224 };
    { transition = "SYSCALL"; cycles = syscall; ratio_vs_emc = ratio syscall; paper_cycles = 684 };
    { transition = "TDCALL"; cycles = tdcall; ratio_vs_emc = ratio tdcall; paper_cycles = 5276 };
    { transition = "VMCALL"; cycles = vmcall; ratio_vs_emc = ratio vmcall; paper_cycles = 4031 };
  ]

type privop_row = {
  op : string;
  native_cycles : int;
  erebor_cycles : int;
  slowdown : float;
  paper_native : int;
  paper_erebor : int;
}

let table4 ?backend ?instrument () =
  let run_setting setting =
    let m = bench_machine ?backend ?instrument ~setting () in
    let kern = Sim.Machine.kern m in
    let ops = kern.Kernel.privops in
    let clock = Sim.Machine.clock m in
    let pte_addr = Hw.Phys_mem.addr_of_pfn kern.Kernel.kernel_root + (8 * 200) in
    let mmu = measure clock (fun () -> ops.Kernel.Privops.write_pte ~pte_addr Hw.Pte.empty) in
    let cr =
      measure clock (fun () -> ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap true)
    in
    let msr = measure clock (fun () -> ops.Kernel.Privops.write_msr Hw.Msr.ia32_efer 1L) in
    let idt = measure clock (fun () -> ops.Kernel.Privops.lidt (Hw.Idt.create ())) in
    let ghci =
      match setting with
      | Sim.Config.Native ->
          measure clock (fun () ->
              ignore
                (ops.Kernel.Privops.tdcall (Tdx.Ghci.Tdreport { report_data = Bytes.empty })))
      | _ ->
          let monitor =
            Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
          in
          measure clock (fun () ->
              ignore (Erebor.Monitor.tdreport monitor ~report_data:Bytes.empty))
    in
    (* SMAP: the bare stac/clac pair (the user-copy payload factored out). *)
    let smap =
      match setting with
      | Sim.Config.Native -> Hw.Cycles.Cost.stac_native
      | _ -> Hw.Cycles.Cost.emc_roundtrip + Hw.Cycles.Cost.emc_service_smap
    in
    (mmu, cr, msr, idt, smap, ghci)
  in
  let n_mmu, n_cr, n_msr, n_idt, n_smap, n_ghci = run_setting Sim.Config.Native in
  let e_mmu, e_cr, e_msr, e_idt, e_smap, e_ghci = run_setting Sim.Config.Erebor_full in
  let row op native erebor paper_native paper_erebor =
    { op; native_cycles = native; erebor_cycles = erebor;
      slowdown = float_of_int erebor /. float_of_int native; paper_native; paper_erebor }
  in
  [
    row "MMU" n_mmu e_mmu 23 1345;
    row "CR" n_cr e_cr 294 1593;
    row "SMAP" n_smap e_smap 62 1291;
    row "IDT" n_idt e_idt 260 1369;
    row "MSR" n_msr e_msr 364 1613;
    row "GHCI" n_ghci e_ghci 126806 128081;
  ]

type lmbench_row = {
  bench : string;
  native_avg : float;
  erebor_avg : float;
  ratio : float;
  emc_per_sec : float;
}

let fig8 ?jobs () =
  Sim.Runner.map_list ?jobs
    (fun b ->
      let ratio, native, erebor = Lmbench.overhead b in
      {
        bench = b.Lmbench.bench_name;
        native_avg = native.Lmbench.avg_cycles;
        erebor_avg = erebor.Lmbench.avg_cycles;
        ratio;
        emc_per_sec = erebor.Lmbench.emc_per_sec;
      })
    Lmbench.benches

type program_row = {
  program : string;
  setting : Sim.Config.setting;
  overhead_pct : float;
  init_overhead_pct : float;
  time_seconds : float;
  pf_rate : float;
  timer_rate : float;
  ve_rate : float;
  emc_rate : float;
  confined_mb : int;
  common_mb : int;
  output_bytes : int;
}

let all_programs =
  [
    ("llama.cpp", Llm.spec);
    ("yolo", Imageproc.spec);
    ("drugbank", Retrieval.spec);
    ("graphchi", Graph.spec);
    ("unicorn", Ids.spec);
  ]

let fig9 ?jobs () =
  (* Every (program, setting) machine is independent: flatten to one task
     list, fan it across the domain pool, then regroup. Row order matches
     the sequential driver exactly (programs outer, settings inner). *)
  let tasks =
    List.concat_map
      (fun (program, spec_fn) ->
        List.map (fun setting -> (program, spec_fn, setting)) Sim.Config.all)
      all_programs
  in
  let results =
    Sim.Runner.map_list ?jobs
      (fun (_, spec_fn, setting) -> Sim.Machine.run_fresh ~setting (spec_fn ()))
      tasks
  in
  let runs =
    List.map2 (fun (program, spec_fn, setting) r -> (program, spec_fn, setting, r)) tasks results
  in
  let native_of program =
    match
      List.find_opt (fun (p, _, s, _) -> p = program && s = Sim.Config.Native) runs
    with
    | Some (_, _, _, r) -> r
    | None -> assert false
  in
  List.map
    (fun (program, spec_fn, setting, (r : Sim.Machine.run_result)) ->
      let native = native_of program in
      let pct now base = 100.0 *. ((float_of_int now /. float_of_int base) -. 1.0) in
      let spec = spec_fn () in
      {
        program;
        setting;
        overhead_pct = pct r.Sim.Machine.run_cycles native.Sim.Machine.run_cycles;
        init_overhead_pct = pct r.Sim.Machine.init_cycles native.Sim.Machine.init_cycles;
        time_seconds =
          Hw.Cycles.to_seconds r.Sim.Machine.run_cycles
          *. float_of_int Workload.time_scale;
        pf_rate = Sim.Stats.pf_rate r.Sim.Machine.stats;
        timer_rate = Sim.Stats.timer_rate r.Sim.Machine.stats;
        ve_rate = Sim.Stats.ve_rate r.Sim.Machine.stats;
        emc_rate = Sim.Stats.emc_rate r.Sim.Machine.stats;
        confined_mb = spec.Sim.Machine.nominal_confined_mb;
        common_mb =
          (match spec.Sim.Machine.common with Some (_, _, mb) -> mb | None -> 0);
        output_bytes = Bytes.length r.Sim.Machine.output;
      })
    runs

let table6 rows = List.filter (fun r -> r.setting = Sim.Config.Erebor_full) rows

let geomean_overhead rows setting =
  let overs =
    List.filter_map
      (fun r -> if r.setting = setting then Some (1.0 +. (r.overhead_pct /. 100.0)) else None)
      rows
  in
  match overs with
  | [] -> 0.0
  | _ ->
      let logsum = List.fold_left (fun acc v -> acc +. log v) 0.0 overs in
      100.0 *. (exp (logsum /. float_of_int (List.length overs)) -. 1.0)

type netserve_row = {
  server : string;
  file_kb : int;
  native_mbps : float;
  erebor_mbps : float;
  relative : float;
}

(* Cycle attribution: re-run every Fig. 9 (program, setting) machine with an
   [Obs.Attrib] sink attached and decompose its total virtual cycles into
   (privilege domain x phase) contexts. The overhead analysis of §9 becomes
   emergent: the monitor's share is the gate + service spans, the kernel's
   the handler spans, and the invariant [unattributed + sum contexts =
   total] holds exactly because emission never advances the clock. *)

type attrib_row = {
  aprogram : string;
  asetting : Sim.Config.setting;
  total_cycles : int;
  unattributed_cycles : int;
  contexts : (string * string * int) list;
}

let attrib ?jobs ?(smoke = false) () =
  (* Smoke cut for @ci: one program across every setting still exercises
     span nesting, the EMC service phases, and the conservation invariant,
     at a fraction of the full 25-cell sweep. *)
  let programs = if smoke then [ List.hd all_programs ] else all_programs in
  let tasks =
    List.concat_map
      (fun (program, spec_fn) ->
        List.map (fun setting -> (program, spec_fn, setting)) Sim.Config.all)
      programs
  in
  Sim.Runner.map_list ?jobs
    (fun (program, spec_fn, setting) ->
      let obs = Obs.Emitter.create () in
      let attrib = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
      let m = Sim.Machine.create ~obs ~setting () in
      ignore (Sim.Machine.run m (spec_fn ()));
      let total = Hw.Cycles.now (Sim.Machine.clock m) in
      Obs.Attrib.close attrib ~now:total;
      {
        aprogram = program;
        asetting = setting;
        total_cycles = total;
        unattributed_cycles = Obs.Attrib.unattributed attrib;
        contexts =
          List.map
            (fun (d, p, c) ->
              (Obs.Trace.domain_name d, Obs.Trace.phase_name p, c))
            (Obs.Attrib.breakdown attrib);
      })
    tasks

let fig10 ?jobs () =
  let tasks =
    List.concat_map
      (fun server -> List.map (fun file_kb -> (server, file_kb)) Netserve.file_sizes_kb)
      [ Netserve.Ssh; Netserve.Nginx ]
  in
  Sim.Runner.map_list ?jobs
    (fun (server, file_kb) ->
      let requests = max 2 (min 100 (2048 / file_kb)) in
      let native = Netserve.run ~setting:Sim.Config.Native server ~file_kb ~requests in
      let erebor =
        Netserve.run ~setting:Sim.Config.Erebor_full server ~file_kb ~requests
      in
      {
        server = Netserve.server_name server;
        file_kb;
        native_mbps = native.Netserve.mb_per_sec;
        erebor_mbps = erebor.Netserve.mb_per_sec;
        relative = erebor.Netserve.mb_per_sec /. native.Netserve.mb_per_sec;
      })
    tasks

type memshare_row = {
  sandboxes : int;
  shared_frames : int;
  replicated_frames : int;
  saving_pct : float;
}

(* Grow a fleet to [upto] sandboxes over a single model instance on a fresh
   machine (llama.cpp's deployment story in §9.2), producing one accounting
   row per fleet size. Frame counts are fully determined by the fleet size,
   so running the loop to [n] on a fresh machine reproduces row [n] of the
   cumulative run exactly — which is what lets the parallel mode below fan
   one fleet size per domain without changing any number. *)
let memshare_rows_upto upto =
  let m = Sim.Machine.create ~setting:Sim.Config.Erebor_full () in
  let mgr = Option.get (Sim.Machine.manager m) in
  let kern = Sim.Machine.kern m in
  let mb = 1024 * 1024 in
  let model_bytes = 4096 * mb / Workload.mem_scale in
  let confined_bytes = 501 * mb / Workload.mem_scale in
  let page = Hw.Phys_mem.page_size in
  let confined_frames = confined_bytes / page in
  let rows = ref [] in
  for n = 1 to upto do
    let sb =
      match
        Erebor.Sandbox.create_sandbox mgr ~name:(Printf.sprintf "llama-%d" n)
          ~confined_budget:confined_bytes
      with
      | Ok sb -> sb
      | Error e -> failwith e
    in
    (match Erebor.Sandbox.declare_confined mgr sb ~len:confined_bytes with
    | Ok _ -> ()
    | Error e -> failwith e);
    (match Erebor.Sandbox.attach_common mgr sb ~name:"llama2-7b" ~size:model_bytes with
    | Error e -> failwith e
    | Ok base -> (
        (* The sandbox streams the whole model. *)
        match Kernel.populate kern (Erebor.Sandbox.main_task sb) ~start:base ~len:model_bytes with
        | Ok () -> ()
        | Error e -> failwith e));
    let model_frames = Erebor.Sandbox.common_instance_frames mgr ~name:"llama2-7b" in
    let shared = model_frames + (n * confined_frames) in
    let replicated = n * (model_frames + confined_frames) in
    rows :=
      {
        sandboxes = n;
        shared_frames = shared;
        replicated_frames = replicated;
        saving_pct = 100.0 *. (1.0 -. (float_of_int shared /. float_of_int replicated));
      }
      :: !rows
  done;
  List.rev !rows

let memshare ?jobs ?(max_sandboxes = 8) () =
  let parallel =
    match jobs with Some j -> j > 1 | None -> Sim.Runner.default_jobs () > 1
  in
  if not parallel then memshare_rows_upto max_sandboxes
  else
    (* One fleet size per task, each on its own machine; keep only the
       final row of each cumulative run. *)
    Sim.Runner.map_list ?jobs
      (fun n ->
        match List.rev (memshare_rows_upto n) with
        | last :: _ -> last
        | [] -> assert false)
      (List.init max_sandboxes (fun i -> i + 1))
