(** Minimal argv scanning for examples and bench drivers (no cmdliner):
    [--flag VALUE] pairs and bare [--flag] switches, anywhere on the
    command line. The last occurrence wins. [argv] defaults to
    [Sys.argv]. *)

val flag_arg : ?argv:string array -> string -> string option
(** The value following the last occurrence of [name], if any. *)

val has_flag : ?argv:string array -> string -> bool
(** Whether the bare switch [name] appears at all. *)

val int_arg : ?argv:string array -> ?min:int -> default:int -> string -> int
(** Integer value of [name], or [default] when absent. Prints a diagnostic
    and exits with status 2 when the value is not an integer [>= min]
    (default [min = 1]). *)
