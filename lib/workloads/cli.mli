(** Command-line parsing for the binaries, bench drivers and examples — no
    cmdliner.

    Two layers:

    - the original minimal argv scanners ({!flag_arg}, {!has_flag},
      {!int_arg}) the examples use: [--flag VALUE] pairs and bare [--flag]
      switches anywhere on the line, last occurrence wins;
    - a declarative subcommand framework ({!cmd}, {!group}, {!run}) for the
      real drivers: named flags with docstrings, positional arguments,
      generated per-subcommand usage, and unknown-flag diagnostics that
      print the usage of the subcommand they occurred under (exit 2). *)

val flag_arg : ?argv:string array -> string -> string option
(** The value following the last occurrence of [name], if any. *)

val has_flag : ?argv:string array -> string -> bool
(** Whether the bare switch [name] appears at all. *)

val int_arg : ?argv:string array -> ?min:int -> default:int -> string -> int
(** Integer value of [name], or [default] when absent. Prints a diagnostic
    and exits with status 2 when the value is not an integer [>= min]
    (default [min = 1]). *)

(** {2 Subcommand framework} *)

type flag
(** A named option: one or more spellings, an optional value placeholder
    (a flag without one is a bare switch), and a docstring. *)

val flag : ?docv:string -> string list -> string -> flag
(** [flag ~docv ["-w"; "--workload"] doc]. With [docv] the flag consumes
    the following argv word as its value; without, it is a switch. *)

type parsed
(** The result of parsing one subcommand's arguments. *)

val str : parsed -> flag -> string option
(** The flag's value (last occurrence wins), if present. *)

val has : parsed -> flag -> bool

val int_of : parsed -> ?min:int -> default:int -> flag -> int
(** Integer value with range check; parse failures are usage errors
    ({!fail}). *)

val float_of : parsed -> ?min:float -> default:float -> flag -> float

val pos : parsed -> string list
(** Positional (non-flag) arguments, in order. *)

val fail : parsed -> string -> 'a
(** Print [msg] and the current subcommand's usage to stderr, exit 2. For
    semantic errors discovered after parsing (unknown workload name, ...);
    parse-level errors (unknown flag, missing value) go through the same
    path automatically. *)

type cmd

val cmd : ?flags:flag list -> name:string -> doc:string -> (parsed -> unit) -> cmd

val group : name:string -> doc:string -> cmd list -> cmd
(** A subcommand with nested subcommands ([audit verify], [journal query]).
    Groups nest arbitrarily; flags attach to leaves. *)

val run :
  ?argv:string array -> ?default:string -> prog:string -> doc:string ->
  cmd list -> unit
(** Dispatch [argv] over the command tree: the first non-flag word selects
    the subcommand (recursively for groups), the rest is parsed against its
    flag list. [-h]/[--help] at any level prints the relevant usage and
    exits 0; an unknown subcommand or flag prints a diagnostic plus the
    relevant usage and exits 2. With no subcommand word, [default] (when
    given) is dispatched, otherwise the top-level usage is printed to
    stdout (exit 0). *)
