(** Regression gate against a committed [BENCH_sim.json] baseline.

    The gate regenerates the calibrated anchors from the current build and
    diffs them against the baseline: Table 3 transition cycles and Table 4
    privop cycles must match {e exactly} (they are deterministic functions
    of simulator mechanics), while wall time and GC pressure are only
    bounded within a generous tolerance so the gate never flakes on a slow
    CI host. With [~fig9:true] the Fig. 9 overhead/rate columns are also
    compared at their reported precision (%.4f / %.2f).

    The gate also pins the isolation backend the anchors were calibrated
    under: the default {!Erebor.Isolation} install must still be PKS, and a
    machine with the backend forced to PKS must reproduce the default
    Table 3/4 anchors exactly (checks [backend/default],
    [backend/table3-pks/*], [backend/table4-pks/*]). *)

(** Dependency-free JSON subset used to read the baseline. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Parse a complete JSON document; [Error] carries a message with the
      byte offset of the failure. *)

  val member : string -> t -> t option
end

type check = {
  name : string;
  ok : bool;
  detail : string;
  old_value : string option;
      (** The baseline ("old") side of the comparison, rendered at the
          precision the gate compared at; [None] when the check has no
          comparable pair (parse errors, coverage gaps). *)
  new_value : string option;  (** The regenerated ("new") side. *)
}
(** One comparison: a stable dotted name ([table3/EMC.cycles], [wall], ...),
    whether it held, a human-readable detail line, and — when the check
    compares two values — the old/new pair for tabular rendering. *)

type verdict = check list

val pass : verdict -> bool
val failures : verdict -> check list
val pp_verdict : Format.formatter -> verdict -> unit

val pp_mismatch_table : Format.formatter -> verdict -> unit
(** Render {e every} failing check of [verdict] as a unified old/new table
    (baseline value vs regenerated value), so one run shows the complete
    set of drifted anchors. Prints nothing when the verdict passes. *)

val check_json :
  ?fig9:bool ->
  ?jobs:int ->
  ?wall_tolerance:float ->
  ?gc_tolerance:float ->
  Json.t ->
  verdict
(** Run the gate against an already-parsed baseline. [wall_tolerance]
    (default 1.5) bounds the regeneration CPU time at that multiple of the
    baseline's [total_wall_s]; [gc_tolerance] (default 0.5) bounds minor
    and major allocation at that multiple of the baseline suite's
    [gc.minor_words] / [gc.major_words]. The budgets cover (a fraction of)
    a full suite while the gate regenerates only anchors, so they catch
    order-of-magnitude regressions without noise. *)

val check_string :
  ?fig9:bool ->
  ?jobs:int ->
  ?wall_tolerance:float ->
  ?gc_tolerance:float ->
  string ->
  (verdict, string) result
(** Parse [json] and run the gate; [Error] on malformed JSON. *)

val check_file :
  ?fig9:bool ->
  ?jobs:int ->
  ?wall_tolerance:float ->
  ?gc_tolerance:float ->
  path:string ->
  unit ->
  (verdict, string) result

val check_journal : journal:string -> Json.t -> verdict
(** Verify a flight recording ({!Obs.Journal}) written by
    [erebor-sim run --record] against an already-parsed baseline: the
    journal must be finalized, contain a complete Run span for the
    (workload, setting) named in its header, and the exit rates recomputed
    from the Run-span slice must match the baseline's Fig. 9 row for that
    pair at the reported %.2f precision. The rate math reproduces
    [Sim.Stats.diff] exactly, so an undisturbed recording matches to the
    last digit. *)

val check_journal_file :
  journal:string -> path:string -> unit -> (verdict, string) result
(** [check_journal] against the baseline JSON at [path] — the engine behind
    [bench check --from-journal FILE]. *)

val render_anchors : ?instrument:(Obs.Emitter.t -> unit) -> unit -> string
(** A minimal baseline document (schema + exact Table 3 / Table 4 anchors)
    regenerated from the current build. Tests use this to construct a
    passing baseline — and to seed a mismatch that must make the gate
    fail. [?instrument] is threaded to {!Eval.table3}/{!Eval.table4}; the
    rendered document must be byte-identical with or without sinks
    attached (observability never advances the virtual clock). *)
