module Model = struct
  (* context string -> (next char -> count) *)
  type t = { order : int; table : (string, (char, int) Hashtbl.t) Hashtbl.t }

  let train ~order corpus =
    if order < 1 then invalid_arg "Model.train: order must be >= 1";
    let table = Hashtbl.create 4096 in
    let len = String.length corpus in
    (* Store every order 1..n so generation can back off smoothly. *)
    for k = 1 to order do
      for i = 0 to len - k - 1 do
        let ctx = String.sub corpus i k in
        let next = corpus.[i + k] in
        let dist =
          match Hashtbl.find_opt table ctx with
          | Some d -> d
          | None ->
              let d = Hashtbl.create 8 in
              Hashtbl.replace table ctx d;
              d
        in
        Hashtbl.replace dist next (1 + Option.value ~default:0 (Hashtbl.find_opt dist next))
      done
    done;
    { order; table }

  let sample dist ~rng =
    let total = Hashtbl.fold (fun _ c acc -> acc + c) dist 0 in
    let target = Crypto.Drbg.int rng total in
    let chosen = ref None and seen = ref 0 in
    Hashtbl.iter
      (fun c count ->
        if !chosen = None then begin
          seen := !seen + count;
          if !seen > target then chosen := Some c
        end)
      dist;
    Option.value ~default:' ' !chosen

  let generate t ~rng ~prompt ~n =
    let buf = Buffer.create (String.length prompt + n) in
    Buffer.add_string buf prompt;
    for _ = 1 to n do
      let s = Buffer.contents buf in
      (* Back off to shorter contexts when the full-order one is unseen. *)
      let rec next_char order =
        if order = 0 then 't'
        else begin
          let ctx_start = max 0 (String.length s - order) in
          let ctx = String.sub s ctx_start (String.length s - ctx_start) in
          match Hashtbl.find_opt t.table ctx with
          | Some dist -> sample dist ~rng
          | None -> next_char (order - 1)
        end
      in
      Buffer.add_char buf (next_char t.order)
    done;
    String.sub (Buffer.contents buf) (String.length prompt) n

  let contexts t = Hashtbl.length t.table
end

let default_corpus =
  String.concat " "
    (List.concat
       (List.init 40 (fun _ ->
            [
              "the monitor interposes every sensitive instruction the kernel requests";
              "client data is processed inside a sandboxed container and never leaves";
              "confidential virtual machines protect memory from the untrusted host";
              "the library operating system emulates runtime services in process";
              "attestation binds the secure channel to the measured boot state";
            ])))

(* Eager: trained once at program start, so spawned domains share an
   immutable model instead of racing on a lazy thunk. *)
let default_model = Model.train ~order:4 default_corpus

let profile =
  {
    Workload.name = "llama.cpp";
    nominal_seconds = 52.85;
    nominal_confined_mb = 501;
    common = Some ("llama2-7b", 4096);
    threads = 8;
    timer_hz = 900;
    pf_per_sec = 2050.0;
    hostio_per_sec = 1700.0;
    hostio_bytes = 16384;
    pte_churn_per_sec = 30_000.0;
    sync_per_sec = 34_000.0;
    contention = 0.55;
    service_per_sec = 2_000.0;
    init_cycles_per_page = 630;
    output_bucket = 4096;
  }

let real_work (ops : Sim.Machine.ops) =
  let prompt = Bytes.to_string (ops.Sim.Machine.recv_input ()) in
  let model = default_model in
  let completion = Model.generate model ~rng:ops.Sim.Machine.rng ~prompt ~n:200 in
  ops.Sim.Machine.send_output (Bytes.of_string (prompt ^ completion))

let spec () =
  Workload.to_spec profile
    ~input:(Bytes.of_string "translate to english: la memoire confinee ")
    ~real_work
