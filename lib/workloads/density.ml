(* Multi-tenant sandbox density (see density.mli).

   Two experiments over the pluggable isolation backends:

   - [backend_overhead]: the Fig. 9 programs under full Erebor with each
     backend, against one native baseline per program — the per-backend
     cost on the calibrated workloads (PKS is the paper's configuration;
     TME-MK trades the PKRS flip for fill-time key checks).

   - [scaling]: one machine per (backend, N): N sealed sandboxes over one
     shared common instance, round-robin request traffic through the real
     monitored paths, and an adversarial probe at the end. Everything is
     measured from mechanism — frames from the guard's registry, EMCs from
     the machine counters, latency from request root windows. *)

let page_size = Hw.Phys_mem.page_size

(* ------------------------------------------------------------------ *)
(* Per-backend Fig. 9 overhead                                         *)
(* ------------------------------------------------------------------ *)

type backend_row = {
  bprogram : string;
  bbackend : Erebor.Isolation.kind;
  native_cycles : int;
  backend_cycles : int;
  boverhead_pct : float;
}

let default_backends = [ Erebor.Isolation.Pks; Erebor.Isolation.Tme_mk ]

let backend_overhead ?jobs ?(smoke = false)
    ?(backends = default_backends) () =
  let programs =
    if smoke then
      List.filter (fun (p, _) -> p = "drugbank") Eval.all_programs
    else Eval.all_programs
  in
  (* One native baseline plus one full-Erebor run per backend, every
     machine independent — flatten and fan out like Eval.fig9. *)
  let tasks =
    List.concat_map
      (fun (program, spec_fn) ->
        (program, spec_fn, None)
        :: List.map (fun b -> (program, spec_fn, Some b)) backends)
      programs
  in
  let results =
    Sim.Runner.map_list ?jobs
      (fun (_, spec_fn, backend) ->
        match backend with
        | None -> Sim.Machine.run_fresh ~setting:Sim.Config.Native (spec_fn ())
        | Some b ->
            Sim.Machine.run_fresh ~backend:b ~setting:Sim.Config.Erebor_full
              (spec_fn ()))
      tasks
  in
  let runs = List.combine tasks results in
  let native_of program =
    match List.find_opt (fun ((p, _, b), _) -> p = program && b = None) runs with
    | Some (_, (r : Sim.Machine.run_result)) -> r.Sim.Machine.run_cycles
    | None -> assert false
  in
  List.filter_map
    (fun ((program, _, backend), (r : Sim.Machine.run_result)) ->
      match backend with
      | None -> None
      | Some b ->
          let native = native_of program in
          Some
            {
              bprogram = program;
              bbackend = b;
              native_cycles = native;
              backend_cycles = r.Sim.Machine.run_cycles;
              boverhead_pct =
                100.0
                *. ((float_of_int r.Sim.Machine.run_cycles /. float_of_int native)
                   -. 1.0);
            })
    runs

(* ------------------------------------------------------------------ *)
(* Scaling curve                                                       *)
(* ------------------------------------------------------------------ *)

type tenant_latency = {
  tenant_id : int;
  tenant_name : string;
  treqs : int;
  t_p50 : int;
  t_p99 : int;
}

type scale_row = {
  sbackend : Erebor.Isolation.kind;
  tenants : int;
  confined_frames : int;
  ptp_frames : int;
  common_frames : int;
  frames_per_tenant : float;
  emc_per_request : float;
  emc_interference_pct : float;
  worst_p99 : int;
  tenant_rows : tenant_latency list;
  violations : int;
}

let confined_pages_per_tenant = 16
let common_pages = 64
let common_instance = "density-corpus"

let percentile sorted ~p =
  match Array.length sorted with
  | 0 -> 0
  | n ->
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

(* The adversarial probe: every attack goes through the monitored PTE path
   a compromised kernel would use; a denial raises [Policy_violation]. The
   return value counts attempts that were NOT denied. *)
let adversarial_probe m mgr backend_kind =
  let kern = Sim.Machine.kern m in
  let mem = kern.Kernel.mem in
  let monitor = Erebor.Sandbox.manager_monitor mgr in
  let denied f =
    match f () with
    | () -> false
    | exception Erebor.Monitor.Policy_violation _ -> true
  in
  (* A normal task standing in for any compromised-kernel context outside
     the victim sandboxes. *)
  let attacker = Kernel.create_task kern ~name:"density-adversary" ~kind:Kernel.Task.Normal in
  let a_addr =
    Result.get_ok
      (Kernel.mmap kern attacker ~len:page_size ~prot:Kernel.Vma.prot_rw
         ~kind:Kernel.Vma.Anon)
  in
  (match Kernel.handle_page_fault kern attacker ~addr:a_addr ~kind:Hw.Fault.Write with
  | Ok () -> ()
  | Error e -> failwith ("density probe: " ^ e));
  let leaf_addr =
    Option.get
      (Hw.Page_table.leaf_addr mem ~root_pfn:attacker.Kernel.Task.root_pfn a_addr)
  in
  let write_pte pte =
    kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf_addr pte
  in
  let violations = ref 0 in
  let attempt f = if not (denied f) then incr violations in
  let guard = Erebor.Monitor.guard monitor in
  let confined_pfn_of sb =
    (* First confined frame of [sb], straight from the guard's registry. *)
    let frames = Hw.Phys_mem.frames mem in
    let rec scan pfn =
      if pfn >= frames then None
      else
        match Erebor.Mmu_guard.class_of guard pfn with
        | Erebor.Mmu_guard.Confined { owner } when owner = Erebor.Sandbox.id sb ->
            Some pfn
        | _ -> scan (pfn + 1)
    in
    scan 0
  in
  let sandboxes = Erebor.Sandbox.sandboxes mgr in
  (* 1. Map another tenant's confined frame (double-mapping / cross-tenant
     read attempt). Run it against every tenant so a per-tenant hole can't
     hide behind tenant 1. *)
  List.iter
    (fun sb ->
      match confined_pfn_of sb with
      | None -> ()
      | Some victim ->
          attempt (fun () ->
              write_pte
                (Hw.Pte.make ~pfn:victim { Hw.Pte.default_flags with user = true })))
    sandboxes;
  (* 2. Key-id forgery (TME-MK only): a kernel-crafted leaf carrying a
     nonzero key id must be screened out before class checks. *)
  if backend_kind = Erebor.Isolation.Tme_mk then begin
    let own_pfn =
      Option.get (Kernel.resolve_pfn kern attacker ~addr:a_addr)
    in
    List.iter
      (fun sb ->
        let keyid =
          Erebor.Isolation.keyid_of_owner (Erebor.Sandbox.id sb)
        in
        attempt (fun () ->
            write_pte
              (Hw.Pte.set_keyid
                 (Hw.Pte.make ~pfn:own_pfn { Hw.Pte.default_flags with user = true })
                 keyid)))
      sandboxes
  end;
  (* 3. Writable mapping of a sealed common frame from outside any
     sandbox. *)
  let common_pfn =
    let frames = Hw.Phys_mem.frames mem in
    let rec scan pfn =
      if pfn >= frames then None
      else
        match Erebor.Mmu_guard.class_of guard pfn with
        | Erebor.Mmu_guard.Common { instance } when instance = common_instance ->
            Some pfn
        | _ -> scan (pfn + 1)
    in
    scan 0
  in
  (match common_pfn with
  | None -> ()
  | Some pfn ->
      attempt (fun () ->
          write_pte (Hw.Pte.make ~pfn { Hw.Pte.default_flags with user = true })));
  Kernel.exit_task kern attacker ~code:0;
  !violations

let scale_point ~backend ~tenants ~requests_per_tenant =
  let m =
    Sim.Machine.create ~backend ~frames:65536 ~cma_frames:16384
      ~setting:Sim.Config.Erebor_full ()
  in
  let mgr = Option.get (Sim.Machine.manager m) in
  let kern = Sim.Machine.kern m in
  let cpu = kern.Kernel.cpu in
  let requests = Sim.Machine.requests m in
  (* Provision and seal every tenant up front — the steady multi-tenant
     state the curve measures. *)
  let tenant_setup = Array.init tenants (fun i ->
      let name = Printf.sprintf "tenant-%d" (i + 1) in
      let sb =
        Result.get_ok
          (Erebor.Sandbox.create_sandbox mgr ~name
             ~confined_budget:(confined_pages_per_tenant * page_size))
      in
      let base =
        Result.get_ok
          (Erebor.Sandbox.declare_confined mgr sb
             ~len:(confined_pages_per_tenant * page_size))
      in
      let common_base =
        Result.get_ok
          (Erebor.Sandbox.attach_common mgr sb ~name:common_instance
             ~size:(common_pages * page_size))
      in
      let input = Bytes.make 256 (Char.chr (Char.code 'a' + (i mod 26))) in
      (match Erebor.Sandbox.load_client_data mgr sb input with
      | Ok _ -> ()
      | Error e -> failwith e);
      (sb, base, common_base))
  in
  let before = Sim.Machine.snapshot m in
  (* Round-robin request traffic: each request is one root window over a
     CR3 switch into the tenant, confined + common touches (the TLB-fill
     path is where TME-MK charges its key loads), the channel ioctls, and
     a timer tick — the monitored request skeleton of §6. *)
  let trace_owner = Hashtbl.create 64 in
  let user_touch addr =
    cpu.Hw.Cpu.mode <- Hw.Cpu.User;
    ignore (Hw.Cpu.read_u8 cpu addr);
    cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor
  in
  for round = 0 to requests_per_tenant - 1 do
    Array.iteri
      (fun i (sb, base, common_base) ->
        if Erebor.Sandbox.kill_reason sb = None then begin
          let task = Erebor.Sandbox.main_task sb in
          let cx = Obs.Request.mint requests in
          Hashtbl.replace trace_owner cx.Obs.Request.trace_id i;
          Obs.Emitter.emit (Sim.Machine.obs m) Obs.Trace.Req_begin
            ~ts:(Hw.Cycles.now (Sim.Machine.clock m))
            ~arg:(Obs.Request.pack cx ~root:true);
          kern.Kernel.privops.Kernel.Privops.write_cr3
            ~root_pfn:task.Kernel.Task.root_pfn;
          for p = 0 to 3 do
            user_touch (base + (((round + p) mod confined_pages_per_tenant) * page_size))
          done;
          (* One demand-paged common page plus a warm re-read. *)
          let caddr = common_base + (((round + i) mod common_pages) * page_size) in
          (match Kernel.resolve_pfn kern task ~addr:caddr with
          | Some _ -> ()
          | None -> (
              match Erebor.Sandbox.page_fault mgr sb ~addr:caddr ~kind:Hw.Fault.Read with
              | Ok () -> ()
              | Error e -> failwith e));
          user_touch caddr;
          (match
             Erebor.Sandbox.handle_syscall mgr sb
               (Kernel.Syscall.Ioctl { fd = Erebor.Sandbox.channel_fd sb; request = 1; arg = Bytes.empty })
           with
          | Kernel.Syscall.Rbytes _ -> ()
          | _ -> failwith "density: input fetch failed");
          (match
             Erebor.Sandbox.handle_syscall mgr sb
               (Kernel.Syscall.Ioctl
                  { fd = Erebor.Sandbox.channel_fd sb; request = 2;
                    arg = Bytes.make 32 'r' })
           with
          | Kernel.Syscall.Rok -> ()
          | _ -> failwith "density: output emit failed");
          Erebor.Sandbox.timer_tick mgr sb;
          Obs.Emitter.emit (Sim.Machine.obs m) Obs.Trace.Req_end
            ~ts:(Hw.Cycles.now (Sim.Machine.clock m))
            ~arg:(Obs.Request.pack cx ~root:true)
        end)
      tenant_setup
  done;
  let after = Sim.Machine.snapshot m in
  let d = Sim.Stats.diff ~before ~after in
  let completed = requests_per_tenant * tenants in
  (* Per-tenant latency: ONE collector watches the machine; grouping the
     root windows by minting tenant keeps windows from interleaving. *)
  let per_tenant = Array.make tenants [] in
  Hashtbl.iter
    (fun trace_id owner ->
      match Obs.Request.root_cycles requests ~trace_id with
      | Some c -> per_tenant.(owner) <- c :: per_tenant.(owner)
      | None -> ())
    trace_owner;
  let tenant_rows =
    List.mapi
      (fun i (sb, _, _) ->
        let sorted =
          let a = Array.of_list per_tenant.(i) in
          Array.sort compare a;
          a
        in
        {
          tenant_id = Erebor.Sandbox.id sb;
          tenant_name = Erebor.Sandbox.name sb;
          treqs = Array.length sorted;
          t_p50 = percentile sorted ~p:50.0;
          t_p99 = percentile sorted ~p:99.0;
        })
      (Array.to_list tenant_setup)
  in
  let worst_p99 =
    List.fold_left (fun acc r -> max acc r.t_p99) 0 tenant_rows
  in
  let monitor = Erebor.Sandbox.manager_monitor mgr in
  let guard = Erebor.Monitor.guard monitor in
  let confined_frames = tenants * confined_pages_per_tenant in
  let ptp_frames = Erebor.Mmu_guard.ptp_count guard in
  let common_frames =
    Erebor.Sandbox.common_instance_frames mgr ~name:common_instance
  in
  let violations = adversarial_probe m mgr backend in
  {
    sbackend = backend;
    tenants;
    confined_frames;
    ptp_frames;
    common_frames;
    frames_per_tenant =
      float_of_int (confined_frames + ptp_frames + common_frames)
      /. float_of_int tenants;
    emc_per_request = float_of_int d.Sim.Stats.emc_total /. float_of_int completed;
    emc_interference_pct = 0.0;   (* filled against the 1-tenant row below *)
    worst_p99;
    tenant_rows;
    violations;
  }

let full_counts = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
let smoke_counts = [ 1; 2; 4 ]

let scaling ?jobs ?(smoke = false) ?(backends = default_backends)
    ?tenant_counts ?(requests_per_tenant = 8) () =
  let counts =
    match tenant_counts with
    | Some c -> c
    | None -> if smoke then smoke_counts else full_counts
  in
  let tasks =
    List.concat_map (fun b -> List.map (fun n -> (b, n)) counts) backends
  in
  let rows =
    Sim.Runner.map_list ?jobs
      (fun (backend, tenants) -> scale_point ~backend ~tenants ~requests_per_tenant)
      tasks
  in
  (* Interference is relative to the same backend's least-dense point. *)
  let solo backend =
    match
      List.filter (fun r -> r.sbackend = backend) rows
      |> List.sort (fun a b -> compare a.tenants b.tenants)
    with
    | base :: _ -> base.emc_per_request
    | [] -> 0.0
  in
  List.map
    (fun r ->
      let base = solo r.sbackend in
      {
        r with
        emc_interference_pct =
          (if base > 0.0 then 100.0 *. ((r.emc_per_request /. base) -. 1.0)
           else 0.0);
      })
    rows
