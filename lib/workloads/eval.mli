(** The paper's evaluation, experiment by experiment (§9). Each function
    regenerates one table or figure as structured rows; the bench harness
    formats them. Paper reference values are included so the output can show
    reproduction fidelity side by side. *)

(** {2 Table 3 — privilege-transition round trips} *)

type transition_row = {
  transition : string;
  cycles : int;
  ratio_vs_emc : float;
  paper_cycles : int;
}

val table3 :
  ?backend:Erebor.Isolation.kind ->
  ?instrument:(Obs.Emitter.t -> unit) ->
  unit ->
  transition_row list
(** [?backend] overrides the Erebor machine's isolation backend; the
    committed anchors are the default (PKS) values, and the bench gate
    pins that equivalence. [?instrument] is called on each bench machine's
    emitter before it boots, to attach passive sinks; since observability
    never advances the virtual clock, the measured rows must be identical
    with or without it (pinned by a test). *)

(** {2 Table 4 — privileged-operation costs} *)

type privop_row = {
  op : string;
  native_cycles : int;
  erebor_cycles : int;
  slowdown : float;
  paper_native : int;
  paper_erebor : int;
}

val table4 :
  ?backend:Erebor.Isolation.kind ->
  ?instrument:(Obs.Emitter.t -> unit) ->
  unit ->
  privop_row list

(** {2 Fig. 8 — LMBench} *)

type lmbench_row = {
  bench : string;
  native_avg : float;
  erebor_avg : float;
  ratio : float;
  emc_per_sec : float;
}

val fig8 : ?jobs:int -> unit -> lmbench_row list

(** {2 Fig. 9 + Table 6 — real-world programs} *)

type program_row = {
  program : string;
  setting : Sim.Config.setting;
  overhead_pct : float;         (** Run-phase overhead vs native. *)
  init_overhead_pct : float;
  time_seconds : float;         (** Descaled virtual execution time. *)
  pf_rate : float;
  timer_rate : float;
  ve_rate : float;
  emc_rate : float;
  confined_mb : int;
  common_mb : int;              (** 0 when absent. *)
  output_bytes : int;
}

val all_programs : (string * (unit -> Sim.Machine.spec)) list

val fig9 : ?jobs:int -> unit -> program_row list
(** Every program under every setting (25 fresh machines), fanned across
    [jobs] domains (default {!Sim.Runner.default_jobs}). Row values and
    order are independent of [jobs]. *)

(** {2 Cycle attribution — §9's overhead decomposition from mechanics} *)

type attrib_row = {
  aprogram : string;
  asetting : Sim.Config.setting;
  total_cycles : int;          (** Total virtual cycles of the whole run. *)
  unattributed_cycles : int;   (** Cycles outside any span (init glue). *)
  contexts : (string * string * int) list;
      (** [(domain, phase, cycles)] in stable phase order; together with
          [unattributed_cycles] these sum to [total_cycles] exactly. *)
}

val attrib : ?jobs:int -> ?smoke:bool -> unit -> attrib_row list
(** [smoke] (default false) restricts the sweep to the first program
    across every setting — the @ci conservation gate.
    Every Fig. 9 program x setting, each on a fresh machine with an
    {!Obs.Attrib} sink attached. Deterministic and independent of [jobs]. *)

val table6 : program_row list -> program_row list
(** Filter a fig9 result down to the full-Erebor rows (Table 6's view). *)

val geomean_overhead : program_row list -> Sim.Config.setting -> float

(** {2 Fig. 10 — background servers} *)

type netserve_row = {
  server : string;
  file_kb : int;
  native_mbps : float;
  erebor_mbps : float;
  relative : float;
}

val fig10 : ?jobs:int -> unit -> netserve_row list

(** {2 §9.2 memory saving — common-memory sharing} *)

type memshare_row = {
  sandboxes : int;
  shared_frames : int;      (** Frames with Erebor common sharing. *)
  replicated_frames : int;  (** Frames if each sandbox had a private copy. *)
  saving_pct : float;
}

val memshare : ?jobs:int -> ?max_sandboxes:int -> unit -> memshare_row list
(** Grow a fleet of sandboxes over one shared model instance and account
    real backing frames against the no-sharing replica count. With more
    than one job, each fleet size runs on its own fresh machine in its own
    domain; rows are identical either way. *)
