(** LLM inference service (llama.cpp in the paper, Table 5): a character
    n-gram language model standing in for the transformer — small enough to
    run for real, shaped the same way (a large read-only model shared across
    sandboxes, a per-client mutable KV-cache-like state). *)

module Model : sig
  type t

  val train : order:int -> string -> t
  (** Character n-gram counts of a corpus. *)

  val generate : t -> rng:Crypto.Drbg.t -> prompt:string -> n:int -> string
  (** Sample [n] characters continuing [prompt]. *)

  val contexts : t -> int
end

val default_corpus : string
val default_model : Model.t

val profile : Workload.profile
(** llama.cpp per Table 5/6: ~5 GB common model, 256 MB+ confined KV cache,
    8 threads, 52.85 s, heavy synchronization. *)

val spec : unit -> Sim.Machine.spec
(** Full workload: the real model answers the client prompt, the profile
    drives the system-event stream. *)
