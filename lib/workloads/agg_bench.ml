(* The fleet-telemetry bench gate (bench/main.exe agg, @ci-agg).

   Pins the aggregator's contract end to end:

   1. Telemetry is invisible: the Table 3/4 anchor document regenerated
      with a sketch family and an aggregator part attached to every bench
      machine is byte-identical to the plain one, and a Fig. 9 workload
      run (drugbank under full Erebor) reports the same cycles and exit
      statistics with fleet telemetry attached.
   2. Merged percentiles are honest: fleet quantiles from merged
      per-machine sketches stay within the sketch's relative-error bound
      of the exact sort oracle, both on a large adversarial synthetic
      stream and on the real latencies of a simulated fleet run.
   3. Aggregation is order-invariant: the merged snapshot serializes to
      the same bytes for any merge order or grouping and for any
      Sim.Runner --jobs width (parallelism never changes results).
   4. The record path is free: one fleet record (sketch + heavy-hitter
      hit + exemplar challenge) costs exactly 0 minor words in steady
      state.
   5. A seeded tail-latency spike is attributable: the spiked tenant
      ranks first in the merged heavy hitters with sound count bounds,
      and the fleet p99 exemplar carries the spike's trace id plus a
      journal frame offset that resolves to events recorded inside that
      exact request's window.

   All scratch files live in the action's working directory (dune
   sandbox) and are removed on the way out. *)

module A = Obs.Agg
module J = Obs.Journal

let chk ?old_value ?new_value name ok detail =
  { Bench_gate.name; ok; detail; old_value; new_value }

let rm path = try Sys.remove path with Sys_error _ -> ()

(* [Gc.minor_words] boxes its own result; calibrate that out so the
   steady-state check can demand an exact zero. *)
let minor_probe_overhead () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

(* Deterministic LCG so every check is reproducible run to run. *)
let lcg seed =
  let s = ref seed in
  fun m ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod m

(* ------------------------------------------------------------------ *)
(* 1. Telemetry is invisible                                           *)
(* ------------------------------------------------------------------ *)

let anchors_check () =
  let plain = Bench_gate.render_anchors () in
  let fam = Obs.Sketch.Family.create () in
  let part = A.part ~machine:"gate" () in
  let recorded =
    Bench_gate.render_anchors
      ~instrument:(fun obs ->
        ignore (Obs.Sketch.Family.attach obs fam);
        ignore (A.attach obs part))
      ()
  in
  chk "agg/anchors-identical" (plain = recorded)
    (if plain = recorded then
       Printf.sprintf
         "Table 3/4 anchors byte-identical with sketch family + aggregator \
          attached (%d events observed)"
         (Obs.Counter.total (A.counters part))
     else "anchor document CHANGED with fleet telemetry attached")

let fig9_check () =
  let spec_fn = List.assoc "drugbank" Eval.all_programs in
  let run_one ~telemetry =
    let obs = Obs.Emitter.create () in
    let sketches =
      if telemetry then begin
        ignore (A.attach obs (A.part ~machine:"fig9" ()));
        Some (Obs.Sketch.Family.create ())
      end
      else None
    in
    let m =
      Sim.Machine.create ~obs ?sketches ~setting:Sim.Config.Erebor_full ()
    in
    let r = Sim.Machine.run m (spec_fn ()) in
    (r.Sim.Machine.init_cycles, r.Sim.Machine.run_cycles, Sim.Machine.snapshot m)
  in
  let i0, r0, s0 = run_one ~telemetry:false in
  let i1, r1, s1 = run_one ~telemetry:true in
  let ok = i0 = i1 && r0 = r1 && s0 = s1 in
  chk
    ~old_value:(Printf.sprintf "%d run cycles plain" r0)
    ~new_value:(Printf.sprintf "%d run cycles instrumented" r1)
    "agg/fig9-undisturbed" ok
    (if ok then
       "drugbank under full Erebor: cycles and exit statistics identical \
        with fleet telemetry attached"
     else "Fig. 9 workload DISTURBED by fleet telemetry")

(* ------------------------------------------------------------------ *)
(* 2. Merged percentiles vs the exact sort oracle                      *)
(* ------------------------------------------------------------------ *)

(* rank ceil(p * n), 1-based over the sorted stream — the order statistic
   Sketch.quantile targets. *)
let oracle sorted ~p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (idx - 1)))

let quantile_errors ~alpha ~ps merged values =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let worst = ref 0.0 in
  let ok =
    List.for_all
      (fun p ->
        let exact = oracle sorted ~p in
        let est = A.quantile merged ~p in
        let err = float_of_int (abs (est - exact)) in
        let bound = (alpha *. float_of_int exact) +. 1.0 in
        let rel = if exact = 0 then 0.0 else err /. float_of_int exact in
        if rel > !worst then worst := rel;
        err <= bound)
      ps
  in
  (ok, !worst)

let accuracy_check ~smoke =
  let n = if smoke then 20_000 else 100_000 in
  let rand = lcg 0x5EED in
  (* Heavy-tailed: exponents span 8 decades, the distribution DDSketch's
     relative (not absolute) error bound exists for. *)
  let values =
    Array.init n (fun _ ->
        let base = int_of_float (10.0 ** float_of_int (rand 8)) in
        base + rand (max 1 base))
  in
  let parts =
    Array.init 5 (fun i -> A.part ~machine:(Printf.sprintf "acc%d" i) ())
  in
  let tens = Array.map (fun p -> A.tenant p "oracle") parts in
  Array.iteri
    (fun i v ->
      A.record parts.(i mod 5) tens.(i mod 5) Obs.Trace.Req_end ~latency:v
        ~trace_id:i ~offset:(-1) ~ts:i)
    values;
  let merged = A.merge_all (Array.to_list (Array.map A.seal parts)) in
  let ps = [ 0.50; 0.90; 0.95; 0.99; 0.999 ] in
  let ok, worst = quantile_errors ~alpha:(A.alpha merged) ~ps merged values in
  chk
    ~old_value:(Printf.sprintf "bound %.2f%%" (100.0 *. A.alpha merged))
    ~new_value:(Printf.sprintf "worst %.3f%%" (100.0 *. worst))
    "agg/accuracy-oracle" ok
    (Printf.sprintf
       "%d heavy-tailed samples over 5 merged parts: p50/p90/p95/p99/p999 \
        within the relative-error bound of the exact sort oracle"
       n)

(* ------------------------------------------------------------------ *)
(* 3 + 5. A simulated fleet over Sim.Runner                            *)
(* ------------------------------------------------------------------ *)

type req = {
  q_trace : int;
  q_latency : int;
  q_tenant : string;
  q_offset : int;
  q_ts0 : int;  (* clock before the session ran *)
  q_ts1 : int;  (* clock after *)
}

let tenant_names = [| "acme"; "globex"; "initech" |]

(* One short sandboxed session; compute varies per (machine, session) so
   the fleet latency distribution is non-trivial. *)
let session_spec ~name ~compute () =
  {
    Sim.Machine.name;
    sandboxed = true;
    timer_hz = 0;
    init_compute = 0;
    confined_bytes = 16 * 4096;
    nominal_confined_mb = 1;
    common = None;
    threads = 1;
    contention = 0.0;
    input = Bytes.make 64 'q';
    output_bucket = 64;
    body =
      (fun ops ->
        ops.Sim.Machine.compute compute;
        ops.Sim.Machine.touch_confined ~page:1;
        ops.Sim.Machine.service ());
  }

(* One fleet machine: boot under full Erebor, serve [sessions] sandboxed
   sessions (tenant "acme" takes every even slot, so it dominates the
   heavy hitters by construction), record each completed request into the
   machine's aggregator part. Machine 0 also journals its event stream
   and seeds one tail-latency spike for acme; its requests carry real
   journal frame offsets. Self-contained, so Sim.Runner may run machines
   on any domain in any order. *)
let run_machine ~sessions ~journal (idx, mname) =
  let obs = Obs.Emitter.create () in
  let part = A.part ~machine:mname () in
  ignore (A.attach obs part);
  let w =
    if idx = 0 then begin
      let w = J.Writer.create ~segment_bytes:8192 ~path:journal () in
      J.Writer.attach ~machine:mname w obs;
      Some w
    end
    else None
  in
  let m = Sim.Machine.create ~obs ~setting:Sim.Config.Erebor_full () in
  let clock = Sim.Machine.clock m in
  let rand = lcg (0xF1EE7 + (idx * 7919)) in
  let reqs = ref [] in
  for s = 0 to sessions - 1 do
    let tenant_name =
      if s mod 2 = 0 then tenant_names.(0)
      else tenant_names.(1 + (s / 2 mod 2))
    in
    let spike = idx = 0 && s = sessions - 2 in
    (* the seeded spike: two orders of magnitude more compute *)
    let compute = if spike then 40_000_000 else 200_000 + rand 200_000 in
    let tn = A.tenant part tenant_name in
    (* Frame offset of the request about to run — read BEFORE recording,
       the request's own events may seal the open segment. *)
    let off = match w with Some w -> J.Writer.offset w | None -> -1 in
    let ts0 = Hw.Cycles.now clock in
    let r =
      Sim.Machine.run m
        (session_spec ~name:(Printf.sprintf "fleet-%d-%d" idx s) ~compute ())
    in
    let ts1 = Hw.Cycles.now clock in
    let trace_id = (idx * 10_000) + s in
    A.record part tn Obs.Trace.Req_end ~latency:r.Sim.Machine.run_cycles
      ~trace_id ~offset:off ~ts:ts1;
    reqs :=
      {
        q_trace = trace_id;
        q_latency = r.Sim.Machine.run_cycles;
        q_tenant = tenant_name;
        q_offset = off;
        q_ts0 = ts0;
        q_ts1 = ts1;
      }
      :: !reqs
  done;
  Obs.Emitter.finalize obs ~now:(Hw.Cycles.now clock);
  (match w with
  | Some w when not (J.Writer.closed w) ->
      J.Writer.close w ~now:(Hw.Cycles.now clock)
  | _ -> ());
  (A.seal part, List.rev !reqs)

let fleet_pass ~smoke ~jobs ~journal () =
  let n_machines = if smoke then 3 else 4 in
  let sessions = if smoke then 6 else 10 in
  let tasks = Array.init n_machines (fun i -> (i, Printf.sprintf "m%d" i)) in
  let out = Sim.Runner.map ~jobs (run_machine ~sessions ~journal) tasks in
  let seals = Array.map fst out in
  let reqs = Array.to_list out |> List.concat_map snd in
  (seals, reqs)

let rotate l = match l with [] -> [] | x :: xs -> xs @ [ x ]

let invariance_checks ~seals1 ~seals2 =
  let bytes seals order =
    A.serialize (A.merge_all (order (Array.to_list seals)))
  in
  let reference = bytes seals2 Fun.id in
  let jobs_ok = bytes seals1 Fun.id = reference in
  let orders_ok =
    bytes seals2 List.rev = reference
    && bytes seals2 rotate = reference
    && A.render (A.merge_all (List.rev (Array.to_list seals2)))
       = A.render (A.merge_all (Array.to_list seals2))
  in
  [
    chk "agg/jobs-invariance" jobs_ok
      (if jobs_ok then
         Printf.sprintf
           "merged snapshot byte-identical for --jobs 1 and parallel \
            Sim.Runner schedules (%d bytes)"
           (String.length reference)
       else "merged snapshot DIFFERS across --jobs widths");
    chk "agg/merge-invariance" orders_ok
      (if orders_ok then
         "serialize and render byte-identical for reversed and rotated \
          merge orders"
       else "merge order CHANGED the merged snapshot");
  ]

let fleet_accuracy_check merged reqs =
  let values = Array.of_list (List.map (fun q -> q.q_latency) reqs) in
  let ps = [ 0.50; 0.95; 0.99 ] in
  let ok, worst = quantile_errors ~alpha:(A.alpha merged) ~ps merged values in
  chk
    ~old_value:(Printf.sprintf "bound %.2f%%" (100.0 *. A.alpha merged))
    ~new_value:(Printf.sprintf "worst %.3f%%" (100.0 *. worst))
    "agg/fleet-accuracy" ok
    (Printf.sprintf
       "fleet p50/p95/p99 over %d simulated requests within the \
        relative-error bound of the exact sort oracle"
       (Array.length values))

let spike_checks ~journal merged reqs =
  let exact_of tenant =
    List.length (List.filter (fun q -> q.q_tenant = tenant) reqs)
  in
  let topk =
    match A.top ~n:1 merged with
    | [ r ] ->
        let key = tenant_names.(0) ^ "/" ^ Obs.Trace.name Obs.Trace.Req_end in
        let exact = exact_of tenant_names.(0) in
        let ok =
          r.Obs.Topk.rkey = key
          && r.Obs.Topk.lower <= exact
          && exact <= r.Obs.Topk.upper
        in
        chk
          ~old_value:(Printf.sprintf "%d exact" exact)
          ~new_value:
            (Printf.sprintf "[%d, %d] bounds" r.Obs.Topk.lower r.Obs.Topk.upper)
          "agg/topk-spike" ok
          (if ok then
             Printf.sprintf
               "heavy hitters rank the spiked tenant first (%s, count %d)"
               r.Obs.Topk.rkey r.Obs.Topk.rcount
           else
             Printf.sprintf "top heavy hitter is %s, bounds [%d, %d]"
               r.Obs.Topk.rkey r.Obs.Topk.lower r.Obs.Topk.upper)
    | _ -> chk "agg/topk-spike" false "merged summary has no heavy hitter"
  in
  let exemplar =
    match A.exemplar_for merged ~p:0.99 with
    | None -> chk "agg/exemplar-resolves" false "no p99 exemplar in the fleet"
    | Some e -> (
        let spike =
          List.fold_left
            (fun acc q -> match acc with
              | Some _ -> acc
              | None -> if q.q_trace = e.Obs.Exemplar.i_trace_id then Some q
                        else None)
            None reqs
        in
        match spike with
        | None ->
            chk "agg/exemplar-resolves" false
              (Printf.sprintf "p99 exemplar trace %#x matches no recorded \
                               request" e.Obs.Exemplar.i_trace_id)
        | Some q -> (
            let slowest =
              List.fold_left (fun acc r -> max acc r.q_latency) 0 reqs
            in
            let identity_ok =
              q.q_latency = slowest
              && e.Obs.Exemplar.i_machine = "m0"
              && e.Obs.Exemplar.i_offset = q.q_offset
              && e.Obs.Exemplar.i_offset >= 0
            in
            match
              J.fold ~path:journal ~init:(0, 0) (fun (in_frame, in_window) ev ->
                  if ev.J.off = e.Obs.Exemplar.i_offset then
                    ( in_frame + 1,
                      if ev.J.ts >= q.q_ts0 && ev.J.ts <= q.q_ts1 then
                        in_window + 1
                      else in_window )
                  else (in_frame, in_window))
            with
            | Result.Error err -> chk "agg/exemplar-resolves" false err
            | Result.Ok ((in_frame, in_window), _) ->
                let ok = identity_ok && in_frame > 0 && in_window > 0 in
                chk
                  ~old_value:
                    (Printf.sprintf "trace %#x offset %d" q.q_trace q.q_offset)
                  ~new_value:
                    (Printf.sprintf "trace %#x offset %d"
                       e.Obs.Exemplar.i_trace_id e.Obs.Exemplar.i_offset)
                  "agg/exemplar-resolves" ok
                  (if ok then
                     Printf.sprintf
                       "p99 exemplar is the seeded spike; its journal frame \
                        holds %d events, %d inside the request window"
                       in_frame in_window
                   else if not identity_ok then
                     "p99 exemplar does not identify the seeded spike"
                   else "exemplar offset resolved to no in-window events")))
  in
  [ topk; exemplar ]

(* ------------------------------------------------------------------ *)
(* 4. The record path is free                                          *)
(* ------------------------------------------------------------------ *)

let zero_alloc_check ~smoke =
  let n = if smoke then 50_000 else 200_000 in
  let p = A.part ~machine:"alloc" () in
  let t = A.tenant p "tenant-0" in
  for i = 1 to 4096 do
    A.record p t Obs.Trace.Req_end
      ~latency:(1 + (i land 4095))
      ~trace_id:i ~offset:(i * 64) ~ts:i
  done;
  let probe = minor_probe_overhead () in
  let m0 = Gc.minor_words () in
  for i = 0 to n - 1 do
    A.record p t Obs.Trace.Req_end
      ~latency:(1 + (i land 4095))
      ~trace_id:i ~offset:(i land 0xFFFF) ~ts:i
  done;
  let dw = Gc.minor_words () -. m0 -. probe in
  chk ~old_value:"0.0 words/record"
    ~new_value:(Printf.sprintf "%.4f words/record" (dw /. float_of_int n))
    "agg/zero-alloc" (dw = 0.0)
    (Printf.sprintf
       "%.0f minor words across %d steady-state fleet records (sketch + \
        heavy-hitter + exemplar)"
       dw n)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(smoke = false) () =
  let j1 = ".agg-bench.jobs1.ejrn" in
  let j2 = ".agg-bench.jobsN.ejrn" in
  let anchors = anchors_check () in
  let fig9 = fig9_check () in
  let accuracy = accuracy_check ~smoke in
  let alloc = zero_alloc_check ~smoke in
  let seals1, _ = fleet_pass ~smoke ~jobs:1 ~journal:j1 () in
  let njobs = max 2 (min 4 (Sim.Runner.default_jobs ())) in
  let seals2, reqs = fleet_pass ~smoke ~jobs:njobs ~journal:j2 () in
  let merged = A.merge_all (Array.to_list seals2) in
  let invariance = invariance_checks ~seals1 ~seals2 in
  let fleet_acc = fleet_accuracy_check merged reqs in
  let spikes = spike_checks ~journal:j2 merged reqs in
  rm j1;
  rm j2;
  (anchors :: fig9 :: accuracy :: fleet_acc :: invariance) @ spikes @ [ alloc ]
