(** Live-SLO bench driver: multi-tenant request load with a seeded mid-run
    degradation, asserting that burn-rate alerts and health demotions fire
    for the degraded tenant and {e only} for it.

    One Erebor_full machine hosts N sealed tenants served round-robin
    through the real monitored request paths. Each tenant gets its own
    {!Obs.Window} and a latency SLO over it; a shared {!Obs.Health}
    watchdog tracks every tenant, and all transitions land on a dedicated
    telemetry emitter with a tamper-evident audit chain. Mid-run, one
    tenant's requests go silent for millions of virtual cycles (EMC stall +
    deadline overrun) and then complete with a latency far past the
    objective threshold. *)

type tenant_outcome = {
  tname : string;
  stalled : bool;  (** Whether this was the seeded-degradation target. *)
  served : int;
  alert_fired : bool;  (** The tenant's latency SLO fired at some point. *)
  final_state : Obs.Health.state;
  worst_state : Obs.Health.state;  (** Deepest demotion over the run. *)
  health_transitions : (int * Obs.Health.state) list;
}

type report = {
  outcomes : tenant_outcome list;
  evals : int;  (** SLO/watchdog evaluation ticks over the run. *)
  alert_events : int;  (** [Slo_alert] events on the telemetry bus. *)
  health_events : int;  (** [Health_transition] events on the bus. *)
  audit_records : int;
  audit_intact : bool;  (** The telemetry audit chain verified offline. *)
  failures : string list;  (** Empty iff the attribution verdict holds. *)
  snapshot : string;  (** JSON telemetry snapshot of the whole run. *)
}

val run :
  ?backend:Erebor.Isolation.kind ->
  ?tenants:int ->
  ?rounds:int ->
  ?stall_tenant:int ->
  ?stall_rounds:int ->
  unit ->
  report
(** Defaults: 4 tenants, 40 rounds, tenant index 1 stalled for 4 rounds
    starting at the halfway point. Raises [Invalid_argument] when
    [stall_tenant] is out of range. *)

val clean_fig9 :
  ?jobs:int -> ?smoke:bool -> unit -> (string * string list) list
(** Run Fig. 9 programs under full Erebor with the machine-level SLO set
    attached (the [run --dash] objectives) and return each program's fired
    objective names — which must all be empty: a healthy calibrated run
    never alarms. [smoke] cuts to the drugbank program. *)
