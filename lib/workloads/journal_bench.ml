(* The flight-recorder bench gate (bench/main.exe journal, @ci-journal).

   Five properties pin the recorder's contract:

   1. Recording is invisible: the Table 3/4 anchor document regenerated
      with a journal writer attached to every bench machine is byte-
      identical to the plain one (emission never advances the virtual
      clock).
   2. Recording is lossless: a drugbank run's journal, replayed into a
      fresh counter sink, reproduces the live counter sink's per-kind
      count and arg-sum exactly, for every kind.
   3. Recording is allocation-free: the steady-state record path costs
      exactly 0 minor words per event (seals excepted; the check uses a
      segment large enough that none occur inside the measured window).
   4. Diffing is sound: a journal diffed against itself reports zero
      deltas and no regressions, while a seeded slowdown (extra compute
      appended to the same workload body) is flagged past the default
      threshold.
   5. Recording is cheap: the recorded run's CPU time stays inside the
      same wall tolerance the bench gate applies, relative to the
      committed BENCH_sim.json suite wall.

   All scratch files live in the action's working directory (dune sandbox)
   and are removed on the way out. *)

module J = Obs.Journal

let chk ?old_value ?new_value name ok detail =
  { Bench_gate.name; ok; detail; old_value; new_value }

let rm path = try Sys.remove path with Sys_error _ -> ()

(* [Gc.minor_words] boxes its own result, so two back-to-back calls differ
   by a small constant; calibrate it out so the steady-state check can
   demand an exact zero. *)
let minor_probe_overhead () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let anchors_check scratch =
  let plain = Bench_gate.render_anchors () in
  let w = J.Writer.create ~segment_bytes:(1 lsl 20) ~path:scratch () in
  let recorded =
    Bench_gate.render_anchors
      ~instrument:(fun obs -> J.Writer.attach w obs)
      ()
  in
  if not (J.Writer.closed w) then J.Writer.close w ~now:0;
  let events = J.Writer.events w in
  rm scratch;
  chk "journal/anchors-identical" (plain = recorded)
    (if plain = recorded then
       Printf.sprintf
         "Table 3/4 anchors byte-identical with recorder attached (%d \
          events journaled)"
         events
     else "anchor document CHANGED with a journal writer attached")

(* One recorded drugbank run under full Erebor: returns the journal path
   (caller removes), the live counter sink, and the recording's CPU cost. *)
let recorded_run ~path () =
  let spec_fn = List.assoc "drugbank" Eval.all_programs in
  let cpu0 = Sys.time () in
  let obs = Obs.Emitter.create () in
  let w =
    J.Writer.create
      ~meta:
        [
          ("workload", "drugbank");
          ("setting", Sim.Config.name Sim.Config.Erebor_full);
        ]
      ~path ()
  in
  J.Writer.attach ~machine:"sim" w obs;
  let m = Sim.Machine.create ~obs ~setting:Sim.Config.Erebor_full () in
  ignore (Sim.Machine.run m (spec_fn ()));
  Obs.Emitter.finalize obs ~now:(Hw.Cycles.now (Sim.Machine.clock m));
  let cpu = Sys.time () -. cpu0 in
  (Sim.Machine.counters m, cpu)

let replay_check ~path live =
  let robs = Obs.Emitter.create () in
  let replayed = Obs.Counter.attach robs (Obs.Counter.create ()) in
  match
    J.fold ~path ~init:0 (fun n (e : J.event) ->
        Obs.Emitter.emit robs e.J.kind ~ts:e.J.ts ~arg:e.J.arg;
        n + 1)
  with
  | Result.Error e -> chk "journal/replay-counters" false e
  | Result.Ok (n, _) ->
      let mismatches =
        List.filter
          (fun k ->
            Obs.Counter.count live k <> Obs.Counter.count replayed k
            || Obs.Counter.arg_sum live k <> Obs.Counter.arg_sum replayed k)
          Obs.Trace.all
      in
      let live_total = Obs.Counter.total live in
      chk
        ~old_value:(Printf.sprintf "%d live events" live_total)
        ~new_value:(Printf.sprintf "%d replayed events" (Obs.Counter.total replayed))
        "journal/replay-counters" (mismatches = [])
        (if mismatches = [] then
           Printf.sprintf
             "replayed %d events: count and arg-sum equal for all %d kinds"
             n (List.length Obs.Trace.all)
         else
           "live/replay disagree on: "
           ^ String.concat ", " (List.map Obs.Trace.name mismatches))

let zero_alloc_check ~smoke scratch =
  let n = if smoke then 50_000 else 200_000 in
  (* A segment large enough that no seal (and thus no I/O or framing) falls
     inside the measured window — the property under test is the per-event
     record path. *)
  let w = J.Writer.create ~segment_bytes:(1 lsl 22) ~path:scratch () in
  let s = J.Writer.stream w ~machine:"alloc" in
  for i = 1 to 1024 do
    J.Writer.record w ~stream:s Obs.Trace.Page_fault ~ts:i ~arg:(i * 64)
  done;
  let probe = minor_probe_overhead () in
  let m0 = Gc.minor_words () in
  for i = 0 to n - 1 do
    J.Writer.record w ~stream:s Obs.Trace.Page_fault ~ts:(1024 + i)
      ~arg:(i land 4095 * 64)
  done;
  let dw = Gc.minor_words () -. m0 -. probe in
  J.Writer.close w ~now:(1024 + n);
  rm scratch;
  chk ~old_value:"0.0 words/event"
    ~new_value:(Printf.sprintf "%.4f words/event" (dw /. float_of_int n))
    "journal/zero-alloc" (dw = 0.0)
    (Printf.sprintf "%.0f minor words across %d steady-state records" dw n)

let diff_checks ~rec_path ~slow_path =
  let self =
    match Obs.Diff.compare_files ~a:rec_path ~b:rec_path with
    | Result.Error e -> chk "journal/diff-self" false e
    | Result.Ok d ->
        let zero =
          List.for_all (fun (e : Obs.Diff.entry) -> e.Obs.Diff.delta = 0)
            d.Obs.Diff.entries
          && Obs.Diff.regressions d = []
        in
        chk ~old_value:(string_of_int d.Obs.Diff.total_a)
          ~new_value:(string_of_int d.Obs.Diff.total_b)
          "journal/diff-self" zero
          (if zero then
             Printf.sprintf "self-diff silent across %d phases"
               (List.length d.Obs.Diff.entries)
           else "self-diff reported nonzero deltas")
  in
  let seeded =
    match Obs.Diff.compare_files ~a:rec_path ~b:slow_path with
    | Result.Error e -> chk "journal/diff-regression" false e
    | Result.Ok d ->
        let regs = Obs.Diff.regressions ~threshold:5.0 ~min_cycles:1000 d in
        let hits_run =
          List.exists
            (fun (e : Obs.Diff.entry) -> e.Obs.Diff.ephase = Obs.Trace.Run)
            regs
        in
        chk
          ~old_value:(string_of_int d.Obs.Diff.total_a)
          ~new_value:(string_of_int d.Obs.Diff.total_b)
          "journal/diff-regression"
          (regs <> [] && hits_run)
          (if regs = [] then "seeded slowdown NOT flagged"
           else if not hits_run then
             "regression flagged, but not on the seeded user/run phase"
           else
             Printf.sprintf "seeded slowdown flagged (%d regressing phase(s))"
               (List.length regs))
  in
  [ self; seeded ]

(* Re-run the same workload with extra compute appended to its body — a
   deliberate user-phase regression sized off the baseline recording's own
   Run-phase self cycles, so the percentage is workload-independent. *)
let seeded_slow_run ~rec_path ~path () =
  let extra =
    match Obs.Diff.attribution ~path:rec_path with
    | Result.Ok (arr, _) ->
        let run_self, _ = arr.(Obs.Trace.phase_index Obs.Trace.Run) in
        max 1_000_000 (run_self / 4)
    | Result.Error _ -> 100_000_000
  in
  let spec_fn = List.assoc "drugbank" Eval.all_programs in
  let spec = spec_fn () in
  let slow =
    {
      spec with
      Sim.Machine.body =
        (fun ops ->
          spec.Sim.Machine.body ops;
          ops.Sim.Machine.compute extra);
    }
  in
  let obs = Obs.Emitter.create () in
  let w =
    J.Writer.create
      ~meta:
        [
          ("workload", "drugbank+seeded-slowdown");
          ("setting", Sim.Config.name Sim.Config.Erebor_full);
        ]
      ~path ()
  in
  J.Writer.attach ~machine:"sim" w obs;
  let m = Sim.Machine.create ~obs ~setting:Sim.Config.Erebor_full () in
  ignore (Sim.Machine.run m slow);
  Obs.Emitter.finalize obs ~now:(Hw.Cycles.now (Sim.Machine.clock m))

let wall_check ~baseline ~cpu =
  match In_channel.with_open_bin baseline In_channel.input_all with
  | exception Sys_error e -> chk "journal/record-wall" false e
  | json -> (
      match Bench_gate.Json.parse json with
      | Result.Error e -> chk "journal/record-wall" false ("baseline JSON: " ^ e)
      | Result.Ok b -> (
          match Bench_gate.Json.member "total_wall_s" b with
          | Some (Bench_gate.Json.Num base) ->
              let budget = 1.5 *. base in
              chk
                ~old_value:(Printf.sprintf "budget %.3fs" budget)
                ~new_value:(Printf.sprintf "%.3fs cpu" cpu)
                "journal/record-wall" (cpu <= budget)
                (Printf.sprintf
                   "recorded run %.3fs cpu, budget %.3fs (1.5x baseline \
                    suite wall)"
                   cpu budget)
          | _ -> chk "journal/record-wall" false "baseline lacks total_wall_s"))

let from_journal_checks ~baseline ~rec_path =
  match Bench_gate.check_journal_file ~journal:rec_path ~path:baseline () with
  | Result.Error e -> [ chk "journal/from-journal" false e ]
  | Result.Ok verdict -> verdict

let run ?(smoke = false) ?(baseline = "BENCH_sim.json") () =
  let rec_path = ".journal-bench.rec.ejrn" in
  let slow_path = ".journal-bench.slow.ejrn" in
  let scratch = ".journal-bench.scratch.ejrn" in
  let anchors = anchors_check scratch in
  let live, cpu = recorded_run ~path:rec_path () in
  let replay = replay_check ~path:rec_path live in
  let alloc = zero_alloc_check ~smoke scratch in
  seeded_slow_run ~rec_path ~path:slow_path ();
  let diffs = diff_checks ~rec_path ~slow_path in
  let wall = wall_check ~baseline ~cpu in
  let from_journal = from_journal_checks ~baseline ~rec_path in
  rm rec_path;
  rm slow_path;
  (anchors :: replay :: alloc :: diffs) @ (wall :: from_journal)
