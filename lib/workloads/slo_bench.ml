(* Live-SLO bench driver (see slo_bench.mli).

   One Erebor_full machine hosts N sealed tenants served round-robin
   through the real monitored request paths (the Density skeleton). Each
   tenant gets its own sliding window and a latency SLO over it; one shared
   health watchdog tracks every tenant. Mid-run, ONE tenant is seeded with
   a degradation: its requests go silent — the virtual clock advances with
   no monitor calls — long past the EMC-stall and deadline watchdogs, then
   complete with a huge latency that lands in its window.

   The point of the exercise is attribution: the burn-rate alert and the
   health demotions must fire for the stalled tenant and ONLY for it, while
   its neighbours' objectives stay silent — and every transition must land
   on the telemetry emitter's tamper-evident audit chain. *)

let page_size = Hw.Phys_mem.page_size

(* Virtual-time telemetry geometry: 1M-cycle buckets, a 64-bucket ring;
   fast = 5 buckets, slow = 30 — the 5-min/1-hour pair scaled down to
   bench time. *)
let bucket_width = 1_000_000
let ring_buckets = 64
let fast_windows = 5
let slow_windows = 30

(* One stalled request: 8 slices of 750k silent cycles (6M total), with a
   watchdog check between slices — long past both rules below. *)
let stall_slices = 8
let stall_slice_cycles = 750_000

let watchdog_rules =
  {
    Obs.Health.stall_cycles = 1_000_000;
    deadline_cycles = 2_000_000;
    denial_spike = 3;
    degrade_after = 2;
    unhealthy_after = 3;
    recover_after = 4;
  }

(* Latency objective: requests over 1M cycles are "bad"; 1% error budget.
   Healthy requests complete in well under 1M cycles, a stalled one in 6M+. *)
let latency_threshold = 1_000_000
let latency_budget = 0.01

let audit_key = Crypto.Sha256.digest_string "slo bench audit key"

type tenant_outcome = {
  tname : string;
  stalled : bool;
  served : int;
  alert_fired : bool;
  final_state : Obs.Health.state;
  worst_state : Obs.Health.state;
  health_transitions : (int * Obs.Health.state) list;
}

type report = {
  outcomes : tenant_outcome list;
  evals : int;
  alert_events : int;
  health_events : int;
  audit_records : int;
  audit_intact : bool;
  failures : string list;
  snapshot : string;
}

let worst a b =
  let rank = function
    | Obs.Health.Healthy -> 0
    | Obs.Health.Degraded -> 1
    | Obs.Health.Unhealthy -> 2
  in
  if rank b > rank a then b else a

let run ?(backend = Erebor.Isolation.Pks) ?(tenants = 4) ?(rounds = 40)
    ?(stall_tenant = 1) ?(stall_rounds = 4) () =
  if stall_tenant < 0 || stall_tenant >= tenants then
    invalid_arg "Slo_bench.run: stall_tenant out of range";
  let m =
    Sim.Machine.create ~backend ~frames:65536 ~cma_frames:16384
      ~setting:Sim.Config.Erebor_full ()
  in
  let mgr = Option.get (Sim.Machine.manager m) in
  let kern = Sim.Machine.kern m in
  let cpu = kern.Kernel.cpu in
  let clock = Sim.Machine.clock m in
  let counters = Sim.Machine.counters m in
  let now () = Hw.Cycles.now clock in

  (* The telemetry emitter: carries alert/health transition events, counts
     them, and chains them into a tamper-evident audit log. It is distinct
     from the machine's emitter on purpose — telemetry output must never
     feed back into the windows it is computed from. *)
  let tel = Obs.Emitter.create () in
  let tel_counter = Obs.Counter.attach tel (Obs.Counter.create ()) in
  let chain = Obs.Audit.create ~key:audit_key in
  Obs.Emitter.set_audit tel (Some chain);

  let health = Obs.Health.create ~emit:tel ~rules:watchdog_rules () in
  let confined_pages = 16 and common_pages = 64 in
  let tenant_setup =
    Array.init tenants (fun i ->
        let name = Printf.sprintf "tenant-%d" (i + 1) in
        let sb =
          Result.get_ok
            (Erebor.Sandbox.create_sandbox mgr ~name
               ~confined_budget:(confined_pages * page_size))
        in
        let base =
          Result.get_ok
            (Erebor.Sandbox.declare_confined mgr sb
               ~len:(confined_pages * page_size))
        in
        let common_base =
          Result.get_ok
            (Erebor.Sandbox.attach_common mgr sb ~name:"slo-corpus"
               ~size:(common_pages * page_size))
        in
        (match
           Erebor.Sandbox.load_client_data mgr sb
             (Bytes.make 256 (Char.chr (Char.code 'a' + (i mod 26))))
         with
        | Ok _ -> ()
        | Error e -> failwith e);
        let window =
          Obs.Window.create
            ~hist_kinds:[ Obs.Trace.Req_end ]
            ~width:bucket_width ~buckets:ring_buckets ()
        in
        let slo =
          Obs.Slo.create ~emit:tel ~fast_windows ~slow_windows ~window
            ~objectives:
              [
                Obs.Slo.objective ~tenant:name
                  ~name:(name ^ "/latency")
                  ~condition:
                    (Obs.Slo.Latency_above
                       { kind = Obs.Trace.Req_end; threshold = latency_threshold })
                  ~budget:latency_budget ();
              ]
            ()
        in
        let subject = Obs.Health.register health ~name ~now:(now ()) in
        (sb, base, common_base, window, slo, subject))
  in

  (* The steady evaluation tick: every tenant's SLO plus the shared
     watchdogs, at the current virtual time. Pure reads — the clock never
     moves here. *)
  let evals = ref 0 in
  let tick () =
    incr evals;
    let t = now () in
    Array.iter (fun (_, _, _, _, slo, _) -> Obs.Slo.evaluate slo ~now:t) tenant_setup;
    Obs.Health.check health ~now:t
  in

  let user_touch addr =
    cpu.Hw.Cpu.mode <- Hw.Cpu.User;
    ignore (Hw.Cpu.read_u8 cpu addr);
    cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor
  in
  let served = Array.make tenants 0 in
  let stall_from = rounds / 2 in
  let stall_until = min rounds (stall_from + stall_rounds) in

  for round = 0 to rounds - 1 do
    Array.iteri
      (fun i (sb, base, common_base, window, _, subject) ->
        if Erebor.Sandbox.kill_reason sb = None then begin
          let task = Erebor.Sandbox.main_task sb in
          let t0 = now () in
          let emc0 = Obs.Counter.count counters Obs.Trace.Emc_entry in
          let deny0 = Obs.Counter.count counters Obs.Trace.Mmu_deny in
          Obs.Health.begin_request subject ~now:t0;
          (* The seeded degradation: the victim tenant goes silent
             mid-request — virtual time passes, no monitor calls — with the
             watchdogs checking on their steady cadence throughout. *)
          if i = stall_tenant && round >= stall_from && round < stall_until
          then
            for _ = 1 to stall_slices do
              Hw.Cycles.advance clock stall_slice_cycles;
              tick ()
            done;
          kern.Kernel.privops.Kernel.Privops.write_cr3
            ~root_pfn:task.Kernel.Task.root_pfn;
          for p = 0 to 3 do
            user_touch (base + (((round + p) mod confined_pages) * page_size))
          done;
          let caddr =
            common_base + (((round + i) mod common_pages) * page_size)
          in
          (match Kernel.resolve_pfn kern task ~addr:caddr with
          | Some _ -> ()
          | None -> (
              match
                Erebor.Sandbox.page_fault mgr sb ~addr:caddr ~kind:Hw.Fault.Read
              with
              | Ok () -> ()
              | Error e -> failwith e));
          user_touch caddr;
          (match
             Erebor.Sandbox.handle_syscall mgr sb
               (Kernel.Syscall.Ioctl
                  { fd = Erebor.Sandbox.channel_fd sb; request = 1; arg = Bytes.empty })
           with
          | Kernel.Syscall.Rbytes _ -> ()
          | _ -> failwith "slo bench: input fetch failed");
          (match
             Erebor.Sandbox.handle_syscall mgr sb
               (Kernel.Syscall.Ioctl
                  { fd = Erebor.Sandbox.channel_fd sb; request = 2;
                    arg = Bytes.make 32 'r' })
           with
          | Kernel.Syscall.Rok -> ()
          | _ -> failwith "slo bench: output emit failed");
          Erebor.Sandbox.timer_tick mgr sb;
          let t1 = now () in
          (* Per-tenant attribution: the machine counter deltas over this
             request belong to this tenant — the driver serves one request
             at a time, so the deltas are exact. *)
          let emcs = Obs.Counter.count counters Obs.Trace.Emc_entry - emc0 in
          let denies = Obs.Counter.count counters Obs.Trace.Mmu_deny - deny0 in
          if emcs > 0 then Obs.Health.note_emc subject ~now:t1;
          for _ = 1 to denies do Obs.Health.note_denial subject done;
          Obs.Health.end_request health subject ~now:t1 ~latency:(t1 - t0);
          Obs.Window.record window Obs.Trace.Req_end ~ts:t1 ~arg:(t1 - t0);
          Obs.Window.record window Obs.Trace.Emc_entry ~ts:t1 ~arg:emcs;
          served.(i) <- served.(i) + 1;
          tick ()
        end)
      tenant_setup
  done;

  Obs.Emitter.finalize tel ~now:(now ());
  let audit_text = Obs.Audit.to_string chain in
  let audit_intact =
    match Obs.Audit.verify_string ~key:audit_key audit_text with
    | Ok _ -> true
    | Error _ -> false
  in

  let outcomes =
    List.mapi
      (fun i (_, _, _, _, slo, subject) ->
        let name = Obs.Health.name subject in
        let transitions = Obs.Health.transitions_of health subject in
        {
          tname = name;
          stalled = i = stall_tenant;
          served = served.(i);
          alert_fired = Obs.Slo.fired_ever slo ~name:(name ^ "/latency");
          final_state = Obs.Health.state subject;
          worst_state =
            List.fold_left
              (fun acc (_, st) -> worst acc st)
              (Obs.Health.state subject) transitions;
          health_transitions = transitions;
        })
      (Array.to_list tenant_setup)
  in

  (* The whole run's verdict: the seeded tenant must alarm on every rail —
     burn-rate alert, Degraded and Unhealthy demotions — and nobody else
     may alarm on any. *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun o ->
      if o.stalled then begin
        if not o.alert_fired then
          fail "%s: seeded stall did not fire its burn-rate alert" o.tname;
        if o.worst_state <> Obs.Health.Unhealthy then
          fail "%s: seeded stall never reached Unhealthy (worst %s)" o.tname
            (Obs.Health.state_name o.worst_state);
        if
          not
            (List.exists
               (fun (_, st) -> st = Obs.Health.Degraded)
               o.health_transitions)
        then fail "%s: demotion skipped the Degraded step" o.tname
      end
      else begin
        if o.alert_fired then
          fail "%s: healthy tenant fired a burn-rate alert" o.tname;
        if o.worst_state <> Obs.Health.Healthy then
          fail "%s: healthy tenant left Healthy (worst %s)" o.tname
            (Obs.Health.state_name o.worst_state)
      end)
    outcomes;
  let alert_events = Obs.Counter.count tel_counter Obs.Trace.Slo_alert in
  let health_events =
    Obs.Counter.count tel_counter Obs.Trace.Health_transition
  in
  if alert_events = 0 then fail "no Slo_alert events reached the telemetry bus";
  if health_events = 0 then
    fail "no Health_transition events reached the telemetry bus";
  if not audit_intact then fail "telemetry audit chain failed verification";

  let snapshot =
    let buf = Buffer.create 4096 in
    Printf.bprintf buf
      "{\"schema\":\"erebor-slo-bench/1\",\"ts\":%d,\"rounds\":%d,\"evals\":%d,\"tenants\":["
      (now ()) rounds !evals;
    Array.iteri
      (fun i (_, _, _, window, slo, subject) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf
          "{\"name\":\"%s\",\"stalled\":%b,\"served\":%d,\"window\":%s,\"slo\":%s}"
          (Obs.Metrics.escape_json (Obs.Health.name subject))
          (i = stall_tenant) served.(i)
          (Obs.Window.to_json window ~now:(now ()) ())
          (Obs.Slo.to_json slo))
      tenant_setup;
    Printf.bprintf buf "],\"health\":%s,\"audit_records\":%d}\n"
      (Obs.Health.to_json health) (Obs.Audit.length chain);
    Buffer.contents buf
  in
  {
    outcomes;
    evals = !evals;
    alert_events;
    health_events;
    audit_records = Obs.Audit.length chain;
    audit_intact;
    failures = List.rev !failures;
    snapshot;
  }

(* ------------------------------------------------------------------ *)
(* Clean-workload silence                                              *)
(* ------------------------------------------------------------------ *)

(* Machine-level objectives with generous ceilings — the same set [run
   --dash] attaches. The calibrated Fig. 9 programs peak under 90k EMC/s
   with round trips of a few thousand cycles, so a healthy run must never
   get near these. *)
let clean_objectives =
  [
    Obs.Slo.objective ~name:"emc-latency"
      ~condition:
        (Obs.Slo.Latency_above { kind = Obs.Trace.Emc_entry; threshold = 65536 })
      ~budget:0.02 ();
    Obs.Slo.objective ~name:"emc-rate"
      ~condition:
        (Obs.Slo.Rate_above
           { kind = Obs.Trace.Emc_entry; per_second = 500_000.0 })
      ~budget:1.0 ();
    Obs.Slo.objective ~name:"audit-denials"
      ~condition:
        (Obs.Slo.Ratio
           { bad = Obs.Trace.Mmu_deny; total = Obs.Trace.Emc_entry })
      ~budget:0.02 ();
  ]

let clean_fig9 ?jobs ?(smoke = false) () =
  let programs =
    if smoke then List.filter (fun (p, _) -> p = "drugbank") Eval.all_programs
    else Eval.all_programs
  in
  Sim.Runner.map_list ?jobs
    (fun (program, spec_fn) ->
      let obs = Obs.Emitter.create () in
      let window =
        Obs.Window.create ~width:10_500_000 ~buckets:120 ()
      in
      let slo =
        Obs.Slo.create ~emit:obs ~window ~objectives:clean_objectives ()
      in
      (* The dash sink drives periodic evaluation off the event stream,
         exactly as [run --dash] does (no panel output). *)
      let dash =
        Obs.Dash.attach obs
          (Obs.Dash.create ~label:program ~slo ~refresh_cycles:105_000_000
             ~window ())
      in
      let m = Sim.Machine.create ~obs ~window ~setting:Sim.Config.Erebor_full () in
      ignore (Sim.Machine.run m (spec_fn ()));
      Obs.Slo.evaluate slo ~now:(Hw.Cycles.now (Sim.Machine.clock m));
      ignore (Obs.Dash.refreshes dash);
      let fired =
        List.map
          (fun (s : Obs.Slo.status) -> s.Obs.Slo.objective.Obs.Slo.name)
          (Obs.Slo.firing slo)
        @ List.filter_map
            (fun (_, (o : Obs.Slo.objective), f) ->
              if f then Some o.Obs.Slo.name else None)
            (Obs.Slo.transitions slo)
      in
      (program, List.sort_uniq compare fired))
    programs
