(* Command-line parsing for the binaries, bench drivers and examples.

   The first three functions are the original minimal scanners the examples
   link against. Below them is the declarative subcommand framework the real
   drivers (bin/erebor_sim, bench/main) parse with: flags carry their own
   usage text, so an unknown flag can print the usage of exactly the
   subcommand it occurred under. *)

let flag_arg ?(argv = Sys.argv) name =
  let r = ref None in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length argv then r := Some argv.(i + 1))
    argv;
  !r

let has_flag ?(argv = Sys.argv) name = Array.exists (fun a -> a = name) argv

let int_arg ?(argv = Sys.argv) ?(min = 1) ~default name =
  match flag_arg ~argv name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= min -> n
      | _ ->
          Printf.eprintf "%s: integer >= %d expected, got %S\n" name min s;
          exit 2)

(* ------------------------------------------------------------------ *)
(* Subcommand framework                                                *)
(* ------------------------------------------------------------------ *)

type flag = { names : string list; docv : string option; doc : string }

let flag ?docv names doc = { names; docv; doc }

type parsed = {
  ctx : string; (* "prog sub [sub...]" for usage rendering *)
  cflags : flag list;
  values : (string * string) list; (* canonical name -> value, last wins *)
  switches : string list; (* canonical names present *)
  positionals : string list;
}

let canon f = List.hd f.names

let flag_usage fl =
  let spell =
    String.concat ", " fl.names
    ^ match fl.docv with Some d -> " " ^ d | None -> ""
  in
  Printf.sprintf "  %-24s %s" spell fl.doc

type cmd =
  | Leaf of { name : string; doc : string; flags : flag list; body : parsed -> unit }
  | Group of { name : string; doc : string; subs : cmd list }

let cmd ?(flags = []) ~name ~doc body = Leaf { name; doc; flags; body }
let group ~name ~doc subs = Group { name; doc; subs }

let cmd_name = function Leaf c -> c.name | Group g -> g.name
let cmd_doc = function Leaf c -> c.doc | Group g -> g.doc

let leaf_usage ~ctx flags =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "usage: %s%s [ARG...]\n" ctx
       (if flags = [] then "" else " [FLAGS]"));
  List.iter (fun f -> Buffer.add_string b (flag_usage f ^ "\n")) flags;
  Buffer.contents b

let group_usage ~ctx ~doc subs =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "usage: %s COMMAND [...]\n%s\n" ctx doc);
  Buffer.add_string b "commands:\n";
  List.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "  %-12s %s\n" (cmd_name c) (cmd_doc c)))
    subs;
  Buffer.contents b

let usage_fail ~ctx ~usage msg =
  Printf.eprintf "%s: %s\n%s" ctx msg usage;
  exit 2

let str p f =
  List.assoc_opt (canon f) p.values

let has p f =
  List.mem (canon f) p.switches || List.mem_assoc (canon f) p.values

let pos p = p.positionals

let fail p msg = usage_fail ~ctx:p.ctx ~usage:(leaf_usage ~ctx:p.ctx p.cflags) msg

let int_of p ?(min = 1) ~default f =
  match str p f with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= min -> n
      | _ ->
          fail p
            (Printf.sprintf "%s: integer >= %d expected, got %S" (canon f) min s))

let float_of p ?(min = 0.0) ~default f =
  match str p f with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some x when x >= min -> x
      | _ ->
          fail p
            (Printf.sprintf "%s: number >= %g expected, got %S" (canon f) min s))

let parse_leaf ~ctx ~flags ~body args =
  let usage = leaf_usage ~ctx flags in
  let find_flag a = List.find_opt (fun f -> List.mem a f.names) flags in
  let values = ref [] in
  let switches = ref [] in
  let positionals = ref [] in
  let rec go = function
    | [] -> ()
    | ("-h" | "--help") :: _ ->
        print_string usage;
        exit 0
    | a :: rest when String.length a > 1 && a.[0] = '-' -> (
        match find_flag a with
        | None -> usage_fail ~ctx ~usage (Printf.sprintf "unknown flag %S" a)
        | Some f -> (
            match f.docv with
            | None ->
                switches := canon f :: !switches;
                go rest
            | Some _ -> (
                match rest with
                | [] ->
                    usage_fail ~ctx ~usage
                      (Printf.sprintf "%s needs an argument" a)
                | v :: rest ->
                    (* last occurrence wins *)
                    values := (canon f, v) :: List.remove_assoc (canon f) !values;
                    go rest)))
    | a :: rest ->
        positionals := a :: !positionals;
        go rest
  in
  go args;
  body
    {
      ctx;
      cflags = flags;
      values = !values;
      switches = !switches;
      positionals = List.rev !positionals;
    }

let rec dispatch ~ctx ~doc subs args =
  let usage = group_usage ~ctx ~doc subs in
  match args with
  | [] ->
      print_string usage;
      exit 0
  | ("-h" | "--help") :: _ ->
      print_string usage;
      exit 0
  | name :: rest -> (
      match List.find_opt (fun c -> cmd_name c = name) subs with
      | None ->
          usage_fail ~ctx ~usage
            (Printf.sprintf "unknown command %S" name)
      | Some (Leaf c) ->
          parse_leaf ~ctx:(ctx ^ " " ^ c.name) ~flags:c.flags ~body:c.body rest
      | Some (Group g) ->
          dispatch ~ctx:(ctx ^ " " ^ g.name) ~doc:g.doc g.subs rest)

let run ?(argv = Sys.argv) ?default ~prog ~doc cmds =
  let args = Array.to_list argv |> List.tl in
  match (args, default) with
  | [], Some d -> dispatch ~ctx:prog ~doc cmds [ d ]
  | (a :: _), Some d
    when a <> "-h" && a <> "--help"
         && not (List.exists (fun c -> cmd_name c = a) cmds) ->
      (* Default subcommand with flags, e.g. "bench --smoke": flag words
         (or an unknown word, which the default leaf will then reject as a
         positional/flag) fall through to the default subcommand. *)
      if String.length a > 0 && a.[0] = '-' then
        dispatch ~ctx:prog ~doc cmds (d :: args)
      else dispatch ~ctx:prog ~doc cmds args
  | _ -> dispatch ~ctx:prog ~doc cmds args
