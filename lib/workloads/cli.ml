(* Minimal argv scanning for the examples and bench drivers, which link no
   cmdliner: --flag VALUE pairs and bare --flag switches, anywhere on the
   command line. The last occurrence wins, matching what the per-example
   copies this replaces did. *)

let flag_arg ?(argv = Sys.argv) name =
  let r = ref None in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length argv then r := Some argv.(i + 1))
    argv;
  !r

let has_flag ?(argv = Sys.argv) name = Array.exists (fun a -> a = name) argv

let int_arg ?(argv = Sys.argv) ?(min = 1) ~default name =
  match flag_arg ~argv name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= min -> n
      | _ ->
          Printf.eprintf "%s: integer >= %d expected, got %S\n" name min s;
          exit 2)
