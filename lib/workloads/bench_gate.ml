(* The bench regression gate: re-run the calibrated anchors and diff them
   against a committed BENCH_sim.json baseline.

   The gate's contract mirrors how the numbers are produced. Anchor numbers
   (Table 3 transition costs, Table 4 privop costs, and — in full mode —
   the Fig. 9 overhead/rate columns at their reported precision) are
   deterministic functions of the simulator, so they must match EXACTLY;
   any drift means a semantic change to calibrated mechanics. Wall time and
   GC pressure are host-dependent, so they only gate within a generous
   tolerance — enough to catch an accidental 10x, never a noisy CI host.

   JSON comes from a small hand-rolled parser (the repo takes no external
   dependencies): objects, arrays, strings, numbers, booleans, null. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Latin-1 subset is enough for our own files. *)
              Buffer.add_char buf
                (if code < 256 then Char.chr code else '?')
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Result.Error "trailing garbage after JSON value"
        else Result.Ok v
    | exception Error msg -> Result.Error msg

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
  let mem_of key j = Option.bind j (member key)
  let to_float = function Some (Num f) -> Some f | _ -> None
  let to_int j = Option.map int_of_float (to_float j)
  let to_str = function Some (Str s) -> Some s | _ -> None
  let to_arr = function Some (Arr l) -> l | _ -> []
end

type check = {
  name : string;
  ok : bool;
  detail : string;
  old_value : string option;
  new_value : string option;
}

type verdict = check list

(* Most checks are built through this helper so the old/new columns stay
   optional at the construction sites. *)
let chk ?old_value ?new_value name ok detail =
  { name; ok; detail; old_value; new_value }

let pass v = List.for_all (fun c -> c.ok) v
let failures v = List.filter (fun c -> not c.ok) v

let pp_verdict fmt v =
  List.iter
    (fun c ->
      Format.fprintf fmt "  [%s] %-24s %s@." (if c.ok then "ok" else "FAIL")
        c.name c.detail)
    v

(* A unified old/new table of every failing check, so one run is enough to
   triage a regression. Checks without a comparable pair (parse errors,
   coverage gaps) render "-" and keep their detail line. *)
let pp_mismatch_table fmt v =
  let fails = failures v in
  if fails <> [] then begin
    let cell = function Some s -> s | None -> "-" in
    let w_name =
      List.fold_left (fun w c -> max w (String.length c.name)) 24 fails
    in
    let w_old =
      List.fold_left
        (fun w c -> max w (String.length (cell c.old_value)))
        (String.length "old (baseline)") fails
    in
    let w_new =
      List.fold_left
        (fun w c -> max w (String.length (cell c.new_value)))
        (String.length "new (regenerated)") fails
    in
    Format.fprintf fmt "  %-*s  %-*s  %-*s@." w_name "check" w_old
      "old (baseline)" w_new "new (regenerated)";
    Format.fprintf fmt "  %s  %s  %s@." (String.make w_name '-')
      (String.make w_old '-') (String.make w_new '-');
    List.iter
      (fun c ->
        Format.fprintf fmt "  %-*s  %-*s  %-*s@." w_name c.name w_old
          (cell c.old_value) w_new (cell c.new_value);
        if c.old_value = None && c.new_value = None then
          Format.fprintf fmt "  %-*s    %s@." w_name "" c.detail)
      fails
  end

(* One check per anchor: [probe] extracts the baseline row's identity and
   expectation, [current] the regenerated value. *)
let anchor_checks ~family ~baseline_rows ~key_field ~current ~fields =
  let seen = ref [] in
  let row_checks =
    List.concat_map
      (fun row ->
        match Json.to_str (Json.member key_field row) with
        | None ->
            [ chk family false ("baseline row without " ^ key_field) ]
        | Some key -> (
            seen := key :: !seen;
            match List.assoc_opt key current with
            | None ->
                [
                  chk
                    (Printf.sprintf "%s/%s" family key)
                    false "anchor present in baseline but not regenerated";
                ]
            | Some cur_fields ->
                List.map
                  (fun (field, cur_value) ->
                    let name = Printf.sprintf "%s/%s.%s" family key field in
                    match Json.to_int (Json.member field row) with
                    | None ->
                        chk ~new_value:(string_of_int cur_value) name false
                          "missing in baseline"
                    | Some base_value ->
                        let old_value = string_of_int base_value in
                        let new_value = string_of_int cur_value in
                        if base_value = cur_value then
                          chk ~old_value ~new_value name true new_value
                        else
                          chk ~old_value ~new_value name false
                            (Printf.sprintf "baseline %d, regenerated %d"
                               base_value cur_value))
                  (List.filter
                     (fun (f, _) -> List.mem f fields)
                     cur_fields)))
      baseline_rows
  in
  let coverage =
    let missing =
      List.filter (fun (key, _) -> not (List.mem key !seen)) current
    in
    match missing with
    | [] ->
        chk (family ^ "/coverage") true
          (Printf.sprintf "%d anchors" (List.length current))
    | m ->
        chk (family ^ "/coverage") false
          ("regenerated anchors missing from baseline: "
          ^ String.concat ", " (List.map fst m))
  in
  row_checks @ [ coverage ]

let fig9_checks ~baseline ~jobs =
  let rows = Eval.fig9 ?jobs () in
  let current =
    List.map
      (fun (r : Eval.program_row) ->
        ( (r.Eval.program, Sim.Config.name r.Eval.setting),
          [
            ("overhead_pct", Printf.sprintf "%.4f" r.Eval.overhead_pct);
            ("pf_rate", Printf.sprintf "%.2f" r.Eval.pf_rate);
            ("timer_rate", Printf.sprintf "%.2f" r.Eval.timer_rate);
            ("ve_rate", Printf.sprintf "%.2f" r.Eval.ve_rate);
            ("emc_rate", Printf.sprintf "%.2f" r.Eval.emc_rate);
          ] ))
      rows
  in
  let fmt_of field = if field = "overhead_pct" then format_of_string "%.4f" else format_of_string "%.2f" in
  List.concat_map
    (fun row ->
      let key =
        ( Option.value ~default:"?" (Json.to_str (Json.member "program" row)),
          Option.value ~default:"?" (Json.to_str (Json.member "setting" row)) )
      in
      let label = Printf.sprintf "fig9/%s:%s" (fst key) (snd key) in
      match List.assoc_opt key current with
      | None -> [ chk label false "row not regenerated" ]
      | Some fields ->
          List.map
            (fun (field, cur) ->
              let name = Printf.sprintf "%s.%s" label field in
              match Json.to_float (Json.member field row) with
              | None -> chk ~new_value:cur name false "missing in baseline"
              | Some base ->
                  let base = Printf.sprintf (fmt_of field) base in
                  if base = cur then
                    chk ~old_value:base ~new_value:cur name true cur
                  else
                    chk ~old_value:base ~new_value:cur name false
                      (Printf.sprintf "baseline %s, regenerated %s" base cur))
            fields)
    (Json.to_arr (Json.member "fig9" baseline))

let check_json ?(fig9 = false) ?jobs ?(wall_tolerance = 1.5)
    ?(gc_tolerance = 0.5) baseline =
  let cpu0 = Sys.time () in
  let minor0 = Gc.minor_words () in
  let major0 = (Gc.quick_stat ()).Gc.major_words in
  let schema =
    match Json.to_str (Json.member "schema" baseline) with
    | Some "erebor-bench-sim/1" ->
        chk ~old_value:"erebor-bench-sim/1" ~new_value:"erebor-bench-sim/1"
          "schema" true "erebor-bench-sim/1"
    | Some other ->
        chk ~old_value:other ~new_value:"erebor-bench-sim/1" "schema" false
          ("unknown schema " ^ other)
    | None ->
        chk ~new_value:"erebor-bench-sim/1" "schema" false
          "missing schema field"
  in
  let t3 =
    anchor_checks ~family:"table3"
      ~baseline_rows:(Json.to_arr (Json.member "table3" baseline))
      ~key_field:"transition"
      ~current:
        (List.map
           (fun (r : Eval.transition_row) ->
             (r.Eval.transition, [ ("cycles", r.Eval.cycles) ]))
           (Eval.table3 ()))
      ~fields:[ "cycles" ]
  in
  let t4 =
    anchor_checks ~family:"table4"
      ~baseline_rows:(Json.to_arr (Json.member "table4" baseline))
      ~key_field:"op"
      ~current:
        (List.map
           (fun (r : Eval.privop_row) ->
             ( r.Eval.op,
               [
                 ("native_cycles", r.Eval.native_cycles);
                 ("erebor_cycles", r.Eval.erebor_cycles);
               ] ))
           (Eval.table4 ()))
      ~fields:[ "native_cycles"; "erebor_cycles" ]
  in
  (* Backend pinning: the committed anchors were calibrated under the PKS
     backend, so the gate holds two invariants — the default install still
     IS PKS, and an explicitly-PKS machine reproduces the default anchors
     byte for byte. A backend-default change (or a PKS backend that drifted
     from the historical inline behaviour) fails here even if the default
     anchors above still happen to match. *)
  let backend_pin =
    let default_kind =
      let m =
        Sim.Machine.create ~frames:16384 ~cma_frames:1024
          ~setting:Sim.Config.Erebor_full ()
      in
      let monitor =
        Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
      in
      Erebor.Isolation.kind_name
        (Erebor.Isolation.kind (Erebor.Monitor.backend monitor))
    in
    let default_check =
      chk ~old_value:"pks" ~new_value:default_kind "backend/default"
        (default_kind = "pks")
        (if default_kind = "pks" then "default install is pks"
         else "default isolation backend is no longer pks")
    in
    let pks_t3 =
      List.map2
        (fun (d : Eval.transition_row) (p : Eval.transition_row) ->
          let name = Printf.sprintf "backend/table3-pks/%s" d.Eval.transition in
          chk
            ~old_value:(string_of_int d.Eval.cycles)
            ~new_value:(string_of_int p.Eval.cycles)
            name
            (d.Eval.cycles = p.Eval.cycles)
            (Printf.sprintf "default %d, explicit pks %d" d.Eval.cycles
               p.Eval.cycles))
        (Eval.table3 ())
        (Eval.table3 ~backend:Erebor.Isolation.Pks ())
    in
    let pks_t4 =
      List.map2
        (fun (d : Eval.privop_row) (p : Eval.privop_row) ->
          let name = Printf.sprintf "backend/table4-pks/%s" d.Eval.op in
          chk
            ~old_value:(string_of_int d.Eval.erebor_cycles)
            ~new_value:(string_of_int p.Eval.erebor_cycles)
            name
            (d.Eval.erebor_cycles = p.Eval.erebor_cycles)
            (Printf.sprintf "default %d, explicit pks %d" d.Eval.erebor_cycles
               p.Eval.erebor_cycles))
        (Eval.table4 ())
        (Eval.table4 ~backend:Erebor.Isolation.Pks ())
    in
    (default_check :: pks_t3) @ pks_t4
  in
  let f9 = if fig9 then fig9_checks ~baseline ~jobs else [] in
  let cpu = Sys.time () -. cpu0 in
  let minor = Gc.minor_words () -. minor0 in
  let wall =
    match Json.to_float (Json.member "total_wall_s" baseline) with
    | None -> [ chk "wall" true "no baseline wall time" ]
    | Some base ->
        let budget = wall_tolerance *. base in
        [
          chk
            ~old_value:(Printf.sprintf "budget %.3fs" budget)
            ~new_value:(Printf.sprintf "%.3fs cpu" cpu)
            "wall" (cpu <= budget)
            (Printf.sprintf
               "regeneration %.3fs cpu, budget %.3fs (%.1fx baseline suite)"
               cpu budget wall_tolerance);
        ]
  in
  (* Minor AND major words are bounded against the committed full-suite
     totals: the anchor regeneration allocates a small fraction of either,
     so a pass leaves generous slack while still catching an accidental
     order-of-magnitude allocation regression on the hot paths. *)
  let major = (Gc.quick_stat ()).Gc.major_words -. major0 in
  let gc_bound label words =
    match Json.to_float (Json.mem_of (label ^ "_words") (Json.member "gc" baseline)) with
    | None -> [ chk ("gc-" ^ label) true "no baseline GC stats" ]
    | Some base ->
        let budget = gc_tolerance *. base in
        [
          chk
            ~old_value:(Printf.sprintf "budget %.0f words" budget)
            ~new_value:(Printf.sprintf "%.0f %s words" words label)
            ("gc-" ^ label) (words <= budget)
            (Printf.sprintf
               "regeneration %.0f %s words, budget %.0f (%.1fx baseline suite)"
               words label budget gc_tolerance);
        ]
  in
  (schema :: t3) @ t4 @ backend_pin @ f9 @ wall
  @ gc_bound "minor" minor @ gc_bound "major" major

let check_string ?fig9 ?jobs ?wall_tolerance ?gc_tolerance json =
  match Json.parse json with
  | Result.Error e -> Result.Error ("baseline JSON: " ^ e)
  | Result.Ok baseline ->
      Result.Ok (check_json ?fig9 ?jobs ?wall_tolerance ?gc_tolerance baseline)

let check_file ?fig9 ?jobs ?wall_tolerance ?gc_tolerance ~path () =
  match In_channel.with_open_bin path In_channel.input_all with
  | json -> check_string ?fig9 ?jobs ?wall_tolerance ?gc_tolerance json
  | exception Sys_error e -> Result.Error e

(* Anchor verification against a flight recording: the journal's Run-span
   slice must reproduce the baseline's Fig. 9 rate row for the (workload,
   setting) pair named in its header. The rates are recomputed exactly the
   way the live path computes them — event counts between the Run span
   markers over [Hw.Cycles.to_seconds end - Hw.Cycles.to_seconds begin],
   the same float expression [Sim.Stats.diff] produces — so a journal of an
   undisturbed run matches the committed row to the last %.2f digit. *)
let check_journal ~journal baseline =
  match Obs.Journal.read_info ~path:journal with
  | Result.Error e -> [ chk "journal/read" false e ]
  | Result.Ok info -> (
      let complete =
        chk "journal/complete" info.Obs.Journal.complete
          (if info.Obs.Journal.complete then
             Printf.sprintf "finalized, %d events in %d segments"
               info.Obs.Journal.events info.Obs.Journal.segments
           else "journal not finalized (truncated tail)")
      in
      let meta k = List.assoc_opt k info.Obs.Journal.meta in
      match (meta "workload", meta "setting") with
      | None, _ | _, None ->
          [
            complete;
            chk "journal/meta" false
              "header lacks workload/setting metadata (record with \
               erebor-sim run --record)";
          ]
      | Some program, Some setting -> (
          (* One streaming pass: find the Run span window on whichever
             stream opens it first and count the exit kinds inside it. *)
          let in_run = ref false and done_run = ref false in
          let run_stream = ref (-1) in
          let t0 = ref 0 and t1 = ref 0 in
          let pf = ref 0 and ti = ref 0 and ve = ref 0 and emc = ref 0 in
          let scan =
            Obs.Journal.fold ~path:journal ~init:()
              (fun () (e : Obs.Journal.event) ->
                match e.Obs.Journal.kind with
                | Obs.Trace.Span_begin Obs.Trace.Run
                  when (not !in_run) && not !done_run ->
                    in_run := true;
                    run_stream := e.Obs.Journal.stream;
                    t0 := e.Obs.Journal.ts
                | Obs.Trace.Span_end Obs.Trace.Run
                  when !in_run && e.Obs.Journal.stream = !run_stream ->
                    in_run := false;
                    done_run := true;
                    t1 := e.Obs.Journal.ts
                | k when !in_run && e.Obs.Journal.stream = !run_stream -> (
                    match k with
                    | Obs.Trace.Page_fault -> incr pf
                    | Obs.Trace.Timer_irq -> incr ti
                    | Obs.Trace.Ve_exit -> incr ve
                    | Obs.Trace.Emc_entry -> incr emc
                    | _ -> ())
                | _ -> ())
          in
          match scan with
          | Result.Error e -> [ complete; chk "journal/read" false e ]
          | Result.Ok ((), _) ->
              if not !done_run then
                [
                  complete;
                  chk "journal/run-span" false
                    "no complete Run span in the recording";
                ]
              else
                let span =
                  chk "journal/run-span" true
                    (Printf.sprintf "%s @ %s, run window %d..%d cycles"
                       program setting !t0 !t1)
                in
                (* Reproduce Sim.Stats.diff's float math bit for bit. *)
                let seconds =
                  Hw.Cycles.to_seconds !t1 -. Hw.Cycles.to_seconds !t0
                in
                let rate n =
                  if seconds <= 0.0 then 0.0 else float_of_int n /. seconds
                in
                let row =
                  List.find_opt
                    (fun r ->
                      Json.to_str (Json.member "program" r) = Some program
                      && Json.to_str (Json.member "setting" r) = Some setting)
                    (Json.to_arr (Json.member "fig9" baseline))
                in
                let rates =
                  match row with
                  | None ->
                      [
                        chk "journal/fig9-row" false
                          (Printf.sprintf
                             "baseline has no fig9 row for %s @ %s" program
                             setting);
                      ]
                  | Some row ->
                      List.map
                        (fun (field, n) ->
                          let name = Printf.sprintf "journal/%s" field in
                          let cur = Printf.sprintf "%.2f" (rate n) in
                          match Json.to_float (Json.member field row) with
                          | None ->
                              chk ~new_value:cur name false
                                "missing in baseline"
                          | Some base ->
                              let base = Printf.sprintf "%.2f" base in
                              if base = cur then
                                chk ~old_value:base ~new_value:cur name true
                                  cur
                              else
                                chk ~old_value:base ~new_value:cur name false
                                  (Printf.sprintf
                                     "baseline %s/s, recording %s/s" base cur))
                        [
                          ("pf_rate", !pf);
                          ("timer_rate", !ti);
                          ("ve_rate", !ve);
                          ("emc_rate", !emc);
                        ]
                in
                complete :: span :: rates))

let check_journal_file ~journal ~path () =
  match In_channel.with_open_bin path In_channel.input_all with
  | json -> (
      match Json.parse json with
      | Result.Error e -> Result.Error ("baseline JSON: " ^ e)
      | Result.Ok baseline -> Result.Ok (check_journal ~journal baseline))
  | exception Sys_error e -> Result.Error e

(* A minimal baseline covering just the exact anchors, regenerated from the
   current build — lets tests exercise the gate (and seed mismatches into
   it) without the committed file. *)
let render_anchors ?instrument () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"erebor-bench-sim/1\",\n  \"table3\": [\n";
  let t3 = Eval.table3 ?instrument () in
  List.iteri
    (fun i (r : Eval.transition_row) ->
      Printf.bprintf buf "    { \"transition\": \"%s\", \"cycles\": %d }%s\n"
        r.Eval.transition r.Eval.cycles
        (if i = List.length t3 - 1 then "" else ","))
    t3;
  Buffer.add_string buf "  ],\n  \"table4\": [\n";
  let t4 = Eval.table4 ?instrument () in
  List.iteri
    (fun i (r : Eval.privop_row) ->
      Printf.bprintf buf
        "    { \"op\": \"%s\", \"native_cycles\": %d, \"erebor_cycles\": %d }%s\n"
        r.Eval.op r.Eval.native_cycles r.Eval.erebor_cycles
        (if i = List.length t4 - 1 then "" else ","))
    t4;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
