(** The fleet-telemetry bench gate ([bench agg], [@ci-agg]).

    Pins {!Obs.Agg}'s contract end to end: the Table 3/4 anchors and a
    Fig. 9 workload are byte-identical/undisturbed with fleet telemetry
    attached; merged fleet percentiles stay within the sketch's
    relative-error bound of the exact sort oracle; the merged snapshot
    serializes identically for any merge order and any [Sim.Runner]
    [--jobs] width; one steady-state fleet record costs exactly 0 minor
    words; and a seeded tail-latency spike is attributable — its tenant
    ranks first in the heavy hitters with sound count bounds, and the
    fleet p99 exemplar's trace id and journal frame offset resolve to
    events recorded inside that exact request's window. *)

val run : ?smoke:bool -> unit -> Bench_gate.check list
(** Run every check. [smoke] shrinks fleet size and iteration counts for
    the CI gate; the pinned properties are identical. *)
