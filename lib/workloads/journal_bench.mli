(** The flight-recorder bench gate ([bench/main.exe journal], @ci-journal).

    Pins {!Obs.Journal}'s contract with the calibrated simulator:

    - the Table 3/4 anchor document is byte-identical with a journal writer
      attached to every bench machine (recording never advances the
      virtual clock);
    - a recorded run replayed into a fresh {!Obs.Counter} reproduces the
      live counter sink exactly (per-kind count and arg-sum);
    - the steady-state record path allocates exactly 0 minor words per
      event;
    - {!Obs.Diff} of a journal against itself is silent, while a seeded
      slowdown run is flagged past the default regression threshold;
    - the recorded run's CPU time stays inside the bench gate's wall
      tolerance relative to the committed [BENCH_sim.json] suite wall, and
      {!Bench_gate.check_journal} verifies the recording against the
      baseline's Fig. 9 row. *)

val run :
  ?smoke:bool -> ?baseline:string -> unit -> Bench_gate.verdict
(** Run every check; [smoke] (default false) shrinks the allocation-check
    iteration count for the @ci cut, [baseline] (default
    ["BENCH_sim.json"]) locates the committed suite record used by the
    wall and Fig. 9 comparisons. *)
