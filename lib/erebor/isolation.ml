(* Pluggable isolation backends: the mechanism behind the monitor's
   privilege boundary, factored out of Gate/Mmu_guard/Monitor so PKS is a
   default rather than an assumption. *)

type kind = Pks | Write_protect | Tme_mk

let kind_name = function
  | Pks -> "pks"
  | Write_protect -> "wp"
  | Tme_mk -> "tmemk"

let kind_of_name = function
  | "pks" -> Ok Pks
  | "wp" | "write-protect" -> Ok Write_protect
  | "tmemk" | "tme-mk" -> Ok Tme_mk
  | s -> Error (Printf.sprintf "unknown isolation backend %S (expected pks|wp|tmemk)" s)

let all_kinds = [ Pks; Write_protect; Tme_mk ]

(* Tenant key ids are monitor-assigned from the sandbox id; keyid 0 is the
   shared key, so owners fold into 1..2^keyid_bits-1. *)
let keyid_of_owner owner =
  ((owner - 1) mod ((1 lsl Hw.Pte.keyid_bits) - 1)) + 1

module type S = sig
  type t

  val kind : kind
  val create : cpu:Hw.Cpu.t -> t

  val install : t -> unit
  (** Program the hardware the backend rests on (CR4 bits, MSRs, key
      engine). Called once by [Monitor.install], from monitor context. *)

  (** {2 Gate grant protocol} — unboxed ints; runs once per EMC. *)

  val read_grant : t -> int
  val load_grant : t -> int -> unit
  val granted_value : t -> int
  val revoked_value : t -> int

  (** {2 MMU-guard hooks} *)

  val validate_untrusted : t -> Hw.Pte.t -> (unit, string) result
  (** Screen a kernel-supplied leaf PTE before classification dispatch —
      e.g. reject forged key ids that only the monitor may stamp. *)

  val seal_confined_leaf : t -> owner:int -> Hw.Pte.t -> Hw.Pte.t
  (** Transform an owner-checked confined leaf before install (identity for
      PKS/WP; stamps the tenant key id for TME-MK). *)

  val tag_confined : t -> pfn:int -> owner:int -> unit
  val untag_confined : t -> pfn:int -> unit

  (** {2 Monitor hooks} *)

  val tenant_enter : t -> int option -> unit
  (** The monitor observed a CR3 load: [Some sid] entering sandbox [sid]'s
      address space, [None] for any non-sandbox root. *)
end

(* --- PKS: the paper's TDX prototype (§5), the default backend. -------- *)

module Pks_backend : S = struct
  type t = Hw.Cpu.t

  let kind = Pks
  let create ~cpu = cpu

  let install cpu =
    Hw.Cpu.set_cr_bit cpu ~reg:`Cr4 Hw.Cr.cr4_pks true;
    Hw.Cpu.write_msr cpu Hw.Msr.ia32_pkrs Policy.normal_mode_pkrs

  let read_grant cpu = Hw.Msr.pkrs_bits cpu.Hw.Cpu.msr
  let load_grant cpu v = Hw.Msr.write_pkrs_bits cpu.Hw.Cpu.msr v
  let granted_value _ = Int64.to_int Policy.monitor_mode_pkrs
  let revoked_value _ = Int64.to_int Policy.normal_mode_pkrs

  let validate_untrusted _ _ = Ok ()
  let seal_confined_leaf _ ~owner:_ pte = pte
  let tag_confined _ ~pfn:_ ~owner:_ = ()
  let untag_confined _ ~pfn:_ = ()
  let tenant_enter _ _ = ()
end

(* --- CR0.WP: the SEV port (§10), after Nested Kernel. ----------------- *)

module Wp_backend : S = struct
  type t = Hw.Cpu.t

  let kind = Write_protect
  let create ~cpu = cpu

  (* No PKS hardware: protection comes from read-only mappings plus CR0.WP,
     which Monitor.install pins on unconditionally. *)
  let install _ = ()

  let read_grant cpu = if Hw.Cr.wp cpu.Hw.Cpu.cr then 1 else 0
  let load_grant cpu v = Hw.Cr.set_bit cpu.Hw.Cpu.cr ~reg:`Cr0 Hw.Cr.cr0_wp (v = 1)
  let granted_value _ = 0
  let revoked_value _ = 1

  let validate_untrusted _ _ = Ok ()
  let seal_confined_leaf _ ~owner:_ pte = pte
  let tag_confined _ ~pfn:_ ~owner:_ = ()
  let untag_confined _ ~pfn:_ = ()
  let tenant_enter _ _ = ()
end

(* --- TME-MK: per-tenant memory-encryption keys, after TME-Box. -------- *)

module Tme_backend : S = struct
  type t = { cpu : Hw.Cpu.t; tme : Hw.Tme.t }

  let kind = Tme_mk

  let create ~cpu =
    { cpu; tme = Hw.Tme.create ~frames:(Hw.Phys_mem.frames cpu.Hw.Cpu.mem) }

  (* Attach the key engine to the walker; the gate runs the CR0.WP
     discipline since TME-MK platforms need no protection keys. *)
  let install t = t.cpu.Hw.Cpu.tme <- Some t.tme

  let read_grant t = if Hw.Cr.wp t.cpu.Hw.Cpu.cr then 1 else 0
  let load_grant t v = Hw.Cr.set_bit t.cpu.Hw.Cpu.cr ~reg:`Cr0 Hw.Cr.cr0_wp (v = 1)
  let granted_value _ = 0
  let revoked_value _ = 1

  (* Key ids are stamped by the monitor alone; a kernel-crafted PTE that
     names one is a forgery whatever frame it points at. *)
  let validate_untrusted _ pte =
    if Hw.Pte.keyid pte <> 0 then
      Error "pte carries a forged key id (key ids are monitor-assigned)"
    else Ok ()

  let seal_confined_leaf _ ~owner pte = Hw.Pte.set_keyid pte (keyid_of_owner owner)
  let tag_confined t ~pfn ~owner = Hw.Tme.tag t.tme ~pfn (keyid_of_owner owner)
  let untag_confined t ~pfn = Hw.Tme.untag t.tme ~pfn

  let tenant_enter t sid =
    Hw.Tme.set_active t.tme
      (match sid with Some owner -> keyid_of_owner owner | None -> 0)
end

type t = B : (module S with type t = 'a) * 'a -> t

let create kind ~cpu =
  match kind with
  | Pks -> B ((module Pks_backend), Pks_backend.create ~cpu)
  | Write_protect -> B ((module Wp_backend), Wp_backend.create ~cpu)
  | Tme_mk -> B ((module Tme_backend), Tme_backend.create ~cpu)

let kind (B ((module M), _)) = M.kind
let name t = kind_name (kind t)
let install (B ((module M), st)) = M.install st
let read_grant (B ((module M), st)) = M.read_grant st
let load_grant (B ((module M), st)) v = M.load_grant st v
let granted_value (B ((module M), st)) = M.granted_value st
let revoked_value (B ((module M), st)) = M.revoked_value st
let validate_untrusted (B ((module M), st)) pte = M.validate_untrusted st pte
let seal_confined_leaf (B ((module M), st)) ~owner pte =
  M.seal_confined_leaf st ~owner pte
let tag_confined (B ((module M), st)) ~pfn ~owner = M.tag_confined st ~pfn ~owner
let untag_confined (B ((module M), st)) ~pfn = M.untag_confined st ~pfn
let tenant_enter (B ((module M), st)) sid = M.tenant_enter st sid
