(** EREBOR-SANDBOX (§6): monitor-managed containers that process one client's
    data. The manager owns the lifecycle — confined/common memory
    declaration, the data-loaded phase flip that seals common memory and
    disables exits, exit interposition, and terminal scrubbing.

    One manager can host N mutually-distrusting sandboxes in the same CVM:
    each gets its own address-space root (registered with the MMU guard, so
    tenant A can never map tenant B's confined frames), its own channel fd,
    per-sandbox exit statistics, and a {!Policy.tenant} policy. Which
    hardware mechanism walls tenants off is the monitor's {!Isolation}
    backend — protection keys by default, per-tenant encryption keys under
    TME-MK — and is invisible at this interface. *)

type phase = Initializing | Data_loaded | Terminated

type t

val id : t -> int
val name : t -> string
val phase : t -> phase
val main_task : t -> Kernel.Task.t
val threads : t -> Kernel.Task.t list
val kill_reason : t -> string option
val channel_fd : t -> int
(** The reserved ioctl descriptor for monitor-shepherded I/O (§6.3). *)

val confined_bytes : t -> int
val policy : t -> Policy.tenant

val exit_stats : t -> int * int * int
(** (page faults, timer interrupts, #VE-style kill attempts) observed for
    this sandbox — Table 6's exit columns. Counters are per-sandbox, so the
    columns stay meaningful with N > 1 tenants; see {!exit_stats_all}. *)

type manager

val create_manager : monitor:Monitor.t -> kern:Kernel.t -> manager
(** Also installs the kernel fault-frame hook and the monitor usercopy veto.
    One manager serves every sandbox in the CVM: tenants share the monitor
    and kernel but get their own address-space root, confined frames,
    channel fd and {!Policy.tenant} limits. *)

val create_sandbox :
  ?policy:Policy.tenant ->
  manager -> name:string -> confined_budget:int -> (t, string) result
(** New sandbox with its own address space and a hard confined-memory budget
    set by the service provider (§6.1). [policy] defaults to
    [Policy.default_tenant ~label:name]. *)

val spawn_thread : manager -> t -> name:string -> Kernel.Task.t
(** Pre-created worker thread (clone) sharing the sandbox address space. *)

val declare_confined : manager -> t -> len:int -> (int, string) result
(** Declare-and-pin a confined region: contiguous frames from the CMA
    region, classified [Confined] and fully populated (the one-time init
    cost of §9.2). Returns the region's base address. Fails when the budget
    or the CMA region is exhausted. *)

val attach_common : manager -> t -> name:string -> size:int -> (int, string) result
(** Map a (possibly pre-existing) named common instance read-write; frames
    materialize on first touch and are shared across every sandbox that
    attaches the same name. *)

val common_instance_frames : manager -> name:string -> int
(** Frames currently backing an instance (memory-saving accounting). *)

val load_client_data : manager -> t -> bytes -> (int, string) result
(** Install client plaintext into the sandbox's first confined region, seal
    every attached common instance read-only, disable user interrupts, and
    flip to [Data_loaded]. Returns the install address. *)

val read_sandbox_bytes : manager -> t -> addr:int -> len:int -> bytes
(** Monitor-side read of sandbox memory (for shepherding output). *)

val write_sandbox_bytes : manager -> t -> addr:int -> bytes -> unit

val append_output : manager -> t -> bytes -> unit
(** Collect result bytes the sandbox hands to the monitor via ioctl. *)

val take_output : manager -> t -> bytes

(** {2 Exit interposition (§6.2, Fig. 7)} *)

val handle_syscall : manager -> t -> Kernel.Syscall.call -> Kernel.Syscall.result
(** Before data: forwarded to the kernel. After data: only the reserved
    channel ioctl survives (request 1 = fetch input, request 2 = emit
    output); any other system call kills the sandbox. *)

val handle_interrupt : manager -> t -> (unit -> unit) -> unit
(** External interrupt during sandbox execution: the monitor saves and
    masks the register state around the OS handler. *)

val handle_ve : manager -> t -> reason:int -> Kernel.Syscall.result
(** A #VE-causing exit (hypercall attempt): kills a sealed sandbox. *)

val cpuid : manager -> t -> leaf:int -> int64
(** Emulated via the monitor's cache — no exit after the first use. *)

val page_fault : manager -> t -> addr:int -> kind:Hw.Fault.access_kind -> (unit, string) result
(** Runtime fault path for sandbox tasks (common-memory demand paging). *)

val timer_tick : manager -> t -> unit

val terminate : manager -> t -> unit
(** Scrub: zero every confined frame, unmap and free them, drop outputs. *)

val find_by_task : manager -> Kernel.Task.t -> t option
val find_by_id : manager -> int -> t option

val sandboxes : manager -> t list
(** Every sandbox the manager has created (including terminated ones),
    ascending by id — the scheduling order multi-tenant drivers iterate. *)

val exit_stats_all : manager -> (int * string * (int * int * int)) list
(** Per-sandbox [(id, name, exit_stats)] rows, ascending by id — the
    multi-tenant form of {!exit_stats} behind [Sim.Stats.sandbox_row]. *)

val sandbox_count : manager -> int
val manager_kernel : manager -> Kernel.t
val manager_monitor : manager -> Monitor.t

(** {2 Side-channel mitigations (§11)} *)

val set_mitigations : manager -> Mitigations.policy -> unit
(** Arm exit-rate limiting / quantized output / flush-on-exit for every
    sandbox exit this manager interposes. *)

val mitigation_stats : manager -> (int * int * int) option
(** (stalls, stall cycles, flushes), when mitigations are armed. *)
