module Wire = struct
  type t = { queue : bytes Queue.t; mutable log : bytes list }

  let create () = { queue = Queue.create (); log = [] }

  let send t msg =
    let copy = Bytes.copy msg in
    Queue.add copy t.queue;
    t.log <- copy :: t.log

  let recv t = Queue.take_opt t.queue
  let snoop t = List.rev t.log
end

let le64 n =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((n lsr (8 * i)) land 0xff))
  done;
  b

let read_le64 b off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let pad_to_bucket ~bucket data =
  if bucket <= 0 then invalid_arg "pad_to_bucket: bucket must be positive";
  let body = Bytes.length data + 8 in
  let padded = (body + bucket - 1) / bucket * bucket in
  let out = Bytes.make padded '\000' in
  Bytes.blit (le64 (Bytes.length data)) 0 out 0 8;
  Bytes.blit data 0 out 8 (Bytes.length data);
  out

let unpad data =
  if Bytes.length data < 8 then Error "unpad: short buffer"
  else begin
    let len = read_le64 data 0 in
    if len < 0 || len + 8 > Bytes.length data then Error "unpad: bad length"
    else Ok (Bytes.sub data 8 len)
  end

let encode_sealed { Crypto.Aead.nonce; ciphertext; tag } =
  Bytes.concat Bytes.empty [ nonce; tag; le64 (Bytes.length ciphertext); ciphertext ]

let decode_sealed b =
  if Bytes.length b < 12 + 32 + 8 then Error "decode_sealed: short"
  else begin
    let nonce = Bytes.sub b 0 12 in
    let tag = Bytes.sub b 12 32 in
    let len = read_le64 b 44 in
    if len < 0 || 52 + len <> Bytes.length b then Error "decode_sealed: bad length"
    else Ok { Crypto.Aead.nonce; ciphertext = Bytes.sub b 52 len; tag }
  end

(* Trace-context header, carried *inside* the seal so the untrusted proxy
   learns nothing from it: magic "ERTC1", then le64 trace id, le64 parent
   span id, and a flags byte (bit 0 = sampled). The server strips it before
   handing the plaintext to the monitor, so payload-length-based cycle
   charges are identical with tracing on or off. *)
let ctx_magic = "ERTC1"
let ctx_header_len = String.length ctx_magic + 8 + 8 + 1

let encode_ctx (cx : Obs.Request.ctx) data =
  let h = Bytes.create ctx_header_len in
  Bytes.blit_string ctx_magic 0 h 0 5;
  Bytes.blit (le64 cx.Obs.Request.trace_id) 0 h 5 8;
  Bytes.blit (le64 cx.Obs.Request.span_id) 0 h 13 8;
  Bytes.set h 21 (if cx.Obs.Request.sampled then '\001' else '\000');
  Bytes.cat h data

let decode_ctx data =
  if
    Bytes.length data >= ctx_header_len
    && Bytes.sub_string data 0 (String.length ctx_magic) = ctx_magic
  then
    let cx =
      {
        Obs.Request.trace_id = read_le64 data 5;
        span_id = read_le64 data 13;
        sampled = Bytes.get data 21 <> '\000';
      }
    in
    Some (cx, Bytes.sub data ctx_header_len (Bytes.length data - ctx_header_len))
  else None

let serialize_report (r : Tdx.Attest.report) =
  Bytes.concat Bytes.empty
    (r.Tdx.Attest.mrtd
    :: (Array.to_list r.Tdx.Attest.rtmrs @ [ r.Tdx.Attest.report_data; r.Tdx.Attest.mac ]))

let deserialize_report b =
  let expect = 32 + (4 * 32) + 64 + 32 in
  if Bytes.length b <> expect then Error "report: bad size"
  else
    Ok
      {
        Tdx.Attest.mrtd = Bytes.sub b 0 32;
        rtmrs = Array.init 4 (fun i -> Bytes.sub b (32 + (32 * i)) 32);
        report_data = Bytes.sub b 160 64;
        mac = Bytes.sub b 224 32;
      }

let transcript_hash ~client_pub ~server_pub =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed_string ctx "erebor-channel-v1";
  Crypto.Sha256.feed ctx client_pub;
  Crypto.Sha256.feed ctx server_pub;
  Crypto.Sha256.digest ctx

let derive_keys ~secret =
  let okm = Crypto.Hkdf.expand ~prk:secret ~info:"erebor-session-keys" ~len:64 in
  (Bytes.sub okm 0 32, Bytes.sub okm 32 32) (* client->server, server->client *)

let fresh_nonce rng = Crypto.Drbg.bytes rng 12

module Client = struct
  type t = {
    rng : Crypto.Drbg.t;
    hw_key : bytes;
    expected_mrtd : bytes;
    keypair : Crypto.Dh.keypair;
    mutable c2s : bytes;
    mutable s2c : bytes;
    mutable established : bool;
  }

  let create ~rng ~hw_key ~expected_mrtd =
    {
      rng;
      hw_key;
      expected_mrtd;
      keypair = Crypto.Dh.generate rng;
      c2s = Bytes.empty;
      s2c = Bytes.empty;
      established = false;
    }

  let hello t = Crypto.Dh.public_bytes t.keypair

  let finish t ~server_hello =
    if Bytes.length server_hello < 192 then Error "server hello: short"
    else begin
      let server_pub = Bytes.sub server_hello 0 192 in
      match deserialize_report (Bytes.sub server_hello 192 (Bytes.length server_hello - 192)) with
      | Error e -> Error e
      | Ok report ->
          if not (Tdx.Attest.verify ~hw_key:t.hw_key report) then
            Error "attestation: bad report MAC"
          else if not (Bytes.equal report.Tdx.Attest.mrtd t.expected_mrtd) then
            Error "attestation: unexpected boot measurement"
          else begin
            let binding =
              transcript_hash ~client_pub:(Crypto.Dh.public_bytes t.keypair) ~server_pub
            in
            let expected_rd = Bytes.make 64 '\000' in
            Bytes.blit binding 0 expected_rd 0 32;
            if not (Bytes.equal report.Tdx.Attest.report_data expected_rd) then
              Error "attestation: report not bound to this handshake"
            else
              match Crypto.Dh.shared_secret t.keypair ~peer_public:server_pub with
              | None -> Error "handshake: degenerate server public value"
              | Some secret ->
                  let c2s, s2c = derive_keys ~secret in
                  t.c2s <- c2s;
                  t.s2c <- s2c;
                  t.established <- true;
                  Ok ()
          end
    end

  let seal_request ?ctx t data =
    if not t.established then invalid_arg "Client.seal_request: no session";
    let data = match ctx with None -> data | Some cx -> encode_ctx cx data in
    encode_sealed
      (Crypto.Aead.seal ~key:t.c2s ~nonce:(fresh_nonce t.rng) ~ad:(Bytes.of_string "c2s") data)

  let open_response t wire_bytes =
    if not t.established then Error "no session"
    else
      match decode_sealed wire_bytes with
      | Error e -> Error e
      | Ok sealed -> (
          match Crypto.Aead.open_ ~key:t.s2c ~ad:(Bytes.of_string "s2c") sealed with
          | None -> Error "response authentication failed"
          | Some padded -> unpad padded)
end

module Server = struct
  type t = {
    rng : Crypto.Drbg.t;
    c2s : bytes;
    s2c : bytes;
    emit : Obs.Trace.kind -> arg:int -> unit;
        (* Channel traffic events ride the monitor's emitter; arg is the
           wire-payload size in bytes. *)
    obs : Obs.Emitter.t;
    now : unit -> int;
    mutable last_ctx : Obs.Request.ctx option;
        (* Trace context of the request being served, set by [open_request]
           and cleared when [seal_response] closes the window. *)
  }

  let last_ctx t = t.last_ctx

  (* Attribution span markers around the crypto work. The channel's own
     computation is host-real (no virtual cost of its own), but the spans
     scope the decrypt/seal cycle charges the machine layer adds and make
     handshake crypto visible in traces — e.g. the tdreport EMC inside
     [accept] shows up nested under [crypto]. *)
  let crypto_begin = Obs.Trace.span_begin Obs.Trace.Channel_crypto
  let crypto_end = Obs.Trace.span_end Obs.Trace.Channel_crypto

  let accept ~monitor ~rng ~client_hello =
    let emit kind ~arg =
      Obs.Emitter.emit (Monitor.obs monitor) kind ~ts:(Monitor.now monitor) ~arg
    in
    emit Obs.Trace.Channel_recv ~arg:(Bytes.length client_hello);
    let audit verdict detail =
      Obs.Emitter.audit_event (Monitor.obs monitor)
        ~ts:(Monitor.now monitor) ~category:"channel.accept" ~verdict detail
    in
    if Bytes.length client_hello <> 192 then begin
      audit Obs.Audit.Deny (fun () -> "client hello: bad size");
      Error "client hello: bad size"
    end
    else begin
      emit crypto_begin ~arg:0;
      let result =
        let keypair = Crypto.Dh.generate rng in
        let server_pub = Crypto.Dh.public_bytes keypair in
        match Crypto.Dh.shared_secret keypair ~peer_public:client_hello with
        | None -> Error "handshake: degenerate client public value"
        | Some secret ->
            let binding = transcript_hash ~client_pub:client_hello ~server_pub in
            (* Only the monitor can execute this tdcall (C5). *)
            let report = Monitor.tdreport monitor ~report_data:binding in
            let c2s, s2c = derive_keys ~secret in
            let hello = Bytes.cat server_pub (serialize_report report) in
            Ok
              ( {
                  rng;
                  c2s;
                  s2c;
                  emit;
                  obs = Monitor.obs monitor;
                  now = (fun () -> Monitor.now monitor);
                  last_ctx = None;
                },
                hello )
      in
      emit crypto_end ~arg:0;
      (match result with
      | Ok (_, hello) ->
          emit Obs.Trace.Channel_send ~arg:(Bytes.length hello);
          audit Obs.Audit.Allow (fun () -> "session established")
      | Error e -> audit Obs.Audit.Deny (fun () -> e));
      result
    end

  let open_request t wire_bytes =
    t.emit Obs.Trace.Channel_recv ~arg:(Bytes.length wire_bytes);
    t.emit crypto_begin ~arg:0;
    let result =
      match decode_sealed wire_bytes with
      | Error e -> Error e
      | Ok sealed -> (
          match Crypto.Aead.open_ ~key:t.c2s ~ad:(Bytes.of_string "c2s") sealed with
          | None -> Error "request authentication failed"
          | Some data -> Ok data)
    in
    t.emit crypto_end ~arg:0;
    match result with
    | Error e ->
        Obs.Emitter.audit_event t.obs ~ts:(t.now ()) ~category:"channel.request"
          ~verdict:Obs.Audit.Deny (fun () -> e);
        result
    | Ok data -> (
        (* Strip the trace-context header before the plaintext reaches the
           monitor: downstream length-proportional cycle charges must not
           see it. The server-side request window opens here and closes in
           [seal_response]. *)
        match decode_ctx data with
        | None -> result
        | Some (cx, payload) ->
            t.last_ctx <- Some cx;
            t.emit Obs.Trace.Req_begin ~arg:(Obs.Request.pack cx ~root:false);
            Ok payload)

  let seal_response t ~bucket data =
    t.emit crypto_begin ~arg:0;
    let out =
      encode_sealed
        (Crypto.Aead.seal ~key:t.s2c ~nonce:(fresh_nonce t.rng) ~ad:(Bytes.of_string "s2c")
           (pad_to_bucket ~bucket data))
    in
    t.emit crypto_end ~arg:0;
    t.emit Obs.Trace.Channel_send ~arg:(Bytes.length out);
    (match t.last_ctx with
    | None -> ()
    | Some cx ->
        t.emit Obs.Trace.Req_end ~arg:(Obs.Request.pack cx ~root:false);
        t.last_ctx <- None);
    out
end
