(** End-to-end secure data communication (§6.3).

    The remote client and EREBOR-MONITOR run an attestation-authenticated
    Diffie-Hellman handshake over an *untrusted* transport (the proxy
    program / DebugFS channel of the paper's artifact, modelled by {!Wire}).
    The monitor binds its DH share to a TDREPORT whose report_data is the
    transcript hash; the client checks the report's MAC, the expected MRTD,
    and the binding before deriving directional AEAD keys. Responses are
    padded to a fixed bucket size so output length leaks nothing (§6.3). *)

module Wire : sig
  (** The untrusted proxy: a message queue anyone (including the attacker)
      can read. *)

  type t

  val create : unit -> t
  val send : t -> bytes -> unit
  val recv : t -> bytes option
  val snoop : t -> bytes list
  (** Everything that ever crossed the wire, for leakage assertions. *)
end

val pad_to_bucket : bucket:int -> bytes -> bytes
(** Length-prefix and zero-pad to the next multiple of [bucket]. *)

val unpad : bytes -> (bytes, string) result

val encode_sealed : Crypto.Aead.sealed -> bytes
val decode_sealed : bytes -> (Crypto.Aead.sealed, string) result

(** {2 Trace-context header}

    A request-tracing context travels *inside* the seal — magic ["ERTC1"],
    le64 trace id, le64 parent span id, one flags byte (bit 0 = sampled) —
    so the untrusted proxy learns nothing from it. The server strips the
    header before handing the plaintext to the monitor, keeping
    length-proportional cycle charges identical with tracing on or off. *)

val ctx_header_len : int
val encode_ctx : Obs.Request.ctx -> bytes -> bytes
val decode_ctx : bytes -> (Obs.Request.ctx * bytes) option

module Client : sig
  type t

  val create :
    rng:Crypto.Drbg.t -> hw_key:bytes -> expected_mrtd:bytes -> t
  (** [hw_key] stands in for the quote-verification collateral a real
      verifier fetches from the attestation service (see DESIGN.md). *)

  val hello : t -> bytes
  (** First flight: the client's DH public value. *)

  val finish : t -> server_hello:bytes -> (unit, string) result
  (** Verify the monitor's report (MAC, MRTD, transcript binding) and derive
      the session keys. *)

  val seal_request : ?ctx:Obs.Request.ctx -> t -> bytes -> bytes
  (** Encrypt client data for the monitor (wire encoding included). With
      [?ctx], the trace-context header is prepended inside the seal. *)

  val open_response : t -> bytes -> (bytes, string) result
  (** Decrypt, authenticate and unpad a monitor response. *)
end

module Server : sig
  type t

  val accept :
    monitor:Monitor.t -> rng:Crypto.Drbg.t -> client_hello:bytes ->
    (t * bytes, string) result
  (** Monitor side: consume the client hello, mint the bound TDREPORT
      (monitor-exclusive tdcall) and produce the server hello. *)

  val open_request : t -> bytes -> (bytes, string) result
  (** Decrypt and authenticate one request. A trace-context header, when
      present, is stripped before the plaintext is returned; the server
      emits [Req_begin] and remembers the context until the response is
      sealed. Authentication failures are audited. *)

  val last_ctx : t -> Obs.Request.ctx option
  (** The trace context of the request currently being served, if any. *)

  val seal_response : t -> bucket:int -> bytes -> bytes
  (** Pad to [bucket] and encrypt — fixed-length output against size covert
      channels. Emits [Req_end] and clears the stored trace context. *)
end

val serialize_report : Tdx.Attest.report -> bytes
val deserialize_report : bytes -> (Tdx.Attest.report, string) result
