let key_default = 0
let key_monitor = 1
let key_ptp = 2
let key_kernel_text = 3

let normal_mode_pkrs =
  let pkrs = Hw.Pks.set_key ~pkrs:0L ~key:key_monitor Hw.Pks.no_access in
  let pkrs = Hw.Pks.set_key ~pkrs ~key:key_ptp Hw.Pks.read_only in
  Hw.Pks.set_key ~pkrs ~key:key_kernel_text Hw.Pks.read_only

let monitor_mode_pkrs = 0L

(* Per-tenant sandbox policy: with N mutually-distrusting sandboxes in one
   CVM, each carries its own limits rather than inheriting one global
   configuration. Defaults reproduce the single-tenant behaviour. *)
type tenant = {
  label : string;
  max_output_bytes : int;
  allow_common : bool;
}

let default_tenant ~label = { label; max_output_bytes = 0; allow_common = true }

type instr_class = Cr | Msr | Smap | Idt | Ghci | Mmu

type sensitive = { class_ : instr_class; mnemonic : string; description : string }

let sensitive_instructions =
  [
    { class_ = Cr; mnemonic = "mov %r, %CR";
      description =
        "Write CR0/3/4 to control MMU page table and enable hardware kernel \
         protection features." };
    { class_ = Msr; mnemonic = "wrmsr v, %MSR";
      description =
        "Configure guest-controlled hardware kernel protection CPU features \
         (e.g. PKS and CET); control system call context switch interface." };
    { class_ = Smap; mnemonic = "stac";
      description =
        "Temporarily grant the kernel mode read and write permissions to \
         user memory." };
    { class_ = Idt; mnemonic = "lidt v";
      description = "Control #INT/exception context switches." };
    { class_ = Ghci; mnemonic = "tdcall";
      description =
        "Request TDX module to convert CVM shared and private memory for \
         device access; VM-exit to the VMM; request attestation digests." };
  ]

let class_of_isa = function
  | Hw.Isa.Mov_cr _ -> Some Cr
  | Hw.Isa.Wrmsr -> Some Msr
  | Hw.Isa.Stac -> Some Smap
  | Hw.Isa.Lidt -> Some Idt
  | Hw.Isa.Tdcall -> Some Ghci
  | Hw.Isa.Nop | Hw.Isa.Endbr | Hw.Isa.Mov_imm _ | Hw.Isa.Load _ | Hw.Isa.Store _
  | Hw.Isa.Add _ | Hw.Isa.Jmp _ | Hw.Isa.Call _ | Hw.Isa.Ret | Hw.Isa.Syscall
  | Hw.Isa.Iret | Hw.Isa.Cpuid | Hw.Isa.Clac | Hw.Isa.Senduipi _ ->
      None

(* Audit-chain category for a monitor decision about an instruction class;
   keeping the mapping here keeps record categories consistent across the
   monitor's service routines. *)
let audit_category = function
  | Cr -> "privop.cr"
  | Msr -> "privop.msr"
  | Smap -> "privop.smap"
  | Idt -> "privop.idt"
  | Ghci -> "privop.ghci"
  | Mmu -> "privop.mmu"

let pp_class fmt = function
  | Cr -> Fmt.string fmt "CR"
  | Msr -> Fmt.string fmt "MSR"
  | Smap -> Fmt.string fmt "SMAP"
  | Idt -> Fmt.string fmt "IDT"
  | Ghci -> Fmt.string fmt "GHCI"
  | Mmu -> Fmt.string fmt "MMU"
