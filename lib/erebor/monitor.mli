(** EREBOR-MONITOR: the intra-kernel privileged component (§4–§6).

    Installed into the CVM *before* the kernel (stage-one verified boot), it
    owns every sensitive interface: the MMU (through {!Mmu_guard}), CR/MSR/
    IDT state, and the GHCI. The deprivileged kernel reaches these only via
    the EMC privops table returned by {!privops}, each call passing through
    the CET-guarded {!Gate}. *)

exception Policy_violation of string
(** Raised when the kernel requests a sensitive operation the monitor's
    policy forbids (e.g. disabling SMAP, remapping monitor memory,
    requesting an attestation digest). *)

type t

val install :
  ?backend:Isolation.kind ->
  cpu:Hw.Cpu.t ->
  mem:Hw.Phys_mem.t ->
  td:Tdx.Td_module.t ->
  firmware:bytes ->
  monitor_frames:int ->
  device_shared_frames:int ->
  unit ->
  t
(** Stage-one boot: measure the firmware and the monitor binary into MRTD,
    claim the bottom [monitor_frames] frames as monitor memory, designate
    the next [device_shared_frames] as the only region convertible to CVM
    shared memory, and enable the protection hardware: CET (IBT) plus
    whatever the chosen {!Isolation} backend rests on — PKS with the
    normal-mode PKRS (the default, the paper's TDX prototype), the CR0.WP
    discipline (SEV-style platforms without PKS, §10), or the simulated
    TME-MK key engine. *)

val gate : t -> Gate.t
val guard : t -> Mmu_guard.t
val backend : t -> Isolation.t
(** The isolation backend instantiated at {!install}. *)

val kernel : t -> Kernel.t option

val boot_kernel :
  t -> kernel_image:Hw.Image.t -> reserved_frames:int -> cma_frames:int ->
  (Kernel.t, string) result
(** Stage-two boot: byte-scan the image's executable sections (§5.1); on
    success, load the image, boot the kernel over the EMC privops table,
    register its master root, classify kernel text, and write-protect the
    monitor's and PTPs' direct-map views. *)

val privops : t -> Kernel.Privops.t
(** The instrumented-kernel operation table. Every call is an EMC. *)

(** {2 Monitor-internal privileged services} *)

val tdreport : t -> report_data:bytes -> Tdx.Attest.report
(** Only the monitor can mint attestation digests (C5). *)

val allow_shared_pfn : t -> int -> bool
(** Whether GHCI policy permits converting a frame to shared. *)

val cpuid : t -> leaf:int -> int64
(** Sandbox cpuid emulation: first use per leaf queries the host via
    vmcall, later uses hit the monitor's cache (§6.2). *)

val set_usercopy_veto : t -> (unit -> string option) -> unit
(** Sandbox-manager hook: return [Some reason] to forbid kernel user copies
    in the current context (e.g. the current address space is a sealed
    sandbox). *)

val prepare_sandbox_entry : t -> unit
(** Clear IA32_UINTR_TT.valid before resuming a sandbox (§6.2 step 4). *)

val interpose_user_exit : t -> (unit -> 'a) -> 'a
(** Wrap a non-sandbox user exit (syscall/interrupt) with the monitor's
    interposition cost — the system-wide overhead measured in §9.3. *)

(** {2 Statistics and observability} *)

type emc_stats = {
  mmu : int;
  cr : int;
  msr : int;
  idt : int;
  smap : int;
  ghci : int;
}
(** Per-kind EMC service counts, derived on demand from the monitor's
    counter sink on the event bus — there is no mutable statistics record. *)

val emc_stats : t -> emc_stats
val emc_total : t -> int
val cpuid_cache_hits : t -> int

val obs : t -> Obs.Emitter.t
(** The machine-wide event emitter (the one carried by the CPU). *)

val now : t -> int
(** Current virtual cycle count — timestamp source for trace events. *)
