exception Policy_violation of string

type emc_stats = {
  mmu : int;
  cr : int;
  msr : int;
  idt : int;
  smap : int;
  ghci : int;
}

type t = {
  cpu : Hw.Cpu.t;
  mem : Hw.Phys_mem.t;
  td : Tdx.Td_module.t;
  backend : Isolation.t;
  gate : Gate.t;
  guard : Mmu_guard.t;
  monitor_first : int;
  monitor_frames : int;
  shared_first : int;
  shared_frames : int;
  mutable kernel : Kernel.t option;
  mutable kernel_lstar : int64;  (** Where the kernel *wanted* syscalls to go. *)
  mutable kernel_idt : Hw.Idt.t option;
  cpuid_cache : (int, int64) Hashtbl.t;
  mutable cache_hits : int;
  mutable usercopy_veto : unit -> string option;
  counters : Obs.Counter.t;
      (* Monitor-local counter sink on the CPU's emitter: the per-kind EMC
         statistics are *derived* from the event stream, never mutated
         directly. *)
}

let gate t = t.gate
let guard t = t.guard
let backend t = t.backend
let kernel t = t.kernel
let obs t = t.cpu.Hw.Cpu.obs

let emc_stats t =
  let c k = Obs.Counter.count t.counters k in
  {
    mmu = c Obs.Trace.emc_mmu;
    cr = c Obs.Trace.emc_cr;
    msr = c Obs.Trace.emc_msr;
    idt = c Obs.Trace.emc_idt;
    smap = c Obs.Trace.emc_smap;
    ghci = c Obs.Trace.emc_ghci;
  }

let emc_total t = Gate.emc_count t.gate
let cpuid_cache_hits t = t.cache_hits

let install ?(backend = Isolation.Pks) ~cpu ~mem ~td ~firmware ~monitor_frames
    ~device_shared_frames () =
  let backend = Isolation.create backend ~cpu in
  let gate = Gate.create ~cpu ~code_base:(Kernel.Layout.direct_map 0x1000) ~backend () in
  (* Stage one: only the firmware and the monitor binary are measured. *)
  Tdx.Td_module.measure_initial td firmware;
  Tdx.Td_module.measure_initial td (Gate.code_bytes gate);
  let t =
    {
      cpu;
      mem;
      td;
      backend;
      gate;
      guard = Mmu_guard.create ~mem ~cpu ~backend;
      monitor_first = 0;
      monitor_frames;
      shared_first = monitor_frames;
      shared_frames = device_shared_frames;
      kernel = None;
      kernel_lstar = 0L;
      kernel_idt = None;
      cpuid_cache = Hashtbl.create 8;
      cache_hits = 0;
      usercopy_veto = (fun () -> None);
      counters = Obs.Counter.attach cpu.Hw.Cpu.obs (Obs.Counter.create ());
    }
  in
  (* Claim monitor memory. *)
  for pfn = t.monitor_first to t.monitor_first + monitor_frames - 1 do
    match Mmu_guard.classify t.guard ~pfn Mmu_guard.Monitor with
    | Ok () -> ()
    | Error e -> failwith ("Monitor.install: " ^ e)
  done;
  (* Enable the hardware features the backend rests on: PKS programs CR4
     plus the normal-mode PKRS, WP nothing extra (CR0.WP is pinned below),
     TME-MK attaches its key engine to the walker. *)
  Isolation.install backend;
  Hw.Cpu.set_cr_bit cpu ~reg:`Cr4 Hw.Cr.cr4_cet true;
  Hw.Cpu.set_cr_bit cpu ~reg:`Cr0 Hw.Cr.cr0_wp true;
  Hw.Cpu.write_msr cpu Hw.Msr.ia32_s_cet Hw.Msr.s_cet_ibt_bit;
  t

let clock t = t.cpu.Hw.Cpu.clock
let cost t c = Hw.Cycles.advance (clock t) c
let now t = Hw.Cycles.now (clock t)

(* CR bits the kernel must never clear once Erebor runs. *)
let pinned_cr_bits =
  [
    (`Cr0, Hw.Cr.cr0_wp);
    (`Cr4, Hw.Cr.cr4_smep);
    (`Cr4, Hw.Cr.cr4_smap);
    (`Cr4, Hw.Cr.cr4_pks);
    (`Cr4, Hw.Cr.cr4_cet);
  ]

(* MSRs only the monitor itself may program. *)
let monitor_owned_msrs =
  [ Hw.Msr.ia32_pkrs; Hw.Msr.ia32_s_cet; Hw.Msr.ia32_pl0_ssp; Hw.Msr.ia32_uintr_tt ]

(* Audit rail: security decisions append to the attached chain (if any).
   Appending is pure bookkeeping — it never advances the virtual clock, and
   the detail thunk only runs when a chain is attached. *)
let audit t ~category verdict detail =
  Obs.Emitter.audit_event (obs t) ~ts:(now t) ~category ~verdict detail

(* Allow-path audit closures are built only when a chain is attached:
   [audit_event] already skips the thunk, but the thunk itself is a heap
   block at every call site, so hot privops test this first. *)
let audited t =
  match Obs.Emitter.audit (obs t) with Some _ -> true | None -> false

(* Every policy rejection is audited before the exception unwinds through
   the gate, so the chain records the decision even when the caller dies. *)
let fail t ~category msg =
  audit t ~category Obs.Audit.Deny (fun () -> msg);
  raise (Policy_violation msg)

(* Open an attribution span around [f]; the begin/end pair is emitted at
   the current clock (never advancing it), so the Attrib sink can charge
   the enclosed cycles to [phase]. *)
let spanned t phase f =
  let obs = t.cpu.Hw.Cpu.obs in
  Obs.Emitter.emit obs (Obs.Trace.span_begin phase) ~ts:(now t) ~arg:0;
  match f () with
  | v ->
      Obs.Emitter.emit obs (Obs.Trace.span_end phase) ~ts:(now t) ~arg:0;
      v
  | exception e ->
      Obs.Emitter.emit obs (Obs.Trace.span_end phase) ~ts:(now t) ~arg:0;
      raise e

(* Run one EMC service routine for privop kind [ek]: the body executes
   inside the matching [Svc_*] attribution span, and an [Emc ek] event is
   published whose timestamp is the service start and whose argument is the
   cycles the service charged (clock delta). Emitted even when policy
   rejects the request, so counts match the pre-refactor per-kind
   statistics. *)
let serviced t ek f =
  let obs = t.cpu.Hw.Cpu.obs in
  let t0 = Hw.Cycles.now (clock t) in
  Obs.Emitter.emit obs (Obs.Trace.span_begin (Obs.Trace.gate_phase ek)) ~ts:t0
    ~arg:0;
  (* Exit arms written out — a shared [finish] closure would capture [t0]
     and cost a heap block per EMC service. *)
  match f () with
  | v ->
      let now = Hw.Cycles.now (clock t) in
      Obs.Emitter.emit obs (Obs.Trace.span_end (Obs.Trace.gate_phase ek))
        ~ts:now ~arg:0;
      Obs.Emitter.emit obs (Obs.Trace.emc_event ek) ~ts:t0 ~arg:(now - t0);
      v
  | exception e ->
      let now = Hw.Cycles.now (clock t) in
      Obs.Emitter.emit obs (Obs.Trace.span_end (Obs.Trace.gate_phase ek))
        ~ts:now ~arg:0;
      Obs.Emitter.emit obs (Obs.Trace.emc_event ek) ~ts:t0 ~arg:(now - t0);
      raise e

let privops t =
  let g = t.gate in
  let cat = Policy.audit_category in
  (* write_pte is the hottest privop by an order of magnitude (demand
     paging, PTE churn, batched populate), so its whole EMC is assembled
     from pieces allocated here, once: the [serviced t Mmu] bracket is
     written out inline and the operands travel through [Gate.call1/call2]
     instead of a per-call closure. A steady-state PTE write therefore
     crosses the gate without touching the minor heap. Event sequence and
     cycle charges are identical to the generic [serviced] path. *)
  let svc_mmu_begin = Obs.Trace.span_begin (Obs.Trace.gate_phase Obs.Trace.Mmu) in
  let svc_mmu_end = Obs.Trace.span_end (Obs.Trace.gate_phase Obs.Trace.Mmu) in
  let svc_mmu_event = Obs.Trace.emc_event Obs.Trace.Mmu in
  let mmu_service prefix pte_addr pte =
    let obs = t.cpu.Hw.Cpu.obs in
    let t0 = Hw.Cycles.now (clock t) in
    Obs.Emitter.emit obs svc_mmu_begin ~ts:t0 ~arg:0;
    cost t Hw.Cycles.Cost.emc_service_mmu;
    let r = Mmu_guard.write_pte t.guard ~trusted:false ~pte_addr pte in
    let now = Hw.Cycles.now (clock t) in
    Obs.Emitter.emit obs svc_mmu_end ~ts:now ~arg:0;
    Obs.Emitter.emit obs svc_mmu_event ~ts:t0 ~arg:(now - t0);
    match r with
    | Ok () -> ()
    | Error e -> fail t ~category:(cat Policy.Mmu) (prefix ^ e)
  in
  let svc_write_pte pte_addr pte = mmu_service "mmu: " pte_addr pte in
  let svc_batch_entry (pte_addr, pte) =
    mmu_service "mmu batch: " pte_addr pte
  in
  let svc_write_pte_batch entries = Array.iter svc_batch_entry entries in
  {
    Kernel.Privops.label = "erebor";
    write_pte = (fun ~pte_addr pte -> Gate.call2 g svc_write_pte pte_addr pte);
    write_pte_batch =
      (fun entries ->
        (* One gate round trip covers the whole batch; each entry still
           pays validation and execution (§9.1 batched-MMU optimization). *)
        Gate.call1 g svc_write_pte_batch entries);
    set_cr_bit =
      (fun ~reg bit v ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Cr (fun () ->
                cost t Hw.Cycles.Cost.emc_service_cr;
                let pinned =
                  List.exists (fun (r, b) -> r = reg && Int64.equal b bit) pinned_cr_bits
                in
                if pinned && not v then
                  fail t ~category:(cat Policy.Cr)
                    "cr: clearing a monitor-pinned protection bit"
                else begin
                  if audited t then
                    audit t ~category:(cat Policy.Cr) Obs.Audit.Allow (fun () ->
                        Printf.sprintf "set_cr_bit %s bit=0x%Lx v=%b"
                          (match reg with `Cr0 -> "cr0" | `Cr4 -> "cr4")
                          bit v);
                  Hw.Cpu.set_cr_bit t.cpu ~reg bit v
                end)));
    write_cr3 =
      (fun ~root_pfn ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Cr (fun () ->
                cost t Hw.Cycles.Cost.emc_service_cr;
                match Mmu_guard.register_root t.guard ~root_pfn with
                | Ok () ->
                    if audited t then
                      audit t ~category:(cat Policy.Cr) Obs.Audit.Allow
                        (fun () ->
                          Printf.sprintf "write_cr3 root_pfn=%d" root_pfn);
                    (* Tenant context follows the address space: the backend
                       learns which sandbox (if any) this root belongs to —
                       TME-MK switches its active key here. *)
                    Isolation.tenant_enter t.backend
                      (Mmu_guard.sandbox_of_root t.guard ~root_pfn);
                    Hw.Cpu.write_cr3 t.cpu ~root_pfn
                | Error e -> fail t ~category:(cat Policy.Cr) ("cr3: " ^ e))));
    declare_root =
      (fun ~root_pfn ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Mmu (fun () ->
                cost t Hw.Cycles.Cost.emc_service_mmu;
                match Mmu_guard.register_root t.guard ~root_pfn with
                | Ok () ->
                    if audited t then
                      audit t ~category:(cat Policy.Mmu) Obs.Audit.Allow
                        (fun () ->
                          Printf.sprintf "declare_root root_pfn=%d" root_pfn)
                | Error e ->
                    fail t ~category:(cat Policy.Mmu) ("declare_root: " ^ e))));
    write_msr =
      (fun idx v ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Msr (fun () ->
            cost t Hw.Cycles.Cost.emc_service_msr;
            if List.mem idx monitor_owned_msrs then
              fail t ~category:(cat Policy.Msr) "msr: register is monitor-owned"
            else begin
              if audited t then
                audit t ~category:(cat Policy.Msr) Obs.Audit.Allow (fun () ->
                    Printf.sprintf "write_msr idx=0x%x" idx);
              if idx = Hw.Msr.ia32_lstar then begin
                (* Interpose the syscall entry: remember where the kernel
                   wanted it, keep control at the monitor's entry. *)
                t.kernel_lstar <- v;
                Hw.Cpu.write_msr t.cpu idx (Int64.of_int (Gate.entry_point t.gate))
              end
              else Hw.Cpu.write_msr t.cpu idx v
            end)));
    lidt =
      (fun idt ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Idt (fun () ->
                cost t Hw.Cycles.Cost.emc_service_idt;
                (* The kernel's table is recorded; the installed table is the
                   monitor's wrapped copy (exit interposition, §6.2). *)
                if audited t then
                  audit t ~category:(cat Policy.Idt) Obs.Audit.Allow (fun () ->
                      "lidt: kernel table recorded, wrapped copy installed");
                t.kernel_idt <- Some (Hw.Idt.copy idt);
                Hw.Cpu.lidt t.cpu idt)));
    tdcall =
      (fun leaf ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Ghci (fun () ->
                cost t
                  (Hw.Cycles.Cost.emc_service_ghci - Hw.Cycles.Cost.tdreport_native);
                match leaf with
                | Tdx.Ghci.Tdreport _ ->
                    fail t ~category:(cat Policy.Ghci)
                      "ghci: attestation digests are monitor-exclusive"
                | Tdx.Ghci.Rtmr_extend _ ->
                    fail t ~category:(cat Policy.Ghci)
                      "ghci: measurement registers are monitor-exclusive"
                | Tdx.Ghci.Map_gpa { pfn; shared = true }
                  when not (pfn >= t.shared_first && pfn < t.shared_first + t.shared_frames)
                  ->
                    fail t ~category:(cat Policy.Ghci)
                      "ghci: sharing outside the device region"
                | Tdx.Ghci.Map_gpa _ | Tdx.Ghci.Vmcall _ ->
                    if audited t then
                      audit t ~category:(cat Policy.Ghci) Obs.Audit.Allow
                        (fun () ->
                          match leaf with
                          | Tdx.Ghci.Map_gpa { pfn; shared } ->
                              Printf.sprintf "map_gpa pfn=%d shared=%b" pfn
                                shared
                          | _ -> "vmcall");
                    Tdx.Td_module.tdcall t.td t.cpu leaf)));
    verify_dynamic_code =
      (fun ~section code ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Mmu (fun () ->
                cost t (Hw.Cycles.Cost.emc_service_mmu + Bytes.length code);
                match Scan.verify_bytes ~section code with
                | Ok () ->
                    audit t ~category:"scan" Obs.Audit.Allow (fun () ->
                        Printf.sprintf "dynamic code accepted: section=%s %d bytes"
                          section (Bytes.length code));
                    Ok ()
                | Error violations ->
                    audit t ~category:"scan" Obs.Audit.Deny (fun () ->
                        Fmt.str "dynamic code rejected: section=%s %a" section
                          (Fmt.list ~sep:Fmt.comma Scan.pp_violation)
                          violations);
                    Error
                      (Fmt.str "%a" (Fmt.list ~sep:Fmt.comma Scan.pp_violation) violations))));
    copy_from_user =
      (fun ~user_addr ~len ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Smap (fun () ->
                cost t Hw.Cycles.Cost.emc_service_smap;
                cost t (Hw.Cycles.Cost.usercopy_per_page * max 1 (Kernel.Layout.pages_of_bytes len));
                (match t.usercopy_veto () with
                | Some reason ->
                    fail t ~category:(cat Policy.Smap) ("usercopy: " ^ reason)
                | None -> ());
                Hw.Cpu.stac t.cpu;
                (match Hw.Cpu.read_bytes t.cpu user_addr len with
                 | v ->
                     Hw.Cpu.clac t.cpu;
                     v
                 | exception e ->
                     Hw.Cpu.clac t.cpu;
                     raise e))));
    copy_from_user_into =
      (fun ~user_addr ~buf ~off ~len ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Smap (fun () ->
                cost t Hw.Cycles.Cost.emc_service_smap;
                cost t (Hw.Cycles.Cost.usercopy_per_page * max 1 (Kernel.Layout.pages_of_bytes len));
                (match t.usercopy_veto () with
                | Some reason ->
                    fail t ~category:(cat Policy.Smap) ("usercopy: " ^ reason)
                | None -> ());
                Hw.Cpu.stac t.cpu;
                (match Hw.Cpu.read_into t.cpu user_addr buf ~off ~len with
                 | v ->
                     Hw.Cpu.clac t.cpu;
                     v
                 | exception e ->
                     Hw.Cpu.clac t.cpu;
                     raise e))));
    copy_to_user =
      (fun ~user_addr data ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Smap (fun () ->
                cost t Hw.Cycles.Cost.emc_service_smap;
                cost t
                  (Hw.Cycles.Cost.usercopy_per_page
                  * max 1 (Kernel.Layout.pages_of_bytes (Bytes.length data)));
                (match t.usercopy_veto () with
                | Some reason ->
                    fail t ~category:(cat Policy.Smap) ("usercopy: " ^ reason)
                | None -> ());
                Hw.Cpu.stac t.cpu;
                (match Hw.Cpu.write_bytes t.cpu user_addr data with
                 | v ->
                     Hw.Cpu.clac t.cpu;
                     v
                 | exception e ->
                     Hw.Cpu.clac t.cpu;
                     raise e))));
    copy_to_user_from =
      (fun ~user_addr ~buf ~off ~len ->
        Gate.call g (fun () ->
            serviced t Obs.Trace.Smap (fun () ->
                cost t Hw.Cycles.Cost.emc_service_smap;
                cost t (Hw.Cycles.Cost.usercopy_per_page * max 1 (Kernel.Layout.pages_of_bytes len));
                (match t.usercopy_veto () with
                | Some reason ->
                    fail t ~category:(cat Policy.Smap) ("usercopy: " ^ reason)
                | None -> ());
                Hw.Cpu.stac t.cpu;
                (match Hw.Cpu.write_from t.cpu user_addr buf ~off ~len with
                 | v ->
                     Hw.Cpu.clac t.cpu;
                     v
                 | exception e ->
                     Hw.Cpu.clac t.cpu;
                     raise e))));
  }

let boot_kernel t ~kernel_image ~reserved_frames ~cma_frames =
  match
    Obs.with_span (obs t) ~now:(fun () -> now t) Obs.Trace.Scan (fun () ->
        Scan.verify_image kernel_image)
  with
  | Error violations ->
      audit t ~category:"scan" Obs.Audit.Deny (fun () ->
          Fmt.str "kernel image rejected: %a"
            (Fmt.list ~sep:Fmt.comma Scan.pp_violation)
            violations);
      Error
        (Fmt.str "kernel image rejected: %a"
           (Fmt.list ~sep:Fmt.comma Scan.pp_violation)
           violations)
  | Ok () ->
      audit t ~category:"scan" Obs.Audit.Allow (fun () ->
          Printf.sprintf "kernel image accepted: %d sections"
            (List.length kernel_image.Hw.Image.sections));
      if reserved_frames < t.monitor_first + t.monitor_frames + t.shared_frames then
        Error "reserved_frames too small for monitor + device region"
      else begin
        (* Load the verified image into monitor-reserved memory and extend a
           runtime measurement with it (the kernel is *verified*, not part
           of the boot measurement). *)
        ignore
          (Tdx.Td_module.tdcall t.td t.cpu
             (Tdx.Ghci.Rtmr_extend { index = 0; data = Hw.Image.serialize kernel_image }));
        let text_frames = ref [] in
        let next = ref (t.monitor_first + t.monitor_frames + t.shared_frames) in
        List.iter
          (fun s ->
            let data = s.Hw.Image.data in
            let pages = Kernel.Layout.pages_of_bytes (Bytes.length data) in
            Hw.Phys_mem.write_bytes t.mem (Hw.Phys_mem.addr_of_pfn !next) data;
            if s.Hw.Image.executable then
              for i = 0 to pages - 1 do
                text_frames := (!next + i) :: !text_frames
              done;
            next := !next + pages)
          kernel_image.Hw.Image.sections;
        if !next > reserved_frames then
          failwith "boot_kernel: kernel image does not fit in reserved frames";
        List.iter
          (fun pfn ->
            match Mmu_guard.classify t.guard ~pfn Mmu_guard.Kernel_text with
            | Ok () -> ()
            | Error e -> failwith ("boot_kernel: " ^ e))
          !text_frames;
        let ops = privops t in
        let k =
          Kernel.boot ~mem:t.mem ~cpu:t.cpu ~td:t.td ~privops:ops
            ~reserved_frames ~cma_frames
        in
        Mmu_guard.set_kernel_root t.guard k.Kernel.kernel_root;
        t.kernel <- Some k;
        Ok k
      end

let tdreport t ~report_data =
  match
    Gate.call t.gate (fun () ->
        spanned t Obs.Trace.Svc_ghci (fun () ->
            Hw.Cycles.advance (clock t)
              (Hw.Cycles.Cost.emc_service_ghci - Hw.Cycles.Cost.tdreport_native);
            Tdx.Td_module.tdcall t.td t.cpu (Tdx.Ghci.Tdreport { report_data })))
  with
  | Tdx.Td_module.Ok_report r ->
      audit t ~category:"attest" Obs.Audit.Info (fun () ->
          "tdreport minted: " ^ Tdx.Attest.fingerprint r);
      r
  | Tdx.Td_module.Ok_int _ | Tdx.Td_module.Ok_bytes _ | Tdx.Td_module.Ok_unit ->
      failwith "tdreport: unexpected result"
  | Tdx.Td_module.Error_leaf e -> failwith ("tdreport: " ^ e)

let allow_shared_pfn t pfn = pfn >= t.shared_first && pfn < t.shared_first + t.shared_frames

let cpuid t ~leaf =
  match Hashtbl.find_opt t.cpuid_cache leaf with
  | Some v ->
      t.cache_hits <- t.cache_hits + 1;
      v
  | None -> (
      match
        Gate.call t.gate (fun () ->
            Tdx.Td_module.tdcall t.td t.cpu (Tdx.Ghci.Vmcall (Tdx.Ghci.Cpuid leaf)))
      with
      | Tdx.Td_module.Ok_int v ->
          Hashtbl.replace t.cpuid_cache leaf v;
          v
      | _ -> failwith "cpuid: host emulation failed")

let set_usercopy_veto t f = t.usercopy_veto <- f

let prepare_sandbox_entry t =
  Gate.call t.gate (fun () -> Hw.Cpu.write_msr t.cpu Hw.Msr.ia32_uintr_tt 0L)

let interpose_user_exit t f =
  spanned t Obs.Trace.Exit_interpose (fun () ->
      Hw.Cycles.advance (clock t) Hw.Cycles.Cost.monitor_exit_inspect);
  f ()
