type frame_class =
  | Free
  | Ptp of { level : int; root : int }
  | Monitor
  | Kernel_text
  | Confined of { owner : int }
  | Common of { instance : string }

type t = {
  mem : Hw.Phys_mem.t;
  cpu : Hw.Cpu.t;
  backend : Isolation.t;
  (* Per-frame state as flat arrays indexed by pfn: [class_of] sits on the
     write_pte hot path (several probes per EMC), where a hashed lookup per
     probe is measurable across the millions of MMU EMCs in an evaluation
     run. Out-of-range pfns (a hostile PTE pointing past RAM) read as
     [Free], exactly like a never-classified frame. *)
  classes : frame_class array;
  confined_mapped : Bytes.t;               (* confined pfns with a live mapping *)
  sandbox_roots : (int, int) Hashtbl.t;    (* root pfn -> sandbox id *)
  common_mappings : (string, int list ref) Hashtbl.t; (* instance -> pte addrs *)
  sealed : (string, unit) Hashtbl.t;
  mutable kernel_root : int option;
  mutable denied : int;
}

let create ~mem ~cpu ~backend =
  {
    mem;
    cpu;
    backend;
    classes = Array.make (Hw.Phys_mem.frames mem) Free;
    confined_mapped = Bytes.make (Hw.Phys_mem.frames mem) '\000';
    sandbox_roots = Hashtbl.create 8;
    common_mappings = Hashtbl.create 8;
    sealed = Hashtbl.create 8;
    kernel_root = None;
    denied = 0;
  }

let in_range t pfn = pfn >= 0 && pfn < Array.length t.classes
let class_of t pfn = if in_range t pfn then Array.unsafe_get t.classes pfn else Free
let set_class t pfn cls = if in_range t pfn then Array.unsafe_set t.classes pfn cls
let clear_class t pfn = set_class t pfn Free
let mark_confined_mapped t pfn v =
  if in_range t pfn then Bytes.unsafe_set t.confined_mapped pfn (if v then '\001' else '\000')

let set_kernel_root t pfn = t.kernel_root <- Some pfn

let register_root t ~root_pfn =
  match class_of t root_pfn with
  | Free ->
      set_class t root_pfn (Ptp { level = 0; root = root_pfn });
      Ok ()
  | Ptp { level = 0; _ } -> Ok () (* re-loading an existing root (context switch) *)
  | Ptp _ -> Error "CR3 target is an interior page-table page"
  | Monitor -> Error "CR3 target is monitor memory"
  | Kernel_text -> Error "CR3 target is kernel text"
  | Confined _ | Common _ -> Error "CR3 target is sandbox memory"

let register_sandbox_root t ~root_pfn ~sandbox =
  Hashtbl.replace t.sandbox_roots root_pfn sandbox

let sandbox_of_root t ~root_pfn = Hashtbl.find_opt t.sandbox_roots root_pfn

let classify t ~pfn cls =
  match class_of t pfn with
  | Free ->
      set_class t pfn cls;
      (* Backend frame tagging rides classification: TME-MK keys the frame
         to its owner here; PKS/WP tag nothing. *)
      (match cls with
      | Confined { owner } -> Isolation.tag_confined t.backend ~pfn ~owner
      | Free | Ptp _ | Monitor | Kernel_text | Common _ -> ());
      Ok ()
  | Ptp _ -> Error "cannot reclassify a page-table page"
  | Monitor -> Error "cannot reclassify monitor memory"
  | Kernel_text | Confined _ | Common _ -> (
      (* Idempotent re-classification to the same class is fine. *)
      if class_of t pfn = cls then Ok () else Error "frame already classified")

let is_confined_mapped t ~pfn =
  in_range t pfn && Bytes.unsafe_get t.confined_mapped pfn = '\001'

let declassify t ~pfn =
  (match class_of t pfn with
  | Confined _ -> Isolation.untag_confined t.backend ~pfn
  | Free | Ptp _ | Monitor | Kernel_text | Common _ -> ());
  clear_class t pfn;
  mark_confined_mapped t pfn false

let denied_count t = t.denied

let ptp_count t =
  Array.fold_left (fun acc c -> match c with Ptp _ -> acc + 1 | _ -> acc) 0 t.classes

(* Every policy denial, whatever the path, funnels through here: one stat
   bump and one [Mmu_deny] event, so security tests can assert exact denial
   counts from the run result. *)
let deny_incr t msg =
  t.denied <- t.denied + 1;
  Hw.Cpu.emit t.cpu Obs.Trace.Mmu_deny ~arg:t.denied;
  Obs.Emitter.audit_event t.cpu.Hw.Cpu.obs
    ~ts:(Hw.Cycles.now t.cpu.Hw.Cpu.clock) ~category:"mmu"
    ~verdict:Obs.Audit.Deny (fun () -> msg);
  Error msg

let record_common_mapping t instance pte_addr =
  match Hashtbl.find_opt t.common_mappings instance with
  | Some l -> l := pte_addr :: !l
  | None -> Hashtbl.replace t.common_mappings instance (ref [ pte_addr ])

(* Forget bookkeeping tied to the entry currently stored at [pte_addr]. *)
let release_old_leaf t pte_addr =
  let old = Hw.Phys_mem.read_u64 t.mem pte_addr in
  if Hw.Pte.present old then
    match class_of t (Hw.Pte.pfn old) with
    | Confined _ -> mark_confined_mapped t (Hw.Pte.pfn old) false
    | Free | Ptp _ | Monitor | Kernel_text | Common _ -> ()

let do_store t pte_addr pte =
  Hw.Phys_mem.write_u64 t.mem pte_addr pte;
  Hw.Cpu.flush_tlb t.cpu

(* Leaf policy (§6.1): decide/transform a level-3 entry. The untrusted PTE
   is screened by the isolation backend first (TME-MK rejects forged key
   ids — only the monitor stamps them), then dispatched on the target
   frame's class. *)
let check_leaf t ~root pte =
  match Isolation.validate_untrusted t.backend pte with
  | Error _ as e -> e
  | Ok () -> (
      let target = Hw.Pte.pfn pte in
      let sandbox = Hashtbl.find_opt t.sandbox_roots root in
      match class_of t target with
      | Monitor -> Error "mapping monitor memory is forbidden"
      | Ptp _ ->
          (* PTPs are only visible read-only, supervisor, PTP-keyed (the kernel
             may read page tables but never write them). *)
          Ok
            (Hw.Pte.set_pkey
               (Hw.Pte.set_user (Hw.Pte.set_writable pte false) false)
               Policy.key_ptp)
      | Kernel_text ->
          Ok
            (Hw.Pte.set_pkey
               (Hw.Pte.set_user (Hw.Pte.set_writable pte false) false)
               Policy.key_kernel_text)
      | Confined { owner } -> (
          match sandbox with
          | Some sid when sid = owner ->
              if is_confined_mapped t ~pfn:target then
                Error "confined frame already mapped (single-mapping rule)"
              else begin
                mark_confined_mapped t target true;
                Ok (Isolation.seal_confined_leaf t.backend ~owner pte)
              end
          | Some _ -> Error "confined frame belongs to another sandbox"
          | None -> Error "confined frame cannot map outside its sandbox")
      | Common { instance } ->
          if Hashtbl.mem t.sealed instance then
            (* Sandbox mappings of a sealed instance silently downgrade to
               read-only (demand paging continues after seal); a writable
               mapping requested from outside any sandbox is an attack. *)
            if sandbox = None && Hw.Pte.writable pte then
              Error "sealed common frame cannot be mapped writable outside a sandbox"
            else Ok (Hw.Pte.set_writable pte false)
          else Ok pte
      | Free -> (
          match sandbox with
          | Some _ when Hw.Pte.user pte ->
              Error "sandbox user mappings must target declared confined/common frames"
          | Some _ | None -> Ok pte))

let write_pte t ~trusted ~pte_addr pte =
  let container = Hw.Phys_mem.pfn_of_addr pte_addr in
  match class_of t container with
  | Ptp { level; root } ->
      let deny msg = deny_incr t msg in
      if level = 2 && Hw.Pte.present pte && Hw.Pte.huge pte then begin
        (* A 2 MiB leaf install. Sandboxes must declare memory at 4 KiB
           granularity, and classified frames never hide inside a huge
           mapping. *)
        if Hashtbl.mem t.sandbox_roots root then
          deny_incr t "huge mappings are not allowed in sandbox address spaces"
        else begin
          let base = Hw.Pte.pfn pte in
          let rec all_free i =
            i = 512
            || (class_of t (base + i) = Free && all_free (i + 1))
          in
          if base land 0x1ff <> 0 then deny_incr t "huge leaf frame not 2MiB-aligned"
          else if not (all_free 0) then
            deny_incr t "huge leaf covers classified frames"
          else begin
            do_store t pte_addr pte;
            Ok ()
          end
        end
      end
      else if level < 3 then begin
        (* Intermediate entry: the child becomes (or stops being) a PTP. *)
        let old = Hw.Phys_mem.read_u64 t.mem pte_addr in
        if Hw.Pte.present old && Hw.Pte.present pte && Hw.Pte.pfn old <> Hw.Pte.pfn pte
        then deny "re-pointing a live interior entry is forbidden"
        else if Hw.Pte.present pte then begin
          let child = Hw.Pte.pfn pte in
          match class_of t child with
          | Free ->
              set_class t child (Ptp { level = level + 1; root });
              do_store t pte_addr pte;
              Ok ()
          | Ptp { level = l; _ } when l = level + 1 ->
              (* Sharing an existing subtree (kernel half of a new task). *)
              do_store t pte_addr pte;
              Ok ()
          | Ptp _ -> deny "child frame already a PTP at another level"
          | Monitor -> deny "monitor frame cannot become a page-table page"
          | Kernel_text | Confined _ | Common _ ->
              deny "classified frame cannot become a page-table page"
        end
        else begin
          (* Clearing an interior slot: deregister the child (shallow). *)
          (if Hw.Pte.present old then
             match class_of t (Hw.Pte.pfn old) with
             | Ptp { level = l; _ } when l = level + 1 ->
                 clear_class t (Hw.Pte.pfn old)
             | _ -> ());
          do_store t pte_addr pte;
          Ok ()
        end
      end
      else begin
        (* Leaf entry. *)
        release_old_leaf t pte_addr;
        if not (Hw.Pte.present pte) then begin
          do_store t pte_addr pte;
          Ok ()
        end
        else if trusted then begin
          (match class_of t (Hw.Pte.pfn pte) with
          | Common { instance } -> record_common_mapping t instance pte_addr
          | _ -> ());
          do_store t pte_addr pte;
          Ok ()
        end
        else
          match check_leaf t ~root pte with
          | Ok pte' ->
              (match class_of t (Hw.Pte.pfn pte') with
              | Common { instance } -> record_common_mapping t instance pte_addr
              | _ -> ());
              do_store t pte_addr pte';
              Ok ()
          | Error e -> deny e
      end
  | Free | Monitor | Kernel_text | Confined _ | Common _ ->
      deny_incr t "PTE store outside a registered page-table page"

let seal_common t ~instance =
  Hashtbl.replace t.sealed instance ();
  match Hashtbl.find_opt t.common_mappings instance with
  | None -> 0
  | Some addrs ->
      let rewritten = ref 0 in
      List.iter
        (fun pte_addr ->
          let pte = Hw.Phys_mem.read_u64 t.mem pte_addr in
          (* Tolerate stale records: only rewrite entries still pointing at
             this instance's frames. *)
          if Hw.Pte.present pte then
            match class_of t (Hw.Pte.pfn pte) with
            | Common { instance = i } when i = instance && Hw.Pte.writable pte ->
                do_store t pte_addr (Hw.Pte.set_writable pte false);
                incr rewritten
            | _ -> ())
        !addrs;
      !rewritten

let protect_direct_map_inplace t ~pfn ~key ~writable =
  match t.kernel_root with
  | None -> false
  | Some root -> (
      let vaddr = Kernel.Layout.direct_map (Hw.Phys_mem.addr_of_pfn pfn) in
      match Hw.Page_table.leaf_addr t.mem ~root_pfn:root vaddr with
      | None -> false
      | Some pte_addr ->
          let pte = Hw.Phys_mem.read_u64 t.mem pte_addr in
          if not (Hw.Pte.present pte) then false
          else begin
            do_store t pte_addr (Hw.Pte.set_writable (Hw.Pte.set_pkey pte key) writable);
            true
          end)


(* ------------------------------------------------------------------ *)
(* Huge pages: forced splitting (§7)                                   *)
(* ------------------------------------------------------------------ *)

let split_huge_leaf t ~pte_addr ~alloc_ptp =
  let container = Hw.Phys_mem.pfn_of_addr pte_addr in
  match class_of t container with
  | Ptp { level = 2; root } ->
      let old = Hw.Phys_mem.read_u64 t.mem pte_addr in
      if not (Hw.Pte.present old && Hw.Pte.huge old) then
        Error "split: entry is not a huge leaf"
      else begin
        let base = Hw.Pte.pfn old in
        let pt = alloc_ptp () in
        (match class_of t pt with
        | Free -> set_class t pt (Ptp { level = 3; root })
        | Ptp _ | Monitor | Kernel_text | Confined _ | Common _ ->
            failwith "split: allocator returned a classified frame");
        (* Fill the new table with 512 equivalent 4 KiB entries. *)
        let small = Hw.Pte.set_huge old false in
        for i = 0 to 511 do
          Hw.Phys_mem.write_u64 t.mem
            (Hw.Phys_mem.addr_of_pfn pt + (8 * i))
            (Hw.Pte.with_pfn small (base + i))
        done;
        (* Swing the directory entry from the huge leaf to the new table. *)
        let interior =
          Hw.Pte.make ~pfn:pt
            { Hw.Pte.default_flags with user = Hw.Pte.user old }
        in
        do_store t pte_addr interior;
        Ok ()
      end
  | Ptp _ -> Error "split: entry is not at the page-directory level"
  | Free | Monitor | Kernel_text | Confined _ | Common _ ->
      Error "split: address is not inside a registered page-table page"

let protect_page_splitting t ~root_pfn ~vaddr ~key ~writable ~alloc_ptp =
  match Hw.Page_table.walk t.mem ~root_pfn vaddr with
  | None -> Error "protect: page not mapped"
  | Some w ->
      let retag () =
        match Hw.Page_table.walk t.mem ~root_pfn vaddr with
        | Some w' when not w'.Hw.Page_table.huge ->
            do_store t w'.Hw.Page_table.pte_addr
              (Hw.Pte.set_writable
                 (Hw.Pte.set_pkey w'.Hw.Page_table.pte key)
                 writable);
            Ok ()
        | Some _ -> Error "protect: still huge after split"
        | None -> Error "protect: mapping vanished"
      in
      if w.Hw.Page_table.huge then
        match split_huge_leaf t ~pte_addr:w.Hw.Page_table.pte_addr ~alloc_ptp with
        | Ok () -> retag ()
        | Error e -> Error e
      else retag ()
