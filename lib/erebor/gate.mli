(** EMC entry/exit gates (§5.3, Fig. 5): the only doorway into the monitor's
    virtual privileged mode.

    Entry is guarded by CET forward CFI — the monitor's code image carries
    exactly one endbr64, at the entry gate — so an indirect branch anywhere
    else into monitor code raises #CP. The gate grants the core monitor
    memory permissions through its {!Isolation} backend's grant protocol —
    a grant-all IA32_PKRS under PKS, a CR0.WP clear under the WP and TME-MK
    backends — switches to a per-core secure stack (modelled by the CET
    shadow stack token), runs the requested service, then revokes
    permissions and returns. Interrupts arriving mid-EMC are wrapped by the
    #INT gate, which stashes the granted value on the secure stack and
    revokes it before the OS handler runs. *)

type t

val create : cpu:Hw.Cpu.t -> code_base:int -> backend:Isolation.t -> unit -> t
(** Lay the monitor's gate code at [code_base]; the single endbr64 sits at
    the entry gate, offset 0. [backend] supplies the grant protocol. *)

val backend : t -> Isolation.t

val entry_point : t -> int
val code_bytes : t -> bytes
(** The assembled gate code (one endbr64 at offset 0, none elsewhere) —
    measured into MRTD by stage-one boot. *)

val endbr_at : t -> int -> bool
(** The IBT predicate for monitor code: true only at {!entry_point}. *)

val enter : t -> target:int -> (unit -> 'a) -> 'a
(** Perform one EMC whose indirect-branch target is [target].

    Raises [Fault.Fault (Control_protection _)] if [target] is not the entry
    gate while IBT is on. On the legitimate path: pays the EMC round-trip
    cost, loads the backend's granted value, runs the service, restores the
    caller's grant (even on exception). Nested calls from monitor context
    reuse the already-granted privilege and pay nothing. *)

val call : t -> (unit -> 'a) -> 'a
(** [enter] through the legitimate entry point — what instrumented kernel
    code compiles to. *)

val call1 : t -> ('a -> 'b) -> 'a -> 'b
val call2 : t -> ('a -> 'b -> 'c) -> 'a -> 'b -> 'c
(** [call] specialized to one- and two-argument service bodies: the
    operands are passed through the gate instead of captured, so a
    steady-state privop can reuse one preallocated service function and
    cross the gate without any per-call closure. Semantics (cost, grant
    protocol, events, nesting) are identical to {!call}. *)

val interrupt_during_emc : t -> (unit -> 'a) -> 'a
(** The #INT gate (Fig. 5c right): if an interrupt preempts an EMC, revoke
    monitor permissions around the OS handler and restore afterwards. When
    no EMC is active, just runs the handler. *)

val in_emc : t -> bool
val emc_count : t -> int
val interrupted_count : t -> int
