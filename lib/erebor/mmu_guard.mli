(** The monitor's MMU interface control (§5.2, §6.1).

    Every page-table store in an Erebor system arrives here (via the EMC
    privops table). The guard maintains a registry classifying physical
    frames — page-table pages, monitor memory, kernel text, sandbox confined
    frames, common-region frames — and validates each requested PTE against
    it:

    - stores are only accepted into registered page-table pages;
    - intermediate entries register their child frame as a new PTP and
      write-protect its direct-map view with the PTP protection key;
    - leaf entries are first screened by the {!Isolation} backend
      ([validate_untrusted] — TME-MK rejects kernel-forged key ids here),
      then checked against the target frame's class: monitor frames are
      unmappable, PTPs and kernel text become read-only with their keys,
      confined frames obey the single-mapping rule inside their owning
      sandbox only, and common frames lose writability once sealed (a
      writable mapping of a sealed instance requested from outside any
      sandbox is denied outright).

    The single-mapping rule is mechanism-independent — at most one live
    leaf per confined frame, enforced by the guard's registry — but what
    backs it up differs per backend: under PKS/WP the only mapping is the
    owning sandbox's and the kernel's direct-map view is retagged; under
    TME-MK the accepted leaf is additionally stamped with the owner's
    encryption key id ([seal_confined_leaf]), so even a bookkeeping bypass
    yields a frame the walker refuses to decrypt for anyone but the owner.

    Backend hooks also ride classification: [classify]-ing a frame
    [Confined] tags it with its owner's key (TME-MK) and [declassify]
    untags it; PKS/WP tag nothing. *)

type frame_class =
  | Free
  | Ptp of { level : int; root : int }
  | Monitor
  | Kernel_text
  | Confined of { owner : int }   (** Sandbox id. *)
  | Common of { instance : string }

type t

val create : mem:Hw.Phys_mem.t -> cpu:Hw.Cpu.t -> backend:Isolation.t -> t
(** [backend] is the monitor's isolation backend; the guard consults it to
    screen untrusted leaves, transform accepted confined leaves, and keep
    per-frame key tags in sync with classification. *)

val set_kernel_root : t -> int -> unit
(** Identify the master kernel root whose tree carries the direct map. *)

val register_root : t -> root_pfn:int -> (unit, string) result
(** Accept a CR3 target: the frame must not already hold another class. *)

val register_sandbox_root : t -> root_pfn:int -> sandbox:int -> unit
(** Mark an address-space root as belonging to a sandbox; its leaves are
    then restricted to that sandbox's confined/common frames. With N
    sandboxes per CVM each root maps to its own tenant, and the owner
    checks below keep tenants' confined frames mutually unmappable. *)

val sandbox_of_root : t -> root_pfn:int -> int option
(** The sandbox owning an address-space root, if any — the monitor feeds
    this to [Isolation.tenant_enter] on every approved CR3 load. *)

val classify : t -> pfn:int -> frame_class -> (unit, string) result
(** Monitor-side frame classification (confined/common/monitor/text).
    Refuses to reclassify PTPs or monitor frames. *)

val class_of : t -> int -> frame_class

val declassify : t -> pfn:int -> unit
(** Monitor-internal: return a frame to [Free] (sandbox teardown). Refuses
    nothing — callers must have scrubbed the frame first. *)

val is_confined_mapped : t -> pfn:int -> bool
(** Whether a confined frame currently has its (single) mapping. *)

val write_pte : t -> trusted:bool -> pte_addr:int -> Hw.Pte.t -> (unit, string) result
(** Validate and perform one PTE store. [trusted] marks monitor-internal
    writes, which skip leaf policy but still maintain the PTP registry.
    Successful stores flush the core's TLB. *)

val seal_common : t -> instance:string -> int
(** Revoke write permission on every live mapping of an instance's frames
    (§6.1: once client data is loaded, common memory is read-only). Returns
    the number of PTEs rewritten. *)

(** {2 Huge pages (§7 future work, implemented)} *)

val split_huge_leaf : t -> pte_addr:int -> alloc_ptp:(unit -> int) -> (unit, string) result
(** Forced page splitting: replace a 2 MiB leaf with a fresh page table of
    512 equivalent 4 KiB entries (registered as a PTP), so per-page
    protection keys can then be applied. Monitor-internal (trusted). *)

val protect_page_splitting :
  t -> root_pfn:int -> vaddr:int -> key:int -> writable:bool ->
  alloc_ptp:(unit -> int) -> (unit, string) result
(** Retag one 4 KiB page with [key]/[writable], splitting the covering huge
    page first when necessary — the exact operation the paper says forced
    splitting exists for. *)

val protect_direct_map_inplace : t -> pfn:int -> key:int -> writable:bool -> bool
(** If the kernel direct map already has a leaf for [pfn], retag it with
    [key]/[writable]; returns whether a leaf existed. *)

val denied_count : t -> int
val ptp_count : t -> int
