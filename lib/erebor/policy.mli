(** Erebor's protection-key assignments and the sensitive-instruction
    inventory (Table 2 of the paper). *)

(** {2 Protection keys (PKS)} *)

val key_default : int       (** 0 — ordinary kernel memory. *)
val key_monitor : int       (** 1 — monitor code/data/stacks: no access in normal mode. *)
val key_ptp : int           (** 2 — page-table pages: read-only in normal mode. *)
val key_kernel_text : int   (** 3 — kernel code: read-only in normal mode (W⊕X). *)

val normal_mode_pkrs : int64
(** The IA32_PKRS value the kernel runs under: monitor key access-disabled,
    PTP and kernel-text keys write-disabled. *)

val monitor_mode_pkrs : int64
(** Grant-all — loaded by the EMC entry gate, revoked at exit. *)

(** {2 Per-tenant sandbox policy} *)

type tenant = {
  label : string;           (** Attribution label for audit records. *)
  max_output_bytes : int;   (** Output-channel cap; [0] = unlimited. *)
  allow_common : bool;      (** May attach shared common instances. *)
}

val default_tenant : label:string -> tenant
(** Unlimited output, commons allowed — the single-tenant defaults. *)

(** {2 Sensitive instructions (Table 2)} *)

type instr_class = Cr | Msr | Smap | Idt | Ghci | Mmu

type sensitive = {
  class_ : instr_class;
  mnemonic : string;
  description : string;
}

val sensitive_instructions : sensitive list
(** The delegation inventory, rendered by [bench/main.exe tables-qual]. *)

val class_of_isa : Hw.Isa.instr -> instr_class option
(** Which class a synthetic-ISA instruction falls into, if sensitive. *)

val audit_category : instr_class -> string
(** Audit-chain record category for decisions about this class
    (["privop.cr"], ["privop.mmu"], ...). *)

val pp_class : Format.formatter -> instr_class -> unit
