type phase = Initializing | Data_loaded | Terminated

type confined_region = { start : int; len : int; base_pfn : int }

type t = {
  id : int;
  sb_name : string;
  policy : Policy.tenant;
  mutable phase : phase;
  main_task : Kernel.Task.t;
  mutable threads : Kernel.Task.t list;
  confined_budget : int;
  mutable confined : confined_region list;
  mutable commons : (int * string) list; (* region start -> instance name *)
  channel_fd : int;
  mutable input_addr : int;
  mutable input_len : int;
  output : Buffer.t;
  mutable kill_reason : string option;
  mutable pf_count : int;
  mutable timer_count : int;
  mutable ve_count : int;
}

type common_instance = {
  cname : string;
  size : int;
  frames : (int, int) Hashtbl.t; (* page index -> pfn *)
}

type manager = {
  monitor : Monitor.t;
  kern : Kernel.t;
  mutable next_id : int;
  sandboxes : (int, t) Hashtbl.t;
  by_root : (int, t) Hashtbl.t;
  commons : (string, common_instance) Hashtbl.t;
  mutable mitigations : Mitigations.t option;
}

let id sb = sb.id
let name sb = sb.sb_name
let policy sb = sb.policy
let phase sb = sb.phase
let main_task sb = sb.main_task
let threads sb = sb.threads
let kill_reason sb = sb.kill_reason
let channel_fd sb = sb.channel_fd
let confined_bytes sb = List.fold_left (fun acc r -> acc + r.len) 0 sb.confined
let exit_stats sb = (sb.pf_count, sb.timer_count, sb.ve_count)

let guard mgr = Monitor.guard mgr.monitor

(* Sandbox lifecycle events carry the sandbox id as argument. *)
let emit mgr kind ~arg = Hw.Cpu.emit mgr.kern.Kernel.cpu kind ~arg

(* Lifecycle transitions are security decisions too: they land in the audit
   chain (when one is attached) alongside the [Sandbox_*] bus events. *)
let audit mgr verdict detail =
  Obs.Emitter.audit_event mgr.kern.Kernel.cpu.Hw.Cpu.obs
    ~ts:(Hw.Cycles.now mgr.kern.Kernel.clock) ~category:"sandbox" ~verdict
    detail

(* Attribute a monitor-interposition cycle charge: the [Exit_interpose]
   span boundaries are emitted at the current clock around the advance. *)
let interpose_charge mgr cycles =
  emit mgr (Obs.Trace.span_begin Obs.Trace.Exit_interpose) ~arg:0;
  Hw.Cycles.advance mgr.kern.Kernel.clock cycles;
  emit mgr (Obs.Trace.span_end Obs.Trace.Exit_interpose) ~arg:0

let page_size = Hw.Phys_mem.page_size

(* Fault-frame provider: serve confined pages from the pinned contiguous
   range, common pages from the shared instance. *)
let frame_source mgr task region ~addr =
  match Kernel.Task.sandbox_id task with
  | None -> None
  | Some sid -> (
      match Hashtbl.find_opt mgr.sandboxes sid with
      | None -> None
      | Some sb -> (
          match region.Kernel.Vma.kind with
          | Kernel.Vma.Confined ->
              List.find_map
                (fun r ->
                  if addr >= r.start && addr < r.start + r.len then
                    Some (r.base_pfn + ((addr - r.start) / page_size))
                  else None)
                sb.confined
          | Kernel.Vma.Common -> (
              let index = (addr - region.Kernel.Vma.start) / page_size in
              match
                List.find_map
                  (fun (start, cname) ->
                    if start = region.Kernel.Vma.start then Hashtbl.find_opt mgr.commons cname
                    else None)
                  sb.commons
              with
              | None -> None
              | Some inst -> (
                  match Hashtbl.find_opt inst.frames index with
                  | Some pfn -> Some pfn
                  | None -> (
                      match Kernel.Alloc.alloc mgr.kern.Kernel.frame_alloc with
                      | None -> None
                      | Some pfn ->
                          (match
                             Mmu_guard.classify (guard mgr) ~pfn
                               (Mmu_guard.Common { instance = inst.cname })
                           with
                          | Ok () -> ()
                          | Error e -> failwith ("frame_source: " ^ e));
                          Hashtbl.replace inst.frames index pfn;
                          Some pfn)))
          | Kernel.Vma.Anon | Kernel.Vma.Stack | Kernel.Vma.File _ -> None))

let usercopy_veto mgr () =
  let root = Hw.Cr.root_pfn mgr.kern.Kernel.cpu.Hw.Cpu.cr in
  match Hashtbl.find_opt mgr.by_root root with
  | Some sb when sb.phase = Data_loaded ->
      Some (Printf.sprintf "sandbox %d is sealed" sb.id)
  | Some _ | None -> None

let create_manager ~monitor ~kern =
  let mgr =
    {
      monitor;
      kern;
      next_id = 1;
      sandboxes = Hashtbl.create 8;
      by_root = Hashtbl.create 8;
      commons = Hashtbl.create 8;
      mitigations = None;
    }
  in
  Kernel.set_frame_source kern (frame_source mgr);
  Monitor.set_usercopy_veto monitor (usercopy_veto mgr);
  mgr

let create_sandbox ?policy mgr ~name ~confined_budget =
  if confined_budget <= 0 then Error "confined budget must be positive"
  else begin
    let policy =
      match policy with Some p -> p | None -> Policy.default_tenant ~label:name
    in
    let sid = mgr.next_id in
    mgr.next_id <- sid + 1;
    let task = Kernel.create_task mgr.kern ~name ~kind:(Kernel.Task.Sandboxed sid) in
    Mmu_guard.register_sandbox_root (guard mgr) ~root_pfn:task.Kernel.Task.root_pfn
      ~sandbox:sid;
    let channel_fd = Kernel.Task.alloc_fd task "/dev/erebor-pseudo-io-dev" in
    let sb =
      {
        id = sid;
        sb_name = name;
        policy;
        phase = Initializing;
        main_task = task;
        threads = [];
        confined_budget;
        confined = [];
        commons = [];
        channel_fd;
        input_addr = 0;
        input_len = 0;
        output = Buffer.create 256;
        kill_reason = None;
        pf_count = 0;
        timer_count = 0;
        ve_count = 0;
      }
    in
    Hashtbl.replace mgr.sandboxes sid sb;
    Hashtbl.replace mgr.by_root task.Kernel.Task.root_pfn sb;
    emit mgr Obs.Trace.Sandbox_create ~arg:sid;
    audit mgr Obs.Audit.Info (fun () ->
        Printf.sprintf "create id=%d name=%s" sid sb.sb_name);
    Ok sb
  end

let spawn_thread mgr sb ~name =
  let thread = Kernel.clone_thread mgr.kern sb.main_task ~name in
  sb.threads <- thread :: sb.threads;
  thread

let declare_confined mgr sb ~len =
  let len = Kernel.Layout.page_align_up len in
  if sb.phase <> Initializing then Error "confined memory must be declared before data"
  else if confined_bytes sb + len > sb.confined_budget then
    Error "confined budget exceeded"
  else begin
    let pages = len / page_size in
    match Kernel.Alloc.alloc_contig mgr.kern.Kernel.cma pages with
    | None -> Error "CMA region exhausted"
    | Some base_pfn -> (
        (* Classify before any mapping so the MMU guard enforces ownership
           from the first install. *)
        let classify_all () =
          let rec go i =
            if i = pages then Ok ()
            else
              match
                Mmu_guard.classify (guard mgr) ~pfn:(base_pfn + i)
                  (Mmu_guard.Confined { owner = sb.id })
              with
              | Ok () -> go (i + 1)
              | Error e -> Error e
          in
          go 0
        in
        match classify_all () with
        | Error e -> Error e
        | Ok () -> (
            match
              Kernel.mmap mgr.kern sb.main_task ~len ~prot:Kernel.Vma.prot_rw
                ~kind:Kernel.Vma.Confined
            with
            | Error e -> Error e
            | Ok start -> (
                sb.confined <- sb.confined @ [ { start; len; base_pfn } ];
                (* Pin: pre-fault every page now (init-time cost). *)
                match Kernel.populate mgr.kern sb.main_task ~start ~len with
                | Ok () -> Ok start
                | Error e -> Error e)))
  end

let attach_common mgr sb ~name ~size =
  if sb.phase <> Initializing then Error "common memory must attach before data"
  else if not sb.policy.Policy.allow_common then begin
    audit mgr Obs.Audit.Deny (fun () ->
        Printf.sprintf "attach_common id=%d %s: tenant policy forbids common memory"
          sb.id sb.policy.Policy.label);
    Error "tenant policy forbids common memory"
  end
  else begin
    let inst =
      match Hashtbl.find_opt mgr.commons name with
      | Some inst ->
          if inst.size <> size then invalid_arg "attach_common: size mismatch" else inst
      | None ->
          let inst = { cname = name; size; frames = Hashtbl.create 1024 } in
          Hashtbl.replace mgr.commons name inst;
          inst
    in
    ignore inst;
    match
      Kernel.mmap mgr.kern sb.main_task ~len:(Kernel.Layout.page_align_up size)
        ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Common
    with
    | Error e -> Error e
    | Ok start ->
        sb.commons <- sb.commons @ [ (start, name) ];
        Ok start
  end

let common_instance_frames mgr ~name =
  match Hashtbl.find_opt mgr.commons name with
  | Some inst -> Hashtbl.length inst.frames
  | None -> 0

let read_sandbox_bytes mgr sb ~addr ~len =
  ignore sb;
  (* Monitor-privileged read through the direct map of the resolved frames. *)
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let va = addr + !copied in
    let page = Kernel.Layout.page_align_down va in
    let pfn =
      match Kernel.resolve_pfn mgr.kern sb.main_task ~addr:page with
      | Some pfn -> pfn
      | None -> failwith "read_sandbox_bytes: unmapped"
    in
    let off = va - page in
    let chunk = min (page_size - off) (len - !copied) in
    Hw.Phys_mem.blit_to mgr.kern.Kernel.mem
      (Hw.Phys_mem.addr_of_pfn pfn + off)
      out ~off:!copied ~len:chunk;
    copied := !copied + chunk
  done;
  out

let write_sandbox_bytes mgr sb addr data =
  let len = Bytes.length data in
  let copied = ref 0 in
  while !copied < len do
    let va = addr + !copied in
    let page = Kernel.Layout.page_align_down va in
    let pfn =
      match Kernel.resolve_pfn mgr.kern sb.main_task ~addr:page with
      | Some pfn -> pfn
      | None -> failwith "write_sandbox_bytes: unmapped"
    in
    let off = va - page in
    let chunk = min (page_size - off) (len - !copied) in
    Hw.Phys_mem.blit_from mgr.kern.Kernel.mem
      (Hw.Phys_mem.addr_of_pfn pfn + off)
      data ~off:!copied ~len:chunk;
    copied := !copied + chunk
  done

let write_sandbox_bytes mgr sb ~addr data = write_sandbox_bytes mgr sb addr data

let kill mgr sb reason =
  sb.kill_reason <- Some reason;
  sb.phase <- Terminated;
  emit mgr Obs.Trace.Sandbox_kill ~arg:sb.id;
  audit mgr Obs.Audit.Kill (fun () ->
      Printf.sprintf "kill id=%d: %s" sb.id reason);
  Kernel.exit_task mgr.kern sb.main_task ~code:137;
  List.iter (fun th -> Kernel.exit_task mgr.kern th ~code:137) sb.threads

let load_client_data mgr sb data =
  if sb.phase <> Initializing then Error "sandbox not in initialization phase"
  else
    match sb.confined with
    | [] -> Error "no confined region declared"
    | { start; len; _ } :: _ ->
        if Bytes.length data > len then Error "client data exceeds confined region"
        else begin
          Monitor.interpose_user_exit mgr.monitor (fun () -> ());
          write_sandbox_bytes mgr sb ~addr:start data;
          sb.input_addr <- start;
          sb.input_len <- Bytes.length data;
          (* Seal every attached common instance (revoke write). *)
          List.iter
            (fun cname -> ignore (Mmu_guard.seal_common (guard mgr) ~instance:cname))
            (List.sort_uniq compare (List.map snd sb.commons));
          Monitor.prepare_sandbox_entry mgr.monitor;
          sb.phase <- Data_loaded;
          emit mgr Obs.Trace.Sandbox_seal ~arg:sb.id;
          audit mgr Obs.Audit.Info (fun () ->
              Printf.sprintf "seal id=%d input=%d bytes" sb.id sb.input_len);
          Ok start
        end

let append_output _mgr sb data = Buffer.add_bytes sb.output data

let take_output mgr sb =
  (* Quantized release hides processing-time variation (§11). *)
  (match mgr.mitigations with Some m -> Mitigations.release_output m | None -> ());
  let out = Buffer.to_bytes sb.output in
  Buffer.clear sb.output;
  out

let apply_exit_mitigations mgr =
  match mgr.mitigations with Some m -> Mitigations.on_sandbox_exit m | None -> ()

let set_mitigations mgr policy =
  mgr.mitigations <-
    Some (Mitigations.create ~clock:mgr.kern.Kernel.clock ~cpu:mgr.kern.Kernel.cpu policy)

let mitigation_stats mgr =
  Option.map
    (fun m -> (Mitigations.stalls m, Mitigations.stall_cycles m, Mitigations.flushes m))
    mgr.mitigations

let handle_syscall mgr sb call =
  apply_exit_mitigations mgr;
  interpose_charge mgr Hw.Cycles.Cost.monitor_exit_inspect;
  match sb.phase with
  | Initializing -> Kernel.syscall mgr.kern sb.main_task call
  | Terminated -> Kernel.Syscall.Rerr "sandbox terminated"
  | Data_loaded -> (
      match call with
      | Kernel.Syscall.Ioctl { fd; request; arg } when fd = sb.channel_fd -> (
          match request with
          | 1 ->
              (* Fetch the installed client input. *)
              emit mgr Obs.Trace.Channel_recv ~arg:sb.input_len;
              Kernel.Syscall.Rbytes
                (read_sandbox_bytes mgr sb ~addr:sb.input_addr ~len:sb.input_len)
          | 2 ->
              let cap = sb.policy.Policy.max_output_bytes in
              if cap > 0 && Buffer.length sb.output + Bytes.length arg > cap then begin
                kill mgr sb
                  (Printf.sprintf "output exceeds tenant cap (%d bytes)" cap);
                Kernel.Syscall.Rerr "killed"
              end
              else begin
                emit mgr Obs.Trace.Channel_send ~arg:(Bytes.length arg);
                append_output mgr sb arg;
                Kernel.Syscall.Rok
              end
          | _ ->
              kill mgr sb "ioctl: unknown channel request";
              Kernel.Syscall.Rerr "killed")
      | other ->
          kill mgr sb
            (Printf.sprintf "syscall %s after data load" (Kernel.Syscall.name other));
          Kernel.Syscall.Rerr "killed")

let handle_interrupt mgr sb f =
  apply_exit_mitigations mgr;
  sb.timer_count <- sb.timer_count + 1;
  interpose_charge mgr Hw.Cycles.Cost.monitor_state_mask;
  let cpu = mgr.kern.Kernel.cpu in
  let saved = Hw.Cpu.snapshot_regs cpu in
  Hw.Cpu.scrub_regs cpu;
  Fun.protect ~finally:(fun () -> Hw.Cpu.restore_regs cpu saved) f

let handle_ve mgr sb ~reason =
  apply_exit_mitigations mgr;
  sb.ve_count <- sb.ve_count + 1;
  match sb.phase with
  | Data_loaded ->
      kill mgr sb (Printf.sprintf "#VE exit (reason %d) after data load" reason);
      Kernel.Syscall.Rerr "killed"
  | Initializing | Terminated -> Kernel.Syscall.Rok

let cpuid mgr sb ~leaf =
  sb.ve_count <- sb.ve_count + 1;
  Monitor.cpuid mgr.monitor ~leaf

let page_fault mgr sb ~addr ~kind =
  sb.pf_count <- sb.pf_count + 1;
  Kernel.handle_page_fault mgr.kern sb.main_task ~addr ~kind

let timer_tick mgr sb =
  handle_interrupt mgr sb (fun () -> Kernel.timer_interrupt mgr.kern)

let terminate mgr sb =
  if sb.phase <> Terminated then sb.phase <- Terminated;
  emit mgr Obs.Trace.Sandbox_exit ~arg:sb.id;
  audit mgr Obs.Audit.Info (fun () -> Printf.sprintf "exit id=%d" sb.id);
  (* Scrub and release confined memory (§6.3 cleanup). *)
  List.iter
    (fun r ->
      let pages = r.len / page_size in
      for i = 0 to pages - 1 do
        Hw.Phys_mem.zero_page mgr.kern.Kernel.mem (r.base_pfn + i)
      done;
      (match Kernel.munmap mgr.kern sb.main_task ~addr:r.start with
      | Ok () -> ()
      | Error _ -> ());
      for i = 0 to pages - 1 do
        Mmu_guard.declassify (guard mgr) ~pfn:(r.base_pfn + i);
        if Kernel.Alloc.is_allocated mgr.kern.Kernel.cma (r.base_pfn + i) then
          Kernel.Alloc.free mgr.kern.Kernel.cma (r.base_pfn + i)
      done)
    sb.confined;
  sb.confined <- [];
  Buffer.clear sb.output;
  Kernel.exit_task mgr.kern sb.main_task ~code:0;
  List.iter (fun th -> Kernel.exit_task mgr.kern th ~code:0) sb.threads

let find_by_task mgr task =
  match Kernel.Task.sandbox_id task with
  | None -> None
  | Some sid -> Hashtbl.find_opt mgr.sandboxes sid

let find_by_id mgr sid = Hashtbl.find_opt mgr.sandboxes sid

let sandboxes mgr =
  List.sort
    (fun a b -> compare a.id b.id)
    (Hashtbl.fold (fun _ sb acc -> sb :: acc) mgr.sandboxes [])

let exit_stats_all mgr =
  List.map
    (fun sb -> (sb.id, sb.sb_name, (sb.pf_count, sb.timer_count, sb.ve_count)))
    (sandboxes mgr)

let sandbox_count mgr = Hashtbl.length mgr.sandboxes
let manager_kernel mgr = mgr.kern
let manager_monitor mgr = mgr.monitor
