(* The gate code mirrors Fig. 5: endbr64 first, scratch saves, PKRS grant,
   stack switch, and the symmetric exit sequence. It is assembled so the
   monitor image can be measured and so the endbr offset is real. *)
let gate_listing =
  [
    (* EntryGate: *)
    Hw.Isa.Endbr;                       (* the only indirect-branch target *)
    Hw.Isa.Store (Hw.Isa.R7, Hw.Isa.R0);  (* save scratch registers *)
    Hw.Isa.Store (Hw.Isa.R7, Hw.Isa.R1);
    Hw.Isa.Wrmsr;                       (* IA32_PKRS <- GRANT_ALL *)
    Hw.Isa.Mov_imm (Hw.Isa.R6, 0);      (* switch to per-core secure stack *)
    Hw.Isa.Load (Hw.Isa.R0, Hw.Isa.R7); (* restore scratch *)
    Hw.Isa.Load (Hw.Isa.R1, Hw.Isa.R7);
    Hw.Isa.Call 4;                      (* dispatch to the requested service *)
    (* ExitGate: *)
    Hw.Isa.Load (Hw.Isa.R6, Hw.Isa.R7); (* switch back to OS stack *)
    Hw.Isa.Wrmsr;                       (* IA32_PKRS <- REVOKE_OS_R_W *)
    Hw.Isa.Ret;
  ]

type privilege = Pks | Write_protect

type t = {
  cpu : Hw.Cpu.t;
  code_base : int;
  code : bytes;
  privilege : privilege;
  shadow : Hw.Cet.shadow_stack;
  mutable depth : int;          (* nested monitor-context calls *)
  mutable saved_grants : int64 list; (* secure-stack slots for the #INT gate *)
  mutable emc_count : int;
  mutable interrupted : int;
}

let create ~cpu ~code_base ?(privilege = Pks) () =
  {
    cpu;
    code_base;
    code = Hw.Isa.assemble gate_listing;
    privilege;
    shadow = Hw.Cet.create_stack ~base:(code_base + 0x10000);
    depth = 0;
    saved_grants = [];
    emc_count = 0;
    interrupted = 0;
  }

let privilege t = t.privilege

let entry_point t = t.code_base
let code_bytes t = Bytes.copy t.code

let endbr_at t addr = addr = t.code_base

let read_pkrs t = Hw.Msr.read t.cpu.Hw.Cpu.msr Hw.Msr.ia32_pkrs
let load_pkrs t v = Hw.Msr.write t.cpu.Hw.Cpu.msr Hw.Msr.ia32_pkrs v

(* Read/grant/revoke the privilege state the backend uses. The saved value
   is opaque to callers: a PKRS image or a CR0.WP bit. *)
let read_grant t =
  match t.privilege with
  | Pks -> read_pkrs t
  | Write_protect -> if Hw.Cr.wp t.cpu.Hw.Cpu.cr then 1L else 0L

let load_grant t v =
  match t.privilege with
  | Pks -> load_pkrs t v
  | Write_protect -> Hw.Cr.set_bit t.cpu.Hw.Cpu.cr ~reg:`Cr0 Hw.Cr.cr0_wp (Int64.equal v 1L)

let granted_value t =
  match t.privilege with Pks -> Policy.monitor_mode_pkrs | Write_protect -> 0L

let revoked_value t =
  match t.privilege with Pks -> Policy.normal_mode_pkrs | Write_protect -> 1L

let enter t ~target f =
  if t.depth > 0 then f () (* already in monitor context *)
  else begin
    let s_cet = Hw.Msr.read t.cpu.Hw.Cpu.msr Hw.Msr.ia32_s_cet in
    (match Hw.Cet.check_branch ~s_cet ~endbr_at:(endbr_at t) ~target with
    | Ok () -> ()
    | Error fault -> Hw.Fault.raise_fault fault);
    let t0 = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
    Hw.Cycles.advance t.cpu.Hw.Cpu.clock Hw.Cycles.Cost.emc_roundtrip;
    t.emc_count <- t.emc_count + 1;
    let caller_grant = read_grant t in
    load_grant t (granted_value t);
    t.depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        t.depth <- 0;
        load_grant t caller_grant;
        (* One event per outermost monitor-context entry: ts is the entry
           time, arg the full round-trip latency in cycles. *)
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(Hw.Cycles.now t.cpu.Hw.Cpu.clock - t0))
      f
  end

let call t f = enter t ~target:t.code_base f

let interrupt_during_emc t f =
  if t.depth = 0 then f ()
  else begin
    t.interrupted <- t.interrupted + 1;
    (* #INT gate: stash the granted privilege on the secure stack, revoke,
       run the OS handler, restore on return. *)
    let granted = read_grant t in
    t.saved_grants <- granted :: t.saved_grants;
    load_grant t (revoked_value t);
    Fun.protect
      ~finally:(fun () ->
        match t.saved_grants with
        | saved :: rest ->
            t.saved_grants <- rest;
            load_grant t saved
        | [] -> assert false)
      f
  end

let in_emc t = t.depth > 0
let emc_count t = t.emc_count
let interrupted_count t = t.interrupted
