(* The gate code mirrors Fig. 5: endbr64 first, scratch saves, PKRS grant,
   stack switch, and the symmetric exit sequence. It is assembled so the
   monitor image can be measured and so the endbr offset is real. *)
let gate_listing =
  [
    (* EntryGate: *)
    Hw.Isa.Endbr;                       (* the only indirect-branch target *)
    Hw.Isa.Store (Hw.Isa.R7, Hw.Isa.R0);  (* save scratch registers *)
    Hw.Isa.Store (Hw.Isa.R7, Hw.Isa.R1);
    Hw.Isa.Wrmsr;                       (* IA32_PKRS <- GRANT_ALL *)
    Hw.Isa.Mov_imm (Hw.Isa.R6, 0);      (* switch to per-core secure stack *)
    Hw.Isa.Load (Hw.Isa.R0, Hw.Isa.R7); (* restore scratch *)
    Hw.Isa.Load (Hw.Isa.R1, Hw.Isa.R7);
    Hw.Isa.Call 4;                      (* dispatch to the requested service *)
    (* ExitGate: *)
    Hw.Isa.Load (Hw.Isa.R6, Hw.Isa.R7); (* switch back to OS stack *)
    Hw.Isa.Wrmsr;                       (* IA32_PKRS <- REVOKE_OS_R_W *)
    Hw.Isa.Ret;
  ]

type t = {
  cpu : Hw.Cpu.t;
  code_base : int;
  code : bytes;
  icode : Hw.Icode.program;     (* [code], decoded once at create *)
  istate : Hw.Icode.state;
  gate_retires : int;           (* instructions one round trip retires *)
  backend : Isolation.t;
  shadow : Hw.Cet.shadow_stack;
  mutable depth : int;          (* nested monitor-context calls *)
  mutable saved_grants : int list; (* secure-stack slots for the #INT gate *)
  mutable emc_count : int;
  mutable interrupted : int;
}

let create ~cpu ~code_base ~backend () =
  let code = Hw.Isa.assemble gate_listing in
  (* Decode the gate listing once into the instruction cache ([of_bytes]
     is content-keyed, so every gate in a multi-machine sweep shares one
     decoded program). Each EMC round trip then *executes* the Fig. 5
     entry/exit sequence through it — affordable only because the warm
     path is a jump-table walk over preallocated ints. *)
  let icode =
    match Hw.Icode.of_bytes code with
    | Ok p -> p
    | Error off -> Fmt.failwith "Gate.create: undecodable listing at +%d" off
  in
  let istate = Hw.Icode.make_state () in
  let gate_retires = Hw.Icode.run icode istate ~entry:0 ~fuel:64 in
  if gate_retires <> List.length gate_listing then
    Fmt.failwith "Gate.create: listing retires %d of %d instructions"
      gate_retires
      (List.length gate_listing);
  {
    cpu;
    code_base;
    code;
    icode;
    istate;
    gate_retires;
    backend;
    shadow = Hw.Cet.create_stack ~base:(code_base + 0x10000);
    depth = 0;
    saved_grants = [];
    emc_count = 0;
    interrupted = 0;
  }

let backend t = t.backend

let entry_point t = t.code_base
let code_bytes t = Bytes.copy t.code

let endbr_at t addr = addr = t.code_base

(* Read/grant/revoke the privilege state the backend uses. The saved value
   is opaque to callers: a PKRS image or a CR0.WP bit. Grants travel as
   unboxed ints — [enter] runs once per EMC and must not allocate, and the
   Isolation dispatch (existential match + indirect call) keeps that. *)
let read_grant t = Isolation.read_grant t.backend
let load_grant t v = Isolation.load_grant t.backend v
let granted_value t = Isolation.granted_value t.backend
let revoked_value t = Isolation.revoked_value t.backend

let gate_span_begin = Obs.Trace.span_begin Obs.Trace.Emc_gate
let gate_span_end = Obs.Trace.span_end Obs.Trace.Emc_gate

(* Each round trip retires the gate's entry/exit instruction sequence
   through the warm decoded program: simulated fetch/execute only — no
   clock movement (the emc_roundtrip charge already models the gate's
   latency) and no allocation. A short retire means the code executing at
   the gate no longer matches the measured listing. *)
let retire_gate t =
  if Hw.Icode.run t.icode t.istate ~entry:0 ~fuel:64 <> t.gate_retires then
    Hw.Fault.raise_fault
      (Hw.Fault.Control_protection "gate: entry sequence diverged")

let enter t ~target f =
  if t.depth > 0 then f () (* already in monitor context *)
  else begin
    (* Inline IBT check (Hw.Cet.check_branch without the closure/result
       allocations): the gate entry is the only valid endbr64 target. *)
    (if Hw.Msr.s_cet_bits t.cpu.Hw.Cpu.msr land 4 <> 0 && target <> t.code_base
     then
       Hw.Fault.raise_fault
         (Hw.Fault.Control_protection
            (Printf.sprintf "indirect branch to 0x%x: no endbr64" target)));
    let t0 = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
    (* The gate span covers the whole round trip; service-body spans nest
       inside it, so attribution splits gate overhead from service work. *)
    Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_begin ~ts:t0 ~arg:0;
    Hw.Cycles.advance t.cpu.Hw.Cpu.clock Hw.Cycles.Cost.emc_roundtrip;
    t.emc_count <- t.emc_count + 1;
    retire_gate t;
    let caller_grant = read_grant t in
    load_grant t (granted_value t);
    t.depth <- 1;
    (* The exit sequence is written out in both arms rather than shared
       through a [finish] closure: the closure would capture [caller_grant]
       and [t0] and put one heap block on every EMC round trip. *)
    match f () with
    | v ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        (* One event per outermost monitor-context entry: ts is the entry
           time, arg the full round-trip latency in cycles. *)
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        v
    | exception e ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        raise e
  end

let call t f = enter t ~target:t.code_base f

(* Arity-specialized gate entries: the service body receives its operands
   directly instead of closing over them, so the hottest privops (write_pte
   above all) cross the gate without building a per-call closure. The
   target is the entry gate itself, so the IBT check in [enter] would never
   fire and is elided; everything else mirrors [enter] exactly, with both
   exit arms written out for the same no-allocation reason. *)
let call1 t f a =
  if t.depth > 0 then f a
  else begin
    let t0 = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
    Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_begin ~ts:t0 ~arg:0;
    Hw.Cycles.advance t.cpu.Hw.Cpu.clock Hw.Cycles.Cost.emc_roundtrip;
    t.emc_count <- t.emc_count + 1;
    retire_gate t;
    let caller_grant = read_grant t in
    load_grant t (granted_value t);
    t.depth <- 1;
    match f a with
    | v ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        v
    | exception e ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        raise e
  end

let call2 t f a b =
  if t.depth > 0 then f a b
  else begin
    let t0 = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
    Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_begin ~ts:t0 ~arg:0;
    Hw.Cycles.advance t.cpu.Hw.Cpu.clock Hw.Cycles.Cost.emc_roundtrip;
    t.emc_count <- t.emc_count + 1;
    retire_gate t;
    let caller_grant = read_grant t in
    load_grant t (granted_value t);
    t.depth <- 1;
    match f a b with
    | v ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        v
    | exception e ->
        t.depth <- 0;
        load_grant t caller_grant;
        let now = Hw.Cycles.now t.cpu.Hw.Cpu.clock in
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs gate_span_end ~ts:now ~arg:0;
        Obs.Emitter.emit t.cpu.Hw.Cpu.obs Obs.Trace.Emc_entry ~ts:t0
          ~arg:(now - t0);
        raise e
  end

let interrupt_during_emc t f =
  if t.depth = 0 then f ()
  else begin
    t.interrupted <- t.interrupted + 1;
    (* #INT gate: stash the granted privilege on the secure stack, revoke,
       run the OS handler, restore on return. *)
    let granted = read_grant t in
    t.saved_grants <- granted :: t.saved_grants;
    load_grant t (revoked_value t);
    let finish () =
      match t.saved_grants with
      | saved :: rest ->
          t.saved_grants <- rest;
          load_grant t saved
      | [] -> assert false
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let in_emc t = t.depth > 0
let emc_count t = t.emc_count
let interrupted_count t = t.interrupted
