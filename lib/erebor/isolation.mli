(** Pluggable isolation backends.

    The monitor's privilege boundary needs three things from hardware: a
    fast per-core permission switch at the EMC gate, a way to make frames
    (PTPs, kernel text, tenant memory) inaccessible outside monitor
    context, and per-tenant confinement of sandbox memory. The paper's TDX
    prototype builds all three from PKS protection keys; the SEV port (§10)
    substitutes CR0.WP; TME-Box shows the tenant-confinement leg can
    instead ride multi-key memory encryption. This module abstracts the
    mechanism as a backend ({!module-type-S}) chosen at
    [Monitor.install] time, so the rest of the stack — guard policy,
    gate protocol, sandbox lifecycle — is mechanism-agnostic.

    The backends:

    - {!Pks} (default): the gate swaps IA32_PKRS between grant-all and
      normal mode; PTPs and kernel text carry protection keys. Calibrated
      output is byte-identical to the pre-backend code.
    - {!Write_protect}: no PKS exists (SEV), so the gate clears CR0.WP in
      monitor context and protection comes from read-only mappings.
    - {!Tme_mk}: simulated TME-MK — each tenant's confined frames are
      tagged with an encryption key id, leaf PTEs carry the id in their
      upper address bits, and {!Hw.Tme} checks (and charges) the key at
      TLB-fill time. The gate runs the CR0.WP discipline; the per-access
      tenant check moves from the PKRS flip into the walker. *)

type kind = Pks | Write_protect | Tme_mk

val kind_name : kind -> string
(** ["pks"], ["wp"], ["tmemk"] — the [--backend] spelling. *)

val kind_of_name : string -> (kind, string) result
val all_kinds : kind list

val keyid_of_owner : int -> int
(** The TME-MK key id for sandbox [owner]: nonzero, folded into the
    {!Hw.Pte.keyid_bits}-wide field (key 0 is the shared key). *)

(** Interface every backend implements. Grant values travel as unboxed
    ints ([Gate.enter] runs once per EMC and must not allocate); their
    meaning is backend-private — a PKRS image, a CR0.WP bit. *)
module type S = sig
  type t

  val kind : kind
  val create : cpu:Hw.Cpu.t -> t

  val install : t -> unit
  (** Program the hardware the backend rests on; called once by
      [Monitor.install] from monitor context. *)

  (** {2 Gate grant protocol} *)

  val read_grant : t -> int
  val load_grant : t -> int -> unit
  val granted_value : t -> int
  val revoked_value : t -> int

  (** {2 MMU-guard hooks} *)

  val validate_untrusted : t -> Hw.Pte.t -> (unit, string) result
  (** Screen a kernel-supplied leaf PTE before classification dispatch
      (TME-MK rejects forged key ids here; PKS/WP accept everything). *)

  val seal_confined_leaf : t -> owner:int -> Hw.Pte.t -> Hw.Pte.t
  (** Transform an owner-checked confined leaf before install — identity
      for PKS/WP, key-id stamp for TME-MK. *)

  val tag_confined : t -> pfn:int -> owner:int -> unit
  val untag_confined : t -> pfn:int -> unit

  (** {2 Monitor hooks} *)

  val tenant_enter : t -> int option -> unit
  (** A CR3 load was approved: [Some sid] enters sandbox [sid]'s address
      space, [None] any non-sandbox root. TME-MK switches the active
      tenant key here; PKS/WP need nothing. *)
end

type t = B : (module S with type t = 'a) * 'a -> t
(** A backend packed with its state. Pattern-matching the existential and
    the indirect calls below do not allocate. *)

val create : kind -> cpu:Hw.Cpu.t -> t
(** Instantiate (but do not yet {!install}) a backend for this core. *)

val kind : t -> kind
val name : t -> string
val install : t -> unit
val read_grant : t -> int
val load_grant : t -> int -> unit
val granted_value : t -> int
val revoked_value : t -> int
val validate_untrusted : t -> Hw.Pte.t -> (unit, string) result
val seal_confined_leaf : t -> owner:int -> Hw.Pte.t -> Hw.Pte.t
val tag_confined : t -> pfn:int -> owner:int -> unit
val untag_confined : t -> pfn:int -> unit
val tenant_enter : t -> int option -> unit
