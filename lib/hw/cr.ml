(* Registers are stored as plain (untagged-immediate) ints: every managed
   bit sits below bit 24 and CR3 holds pfn lsl 12, so 63 bits are plenty.
   The int64 bit constants stay in the API for x86 fidelity; converting at
   the boundary keeps [set_bit]/[test] allocation-free, which the EMC gate
   relies on for its WP-grant toggle on every round trip. *)
type t = {
  mutable cr0 : int;
  mutable cr3 : int;
  mutable cr4 : int;
  mutable gen : int; (* bumped on every mutation; backs Cpu's cached ctx *)
}

let create () = { cr0 = 0; cr3 = 0; cr4 = 0; gen = 0 }

let cr0_wp = Int64.shift_left 1L 16

let cr4_smep = Int64.shift_left 1L 20
let cr4_smap = Int64.shift_left 1L 21
let cr4_pks = Int64.shift_left 1L 24
let cr4_cet = Int64.shift_left 1L 23

let test v bit = v land Int64.to_int bit <> 0

let wp t = test t.cr0 cr0_wp
let smep t = test t.cr4 cr4_smep
let smap t = test t.cr4 cr4_smap
let pks t = test t.cr4 cr4_pks
let cet t = test t.cr4 cr4_cet

let gen t = t.gen

let set_root t pfn =
  t.cr3 <- pfn lsl 12;
  t.gen <- t.gen + 1

let root_pfn t = t.cr3 lsr 12

let set_bit t ~reg bit v =
  let b = Int64.to_int bit in
  (match reg with
  | `Cr0 -> t.cr0 <- (if v then t.cr0 lor b else t.cr0 land lnot b)
  | `Cr4 -> t.cr4 <- (if v then t.cr4 lor b else t.cr4 land lnot b));
  t.gen <- t.gen + 1
