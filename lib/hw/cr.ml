type t = {
  mutable cr0 : int64;
  mutable cr3 : int64;
  mutable cr4 : int64;
  mutable gen : int; (* bumped on every mutation; backs Cpu's cached ctx *)
}

let create () = { cr0 = 0L; cr3 = 0L; cr4 = 0L; gen = 0 }

let cr0_wp = Int64.shift_left 1L 16

let cr4_smep = Int64.shift_left 1L 20
let cr4_smap = Int64.shift_left 1L 21
let cr4_pks = Int64.shift_left 1L 24
let cr4_cet = Int64.shift_left 1L 23

let test v bit = not (Int64.equal (Int64.logand v bit) 0L)

let wp t = test t.cr0 cr0_wp
let smep t = test t.cr4 cr4_smep
let smap t = test t.cr4 cr4_smap
let pks t = test t.cr4 cr4_pks
let cet t = test t.cr4 cr4_cet

let gen t = t.gen

let set_root t pfn =
  t.cr3 <- Int64.of_int (pfn lsl 12);
  t.gen <- t.gen + 1

let root_pfn t = Int64.to_int (Int64.shift_right_logical t.cr3 12)

let set_bit t ~reg bit v =
  let apply r = if v then Int64.logor r bit else Int64.logand r (Int64.lognot bit) in
  (match reg with
  | `Cr0 -> t.cr0 <- apply t.cr0
  | `Cr4 -> t.cr4 <- apply t.cr4);
  t.gen <- t.gen + 1
