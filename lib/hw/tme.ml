(* TME-MK engine model: per-frame key tags, one active tenant key. *)

type t = {
  tags : int array;
  mutable active : int;
  mutable keyed_fills : int;
  mutable faults : int;
}

type decision = Plain | Keyed | Wrong_key of int * int | Inactive_key of int * int

let create ~frames =
  if frames <= 0 then invalid_arg "Tme.create: frames must be positive";
  { tags = Array.make frames 0; active = 0; keyed_fills = 0; faults = 0 }

let tag_of t ~pfn = if pfn >= 0 && pfn < Array.length t.tags then t.tags.(pfn) else 0

let tag t ~pfn keyid =
  if keyid < 0 || keyid >= 1 lsl Pte.keyid_bits then
    invalid_arg "Tme.tag: keyid out of range";
  if pfn < 0 || pfn >= Array.length t.tags then invalid_arg "Tme.tag: pfn out of range";
  t.tags.(pfn) <- keyid

let untag t ~pfn =
  if pfn >= 0 && pfn < Array.length t.tags then t.tags.(pfn) <- 0

let set_active t keyid =
  if keyid < 0 || keyid >= 1 lsl Pte.keyid_bits then
    invalid_arg "Tme.set_active: keyid out of range";
  t.active <- keyid

let active t = t.active

(* The fill-time key check. A mapping whose PTE keyid disagrees with the
   frame's tag decrypts with the wrong key — modelled as an integrity fault
   rather than silent ciphertext. A correctly-tagged tenant frame still
   requires that tenant's key to be the active context. *)
let check t ~pfn ~pte_keyid =
  let tag = tag_of t ~pfn in
  if pte_keyid <> tag then begin
    t.faults <- t.faults + 1;
    Wrong_key (pte_keyid, tag)
  end
  else if tag = 0 then Plain
  else if t.active <> tag then begin
    t.faults <- t.faults + 1;
    Inactive_key (tag, t.active)
  end
  else begin
    t.keyed_fills <- t.keyed_fills + 1;
    Keyed
  end

let keyed_fills t = t.keyed_fills
let faults t = t.faults
