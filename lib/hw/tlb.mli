(** Per-core translation lookaside buffer: direct-mapped, with each cached
    translation packed into one immediate int so the hit path never
    allocates. PKRS and CR4 feature bits are *not* cached — like hardware,
    they are consulted live on every access. Stale entries after a PTE
    change are a real hazard the OS must manage with explicit flushes. *)

type t

val create : unit -> t

(** {2 Packed-entry layout}

    bit 0 user, bit 1 writable, bit 2 nx, bits 4..7 pkey, bits 12.. pfn
    (so [packed_page_base] is the physical page base directly). *)

val pack : pfn:int -> user:bool -> writable:bool -> nx:bool -> pkey:int -> int

val packed_user : int -> bool
val packed_writable : int -> bool
val packed_nx : int -> bool
val packed_pkey : int -> int
val packed_page_base : int -> int
val packed_pfn : int -> int

val find : t -> int -> int
(** [find t vpn] is the packed entry for that virtual page number, or [-1]
    on a miss. Counts hits/misses. Allocation-free. *)

val insert : t -> int -> int -> unit
(** [insert t vaddr packed]. Direct-mapped: may evict a conflicting page. *)

val flush_page : t -> int -> unit
(** invlpg. *)

val flush_all : t -> unit
(** CR3 reload. O(1) — slots are invalidated by generation. *)

val epoch : t -> int
(** Incremented on every mutation (fill or flush). A cached translation is
    only valid while the epoch it was taken under is current — this backs
    {!Cpu}'s last-translation memo. *)

val hits : t -> int
val misses : t -> int
val entries : t -> int
