(** A small model of Intel TME-MK (multi-key total memory encryption) as an
    isolation substrate, after TME-Box: every physical frame carries a key
    tag (0 = the shared TME-global key), page-table entries name the key
    they expect in their upper address bits ({!Pte.keyid}), and the check
    happens when the walker fills a TLB entry — TLB flushes on CR3 switches
    and guarded PTE stores force refills, so fill-time checking is
    equivalent to per-access checking in this single-core model.

    The module is a pure decision engine: {!check} classifies a fill and
    counts, while the CPU layer charges cycles, emits audit records and
    raises the fault. When no [Tme.t] is attached to a CPU (the PKS
    backend), nothing here runs and behaviour is byte-identical to a
    machine without TME. *)

type t

type decision =
  | Plain  (** Untagged frame, untagged PTE — the shared key, no charge. *)
  | Keyed  (** Tagged frame, matching PTE keyid, key is active — charged. *)
  | Wrong_key of int * int
      (** [(pte_keyid, frame_tag)]: the PTE names a key the frame is not
          encrypted under — a forged or stale keyid; integrity fault. *)
  | Inactive_key of int * int
      (** [(frame_tag, active)]: correct keyid but the tenant's key is not
          the active context — e.g. the kernel touching a tenant frame
          through the direct map; integrity fault. *)

val create : frames:int -> t
val tag : t -> pfn:int -> int -> unit
(** Assign a frame's key tag (0 clears). Raises on out-of-range pfn/keyid. *)

val untag : t -> pfn:int -> unit
val tag_of : t -> pfn:int -> int
(** Out-of-range frames read as tag 0. *)

val set_active : t -> int -> unit
(** Program the tenant key context (0 = none); switched on sandbox entry. *)

val active : t -> int
val check : t -> pfn:int -> pte_keyid:int -> decision
val keyed_fills : t -> int
val faults : t -> int
