(** The cycle-cost model and the virtual clock.

    All performance results in this reproduction are expressed in *model
    cycles*. The per-operation constants are calibrated against the paper's
    own micro-measurements (Tables 3 and 4, Intel Xeon Platinum 8570): the
    native cost of each privileged operation, the round-trip cost of each
    privilege transition, and the in-monitor service cost of each
    Erebor-Monitor-Call (EMC). Macro results then *emerge* from how many of
    each event a workload triggers. *)

module Cost : sig
  (** {2 Privilege transitions (Table 3), round-trip} *)

  val syscall_roundtrip : int   (** 684 *)
  val emc_roundtrip : int       (** 1224 *)
  val tdcall_roundtrip : int    (** 5276 *)
  val vmcall_roundtrip : int    (** 4031 *)

  (** {2 Native privileged-operation execution (Table 4)} *)

  val pte_write_native : int    (** 23 — native_set_pte *)
  val cr_write_native : int     (** 294 *)
  val msr_write_native : int    (** 364 *)
  val lidt_native : int         (** 260 *)
  val stac_native : int         (** 62 — stac/clac pair *)
  val tdreport_native : int     (** 126806 — report generation dominates *)

  (** {2 In-monitor EMC service costs (validation + execution).
      [emc_roundtrip + service] reproduces Table 4's Erebor column.} *)

  val emc_service_mmu : int     (** 121  -> 1345 total *)
  val emc_service_cr : int      (** 369  -> 1593 total *)
  val emc_service_msr : int     (** 389  -> 1613 total *)
  val emc_service_idt : int     (** 145  -> 1369 total *)
  val emc_service_smap : int    (** 67   -> 1291 total *)
  val emc_service_ghci : int    (** 126857 -> 128081 total *)

  (** {2 General system events} *)

  val page_fault_base : int
  (** Fault delivery + kernel fault-path logic, excluding PTE installs. *)

  val interrupt_delivery : int
  (** Vectoring through the IDT to a handler and iret back. *)

  val context_switch : int
  (** Scheduler switch between tasks (excluding triggering interrupt). *)

  val ve_handling : int
  (** Guest #VE handler logic before the vmcall itself. *)

  val monitor_exit_inspect : int
  (** Erebor's per-sandbox-exit inspection work (Fig. 7 interposition). *)

  val monitor_state_mask : int
  (** Saving, masking and restoring sandbox register state at interrupts. *)

  val spinlock_acquire : int
  (** Uncontended LibOS userspace spinlock acquire/release pair. *)

  val libos_service : int
  (** LibOS in-process emulation of one runtime service call. *)

  val usercopy_per_page : int
  (** copy_from/to_user per 4KiB page, excluding stac/clac. *)

  val tme_key_load : int
  (** TME-MK backend: key-schedule selection per keyed TLB fill. Charged
      only when a {!Tme.t} is attached to the CPU. *)
end

type clock
(** Monotonic virtual clock, shared by every simulated component. *)

val clock : unit -> clock
val now : clock -> int
val advance : clock -> int -> unit
(** [advance c n] moves time forward by [n >= 0] cycles. *)

val ghz : float
(** Nominal core frequency used to render cycle counts as seconds (2.1 GHz,
    the paper's Xeon 8570). *)

val to_seconds : int -> float
(** Cycles to seconds at [ghz]. *)
