(** A small fixed-width synthetic ISA standing in for x86-64 in the parts of
    the system that reason about *instruction bytes*: the kernel image that
    Erebor's verified boot scans for sensitive instructions (§5.1), and the
    monitor's gate code whose single endbr64 anchors IBT (§5.3).

    Encoding: 4 bytes per instruction, [opcode; b0; b1; b2]. Benign opcodes
    and well-formed operand bytes stay below 0x80; sensitive opcodes occupy
    0xC0–0xC7. The verifier therefore scans *every byte offset* — exactly the
    conservative byte-level scan the paper describes — and a sensitive byte
    anywhere (even inside an operand) is a violation. Assemblers that want to
    pass verification must encode immediates in base-128, which [assemble]
    does. *)

type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7

type instr =
  | Nop
  | Endbr                              (** Valid indirect-branch target. *)
  | Mov_imm of reg * int               (** 14-bit immediate. *)
  | Load of reg * reg                  (** rd <- [rs] *)
  | Store of reg * reg                 (** [rd] <- rs *)
  | Add of reg * reg
  | Jmp of int                         (** 14-bit signed instruction offset. *)
  | Call of int
  | Ret
  | Syscall
  | Iret
  | Cpuid
  | Clac                               (** Benign: *revokes* user access. *)
  | Senduipi of reg
  (* Sensitive instructions (Table 2): *)
  | Mov_cr of int * reg                (** CR index 0/3/4. *)
  | Wrmsr
  | Stac
  | Lidt
  | Tdcall

val instr_size : int  (** 4. *)

val imm_range : int
(** Immediates and branch offsets are 14-bit signed:
    [-imm_range, imm_range). *)

val reg_code : reg -> int
val reg_of_code : int -> reg option

(** Raw opcode bytes, exposed so the decoded-instruction cache ({!Icode})
    can re-encode and report without a constructor round trip. *)

val op_mov_cr : int
val op_wrmsr : int
val op_stac : int
val op_lidt : int
val op_tdcall : int

val is_sensitive : instr -> bool
val sensitive_opcode : int -> bool
(** Whether a raw byte is in the sensitive opcode range. *)

val encode : instr -> bytes
val assemble : instr list -> bytes
val decode : bytes -> int -> instr option
(** [decode b off] decodes the 4-byte instruction at [off]; [None] on an
    unknown opcode or truncated tail. *)

val disassemble : bytes -> instr list option
(** [None] if any aligned slot fails to decode. *)

type violation = { offset : int; byte : int }

val scan : bytes -> violation list
(** Byte-level scan for sensitive opcode bytes at *any* offset, aligned or
    not. Empty means the code is verified free of sensitive instructions. *)

val pp_instr : Format.formatter -> instr -> unit
