(** Decoded-instruction cache and threaded-dispatch interpreter.

    {!Isa.decode} re-materializes a constructor (plus the [option] box and
    operand payloads) on every call, which is fine for one-shot scans but
    far too expensive — in both time and minor-heap churn — for code that
    *executes*: the monitor gate retires its Fig. 5 entry/exit sequence on
    every EMC round trip. This module decodes a code blob exactly once into
    a flat [int array] (one packed word per instruction slot) and runs it
    with a jump-table dispatch loop over the dense tags. A warm program
    executes with zero allocation, and identical byte strings share one
    decoded program through a content-keyed cache, so the 25 machines of a
    Fig. 9 sweep decode the kernel image and gate listing once between
    them.

    Execution is a *retirement* model, not a second semantics domain: it
    walks the program (registers, scratch memory, call stack, direct
    branches) and counts retired instructions, leaving all architectural
    side effects — privilege, MSRs, page tables — to the simulator proper.
    Running a program never advances the virtual clock, so calibrated
    outputs are unaffected by who executes through the cache. *)

type program

val decode : bytes -> (program, int) result
(** Decode every aligned 4-byte slot. [Error off] is the byte offset of the
    first slot {!Isa.decode} rejects. Always decodes fresh; see
    {!of_bytes} for the caching entry point. *)

val of_bytes : bytes -> (program, int) result
(** Content-keyed decode-once cache: identical byte strings return the
    same decoded program without re-decoding. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!of_bytes} since program start. *)

val length : program -> int
(** Number of instruction slots. *)

val instr : program -> int -> Isa.instr
(** Re-materialize slot [i] as an {!Isa.instr} (allocates; for tests and
    disassembly, not the execution path). *)

(** Mutable interpreter state, preallocated so steady-state runs allocate
    nothing: eight registers, a small word-addressed scratch memory, and a
    bounded call stack. *)
type state

val make_state : unit -> state

val set_sensitive_hook : state -> (int -> unit) -> unit
(** Called with the {!Isa} opcode byte each time a sensitive instruction
    retires (default: ignore). *)

val reg : state -> int -> int
(** Register file readback (for tests). *)

val run : program -> state -> entry:int -> fuel:int -> int
(** Execute from instruction slot [entry] until a top-level [Ret], an
    out-of-range branch, or [fuel] retired instructions; returns the
    retired count. A [Call] whose target lies outside the program models
    dispatch to an external service: it retires and falls through. Never
    allocates and never touches the virtual clock. *)

val run_undecoded : bytes -> state -> entry:int -> fuel:int -> int
(** Reference interpreter with the pre-cache shape: {!Isa.decode} on every
    step. Semantically identical to {!run} on the decoded form — kept as
    the baseline the microbenchmark and equivalence tests compare
    against. *)
