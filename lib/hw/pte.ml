type t = int64

let empty = 0L

let bit_present = 0
let bit_writable = 1
let bit_user = 2
let bit_accessed = 5
let bit_dirty = 6
let bit_huge = 7
let pfn_shift = 12
let pfn_bits = 36
let keyid_shift = 48
let keyid_bits = 10
let pkey_shift = 59
let bit_nx = 63

type flags = {
  present : bool;
  writable : bool;
  user : bool;
  nx : bool;
  pkey : int;
  accessed : bool;
  dirty : bool;
}

let default_flags =
  { present = true; writable = true; user = false; nx = false; pkey = 0;
    accessed = false; dirty = false }

let get_bit t i = Int64.logand (Int64.shift_right_logical t i) 1L = 1L

let set_bit t i v =
  if v then Int64.logor t (Int64.shift_left 1L i)
  else Int64.logand t (Int64.lognot (Int64.shift_left 1L i))

let pfn_mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L pfn_bits) 1L) pfn_shift

let make ~pfn flags =
  if pfn < 0 || pfn >= 1 lsl pfn_bits then invalid_arg "Pte.make: pfn out of range";
  if flags.pkey < 0 || flags.pkey > 15 then invalid_arg "Pte.make: pkey out of range";
  let t = Int64.shift_left (Int64.of_int pfn) pfn_shift in
  let t = set_bit t bit_present flags.present in
  let t = set_bit t bit_writable flags.writable in
  let t = set_bit t bit_user flags.user in
  let t = set_bit t bit_accessed flags.accessed in
  let t = set_bit t bit_dirty flags.dirty in
  let t = set_bit t bit_nx flags.nx in
  Int64.logor t (Int64.shift_left (Int64.of_int flags.pkey) pkey_shift)

let pfn t = Int64.to_int (Int64.shift_right_logical (Int64.logand t pfn_mask) pfn_shift)
let present t = get_bit t bit_present
let writable t = get_bit t bit_writable
let user t = get_bit t bit_user
let nx t = get_bit t bit_nx
let pkey t = Int64.to_int (Int64.logand (Int64.shift_right_logical t pkey_shift) 0xfL)
let dirty t = get_bit t bit_dirty
let accessed t = get_bit t bit_accessed

let flags t =
  { present = present t; writable = writable t; user = user t; nx = nx t;
    pkey = pkey t; accessed = accessed t; dirty = dirty t }

let with_pfn t pfn' =
  if pfn' < 0 || pfn' >= 1 lsl pfn_bits then invalid_arg "Pte.with_pfn: pfn out of range";
  Int64.logor
    (Int64.logand t (Int64.lognot pfn_mask))
    (Int64.shift_left (Int64.of_int pfn') pfn_shift)

let set_present t v = set_bit t bit_present v
let set_writable t v = set_bit t bit_writable v
let set_user t v = set_bit t bit_user v
let set_nx t v = set_bit t bit_nx v
let set_dirty t v = set_bit t bit_dirty v
let set_accessed t v = set_bit t bit_accessed v

let huge t = get_bit t bit_huge
let set_huge t v = set_bit t bit_huge v

let keyid_mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L keyid_bits) 1L) keyid_shift

let keyid t =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical t keyid_shift)
       (Int64.sub (Int64.shift_left 1L keyid_bits) 1L))

let set_keyid t k =
  if k < 0 || k >= 1 lsl keyid_bits then invalid_arg "Pte.set_keyid: keyid out of range";
  Int64.logor
    (Int64.logand t (Int64.lognot keyid_mask))
    (Int64.shift_left (Int64.of_int k) keyid_shift)

let set_pkey t k =
  if k < 0 || k > 15 then invalid_arg "Pte.set_pkey: pkey out of range";
  Int64.logor
    (Int64.logand t (Int64.lognot (Int64.shift_left 0xfL pkey_shift)))
    (Int64.shift_left (Int64.of_int k) pkey_shift)

let pp fmt t =
  if not (present t) then Fmt.string fmt "<not-present>"
  else
    Fmt.pf fmt "pfn=%#x%s%s%s%s key=%d" (pfn t)
      (if writable t then " W" else " RO")
      (if user t then " U" else " S")
      (if nx t then " NX" else "")
      (if dirty t then " D" else "")
      (pkey t)
