(** Per-core model-specific registers. Only the MSRs Erebor cares about get
    named constants; the file itself stores any index. Writes from user mode
    are rejected by {!Cpu}, not here. *)

type t

(** {2 Architectural MSR indices} *)

val ia32_lstar : int      (** 0xC0000082 — syscall entry point. *)
val ia32_pkrs : int       (** 0x6E1 — supervisor protection-key rights. *)
val ia32_s_cet : int      (** 0x6A2 — supervisor CET controls. *)
val ia32_pl0_ssp : int    (** 0x6A4 — kernel shadow-stack pointer. *)
val ia32_uintr_tt : int   (** 0x985 — user-interrupt target table. *)
val ia32_efer : int       (** 0xC0000080. *)

(** {2 Bits} *)

val s_cet_ibt_bit : int64       (** endbr tracking enable. *)
val s_cet_shstk_bit : int64     (** shadow stack enable. *)
val uintr_tt_valid_bit : int64  (** Target table valid. *)

val create : unit -> t
val read : t -> int -> int64
(** Unwritten MSRs read as zero. *)

val write : t -> int -> int64 -> unit

val pkrs_bits : t -> int
(** IA32_PKRS as an unboxed int — the EMC gate's fast slot. *)

val s_cet_bits : t -> int
(** IA32_S_CET as an unboxed int. *)

val write_pkrs_bits : t -> int -> unit
(** Allocation-free [write t ia32_pkrs]; bumps {!gen} like any write. *)

val gen : t -> int
(** Mutation counter: any MSR write bumps it. {!Cpu} compares it to decide
    whether its cached access-check context (which folds in IA32_PKRS) is
    still valid. *)

val snapshot : t -> (int * int64) list
(** Non-zero MSRs, for context save and tests. *)
