(* Packed word layout, one int per 4-byte instruction slot:
     bits 0..4   dense tag (jump-table dispatch)
     bits 5..8   operand a (register code, or CR index for mov_cr)
     bits 9..12  operand b (second register)
     bits 13..26 14-bit immediate, stored as its unsigned image
   Dense tags rather than the sparse Isa opcodes so the dispatch match
   compiles to one bounded jump table. *)

let t_nop = 0
let t_endbr = 1
let t_mov_imm = 2
let t_load = 3
let t_store = 4
let t_add = 5
let t_jmp = 6
let t_call = 7
let t_ret = 8
let t_syscall = 9
let t_iret = 10
let t_cpuid = 11
let t_clac = 12
let t_senduipi = 13
let t_mov_cr = 14
let t_wrmsr = 15
let t_stac = 16
let t_lidt = 17
let t_tdcall = 18

type program = { code : int array }

let length p = Array.length p.code

let f_a w = (w lsr 5) land 0xf
let f_b w = (w lsr 9) land 0xf

let f_imm w =
  let u = (w lsr 13) land 0x3fff in
  if u >= Isa.imm_range then u - (2 * Isa.imm_range) else u

let pack_imm v = (v land 0x3fff) lsl 13

let pack = function
  | Isa.Nop -> t_nop
  | Isa.Endbr -> t_endbr
  | Isa.Mov_imm (r, v) -> t_mov_imm lor (Isa.reg_code r lsl 5) lor pack_imm v
  | Isa.Load (rd, rs) ->
      t_load lor (Isa.reg_code rd lsl 5) lor (Isa.reg_code rs lsl 9)
  | Isa.Store (rd, rs) ->
      t_store lor (Isa.reg_code rd lsl 5) lor (Isa.reg_code rs lsl 9)
  | Isa.Add (rd, rs) ->
      t_add lor (Isa.reg_code rd lsl 5) lor (Isa.reg_code rs lsl 9)
  | Isa.Jmp off -> t_jmp lor pack_imm off
  | Isa.Call off -> t_call lor pack_imm off
  | Isa.Ret -> t_ret
  | Isa.Syscall -> t_syscall
  | Isa.Iret -> t_iret
  | Isa.Cpuid -> t_cpuid
  | Isa.Clac -> t_clac
  | Isa.Senduipi r -> t_senduipi lor (Isa.reg_code r lsl 5)
  | Isa.Mov_cr (cr, r) -> t_mov_cr lor (cr lsl 5) lor (Isa.reg_code r lsl 9)
  | Isa.Wrmsr -> t_wrmsr
  | Isa.Stac -> t_stac
  | Isa.Lidt -> t_lidt
  | Isa.Tdcall -> t_tdcall

let reg_of_field f =
  match Isa.reg_of_code f with Some r -> r | None -> assert false

let instr p i =
  let w = p.code.(i) in
  match w land 0x1f with
  | 0 -> Isa.Nop
  | 1 -> Isa.Endbr
  | 2 -> Isa.Mov_imm (reg_of_field (f_a w), f_imm w)
  | 3 -> Isa.Load (reg_of_field (f_a w), reg_of_field (f_b w))
  | 4 -> Isa.Store (reg_of_field (f_a w), reg_of_field (f_b w))
  | 5 -> Isa.Add (reg_of_field (f_a w), reg_of_field (f_b w))
  | 6 -> Isa.Jmp (f_imm w)
  | 7 -> Isa.Call (f_imm w)
  | 8 -> Isa.Ret
  | 9 -> Isa.Syscall
  | 10 -> Isa.Iret
  | 11 -> Isa.Cpuid
  | 12 -> Isa.Clac
  | 13 -> Isa.Senduipi (reg_of_field (f_a w))
  | 14 -> Isa.Mov_cr (f_a w, reg_of_field (f_b w))
  | 15 -> Isa.Wrmsr
  | 16 -> Isa.Stac
  | 17 -> Isa.Lidt
  | _ -> Isa.Tdcall

(* Decode each aligned slot exactly once, through the one authoritative
   decoder ([Isa.decode]); the packed form is a pure re-encoding of its
   output, so the cache can never disagree with the scanner's view. *)
let decode b =
  let n = Bytes.length b / Isa.instr_size in
  let exception Bad of int in
  match
    Array.init n (fun i ->
        match Isa.decode b (i * Isa.instr_size) with
        | Some instr -> pack instr
        | None -> raise (Bad (i * Isa.instr_size)))
  with
  | code ->
      if n * Isa.instr_size <> Bytes.length b then Error (n * Isa.instr_size)
      else Ok { code }
  | exception Bad off -> Error off

let cache : (string, program) Hashtbl.t = Hashtbl.create 16
let cache_hits = ref 0
let cache_misses = ref 0
let cache_stats () = (!cache_hits, !cache_misses)

let of_bytes b =
  let key = Bytes.to_string b in
  match Hashtbl.find_opt cache key with
  | Some p ->
      incr cache_hits;
      Ok p
  | None -> (
      incr cache_misses;
      match decode b with
      | Ok p ->
          Hashtbl.add cache key p;
          Ok p
      | Error _ as e -> e)

(* Interpreter state: power-of-two scratch memory so Load/Store addresses
   wrap instead of bounds-checking, and a bounded call stack. All arrays
   are preallocated — a warm [run] touches no heap. *)
type state = {
  regs : int array;
  mem : int array;
  stack : int array;
  mutable sp : int;
  mutable hook : int -> unit;
}

let scratch_words = 64
let stack_slots = 64

let make_state () =
  {
    regs = Array.make 8 0;
    mem = Array.make scratch_words 0;
    stack = Array.make stack_slots 0;
    sp = 0;
    hook = ignore;
  }

let set_sensitive_hook st f = st.hook <- f
let reg st i = st.regs.(i)

let mem_slot v = (v asr 3) land (scratch_words - 1)

(* The dispatch loop proper. Loop state travels as unboxed int arguments
   (a tail call per retired instruction) — refs would put three mutable
   cells on the heap per [run], and this runs once per EMC round trip. *)
let rec exec p st code n pc retired fuel =
  if retired >= fuel || pc < 0 || pc >= n then retired
  else begin
    let w = Array.unsafe_get code pc in
    let retired = retired + 1 in
    match w land 0x1f with
    | 2 ->
        Array.unsafe_set st.regs (f_a w) (f_imm w);
        exec p st code n (pc + 1) retired fuel
    | 3 ->
        Array.unsafe_set st.regs (f_a w)
          (Array.unsafe_get st.mem
             (mem_slot (Array.unsafe_get st.regs (f_b w))));
        exec p st code n (pc + 1) retired fuel
    | 4 ->
        Array.unsafe_set st.mem
          (mem_slot (Array.unsafe_get st.regs (f_a w)))
          (Array.unsafe_get st.regs (f_b w));
        exec p st code n (pc + 1) retired fuel
    | 5 ->
        Array.unsafe_set st.regs (f_a w)
          (Array.unsafe_get st.regs (f_a w)
          + Array.unsafe_get st.regs (f_b w));
        exec p st code n (pc + 1) retired fuel
    | 6 -> exec p st code n (pc + f_imm w) retired fuel
    | 7 ->
        (* In-range call pushes a return slot; a target outside the program
           is dispatch to an external service body — it retires and the
           "call" returns immediately. *)
        let target = pc + f_imm w in
        if target >= 0 && target < n then
          if st.sp >= stack_slots then retired
          else begin
            Array.unsafe_set st.stack st.sp (pc + 1);
            st.sp <- st.sp + 1;
            exec p st code n target retired fuel
          end
        else exec p st code n (pc + 1) retired fuel
    | 8 ->
        if st.sp = 0 then retired
        else begin
          st.sp <- st.sp - 1;
          exec p st code n (Array.unsafe_get st.stack st.sp) retired fuel
        end
    | 14 ->
        st.hook Isa.op_mov_cr;
        exec p st code n (pc + 1) retired fuel
    | 15 ->
        st.hook Isa.op_wrmsr;
        exec p st code n (pc + 1) retired fuel
    | 16 ->
        st.hook Isa.op_stac;
        exec p st code n (pc + 1) retired fuel
    | 17 ->
        st.hook Isa.op_lidt;
        exec p st code n (pc + 1) retired fuel
    | 18 ->
        st.hook Isa.op_tdcall;
        exec p st code n (pc + 1) retired fuel
    | _ ->
        (* nop, endbr, ret-less benign ops: syscall/iret/cpuid/clac/senduipi
           retire with no interpreter-visible effect. *)
        exec p st code n (pc + 1) retired fuel
  end

let run p st ~entry ~fuel =
  st.sp <- 0;
  exec p st p.code (Array.length p.code) entry 0 fuel

(* The pre-cache shape: one [Isa.decode] per step, constructor match per
   retire. Identical observable semantics to [run] — the equivalence test
   and the microbenchmark lean on that. *)
let rec exec_undecoded b st n pc retired fuel =
  if retired >= fuel || pc < 0 || pc >= n then retired
  else
    match Isa.decode b (pc * Isa.instr_size) with
    | None -> retired
    | Some i -> (
        let retired = retired + 1 in
        match i with
        | Isa.Nop | Isa.Endbr | Isa.Syscall | Isa.Iret | Isa.Cpuid | Isa.Clac
        | Isa.Senduipi _ ->
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Mov_imm (r, v) ->
            st.regs.(Isa.reg_code r) <- v;
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Load (rd, rs) ->
            st.regs.(Isa.reg_code rd) <-
              st.mem.(mem_slot st.regs.(Isa.reg_code rs));
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Store (rd, rs) ->
            st.mem.(mem_slot st.regs.(Isa.reg_code rd)) <-
              st.regs.(Isa.reg_code rs);
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Add (rd, rs) ->
            st.regs.(Isa.reg_code rd) <-
              st.regs.(Isa.reg_code rd) + st.regs.(Isa.reg_code rs);
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Jmp off -> exec_undecoded b st n (pc + off) retired fuel
        | Isa.Call off ->
            let target = pc + off in
            if target >= 0 && target < n then
              if st.sp >= stack_slots then retired
              else begin
                st.stack.(st.sp) <- pc + 1;
                st.sp <- st.sp + 1;
                exec_undecoded b st n target retired fuel
              end
            else exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Ret ->
            if st.sp = 0 then retired
            else begin
              st.sp <- st.sp - 1;
              exec_undecoded b st n st.stack.(st.sp) retired fuel
            end
        | Isa.Mov_cr _ ->
            st.hook Isa.op_mov_cr;
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Wrmsr ->
            st.hook Isa.op_wrmsr;
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Stac ->
            st.hook Isa.op_stac;
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Lidt ->
            st.hook Isa.op_lidt;
            exec_undecoded b st n (pc + 1) retired fuel
        | Isa.Tdcall ->
            st.hook Isa.op_tdcall;
            exec_undecoded b st n (pc + 1) retired fuel)

let run_undecoded b st ~entry ~fuel =
  st.sp <- 0;
  exec_undecoded b st (Bytes.length b / Isa.instr_size) entry 0 fuel
