(** A simulated logical core: privilege mode, GPRs, control registers, MSR
    file, EFLAGS.AC, TLB, CET engine and the current IDT. All memory accesses
    go through {!translate}, which walks the page tables living in simulated
    physical memory and applies {!Access.check}; faults surface as
    [Fault.Fault] exceptions, to be caught by whichever layer plays the fault
    handler. *)

type mode = User | Supervisor

type t = {
  id : int;
  mem : Phys_mem.t;
  clock : Cycles.clock;
  mutable mode : mode;
  regs : int64 array;       (** 16 GPRs. *)
  cr : Cr.t;
  msr : Msr.t;
  mutable ac : bool;        (** EFLAGS.AC — stac/clac. *)
  tlb : Tlb.t;
  cet : Cet.t;
  mutable idt : Idt.t;
  apic : Apic.t;
  obs : Obs.Emitter.t;
      (** The core's event bus. Every layer that holds (or is passed) this
          CPU publishes its privilege-relevant events here — one emitter per
          simulated machine, fresh unless injected at {!create}. *)
  mutable tme : Tme.t option;
      (** TME-MK key engine, consulted at TLB-fill time when attached by
          the [tmemk] isolation backend. [None] (the default) leaves the
          fill path byte-identical to a machine without TME. Violations
          raise [Page_fault] with [pkey_violation] set and append a
          ["tme"]-category deny to the audit chain. *)
  mutable actx : Access.ctx;
      (** Cached access-check context; use {!access_ctx}, which revalidates
          it against the mode/AC/CR/MSR state before returning it. *)
  mutable actx_mode : mode;
  mutable actx_ac : bool;
  mutable actx_cr_gen : int;
  mutable actx_msr_gen : int;
  mutable memo_epoch : int;
      (** Last-translation memo (one slot per access kind), valid only for
          the TLB epoch and context it was taken under. *)
  mutable memo_r_vpn : int;
  mutable memo_r_base : int;
  mutable memo_w_vpn : int;
  mutable memo_w_base : int;
  mutable memo_x_vpn : int;
  mutable memo_x_base : int;
}

val nregs : int

val create :
  ?obs:Obs.Emitter.t ->
  id:int -> mem:Phys_mem.t -> clock:Cycles.clock -> timer_period:int -> unit -> t

val emit : t -> Obs.Trace.kind -> arg:int -> unit
(** Emit on the core's bus, stamped with the current virtual cycle. Never
    advances the clock. *)

val access_ctx : t -> Access.ctx
(** The live access-check context (mode, CR bits, AC, PKRS). Cached: only
    rebuilt when mode, EFLAGS.AC, a CR or an MSR actually changed. *)

(** {2 Address translation and memory access} *)

val translate : t -> kind:Fault.access_kind -> int -> int
(** [translate t ~kind vaddr] is the physical address; raises [Fault.Fault]
    on a missing translation or a permission violation. Fills and consults
    the TLB; sets accessed/dirty bits on the leaf PTE. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit

val read_into : t -> int -> bytes -> off:int -> len:int -> unit
(** [read_into t vaddr buf ~off ~len]: one translation and one blit per
    touched page, straight into [buf] — no intermediate allocation.
    [read_bytes] is this plus the result buffer. *)

val write_from : t -> int -> bytes -> off:int -> len:int -> unit

val exec_check : t -> int -> unit
(** Instruction-fetch permission check for the page at the given address. *)

(** {2 Privileged register state (raise #GP from user mode)} *)

val write_msr : t -> int -> int64 -> unit
val read_msr : t -> int -> int64
val write_cr3 : t -> root_pfn:int -> unit
(** Also flushes the TLB, as a CR3 load does. *)

val set_cr_bit : t -> reg:[ `Cr0 | `Cr4 ] -> int64 -> bool -> unit
val lidt : t -> Idt.t -> unit
val stac : t -> unit
val clac : t -> unit

(** {2 TLB maintenance} *)

val invlpg : t -> int -> unit
val flush_tlb : t -> unit

(** {2 Register file helpers (context save / masking)} *)

val snapshot_regs : t -> int64 array
val restore_regs : t -> int64 array -> unit
val scrub_regs : t -> unit
(** Zero all GPRs — the monitor masks sandbox state at interrupts (§6.2). *)
