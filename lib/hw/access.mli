(** The access-check engine: combines paging permissions with SMEP, SMAP,
    CR0.WP and PKS exactly as the Intel SDM orders them. Every simulated
    memory access funnels through {!check}; this is where Erebor's isolation
    is mechanically enforced. *)

type ctx = {
  user_mode : bool;   (** CPL = 3. *)
  wp : bool;          (** CR0.WP. *)
  smep : bool;        (** CR4.SMEP. *)
  smap : bool;        (** CR4.SMAP. *)
  pks : bool;         (** CR4.PKS. *)
  ac : bool;          (** EFLAGS.AC (set by stac, cleared by clac). *)
  pkrs : int64;       (** IA32_PKRS. *)
}

type translation = {
  user : bool;        (** U/S ANDed across the walk. *)
  writable : bool;    (** R/W ANDed across the walk. *)
  nx : bool;          (** NX ORed across the walk. *)
  pkey : int;         (** Leaf protection key. *)
}

val check :
  ctx -> kind:Fault.access_kind -> addr:int -> translation -> (unit, Fault.t) result
(** Decide one access. [addr] is only used to describe the fault. *)

val check_bits :
  ctx ->
  kind:Fault.access_kind ->
  addr:int ->
  user:bool -> writable:bool -> nx:bool -> pkey:int ->
  (unit, Fault.t) result
(** Same decision with the translation bits passed unboxed — the form the
    CPU's TLB-hit path uses so a permitted access allocates nothing. *)
