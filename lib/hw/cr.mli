(** Control registers CR0/CR3/CR4 with the protection bits Erebor manages
    (Table 2 of the paper: mov %r, %CR is a sensitive instruction). *)

type t
(** Register file. The representation is private to keep the hot-path bit
    twiddling free of Int64 boxing (the EMC gate toggles the WP grant on
    every round trip); the architectural bit constants below stay [int64]
    for x86 fidelity. *)

val create : unit -> t

val gen : t -> int
(** Mutation counter: any CR write bumps it. {!Cpu} compares it to decide
    whether its cached access-check context is still valid. *)

(** {2 CR0} *)

val cr0_wp : int64  (** Write-protect: supervisor writes honor R/W=0. *)
val wp : t -> bool

(** {2 CR3} *)

val set_root : t -> int -> unit
(** Point CR3 at the PML4 frame. *)

val root_pfn : t -> int

(** {2 CR4 feature bits} *)

val cr4_smep : int64
val cr4_smap : int64
val cr4_pks : int64
val cr4_cet : int64

val smep : t -> bool
val smap : t -> bool
val pks : t -> bool
val cet : t -> bool

val set_bit : t -> reg:[ `Cr0 | `Cr4 ] -> int64 -> bool -> unit
