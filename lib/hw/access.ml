type ctx = {
  user_mode : bool;
  wp : bool;
  smep : bool;
  smap : bool;
  pks : bool;
  ac : bool;
  pkrs : int64;
}

type translation = { user : bool; writable : bool; nx : bool; pkey : int }

let pf ~addr ~kind ~user ?(pkey = false) () =
  Error
    (Fault.Page_fault
       { Fault.addr; kind; user; present = true; pkey_violation = pkey })

(* The hot-path entry point: permission bits passed unboxed so {!Cpu} can
   check a TLB hit without building a [translation] record. The [Ok ()]
   path allocates nothing. *)
let check_bits ctx ~kind ~addr ~user ~writable ~nx ~pkey =
  let deny ?pkey () = pf ~addr ~kind ~user:ctx.user_mode ?pkey () in
  match kind with
  | Fault.Execute ->
      if nx then deny ()
      else if ctx.user_mode then if user then Ok () else deny ()
      else if user && ctx.smep then deny () (* SMEP: no kernel exec of user pages *)
      else Ok ()
  | Fault.Read | Fault.Write -> (
      let write = kind = Fault.Write in
      if ctx.user_mode then
        if not user then deny ()
        else if write && not writable then deny ()
        else Ok ()
      else if user then
        (* Supervisor touching a user page: SMAP unless AC is set. *)
        if ctx.smap && not ctx.ac then deny ()
        else if write && ctx.wp && not writable then deny ()
        else Ok ()
      else begin
        (* Supervisor page: PKS applies to data accesses. *)
        let pks_ok =
          (not ctx.pks) || Pks.permits ~pkrs:ctx.pkrs ~key:pkey ~write:false
        in
        if not pks_ok then deny ~pkey:true ()
        else if write then
          if ctx.pks && ctx.wp && not (Pks.permits ~pkrs:ctx.pkrs ~key:pkey ~write:true)
          then deny ~pkey:true ()
          else if ctx.wp && not writable then deny ()
          else Ok ()
        else Ok ()
      end)

let check ctx ~kind ~addr tr =
  check_bits ctx ~kind ~addr ~user:tr.user ~writable:tr.writable ~nx:tr.nx
    ~pkey:tr.pkey
