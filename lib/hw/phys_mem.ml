let page_size = 4096
let page_shift = 12

(* Shared sentinel for never-written frames: a zero-length bytes. It is
   immutable (nothing ever writes through it) so sharing one across every
   machine — and every domain — is safe. A frame is backed iff its slot
   holds a bytes of length [page_size]. *)
let unbacked = Bytes.create 0

type t = {
  frames : int;
  pages : bytes array; (* pfn -> backing page, [unbacked] until first write *)
  mutable backed : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  { frames; pages = Array.make frames unbacked; backed = 0 }

let frames t = t.frames
let size_bytes t = t.frames * page_size
let pfn_of_addr addr = addr lsr page_shift
let addr_of_pfn pfn = pfn lsl page_shift
let page_offset addr = addr land (page_size - 1)
let valid_pfn t pfn = pfn >= 0 && pfn < t.frames

let check_addr t addr =
  if addr < 0 || pfn_of_addr addr >= t.frames then
    invalid_arg (Printf.sprintf "Phys_mem: address 0x%x out of range" addr)

let backing t pfn =
  let b = Array.unsafe_get t.pages pfn in
  if Bytes.length b <> 0 then b
  else begin
    let b = Bytes.make page_size '\000' in
    Array.unsafe_set t.pages pfn b;
    t.backed <- t.backed + 1;
    b
  end

let read_u8 t addr =
  check_addr t addr;
  let b = Array.unsafe_get t.pages (pfn_of_addr addr) in
  if Bytes.length b = 0 then 0 else Char.code (Bytes.unsafe_get b (page_offset addr))

let write_u8 t addr v =
  check_addr t addr;
  Bytes.set (backing t (pfn_of_addr addr)) (page_offset addr) (Char.chr (v land 0xff))

let read_u64 t addr =
  check_addr t addr;
  if page_offset addr > page_size - 8 then
    invalid_arg "Phys_mem.read_u64: crosses page boundary";
  let b = Array.unsafe_get t.pages (pfn_of_addr addr) in
  if Bytes.length b = 0 then 0L else Bytes.get_int64_le b (page_offset addr)

let write_u64 t addr v =
  check_addr t addr;
  if page_offset addr > page_size - 8 then
    invalid_arg "Phys_mem.write_u64: crosses page boundary";
  Bytes.set_int64_le (backing t (pfn_of_addr addr)) (page_offset addr) v

(* Bulk transfers: one blit per touched frame, no intermediate buffers. *)

let blit_to t addr dst ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length dst then
    invalid_arg "Phys_mem.blit_to: slice out of range";
  let copied = ref 0 in
  while !copied < len do
    let a = addr + !copied in
    check_addr t a;
    let poff = page_offset a in
    let chunk = min (page_size - poff) (len - !copied) in
    let b = Array.unsafe_get t.pages (pfn_of_addr a) in
    if Bytes.length b = 0 then Bytes.fill dst (off + !copied) chunk '\000'
    else Bytes.blit b poff dst (off + !copied) chunk;
    copied := !copied + chunk
  done

let blit_from t addr src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Phys_mem.blit_from: slice out of range";
  let copied = ref 0 in
  while !copied < len do
    let a = addr + !copied in
    check_addr t a;
    let poff = page_offset a in
    let chunk = min (page_size - poff) (len - !copied) in
    Bytes.blit src (off + !copied) (backing t (pfn_of_addr a)) poff chunk;
    copied := !copied + chunk
  done

let copy t ~src ~dst ~len =
  if len < 0 then invalid_arg "Phys_mem.copy: negative length";
  let copied = ref 0 in
  while !copied < len do
    let sa = src + !copied and da = dst + !copied in
    check_addr t sa;
    check_addr t da;
    let chunk =
      min
        (min (page_size - page_offset sa) (page_size - page_offset da))
        (len - !copied)
    in
    let sb = Array.unsafe_get t.pages (pfn_of_addr sa) in
    if Bytes.length sb = 0 then begin
      (* Zero source: only materialize the destination if it already is. *)
      let db = Array.unsafe_get t.pages (pfn_of_addr da) in
      if Bytes.length db <> 0 then Bytes.fill db (page_offset da) chunk '\000'
    end
    else Bytes.blit sb (page_offset sa) (backing t (pfn_of_addr da)) (page_offset da) chunk;
    copied := !copied + chunk
  done

let read_bytes t addr len =
  if len < 0 then invalid_arg "Phys_mem.read_bytes: negative length";
  let out = Bytes.create len in
  blit_to t addr out ~off:0 ~len;
  out

let write_bytes t addr data = blit_from t addr data ~off:0 ~len:(Bytes.length data)

let zero_page t pfn =
  if not (valid_pfn t pfn) then invalid_arg "Phys_mem.zero_page: bad pfn";
  let b = Array.unsafe_get t.pages pfn in
  if Bytes.length b <> 0 then Bytes.fill b 0 page_size '\000'

let page_is_backed t pfn = Bytes.length (Array.get t.pages pfn) <> 0
let backed_count t = t.backed
