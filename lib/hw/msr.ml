(* PKRS and S_CET sit on the EMC gate hot path (two writes and a read per
   monitor call); they live in unboxed fast slots, everything else in the
   table. Both registers are architecturally 32/64-bit but their defined
   bits fit a native int. *)
type t = {
  table : (int, int64) Hashtbl.t;
  mutable gen : int;
  mutable pkrs : int;
  mutable s_cet : int;
}

let ia32_lstar = 0xC0000082
let ia32_pkrs = 0x6E1
let ia32_s_cet = 0x6A2
let ia32_pl0_ssp = 0x6A4
let ia32_uintr_tt = 0x985
let ia32_efer = 0xC0000080

let s_cet_ibt_bit = 4L      (* bit 2: ENDBR_EN *)
let s_cet_shstk_bit = 1L    (* bit 0: SH_STK_EN *)
let uintr_tt_valid_bit = 1L

let create () = { table = Hashtbl.create 16; gen = 0; pkrs = 0; s_cet = 0 }

let read t idx =
  if idx = ia32_pkrs then Int64.of_int t.pkrs
  else if idx = ia32_s_cet then Int64.of_int t.s_cet
  else Option.value ~default:0L (Hashtbl.find_opt t.table idx)

let write t idx v =
  (if idx = ia32_pkrs then t.pkrs <- Int64.to_int v
   else if idx = ia32_s_cet then t.s_cet <- Int64.to_int v
   else if Int64.equal v 0L then Hashtbl.remove t.table idx
   else Hashtbl.replace t.table idx v);
  t.gen <- t.gen + 1

let pkrs_bits t = t.pkrs
let s_cet_bits t = t.s_cet

let write_pkrs_bits t v =
  t.pkrs <- v;
  t.gen <- t.gen + 1

let gen t = t.gen

let snapshot t =
  let base = List.of_seq (Hashtbl.to_seq t.table) in
  let base = if t.s_cet <> 0 then (ia32_s_cet, Int64.of_int t.s_cet) :: base else base in
  if t.pkrs <> 0 then (ia32_pkrs, Int64.of_int t.pkrs) :: base else base
