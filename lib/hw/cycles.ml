module Cost = struct
  (* Table 3 — round-trip privilege transitions. *)
  let syscall_roundtrip = 684
  let emc_roundtrip = 1224
  let tdcall_roundtrip = 5276
  let vmcall_roundtrip = 4031

  (* Table 4 — native privileged-operation execution. *)
  let pte_write_native = 23
  let cr_write_native = 294
  let msr_write_native = 364
  let lidt_native = 260
  let stac_native = 62
  let tdreport_native = 126806

  (* Table 4 — Erebor column minus the EMC round trip. *)
  let emc_service_mmu = 1345 - emc_roundtrip
  let emc_service_cr = 1593 - emc_roundtrip
  let emc_service_msr = 1613 - emc_roundtrip
  let emc_service_idt = 1369 - emc_roundtrip
  let emc_service_smap = 1291 - emc_roundtrip
  let emc_service_ghci = 128081 - emc_roundtrip

  (* General events; magnitudes consistent with LMBench on the paper's
     machine (a null syscall is ~684 cycles, a minor fault a few thousand). *)
  let page_fault_base = 1900
  let interrupt_delivery = 1100
  let context_switch = 1600
  let ve_handling = 450
  let monitor_exit_inspect = 380
  let monitor_state_mask = 290
  let spinlock_acquire = 40
  let libos_service = 210
  let usercopy_per_page = 320

  (* TME-MK backend: per-fill key-tag handling on keyed frames. TME-Box
     reports low single-digit-percent overheads; one extra AES-XTS key
     schedule selection per TLB fill models that. Charged only when a
     Tme.t is attached, so PKS-backend runs are unaffected. *)
  let tme_key_load = 28
end

type clock = { mutable now : int }

let clock () = { now = 0 }
let now c = c.now

let advance c n =
  if n < 0 then invalid_arg "Cycles.advance: negative duration";
  c.now <- c.now + n

let ghz = 2.1
let to_seconds cycles = float_of_int cycles /. (ghz *. 1e9)
