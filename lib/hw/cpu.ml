type mode = User | Supervisor

type t = {
  id : int;
  mem : Phys_mem.t;
  clock : Cycles.clock;
  mutable mode : mode;
  regs : int64 array;
  cr : Cr.t;
  msr : Msr.t;
  mutable ac : bool;
  tlb : Tlb.t;
  cet : Cet.t;
  mutable idt : Idt.t;
  apic : Apic.t;
  obs : Obs.Emitter.t;
  (* TME-MK key engine; None (the default, and the PKS backend) skips the
     key check entirely so the fill path is unchanged. *)
  mutable tme : Tme.t option;
  (* Cached access-check context: rebuilt only when one of its inputs
     changed (mode, EFLAGS.AC, any CR write, any MSR write), so the TLB-hit
     path does one record read instead of one record build per access. *)
  mutable actx : Access.ctx;
  mutable actx_mode : mode;
  mutable actx_ac : bool;
  mutable actx_cr_gen : int;
  mutable actx_msr_gen : int;
  (* Last-translation memo, one slot per access kind: a repeat access to
     the same page under an unchanged TLB epoch and context skips even the
     TLB probe and permission check (sequential scans, usercopy loops). *)
  mutable memo_epoch : int;
  mutable memo_r_vpn : int;
  mutable memo_r_base : int;
  mutable memo_w_vpn : int;
  mutable memo_w_base : int;
  mutable memo_x_vpn : int;
  mutable memo_x_base : int;
}

let nregs = 16

let create ?obs ~id ~mem ~clock ~timer_period () =
  let cr = Cr.create () in
  let msr = Msr.create () in
  {
    id;
    mem;
    clock;
    mode = Supervisor;
    regs = Array.make nregs 0L;
    cr;
    msr;
    ac = false;
    tlb = Tlb.create ();
    cet = Cet.create ();
    idt = Idt.create ();
    apic = Apic.create clock ~period:timer_period;
    obs = (match obs with Some e -> e | None -> Obs.Emitter.create ());
    tme = None;
    actx =
      {
        Access.user_mode = false;
        wp = false;
        smep = false;
        smap = false;
        pks = false;
        ac = false;
        pkrs = 0L;
      };
    actx_mode = Supervisor;
    actx_ac = false;
    actx_cr_gen = Cr.gen cr;
    actx_msr_gen = Msr.gen msr;
    memo_epoch = -1;
    memo_r_vpn = -1;
    memo_r_base = 0;
    memo_w_vpn = -1;
    memo_w_base = 0;
    memo_x_vpn = -1;
    memo_x_base = 0;
  }

let emit t kind ~arg = Obs.Emitter.emit t.obs kind ~ts:(Cycles.now t.clock) ~arg

let clear_memo t =
  t.memo_r_vpn <- -1;
  t.memo_w_vpn <- -1;
  t.memo_x_vpn <- -1

let rebuild_ctx t =
  t.actx <-
    {
      Access.user_mode = t.mode = User;
      wp = Cr.wp t.cr;
      smep = Cr.smep t.cr;
      smap = Cr.smap t.cr;
      pks = Cr.pks t.cr;
      ac = t.ac;
      pkrs = Msr.read t.msr Msr.ia32_pkrs;
    };
  t.actx_mode <- t.mode;
  t.actx_ac <- t.ac;
  t.actx_cr_gen <- Cr.gen t.cr;
  t.actx_msr_gen <- Msr.gen t.msr;
  clear_memo t

let access_ctx t =
  if
    not
      (t.actx_mode == t.mode && t.actx_ac = t.ac
      && t.actx_cr_gen = Cr.gen t.cr
      && t.actx_msr_gen = Msr.gen t.msr)
  then rebuild_ctx t;
  t.actx

let not_present_fault t ~kind vaddr =
  let f =
    Fault.Page_fault
      {
        Fault.addr = vaddr;
        kind;
        user = t.mode = User;
        present = false;
        pkey_violation = false;
      }
  in
  emit t Obs.Trace.Fault_raised ~arg:(Fault.vector f);
  Fault.raise_fault f

let tme_fault t ~kind vaddr detail =
  Obs.Emitter.audit_event t.obs ~ts:(Cycles.now t.clock) ~category:"tme"
    ~verdict:Obs.Audit.Deny detail;
  let f =
    Fault.Page_fault
      {
        Fault.addr = vaddr;
        kind;
        user = t.mode = User;
        present = true;
        pkey_violation = true;
      }
  in
  emit t Obs.Trace.Fault_raised ~arg:(Fault.vector f);
  Fault.raise_fault f

(* TME-MK key check, at fill time only: CR3 switches and guarded PTE
   stores flush the TLB, so every relevant permission change forces a
   refill through here. *)
let tme_check t tme ~kind vaddr ~pfn ~pte =
  match Tme.check tme ~pfn ~pte_keyid:(Pte.keyid pte) with
  | Tme.Plain -> ()
  | Tme.Keyed -> Cycles.advance t.clock Cycles.Cost.tme_key_load
  | Tme.Wrong_key (claimed, actual) ->
      tme_fault t ~kind vaddr (fun () ->
          Printf.sprintf "keyid mismatch pfn=%d pte_keyid=%d frame_tag=%d" pfn
            claimed actual)
  | Tme.Inactive_key (tagd, active) ->
      tme_fault t ~kind vaddr (fun () ->
          Printf.sprintf "inactive key pfn=%d frame_tag=%d active=%d" pfn tagd
            active)

(* TLB miss: walk, set accessed/dirty as hardware does, fill. *)
let tlb_fill t ~kind vaddr =
  match Page_table.walk t.mem ~root_pfn:(Cr.root_pfn t.cr) vaddr with
  | None -> not_present_fault t ~kind vaddr
  | Some w ->
      (match t.tme with
      | None -> ()
      | Some tme ->
          tme_check t tme ~kind vaddr ~pfn:w.Page_table.pfn ~pte:w.Page_table.pte);
      let updated = Pte.set_accessed w.Page_table.pte true in
      let updated = if kind = Fault.Write then Pte.set_dirty updated true else updated in
      if not (Int64.equal updated w.Page_table.pte) then
        Phys_mem.write_u64 t.mem w.Page_table.pte_addr updated;
      let packed =
        Tlb.pack ~pfn:w.Page_table.pfn ~user:w.Page_table.user
          ~writable:w.Page_table.writable ~nx:w.Page_table.nx
          ~pkey:(Pte.pkey w.Page_table.pte)
      in
      Tlb.insert t.tlb vaddr packed;
      emit t Obs.Trace.Tlb_fill ~arg:vaddr;
      packed

let translate t ~kind vaddr =
  let ctx = access_ctx t in
  let ep = Tlb.epoch t.tlb in
  if ep <> t.memo_epoch then begin
    t.memo_epoch <- ep;
    clear_memo t
  end;
  let vpn = vaddr lsr Phys_mem.page_shift in
  let off = vaddr land (Phys_mem.page_size - 1) in
  let memo_vpn =
    match kind with
    | Fault.Read -> t.memo_r_vpn
    | Fault.Write -> t.memo_w_vpn
    | Fault.Execute -> t.memo_x_vpn
  in
  if memo_vpn = vpn then
    (match kind with
    | Fault.Read -> t.memo_r_base
    | Fault.Write -> t.memo_w_base
    | Fault.Execute -> t.memo_x_base)
    lor off
  else begin
    let packed = Tlb.find t.tlb vpn in
    let packed = if packed >= 0 then packed else tlb_fill t ~kind vaddr in
    (match
       Access.check_bits ctx ~kind ~addr:vaddr ~user:(Tlb.packed_user packed)
         ~writable:(Tlb.packed_writable packed) ~nx:(Tlb.packed_nx packed)
         ~pkey:(Tlb.packed_pkey packed)
     with
    | Ok () -> ()
    | Error f ->
        emit t Obs.Trace.Fault_raised ~arg:(Fault.vector f);
        Fault.raise_fault f);
    let base = Tlb.packed_page_base packed in
    (* A fill bumped the TLB epoch; restamp before memoizing. *)
    let ep = Tlb.epoch t.tlb in
    if ep <> t.memo_epoch then begin
      t.memo_epoch <- ep;
      clear_memo t
    end;
    (match kind with
    | Fault.Read ->
        t.memo_r_vpn <- vpn;
        t.memo_r_base <- base
    | Fault.Write ->
        t.memo_w_vpn <- vpn;
        t.memo_w_base <- base
    | Fault.Execute ->
        t.memo_x_vpn <- vpn;
        t.memo_x_base <- base);
    base lor off
  end

let read_u8 t vaddr = Phys_mem.read_u8 t.mem (translate t ~kind:Fault.Read vaddr)
let write_u8 t vaddr v = Phys_mem.write_u8 t.mem (translate t ~kind:Fault.Write vaddr) v
let read_u64 t vaddr = Phys_mem.read_u64 t.mem (translate t ~kind:Fault.Read vaddr)
let write_u64 t vaddr v = Phys_mem.write_u64 t.mem (translate t ~kind:Fault.Write vaddr) v

(* Bulk accesses: one translation and one direct blit per touched page —
   no intermediate buffers. *)

let read_into t vaddr buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Cpu.read_into: slice out of range";
  let copied = ref 0 in
  while !copied < len do
    let va = vaddr + !copied in
    let pa = translate t ~kind:Fault.Read va in
    let chunk = min (Phys_mem.page_size - Phys_mem.page_offset va) (len - !copied) in
    Phys_mem.blit_to t.mem pa buf ~off:(off + !copied) ~len:chunk;
    copied := !copied + chunk
  done

let write_from t vaddr buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Cpu.write_from: slice out of range";
  let copied = ref 0 in
  while !copied < len do
    let va = vaddr + !copied in
    let pa = translate t ~kind:Fault.Write va in
    let chunk = min (Phys_mem.page_size - Phys_mem.page_offset va) (len - !copied) in
    Phys_mem.blit_from t.mem pa buf ~off:(off + !copied) ~len:chunk;
    copied := !copied + chunk
  done

let read_bytes t vaddr len =
  if len < 0 then invalid_arg "Cpu.read_bytes: negative length";
  let out = Bytes.create len in
  read_into t vaddr out ~off:0 ~len;
  out

let write_bytes t vaddr data = write_from t vaddr data ~off:0 ~len:(Bytes.length data)

let exec_check t vaddr = ignore (translate t ~kind:Fault.Execute vaddr)

let require_supervisor t what =
  if t.mode = User then
    Fault.raise_fault (Fault.General_protection (what ^ " from user mode"))

let write_msr t idx v =
  require_supervisor t "wrmsr";
  Msr.write t.msr idx v

let read_msr t idx =
  require_supervisor t "rdmsr";
  Msr.read t.msr idx

let write_cr3 t ~root_pfn =
  require_supervisor t "mov cr3";
  Cr.set_root t.cr root_pfn;
  Tlb.flush_all t.tlb

let set_cr_bit t ~reg bit v =
  require_supervisor t "mov cr";
  Cr.set_bit t.cr ~reg bit v

let lidt t idt =
  require_supervisor t "lidt";
  t.idt <- idt

let stac t =
  require_supervisor t "stac";
  t.ac <- true

let clac t =
  require_supervisor t "clac";
  t.ac <- false

let invlpg t vaddr = Tlb.flush_page t.tlb vaddr
let flush_tlb t = Tlb.flush_all t.tlb

let snapshot_regs t = Array.copy t.regs

let restore_regs t saved =
  if Array.length saved <> nregs then invalid_arg "Cpu.restore_regs: wrong size";
  Array.blit saved 0 t.regs 0 nregs

let scrub_regs t = Array.fill t.regs 0 nregs 0L
