type mode = User | Supervisor

type t = {
  id : int;
  mem : Phys_mem.t;
  clock : Cycles.clock;
  mutable mode : mode;
  regs : int64 array;
  cr : Cr.t;
  msr : Msr.t;
  mutable ac : bool;
  tlb : Tlb.t;
  cet : Cet.t;
  mutable idt : Idt.t;
  apic : Apic.t;
  obs : Obs.Emitter.t;
}

let nregs = 16

let create ?obs ~id ~mem ~clock ~timer_period () =
  {
    id;
    mem;
    clock;
    mode = Supervisor;
    regs = Array.make nregs 0L;
    cr = Cr.create ();
    msr = Msr.create ();
    ac = false;
    tlb = Tlb.create ();
    cet = Cet.create ();
    idt = Idt.create ();
    apic = Apic.create clock ~period:timer_period;
    obs = (match obs with Some e -> e | None -> Obs.Emitter.create ());
  }

let emit t kind ~arg = Obs.Emitter.emit t.obs kind ~ts:(Cycles.now t.clock) ~arg

let access_ctx t =
  {
    Access.user_mode = t.mode = User;
    wp = Cr.wp t.cr;
    smep = Cr.smep t.cr;
    smap = Cr.smap t.cr;
    pks = Cr.pks t.cr;
    ac = t.ac;
    pkrs = Msr.read t.msr Msr.ia32_pkrs;
  }

let not_present_fault t ~kind vaddr =
  let f =
    Fault.Page_fault
      {
        Fault.addr = vaddr;
        kind;
        user = t.mode = User;
        present = false;
        pkey_violation = false;
      }
  in
  emit t Obs.Trace.Fault_raised ~arg:(Fault.vector f);
  Fault.raise_fault f

let translate t ~kind vaddr =
  let entry =
    match Tlb.lookup t.tlb vaddr with
    | Some e -> e
    | None -> (
        match Page_table.walk t.mem ~root_pfn:(Cr.root_pfn t.cr) vaddr with
        | None -> not_present_fault t ~kind vaddr
        | Some w ->
            (* Hardware sets accessed on the walk and dirty on write. *)
            let updated = Pte.set_accessed w.Page_table.pte true in
            let updated = if kind = Fault.Write then Pte.set_dirty updated true else updated in
            if not (Int64.equal updated w.Page_table.pte) then
              Phys_mem.write_u64 t.mem w.Page_table.pte_addr updated;
            let e =
              {
                Tlb.pfn = w.Page_table.pfn;
                user = w.Page_table.user;
                writable = w.Page_table.writable;
                nx = w.Page_table.nx;
                pkey = Pte.pkey w.Page_table.pte;
              }
            in
            Tlb.insert t.tlb vaddr e;
            emit t Obs.Trace.Tlb_fill ~arg:vaddr;
            e)
  in
  let tr =
    {
      Access.user = entry.Tlb.user;
      writable = entry.Tlb.writable;
      nx = entry.Tlb.nx;
      pkey = entry.Tlb.pkey;
    }
  in
  (match Access.check (access_ctx t) ~kind ~addr:vaddr tr with
  | Ok () -> ()
  | Error f ->
      emit t Obs.Trace.Fault_raised ~arg:(Fault.vector f);
      Fault.raise_fault f);
  Phys_mem.addr_of_pfn entry.Tlb.pfn lor Phys_mem.page_offset vaddr

let read_u8 t vaddr = Phys_mem.read_u8 t.mem (translate t ~kind:Fault.Read vaddr)
let write_u8 t vaddr v = Phys_mem.write_u8 t.mem (translate t ~kind:Fault.Write vaddr) v
let read_u64 t vaddr = Phys_mem.read_u64 t.mem (translate t ~kind:Fault.Read vaddr)
let write_u64 t vaddr v = Phys_mem.write_u64 t.mem (translate t ~kind:Fault.Write vaddr) v

let read_bytes t vaddr len =
  if len < 0 then invalid_arg "Cpu.read_bytes: negative length";
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let va = vaddr + !copied in
    let pa = translate t ~kind:Fault.Read va in
    let chunk = min (Phys_mem.page_size - Phys_mem.page_offset va) (len - !copied) in
    Bytes.blit (Phys_mem.read_bytes t.mem pa chunk) 0 out !copied chunk;
    copied := !copied + chunk
  done;
  out

let write_bytes t vaddr data =
  let len = Bytes.length data in
  let copied = ref 0 in
  while !copied < len do
    let va = vaddr + !copied in
    let pa = translate t ~kind:Fault.Write va in
    let chunk = min (Phys_mem.page_size - Phys_mem.page_offset va) (len - !copied) in
    Phys_mem.write_bytes t.mem pa (Bytes.sub data !copied chunk);
    copied := !copied + chunk
  done

let exec_check t vaddr = ignore (translate t ~kind:Fault.Execute vaddr)

let require_supervisor t what =
  if t.mode = User then
    Fault.raise_fault (Fault.General_protection (what ^ " from user mode"))

let write_msr t idx v =
  require_supervisor t "wrmsr";
  Msr.write t.msr idx v

let read_msr t idx =
  require_supervisor t "rdmsr";
  Msr.read t.msr idx

let write_cr3 t ~root_pfn =
  require_supervisor t "mov cr3";
  Cr.set_root t.cr root_pfn;
  Tlb.flush_all t.tlb

let set_cr_bit t ~reg bit v =
  require_supervisor t "mov cr";
  Cr.set_bit t.cr ~reg bit v

let lidt t idt =
  require_supervisor t "lidt";
  t.idt <- idt

let stac t =
  require_supervisor t "stac";
  t.ac <- true

let clac t =
  require_supervisor t "clac";
  t.ac <- false

let invlpg t vaddr = Tlb.flush_page t.tlb vaddr
let flush_tlb t = Tlb.flush_all t.tlb

let snapshot_regs t = Array.copy t.regs

let restore_regs t saved =
  if Array.length saved <> nregs then invalid_arg "Cpu.restore_regs: wrong size";
  Array.blit saved 0 t.regs 0 nregs

let scrub_regs t = Array.fill t.regs 0 nregs 0L
