(** Simulated guest-physical memory: a flat array of 4 KiB frames with
    lazily-allocated backing bytes, so a multi-GiB guest costs host memory
    only for frames that are actually touched (plus one word of frame index
    per frame). Reads of never-written frames observe zeros, like
    freshly-assigned RAM. Frame lookup is a single array access — O(1) with
    no hashing — and bulk transfers blit page-by-page with no intermediate
    allocation. *)

val page_size : int  (** 4096. *)
val page_shift : int (** 12. *)

type t

val create : frames:int -> t
(** A physical address space of [frames] 4 KiB frames. *)

val frames : t -> int
val size_bytes : t -> int

val pfn_of_addr : int -> int
val addr_of_pfn : int -> int
val page_offset : int -> int

val valid_pfn : t -> int -> bool

val read_u8 : t -> int -> int
(** [read_u8 t paddr]. Raises [Invalid_argument] for out-of-range addresses. *)

val write_u8 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
(** Little-endian; must not cross a page boundary (8-byte aligned callers
    never do). *)

val write_u64 : t -> int -> int64 -> unit

val blit_to : t -> int -> bytes -> off:int -> len:int -> unit
(** [blit_to t paddr dst ~off ~len] copies physical memory into [dst] at
    [off]; may cross page boundaries. Unbacked frames read as zeros. One
    blit per touched frame, no intermediate allocation. *)

val blit_from : t -> int -> bytes -> off:int -> len:int -> unit
(** [blit_from t paddr src ~off ~len] copies [len] bytes of [src] starting
    at [off] into physical memory at [paddr]. *)

val copy : t -> src:int -> dst:int -> len:int -> unit
(** Physical-to-physical copy with no staging buffer (page duplication in
    fork, module loads). Copying from an unbacked frame zeros the
    destination range without materializing the source. *)

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t paddr len]; may cross page boundaries. Allocates only the
    result buffer ([blit_to] underneath). *)

val write_bytes : t -> int -> bytes -> unit

val zero_page : t -> int -> unit
(** [zero_page t pfn] clears a frame (sandbox teardown scrubbing). *)

val page_is_backed : t -> int -> bool
(** Whether the frame has materialized backing bytes (i.e. was written). *)

val backed_count : t -> int
(** Number of materialized frames — the simulator's own footprint metric. *)
