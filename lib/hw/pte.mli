(** Page-table-entry encoding, following the x86-64 layout: P/RW/US low
    flags, accessed/dirty, a 36-bit frame number at bit 12, protection key at
    bits 59–62 and NX at bit 63. Huge pages are deliberately unsupported —
    the paper's prototype disables them to keep PKS permission management at
    4 KiB granularity (§7). *)

type t = int64

val empty : t

type flags = {
  present : bool;
  writable : bool;
  user : bool;            (** U/S = 1: user-accessible page. *)
  nx : bool;              (** Non-executable. *)
  pkey : int;             (** Protection key 0–15. *)
  accessed : bool;
  dirty : bool;
}

val default_flags : flags
(** Present, writable, supervisor, executable, key 0. *)

val make : pfn:int -> flags -> t
(** Raises [Invalid_argument] for out-of-range pfn or key. *)

val pfn : t -> int
val flags : t -> flags
val present : t -> bool
val writable : t -> bool
val user : t -> bool
val nx : t -> bool
val pkey : t -> int
val dirty : t -> bool
val accessed : t -> bool

val huge : t -> bool
(** PS bit: at the page-directory level this entry maps a 2 MiB page. The
    paper's prototype disables huge pages (§7); this implementation carries
    them plus the forced-splitting path the paper leaves as future work. *)

val set_huge : t -> bool -> t

val with_pfn : t -> int -> t
val set_present : t -> bool -> t
val set_writable : t -> bool -> t
val set_user : t -> bool -> t
val set_nx : t -> bool -> t
val keyid_bits : int
(** Width of the keyid field (10 → ids 0–1023). *)

val keyid : t -> int
(** Memory-encryption key id (TME-MK style), carried in the otherwise-free
    physical-address upper bits 48–57. 0 means "no key" (shared/TME-global
    key); the walker packs it into TLB entries so key checks happen at fill
    time, mirroring how TME-MK derives the keyid from PTE address bits. *)

val set_keyid : t -> int -> t
(** Raises [Invalid_argument] outside 0–1023. *)

val set_pkey : t -> int -> t
val set_dirty : t -> bool -> t
val set_accessed : t -> bool -> t

val pp : Format.formatter -> t -> unit
