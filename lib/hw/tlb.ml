(* Direct-mapped TLB. Each slot packs a whole translation into one
   immediate int so the hit path allocates nothing:

     bit 0        user       (U/S ANDed across the walk)
     bit 1        writable   (R/W ANDed across the walk)
     bit 2        nx         (NX ORed across the walk)
     bits 4..7    pkey       (leaf protection key)
     bits 12..    pfn        (i.e. bits 12.. are the physical page base)

   [flush_all] is O(1): slots carry the generation they were filled in and
   a stale generation means invalid. [epoch] counts every mutation (fills
   and flushes) so callers can memoize translations safely. *)

let slots = 8192
let mask = slots - 1

type t = {
  tags : int array;   (* vpn, or -1 for never-filled *)
  entries : int array;
  gens : int array;
  mutable gen : int;
  mutable epoch : int;
  mutable hits : int;
  mutable misses : int;
}

let vpn vaddr = vaddr lsr Phys_mem.page_shift

let create () =
  {
    tags = Array.make slots (-1);
    entries = Array.make slots 0;
    gens = Array.make slots (-1);
    gen = 0;
    epoch = 0;
    hits = 0;
    misses = 0;
  }

let pack ~pfn ~user ~writable ~nx ~pkey =
  (pfn lsl Phys_mem.page_shift)
  lor ((pkey land 0xf) lsl 4)
  lor (if nx then 4 else 0)
  lor (if writable then 2 else 0)
  lor (if user then 1 else 0)

let packed_user e = e land 1 <> 0
let packed_writable e = e land 2 <> 0
let packed_nx e = e land 4 <> 0
let packed_pkey e = (e lsr 4) land 0xf
let packed_page_base e = e land lnot (Phys_mem.page_size - 1)
let packed_pfn e = e lsr Phys_mem.page_shift

(* [find t vpn] is the packed entry, or -1 on miss. Counts hits/misses. *)
let find t vp =
  let i = vp land mask in
  if Array.unsafe_get t.tags i = vp && Array.unsafe_get t.gens i = t.gen then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.entries i
  end
  else begin
    t.misses <- t.misses + 1;
    -1
  end

let insert t vaddr packed =
  let vp = vpn vaddr in
  let i = vp land mask in
  t.tags.(i) <- vp;
  t.entries.(i) <- packed;
  t.gens.(i) <- t.gen;
  t.epoch <- t.epoch + 1

let flush_page t vaddr =
  let vp = vpn vaddr in
  let i = vp land mask in
  if t.tags.(i) = vp then t.tags.(i) <- -1;
  t.epoch <- t.epoch + 1

let flush_all t =
  t.gen <- t.gen + 1;
  t.epoch <- t.epoch + 1

let epoch t = t.epoch
let hits t = t.hits
let misses t = t.misses

let entries t =
  let n = ref 0 in
  for i = 0 to slots - 1 do
    if t.tags.(i) >= 0 && t.gens.(i) = t.gen then incr n
  done;
  !n
