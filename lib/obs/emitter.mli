(** The event bus: fans each emitted event out to every attached sink.

    Sinks are plain callbacks stored in an array; [emit] with no sinks is a
    bounds check and a loop over zero elements, so instrumented code paths
    stay cheap when nobody is listening. Emission NEVER advances the virtual
    clock — observability is free in simulated time, which is what keeps the
    calibrated tables byte-identical with tracing on or off. *)

type sink = Trace.kind -> ts:int -> arg:int -> unit

type t

val create : unit -> t
val attach : t -> sink -> unit
val sink_count : t -> int
val emit : t -> Trace.kind -> ts:int -> arg:int -> unit
