(** The event bus: fans each emitted event out to every attached sink.

    Sinks are plain callbacks stored in an array; [emit] with no sinks is a
    bounds check and a loop over zero elements, so instrumented code paths
    stay cheap when nobody is listening. Emission NEVER advances the virtual
    clock — observability is free in simulated time, which is what keeps the
    calibrated tables byte-identical with tracing on or off.

    Two side rails ride along with the int-arg bus: an optional {!Audit}
    chain for structured security decisions ({!audit_event}), and a
    finalizer registry ({!add_finalizer}/{!finalize}) so sinks with buffered
    state get flushed even on abnormal exit. *)

type sink = Trace.kind -> ts:int -> arg:int -> unit

type t

val create : unit -> t
val attach : t -> sink -> unit
val sink_count : t -> int
val emit : t -> Trace.kind -> ts:int -> arg:int -> unit

(** {2 Audit rail} *)

val set_audit : t -> Audit.t option -> unit
(** Attach (or detach) the audit chain decisions are appended to. *)

val audit : t -> Audit.t option

val audit_event : t -> ts:int -> category:string -> verdict:Audit.verdict ->
  (unit -> string) -> unit
(** Append a decision record if an audit chain is attached. The detail
    thunk only runs when one is, keeping un-audited runs allocation-free. *)

(** {2 Finalizers} *)

val add_finalizer : t -> (now:int -> unit) -> unit
(** Register a flush/close hook, run in registration order by
    {!finalize}. *)

val finalize : t -> now:int -> unit
(** Run all registered finalizers and finalize the attached audit chain (if
    any). Idempotent: only the first call runs anything, so both the normal
    exit path and an exception handler may call it. *)

val finalized : t -> bool
