(* Metrics registry: renders counter / histogram / attribution sinks as
   Prometheus text exposition (format 0.0.4) or JSON. Purely a formatter —
   the registry holds references to sinks owned elsewhere and reads them at
   render time, so registering costs nothing during a run. *)

type source = {
  label : string;
  counter : Counter.t option;
  histogram : Histogram.t option;
  attrib : Attrib.t option;
  window : Window.t option;
  sketch : Sketch.t option;
  exemplar : Exemplar.t option;
}

type t = { namespace : string; mutable sources : source list (* reversed *) }

let create ?(namespace = "erebor") () = { namespace; sources = [] }

let add t ~label ?counter ?histogram ?attrib ?window ?sketch ?exemplar () =
  t.sources <-
    { label; counter; histogram; attrib; window; sketch; exemplar }
    :: t.sources

let sources t = List.rev t.sources

(* Escaping per the exposition format: label values escape backslash,
   double-quote and newline; HELP text escapes backslash and newline. *)
let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unattributed_domain = "none"
let unattributed_phase = "(outside)"

let to_prometheus t =
  let buf = Buffer.create 4096 in
  let ns = t.namespace in
  let srcs = sources t in
  let header ?unit_ name typ help =
    Printf.bprintf buf "# HELP %s_%s %s\n# TYPE %s_%s %s\n" ns name help ns
      name typ;
    (* OpenMetrics: a UNIT line for families whose name carries a unit
       suffix. *)
    match unit_ with
    | None -> ()
    | Some u -> Printf.bprintf buf "# UNIT %s_%s %s\n" ns name u
  in
  let family ?unit_ name typ help render =
    let started = ref false in
    List.iter
      (fun s ->
        render s (fun line ->
            if not !started then begin
              started := true;
              header ?unit_ name typ help
            end;
            Buffer.add_string buf line))
      srcs
  in
  family "events_total" "counter" "Events observed per trace kind."
    (fun s out ->
      match s.counter with
      | None -> ()
      | Some c ->
          List.iter
            (fun kind ->
              let n = Counter.count c kind in
              if n > 0 then
                out
                  (Printf.sprintf "%s_events_total{source=\"%s\",kind=\"%s\"} %d\n"
                     ns (escape_label s.label)
                     (escape_label (Trace.name kind))
                     n))
            Trace.all);
  family "event_arg_total" "counter"
    "Sum of event arguments per kind (cycles, bytes or ids)." (fun s out ->
      match s.counter with
      | None -> ()
      | Some c ->
          List.iter
            (fun kind ->
              if Counter.count c kind > 0 then
                out
                  (Printf.sprintf
                     "%s_event_arg_total{source=\"%s\",kind=\"%s\"} %d\n" ns
                     (escape_label s.label)
                     (escape_label (Trace.name kind))
                     (Counter.arg_sum c kind)))
            Trace.all);
  family "cycles_attributed_total" "counter"
    "Virtual cycles attributed per (privilege domain, phase)." (fun s out ->
      match s.attrib with
      | None -> ()
      | Some a ->
          let row domain phase cycles =
            out
              (Printf.sprintf
                 "%s_cycles_attributed_total{source=\"%s\",domain=\"%s\",phase=\"%s\"} %d\n"
                 ns (escape_label s.label) (escape_label domain)
                 (escape_label phase) cycles)
          in
          let u = Attrib.unattributed a in
          if u > 0 then row unattributed_domain unattributed_phase u;
          List.iter
            (fun (d, p, cycles) ->
              row (Trace.domain_name d) (Trace.phase_name p) cycles)
            (Attrib.breakdown a));
  (* Window-scoped series: gauges over the sliding window, not lifetime
     counters — they describe "now", and age out with the ring. *)
  family "window_events" "gauge"
    "Events in the sliding window per trace kind." (fun s out ->
      match s.window with
      | None -> ()
      | Some w ->
          List.iter
            (fun kind ->
              let n = Window.count w kind in
              if n > 0 then
                out
                  (Printf.sprintf
                     "%s_window_events{source=\"%s\",kind=\"%s\"} %d\n" ns
                     (escape_label s.label)
                     (escape_label (Trace.name kind))
                     n))
            Trace.all);
  family "window_rate" "gauge"
    "Events per virtual second over the sliding window." (fun s out ->
      match s.window with
      | None -> ()
      | Some w ->
          List.iter
            (fun kind ->
              if Window.count w kind > 0 then
                out
                  (Printf.sprintf
                     "%s_window_rate{source=\"%s\",kind=\"%s\"} %.2f\n" ns
                     (escape_label s.label)
                     (escape_label (Trace.name kind))
                     (Window.rate w kind)))
            Trace.all);
  family "window_arg" "gauge"
    "Event-argument quantiles over the sliding window (merge-on-read)."
    (fun s out ->
      match s.window with
      | None -> ()
      | Some w ->
          List.iter
            (fun kind ->
              if Window.hist_tracked w kind && Window.count w kind > 0 then
                List.iter
                  (fun (q, p) ->
                    out
                      (Printf.sprintf
                         "%s_window_arg{source=\"%s\",kind=\"%s\",quantile=\"%s\"} %d\n"
                         ns (escape_label s.label)
                         (escape_label (Trace.name kind))
                         q
                         (Window.percentile w kind ~p)))
                  [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ])
            Trace.all);
  family "event_arg" "histogram"
    "Event-argument distribution per kind (log2 buckets)." (fun s out ->
      match s.histogram with
      | None -> ()
      | Some h ->
          List.iter
            (fun kind ->
              let n = Histogram.count h kind in
              if n > 0 then begin
                let labels =
                  Printf.sprintf "source=\"%s\",kind=\"%s\""
                    (escape_label s.label)
                    (escape_label (Trace.name kind))
                in
                let cum = ref 0 in
                List.iter
                  (fun (_, hi, c) ->
                    cum := !cum + c;
                    out
                      (Printf.sprintf "%s_event_arg_bucket{%s,le=\"%d\"} %d\n"
                         ns labels hi !cum))
                  (Histogram.buckets h kind);
                out
                  (Printf.sprintf "%s_event_arg_bucket{%s,le=\"+Inf\"} %d\n" ns
                     labels n);
                out
                  (Printf.sprintf "%s_event_arg_sum{%s} %d\n" ns labels
                     (Histogram.sum h kind));
                out (Printf.sprintf "%s_event_arg_count{%s} %d\n" ns labels n)
              end)
            Trace.all);
  (* Sketch-backed families (fleet telemetry). The histogram exposition
     re-buckets the sketch onto the log2 exemplar bands so each bucket
     line can carry that band's OpenMetrics exemplar:
       ..._bucket{le="1023"} 412 # {trace_id="0x2a",...} 987 55        *)
  let sketch_band_counts sk =
    let bands = Array.make Exemplar.n_bands 0 in
    bands.(0) <- Sketch.zeros sk;
    List.iter
      (fun (i, c) ->
        let b = Exemplar.band_of (Sketch.estimate sk i) in
        bands.(b) <- bands.(b) + c)
      (Sketch.buckets sk);
    bands
  in
  let exemplar_suffix s band =
    match s.exemplar with
    | None -> ""
    | Some ex -> (
        match Exemplar.best ex ~band with
        | None -> ""
        | Some e ->
            Printf.sprintf
              " # {trace_id=\"%#x\",machine=\"%s\",offset=\"%d\"} %d %d"
              e.Exemplar.i_trace_id
              (escape_label e.Exemplar.i_machine)
              e.Exemplar.i_offset e.Exemplar.i_latency e.Exemplar.i_ts)
  in
  family ~unit_:"cycles" "sketch_latency_cycles" "histogram"
    "Request-latency distribution from the mergeable quantile sketch \
     (log2 exposition bands; bucket lines carry OpenMetrics exemplars)."
    (fun s out ->
      match s.sketch with
      | None -> ()
      | Some sk ->
          let n = Sketch.count sk in
          if n > 0 then begin
            let labels =
              Printf.sprintf "source=\"%s\"" (escape_label s.label)
            in
            let bands = sketch_band_counts sk in
            let cum = ref 0 in
            for b = 0 to Exemplar.n_bands - 1 do
              if bands.(b) > 0 then begin
                cum := !cum + bands.(b);
                out
                  (Printf.sprintf
                     "%s_sketch_latency_cycles_bucket{%s,le=\"%d\"} %d%s\n" ns
                     labels (Exemplar.band_hi b) !cum (exemplar_suffix s b))
              end
            done;
            out
              (Printf.sprintf
                 "%s_sketch_latency_cycles_bucket{%s,le=\"+Inf\"} %d\n" ns
                 labels n);
            out
              (Printf.sprintf "%s_sketch_latency_cycles_sum{%s} %d\n" ns labels
                 (Sketch.sum sk));
            out
              (Printf.sprintf "%s_sketch_latency_cycles_count{%s} %d\n" ns
                 labels n)
          end);
  family ~unit_:"cycles" "sketch_quantile_cycles" "summary"
    "Request-latency quantiles from the mergeable sketch (relative-error \
     bounded, merge-order invariant)."
    (fun s out ->
      match s.sketch with
      | None -> ()
      | Some sk ->
          let n = Sketch.count sk in
          if n > 0 then begin
            let labels =
              Printf.sprintf "source=\"%s\"" (escape_label s.label)
            in
            List.iter
              (fun (q, p) ->
                out
                  (Printf.sprintf
                     "%s_sketch_quantile_cycles{%s,quantile=\"%s\"} %d\n" ns
                     labels q (Sketch.quantile sk ~p)))
              [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ];
            out
              (Printf.sprintf "%s_sketch_quantile_cycles_sum{%s} %d\n" ns
                 labels (Sketch.sum sk));
            out
              (Printf.sprintf "%s_sketch_quantile_cycles_count{%s} %d\n" ns
                 labels n)
          end);
  (* OpenMetrics requires the exposition to end with an EOF marker. *)
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* JSON rendering of the same data, one object per source. *)

let escape_json s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  let comma first = if !first then first := false else Buffer.add_char buf ',' in
  Printf.bprintf buf "{\"namespace\":\"%s\",\"sources\":[" (escape_json t.namespace);
  let first_src = ref true in
  List.iter
    (fun s ->
      comma first_src;
      Printf.bprintf buf "{\"label\":\"%s\"" (escape_json s.label);
      (match s.counter with
      | None -> ()
      | Some c ->
          Buffer.add_string buf ",\"events\":[";
          let first = ref true in
          List.iter
            (fun kind ->
              let n = Counter.count c kind in
              if n > 0 then begin
                comma first;
                Printf.bprintf buf
                  "{\"kind\":\"%s\",\"count\":%d,\"arg_sum\":%d}"
                  (escape_json (Trace.name kind))
                  n (Counter.arg_sum c kind)
              end)
            Trace.all;
          Buffer.add_string buf "]");
      (match s.histogram with
      | None -> ()
      | Some h ->
          Buffer.add_string buf ",\"histograms\":[";
          let first = ref true in
          List.iter
            (fun kind ->
              let n = Histogram.count h kind in
              if n > 0 then begin
                comma first;
                Printf.bprintf buf
                  "{\"kind\":\"%s\",\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"buckets\":["
                  (escape_json (Trace.name kind))
                  n (Histogram.sum h kind)
                  (Histogram.max_value h kind)
                  (Histogram.percentile h kind ~p:0.50)
                  (Histogram.percentile h kind ~p:0.95)
                  (Histogram.percentile h kind ~p:0.99);
                let first_b = ref true in
                List.iter
                  (fun (lo, hi, c) ->
                    comma first_b;
                    Printf.bprintf buf "{\"lo\":%d,\"hi\":%d,\"count\":%d}" lo
                      hi c)
                  (Histogram.buckets h kind);
                Buffer.add_string buf "]}"
              end)
            Trace.all;
          Buffer.add_string buf "]");
      (match s.attrib with
      | None -> ()
      | Some a ->
          Printf.bprintf buf
            ",\"attribution\":{\"total\":%d,\"unattributed\":%d,\"contexts\":["
            (Attrib.total a) (Attrib.unattributed a);
          let first = ref true in
          List.iter
            (fun (d, p, cycles) ->
              comma first;
              Printf.bprintf buf
                "{\"domain\":\"%s\",\"phase\":\"%s\",\"cycles\":%d}"
                (Trace.domain_name d)
                (escape_json (Trace.phase_name p))
                cycles)
            (Attrib.breakdown a);
          Buffer.add_string buf "]}");
      (match s.window with
      | None -> ()
      | Some w ->
          Buffer.add_string buf ",\"window\":";
          Buffer.add_string buf (Window.to_json w ()));
      (match s.sketch with
      | None -> ()
      | Some sk ->
          Printf.bprintf buf
            ",\"sketch\":{\"alpha\":%g,\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
            (Sketch.alpha sk) (Sketch.count sk) (Sketch.sum sk)
            (Sketch.min_value sk) (Sketch.max_value sk)
            (Sketch.quantile sk ~p:0.50) (Sketch.quantile sk ~p:0.95)
            (Sketch.quantile sk ~p:0.99));
      (match s.exemplar with
      | None -> ()
      | Some ex ->
          Buffer.add_string buf ",\"exemplars\":[";
          let first = ref true in
          List.iter
            (fun (b, (e : Exemplar.item)) ->
              comma first;
              Printf.bprintf buf
                "{\"band_lo\":%d,\"band_hi\":%d,\"latency\":%d,\"trace_id\":%d,\"machine\":\"%s\",\"offset\":%d,\"ts\":%d}"
                (Exemplar.band_lo b) (Exemplar.band_hi b) e.Exemplar.i_latency
                e.Exemplar.i_trace_id
                (escape_json e.Exemplar.i_machine)
                e.Exemplar.i_offset e.Exemplar.i_ts)
            (Exemplar.items ex);
          Buffer.add_string buf "]");
      Buffer.add_string buf "}")
    (sources t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
