(* Shared varint plumbing for the telemetry wire formats (Sketch, Topk,
   Exemplar, Agg). LEB128 for non-negative ints, zigzag on top for
   signed fields. Internal to the library — obs.ml does not re-export
   it. *)

exception Bad of string

let put_varint buf v =
  if v < 0 then invalid_arg "Sketch_wire.put_varint: negative";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let put_signed buf v = put_varint buf ((v lsl 1) lxor (v asr 62))

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    if !pos >= String.length s then raise (Bad "truncated varint");
    if !shift > 56 then raise (Bad "varint overflow");
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := b land 0x80 <> 0
  done;
  !v

let get_signed s pos =
  let v = get_varint s pos in
  (v lsr 1) lxor (-(v land 1))

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let get_string s pos =
  let len = get_varint s pos in
  if !pos + len > String.length s then raise (Bad "truncated string");
  let r = String.sub s !pos len in
  pos := !pos + len;
  r
