(* Bounded post-mortem buffer: three parallel int/kind arrays, head index,
   wraparound. The oldest events are overwritten; [dropped] counts them. *)

type t = {
  capacity : int;
  kinds : Trace.kind array;
  tss : int array;
  args : int array;
  mutable next : int;
  mutable stored : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    capacity;
    kinds = Array.make capacity Trace.Emc_entry;
    tss = Array.make capacity 0;
    args = Array.make capacity 0;
    next = 0;
    stored = 0;
    dropped = 0;
  }

let sink t kind ~ts ~arg =
  t.kinds.(t.next) <- kind;
  t.tss.(t.next) <- ts;
  t.args.(t.next) <- arg;
  t.next <- (t.next + 1) mod t.capacity;
  if t.stored < t.capacity then t.stored <- t.stored + 1
  else t.dropped <- t.dropped + 1

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let capacity t = t.capacity
let length t = t.stored
let dropped t = t.dropped

let to_list t =
  let first = (t.next - t.stored + t.capacity) mod t.capacity in
  List.init t.stored (fun i ->
      let j = (first + i) mod t.capacity in
      { Trace.kind = t.kinds.(j); ts = t.tss.(j); arg = t.args.(j) })

let clear t =
  t.next <- 0;
  t.stored <- 0;
  t.dropped <- 0
