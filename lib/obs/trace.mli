(** The event taxonomy of the observability subsystem.

    Every privilege-relevant occurrence in the simulated stack — EMCs by
    kind, syscalls, page faults, timer IRQs, #VE exits, context switches,
    tdcalls/vmcalls, TLB refills, hardware faults, MMU-guard denials,
    channel traffic and sandbox lifecycle — is one {!kind}. Kinds map to a
    dense integer range [0, n_kinds) via {!index}, so sinks can be plain
    arrays and emission never allocates.

    For cycle attribution, span {!phase}s carry two extra dimensions: a
    dense index ({!phase_index}) and a privilege {!domain}
    ({!phase_domain}), so an attribution context is (domain x phase) with
    the domain implied by the phase. *)

type emc_kind = Mmu | Cr | Msr | Idt | Smap | Ghci

type domain = User | Kernel | Monitor | Host
(** Privilege domains: who the virtual CPU is working for when time passes.
    [User] is sandbox/workload execution, [Kernel] the untrusted guest
    kernel, [Monitor] Erebor's virtual privileged mode, and [Host] the
    hypervisor side of a VM exit. *)

val n_domains : int
val all_domains : domain list
val domain_index : domain -> int
(** Dense, stable index in [0, n_domains). *)

val domain_name : domain -> string

(** Span phases: the coarse lifecycle spans (machine assembly, kernel-image
    byte scan, attested channel handshake, workload body) plus the
    fine-grained handler/service phases the cycle-attribution profiler
    decomposes a run into. *)
type phase =
  | Boot                (** Machine assembly. *)
  | Scan                (** Kernel-image byte scan. *)
  | Attest              (** Attested-channel handshake. *)
  | Run                 (** Workload body. *)
  | Emc_gate            (** EMC entry/exit round trip (the gate itself). *)
  | Svc_mmu             (** EMC service body, per privop kind. *)
  | Svc_cr
  | Svc_msr
  | Svc_idt
  | Svc_smap
  | Svc_ghci
  | Ve_handler          (** #VE exit + host round trip. *)
  | Pf_handler          (** Page-fault service. *)
  | Timer_handler       (** Timer-IRQ delivery. *)
  | Syscall_dispatch    (** Syscall entry + kernel dispatch. *)
  | Channel_crypto      (** Attested-channel seal/open. *)
  | Scheduler           (** Context switch. *)
  | Exit_interpose      (** Monitor exit interposition. *)

val n_phases : int
val phase_index : phase -> int
(** Dense, stable index in [0, n_phases). *)

val phase_of_index : int -> phase
(** Inverse of {!phase_index}; raises on out-of-range input. *)

val phase_name : phase -> string
val phase_domain : phase -> domain
(** The privilege domain a phase's cycles are attributed to. *)

val gate_phase : emc_kind -> phase
(** The EMC service-body phase for a privop kind ([Mmu] -> [Svc_mmu], ...). *)

type kind =
  | Emc_entry            (** One gate round trip; arg = measured cycles. *)
  | Emc of emc_kind      (** One privop service; arg = service cycles charged. *)
  | Syscall              (** arg = syscall code. *)
  | Page_fault           (** arg = faulting address. *)
  | Segfault             (** arg = faulting address. *)
  | Timer_irq
  | Ve_exit
  | Context_switch       (** arg = next task's tid. *)
  | Tdcall               (** arg = measured cycles. *)
  | Vmcall               (** arg = measured cycles. *)
  | Tlb_fill             (** arg = virtual address. *)
  | Fault_raised         (** arg = hardware vector. *)
  | Mmu_deny
  | Channel_send         (** arg = payload bytes. *)
  | Channel_recv         (** arg = payload bytes. *)
  | Sandbox_create       (** arg = sandbox id. *)
  | Sandbox_seal         (** arg = sandbox id. *)
  | Sandbox_kill         (** arg = sandbox id. *)
  | Sandbox_exit         (** arg = sandbox id. *)
  | Req_begin            (** Request window opens; arg = packed trace ctx
                             ([Request.pack]). *)
  | Req_end              (** Request window closes; arg = packed trace ctx. *)
  | Slo_alert            (** SLO burn-rate alert transition; arg =
                             [objective index lsl 1 lor fired] (see {!Slo}). *)
  | Health_transition    (** Health state change; arg =
                             [subject id lsl 2 lor state index] (see
                             {!Health}). *)
  | Span_begin of phase
  | Span_end of phase

type event = { kind : kind; ts : int; arg : int }
(** [ts] is the virtual-cycle timestamp at emission. *)

val n_kinds : int
val index : kind -> int
(** Dense, stable index in [0, n_kinds). *)

val kind_of_index : int -> kind
(** Inverse of {!index}; raises on out-of-range input. Used by offline
    readers ({!Journal}) to rehydrate events from their wire indices. *)

val name : kind -> string
(** Stable wire name ("emc.mmu", "page_fault", ...; spans use the phase
    name). *)

(** {2 Preallocated constants (allocation-free emission)} *)

val emc_mmu : kind
val emc_cr : kind
val emc_msr : kind
val emc_idt : kind
val emc_smap : kind
val emc_ghci : kind

val emc_event : emc_kind -> kind
(** The preallocated [Emc k] constant for a privop kind. *)

val span_begin : phase -> kind
val span_end : phase -> kind

val all_phases : phase list
val all : kind list
(** Every kind, in {!index} order. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
