(** The event taxonomy of the observability subsystem.

    Every privilege-relevant occurrence in the simulated stack — EMCs by
    kind, syscalls, page faults, timer IRQs, #VE exits, context switches,
    tdcalls/vmcalls, TLB refills, hardware faults, MMU-guard denials,
    channel traffic and sandbox lifecycle — is one {!kind}. Kinds map to a
    dense integer range [0, n_kinds) via {!index}, so sinks can be plain
    arrays and emission never allocates. *)

type emc_kind = Mmu | Cr | Msr | Idt | Smap | Ghci

type phase = Boot | Scan | Attest | Run
(** Span phases: machine assembly, kernel-image byte scan, attested channel
    handshake, workload body. *)

type kind =
  | Emc_entry            (** One gate round trip; arg = measured cycles. *)
  | Emc of emc_kind      (** One privop service; arg = service cycles charged. *)
  | Syscall              (** arg = syscall code. *)
  | Page_fault           (** arg = faulting address. *)
  | Segfault             (** arg = faulting address. *)
  | Timer_irq
  | Ve_exit
  | Context_switch       (** arg = next task's tid. *)
  | Tdcall               (** arg = measured cycles. *)
  | Vmcall               (** arg = measured cycles. *)
  | Tlb_fill             (** arg = virtual address. *)
  | Fault_raised         (** arg = hardware vector. *)
  | Mmu_deny
  | Channel_send         (** arg = payload bytes. *)
  | Channel_recv         (** arg = payload bytes. *)
  | Sandbox_create       (** arg = sandbox id. *)
  | Sandbox_seal         (** arg = sandbox id. *)
  | Sandbox_kill         (** arg = sandbox id. *)
  | Sandbox_exit         (** arg = sandbox id. *)
  | Span_begin of phase
  | Span_end of phase

type event = { kind : kind; ts : int; arg : int }
(** [ts] is the virtual-cycle timestamp at emission. *)

val n_kinds : int
val index : kind -> int
(** Dense, stable index in [0, n_kinds). *)

val name : kind -> string
(** Stable wire name ("emc.mmu", "page_fault", ...; spans use the phase
    name). *)

val phase_name : phase -> string

(** {2 Preallocated constants (allocation-free emission)} *)

val emc_mmu : kind
val emc_cr : kind
val emc_msr : kind
val emc_idt : kind
val emc_smap : kind
val emc_ghci : kind
val span_begin : phase -> kind
val span_end : phase -> kind

val all_phases : phase list
val all : kind list
(** Every kind, in {!index} order. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
