(* Per-latency-band exemplar reservoir.

   A streaming sketch cannot know which requests will end up at p99, so
   exemplars are kept per log2 latency band (same banding as
   Histogram.bucket_of) and the band -> quantile mapping happens at read
   time: the aggregator asks for the band containing its merged
   quantile estimate and exports that band's exemplar. Each band keeps
   the single "best" request under a total order (latency descending,
   then trace id, machine, journal offset, timestamp ascending), so
   keep-the-winner is idempotent, commutative and associative and the
   merged reservoir is canonical for any merge order.

   The record path writes into preallocated mutable slots — no
   allocation in steady state (the machine name stored is the caller's
   existing string). *)

let n_bands = Histogram.n_buckets
let band_of = Histogram.bucket_of
let band_lo = Histogram.bucket_lo
let band_hi = Histogram.bucket_hi

type slot = {
  mutable occupied : bool;
  mutable latency : int;
  mutable trace_id : int;
  mutable machine : string;
  mutable offset : int; (* journal byte offset of the frame holding the
                           request-end event; -1 when not recording *)
  mutable ts : int; (* virtual timestamp of the request end *)
}

type t = { slots : slot array }

type item = {
  i_latency : int;
  i_trace_id : int;
  i_machine : string;
  i_offset : int;
  i_ts : int;
}

let create () =
  {
    slots =
      Array.init n_bands (fun _ ->
          {
            occupied = false;
            latency = 0;
            trace_id = 0;
            machine = "";
            offset = -1;
            ts = 0;
          });
  }

(* Does the challenger beat the occupant? Total order => deterministic,
   merge-order-invariant winners. *)
let beats ~latency ~trace_id ~machine ~offset ~ts (s : slot) =
  latency > s.latency
  || (latency = s.latency
      && (trace_id < s.trace_id
         || (trace_id = s.trace_id
             && (machine < s.machine
                || (machine = s.machine
                   && (offset < s.offset
                      || (offset = s.offset && ts < s.ts)))))))

let record t ~latency ~trace_id ~machine ~offset ~ts =
  let s = t.slots.(band_of latency) in
  if (not s.occupied) || beats ~latency ~trace_id ~machine ~offset ~ts s then begin
    s.occupied <- true;
    s.latency <- latency;
    s.trace_id <- trace_id;
    s.machine <- machine;
    s.offset <- offset;
    s.ts <- ts
  end

let merge ~into src =
  if into == src then invalid_arg "Exemplar.merge: cannot merge into itself";
  for b = 0 to n_bands - 1 do
    let s = src.slots.(b) in
    if s.occupied then
      record into ~latency:s.latency ~trace_id:s.trace_id ~machine:s.machine
        ~offset:s.offset ~ts:s.ts
  done

let item_of (s : slot) =
  {
    i_latency = s.latency;
    i_trace_id = s.trace_id;
    i_machine = s.machine;
    i_offset = s.offset;
    i_ts = s.ts;
  }

let best t ~band =
  if band < 0 || band >= n_bands then None
  else
    let s = t.slots.(band) in
    if s.occupied then Some (item_of s) else None

(* The exemplar for a latency value: the one in [value]'s own band, or,
   if that band is empty (the merged quantile estimate may round into a
   band no concrete request hit), the nearest occupied band below, then
   above. *)
let for_value t value =
  let b0 = band_of value in
  let rec down b = if b < 0 then None else best t ~band:b |> function
    | Some _ as r -> r
    | None -> down (b - 1)
  in
  match down b0 with
  | Some _ as r -> r
  | None ->
      let rec up b =
        if b >= n_bands then None
        else best t ~band:b |> function Some _ as r -> r | None -> up (b + 1)
      in
      up (b0 + 1)

let items t =
  let out = ref [] in
  for b = n_bands - 1 downto 0 do
    if t.slots.(b).occupied then out := (b, item_of t.slots.(b)) :: !out
  done;
  !out

(* "EXM1" magic, varint band count, then per occupied band (ascending):
   band, latency, trace_id, machine string, offset+1 (so -1 encodes as
   an unsigned 0), ts. Canonical because the state is. *)
let serialize t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "EXM1";
  let occ = List.length (items t) in
  Sketch_wire.put_varint buf occ;
  Array.iteri
    (fun b (s : slot) ->
      if s.occupied then begin
        Sketch_wire.put_varint buf b;
        Sketch_wire.put_varint buf s.latency;
        Sketch_wire.put_varint buf s.trace_id;
        Sketch_wire.put_string buf s.machine;
        Sketch_wire.put_signed buf s.offset;
        Sketch_wire.put_signed buf s.ts
      end)
    t.slots;
  Buffer.contents buf

let deserialize str =
  try
    if String.length str < 4 || String.sub str 0 4 <> "EXM1" then
      raise (Sketch_wire.Bad "exemplar: bad magic");
    let pos = ref 4 in
    let n = Sketch_wire.get_varint str pos in
    let t = create () in
    let prev = ref (-1) in
    for _ = 1 to n do
      let b = Sketch_wire.get_varint str pos in
      if b <= !prev || b >= n_bands then
        raise (Sketch_wire.Bad "exemplar: bands not ascending");
      prev := b;
      let s = t.slots.(b) in
      s.occupied <- true;
      s.latency <- Sketch_wire.get_varint str pos;
      s.trace_id <- Sketch_wire.get_varint str pos;
      s.machine <- Sketch_wire.get_string str pos;
      s.offset <- Sketch_wire.get_signed str pos;
      s.ts <- Sketch_wire.get_signed str pos;
      if band_of s.latency <> b then
        raise (Sketch_wire.Bad "exemplar: latency outside its band")
    done;
    if !pos <> String.length str then
      raise (Sketch_wire.Bad "exemplar: trailing bytes");
    Result.Ok t
  with Sketch_wire.Bad e -> Result.Error e
