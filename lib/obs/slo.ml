(* Declarative service-level objectives over a sliding window, with error
   budgets and Google-SRE-style multi-window burn-rate alerts.

   Burn rate is "how fast the error budget is being consumed": 1.0 means
   exactly on budget, N means the budget would be exhausted N times over if
   the current window's behaviour held. An alert fires only when BOTH a
   fast window (recent buckets — catches the incident quickly) and a slow
   window (long horizon — filters one-off blips) burn above the firing
   threshold, and it clears with hysteresis: both burns must stay below the
   clear threshold for [clear_evals] consecutive evaluations.

   Evaluation reads the window and emits transitions; it never advances the
   virtual clock. Transitions are emitted as [Trace.Slo_alert] events
   (arg = objective index lsl 1 lor fired) and recorded on the emitter's
   audit rail under category "slo" when a chain is attached. *)

type condition =
  | Latency_above of { kind : Trace.kind; threshold : int }
  | Ratio of { bad : Trace.kind; total : Trace.kind }
  | Rate_above of { kind : Trace.kind; per_second : float }

type objective = {
  name : string;
  tenant : string option;
  condition : condition;
  budget : float;
}

let objective ?tenant ~name ~condition ~budget () =
  if budget <= 0.0 then invalid_arg "Slo.objective: budget must be positive";
  { name; tenant; condition; budget }

type status = {
  objective : objective;
  fast_burn : float;
  slow_burn : float;
  firing : bool;
  since : int;
}

type t = {
  window : Window.t;
  emit : Emitter.t option;
  fast : int;
  slow : int;
  fire_burn : float;
  clear_burn : float;
  clear_evals : int;
  objectives : objective array;
  firing : bool array;
  since : int array;
  clear_streak : int array;
  fast_burns : float array;
  slow_burns : float array;
  mutable transitions : (int * objective * bool) list; (* reversed *)
  mutable evals : int;
}

let create ?emit ?(fast_windows = 5) ?(slow_windows = 60)
    ?(fire_burn = 10.0) ?(clear_burn = 1.0) ?(clear_evals = 3) ~window
    ~objectives () =
  if fast_windows <= 0 || slow_windows < fast_windows then
    invalid_arg "Slo.create: need 0 < fast_windows <= slow_windows";
  let objectives = Array.of_list objectives in
  let n = Array.length objectives in
  {
    window;
    emit;
    fast = fast_windows;
    slow = slow_windows;
    fire_burn;
    clear_burn;
    clear_evals;
    objectives;
    firing = Array.make n false;
    since = Array.make n 0;
    clear_streak = Array.make n 0;
    fast_burns = Array.make n 0.0;
    slow_burns = Array.make n 0.0;
    transitions = [];
    evals = 0;
  }

let window t = t.window

(* Burn over [windows] buckets: bad fraction / budget for the sample-based
   conditions, observed rate / (ceiling * budget) for the rate ceiling. A
   window with no traffic burns nothing. *)
let burn t o ~windows ~now =
  match o.condition with
  | Latency_above { kind; threshold } ->
      let total = Window.count t.window ~windows kind in
      if total = 0 then 0.0
      else
        let bad = Window.over t.window ~windows kind ~threshold in
        float_of_int bad /. float_of_int total /. o.budget
  | Ratio { bad; total } ->
      let n = Window.count t.window ~windows total in
      if n = 0 then 0.0
      else
        let b = Window.count t.window ~windows bad in
        float_of_int b /. float_of_int n /. o.budget
  | Rate_above { kind; per_second } ->
      Window.rate t.window ~windows ~now kind /. per_second /. o.budget

let transition t i ~now fired =
  let o = t.objectives.(i) in
  t.firing.(i) <- fired;
  t.since.(i) <- now;
  t.clear_streak.(i) <- 0;
  t.transitions <- (now, o, fired) :: t.transitions;
  match t.emit with
  | None -> ()
  | Some e ->
      Emitter.emit e Trace.Slo_alert ~ts:now
        ~arg:((i lsl 1) lor (if fired then 1 else 0));
      Emitter.audit_event e ~ts:now ~category:"slo"
        ~verdict:(if fired then Audit.Deny else Audit.Info)
        (fun () ->
          Printf.sprintf "%s%s: burn-rate alert %s (fast %.2f, slow %.2f)"
            (match o.tenant with Some tn -> tn ^ "/" | None -> "")
            o.name
            (if fired then "FIRING" else "cleared")
            t.fast_burns.(i) t.slow_burns.(i))

let evaluate t ~now =
  Window.advance t.window ~now;
  t.evals <- t.evals + 1;
  Array.iteri
    (fun i o ->
      let fb = burn t o ~windows:t.fast ~now
      and sb = burn t o ~windows:t.slow ~now in
      t.fast_burns.(i) <- fb;
      t.slow_burns.(i) <- sb;
      if not t.firing.(i) then begin
        if fb >= t.fire_burn && sb >= t.fire_burn then
          transition t i ~now true
      end
      else if fb < t.clear_burn && sb < t.clear_burn then begin
        t.clear_streak.(i) <- t.clear_streak.(i) + 1;
        if t.clear_streak.(i) >= t.clear_evals then transition t i ~now false
      end
      else t.clear_streak.(i) <- 0)
    t.objectives

let statuses t =
  Array.to_list
    (Array.mapi
       (fun i o ->
         {
           objective = o;
           fast_burn = t.fast_burns.(i);
           slow_burn = t.slow_burns.(i);
           firing = t.firing.(i);
           since = t.since.(i);
         })
       t.objectives)

let firing t = List.filter (fun (s : status) -> s.firing) (statuses t)

let transitions t = List.rev t.transitions

let fired_ever t ~name =
  List.exists (fun (_, o, fired) -> fired && o.name = name) t.transitions

let evals t = t.evals

let condition_json = function
  | Latency_above { kind; threshold } ->
      Printf.sprintf
        "{\"type\":\"latency_above\",\"kind\":\"%s\",\"threshold\":%d}"
        (Trace.name kind) threshold
  | Ratio { bad; total } ->
      Printf.sprintf "{\"type\":\"ratio\",\"bad\":\"%s\",\"total\":\"%s\"}"
        (Trace.name bad) (Trace.name total)
  | Rate_above { kind; per_second } ->
      Printf.sprintf
        "{\"type\":\"rate_above\",\"kind\":\"%s\",\"per_second\":%.2f}"
        (Trace.name kind) per_second

let to_json t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\"fast_windows\":%d,\"slow_windows\":%d,\"fire_burn\":%.2f,\"clear_burn\":%.2f,\"evals\":%d,\"objectives\":["
    t.fast t.slow t.fire_burn t.clear_burn t.evals;
  Array.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":\"%s\",%s\"condition\":%s,\"budget\":%.4f,\"fast_burn\":%.3f,\"slow_burn\":%.3f,\"budget_left\":%.3f,\"firing\":%b,\"since\":%d}"
        (Metrics.escape_json o.name)
        (match o.tenant with
        | Some tn -> Printf.sprintf "\"tenant\":\"%s\"," (Metrics.escape_json tn)
        | None -> "")
        (condition_json o.condition)
        o.budget t.fast_burns.(i) t.slow_burns.(i)
        (Float.max 0.0 (1.0 -. t.slow_burns.(i)))
        t.firing.(i) t.since.(i))
    t.objectives;
  Printf.bprintf buf "],\"transitions\":[";
  List.iteri
    (fun i (ts, o, fired) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"ts\":%d,\"objective\":\"%s\",\"fired\":%b}" ts
        (Metrics.escape_json o.name)
        fired)
    (transitions t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
