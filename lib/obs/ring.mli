(** Bounded ring-buffer sink for post-mortem inspection: keeps the most
    recent [capacity] events, counting what it had to overwrite. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val attach : Emitter.t -> t -> t

val capacity : t -> int
val length : t -> int
(** Events currently held (≤ capacity). *)

val dropped : t -> int
(** Events overwritten since creation/[clear]. *)

val to_list : t -> Trace.event list
(** Oldest first. *)

val clear : t -> unit
