(** Fleet aggregator: harvests per-machine {!Counter} / {!Sketch} /
    {!Topk} / {!Exemplar} state and merges it into one fleet snapshot.

    Determinism contract (the one the eval tables carry): every
    component of a snapshot is a pure function of what was recorded, so
    merging snapshots in any order or grouping — including across
    [Sim.Runner ~jobs] schedules, where each parallel task seals one
    part — produces byte-identical {!serialize} output and identical
    {!render} text. *)

(** {2 Per-machine collection} *)

type part
(** Live per-machine state: a counter sink, a fleet latency sketch,
    per-tenant latency sketches, a (tenant x kind) heavy-hitter table,
    and a tail-exemplar reservoir. *)

type tenant
(** Interned tenant handle holding preallocated (tenant x kind) key
    strings, so the per-request {!record} path never allocates. *)

val part :
  ?alpha:float -> ?sketch_capacity:int -> ?topk_capacity:int ->
  machine:string -> unit -> part
(** [alpha] (default {!Sketch.default_alpha}) and [sketch_capacity]
    configure every sketch this part creates; [topk_capacity] (default
    64) bounds the heavy-hitter table; [machine] names this part in
    exemplars and the snapshot machine list. *)

val attach : Emitter.t -> part -> part
(** Attach the part's counter sink to a machine's emitter, so the
    snapshot carries per-kind event counts/arg-sums. *)

val machine : part -> string
val counters : part -> Counter.t

val tenant : part -> string -> tenant
(** The handle for [name], interning it on first use. *)

val record :
  part -> tenant -> Trace.kind -> latency:int -> trace_id:int ->
  offset:int -> ts:int -> unit
(** Record one completed request: [latency] goes to the fleet and
    tenant sketches, one occurrence of (tenant x [kind]) to the
    heavy-hitter table, and the request becomes an exemplar candidate
    carrying [trace_id], the part's machine name, the {!Journal} frame
    [offset] (-1 when not recording) and [ts]. Allocation-free in
    steady state. *)

(** {2 Snapshots} *)

type t

val seal : part -> t
(** Freeze a part into a mergeable snapshot (the part is untouched and
    may keep recording). *)

val merge : t -> t -> t
(** Functional merge; exactly associative and commutative. Raises
    [Invalid_argument] on alpha/capacity mismatch. *)

val merge_all : t list -> t
(** Left fold of {!merge}; raises [Invalid_argument] on []. By the
    determinism contract the result is independent of list order. *)

val alpha : t -> float

val machines : t -> string list
(** Sorted, deduped. *)

val requests : t -> int
(** Total requests recorded via {!record}. *)

val quantile : t -> p:float -> int
(** Fleet-wide latency quantile ({!Sketch.quantile} semantics). *)

val count : t -> Trace.kind -> int
val arg_sum : t -> Trace.kind -> int

val tenants : t -> string list
val tenant_sketch : t -> string -> Sketch.t option
val latency_sketch : t -> Sketch.t

val top : ?n:int -> t -> Topk.ranked list
val topk_summary : t -> Topk.summary
val exemplars : t -> Exemplar.t

val exemplar_for : t -> p:float -> Exemplar.item option
(** The exemplar witnessing the fleet's [p] quantile: the reservoir
    entry for the band containing {!quantile}[ t ~p] (nearest occupied
    band if that one is empty). *)

val serialize : t -> string
(** Canonical "EAG1" binary encoding; byte equality is snapshot
    equality, for any merge order that produced [t]. *)

val deserialize : string -> (t, string) result

val render : ?topn:int -> t -> string
(** ASCII fleet panel: fleet percentiles, per-tenant quantile table,
    heavy hitters with their guaranteed [lower, upper] true-count
    bounds, and the p99 exemplar line. Deterministic. *)
