(** Tail-latency exemplar reservoir: per log2-latency band (the same
    banding as {!Histogram.bucket_of}), the single slowest request seen,
    carrying its {!Request} trace id, machine name, and — when a flight
    recorder is attached — the {!Journal} byte offset of the frame
    holding its request-end event. "p99 spiked" then resolves to a
    concrete replayable journaled request: the aggregator maps its
    merged quantile estimate to a band and exports that band's
    exemplar.

    Winners are chosen under a total order (latency descending, then
    trace id / machine / offset / ts ascending), so {!merge} is
    idempotent, commutative and associative and merged state is
    canonical for any merge order. *)

type t

type item = {
  i_latency : int;
  i_trace_id : int;
  i_machine : string;
  i_offset : int;  (** journal frame byte offset; -1 if not recording *)
  i_ts : int;  (** virtual timestamp of the request end *)
}

val n_bands : int

val band_of : int -> int
(** The band a latency lands in (= {!Histogram.bucket_of}). *)

val band_lo : int -> int
val band_hi : int -> int

val create : unit -> t

val record :
  t -> latency:int -> trace_id:int -> machine:string -> offset:int ->
  ts:int -> unit
(** Challenge the band's current exemplar; keep the winner. Writes into
    preallocated slots — allocation-free ([machine] is stored by
    reference; pass an existing string). *)

val merge : into:t -> t -> unit
(** Band-wise keep-the-winner. Raises [Invalid_argument] on
    self-merge. *)

val best : t -> band:int -> item option

val for_value : t -> int -> item option
(** The exemplar witnessing a latency estimate: its own band if
    occupied, else the nearest occupied band below, then above; [None]
    only if the reservoir is empty. *)

val items : t -> (int * item) list
(** Occupied bands, ascending. *)

val serialize : t -> string
(** Canonical "EXM1" binary encoding; byte equality is state
    equality. *)

val deserialize : string -> (t, string) result
