(* Offline journal queries: one streaming pass of filter -> group -> row
   aggregation. Distributions reuse the live histogram's log2 bucketing so
   online and offline percentiles agree. *)

type filter = {
  kinds : Trace.kind list;
  machines : string list;
  sandbox : int option;
  t0 : int option;
  t1 : int option;
}

let no_filter = { kinds = []; machines = []; sandbox = None; t0 = None; t1 = None }

type group = By_kind | By_machine | By_phase | By_none

type row = {
  label : string;
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
}

(* A standalone log2 distribution (the Histogram sink is keyed by kind and
   bus-attached; queries need one per group cell). *)
type dist = {
  mutable count : int;
  mutable sum : int;
  mutable dmin : int;
  mutable dmax : int;
  buckets : int array;
}

let dist () =
  { count = 0; sum = 0; dmin = max_int; dmax = 0;
    buckets = Array.make Histogram.n_buckets 0 }

let observe d v =
  d.count <- d.count + 1;
  d.sum <- d.sum + v;
  if v < d.dmin then d.dmin <- v;
  if v > d.dmax then d.dmax <- v;
  let b = Histogram.bucket_of v in
  d.buckets.(b) <- d.buckets.(b) + 1

(* Same rank-in-bucket linear interpolation as Histogram.percentile. *)
let percentile d ~p =
  if d.count = 0 then 0
  else if p <= 0.0 then d.dmin
  else if p >= 1.0 then d.dmax
  else begin
    let rank = p *. float_of_int d.count in
    let seen = ref 0. in
    let result = ref d.dmax in
    (try
       for b = 0 to Histogram.n_buckets - 1 do
         let c = d.buckets.(b) in
         if c > 0 then begin
           let next = !seen +. float_of_int c in
           if rank <= next then begin
             let lo = Histogram.bucket_lo b and hi = Histogram.bucket_hi b in
             let frac = (rank -. !seen) /. float_of_int c in
             result := lo + int_of_float (frac *. float_of_int (hi - lo));
             raise Exit
           end;
           seen := next
         end
       done
     with Exit -> ());
    Stdlib.min d.dmax (Stdlib.max d.dmin !result)
  end

let row_of label d =
  {
    label;
    count = d.count;
    sum = d.sum;
    min = (if d.count = 0 then 0 else d.dmin);
    max = d.dmax;
    p50 = percentile d ~p:0.5;
    p95 = percentile d ~p:0.95;
    p99 = percentile d ~p:0.99;
  }

let max_streams = 256

let run_pass ~filter ~group ~stream_sel ~path =
  let kind_mask =
    match filter.kinds with
    | [] -> None
    | ks ->
        let m = Array.make Trace.n_kinds false in
        List.iter (fun k -> m.(Trace.index k) <- true) ks;
        Some m
  in
  let sandbox_open = Array.make max_streams false in
  (* [span_open.(stream).(phase)]: stack of open-span begin timestamps. *)
  let span_open = Array.make max_streams [||] in
  let span_stack stream =
    if Array.length span_open.(stream) = 0 then
      span_open.(stream) <- Array.make Trace.n_phases [];
    span_open.(stream)
  in
  let cells : (string, dist) Hashtbl.t = Hashtbl.create 64 in
  let cell label =
    match Hashtbl.find_opt cells label with
    | Some d -> d
    | None ->
        let d = dist () in
        Hashtbl.add cells label d;
        d
  in
  let result =
    Journal.fold ~path ~init:() (fun () (e : Journal.event) ->
        let s = e.stream land (max_streams - 1) in
        (* Sandbox lifetime windows are tracked pre-filter so the window
           state doesn't depend on which kinds are selected. *)
        (match filter.sandbox, e.kind with
        | Some id, Trace.Sandbox_create when e.arg = id -> sandbox_open.(s) <- true
        | Some id, (Trace.Sandbox_exit | Trace.Sandbox_kill) when e.arg = id ->
            sandbox_open.(s) <- false
        | _ -> ());
        let selected =
          (match stream_sel with None -> true | Some sel -> sel.(s))
          && (match filter.sandbox with
             | None -> true
             | Some id -> (
                 sandbox_open.(s)
                 ||
                 match e.kind with
                 | Trace.Sandbox_create | Trace.Sandbox_exit | Trace.Sandbox_kill
                   ->
                     e.arg = id
                 | _ -> false))
          && (match filter.t0 with None -> true | Some t -> e.ts >= t)
          && (match filter.t1 with None -> true | Some t -> e.ts <= t)
          && match kind_mask with
             | None -> true
             | Some m -> m.(Trace.index e.kind)
        in
        if selected then
          match group with
          | By_kind -> observe (cell (Trace.name e.kind)) e.arg
          | By_machine -> observe (cell (Printf.sprintf "#%d" s)) e.arg
          | By_none -> observe (cell "all") e.arg
          | By_phase -> (
              match e.kind with
              | Trace.Span_begin p ->
                  let st = span_stack s in
                  let i = Trace.phase_index p in
                  st.(i) <- e.ts :: st.(i)
              | Trace.Span_end p -> (
                  let st = span_stack s in
                  let i = Trace.phase_index p in
                  match st.(i) with
                  | [] -> ()
                  | t0 :: rest ->
                      st.(i) <- rest;
                      observe (cell (Trace.phase_name p)) (e.ts - t0))
              | _ -> ()))
  in
  match result with
  | Error _ as e -> e
  | Ok ((), info) ->
      let rows =
        Hashtbl.fold (fun label d acc -> row_of label d :: acc) cells []
      in
      (* By_machine cells are keyed by stream id during the pass (names may
         not be interned yet when a stream first appears); resolve now. *)
      let rows =
        match group with
        | By_machine ->
            List.map
              (fun r ->
                let id =
                  int_of_string (String.sub r.label 1 (String.length r.label - 1))
                in
                { r with label = Journal.machine_name info id })
              rows
        | _ -> rows
      in
      let rows =
        List.sort
          (fun (a : row) (b : row) ->
            match Stdlib.compare b.count a.count with
            | 0 -> Stdlib.compare a.label b.label
            | c -> c)
          rows
      in
      Ok (rows, info)

let run ?(filter = no_filter) ?(group = By_kind) ~path () =
  if filter.machines = [] then run_pass ~filter ~group ~stream_sel:None ~path
  else
    (* Machine filtering is by name, and names live in the journal's intern
       table — a cheap summary pass resolves them to a stream mask first. *)
    match Journal.read_info ~path with
    | Error _ as e -> e
    | Ok info ->
        let sel = Array.make max_streams false in
        List.iter
          (fun (id, name) ->
            if List.mem name filter.machines && id < max_streams then
              sel.(id) <- true)
          info.Journal.machines;
        run_pass ~filter ~group ~stream_sel:(Some sel) ~path

let render rows =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %10s %14s %10s %10s %10s\n" "group" "count" "sum"
       "p50" "p95" "p99");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-20s %10d %14d %10d %10d %10d\n" r.label r.count
           r.sum r.p50 r.p95 r.p99))
    rows;
  Buffer.contents b
