(** The unified observability subsystem: a typed, allocation-light event bus
    ({!Emitter}) over the {!Trace} taxonomy, with pluggable sinks — counters
    ({!Counter}), a bounded post-mortem ring ({!Ring}), latency histograms
    ({!Histogram}), a Chrome-trace/JSONL recorder ({!Chrome}), a
    cycle-attribution profiler ({!Attrib}) with flamegraph ({!Flame}) and
    Prometheus/JSON ({!Metrics}) exporters, a request-scoped causal-trace
    collector ({!Request}), a tamper-evident hash-chained audit log
    ({!Audit}), and live SLO telemetry — virtual-clock sliding windows
    ({!Window}), error-budget burn-rate alerts ({!Slo}), per-sandbox health
    watchdogs ({!Health}) and an ASCII dashboard driver ({!Dash}) — plus an
    offline flight-recorder stack: a crash-safe binary journal ({!Journal})
    with query ({!Query}), critical-path ({!Critical}) and run-diff
    ({!Diff}) engines over recorded runs — and fleet telemetry: mergeable
    relative-error quantile sketches ({!Sketch}), heavy-hitter summaries
    ({!Topk}), tail-latency exemplars ({!Exemplar}) and the
    order-invariant fleet aggregator ({!Agg}).

    Emission never advances the virtual clock: observability is free in
    simulated time, so calibrated results are identical with or without
    sinks attached. The stack emits through the per-machine emitter held by
    [Hw.Cpu.t]; every component that owns (or is passed) the CPU shares it. *)

module Trace = Trace
module Emitter = Emitter
module Counter = Counter
module Ring = Ring
module Histogram = Histogram
module Chrome = Chrome
module Attrib = Attrib
module Flame = Flame
module Metrics = Metrics
module Audit = Audit
module Request = Request
module Window = Window
module Slo = Slo
module Health = Health
module Dash = Dash
module Journal = Journal
module Query = Query
module Critical = Critical
module Diff = Diff
module Sketch = Sketch
module Topk = Topk
module Exemplar = Exemplar
module Agg = Agg

val with_span : Emitter.t -> now:(unit -> int) -> Trace.phase -> (unit -> 'a) -> 'a
(** [with_span emitter ~now phase f] emits [Span_begin phase], runs [f], and
    emits [Span_end phase] even when [f] raises. *)
