(* Fleet aggregator: one [part] per machine collects Counter / Sketch /
   Topk / Exemplar state; [seal] freezes a part into a snapshot; [merge]
   combines snapshots. Every component is canonical (a pure function of
   the recorded multiset), so the merged snapshot — and its [serialize]
   bytes, and everything rendered from it — is byte-identical for any
   merge order, grouping, or [Sim.Runner ~jobs] schedule. That is the
   same determinism contract the eval tables carry.

   The per-request record path is allocation-free: tenant handles
   pre-intern one (tenant x kind) key string per event kind so the
   heavy-hitter observe never builds a key, and the sketch / exemplar
   sinks write into preallocated state. *)

type part = {
  p_machine : string;
  p_alpha : float;
  p_sketch_capacity : int;
  p_counters : Counter.t;
  p_latency : Sketch.t; (* fleet-wide request latency *)
  p_tenants : (string, tenant) Hashtbl.t;
  p_topk : Topk.t;
  p_exemplars : Exemplar.t;
}

and tenant = {
  t_name : string;
  t_sketch : Sketch.t; (* this tenant's request latency *)
  t_keys : string array; (* kind index -> "tenant/kind-name" *)
}

let all_kinds = Array.of_list Trace.all

let part ?(alpha = Sketch.default_alpha) ?sketch_capacity
    ?(topk_capacity = 64) ~machine () =
  let latency = Sketch.create ~alpha ?capacity:sketch_capacity () in
  {
    p_machine = machine;
    p_alpha = alpha;
    p_sketch_capacity = Sketch.capacity latency;
    p_counters = Counter.create ();
    p_latency = latency;
    p_tenants = Hashtbl.create 16;
    p_topk = Topk.create ~capacity:topk_capacity ();
    p_exemplars = Exemplar.create ();
  }

let attach emitter p =
  ignore (Counter.attach emitter p.p_counters);
  p

let machine p = p.p_machine
let counters p = p.p_counters

let tenant p name =
  match Hashtbl.find_opt p.p_tenants name with
  | Some t -> t
  | None ->
      let t =
        {
          t_name = name;
          t_sketch =
            Sketch.create ~alpha:p.p_alpha ~capacity:p.p_sketch_capacity ();
          t_keys =
            Array.init Trace.n_kinds (fun i ->
                name ^ "/" ^ Trace.name all_kinds.(i));
        }
      in
      Hashtbl.replace p.p_tenants name t;
      t

let record p t kind ~latency ~trace_id ~offset ~ts =
  Sketch.record p.p_latency latency;
  Sketch.record t.t_sketch latency;
  Topk.observe p.p_topk ~key:t.t_keys.(Trace.index kind) ~weight:1;
  Exemplar.record p.p_exemplars ~latency ~trace_id ~machine:p.p_machine
    ~offset ~ts

(* {2 Sealed snapshots} *)

type t = {
  alpha : float;
  sketch_capacity : int;
  machines : string list; (* sorted, deduped *)
  counts : int array; (* kind index -> event count *)
  arg_sums : int array;
  latency : Sketch.t;
  tenants : (string * Sketch.t) list; (* sorted by tenant name *)
  topk : Topk.summary;
  exemplars : Exemplar.t;
}

let copy_sketch s =
  let c = Sketch.create ~alpha:(Sketch.alpha s) ~capacity:(Sketch.capacity s) () in
  Sketch.merge ~into:c s;
  c

let seal p =
  let tenants =
    Hashtbl.fold (fun name t acc -> (name, copy_sketch t.t_sketch) :: acc)
      p.p_tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    alpha = p.p_alpha;
    sketch_capacity = p.p_sketch_capacity;
    machines = [ p.p_machine ];
    counts = Array.init Trace.n_kinds (fun i ->
        Counter.count p.p_counters all_kinds.(i));
    arg_sums = Array.init Trace.n_kinds (fun i ->
        Counter.arg_sum p.p_counters all_kinds.(i));
    latency = copy_sketch p.p_latency;
    tenants;
    topk = Topk.seal p.p_topk;
    exemplars =
      (let e = Exemplar.create () in
       Exemplar.merge ~into:e p.p_exemplars;
       e);
  }

let rec union_sorted xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c < 0 then x :: union_sorted xs' ys
      else if c > 0 then y :: union_sorted xs ys'
      else x :: union_sorted xs' ys'

let merge a b =
  if a.alpha <> b.alpha || a.sketch_capacity <> b.sketch_capacity then
    invalid_arg "Agg.merge: alpha/capacity mismatch";
  let latency = copy_sketch a.latency in
  Sketch.merge ~into:latency b.latency;
  let rec merge_tenants xs ys =
    match (xs, ys) with
    | [], rest | rest, [] ->
        List.map (fun (n, s) -> (n, copy_sketch s)) rest
    | (xn, xsk) :: xt, (yn, ysk) :: yt ->
        let c = compare xn yn in
        if c < 0 then (xn, copy_sketch xsk) :: merge_tenants xt ys
        else if c > 0 then (yn, copy_sketch ysk) :: merge_tenants xs yt
        else begin
          let s = copy_sketch xsk in
          Sketch.merge ~into:s ysk;
          (xn, s) :: merge_tenants xt yt
        end
  in
  let exemplars = Exemplar.create () in
  Exemplar.merge ~into:exemplars a.exemplars;
  Exemplar.merge ~into:exemplars b.exemplars;
  {
    alpha = a.alpha;
    sketch_capacity = a.sketch_capacity;
    machines = union_sorted a.machines b.machines;
    counts = Array.init Trace.n_kinds (fun i -> a.counts.(i) + b.counts.(i));
    arg_sums =
      Array.init Trace.n_kinds (fun i -> a.arg_sums.(i) + b.arg_sums.(i));
    latency;
    tenants = merge_tenants a.tenants b.tenants;
    topk = Topk.merge_summaries a.topk b.topk;
    exemplars;
  }

let merge_all = function
  | [] -> invalid_arg "Agg.merge_all: empty"
  | x :: xs -> List.fold_left merge x xs

(* {2 Reading a snapshot} *)

let alpha t = t.alpha
let machines t = t.machines
let requests t = Sketch.count t.latency
let quantile t ~p = Sketch.quantile t.latency ~p
let count t kind = t.counts.(Trace.index kind)
let arg_sum t kind = t.arg_sums.(Trace.index kind)
let tenants t = List.map fst t.tenants
let tenant_sketch t name = List.assoc_opt name t.tenants
let latency_sketch t = t.latency
let top ?n t = Topk.top ?n t.topk
let topk_summary t = t.topk
let exemplars t = t.exemplars

let exemplar_for t ~p =
  if Sketch.count t.latency = 0 then None
  else Exemplar.for_value t.exemplars (quantile t ~p)

(* {2 Canonical wire format}

   "EAG1" magic, then varints / length-prefixed strings: alpha (8 BE
   IEEE bytes), sketch_capacity, machines, per-kind counts and arg
   sums, the fleet latency sketch, tenant sketches, topk summary,
   exemplar reservoir — each nested blob length-prefixed. All
   components are canonical, so byte equality is snapshot equality. *)

let serialize t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "EAG1";
  Buffer.add_int64_be buf (Int64.bits_of_float t.alpha);
  Sketch_wire.put_varint buf t.sketch_capacity;
  Sketch_wire.put_varint buf (List.length t.machines);
  List.iter (Sketch_wire.put_string buf) t.machines;
  Sketch_wire.put_varint buf Trace.n_kinds;
  Array.iter (Sketch_wire.put_varint buf) t.counts;
  Array.iter (Sketch_wire.put_signed buf) t.arg_sums;
  Sketch_wire.put_string buf (Sketch.serialize t.latency);
  Sketch_wire.put_varint buf (List.length t.tenants);
  List.iter
    (fun (n, s) ->
      Sketch_wire.put_string buf n;
      Sketch_wire.put_string buf (Sketch.serialize s))
    t.tenants;
  Sketch_wire.put_string buf (Topk.serialize t.topk);
  Sketch_wire.put_string buf (Exemplar.serialize t.exemplars);
  Buffer.contents buf

let deserialize s =
  try
    if String.length s < 12 || String.sub s 0 4 <> "EAG1" then
      raise (Sketch_wire.Bad "agg: bad magic");
    let alpha = Int64.float_of_bits (String.get_int64_be s 4) in
    let pos = ref 12 in
    let sketch_capacity = Sketch_wire.get_varint s pos in
    let n_m = Sketch_wire.get_varint s pos in
    let machines =
      List.init n_m (fun _ -> Sketch_wire.get_string s pos)
    in
    if List.sort_uniq compare machines <> machines then
      raise (Sketch_wire.Bad "agg: machines not sorted");
    let nk = Sketch_wire.get_varint s pos in
    if nk <> Trace.n_kinds then
      raise (Sketch_wire.Bad "agg: kind-count mismatch");
    let counts = Array.init nk (fun _ -> Sketch_wire.get_varint s pos) in
    let arg_sums = Array.init nk (fun _ -> Sketch_wire.get_signed s pos) in
    let sketch_of blob =
      match Sketch.deserialize blob with
      | Result.Ok sk -> sk
      | Result.Error e -> raise (Sketch_wire.Bad e)
    in
    let latency = sketch_of (Sketch_wire.get_string s pos) in
    let n_t = Sketch_wire.get_varint s pos in
    let tenants =
      List.init n_t (fun _ ->
          let n = Sketch_wire.get_string s pos in
          (n, sketch_of (Sketch_wire.get_string s pos)))
    in
    if List.sort (fun (a, _) (b, _) -> compare a b) tenants <> tenants then
      raise (Sketch_wire.Bad "agg: tenants not sorted");
    let topk =
      match Topk.deserialize (Sketch_wire.get_string s pos) with
      | Result.Ok v -> v
      | Result.Error e -> raise (Sketch_wire.Bad e)
    in
    let exemplars =
      match Exemplar.deserialize (Sketch_wire.get_string s pos) with
      | Result.Ok v -> v
      | Result.Error e -> raise (Sketch_wire.Bad e)
    in
    if !pos <> String.length s then
      raise (Sketch_wire.Bad "agg: trailing bytes");
    Result.Ok
      {
        alpha;
        sketch_capacity;
        machines;
        counts;
        arg_sums;
        latency;
        tenants;
        topk;
        exemplars;
      }
  with Sketch_wire.Bad e -> Result.Error e

(* {2 Fleet panel} *)

let render ?(topn = 5) t =
  let b = Buffer.create 512 in
  let q p = quantile t ~p in
  Buffer.add_string b
    (Printf.sprintf
       "fleet: %d machine(s), %d request(s), alpha %.2f%%\n"
       (List.length t.machines) (requests t) (100.0 *. t.alpha));
  Buffer.add_string b
    (Printf.sprintf "  latency  p50=%-8d p95=%-8d p99=%-8d max=%d\n" (q 0.50)
       (q 0.95) (q 0.99) (Sketch.max_value t.latency));
  if t.tenants <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "  %-16s %8s %8s %8s %8s\n" "tenant" "reqs" "p50" "p95"
         "p99");
    List.iter
      (fun (name, s) ->
        Buffer.add_string b
          (Printf.sprintf "  %-16s %8d %8d %8d %8d\n" name (Sketch.count s)
             (Sketch.quantile s ~p:0.50) (Sketch.quantile s ~p:0.95)
             (Sketch.quantile s ~p:0.99)))
      t.tenants
  end;
  (match top ~n:topn t with
  | [] -> ()
  | hh ->
      Buffer.add_string b "  heavy hitters (tenant/kind):\n";
      List.iter
        (fun (r : Topk.ranked) ->
          Buffer.add_string b
            (Printf.sprintf "    %-28s %8d  true in [%d, %d]\n" r.Topk.rkey
               r.Topk.rcount r.Topk.lower r.Topk.upper))
        hh);
  (match exemplar_for t ~p:0.99 with
  | None -> ()
  | Some e ->
      Buffer.add_string b
        (Printf.sprintf
           "  p99 exemplar: trace %#x machine %s latency %d ts %d journal \
            offset %d\n"
           e.Exemplar.i_trace_id e.Exemplar.i_machine e.Exemplar.i_latency
           e.Exemplar.i_ts e.Exemplar.i_offset));
  Buffer.contents b
