(** Declarative service-level objectives with error budgets and multi-window
    burn-rate alerts, evaluated over a {!Window}.

    Burn rate is how fast the error budget is being consumed: 1.0 is
    exactly on budget, N would exhaust it N times over. Following the SRE
    multi-window pattern, an alert fires only when {e both} the fast window
    (recent buckets) and the slow window (long horizon) burn at or above
    [fire_burn]; it clears with hysteresis, after both burns stay below
    [clear_burn] for [clear_evals] consecutive {!evaluate} calls. With the
    window's bucket width set to one virtual minute, the defaults
    ([fast_windows = 5], [slow_windows = 60]) give the canonical
    5-minute/1-hour pair; shorter buckets scale both spans down together.

    Evaluation never advances the virtual clock. Each transition emits a
    {!Trace.Slo_alert} event ([arg = objective index lsl 1 lor fired]) and
    an audit record (category ["slo"], [Deny] on fire / [Info] on clear)
    when the emitter has a chain attached. *)

type condition =
  | Latency_above of { kind : Trace.kind; threshold : int }
      (** Bad = samples of [kind] whose arg exceeds [threshold] (needs the
          kind histogram-tracked in the window); total = all samples. *)
  | Ratio of { bad : Trace.kind; total : Trace.kind }
      (** Bad fraction = count of [bad] / count of [total]. *)
  | Rate_above of { kind : Trace.kind; per_second : float }
      (** Burn = observed per-second rate / ([per_second] ceiling x budget);
          use [budget = 1.0] for a plain ceiling. *)

type objective = {
  name : string;
  tenant : string option;
  condition : condition;
  budget : float;  (** Allowed bad fraction (e.g. 0.02 = 2% error budget). *)
}

val objective :
  ?tenant:string ->
  name:string ->
  condition:condition ->
  budget:float ->
  unit ->
  objective
(** Raises [Invalid_argument] when [budget <= 0]. *)

type status = {
  objective : objective;
  fast_burn : float;
  slow_burn : float;
  firing : bool;
  since : int;  (** ts of the last fire/clear transition. *)
}

type t

val create :
  ?emit:Emitter.t ->
  ?fast_windows:int ->
  ?slow_windows:int ->
  ?fire_burn:float ->
  ?clear_burn:float ->
  ?clear_evals:int ->
  window:Window.t ->
  objectives:objective list ->
  unit ->
  t
(** [emit] receives alert-transition events (and audit records when it has
    a chain). Defaults: [fast_windows = 5], [slow_windows = 60],
    [fire_burn = 10.0], [clear_burn = 1.0], [clear_evals = 3]. *)

val window : t -> Window.t

val evaluate : t -> now:int -> unit
(** Rotate the window to [now], recompute every objective's fast/slow burn
    and apply the fire/clear state machine. Call at a steady cadence (every
    round, every dashboard refresh). *)

val statuses : t -> status list
val firing : t -> status list

val transitions : t -> (int * objective * bool) list
(** Chronological [(ts, objective, fired)] alert transitions. *)

val fired_ever : t -> name:string -> bool
(** Whether the named objective ever fired during this run. *)

val evals : t -> int
val to_json : t -> string
