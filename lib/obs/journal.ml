(* The flight recorder: crash-safe binary event journal (format in
   journal.mli / DESIGN.md §16).

   Writer hot path: one kind byte + two zigzag varints into a preallocated
   buffer — no closures, no boxing, no Buffer module — so recording costs 0
   minor words per event in steady state. Segments are CRC-framed and
   flushed on seal, which is the crash-safety story: everything before the
   unsealed tail survives a kill. *)

let magic = "EJRN1\n"
let tag_head = "HEAD"
let tag_segm = "SEGM"
let tag_end = "END "

(* Control opcodes share the kind byte's space above the dense kind range. *)
let op_def_stream = 254
let op_set_stream = 255
let () = assert (Trace.n_kinds <= 250)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE, reflected) over ints — table-driven, allocation-free.  *)
(* ------------------------------------------------------------------ *)

let crc_table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

(* [crc] is the running (pre-inverted) state; seed with [crc_init], finish
   with [crc_final]. *)
let crc_init = 0xFFFFFFFF

let crc_update crc buf off len =
  let c = ref crc in
  for i = off to off + len - 1 do
    c :=
      Array.unsafe_get crc_table ((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c

let crc_final crc = crc lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)
(* ------------------------------------------------------------------ *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type t = {
    oc : out_channel;
    buf : Bytes.t;           (* open segment's event bytes *)
    mutable pos : int;
    seg_limit : int;         (* seal once [pos] crosses this *)
    hdr : Bytes.t;           (* scratch for frame headers / segment prefix *)
    mutable last_ts : int;
    last_arg : int array;    (* per kind index *)
    mutable cur_stream : int;
    mutable streams : (string * int) list;
    mutable n_streams : int;
    mutable attached : int;  (* emitters attached (for default names) *)
    mutable seg_base_ts : int;
    mutable seg_events : int;
    mutable events : int;
    mutable segments : int;
    mutable bytes_out : int; (* bytes flushed: next frame's file offset *)
    mutable closed : bool;
  }

  let put_byte t b =
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (b land 0xFF));
    t.pos <- t.pos + 1

  let put_uvarint t n =
    let v = ref n in
    while !v land lnot 0x7F <> 0 do
      put_byte t (!v land 0x7F lor 0x80);
      v := !v lsr 7
    done;
    put_byte t !v

  let put_svarint t n = put_uvarint t (zigzag n)

  let u32le b off v =
    Bytes.set_uint8 b off (v land 0xFF);
    Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF);
    Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xFF);
    Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xFF)

  (* Frame = tag[4] len[u32] crc[u32] payload; [pieces] are (buf, off, len)
     fragments so the segment path never concatenates. Flushed immediately:
     a sealed frame is on disk even if the process dies right after. *)
  let write_frame t tag pieces =
    let len = List.fold_left (fun acc (_, _, l) -> acc + l) 0 pieces in
    let crc =
      crc_final
        (List.fold_left (fun c (b, o, l) -> crc_update c b o l) crc_init pieces)
    in
    output_string t.oc tag;
    u32le t.hdr 0 len;
    u32le t.hdr 4 crc;
    output t.oc t.hdr 0 8;
    List.iter (fun (b, o, l) -> output t.oc b o l) pieces;
    t.bytes_out <- t.bytes_out + 12 + len;
    flush t.oc

  let seal t =
    if t.seg_events > 0 || t.pos > 0 then begin
      (* Prefix: base timestamp + event count, varint-encoded into the
         header scratch via a tiny cursor. *)
      let p = ref 0 in
      let putb b = Bytes.set_uint8 t.hdr (8 + !p) b; incr p in
      let putu n =
        let v = ref n in
        while !v land lnot 0x7F <> 0 do
          putb (!v land 0x7F lor 0x80);
          v := !v lsr 7
        done;
        putb !v
      in
      putu t.seg_base_ts;
      putu t.seg_events;
      write_frame t tag_segm [ (t.hdr, 8, !p); (t.buf, 0, t.pos) ];
      t.segments <- t.segments + 1;
      t.pos <- 0;
      t.seg_events <- 0;
      t.seg_base_ts <- t.last_ts
    end

  let create ?(segment_bytes = 65536) ?(meta = []) ~path () =
    if segment_bytes < 256 then
      invalid_arg "Journal.Writer.create: segment_bytes must be >= 256";
    let oc = open_out_bin path in
    let t =
      {
        oc;
        (* Slack beyond the seal threshold: one maximal event record plus a
           stream switch never overruns. *)
        buf = Bytes.create (segment_bytes + 64);
        pos = 0;
        seg_limit = segment_bytes;
        hdr = Bytes.create 64;
        last_ts = 0;
        last_arg = Array.make Trace.n_kinds 0;
        cur_stream = -1;
        streams = [];
        n_streams = 0;
        attached = 0;
        seg_base_ts = 0;
        seg_events = 0;
        events = 0;
        segments = 0;
        bytes_out = String.length magic;
        closed = false;
      }
    in
    output_string oc magic;
    (* HEAD: version, metadata, and the wire-name intern tables that make
       the file self-describing. *)
    let b = Buffer.create 512 in
    let bputu n =
      let v = ref n in
      while !v land lnot 0x7F <> 0 do
        Buffer.add_uint8 b (!v land 0x7F lor 0x80);
        v := !v lsr 7
      done;
      Buffer.add_uint8 b !v
    in
    let bputs s =
      bputu (String.length s);
      Buffer.add_string b s
    in
    bputu 1 (* version *);
    bputu (List.length meta);
    List.iter (fun (k, v) -> bputs k; bputs v) meta;
    bputu Trace.n_kinds;
    List.iter (fun k -> bputs (Trace.name k)) Trace.all;
    bputu Trace.n_phases;
    List.iter (fun p -> bputs (Trace.phase_name p)) Trace.all_phases;
    bputu Trace.n_domains;
    List.iter (fun d -> bputs (Trace.domain_name d)) Trace.all_domains;
    let payload = Buffer.to_bytes b in
    write_frame t tag_head [ (payload, 0, Bytes.length payload) ];
    t

  let stream t ~machine =
    match List.assoc_opt machine t.streams with
    | Some id -> id
    | None ->
        let id = t.n_streams in
        t.n_streams <- id + 1;
        t.streams <- (machine, id) :: t.streams;
        (* Intern into the open segment; readers decode sequentially from
           the file start, so later segments may reference it freely. *)
        put_byte t op_def_stream;
        put_uvarint t id;
        put_uvarint t (String.length machine);
        String.iter (fun c -> put_byte t (Char.code c)) machine;
        id

  let record t ~stream kind ~ts ~arg =
    if not t.closed then begin
      if stream <> t.cur_stream then begin
        put_byte t op_set_stream;
        put_uvarint t stream;
        t.cur_stream <- stream
      end;
      let k = Trace.index kind in
      put_byte t k;
      put_svarint t (ts - t.last_ts);
      t.last_ts <- ts;
      put_svarint t (arg - Array.unsafe_get t.last_arg k);
      Array.unsafe_set t.last_arg k arg;
      t.seg_events <- t.seg_events + 1;
      t.events <- t.events + 1;
      if t.pos >= t.seg_limit then seal t
    end

  let close t ~now =
    if not t.closed then begin
      if now > t.last_ts then t.last_ts <- now;
      seal t;
      let p = ref 0 in
      let putb b = Bytes.set_uint8 t.hdr (8 + !p) b; incr p in
      let putu n =
        let v = ref n in
        while !v land lnot 0x7F <> 0 do
          putb (!v land 0x7F lor 0x80);
          v := !v lsr 7
        done;
        putb !v
      in
      putu t.segments; putu t.events; putu t.last_ts; putu t.n_streams;
      write_frame t tag_end [ (t.hdr, 8, !p) ];
      t.closed <- true;
      close_out t.oc
    end

  let attach ?machine t emitter =
    let name =
      match machine with
      | Some m -> m
      | None -> Printf.sprintf "m%d" t.attached
    in
    t.attached <- t.attached + 1;
    let id = stream t ~machine:name in
    Emitter.attach emitter (fun kind ~ts ~arg -> record t ~stream:id kind ~ts ~arg);
    Emitter.add_finalizer emitter (fun ~now -> close t ~now)

  let events t = t.events
  let segments t = t.segments
  let closed t = t.closed

  (* The file offset of the frame that will hold the open segment — i.e.
     the frame offset the next recorded event ends up in, matching the
     reader's [event.off]. (Read it before recording: the record itself
     may cross the seal threshold and flush that very frame.) *)
  let offset t = t.bytes_out
end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  stream : int;
  kind : Trace.kind;
  ts : int;
  arg : int;
  off : int; (* byte offset of the containing SEGM frame *)
}

type info = {
  version : int;
  meta : (string * string) list;
  machines : (int * string) list;
  events : int;
  segments : int;
  complete : bool;
  last_ts : int;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Cursor over one frame payload. *)
type cursor = { cbuf : Bytes.t; mutable cpos : int; clen : int; cwhat : string }

let cbyte c =
  if c.cpos >= c.clen then corrupt "%s: payload ends mid-record" c.cwhat;
  let b = Bytes.get_uint8 c.cbuf c.cpos in
  c.cpos <- c.cpos + 1;
  b

let cuvarint c =
  let v = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    let b = cbyte c in
    if !shift > 62 then corrupt "%s: varint overflow" c.cwhat;
    v := !v lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    cont := b land 0x80 <> 0
  done;
  !v

let csvarint c = unzigzag (cuvarint c)

let cstring c =
  let len = cuvarint c in
  if c.cpos + len > c.clen then corrupt "%s: string runs past payload" c.cwhat;
  let s = Bytes.sub_string c.cbuf c.cpos len in
  c.cpos <- c.cpos + len;
  s

(* Mutable decode state threaded across segments (the event stream is one
   continuous delta chain; segment headers only checkpoint it). *)
type decode_state = {
  mutable d_last_ts : int;
  d_last_arg : int array;
  mutable d_stream : int;
  mutable d_machines : (int * string) list;
  mutable d_events : int;
  mutable d_segments : int;
}

let decode_segment st c ~off acc f =
  let base_ts = cuvarint c in
  let declared = cuvarint c in
  st.d_last_ts <- base_ts;
  let acc = ref acc in
  let n = ref 0 in
  while c.cpos < c.clen do
    let op = cbyte c in
    if op = op_def_stream then begin
      let id = cuvarint c in
      let name = cstring c in
      st.d_machines <- (id, name) :: List.remove_assoc id st.d_machines
    end
    else if op = op_set_stream then st.d_stream <- cuvarint c
    else begin
      if op >= Trace.n_kinds then corrupt "%s: unknown opcode %d" c.cwhat op;
      let ts = st.d_last_ts + csvarint c in
      st.d_last_ts <- ts;
      let arg = st.d_last_arg.(op) + csvarint c in
      st.d_last_arg.(op) <- arg;
      incr n;
      acc :=
        f !acc
          { stream = st.d_stream; kind = Trace.kind_of_index op; ts; arg; off }
    end
  done;
  if !n <> declared then
    corrupt "%s: header declares %d events, payload holds %d" c.cwhat declared !n;
  st.d_events <- st.d_events + !n;
  st.d_segments <- st.d_segments + 1;
  !acc

let fold ?(strict = false) ~path ~init f =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      let cleanup () = close_in_noerr ic in
      let result =
        try
          let m = really_input_string ic (String.length magic) in
          if m <> magic then corrupt "not a journal (bad magic)";
          let st =
            {
              d_last_ts = 0;
              d_last_arg = Array.make Trace.n_kinds 0;
              d_stream = 0;
              d_machines = [];
              d_events = 0;
              d_segments = 0;
            }
          in
          let version = ref 0 in
          let meta = ref [] in
          let acc = ref init in
          let frame_no = ref 0 in
          let complete = ref false in
          let end_last_ts = ref 0 in
          let finished = ref false in
          while not !finished do
            let offset = pos_in ic in
            match really_input_string ic 12 with
            | exception End_of_file ->
                (* Clean EOF at a frame boundary... unless bytes remain. *)
                if pos_in ic <> offset then
                  if strict then
                    corrupt "frame %d at offset %d: file ends mid-header"
                      !frame_no offset;
                finished := true
            | hdr -> (
                let tag = String.sub hdr 0 4 in
                let u32 off =
                  Char.code hdr.[off]
                  lor (Char.code hdr.[off + 1] lsl 8)
                  lor (Char.code hdr.[off + 2] lsl 16)
                  lor (Char.code hdr.[off + 3] lsl 24)
                in
                let len = u32 4 in
                let crc = u32 8 in
                let what = Printf.sprintf "frame %d (%s at offset %d)" !frame_no
                    (String.trim tag) offset in
                if tag <> tag_head && tag <> tag_segm && tag <> tag_end then
                  corrupt "frame %d at offset %d: unknown tag %S" !frame_no
                    offset tag;
                let payload = Bytes.create len in
                (match really_input ic payload 0 len with
                | exception End_of_file ->
                    (* The writer was killed mid-frame: everything sealed
                       before this point is intact. *)
                    if strict then
                      corrupt "%s: file ends mid-frame (%d payload bytes missing)"
                        what (len - (in_channel_length ic - offset - 12));
                    finished := true
                | () ->
                    let got = crc_final (crc_update crc_init payload 0 len) in
                    if got <> crc then
                      corrupt "%s: CRC mismatch (stored %08x, computed %08x)"
                        what crc got;
                    let c = { cbuf = payload; cpos = 0; clen = len; cwhat = what } in
                    if !complete then corrupt "%s: data after END frame" what;
                    if tag = tag_head then begin
                      if !frame_no <> 0 then corrupt "%s: duplicate HEAD" what;
                      version := cuvarint c;
                      let n_meta = cuvarint c in
                      for _ = 1 to n_meta do
                        let k = cstring c in
                        let v = cstring c in
                        meta := (k, v) :: !meta
                      done
                      (* The intern tables are self-description for foreign
                         readers; this reader trusts its own Trace. *)
                    end
                    else if !frame_no = 0 then
                      corrupt "%s: first frame must be HEAD" what
                    else if tag = tag_segm then
                      acc := decode_segment st c ~off:offset !acc f
                    else begin
                      let segs = cuvarint c in
                      let evs = cuvarint c in
                      end_last_ts := cuvarint c;
                      let _streams = cuvarint c in
                      if segs <> st.d_segments || evs <> st.d_events then
                        corrupt
                          "%s: END totals disagree (declares %d segments / %d \
                           events, decoded %d / %d)"
                          what segs evs st.d_segments st.d_events;
                      complete := true
                    end;
                    incr frame_no))
          done;
          if strict && not !complete then
            corrupt "journal was never finalized (no END frame)";
          Ok
            ( !acc,
              {
                version = !version;
                meta = List.rev !meta;
                machines = List.sort compare st.d_machines;
                events = st.d_events;
                segments = st.d_segments;
                complete = !complete;
                last_ts = (if !complete then !end_last_ts else st.d_last_ts);
              } )
        with
        | Corrupt msg -> Error (path ^ ": " ^ msg)
        | End_of_file -> Error (path ^ ": truncated header")
      in
      cleanup ();
      result)

let read ?strict ~path () =
  match fold ?strict ~path ~init:[] (fun acc e -> e :: acc) with
  | Error _ as e -> e
  | Ok (rev, info) -> Ok (List.rev rev, info)

let read_info ~path =
  match fold ~path ~init:() (fun () _ -> ()) with
  | Error _ as e -> e
  | Ok ((), info) -> Ok info

let machine_name info id =
  match List.assoc_opt id info.machines with
  | Some n -> n
  | None -> Printf.sprintf "m%d" id
