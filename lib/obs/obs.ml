(** Re-exported submodules: the library's entry module shadows them. *)

module Trace = Trace
module Emitter = Emitter
module Counter = Counter
module Ring = Ring
module Histogram = Histogram
module Chrome = Chrome
module Attrib = Attrib
module Flame = Flame
module Metrics = Metrics
module Audit = Audit
module Request = Request
module Window = Window
module Slo = Slo
module Health = Health
module Dash = Dash
module Journal = Journal
module Query = Query
module Critical = Critical
module Diff = Diff
module Sketch = Sketch
module Topk = Topk
module Exemplar = Exemplar
module Agg = Agg

let with_span emitter ~now phase f =
  Emitter.emit emitter (Trace.span_begin phase) ~ts:(now ()) ~arg:0;
  Fun.protect
    ~finally:(fun () ->
      Emitter.emit emitter (Trace.span_end phase) ~ts:(now ()) ~arg:0)
    f
