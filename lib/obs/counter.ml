type t = { counts : int array; arg_sums : int array }

let create () =
  { counts = Array.make Trace.n_kinds 0; arg_sums = Array.make Trace.n_kinds 0 }

let sink t kind ~ts:_ ~arg =
  let i = Trace.index kind in
  t.counts.(i) <- t.counts.(i) + 1;
  t.arg_sums.(i) <- t.arg_sums.(i) + arg

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let count t kind = t.counts.(Trace.index kind)
let arg_sum t kind = t.arg_sums.(Trace.index kind)

let total t = Array.fold_left ( + ) 0 t.counts

let reset t =
  Array.fill t.counts 0 Trace.n_kinds 0;
  Array.fill t.arg_sums 0 Trace.n_kinds 0
