(** Per-sandbox / per-tenant health state machine driven by watchdog rules.

    Register one {!subject} per sandbox or tenant, feed it observations
    (EMC activity, request begin/end, audit denials), and {!check} at a
    steady cadence. A check scores the subject "bad" when a watchdog trips:

    - {e EMC stall}: a request is in flight but the subject has made no
      monitor call for [stall_cycles];
    - {e deadline overrun}: a request is in flight past [deadline_cycles],
      or a completed request exceeded it since the last check;
    - {e denial spike}: [denial_spike]+ audit denials since the last check.

    Transitions are hysteretic in both directions: [degrade_after]
    consecutive bad checks take Healthy -> Degraded, [unhealthy_after] more
    take Degraded -> Unhealthy, and [recover_after] consecutive clean
    checks step one level back up.

    Checks never advance the virtual clock. Every transition emits a
    {!Trace.Health_transition} event ([arg = id lsl 2 lor state index])
    and lands on the emitter's audit rail (category ["health"], [Deny] on
    demotion / [Info] on recovery) when a chain is attached. *)

type state = Healthy | Degraded | Unhealthy

val state_index : state -> int
(** Dense index (0/1/2), as packed into the transition event arg. *)

val state_name : state -> string

type rules = {
  stall_cycles : int;
  deadline_cycles : int;
  denial_spike : int;
  degrade_after : int;
  unhealthy_after : int;
  recover_after : int;
}

val default_rules : rules

type subject
type t

val create : ?emit:Emitter.t -> ?rules:rules -> unit -> t

val register : t -> name:string -> now:int -> subject
(** Add a subject (initially Healthy; its EMC watchdog is armed from
    [now]). *)

val subjects : t -> subject list
val name : subject -> string
val id : subject -> int
val state : subject -> state
val requests : subject -> int
val total_overruns : subject -> int
val total_denials : subject -> int

(** {2 Feeding observations} *)

val note_emc : subject -> now:int -> unit
val note_denial : subject -> unit
val begin_request : subject -> now:int -> unit
val end_request : t -> subject -> now:int -> latency:int -> unit

val watch : t -> subject -> Emitter.t -> unit
(** Route a machine emitter's events to one subject (EMCs, MMU denials,
    request windows) — the single-machine adapter [run --dash] uses.
    Request latency is derived from the Req_begin/Req_end window bounds. *)

val check : t -> now:int -> unit
(** Run the watchdogs for every subject and apply the state machine. *)

val transitions : t -> (int * subject * state) list
(** Chronological [(ts, subject, new state)] transitions. *)

val transitions_of : t -> subject -> (int * state) list

val to_json : t -> string
