(* Mergeable relative-error quantile sketch (DDSketch-style).

   Values v >= 1 land in log-gamma bucket i = ceil (ln v / ln gamma) with
   gamma = (1 + alpha) / (1 - alpha); bucket i is estimated by the
   midpoint 2*gamma^i / (gamma + 1), which sits within a relative error of
   alpha of every value in the bucket (plus at most 1 from integer
   rounding). Values <= 0 are counted in a dedicated zero bucket and
   estimated exactly as the observed minimum via the [min, max] clamp.

   The bucket array statically covers the full int range (~2150 buckets at
   alpha = 1%), so the record path never resizes. A [capacity] smaller
   than that bounds the number of *live* buckets: the canonical floor is
   [max 0 (hi - capacity + 1)] where [hi] is the index of the largest
   value observed, and all mass below the floor is collapsed into the
   floor bucket ("collapse lowest"). Because the floor is a function of
   the value multiset alone (via the maximum) and collapsing commutes with
   bucket-wise addition, the full state — and therefore {!serialize}'s
   output — depends only on the multiset of recorded values, never on
   record or merge order: {!merge} is exactly associative and
   commutative. *)

type t = {
  alpha : float;
  lgamma : float; (* ln gamma *)
  inv_lgamma : float;
  est_factor : float; (* 2 / (gamma + 1): est(i) = gamma^i * est_factor *)
  max_index : int; (* index of max_int: highest usable bucket *)
  capacity : int; (* max live buckets before collapse-lowest *)
  buckets : int array; (* length max_index + 1, allocated once *)
  mutable zeros : int; (* values <= 0 *)
  mutable floor : int; (* lowest live index; all lower mass lives here *)
  mutable hi : int; (* index of the largest positive value; -1 if none *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int; (* max_int sentinel while empty *)
  mutable max_v : int; (* min_int sentinel while empty *)
}

let default_alpha = 0.01

let index_for ~inv_lgamma v =
  (* ceil (ln v / ln gamma); v = 1 -> 0. Single float expression so the
     native compiler keeps every intermediate unboxed (record-path is
     allocation-free). *)
  int_of_float (Float.ceil (Float.log (float_of_int v) *. inv_lgamma))

let create ?(alpha = default_alpha) ?capacity () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  let lgamma = Float.log gamma in
  let inv_lgamma = 1.0 /. lgamma in
  let max_index = index_for ~inv_lgamma max_int in
  let capacity =
    match capacity with
    | None -> max_index + 1 (* no collapse by default *)
    | Some c ->
        if c < 1 then invalid_arg "Sketch.create: capacity must be >= 1";
        c
  in
  {
    alpha;
    lgamma;
    inv_lgamma;
    est_factor = 2.0 /. (gamma +. 1.0);
    max_index;
    capacity;
    buckets = Array.make (max_index + 1) 0;
    zeros = 0;
    floor = 0;
    hi = -1;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let alpha t = t.alpha
let capacity t = t.capacity
let count t = t.count
let sum t = t.sum
let zeros t = t.zeros
let bucket_floor t = t.floor
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let index_of t v =
  if v <= 1 then 0
  else
    let i = index_for ~inv_lgamma:t.inv_lgamma v in
    if i > t.max_index then t.max_index else if i < 0 then 0 else i

(* Raise the floor to [nf], folding everything below it into bucket [nf].
   Cold path: runs only when a new maximum pushes past [capacity]. *)
let collapse_to t nf =
  let b = t.buckets in
  for i = t.floor to nf - 1 do
    b.(nf) <- b.(nf) + b.(i);
    b.(i) <- 0
  done;
  t.floor <- nf

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= 0 then t.zeros <- t.zeros + 1
  else begin
    let i = index_of t v in
    if i > t.hi then begin
      t.hi <- i;
      let nf = i - t.capacity + 1 in
      if nf > t.floor then collapse_to t nf
    end;
    let bkt = if i < t.floor then t.floor else i in
    t.buckets.(bkt) <- t.buckets.(bkt) + 1
  end

(* Midpoint estimate for bucket [i], within alpha relative error of every
   value the bucket covers (before rounding to int). *)
let estimate t i =
  let e = Float.exp (float_of_int i *. t.lgamma) *. t.est_factor in
  if e >= float_of_int max_int then max_int
  else int_of_float (Float.round e)

let quantile t ~p =
  if t.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    if p <= 0.0 then t.min_v
    else if p >= 1.0 then t.max_v
    else begin
      let rank = p *. float_of_int t.count in
      let clamp v = min (max v t.min_v) t.max_v in
      if float_of_int t.zeros >= rank then clamp 0
      else begin
        let cum = ref t.zeros and b = ref t.floor and res = ref t.max_v in
        (try
           while !b <= t.hi do
             let c = t.buckets.(!b) in
             if c > 0 then begin
               cum := !cum + c;
               if float_of_int !cum >= rank then begin
                 res := clamp (estimate t !b);
                 raise_notrace Exit
               end
             end;
             incr b
           done
         with Exit -> ());
        !res
      end
    end
  end

let mergeable a b =
  a.alpha = b.alpha && a.capacity = b.capacity

let merge ~into src =
  if into == src then invalid_arg "Sketch.merge: cannot merge into itself";
  if not (mergeable into src) then
    invalid_arg "Sketch.merge: alpha/capacity mismatch";
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  into.zeros <- into.zeros + src.zeros;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.hi > into.hi then into.hi <- src.hi;
  let nf = into.hi - into.capacity + 1 in
  if nf > into.floor then collapse_to into nf;
  if src.hi >= 0 then
    for i = src.floor to src.hi do
      let c = src.buckets.(i) in
      if c > 0 then begin
        let bkt = if i < into.floor then into.floor else i in
        into.buckets.(bkt) <- into.buckets.(bkt) + c
      end
    done

(* Non-empty live buckets as [(index, count)], ascending. *)
let buckets t =
  let out = ref [] in
  if t.hi >= 0 then
    for i = t.hi downto t.floor do
      if t.buckets.(i) > 0 then out := (i, t.buckets.(i)) :: !out
    done;
  !out

(* {2 Compact binary wire format}

   "ESK1" magic, alpha as 8 big-endian IEEE-754 bytes, then LEB128
   varints (zigzag for signed fields):

     capacity, count, sum~, min~, max~, zeros, floor, hi+1,
     n_live, (index_delta, count) * n_live

   Live buckets are emitted in ascending index order with the index
   delta-coded from the previous one (the first is delta-coded from the
   floor), so the encoding of a given state is unique: byte equality of
   [serialize] is state equality. *)

let put_varint = Sketch_wire.put_varint
let put_signed = Sketch_wire.put_signed

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ESK1";
  Buffer.add_int64_be buf (Int64.bits_of_float t.alpha);
  put_varint buf t.capacity;
  put_varint buf t.count;
  put_signed buf t.sum;
  put_signed buf (if t.count = 0 then 0 else t.min_v);
  put_signed buf (if t.count = 0 then 0 else t.max_v);
  put_varint buf t.zeros;
  put_varint buf t.floor;
  put_varint buf (t.hi + 1);
  let live = buckets t in
  put_varint buf (List.length live);
  let prev = ref t.floor in
  List.iter
    (fun (i, c) ->
      put_varint buf (i - !prev);
      prev := i;
      put_varint buf c)
    live;
  Buffer.contents buf

exception Bad = Sketch_wire.Bad

let get_varint = Sketch_wire.get_varint
let get_signed = Sketch_wire.get_signed

let deserialize s =
  try
    if String.length s < 12 || String.sub s 0 4 <> "ESK1" then
      raise (Bad "sketch: bad magic");
    let alpha = Int64.float_of_bits (String.get_int64_be s 4) in
    if not (alpha > 0.0 && alpha < 1.0) then
      raise (Bad "sketch: alpha out of range");
    let pos = ref 12 in
    let capacity = get_varint s pos in
    let t = create ~alpha ~capacity () in
    t.count <- get_varint s pos;
    t.sum <- get_signed s pos;
    let mn = get_signed s pos and mx = get_signed s pos in
    if t.count > 0 then begin
      t.min_v <- mn;
      t.max_v <- mx
    end;
    t.zeros <- get_varint s pos;
    t.floor <- get_varint s pos;
    t.hi <- get_varint s pos - 1;
    if t.hi > t.max_index || t.floor > t.max_index then
      raise (Bad "sketch: bucket index out of range");
    let n_live = get_varint s pos in
    let prev = ref t.floor in
    let total = ref t.zeros in
    for _ = 1 to n_live do
      let i = !prev + get_varint s pos in
      let c = get_varint s pos in
      if i > t.hi then raise (Bad "sketch: bucket above hi");
      if c = 0 then raise (Bad "sketch: empty live bucket");
      t.buckets.(i) <- c;
      total := !total + c;
      prev := i
    done;
    if !pos <> String.length s then raise (Bad "sketch: trailing bytes");
    if !total <> t.count then raise (Bad "sketch: count mismatch");
    Result.Ok t
  with Bad e -> Result.Error e

(* {2 Per-kind family, attachable as an emitter sink} *)

module Family = struct
  type sketch = t

  type nonrec t = { sketches : t array (* kind index -> sketch *) }

  let create ?(alpha = default_alpha) ?capacity () =
    {
      sketches =
        Array.init Trace.n_kinds (fun _ -> create ~alpha ?capacity ());
    }

  let sink f kind ~ts:_ ~arg = record f.sketches.(Trace.index kind) arg

  let attach emitter f =
    Emitter.attach emitter (sink f);
    f

  let get f kind = f.sketches.(Trace.index kind)

  let merge ~into src =
    Array.iteri
      (fun i s -> merge ~into:into.sketches.(i) s)
      src.sketches
end
