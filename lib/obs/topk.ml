(* Space-saving heavy-hitter summary (Metwally et al.) with a mergeable,
   order-invariant sealed form.

   The live structure keeps at most [capacity] keyed counters. A hit
   increments in place (allocation-free: Hashtbl.find with the
   preallocated Not_found, mutable entry fields). A miss with the table
   full evicts the minimum-count entry (smallest key on ties, so eviction
   is deterministic) and inherits its count as the new entry's possible
   overcount [err]. Classic guarantees hold: for a tracked key,
   true count is within [count - err, count], and any untracked key's
   true count is at most [floor t] (the minimum tracked count once
   full).

   Sealing produces a summary whose entries carry (count, err, fl_in)
   where [fl_in] is the floor of the summary the key appeared in, plus a
   scalar [floor_total]. Merging summaries is a key-wise sum of all
   three fields plus the floors — pure pointwise addition over a sorted
   key union, hence exactly associative and commutative, and the
   serialized bytes depend only on the multiset of sealed inputs. For a
   merged entry, true count lies within
   [count - err, count + (floor_total - fl_in)]: the slack term bounds
   the occurrences a key may have had in summaries that did not track
   it. *)

type entry = { key : string; mutable count : int; mutable err : int }

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable size : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Topk.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create (2 * capacity); size = 0 }

let capacity t = t.capacity
let size t = t.size

let floor t =
  if t.size < t.capacity then 0
  else
    Hashtbl.fold (fun _ e acc -> min acc e.count) t.tbl max_int

(* The eviction victim: minimum count, smallest key on ties. *)
let victim t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some b ->
          if e.count < b.count || (e.count = b.count && e.key < b.key) then
            Some e
          else acc)
    t.tbl None

let observe t ~key ~weight =
  if weight < 0 then invalid_arg "Topk.observe: negative weight";
  match Hashtbl.find t.tbl key with
  | e -> e.count <- e.count + weight
  | exception Not_found ->
      if t.size < t.capacity then begin
        Hashtbl.replace t.tbl key { key; count = weight; err = 0 };
        t.size <- t.size + 1
      end
      else begin
        match victim t with
        | None -> assert false
        | Some v ->
            Hashtbl.remove t.tbl v.key;
            Hashtbl.replace t.tbl key
              { key; count = v.count + weight; err = v.count }
      end

let count t ~key =
  match Hashtbl.find_opt t.tbl key with Some e -> e.count | None -> 0

(* {2 Sealed, mergeable summaries} *)

type sentry = {
  skey : string;
  scount : int; (* recorded count (possible overcount included) *)
  serr : int; (* upper bound on the overcount part of [scount] *)
  fl_in : int; (* sum of floors of summaries that tracked this key *)
}

type summary = {
  floor_total : int; (* sum of floors of every summary merged in *)
  entries : sentry list; (* ascending by key *)
}

let empty_summary = { floor_total = 0; entries = [] }

let seal t =
  let fl = if t.size < t.capacity then 0 else floor t in
  let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [] in
  let es = List.sort (fun a b -> compare a.key b.key) es in
  {
    floor_total = fl;
    entries =
      List.map
        (fun e -> { skey = e.key; scount = e.count; serr = e.err; fl_in = fl })
        es;
  }

let merge_summaries a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs', y :: ys' ->
        let c = compare x.skey y.skey in
        if c < 0 then go xs' ys (x :: acc)
        else if c > 0 then go xs ys' (y :: acc)
        else
          go xs' ys'
            ({
               skey = x.skey;
               scount = x.scount + y.scount;
               serr = x.serr + y.serr;
               fl_in = x.fl_in + y.fl_in;
             }
            :: acc)
  in
  {
    floor_total = a.floor_total + b.floor_total;
    entries = go a.entries b.entries [];
  }

type ranked = {
  rkey : string;
  rcount : int;
  lower : int; (* guaranteed minimum true count *)
  upper : int; (* guaranteed maximum true count *)
}

let ranked s e =
  {
    rkey = e.skey;
    rcount = e.scount;
    lower = e.scount - e.serr;
    upper = e.scount + (s.floor_total - e.fl_in);
  }

(* Top-n by recorded count, descending; ties broken by key ascending so
   the ranking is deterministic. Truncation happens only here, at read
   time — the summary itself keeps every key any input tracked. *)
let top ?n s =
  let all =
    List.sort
      (fun a b ->
        if a.scount <> b.scount then compare b.scount a.scount
        else compare a.skey b.skey)
      s.entries
  in
  let all = List.map (ranked s) all in
  match n with
  | None -> all
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: xs -> x :: take (k - 1) xs
      in
      take (max 0 n) all

let floor_total s = s.floor_total
let n_keys s = List.length s.entries

(* {2 Canonical wire format}

   "ETK1" magic, then varints: floor_total, n_entries, and per entry
   (ascending key order) key_len, key bytes, scount, serr, fl_in. The
   sorted order makes byte equality state equality. *)

let serialize s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ETK1";
  Sketch_wire.put_varint buf s.floor_total;
  Sketch_wire.put_varint buf (List.length s.entries);
  List.iter
    (fun e ->
      Sketch_wire.put_varint buf (String.length e.skey);
      Buffer.add_string buf e.skey;
      Sketch_wire.put_varint buf e.scount;
      Sketch_wire.put_varint buf e.serr;
      Sketch_wire.put_varint buf e.fl_in)
    s.entries;
  Buffer.contents buf

let deserialize s =
  try
    if String.length s < 4 || String.sub s 0 4 <> "ETK1" then
      raise (Sketch_wire.Bad "topk: bad magic");
    let pos = ref 4 in
    let floor_total = Sketch_wire.get_varint s pos in
    let n = Sketch_wire.get_varint s pos in
    let prev = ref "" in
    let entries = ref [] in
    for i = 1 to n do
      let len = Sketch_wire.get_varint s pos in
      if !pos + len > String.length s then
        raise (Sketch_wire.Bad "topk: truncated key");
      let key = String.sub s !pos len in
      pos := !pos + len;
      if i > 1 && key <= !prev then
        raise (Sketch_wire.Bad "topk: keys not strictly ascending");
      prev := key;
      let scount = Sketch_wire.get_varint s pos in
      let serr = Sketch_wire.get_varint s pos in
      let fl_in = Sketch_wire.get_varint s pos in
      entries := { skey = key; scount; serr; fl_in } :: !entries
    done;
    if !pos <> String.length s then
      raise (Sketch_wire.Bad "topk: trailing bytes");
    Result.Ok { floor_total; entries = List.rev !entries }
  with Sketch_wire.Bad e -> Result.Error e
