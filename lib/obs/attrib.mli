(** Cycle-attribution sink: attributes every advance of the virtual clock to
    the innermost open (domain x phase) span context, building a
    calling-context tree over {!Trace.phase}s.

    Conservation invariant: after {!close}[ t ~now] with [now] the final
    clock value, [total t = now - t0] exactly (with [t0] the clock value at
    attach time, normally 0) — every cycle is attributed to exactly one
    context, with cycles outside any span accruing to the root and reported
    by {!unattributed}.

    Only span-boundary events are consulted; they are emitted at the
    current clock and arrive in stream order, unlike e.g. EMC completion
    events which carry past timestamps. A begin for the phase already
    innermost re-enters that node instead of nesting, so layered
    instrumentation of one logical handler collapses to one context. *)

type t

val create : unit -> t
val attach : Emitter.t -> t -> t

val sink : t -> Emitter.sink

val close : t -> now:int -> unit
(** Charge the cycles between the last span boundary and [now] to the
    current innermost context. Call once, when the clock stops moving. *)

val open_depth : t -> int
(** Number of spans currently open (0 after a balanced run). *)

val total : t -> int
(** Sum of all attributed cycles, root included. *)

val unattributed : t -> int
(** Cycles observed while no span was open. *)

val phase_cycles : t -> Trace.phase -> int
(** Total self-cycles of every context with this phase, across the tree. *)

val domain_cycles : t -> Trace.domain -> int

val breakdown : t -> (Trace.domain * Trace.phase * int) list
(** Per-(domain x phase) self-cycles, nonzero entries only, in
    {!Trace.phase_index} order. [unattributed] is not included:
    [unattributed t + sum breakdown = total t]. *)

type view = {
  vphase : Trace.phase option;  (** [None] only at the root. *)
  vself : int;                  (** Cycles charged directly here. *)
  vtotal : int;                 (** [vself] + all descendants. *)
  vkids : view list;            (** Children in {!Trace.phase_index} order. *)
}

val view : t -> view
(** Immutable snapshot of the context tree (for flamegraph export etc.);
    deterministic for a deterministic event stream. *)
