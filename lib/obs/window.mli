(** Sliding-window sink: time-bucketed counters and histograms keyed to the
    {e virtual} clock.

    A fixed ring of [buckets] buckets, each [width] virtual cycles wide.
    Rotation is driven by the timestamps events already carry — when a
    recorded [ts] crosses the current bucket's end the ring steps forward
    (clearing re-used buckets) — so the window needs no wall clock, never
    advances the virtual clock, and two identical runs age their buckets
    identically. The record path is allocation-free (flat preallocated int
    arrays); queries merge the last N buckets on read.

    Per-kind counts and arg sums are kept for every {!Trace.kind}; a
    configurable subset ([hist_kinds]) additionally keeps per-bucket log2
    histograms with min/max, enabling {!percentile} and {!over}. *)

type t

val create :
  ?hist_kinds:Trace.kind list ->
  ?ghz:float ->
  width:int ->
  buckets:int ->
  unit ->
  t
(** [width] is virtual cycles per bucket, [buckets] the ring size, so the
    window spans [width * buckets] cycles. [hist_kinds] (default
    [Emc_entry; Req_end; Tdcall; Vmcall]) selects the kinds whose arg
    distribution is bucketed for percentiles. [ghz] (default 2.1, mirroring
    [Hw.Cycles.ghz]) converts cycle spans to seconds for {!rate}. *)

val attach : Emitter.t -> t -> t
(** Attach as a sink: every emitted event is recorded. *)

val record : t -> Trace.kind -> ts:int -> arg:int -> unit
(** Record one event directly (drivers that attribute events to per-tenant
    windows themselves feed this instead of attaching). Allocation-free. *)

val advance : t -> now:int -> unit
(** Rotate the ring up to [now] without recording — call before reading so
    queries reflect the current time, not the last event's. *)

val width : t -> int
val buckets : t -> int
val ghz : t -> float

val hist_tracked : t -> Trace.kind -> bool
(** Whether [kind] was in [hist_kinds] (i.e. {!percentile}/{!over} work). *)

(** {2 Queries over the last [windows] buckets (current included)}

    [windows] defaults to the whole ring and is capped at the ring size. *)

val count : t -> ?windows:int -> Trace.kind -> int
val arg_sum : t -> ?windows:int -> Trace.kind -> int

val total_count : t -> Trace.kind -> int
(** Lifetime count, unaffected by bucket aging. *)

val span_cycles : t -> ?windows:int -> ?now:int -> unit -> int
(** The virtual span the queried buckets cover: full closed buckets plus
    the elapsed part of the current one. [now] defaults to the current
    bucket's end (deterministic without a clock). *)

val rate : t -> ?windows:int -> ?now:int -> Trace.kind -> float
(** Events per virtual second over the span ([count / span / ghz]). *)

val percentile : t -> ?windows:int -> Trace.kind -> p:float -> int
(** Merge-on-read percentile over the last N windows, with
    {!Histogram.percentile}'s semantics: [p] is clamped to [[0, 1]], the
    estimate is clamped to the observed [min, max] of the merged span, and
    an empty span returns 0. Raises [Invalid_argument] for a kind not in
    [hist_kinds]. *)

val over : t -> ?windows:int -> Trace.kind -> threshold:int -> int
(** Samples whose arg exceeded [threshold], estimated from the log2
    buckets: counts buckets entirely above the threshold, so the answer is
    conservative within the histogram's factor-of-two band. Raises
    [Invalid_argument] for a kind not in [hist_kinds]. *)

val to_json : t -> ?now:int -> unit -> string
(** Snapshot of every kind with a nonzero windowed count: count, arg sum,
    per-second rate, lifetime total, and p50/p95/p99 for tracked kinds. *)
