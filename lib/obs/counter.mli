(** The counter sink: per-kind event counts and argument sums.

    This is the single source of truth for every statistic the simulator
    reports — [Sim.Stats.snapshot] is derived from one of these, replacing
    the per-layer ad-hoc counters it used to stitch together. *)

type t

val create : unit -> t

val attach : Emitter.t -> t -> t
(** Subscribe to the emitter; returns [t] for chaining. *)

val count : t -> Trace.kind -> int
val arg_sum : t -> Trace.kind -> int
(** Sum of the event arguments for a kind — for kinds whose arg is a cycle
    measurement ([Emc_entry], [Emc _], [Tdcall]) this is total attributed
    cycles; for channel kinds it is total payload bytes. *)

val total : t -> int
val reset : t -> unit
