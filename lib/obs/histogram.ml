(* Per-kind log2-bucketed histogram of event arguments. Bucket [b] holds
   values [v] with [bits v = b] where [bits 0 = 0]; i.e. bucket 0 is {0},
   bucket 1 is {1}, bucket 2 is {2,3}, bucket 3 is {4..7}, ... Useful for
   kinds whose arg is a latency (EMC round trips, tdcalls). *)

let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let bucket_lo b = if b <= 1 then b else 1 lsl (b - 1)
let bucket_hi b = if b = 0 then 0 else (1 lsl b) - 1

type t = {
  buckets : int array array; (* kind index -> bucket -> count *)
  counts : int array;
  sums : int array;
  mins : int array; (* max_int sentinel while empty *)
  maxs : int array;
}

let create () =
  {
    buckets = Array.init Trace.n_kinds (fun _ -> Array.make n_buckets 0);
    counts = Array.make Trace.n_kinds 0;
    sums = Array.make Trace.n_kinds 0;
    mins = Array.make Trace.n_kinds max_int;
    maxs = Array.make Trace.n_kinds 0;
  }

let sink t kind ~ts:_ ~arg =
  let i = Trace.index kind in
  let b = bucket_of arg in
  t.buckets.(i).(b) <- t.buckets.(i).(b) + 1;
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums.(i) <- t.sums.(i) + arg;
  if arg < t.mins.(i) then t.mins.(i) <- arg;
  if arg > t.maxs.(i) then t.maxs.(i) <- arg

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let count t kind = t.counts.(Trace.index kind)
let sum t kind = t.sums.(Trace.index kind)
let max_value t kind = t.maxs.(Trace.index kind)

let min_value t kind =
  let i = Trace.index kind in
  if t.counts.(i) = 0 then 0 else t.mins.(i)

let mean t kind =
  let i = Trace.index kind in
  if t.counts.(i) = 0 then 0.0
  else float_of_int t.sums.(i) /. float_of_int t.counts.(i)

let buckets t kind =
  let row = t.buckets.(Trace.index kind) in
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if row.(b) > 0 then out := (bucket_lo b, bucket_hi b, row.(b)) :: !out
  done;
  !out

let bucket_count t kind ~value =
  t.buckets.(Trace.index kind).(bucket_of value)

(* Percentile estimate from the log2 buckets: walk to the bucket holding the
   rank, then interpolate linearly inside its [lo, hi] range, clamping the
   estimate to the observed [min, max]. Exact when a bucket spans a single
   value (buckets 0 and 1) or holds a single distinct sample, within a
   factor-of-two band otherwise — plenty for latency reporting. The clamps
   pin the edges: an empty distribution is 0, p <= 0 is the observed
   minimum, p >= 1 the observed maximum, and a single-sample distribution
   returns that sample at every p. *)
let percentile t kind ~p =
  let i = Trace.index kind in
  let n = t.counts.(i) in
  if n = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    if p <= 0.0 then t.mins.(i)
    else begin
      let rank = p *. float_of_int n in
      let row = t.buckets.(i) in
      let rec go b cum =
        if b >= n_buckets then t.maxs.(i)
        else begin
          let c = row.(b) in
          if c > 0 && float_of_int (cum + c) >= rank then begin
            let lo = bucket_lo b and hi = bucket_hi b in
            let within = (rank -. float_of_int cum) /. float_of_int c in
            let v = float_of_int lo +. (within *. float_of_int (hi - lo)) in
            min (max (int_of_float (Float.round v)) t.mins.(i)) t.maxs.(i)
          end
          else go (b + 1) (cum + c)
        end
      in
      go 0 0
    end
  end

let pp fmt (t, kind) =
  let bs = buckets t kind in
  let widest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 bs in
  Fmt.pf fmt "%s: n=%d mean=%.0f max=%d p50=%d p95=%d p99=%d@."
    (Trace.name kind) (count t kind) (mean t kind) (max_value t kind)
    (percentile t kind ~p:0.50) (percentile t kind ~p:0.95)
    (percentile t kind ~p:0.99);
  List.iter
    (fun (lo, hi, c) ->
      let bar = String.make (max 1 (c * 40 / widest)) '#' in
      Fmt.pf fmt "  [%8d, %8d] %8d %s@." lo hi c bar)
    bs
