(** Tamper-evident audit log of monitor security decisions.

    Every record is HMAC-SHA256 hash-chained to its predecessor: record
    [i]'s MAC covers the previous record's MAC and a canonical encoding of
    record [i]'s body. {!finalize} appends a close record carrying the
    record count. The offline {!verify_string} therefore detects record
    tampering (MAC mismatch), reordering and drops (sequence/MAC breaks)
    and tail truncation (missing or inconsistent close record).

    Appending is pure bookkeeping — it never advances the virtual clock, so
    calibrated results are unchanged with auditing enabled. *)

type verdict = Allow | Deny | Kill | Info

val verdict_name : verdict -> string

type record = {
  seq : int;
  ts : int;            (** Virtual cycles at the decision point. *)
  category : string;   (** "scan", "privop.cr", "mmu", "policy", ... *)
  verdict : verdict;
  detail : string;
  mac : string;        (** Chain MAC, lowercase hex. *)
}

type t

val create : key:bytes -> t
(** Fresh chain under [key]; the genesis MAC is
    [HMAC(key, "erebor-audit-v1")]. *)

val append : t -> ts:int -> category:string -> verdict:verdict ->
  detail:string -> unit
(** Append one decision record. Raises [Invalid_argument] after
    {!finalize}. *)

val finalize : t -> now:int -> unit
(** Append the close record (category ["audit.close"], detail ["count=N"]).
    Idempotent: later calls are no-ops. A chain that was never finalized
    does not verify — that is what makes truncation detectable. *)

val finalized : t -> bool

val length : t -> int
(** Number of decision records (the close record is not counted). *)

val records : t -> record list
(** All records in append order, including the close record once
    finalized. *)

val to_string : t -> string
(** JSONL rendering, one record per line. *)

val verify_string : key:bytes -> string -> (int, string) result
(** [verify_string ~key s] re-walks the chain over a {!to_string} rendering.
    [Ok n] is the number of decision records in an intact, finalized chain;
    [Error msg] pinpoints the first failure (malformed line, sequence gap,
    MAC mismatch, missing/inconsistent close record). *)

val pp_record : Format.formatter -> record -> unit
