(* Live ASCII dashboard driver. Attached as a sink, it watches event
   timestamps and — every [refresh_cycles] of VIRTUAL time — evaluates the
   SLOs, runs the health watchdogs and repaints a compact panel to [out].
   The cadence is therefore keyed to the simulated clock (a run that covers
   more virtual time repaints more often), host I/O happens outside the
   simulation, and nothing here ever advances the clock.

   [snapshot_json] renders the full window/SLO/health state as one JSON
   document; callers register it as an Emitter finalizer so the final
   snapshot survives abnormal exits the same way audit chains do. *)

type t = {
  window : Window.t;
  slo : Slo.t option;
  health : Health.t option;
  refresh : int;
  out : out_channel option;
  label : string;
  mutable next_refresh : int;
  mutable refreshes : int;
  mutable last_now : int;
}

let create ?(label = "run") ?out ?slo ?health ~refresh_cycles ~window () =
  if refresh_cycles <= 0 then
    invalid_arg "Dash.create: refresh_cycles must be positive";
  {
    window;
    slo;
    health;
    refresh = refresh_cycles;
    out;
    label;
    next_refresh = refresh_cycles;
    refreshes = 0;
    last_now = 0;
  }

let refreshes t = t.refreshes

let virtual_seconds t now = float_of_int now /. (Window.ghz t.window *. 1e9)

let panel_kinds =
  [
    Trace.Emc_entry;
    Trace.Syscall;
    Trace.Page_fault;
    Trace.Ve_exit;
    Trace.Timer_irq;
    Trace.Context_switch;
    Trace.Mmu_deny;
    Trace.Req_end;
  ]

let render t ~now =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "-- %s @ %.3fs virtual (refresh %d) --------------------\n" t.label
    (virtual_seconds t now) t.refreshes;
  Buffer.add_string buf "  rates/s:";
  List.iter
    (fun kind ->
      if Window.count t.window kind > 0 then
        Printf.bprintf buf " %s %.1fk" (Trace.name kind)
          (Window.rate t.window ~now kind /. 1000.0))
    panel_kinds;
  Buffer.add_char buf '\n';
  List.iter
    (fun kind ->
      if Window.hist_tracked t.window kind && Window.count t.window kind > 0
      then
        Printf.bprintf buf "  %s p50/p95/p99: %d/%d/%d cy\n" (Trace.name kind)
          (Window.percentile t.window kind ~p:0.50)
          (Window.percentile t.window kind ~p:0.95)
          (Window.percentile t.window kind ~p:0.99))
    panel_kinds;
  (match t.slo with
  | None -> ()
  | Some slo ->
      List.iter
        (fun (s : Slo.status) ->
          Printf.bprintf buf "  slo %-12s burn fast %6.2f slow %6.2f  [%s]\n"
            s.Slo.objective.Slo.name s.Slo.fast_burn s.Slo.slow_burn
            (if s.Slo.firing then "FIRING" else "ok"))
        (Slo.statuses slo));
  (match t.health with
  | None -> ()
  | Some h ->
      List.iter
        (fun s ->
          Printf.bprintf buf
            "  health %-10s %-9s (%d reqs, %d overruns, %d denials)\n"
            (Health.name s)
            (Health.state_name (Health.state s))
            (Health.requests s)
            (Health.total_overruns s)
            (Health.total_denials s))
        (Health.subjects h));
  Buffer.contents buf

(* One evaluation tick: bump the deadline FIRST so the Slo_alert /
   Health_transition events an evaluation emits (which re-enter this sink
   when it shares the emitter) cannot recurse. *)
let tick t ~now =
  t.next_refresh <- now + t.refresh;
  t.refreshes <- t.refreshes + 1;
  t.last_now <- now;
  (match t.slo with Some s -> Slo.evaluate s ~now | None -> ());
  (match t.health with Some h -> Health.check h ~now | None -> ());
  match t.out with
  | None -> ()
  | Some oc ->
      output_string oc (render t ~now);
      flush oc

let sink t kind ~ts ~arg =
  ignore kind;
  ignore arg;
  if ts >= t.next_refresh then tick t ~now:ts;
  if ts > t.last_now then t.last_now <- ts

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let snapshot_json t ~now =
  let now = max now t.last_now in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\"schema\":\"erebor-dash/1\",\"label\":\"%s\",\"ts\":%d,\"virtual_s\":%.6f,\"refreshes\":%d,\"window\":%s"
    (Metrics.escape_json t.label)
    now (virtual_seconds t now) t.refreshes
    (Window.to_json t.window ~now ());
  (match t.slo with
  | None -> ()
  | Some s -> Printf.bprintf buf ",\"slo\":%s" (Slo.to_json s));
  (match t.health with
  | None -> ()
  | Some h -> Printf.bprintf buf ",\"health\":%s" (Health.to_json h));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
