(** Offline journal queries: filter + group-by over a recorded event stream.

    The first of the three analysis engines layered on {!Journal}: select
    events by kind, machine, sandbox lifetime or time range, then aggregate
    into rows — counts, argument sums and log2-bucketed percentiles (same
    bucketing as the live {!Histogram} sink) — grouped by kind, machine or
    span phase. Runs in one streaming pass; the journal is never
    materialized. *)

type filter = {
  kinds : Trace.kind list;  (** Keep these kinds ([[]] = all). *)
  machines : string list;   (** Keep these machine streams ([[]] = all). *)
  sandbox : int option;
      (** Keep only events inside this sandbox's lifetime window: from its
          [Sandbox_create] to its [Sandbox_exit]/[Sandbox_kill] on the same
          stream (to end-of-stream when it never exits). *)
  t0 : int option;          (** Keep events with [ts >= t0]. *)
  t1 : int option;          (** Keep events with [ts <= t1]. *)
}

val no_filter : filter

type group =
  | By_kind     (** One row per {!Trace.kind}. *)
  | By_machine  (** One row per journal stream. *)
  | By_phase
      (** One row per {!Trace.phase}: spans, counted at [Span_end] with the
          inclusive span duration as the value (begin/end pairing per
          stream). Non-span events are ignored. *)
  | By_none     (** A single ["all"] row. *)

type row = {
  label : string;
  count : int;
  sum : int;      (** Sum of values (event args; span cycles [By_phase]). *)
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;      (** Log2-bucket percentile estimates ({!Histogram}). *)
}

val run :
  ?filter:filter -> ?group:group -> path:string -> unit ->
  (row list * Journal.info, string) result
(** Stream the journal once, returning non-empty rows (descending count,
    label as tiebreak). [group] defaults to [By_kind]. *)

val render : row list -> string
(** Aligned text table (header + one line per row). *)
