(** Metrics registry: renders counter / histogram / attribution sinks as
    Prometheus text exposition or JSON.

    Purely a formatter over sinks owned elsewhere — register the sinks a
    run attached, then render after the run. Metric families:
    [<ns>_events_total{source,kind}], [<ns>_event_arg_total{source,kind}],
    [<ns>_cycles_attributed_total{source,domain,phase}] and the
    [<ns>_event_arg{source,kind}] histogram (cumulative [le] buckets on the
    log2 boundaries). A {!Window} source adds window-scoped gauges —
    [<ns>_window_events{source,kind}], [<ns>_window_rate{source,kind}] and
    [<ns>_window_arg{source,kind,quantile}] — that describe the sliding
    window rather than the whole run. A {!Sketch} source adds the fleet
    families [<ns>_sketch_latency_cycles{source}] (a histogram re-bucketed
    onto the log2 exemplar bands, with [# UNIT] metadata and, when an
    {!Exemplar} reservoir is registered alongside, an OpenMetrics exemplar
    [# {trace_id=...,machine=...,offset=...} latency ts] on each bucket
    line) and [<ns>_sketch_quantile_cycles{source,quantile}] (a summary).
    The exposition terminates with the OpenMetrics [# EOF] marker. *)

type t

val create : ?namespace:string -> unit -> t
(** [namespace] prefixes every metric family name; default ["erebor"]. *)

val add :
  t ->
  label:string ->
  ?counter:Counter.t ->
  ?histogram:Histogram.t ->
  ?attrib:Attrib.t ->
  ?window:Window.t ->
  ?sketch:Sketch.t ->
  ?exemplar:Exemplar.t ->
  unit ->
  unit
(** Register one source (rendered with label [source="label"]).
    [sketch] / [exemplar] are typically a fleet aggregator's
    {!Agg.latency_sketch} and {!Agg.exemplars}. *)

val escape_label : string -> string
(** Prometheus label-value escaping (backslash, quote, newline). *)

val escape_json : string -> string
(** JSON string escaping (quotes, backslash, control characters). *)

val to_prometheus : t -> string
(** Text exposition format 0.0.4; zero-count series are omitted. *)

val to_json : t -> string
