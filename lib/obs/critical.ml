(* Offline critical-path analysis: replay request windows + span stream
   from a journal, splitting each window's latency into queueing vs service
   and blaming service onto the (domain x phase) taxonomy. *)

type blame = { bdomain : Trace.domain; bphase : Trace.phase; bcycles : int }

type request = {
  trace_id : int;
  stream : int;
  root : bool;
  rt0 : int;
  rt1 : int;
  total : int;
  service : int;
  queueing : int;
  path : blame list;
}

type report = {
  requests : request list;
  n : int;
  lat_p50 : int;
  lat_p95 : int;
  lat_p99 : int;
  total_service : int;
  total_queueing : int;
  phase_totals : (Trace.domain * Trace.phase * int) list;
}

(* An open span on a stream's stack. [child] accumulates the inclusive
   durations of nested spans so self = duration - child at the end. *)
type open_span = { phase : Trace.phase; t0 : int; mutable child : int }

(* An open request window on a stream. *)
type open_req = {
  ot0 : int;
  oroot : bool;
  mutable oservice : int;
  oblame : int array; (* per phase index *)
}

type stream_state = {
  mutable stack : open_span list;
  mutable open_reqs : (int * open_req) list; (* trace_id -> window *)
}

let analyze ?(top = 10) ~path () =
  let streams : (int, stream_state) Hashtbl.t = Hashtbl.create 4 in
  let state s =
    match Hashtbl.find_opt streams s with
    | Some st -> st
    | None ->
        let st = { stack = []; open_reqs = [] } in
        Hashtbl.add streams s st;
        st
  in
  let completed = ref [] in
  let result =
    Journal.fold ~path ~init:() (fun () (e : Journal.event) ->
        match e.kind with
        | Trace.Req_begin ->
            let st = state e.stream in
            let trace_id = e.arg lsr 2 in
            let root = (e.arg lsr 1) land 1 = 1 in
            st.open_reqs <-
              ( trace_id,
                {
                  ot0 = e.ts;
                  oroot = root;
                  oservice = 0;
                  oblame = Array.make Trace.n_phases 0;
                } )
              :: st.open_reqs
        | Trace.Req_end -> (
            let st = state e.stream in
            let trace_id = e.arg lsr 2 in
            match List.assoc_opt trace_id st.open_reqs with
            | None -> ()
            | Some r ->
                st.open_reqs <- List.remove_assoc trace_id st.open_reqs;
                let total = e.ts - r.ot0 in
                let service = Stdlib.min r.oservice total in
                let path =
                  Trace.all_phases
                  |> List.filter_map (fun p ->
                         let c = r.oblame.(Trace.phase_index p) in
                         if c = 0 then None
                         else
                           Some
                             {
                               bdomain = Trace.phase_domain p;
                               bphase = p;
                               bcycles = c;
                             })
                  |> List.sort (fun a b -> Stdlib.compare b.bcycles a.bcycles)
                in
                completed :=
                  {
                    trace_id;
                    stream = e.stream;
                    root = r.oroot;
                    rt0 = r.ot0;
                    rt1 = e.ts;
                    total;
                    service;
                    queueing = Stdlib.max 0 (total - service);
                    path;
                  }
                  :: !completed)
        | Trace.Span_begin p ->
            let st = state e.stream in
            st.stack <- { phase = p; t0 = e.ts; child = 0 } :: st.stack
        | Trace.Span_end p -> (
            let st = state e.stream in
            match st.stack with
            | { phase; t0; child } :: rest when phase = p ->
                st.stack <- rest;
                let dur = e.ts - t0 in
                let self = Stdlib.max 0 (dur - child) in
                (match rest with
                | parent :: _ -> parent.child <- parent.child + dur
                | [] ->
                    (* A top-level span closed: its window overlap is
                       service time for every request open on the stream. *)
                    List.iter
                      (fun (_, r) ->
                        let covered = e.ts - Stdlib.max t0 r.ot0 in
                        if covered > 0 then r.oservice <- r.oservice + covered)
                      st.open_reqs);
                let i = Trace.phase_index p in
                List.iter
                  (fun (_, r) -> r.oblame.(i) <- r.oblame.(i) + self)
                  st.open_reqs
            | _ -> (* unbalanced end: ignore *) ())
        | _ -> ())
  in
  match result with
  | Error _ as e -> e
  | Ok ((), info) ->
      let reqs = !completed in
      let n = List.length reqs in
      let latencies =
        List.map (fun r -> r.total) reqs |> List.sort Stdlib.compare
        |> Array.of_list
      in
      let pct p =
        if n = 0 then 0
        else
          let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
          latencies.(Stdlib.max 0 (Stdlib.min (n - 1) i))
      in
      let totals = Array.make Trace.n_phases 0 in
      List.iter
        (fun r ->
          List.iter
            (fun b ->
              let i = Trace.phase_index b.bphase in
              totals.(i) <- totals.(i) + b.bcycles)
            r.path)
        reqs;
      let phase_totals =
        List.filter_map
          (fun p ->
            let c = totals.(Trace.phase_index p) in
            if c = 0 then None else Some (Trace.phase_domain p, p, c))
          Trace.all_phases
      in
      let slowest =
        List.sort (fun a b -> Stdlib.compare b.total a.total) reqs
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      Ok
        ( {
            requests = take top slowest;
            n;
            lat_p50 = pct 0.5;
            lat_p95 = pct 0.95;
            lat_p99 = pct 0.99;
            total_service = List.fold_left (fun a r -> a + r.service) 0 reqs;
            total_queueing = List.fold_left (fun a r -> a + r.queueing) 0 reqs;
            phase_totals;
          },
          info )

let render rep =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "requests: %d   latency p50/p95/p99: %d / %d / %d cycles\n"
       rep.n rep.lat_p50 rep.lat_p95 rep.lat_p99);
  let tot = rep.total_service + rep.total_queueing in
  let pct x = if tot = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int tot in
  Buffer.add_string b
    (Printf.sprintf "service: %d cycles (%.1f%%)   queueing: %d cycles (%.1f%%)\n"
       rep.total_service (pct rep.total_service) rep.total_queueing
       (pct rep.total_queueing));
  if rep.phase_totals <> [] then begin
    Buffer.add_string b "blame (all requests):\n";
    List.iter
      (fun (d, p, c) ->
        Buffer.add_string b
          (Printf.sprintf "  %-8s %-10s %12d\n" (Trace.domain_name d)
             (Trace.phase_name p) c))
      (List.sort (fun (_, _, a) (_, _, b) -> Stdlib.compare b a) rep.phase_totals)
  end;
  if rep.requests <> [] then begin
    Buffer.add_string b "slowest requests:\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf
             "  trace %d%s: %d cycles (service %d, queueing %d)\n" r.trace_id
             (if r.root then " (root)" else "")
             r.total r.service r.queueing);
        List.iter
          (fun bl ->
            Buffer.add_string b
              (Printf.sprintf "    %-8s %-10s %12d\n"
                 (Trace.domain_name bl.bdomain) (Trace.phase_name bl.bphase)
                 bl.bcycles))
          r.path)
      rep.requests
  end;
  Buffer.contents b
