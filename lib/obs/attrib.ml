(* Cycle-attribution sink.

   Maintains the open-span stack and charges every advance of the virtual
   clock — observed as the timestamp delta between consecutive span
   boundary events — to the innermost open (domain x phase) context. The
   result is a calling-context tree over phases whose self-cycles sum
   exactly to the total virtual cycles once {!close} is called: the hard
   conservation invariant the profiler's reports rely on.

   Only [Span_begin]/[Span_end] move the needle. Other kinds are ignored
   on purpose: several of them (EMC completion events in particular) carry
   *past* timestamps — the gate emits at entry time after the service body
   ran — so the general event stream is not monotonic, but span boundaries
   are emitted at the current clock and arrive in stream order.

   Two structural rules keep the tree small and the reports readable:
   - A begin for the same phase as the innermost open node re-enters that
     node instead of nesting (the simulator's layers often both open e.g.
     [Pf_handler] for one logical fault); the matching end pops back out.
   - Cycles observed while no span is open accrue to the root node and are
     reported as unattributed (pre-boot glue, post-run teardown). *)

type node = {
  phase : int; (* Trace.phase_index, or -1 at the root *)
  mutable self : int; (* cycles charged directly to this context *)
  kids : node option array; (* length n_phases, filled lazily *)
}

type t = {
  root : node;
  mutable stack : node array; (* stack.(0) = root; stack.(depth) = innermost *)
  mutable depth : int;
  mutable last_ts : int;
}

let fresh_node phase = { phase; self = 0; kids = Array.make Trace.n_phases None }

let create () =
  let root = fresh_node (-1) in
  { root; stack = Array.make 16 root; depth = 0; last_ts = 0 }

(* Charge the elapsed virtual time to the innermost open context. *)
let charge t ts =
  let top = t.stack.(t.depth) in
  top.self <- top.self + (ts - t.last_ts);
  t.last_ts <- ts

let push t node =
  let d = t.depth + 1 in
  if d >= Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) t.root in
    Array.blit t.stack 0 bigger 0 (Array.length t.stack);
    t.stack <- bigger
  end;
  t.stack.(d) <- node;
  t.depth <- d

let sink t kind ~ts ~arg:_ =
  match kind with
  | Trace.Span_begin p ->
      charge t ts;
      let top = t.stack.(t.depth) in
      let i = Trace.phase_index p in
      let node =
        if top.phase = i then top
        else
          match top.kids.(i) with
          | Some n -> n
          | None ->
              let n = fresh_node i in
              top.kids.(i) <- Some n;
              n
      in
      push t node
  | Trace.Span_end _ ->
      charge t ts;
      (* Tolerate a stray end: never pop below the root. *)
      if t.depth > 0 then t.depth <- t.depth - 1
  | _ -> ()

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let close t ~now = charge t now
let open_depth t = t.depth
let unattributed t = t.root.self

let rec node_total n =
  Array.fold_left
    (fun acc k -> match k with None -> acc | Some c -> acc + node_total c)
    n.self n.kids

let total t = node_total t.root

let phase_cycles t phase =
  let i = Trace.phase_index phase in
  let rec go acc n =
    let acc = if n.phase = i then acc + n.self else acc in
    Array.fold_left
      (fun acc k -> match k with None -> acc | Some c -> go acc c)
      acc n.kids
  in
  go 0 t.root

let breakdown t =
  let per_phase = Array.make Trace.n_phases 0 in
  let rec go n =
    if n.phase >= 0 then per_phase.(n.phase) <- per_phase.(n.phase) + n.self;
    Array.iter (function None -> () | Some c -> go c) n.kids
  in
  go t.root;
  let out = ref [] in
  for i = Trace.n_phases - 1 downto 0 do
    if per_phase.(i) > 0 then begin
      let p = Trace.phase_of_index i in
      out := (Trace.phase_domain p, p, per_phase.(i)) :: !out
    end
  done;
  !out

let domain_cycles t domain =
  List.fold_left
    (fun acc (d, _, c) -> if d = domain then acc + c else acc)
    0 (breakdown t)

(* Immutable snapshot of the context tree, children in phase-index order.
   [vphase = None] only at the root. *)
type view = {
  vphase : Trace.phase option;
  vself : int;
  vtotal : int;
  vkids : view list;
}

let view t =
  let rec go n =
    let vkids = ref [] in
    for i = Trace.n_phases - 1 downto 0 do
      match n.kids.(i) with
      | None -> ()
      | Some c -> vkids := go c :: !vkids
    done;
    let vkids = !vkids in
    {
      vphase = (if n.phase < 0 then None else Some (Trace.phase_of_index n.phase));
      vself = n.self;
      vtotal = List.fold_left (fun acc k -> acc + k.vtotal) n.self vkids;
      vkids;
    }
  in
  go t.root
