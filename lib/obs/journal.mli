(** The flight recorder: a crash-safe binary event journal.

    A journal persists a machine's complete {!Trace} event stream so runs
    can be analyzed (queried, critical-pathed, diffed, re-exported) after
    the process that produced them is gone — the storage substrate under
    {!Query}, {!Critical} and {!Diff}.

    {2 On-disk format (DESIGN.md §16)}

    A file is a magic string followed by a sequence of CRC-framed frames:

    {v
    "EJRN1\n"
    frame := tag[4] payload_len[u32 LE] crc32[u32 LE] payload
    "HEAD" — version, free-form metadata pairs, and the self-describing
             intern tables (kind / phase / domain wire names)
    "SEGM" — base_ts, event count, then the delta-encoded event stream
    "END " — segment, event and stream totals (the finalization mark)
    v}

    Events are varint-encoded deltas: one kind byte (the dense
    {!Trace.index}), a zigzag varint timestamp delta against the previous
    event, and a zigzag varint argument delta against the previous argument
    {e of the same kind} (EMC latencies and repeated addresses collapse to
    one or two bytes). Machine names are interned: a [def-stream] opcode
    binds an id to a name once, a [set-stream] opcode switches the current
    stream, and plain events carry no stream byte at all — the single-
    machine common case pays nothing.

    Segments are sealed (framed, CRC'd, written, flushed) when the encoder
    buffer crosses the size threshold, so a killed process leaves every
    sealed segment on disk and parseable; only the unsealed tail is lost.
    The write path is allocation-free in steady state: events encode into a
    preallocated buffer and emission never advances the virtual clock. *)

module Writer : sig
  type t

  val create :
    ?segment_bytes:int -> ?meta:(string * string) list -> path:string ->
    unit -> t
  (** Open [path] (truncating) and write the HEAD frame. [segment_bytes]
      (default 65536) is the seal threshold; [meta] is free-form key/value
      context ("workload", "setting", ...) persisted in the header. *)

  val stream : t -> machine:string -> int
  (** Intern [machine], returning its stream id (idempotent per name). *)

  val attach : ?machine:string -> t -> Emitter.t -> unit
  (** Subscribe to an emitter: every event it emits is recorded under
      [machine] (default ["m<N>"] for the N-th attached emitter), and an
      emitter finalizer closes the journal so abnormal exits still leave a
      sealed, parseable file. One writer may record several emitters. *)

  val record : t -> stream:int -> Trace.kind -> ts:int -> arg:int -> unit
  (** Append one event. Allocation-free in steady state (0 minor words per
      event between seals). Events recorded after {!close} are dropped. *)

  val events : t -> int
  val segments : t -> int
  (** Sealed segments written so far. *)

  val closed : t -> bool

  val offset : t -> int
  (** The file offset of the frame that will hold the open segment — the
      [event.off] a reader will report for the next recorded event. Read
      it {e before} recording: the record itself may cross the seal
      threshold and flush that very frame. Used by {!Exemplar} capture to
      make a tail request resolvable offline. *)

  val close : t -> now:int -> unit
  (** Seal the partial segment, write the END frame and close the file.
      Idempotent. [now] is recorded as the journal's final timestamp. *)
end

type event = {
  stream : int;         (** Interned machine id ({!info.machines}). *)
  kind : Trace.kind;
  ts : int;
  arg : int;
  off : int;            (** Byte offset of the containing SEGM frame —
                            matches {!Writer.offset} at record time. *)
}

type info = {
  version : int;
  meta : (string * string) list;
  machines : (int * string) list;  (** Stream id -> interned name. *)
  events : int;                    (** Events decoded. *)
  segments : int;                  (** Sealed segments read. *)
  complete : bool;                 (** END frame present and consistent. *)
  last_ts : int;                   (** Final timestamp (END frame or last
                                       decoded event; 0 when empty). *)
}

val fold :
  ?strict:bool -> path:string -> init:'a -> ('a -> event -> 'a) ->
  ('a * info, string) result
(** Stream every event of a journal through [f] without materializing the
    file. Corruption — a bad magic/tag, a CRC mismatch, an undecodable
    payload, data after END — is always an [Error] naming the frame and
    offset. A file that simply stops mid-frame (the writer was killed) is
    readable up to the last sealed segment with [complete = false] by
    default; [strict] (default false) turns that truncated tail into an
    [Error] too. *)

val read :
  ?strict:bool -> path:string -> unit -> (event list * info, string) result
(** Materializing convenience over {!fold} (tests, small files). *)

val read_info : path:string -> (info, string) result
(** Decode the whole file for its summary, discarding events. *)

val machine_name : info -> int -> string
(** Stream id -> name (["m<id>"] fallback for an unknown id). *)
