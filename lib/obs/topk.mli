(** Space-saving heavy-hitter summary with guaranteed count-error bounds
    and an order-invariant mergeable sealed form — used by the fleet
    aggregator keyed by (tenant x kind) to answer "who dominates the
    fleet". *)

type t
(** Live per-machine structure: at most [capacity] keyed counters. *)

val create : ?capacity:int -> unit -> t
(** Default capacity 64. Raises [Invalid_argument] below 1. *)

val capacity : t -> int

val size : t -> int
(** Number of keys currently tracked. *)

val observe : t -> key:string -> weight:int -> unit
(** Add [weight] occurrences of [key]. Allocation-free when [key] is
    already tracked (the expected steady state — callers pass interned
    key strings). When the table is full, the minimum-count entry is
    evicted (smallest key on count ties, so eviction is deterministic)
    and [key] inherits its count as a recorded possible overcount.
    Raises [Invalid_argument] on negative weight. *)

val count : t -> key:string -> int
(** Recorded count for [key] (0 if untracked). True count for a tracked
    key lies in [[count - err, count]]; for an untracked key it is at
    most {!floor}. *)

val floor : t -> int
(** Upper bound on the true count of any key {e not} tracked: 0 while
    the table has free slots, otherwise the minimum tracked count. *)

(** {2 Sealed summaries — the mergeable form} *)

type summary

val empty_summary : summary

val seal : t -> summary
(** Snapshot the live structure into a mergeable summary. The live
    structure is left untouched. *)

val merge_summaries : summary -> summary -> summary
(** Key-wise pointwise sum (counts, error bounds, floors) over the
    sorted key union — exactly associative and commutative, so the
    merged summary (and its {!serialize} bytes) is identical for any
    merge order or grouping of the same sealed inputs. *)

type ranked = {
  rkey : string;
  rcount : int;  (** summed recorded count *)
  lower : int;  (** guaranteed minimum true count: rcount - summed err *)
  upper : int;
      (** guaranteed maximum true count: rcount plus the floors of the
          merged summaries that did {e not} track this key *)
}

val top : ?n:int -> summary -> ranked list
(** Entries by recorded count descending (key ascending on ties);
    truncation to [n] happens only here, at read time. *)

val floor_total : summary -> int
(** Sum of the floors of every sealed summary merged in — the guaranteed
    bound on any key absent from the result. *)

val n_keys : summary -> int

val serialize : summary -> string
(** Canonical binary encoding ("ETK1" magic); byte equality is state
    equality. *)

val deserialize : string -> (summary, string) result
