(* Per-sandbox / per-tenant health state machine driven by watchdog rules.

   Each registered subject is scored at every [check]: it is "bad" when a
   watchdog trips — EMC stall (a request in flight but no monitor call for
   [stall_cycles]), request deadline overrun (in flight past
   [deadline_cycles], or a completed request that exceeded the deadline),
   or an audit-denial spike ([denial_spike]+ denials since the last check).
   Demotion and recovery are both hysteretic: [degrade_after] consecutive
   bad checks take Healthy -> Degraded, [unhealthy_after] more take
   Degraded -> Unhealthy, and [recover_after] consecutive clean checks step
   one level back up.

   Checks never advance the virtual clock. Every transition emits a
   [Trace.Health_transition] event (arg = subject id lsl 2 lor state index)
   and an audit record under category "health" (Deny on demotion, Info on
   recovery) when the emitter has a chain attached. *)

type state = Healthy | Degraded | Unhealthy

let state_index = function Healthy -> 0 | Degraded -> 1 | Unhealthy -> 2
let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

type rules = {
  stall_cycles : int;
  deadline_cycles : int;
  denial_spike : int;
  degrade_after : int;
  unhealthy_after : int;
  recover_after : int;
}

let default_rules =
  {
    stall_cycles = 200_000_000;      (* ~95 virtual ms of EMC silence *)
    deadline_cycles = 2_100_000_000; (* ~1 virtual s per request *)
    denial_spike = 3;
    degrade_after = 2;
    unhealthy_after = 3;
    recover_after = 4;
  }

type subject = {
  sname : string;
  id : int;
  mutable state : state;
  mutable last_emc : int;
  mutable busy : bool;
  mutable req_start : int;
  mutable denials : int;    (* since the last check *)
  mutable overruns : int;   (* completed-overrun count since the last check *)
  mutable requests : int;
  mutable total_overruns : int;
  mutable total_denials : int;
  mutable bad_streak : int;
  mutable good_streak : int;
}

type t = {
  emit : Emitter.t option;
  rules : rules;
  mutable subjects : subject list; (* reversed registration order *)
  mutable transitions : (int * subject * state) list; (* reversed *)
  mutable next_id : int;
}

let create ?emit ?(rules = default_rules) () =
  { emit; rules; subjects = []; transitions = []; next_id = 0 }

let register t ~name ~now =
  let s =
    {
      sname = name;
      id = t.next_id;
      state = Healthy;
      last_emc = now;
      busy = false;
      req_start = 0;
      denials = 0;
      overruns = 0;
      requests = 0;
      total_overruns = 0;
      total_denials = 0;
      bad_streak = 0;
      good_streak = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.subjects <- s :: t.subjects;
  s

let subjects t = List.rev t.subjects
let name s = s.sname
let id s = s.id
let state s = s.state
let requests s = s.requests
let total_overruns s = s.total_overruns
let total_denials s = s.total_denials

let note_emc s ~now = s.last_emc <- now

let note_denial s =
  s.denials <- s.denials + 1;
  s.total_denials <- s.total_denials + 1

let begin_request s ~now =
  s.busy <- true;
  s.req_start <- now;
  s.requests <- s.requests + 1

let end_request t s ~now ~latency =
  ignore now;
  s.busy <- false;
  if latency > t.rules.deadline_cycles then begin
    s.overruns <- s.overruns + 1;
    s.total_overruns <- s.total_overruns + 1
  end

let transition t s ~now st =
  let demotion = state_index st > state_index s.state in
  let bad = s.bad_streak and good = s.good_streak in
  s.state <- st;
  s.bad_streak <- 0;
  s.good_streak <- 0;
  t.transitions <- (now, s, st) :: t.transitions;
  match t.emit with
  | None -> ()
  | Some e ->
      Emitter.emit e Trace.Health_transition ~ts:now
        ~arg:((s.id lsl 2) lor state_index st);
      Emitter.audit_event e ~ts:now ~category:"health"
        ~verdict:(if demotion then Audit.Deny else Audit.Info)
        (fun () ->
          Printf.sprintf "%s -> %s (bad=%d good=%d overruns=%d denials=%d)"
            s.sname (state_name st) bad good s.total_overruns s.total_denials)

let check t ~now =
  List.iter
    (fun s ->
      let stalled = s.busy && now - s.last_emc > t.rules.stall_cycles in
      let overdue = s.busy && now - s.req_start > t.rules.deadline_cycles in
      let spike = s.denials >= t.rules.denial_spike in
      let bad = stalled || overdue || spike || s.overruns > 0 in
      s.denials <- 0;
      s.overruns <- 0;
      if bad then begin
        s.bad_streak <- s.bad_streak + 1;
        s.good_streak <- 0
      end
      else begin
        s.good_streak <- s.good_streak + 1;
        s.bad_streak <- 0
      end;
      match s.state with
      | Healthy when s.bad_streak >= t.rules.degrade_after ->
          transition t s ~now Degraded
      | Degraded when s.bad_streak >= t.rules.unhealthy_after ->
          transition t s ~now Unhealthy
      | Degraded when s.good_streak >= t.rules.recover_after ->
          transition t s ~now Healthy
      | Unhealthy when s.good_streak >= t.rules.recover_after ->
          transition t s ~now Degraded
      | _ -> ())
    t.subjects

let transitions t = List.rev t.transitions

let transitions_of t s =
  List.filter_map
    (fun (ts, s', st) -> if s' == s then Some (ts, st) else None)
    (transitions t)

(* Bus adapter: route a machine emitter's events to one subject, so a
   single-machine run (erebor_sim run --dash) gets a watchdog without
   per-tenant plumbing. Req_begin/Req_end args carry a packed trace ctx,
   not a latency, so latency is derived from the request window bounds. *)
let watch t s emitter =
  Emitter.attach emitter (fun kind ~ts ~arg ->
      ignore arg;
      match kind with
      | Trace.Emc_entry -> note_emc s ~now:ts
      | Trace.Mmu_deny -> note_denial s
      | Trace.Req_begin -> begin_request s ~now:ts
      | Trace.Req_end -> end_request t s ~now:ts ~latency:(ts - s.req_start)
      | _ -> ())

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"subjects\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":\"%s\",\"id\":%d,\"state\":\"%s\",\"requests\":%d,\"overruns\":%d,\"denials\":%d}"
        (Metrics.escape_json s.sname) s.id (state_name s.state) s.requests
        s.total_overruns s.total_denials)
    (subjects t);
  Buffer.add_string buf "],\"transitions\":[";
  List.iteri
    (fun i (ts, s, st) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"ts\":%d,\"subject\":\"%s\",\"state\":\"%s\"}" ts
        (Metrics.escape_json s.sname) (state_name st))
    (transitions t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
