(** Live ASCII dashboard driver: a sink that, every [refresh_cycles] of
    {e virtual} time, evaluates the SLOs, runs the health watchdogs and
    repaints a compact text panel.

    The cadence is keyed to event timestamps, so it needs no wall clock and
    never advances the virtual one; a run that covers more simulated time
    simply repaints more often. Evaluation bumps the next-refresh deadline
    before calling into {!Slo}/{!Health}, so the transition events those
    emit (which re-enter this sink when it shares the emitter) cannot
    recurse. *)

type t

val create :
  ?label:string ->
  ?out:out_channel ->
  ?slo:Slo.t ->
  ?health:Health.t ->
  refresh_cycles:int ->
  window:Window.t ->
  unit ->
  t
(** [out] receives a panel per refresh (omit it for evaluation without
    painting — the [--dash] snapshot-only path). Raises [Invalid_argument]
    when [refresh_cycles <= 0]. *)

val attach : Emitter.t -> t -> t
(** Attach as a sink on the emitter driving the run. *)

val sink : t -> Trace.kind -> ts:int -> arg:int -> unit
(** The raw sink (for drivers that fan events out manually). *)

val refreshes : t -> int

val render : t -> now:int -> string
(** The current panel: windowed rates, tracked-kind percentiles, SLO burn
    rates and per-subject health. *)

val snapshot_json : t -> now:int -> string
(** One JSON document composing the window, SLO and health state — what
    [run --dash] writes on exit via an {!Emitter} finalizer, so abnormal
    exits still leave a complete snapshot. [now] is clamped up to the last
    event seen. *)
