(** Offline critical-path analysis over journaled request windows.

    Replays a journal's [Req_begin]/[Req_end] marker events (the same packed
    contexts live {!Request} tracing uses) and the span stream between them,
    reconstructing each request's window and decomposing its latency into:

    - {e service}: cycles covered by top-level spans inside the window —
      someone was actively working on behalf of the machine;
    - {e queueing}: the uncovered gaps — the request existed but nothing
      was running a span (waiting for the channel, scheduler, ...);
    - a per-(domain x phase) {e blame} vector: self-cycles of every span
      that ran inside the window (inclusive minus nested children), i.e.
      where the service time actually went. The blame vector sorted by
      cycles is the request's critical path.

    One streaming pass; nothing is materialized beyond open windows. *)

type blame = { bdomain : Trace.domain; bphase : Trace.phase; bcycles : int }

type request = {
  trace_id : int;
  stream : int;          (** Journal stream the window closed on. *)
  root : bool;           (** Root bit of the packed context. *)
  rt0 : int;
  rt1 : int;
  total : int;           (** [rt1 - rt0]. *)
  service : int;
  queueing : int;
  path : blame list;     (** Critical path: blame entries, descending. *)
}

type report = {
  requests : request list;   (** Completed windows, slowest first. *)
  n : int;
  lat_p50 : int;
  lat_p95 : int;
  lat_p99 : int;             (** Exact (rank-order) latency percentiles. *)
  total_service : int;
  total_queueing : int;
  phase_totals : (Trace.domain * Trace.phase * int) list;
      (** Blame aggregated over all requests, {!Trace.phase_index} order,
          nonzero only. *)
}

val analyze :
  ?top:int -> path:string -> unit -> (report * Journal.info, string) result
(** [top] (default 10) bounds [requests] to the N slowest; percentiles and
    totals always cover every completed window. *)

val render : report -> string
(** Text report: latency summary, queueing-vs-service split, aggregate
    blame table and the per-request critical paths of the slowest
    windows. *)
