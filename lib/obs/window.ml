(* Time-bucketed sliding-window sink, keyed to the VIRTUAL clock. A fixed
   ring of [nbuckets] buckets, each [width] virtual cycles wide, holds
   per-kind event counts and arg sums; a configurable subset of kinds also
   keeps a per-bucket log2 histogram (and min/max) so percentiles over the
   last N windows come from a merge-on-read walk. The ring rotates when an
   event's timestamp crosses the current bucket's end — i.e. rotation is
   driven by the virtual clock the events already carry, never by wall
   time, and recording never advances that clock.

   The record path is allocation-free: every bucket row lives in flat,
   preallocated int arrays indexed by [slot * n_kinds + kind]. Read-side
   queries may allocate (they run off the hot path). *)

type t = {
  width : int;            (* virtual cycles per bucket *)
  nbuckets : int;         (* ring size *)
  ghz : float;            (* virtual clock rate, for per-second rates *)
  mutable cur : int;      (* ring slot of the current bucket *)
  mutable cur_start : int;(* ts at which the current bucket began *)
  counts : int array;     (* [slot * n_kinds + kind] -> events *)
  sums : int array;       (* [slot * n_kinds + kind] -> arg sum *)
  totals : int array;     (* lifetime per-kind event count *)
  hist_slot : int array;  (* kind -> histogram slot, or -1 if untracked *)
  hist_kinds : Trace.kind array;
  n_hist : int;
  hist : int array;       (* [(slot * n_hist + h) * Histogram.n_buckets + b] *)
  hist_min : int array;   (* [slot * n_hist + h]; max_int when empty *)
  hist_max : int array;   (* [slot * n_hist + h] *)
  scratch : int array;    (* merge-on-read histogram row *)
}

let default_hist_kinds =
  [ Trace.Emc_entry; Trace.Req_end; Trace.Tdcall; Trace.Vmcall ]

let create ?(hist_kinds = default_hist_kinds) ?(ghz = 2.1) ~width ~buckets ()
    =
  if width <= 0 then invalid_arg "Window.create: width must be positive";
  if buckets <= 0 then invalid_arg "Window.create: buckets must be positive";
  let hist_kinds = Array.of_list hist_kinds in
  let n_hist = Array.length hist_kinds in
  let hist_slot = Array.make Trace.n_kinds (-1) in
  Array.iteri (fun h k -> hist_slot.(Trace.index k) <- h) hist_kinds;
  {
    width;
    nbuckets = buckets;
    ghz;
    cur = 0;
    cur_start = 0;
    counts = Array.make (buckets * Trace.n_kinds) 0;
    sums = Array.make (buckets * Trace.n_kinds) 0;
    totals = Array.make Trace.n_kinds 0;
    hist_slot;
    hist_kinds;
    n_hist;
    hist = Array.make (buckets * n_hist * Histogram.n_buckets) 0;
    hist_min = Array.make (buckets * n_hist) max_int;
    hist_max = Array.make (buckets * n_hist) 0;
    scratch = Array.make Histogram.n_buckets 0;
  }

let width t = t.width
let buckets t = t.nbuckets
let ghz t = t.ghz
let hist_tracked t kind = t.hist_slot.(Trace.index kind) >= 0

let clear_slot t s =
  Array.fill t.counts (s * Trace.n_kinds) Trace.n_kinds 0;
  Array.fill t.sums (s * Trace.n_kinds) Trace.n_kinds 0;
  if t.n_hist > 0 then begin
    Array.fill t.hist (s * t.n_hist * Histogram.n_buckets)
      (t.n_hist * Histogram.n_buckets) 0;
    Array.fill t.hist_min (s * t.n_hist) t.n_hist max_int;
    Array.fill t.hist_max (s * t.n_hist) t.n_hist 0
  end

(* Rotate the ring so [now] falls inside the current bucket. A gap larger
   than the whole ring clears every bucket in one pass and jumps the start
   forward (keeping bucket alignment), so a long idle period costs
   O(nbuckets), not O(gap / width). *)
let advance t ~now =
  if now >= t.cur_start + t.width then begin
    let k = (now - t.cur_start) / t.width in
    if k >= t.nbuckets then begin
      for s = 0 to t.nbuckets - 1 do
        clear_slot t s
      done;
      t.cur_start <- t.cur_start + (k * t.width)
    end
    else
      for _ = 1 to k do
        t.cur <- (if t.cur + 1 = t.nbuckets then 0 else t.cur + 1);
        clear_slot t t.cur;
        t.cur_start <- t.cur_start + t.width
      done
  end

let record t kind ~ts ~arg =
  advance t ~now:ts;
  let i = Trace.index kind in
  let base = (t.cur * Trace.n_kinds) + i in
  t.counts.(base) <- t.counts.(base) + 1;
  t.sums.(base) <- t.sums.(base) + arg;
  t.totals.(i) <- t.totals.(i) + 1;
  let h = t.hist_slot.(i) in
  if h >= 0 then begin
    let row = (t.cur * t.n_hist) + h in
    let b = (row * Histogram.n_buckets) + Histogram.bucket_of arg in
    t.hist.(b) <- t.hist.(b) + 1;
    if arg < t.hist_min.(row) then t.hist_min.(row) <- arg;
    if arg > t.hist_max.(row) then t.hist_max.(row) <- arg
  end

let sink t kind ~ts ~arg = record t kind ~ts ~arg
let attach emitter t =
  Emitter.attach emitter (sink t);
  t

(* Read side: fold over the last [windows] buckets, current included. *)

let fold_last t ?windows f init =
  let n =
    match windows with
    | None -> t.nbuckets
    | Some n when n <= 0 -> invalid_arg "Window: windows must be positive"
    | Some n -> min n t.nbuckets
  in
  let acc = ref init in
  for back = 0 to n - 1 do
    let s = (t.cur - back + t.nbuckets) mod t.nbuckets in
    acc := f !acc s
  done;
  !acc

let count t ?windows kind =
  let i = Trace.index kind in
  fold_last t ?windows (fun acc s -> acc + t.counts.((s * Trace.n_kinds) + i)) 0

let arg_sum t ?windows kind =
  let i = Trace.index kind in
  fold_last t ?windows (fun acc s -> acc + t.sums.((s * Trace.n_kinds) + i)) 0

let total_count t kind = t.totals.(Trace.index kind)

(* The virtual span the last [windows] buckets cover: full closed buckets
   plus the elapsed part of the current one ([now] defaults to the current
   bucket's end, which keeps the result deterministic without a clock). *)
let span_cycles t ?windows ?now () =
  let n =
    match windows with None -> t.nbuckets | Some n -> max 1 (min n t.nbuckets)
  in
  let in_cur =
    match now with
    | None -> t.width
    | Some now -> min t.width (max 1 (now - t.cur_start))
  in
  ((n - 1) * t.width) + in_cur

let rate t ?windows ?now kind =
  let cycles = span_cycles t ?windows ?now () in
  float_of_int (count t ?windows kind)
  /. (float_of_int cycles /. (t.ghz *. 1e9))

(* Merge-on-read percentile over the last N windows. Same semantics as
   {!Histogram.percentile}: p clamped to [0, 1], result clamped to the
   observed [min, max] of the merged span, 0 when the span holds no
   samples. *)
let percentile t ?windows kind ~p =
  let i = Trace.index kind in
  let h = t.hist_slot.(i) in
  if h < 0 then
    invalid_arg
      (Printf.sprintf "Window.percentile: kind %s has no histogram"
         (Trace.name kind));
  Array.fill t.scratch 0 Histogram.n_buckets 0;
  let n, vmin, vmax =
    fold_last t ?windows
      (fun (n, vmin, vmax) s ->
        let row = (s * t.n_hist) + h in
        let base = row * Histogram.n_buckets in
        let cnt = ref 0 in
        for b = 0 to Histogram.n_buckets - 1 do
          let c = t.hist.(base + b) in
          if c > 0 then begin
            t.scratch.(b) <- t.scratch.(b) + c;
            cnt := !cnt + c
          end
        done;
        if !cnt = 0 then (n, vmin, vmax)
        else (n + !cnt, min vmin t.hist_min.(row), max vmax t.hist_max.(row)))
      (0, max_int, 0)
  in
  if n = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank = p *. float_of_int n in
    let rec go b cum =
      if b >= Histogram.n_buckets then vmax
      else begin
        let c = t.scratch.(b) in
        if c > 0 && float_of_int (cum + c) >= rank then begin
          let lo = Histogram.bucket_lo b and hi = Histogram.bucket_hi b in
          let within = (rank -. float_of_int cum) /. float_of_int c in
          let v = float_of_int lo +. (within *. float_of_int (hi - lo)) in
          min (max (int_of_float (Float.round v)) vmin) vmax
        end
        else go (b + 1) (cum + c)
      end
    in
    go 0 0
  end

(* Samples strictly above [threshold], from the log2 buckets: counts every
   bucket whose low bound already exceeds the threshold, so the answer is
   conservative (samples sharing the threshold's own bucket are not
   counted) and at worst a factor-of-two band off — the same fidelity the
   histogram itself has. *)
let over t ?windows kind ~threshold =
  let i = Trace.index kind in
  let h = t.hist_slot.(i) in
  if h < 0 then
    invalid_arg
      (Printf.sprintf "Window.over: kind %s has no histogram"
         (Trace.name kind));
  fold_last t ?windows
    (fun acc s ->
      let base = ((s * t.n_hist) + h) * Histogram.n_buckets in
      let acc = ref acc in
      for b = 0 to Histogram.n_buckets - 1 do
        if Histogram.bucket_lo b > threshold then
          acc := !acc + t.hist.(base + b)
      done;
      !acc)
    0

let to_json t ?now () =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\"width_cycles\":%d,\"buckets\":%d,\"span_cycles\":%d,\"kinds\":["
    t.width t.nbuckets
    (span_cycles t ?now ());
  let first = ref true in
  List.iter
    (fun kind ->
      let c = count t kind in
      if c > 0 then begin
        if !first then first := false else Buffer.add_char buf ',';
        Printf.bprintf buf
          "{\"kind\":\"%s\",\"count\":%d,\"arg_sum\":%d,\"rate_per_s\":%.2f,\"total\":%d"
          (Trace.name kind) c (arg_sum t kind)
          (rate t ?now kind)
          (total_count t kind);
        if hist_tracked t kind then
          Printf.bprintf buf ",\"p50\":%d,\"p95\":%d,\"p99\":%d"
            (percentile t kind ~p:0.50)
            (percentile t kind ~p:0.95)
            (percentile t kind ~p:0.99);
        Buffer.add_char buf '}'
      end)
    Trace.all;
  Buffer.add_string buf "]}";
  Buffer.contents buf
