(** Request-scoped causal tracing.

    A trace context ({!ctx}) is minted at the channel client and travels
    inside the sealed message header; every hop that decodes it brackets its
    work with [Req_begin]/[Req_end] marker events whose int argument is the
    packed context ({!pack}). A collector attached to one or more emitters
    ({!attach}) assembles the span stream between the markers into
    per-machine segments, and segments sharing a trace id into the
    request's cross-machine causal tree (the client-side segment, root bit
    set, is the root).

    Sampling is head-based: decided once at {!mint}, carried in the
    context, so all hops agree. Unsampled requests still feed the latency
    histogram; only span collection is skipped. Collection never advances
    the virtual clock. *)

type ctx = {
  trace_id : int;   (** Collector-scoped, monotonically increasing. *)
  span_id : int;    (** Parent span id; [1] for a freshly minted root. *)
  sampled : bool;   (** Head-based sampling decision. *)
}

val pack : ctx -> root:bool -> int
(** Marker-event argument: [trace_id lsl 2 | root lsl 1 | sampled]. *)

val unpack : int -> ctx * bool
(** Inverse of {!pack}; the returned bool is the root bit. The span id does
    not travel in marker events and unpacks as 0. *)

type span = { phase : Trace.phase; t0 : int; t1 : int; children : span list }

type segment = {
  machine : string;
  root : bool;
  seg_t0 : int;
  seg_t1 : int;
  spans : span list;  (** Top-level spans observed inside the window. *)
}

type t

val create : ?sample_every:int -> ?collect_spans:bool -> unit -> t
(** Collector sampling 1 in [sample_every] requests (default 1 = all).
    [collect_spans] (default true) controls whether sampled windows also
    record their full nested span tree; with it off the collector still
    tracks segments (window bounds, {!root_cycles}) and the latency
    histogram, but skips the per-span builders entirely — the right mode
    for high-volume measurement runs where only end-to-end windows are
    read back. *)

val mint : t -> ctx
(** Fresh trace context; the sampling bit follows the collector policy. *)

val attach : t -> machine:string -> Emitter.t -> unit
(** Start collecting request windows from [emitter], labelling segments
    with [machine]. One collector may watch several emitters. *)

val completed : t -> int
(** Root windows closed (sampled or not). *)

val sampled_traces : t -> int list
(** Trace ids with at least one collected segment, ascending. *)

val tree : t -> trace_id:int -> segment list
(** The request's segments, root first; [] for an unknown/unsampled id. *)

val root_cycles : t -> trace_id:int -> int option
(** End-to-end cycles of the root segment, when collected. *)

val latency_count : t -> int
val latency_mean : t -> float
val latency_percentile : t -> p:float -> int
(** Root-window latency distribution over all completed requests. *)

val to_json : t -> string
(** All collected request trees plus the latency summary. *)

val to_chrome_json : t -> trace_id:int -> string
(** One request's causal tree as a Chrome trace: one tid per machine
    segment, spans as nested B/E pairs. *)

val pp_tree : Format.formatter -> t * int -> unit
(** Human-readable rendering of one request's tree. *)
