(** Journal-vs-journal run diffing over the attribution taxonomy.

    Each journal is replayed per-stream through the same {!Attrib} profiler
    the live bus uses, yielding per-(domain x phase) self-cycle totals plus
    span counts; the two attributions are then compared entry by entry.
    Because replay reuses the live profiler, a journal diffed against the
    recording of an identical run reports exactly zero deltas — the
    regression gate in [bench journal] depends on that. *)

type entry = {
  edomain : Trace.domain;
  ephase : Trace.phase;
  cycles_a : int;
  cycles_b : int;
  count_a : int;     (** Spans entered ([Span_begin] events) in run A. *)
  count_b : int;
  delta : int;       (** [cycles_b - cycles_a]. *)
  pct : float;       (** Delta relative to run A (+inf when A is 0). *)
}

type t = {
  entries : entry list;    (** Union of phases active in either run,
                               {!Trace.phase_index} order. *)
  events_a : int;
  events_b : int;
  total_a : int;           (** Attributed cycles, run A (all streams). *)
  total_b : int;
}

val attribution : path:string -> ((int * int) array * Journal.info, string) result
(** Replay one journal through {!Attrib}: per {!Trace.phase_index}, the
    (self-cycles, span-count) pair summed over all streams. Building block
    for {!compare_files}; exposed for the replay cross-checks in tests. *)

val compare_files : a:string -> b:string -> (t, string) result

val regressions : ?threshold:float -> ?min_cycles:int -> t -> entry list
(** Entries where run B spends more cycles than run A by more than
    [threshold] percent (default 5.0) {e and} at least [min_cycles]
    absolute (default 1000 — keeps near-zero phases from tripping the
    percentage test). Empty for identical runs. *)

val render : ?threshold:float -> ?min_cycles:int -> t -> string
(** Aligned per-phase delta table; regressions flagged with [!]. *)
