(* Run-diffing: replay two journals through the live Attrib profiler and
   compare the resulting (domain x phase) attributions. *)

type entry = {
  edomain : Trace.domain;
  ephase : Trace.phase;
  cycles_a : int;
  cycles_b : int;
  count_a : int;
  count_b : int;
  delta : int;
  pct : float;
}

type t = {
  entries : entry list;
  events_a : int;
  events_b : int;
  total_a : int;
  total_b : int;
}

(* Per-stream replay state: an Attrib instance fed through its bus sink,
   plus the stream's last timestamp for the close. *)
type replay = { att : Attrib.t; sink : Emitter.sink; mutable last : int }

let attribution ~path =
  let streams : (int, replay) Hashtbl.t = Hashtbl.create 4 in
  let counts = Array.make Trace.n_phases 0 in
  let result =
    Journal.fold ~path ~init:() (fun () (e : Journal.event) ->
        let r =
          match Hashtbl.find_opt streams e.stream with
          | Some r -> r
          | None ->
              let att = Attrib.create () in
              let r = { att; sink = Attrib.sink att; last = 0 } in
              Hashtbl.add streams e.stream r;
              r
        in
        (match e.kind with
        | Trace.Span_begin p ->
            counts.(Trace.phase_index p) <- counts.(Trace.phase_index p) + 1
        | _ -> ());
        r.sink e.kind ~ts:e.ts ~arg:e.arg;
        if e.ts > r.last then r.last <- e.ts)
  in
  match result with
  | Error _ as e -> e
  | Ok ((), info) ->
      let cycles = Array.make Trace.n_phases 0 in
      Hashtbl.iter
        (fun _ r ->
          Attrib.close r.att ~now:r.last;
          List.iter
            (fun (_, p, c) ->
              let i = Trace.phase_index p in
              cycles.(i) <- cycles.(i) + c)
            (Attrib.breakdown r.att))
        streams;
      Ok (Array.init Trace.n_phases (fun i -> (cycles.(i), counts.(i))), info)

let compare_files ~a ~b =
  match attribution ~path:a with
  | Error e -> Error ("run A: " ^ e)
  | Ok (aa, ia) -> (
      match attribution ~path:b with
      | Error e -> Error ("run B: " ^ e)
      | Ok (ab, ib) ->
          let entries =
            List.filter_map
              (fun p ->
                let i = Trace.phase_index p in
                let ca, na = aa.(i) in
                let cb, nb = ab.(i) in
                if ca = 0 && cb = 0 && na = 0 && nb = 0 then None
                else
                  Some
                    {
                      edomain = Trace.phase_domain p;
                      ephase = p;
                      cycles_a = ca;
                      cycles_b = cb;
                      count_a = na;
                      count_b = nb;
                      delta = cb - ca;
                      pct =
                        (if ca = 0 then
                           if cb = 0 then 0.0 else infinity
                         else
                           100.0 *. float_of_int (cb - ca) /. float_of_int ca);
                    })
              Trace.all_phases
          in
          let total arr =
            Array.fold_left (fun acc (c, _) -> acc + c) 0 arr
          in
          Ok
            {
              entries;
              events_a = ia.Journal.events;
              events_b = ib.Journal.events;
              total_a = total aa;
              total_b = total ab;
            })

let is_regression ~threshold ~min_cycles e =
  e.delta >= min_cycles
  && (e.cycles_a = 0 || e.pct > threshold)

let regressions ?(threshold = 5.0) ?(min_cycles = 1000) t =
  List.filter (is_regression ~threshold ~min_cycles) t.entries

let render ?(threshold = 5.0) ?(min_cycles = 1000) t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "events: %d -> %d   attributed cycles: %d -> %d\n"
       t.events_a t.events_b t.total_a t.total_b);
  Buffer.add_string b
    (Printf.sprintf "%-8s %-10s %14s %14s %12s %9s %8s %8s\n" "domain"
       "phase" "cycles A" "cycles B" "delta" "pct" "count A" "count B");
  List.iter
    (fun e ->
      let flag = if is_regression ~threshold ~min_cycles e then " !" else "" in
      Buffer.add_string b
        (Printf.sprintf "%-8s %-10s %14d %14d %12d %8.2f%% %8d %8d%s\n"
           (Trace.domain_name e.edomain) (Trace.phase_name e.ephase)
           e.cycles_a e.cycles_b e.delta
           (if e.pct = infinity then 999.99 else e.pct)
           e.count_a e.count_b flag))
    t.entries;
  let regs = regressions ~threshold ~min_cycles t in
  Buffer.add_string b
    (if regs = [] then "no regressions\n"
     else Printf.sprintf "%d regression(s) above %.1f%%\n" (List.length regs)
         threshold);
  Buffer.contents b
