(* Request-scoped causal tracing.

   A trace context is minted at the channel client ({!mint}) and propagated
   inside the sealed message header; each hop that decodes it emits
   [Req_begin]/[Req_end] marker events carrying the context packed into the
   int argument ({!pack}), so the existing (kind, ts, arg) bus needs no new
   plumbing. A collector attached to one or more emitters ({!attach}) turns
   the span stream between the markers into a per-machine segment; segments
   sharing a trace id form the request's cross-machine causal tree, with the
   client-side segment (root bit set) as the root.

   Head-based sampling: the decision is taken once at [mint] and travels in
   the context, so every hop agrees. Unsampled requests still feed the
   latency histogram (the root window is always timed); only span
   collection is skipped. Collection never advances the virtual clock. *)

type ctx = { trace_id : int; span_id : int; sampled : bool }

(* arg layout: trace_id lsl 2 | root lsl 1 | sampled. The span id does not
   travel in marker events — each machine window is one segment, so the
   (trace_id, machine) pair identifies it. *)
let pack ctx ~root =
  (ctx.trace_id lsl 2)
  lor (if root then 2 else 0)
  lor (if ctx.sampled then 1 else 0)

let unpack arg =
  ( { trace_id = arg lsr 2; span_id = 0; sampled = arg land 1 = 1 },
    arg land 2 <> 0 )

(* Immutable views handed to callers. *)
type span = { phase : Trace.phase; t0 : int; t1 : int; children : span list }

type segment = {
  machine : string;
  root : bool;
  seg_t0 : int;
  seg_t1 : int;
  spans : span list;
}

(* Mutable builders used while a window is open. *)
type bspan = {
  bphase : Trace.phase;
  bt0 : int;
  mutable bt1 : int;
  mutable bkids : bspan list; (* reversed *)
}

type bseg = {
  bmachine : string;
  btrace : int;
  broot : bool;
  bsampled : bool;
  bseg_t0 : int;
  mutable btop : bspan list;  (* reversed top-level spans *)
  mutable bstack : bspan list; (* open spans, innermost first *)
}

type t = {
  sample_every : int;
  collect_spans : bool;
  mutable next_id : int;
  mutable completed : int;
  by_trace : (int, segment list ref) Hashtbl.t; (* reversed arrival order *)
  hist_emitter : Emitter.t;
  hist : Histogram.t;
}

let create ?(sample_every = 1) ?(collect_spans = true) () =
  if sample_every < 1 then invalid_arg "Request.create: sample_every < 1";
  let hist_emitter = Emitter.create () in
  let hist = Histogram.attach hist_emitter (Histogram.create ()) in
  { sample_every; collect_spans; next_id = 0; completed = 0;
    by_trace = Hashtbl.create 64; hist_emitter; hist }

let mint t =
  let id = t.next_id in
  t.next_id <- id + 1;
  { trace_id = id; span_id = 1; sampled = id mod t.sample_every = 0 }

let rec freeze_span b =
  { phase = b.bphase; t0 = b.bt0; t1 = b.bt1;
    children = List.rev_map freeze_span b.bkids }

let freeze_seg b ~t1 =
  {
    machine = b.bmachine;
    root = b.broot;
    seg_t0 = b.bseg_t0;
    seg_t1 = t1;
    spans = List.rev_map freeze_span b.btop;
  }

let add_segment t seg ~trace_id =
  let cell =
    match Hashtbl.find_opt t.by_trace trace_id with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.by_trace trace_id c;
        c
  in
  cell := seg :: !cell

let attach t ~machine emitter =
  let current = ref None in
  let sink kind ~ts ~arg =
    match !current with
    | None ->
        if kind = Trace.Req_begin then begin
          let cx, root = unpack arg in
          current :=
            Some
              {
                bmachine = machine;
                btrace = cx.trace_id;
                broot = root;
                bsampled = cx.sampled;
                bseg_t0 = ts;
                btop = [];
                bstack = [];
              }
        end
    | Some seg -> (
        match kind with
        | Trace.Req_end ->
            (* The root window ignores nested non-root ends (single-emitter
               setups see both sides of the channel on one bus). *)
            let cx, root = unpack arg in
            if cx.trace_id = seg.btrace && root = seg.broot then begin
              (* Close any still-open spans at the window end. *)
              List.iter (fun b -> if b.bt1 < ts then b.bt1 <- ts) seg.bstack;
              if seg.bsampled then
                add_segment t (freeze_seg seg ~t1:ts) ~trace_id:seg.btrace;
              if seg.broot then begin
                t.completed <- t.completed + 1;
                Emitter.emit t.hist_emitter Trace.Req_end ~ts
                  ~arg:(ts - seg.bseg_t0)
              end;
              current := None
            end
        | Trace.Span_begin p when seg.bsampled && t.collect_spans ->
            let b = { bphase = p; bt0 = ts; bt1 = ts; bkids = [] } in
            seg.bstack <- b :: seg.bstack
        | Trace.Span_end _ when seg.bsampled && t.collect_spans -> (
            match seg.bstack with
            | [] -> () (* stray end from a span opened before the window *)
            | b :: rest ->
                b.bt1 <- ts;
                seg.bstack <- rest;
                (match rest with
                | parent :: _ -> parent.bkids <- b :: parent.bkids
                | [] -> seg.btop <- b :: seg.btop))
        | _ -> ())
  in
  Emitter.attach emitter sink

(* --- Queries ----------------------------------------------------------- *)

let completed t = t.completed
let sampled_traces t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.by_trace [] |> List.sort compare

let tree t ~trace_id =
  match Hashtbl.find_opt t.by_trace trace_id with
  | None -> []
  | Some cell ->
      let segs = List.rev !cell in
      (* Root segment first, preserving arrival order otherwise. *)
      List.filter (fun s -> s.root) segs
      @ List.filter (fun s -> not s.root) segs

let root_cycles t ~trace_id =
  match List.find_opt (fun s -> s.root) (tree t ~trace_id) with
  | None -> None
  | Some s -> Some (s.seg_t1 - s.seg_t0)

let latency_count t = Histogram.count t.hist Trace.Req_end
let latency_percentile t ~p = Histogram.percentile t.hist Trace.Req_end ~p
let latency_mean t = Histogram.mean t.hist Trace.Req_end

(* --- Exports ----------------------------------------------------------- *)

let rec span_json buf s =
  Printf.bprintf buf {|{"phase":"%s","domain":"%s","t0":%d,"t1":%d,"children":[|}
    (Trace.phase_name s.phase)
    (Trace.domain_name (Trace.phase_domain s.phase))
    s.t0 s.t1;
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      span_json buf c)
    s.children;
  Buffer.add_string buf "]}"

let seg_json buf s =
  Printf.bprintf buf
    {|{"machine":"%s","root":%b,"t0":%d,"t1":%d,"cycles":%d,"spans":[|}
    (Chrome.escape_json s.machine)
    s.root s.seg_t0 s.seg_t1 (s.seg_t1 - s.seg_t0);
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char buf ',';
      span_json buf sp)
    s.spans;
  Buffer.add_string buf "]}"

let trace_json buf t trace_id =
  Printf.bprintf buf {|{"trace_id":%d,|} trace_id;
  (match root_cycles t ~trace_id with
  | Some c -> Printf.bprintf buf {|"root_cycles":%d,|} c
  | None -> ());
  Buffer.add_string buf {|"segments":[|};
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      seg_json buf s)
    (tree t ~trace_id);
  Buffer.add_string buf "]}"

let to_json t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    {|{"requests":%d,"sampled":%d,"latency":{"count":%d,"mean":%.1f,"p50":%d,"p95":%d,"p99":%d},"traces":[|}
    t.completed
    (Hashtbl.length t.by_trace)
    (latency_count t) (latency_mean t)
    (latency_percentile t ~p:0.50)
    (latency_percentile t ~p:0.95)
    (latency_percentile t ~p:0.99);
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      trace_json buf t id)
    (sampled_traces t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Chrome trace of one request: each machine segment is its own tid under
   pid 0, named via thread_name metadata; spans become B/E pairs nested
   inside a whole-segment span. *)
let to_chrome_json t ~trace_id =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"displayTimeUnit":"ns","traceEvents":[|};
  let first = ref true in
  let emit render =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n';
    render ()
  in
  let ev fmt = Printf.ksprintf (fun s -> emit (fun () -> Buffer.add_string buf s)) fmt in
  List.iteri
    (fun tid s ->
      ev {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"%s"}}|}
        tid (Chrome.escape_json s.machine);
      ev {|{"name":"request %d @ %s","cat":"request","ph":"B","ts":%d,"pid":0,"tid":%d}|}
        trace_id (Chrome.escape_json s.machine) s.seg_t0 tid;
      let rec walk sp =
        ev {|{"name":"%s","cat":"span","ph":"B","ts":%d,"pid":0,"tid":%d}|}
          (Chrome.escape_json (Trace.phase_name sp.phase)) sp.t0 tid;
        List.iter walk sp.children;
        ev {|{"name":"%s","cat":"span","ph":"E","ts":%d,"pid":0,"tid":%d}|}
          (Chrome.escape_json (Trace.phase_name sp.phase)) sp.t1 tid
      in
      List.iter walk s.spans;
      ev {|{"name":"request %d @ %s","cat":"request","ph":"E","ts":%d,"pid":0,"tid":%d}|}
        trace_id (Chrome.escape_json s.machine) s.seg_t1 tid)
    (tree t ~trace_id);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let pp_tree fmt (t, trace_id) =
  let rec pp_span indent s =
    Fmt.pf fmt "%s%s [%d, %d] %d cycles@." indent (Trace.phase_name s.phase)
      s.t0 s.t1 (s.t1 - s.t0);
    List.iter (pp_span (indent ^ "  ")) s.children
  in
  List.iter
    (fun s ->
      Fmt.pf fmt "%s%s: [%d, %d] %d cycles@."
        (if s.root then "* " else "  ")
        s.machine s.seg_t0 s.seg_t1 (s.seg_t1 - s.seg_t0);
      List.iter (pp_span "    ") s.spans)
    (tree t ~trace_id)
