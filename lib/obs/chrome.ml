(* Full-stream recorder + Chrome-trace / JSONL exporters. The recorder keeps
   every event in growable parallel arrays (events are small and a run emits
   at most a few hundred thousand), so the same recording backs the golden
   determinism tests and the --trace export. *)

type t = {
  mutable kinds : Trace.kind array;
  mutable tss : int array;
  mutable args : int array;
  mutable len : int;
}

let create () =
  { kinds = Array.make 1024 Trace.Emc_entry;
    tss = Array.make 1024 0;
    args = Array.make 1024 0;
    len = 0 }

let grow t =
  let cap = Array.length t.kinds in
  let ncap = cap * 2 in
  let nk = Array.make ncap Trace.Emc_entry in
  let nt = Array.make ncap 0 in
  let na = Array.make ncap 0 in
  Array.blit t.kinds 0 nk 0 cap;
  Array.blit t.tss 0 nt 0 cap;
  Array.blit t.args 0 na 0 cap;
  t.kinds <- nk;
  t.tss <- nt;
  t.args <- na

let sink t kind ~ts ~arg =
  if t.len = Array.length t.kinds then grow t;
  t.kinds.(t.len) <- kind;
  t.tss.(t.len) <- ts;
  t.args.(t.len) <- arg;
  t.len <- t.len + 1

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let length t = t.len

let events t =
  List.init t.len (fun i ->
      { Trace.kind = t.kinds.(i); ts = t.tss.(i); arg = t.args.(i) })

let iter t f =
  for i = 0 to t.len - 1 do
    f { Trace.kind = t.kinds.(i); ts = t.tss.(i); arg = t.args.(i) }
  done

(* Chrome trace-event format (the JSON object form, loadable in
   chrome://tracing and Perfetto). Spans map to "B"/"E" duration events;
   everything else is an instant ("i"). Timestamps are virtual cycles —
   microseconds in the viewer, which only rescales the axis. *)

let event_json buf e =
  let kind = e.Trace.kind in
  (match kind with
  | Trace.Span_begin p ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"span","ph":"B","ts":%d,"pid":0,"tid":0}|}
        (Trace.phase_name p) e.Trace.ts
  | Trace.Span_end p ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"span","ph":"E","ts":%d,"pid":0,"tid":0}|}
        (Trace.phase_name p) e.Trace.ts
  | _ ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"event","ph":"i","ts":%d,"pid":0,"tid":0,"s":"t","args":{"v":%d}}|}
        (Trace.name kind) e.Trace.ts e.Trace.arg)

let to_chrome_json t =
  let buf = Buffer.create (256 + (t.len * 96)) in
  Buffer.add_string buf {|{"displayTimeUnit":"ns","traceEvents":[|};
  let first = ref true in
  iter t (fun e ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      event_json buf e);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create (t.len * 64) in
  iter t (fun e ->
      Printf.bprintf buf {|{"ts":%d,"kind":"%s","arg":%d}|} e.Trace.ts
        (Trace.name e.Trace.kind) e.Trace.arg;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let clear t = t.len <- 0
