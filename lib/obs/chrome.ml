(* Full-stream recorder + Chrome-trace / JSONL exporters. The recorder keeps
   every event in growable parallel arrays (events are small and a run emits
   at most a few hundred thousand), so the same recording backs the golden
   determinism tests and the --trace export. *)

type t = {
  mutable kinds : Trace.kind array;
  mutable tss : int array;
  mutable args : int array;
  mutable len : int;
}

let create () =
  { kinds = Array.make 1024 Trace.Emc_entry;
    tss = Array.make 1024 0;
    args = Array.make 1024 0;
    len = 0 }

let grow t =
  let cap = Array.length t.kinds in
  let ncap = cap * 2 in
  let nk = Array.make ncap Trace.Emc_entry in
  let nt = Array.make ncap 0 in
  let na = Array.make ncap 0 in
  Array.blit t.kinds 0 nk 0 cap;
  Array.blit t.tss 0 nt 0 cap;
  Array.blit t.args 0 na 0 cap;
  t.kinds <- nk;
  t.tss <- nt;
  t.args <- na

let sink t kind ~ts ~arg =
  if t.len = Array.length t.kinds then grow t;
  t.kinds.(t.len) <- kind;
  t.tss.(t.len) <- ts;
  t.args.(t.len) <- arg;
  t.len <- t.len + 1

let attach emitter t =
  Emitter.attach emitter (sink t);
  t

let length t = t.len

let events t =
  List.init t.len (fun i ->
      { Trace.kind = t.kinds.(i); ts = t.tss.(i); arg = t.args.(i) })

let iter t f =
  for i = 0 to t.len - 1 do
    f { Trace.kind = t.kinds.(i); ts = t.tss.(i); arg = t.args.(i) }
  done

(* Chrome trace-event format (the JSON object form, loadable in
   chrome://tracing and Perfetto). Spans map to "B"/"E" duration events;
   everything else is an instant ("i"). Timestamps are virtual cycles —
   microseconds in the viewer, which only rescales the axis. *)

(* Event and phase names are wire constants today, but the format must stay
   valid even if the taxonomy grows names with JSON-significant characters
   — and the exporter must not hand the viewer a malformed trace when a
   recording stops mid-span (aborted run, post-mortem dump). *)
let escape_json s =
  let plain = ref true in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then plain := false)
    s;
  if !plain then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let span_json buf ph name ts =
  Printf.bprintf buf
    {|{"name":"%s","cat":"span","ph":"%c","ts":%d,"pid":0,"tid":0}|}
    (escape_json name) ph ts

let event_json buf e =
  let kind = e.Trace.kind in
  (match kind with
  | Trace.Span_begin p -> span_json buf 'B' (Trace.phase_name p) e.Trace.ts
  | Trace.Span_end p -> span_json buf 'E' (Trace.phase_name p) e.Trace.ts
  | _ ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"event","ph":"i","ts":%d,"pid":0,"tid":0,"s":"t","args":{"v":%d}}|}
        (escape_json (Trace.name kind))
        e.Trace.ts e.Trace.arg)

let to_chrome_json t =
  let buf = Buffer.create (256 + (t.len * 96)) in
  Buffer.add_string buf {|{"displayTimeUnit":"ns","traceEvents":[|};
  let first = ref true in
  let emit render =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n';
    render ()
  in
  (* Keep the B/E nesting balanced even if the recording is not: drop a
     stray E with no matching open span, and close still-open spans with
     synthetic E events at the last recorded timestamp. *)
  let open_spans = ref [] in
  let last_ts = ref 0 in
  iter t (fun e ->
      last_ts := e.Trace.ts;
      match e.Trace.kind with
      | Trace.Span_begin p ->
          open_spans := p :: !open_spans;
          emit (fun () -> event_json buf e)
      | Trace.Span_end _ -> (
          match !open_spans with
          | [] -> () (* unmatched end: dropping it keeps the trace valid *)
          | p :: rest ->
              open_spans := rest;
              (* Close what is actually open — viewers match E to the
                 innermost B by position, not by name. *)
              emit (fun () ->
                  span_json buf 'E' (Trace.phase_name p) e.Trace.ts))
      | _ -> emit (fun () -> event_json buf e));
  List.iter
    (fun p ->
      emit (fun () -> span_json buf 'E' (Trace.phase_name p) !last_ts))
    !open_spans;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create (t.len * 64) in
  iter t (fun e ->
      Printf.bprintf buf {|{"ts":%d,"kind":"%s","arg":%d}|} e.Trace.ts
        (escape_json (Trace.name e.Trace.kind))
        e.Trace.arg;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let clear t = t.len <- 0
