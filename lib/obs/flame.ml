(* Flamegraph export for the attribution tree: Brendan-Gregg collapsed-stack
   lines ("a;b;c self\n", one per context with nonzero self-cycles, ready
   for flamegraph.pl / speedscope / inferno), plus a plain ASCII tree for
   terminal inspection. Frames are "domain:phase" so the privilege split is
   visible at every depth. *)

let frame p = Trace.domain_name (Trace.phase_domain p) ^ ":" ^ Trace.phase_name p

let collapsed ?(root = "erebor") attrib =
  let buf = Buffer.create 1024 in
  let rec go prefix (v : Attrib.view) =
    let label =
      match v.Attrib.vphase with
      | None -> prefix
      | Some p -> prefix ^ ";" ^ frame p
    in
    if v.Attrib.vself > 0 then begin
      Buffer.add_string buf label;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int v.Attrib.vself);
      Buffer.add_char buf '\n'
    end;
    List.iter (go label) v.Attrib.vkids
  in
  go root (Attrib.view attrib);
  Buffer.contents buf

let tree ?(root = "erebor") attrib =
  let v = Attrib.view attrib in
  let grand = max 1 v.Attrib.vtotal in
  let buf = Buffer.create 1024 in
  let pct c = 100.0 *. float_of_int c /. float_of_int grand in
  let rec go indent (v : Attrib.view) =
    let label =
      match v.Attrib.vphase with None -> root | Some p -> frame p
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-24s %14d cy %6.2f%%" indent label v.Attrib.vtotal
         (pct v.Attrib.vtotal));
    if v.Attrib.vkids <> [] && v.Attrib.vself > 0 then
      Buffer.add_string buf (Printf.sprintf "  (self %d)" v.Attrib.vself);
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) v.Attrib.vkids
  in
  go "" v;
  Buffer.contents buf
