(** Mergeable relative-error quantile sketch (DDSketch-style log-gamma
    buckets).

    Values land in buckets [i = ceil (ln v / ln gamma)] with
    [gamma = (1+alpha)/(1-alpha)], so every quantile estimate is within a
    relative error of [alpha] of some value actually recorded (plus at
    most 1 absolute from integer rounding; values below [1 / 2 alpha]
    occupy one bucket per integer and are exact). Unlike
    {!Histogram}'s factor-of-two log2 buckets, sketches from different
    machines {!merge} with no accuracy loss, which is what makes fleet
    p50/p95/p99 well-defined.

    Determinism contract: the sketch state is a pure function of the
    multiset of recorded values — record order, merge order and merge
    grouping never change it — so {!serialize} output is byte-identical
    for any aggregation schedule. {!merge} is exactly associative and
    commutative, including across {!create}d, {!deserialize}d and merged
    operands, and including the collapse-lowest path. *)

type t

val default_alpha : float
(** 0.01 — 1% relative error. *)

val create : ?alpha:float -> ?capacity:int -> unit -> t
(** A fresh sketch. [alpha] (default {!default_alpha}) is the relative
    accuracy target, must be in (0, 1). [capacity] bounds the number of
    live buckets: when a new maximum would exceed it, the lowest buckets
    are collapsed into the floor bucket (tail accuracy is preserved; the
    collapsed low end degrades gracefully). Default: enough buckets for
    the full int range, so no collapse ever occurs (~2150 at 1%). The
    bucket array is allocated once here; {!record} never allocates. *)

val alpha : t -> float
val capacity : t -> int

val record : t -> int -> unit
(** Record one value. Allocation-free in steady state (the cold
    collapse-lowest path runs only when a new maximum crosses
    [capacity]). Values [<= 0] are counted in a dedicated zero bucket. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value; 0 for an empty sketch. *)

val max_value : t -> int
(** Largest recorded value; 0 for an empty sketch. *)

val mean : t -> float

val quantile : t -> p:float -> int
(** Quantile estimate with {!Histogram.percentile}'s edge semantics:
    empty sketch returns 0 at every [p]; [p] is clamped to [[0, 1]];
    [p <= 0.0] returns {!min_value}; [p >= 1.0] returns {!max_value}; a
    single-sample sketch returns that sample at every [p]. In between,
    the estimate is within relative error [alpha] (+1 for integer
    rounding) of the exact rank-[ceil (p * n)] order statistic, and is
    clamped to the observed [[min, max]]. The relative-error bound holds
    for non-negative streams (latencies); negative values share the zero
    bucket and are pinned only by the min clamp. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into] (the source is left untouched). Exactly
    associative and commutative: any merge tree over the same sketches
    leaves [into] in the same state. Raises [Invalid_argument] if the
    two sketches have different [alpha]/[capacity], or on self-merge. *)

val buckets : t -> (int * int) list
(** Non-empty live buckets as [(index, count)], ascending — for tests,
    debugging and re-bucketed expositions ({!Metrics}). *)

val estimate : t -> int -> int
(** The midpoint value estimate for a bucket index (what {!quantile}
    reports for ranks landing in that bucket). *)

val zeros : t -> int
(** Count of recorded values [<= 0]. *)

val bucket_floor : t -> int
(** Current collapse floor (0 until a collapse occurs). *)

val serialize : t -> string
(** Canonical compact binary encoding ("ESK1" magic, varint-packed) for
    cross-domain transport. Byte equality is state equality. *)

val deserialize : string -> (t, string) result
(** Parse {!serialize} output; [Error] describes the first malformed
    field (bad magic, truncation, count mismatch, trailing bytes). *)

(** Per-kind sketch family attachable as an emitter sink, mirroring
    {!Histogram.attach}: every event's argument is recorded into its
    kind's sketch. *)
module Family : sig
  type sketch = t
  type t

  val create : ?alpha:float -> ?capacity:int -> unit -> t
  val attach : Emitter.t -> t -> t
  val get : t -> Trace.kind -> sketch

  val merge : into:t -> t -> unit
  (** Kind-wise {!Sketch.merge}. *)
end
