(** Latency-histogram sink: per event kind, a log2-bucketed distribution of
    the event argument. Bucket [b] covers [[2^(b-1), 2^b - 1]] (bucket 0 is
    exactly 0, bucket 1 exactly 1), so EMC/tdcall round-trip latencies land
    in a handful of readable rows. *)

type t

val n_buckets : int
(** Number of log2 buckets per kind (63 — one per significant-bit count). *)

val create : unit -> t
val attach : Emitter.t -> t -> t

val bucket_of : int -> int
(** The bucket index a value lands in (number of significant bits). *)

val bucket_lo : int -> int
val bucket_hi : int -> int
(** Inclusive value range covered by a bucket index. *)

val count : t -> Trace.kind -> int
val sum : t -> Trace.kind -> int
val max_value : t -> Trace.kind -> int

val min_value : t -> Trace.kind -> int
(** Smallest observed value; 0 for an empty distribution. *)

val mean : t -> Trace.kind -> float

val buckets : t -> Trace.kind -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val bucket_count : t -> Trace.kind -> value:int -> int
(** Count in the bucket that [value] would land in. *)

val percentile : t -> Trace.kind -> p:float -> int
(** Percentile estimate: [p] is clamped to [[0, 1]]; the rank is located in
    the bucketed distribution and interpolated linearly within the bucket's
    [[lo, hi]] range, then clamped to the observed [[min, max]]. Edge
    semantics are exact: an empty distribution returns 0 at every [p];
    [p <= 0.0] returns {!min_value}; [p >= 1.0] returns {!max_value}; a
    single-sample distribution returns that sample at every [p]. Between
    the edges the estimate is within the bucket's factor-of-two band. *)

val pp : Format.formatter -> t * Trace.kind -> unit
(** ASCII histogram for one kind, with p50/p95/p99 in the header. *)
