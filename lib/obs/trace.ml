(* The event taxonomy: every privilege-relevant occurrence in the simulated
   stack, from hardware faults up to sandbox lifecycle transitions. The type
   is deliberately flat and integer-indexable so sinks can use plain arrays
   and emission never allocates on the hot path (see the preallocated
   constants below). *)

type emc_kind = Mmu | Cr | Msr | Idt | Smap | Ghci

(* Privilege domains for cycle attribution: who the virtual CPU is working
   for when time passes. [User] is sandbox/workload execution, [Kernel] the
   untrusted guest kernel, [Monitor] Erebor's virtual privileged mode, and
   [Host] the hypervisor side of a VM exit. *)
type domain = User | Kernel | Monitor | Host

let n_domains = 4
let all_domains = [ User; Kernel; Monitor; Host ]

let domain_index = function User -> 0 | Kernel -> 1 | Monitor -> 2 | Host -> 3

let domain_name = function
  | User -> "user"
  | Kernel -> "kernel"
  | Monitor -> "monitor"
  | Host -> "host"

(* Span phases. The first four are the coarse lifecycle spans; the rest are
   the fine-grained handler/service phases the cycle-attribution profiler
   decomposes a run into. Every phase belongs to exactly one privilege
   domain ({!phase_domain}), so an attribution context is (domain x phase)
   with the domain implied by the phase. *)
type phase =
  | Boot                (* machine assembly *)
  | Scan                (* kernel-image byte scan *)
  | Attest              (* attested-channel handshake *)
  | Run                 (* workload body *)
  | Emc_gate            (* EMC entry/exit round trip (Fig. 5 gate code) *)
  | Svc_mmu             (* EMC service body, per privop kind *)
  | Svc_cr
  | Svc_msr
  | Svc_idt
  | Svc_smap
  | Svc_ghci
  | Ve_handler          (* #VE exit + host round trip *)
  | Pf_handler          (* page-fault service *)
  | Timer_handler       (* timer-IRQ delivery *)
  | Syscall_dispatch    (* syscall entry + kernel dispatch *)
  | Channel_crypto      (* attested-channel seal/open *)
  | Scheduler           (* context switch *)
  | Exit_interpose      (* monitor exit interposition (§6.2) *)

let n_phases = 18

let phase_index = function
  | Boot -> 0
  | Scan -> 1
  | Attest -> 2
  | Run -> 3
  | Emc_gate -> 4
  | Svc_mmu -> 5
  | Svc_cr -> 6
  | Svc_msr -> 7
  | Svc_idt -> 8
  | Svc_smap -> 9
  | Svc_ghci -> 10
  | Ve_handler -> 11
  | Pf_handler -> 12
  | Timer_handler -> 13
  | Syscall_dispatch -> 14
  | Channel_crypto -> 15
  | Scheduler -> 16
  | Exit_interpose -> 17

let all_phases =
  [
    Boot; Scan; Attest; Run; Emc_gate;
    Svc_mmu; Svc_cr; Svc_msr; Svc_idt; Svc_smap; Svc_ghci;
    Ve_handler; Pf_handler; Timer_handler; Syscall_dispatch; Channel_crypto;
    Scheduler; Exit_interpose;
  ]

let phases_arr = Array.of_list all_phases
let phase_of_index i = phases_arr.(i)

let phase_name = function
  | Boot -> "boot"
  | Scan -> "scan"
  | Attest -> "attest"
  | Run -> "run"
  | Emc_gate -> "gate"
  | Svc_mmu -> "svc.mmu"
  | Svc_cr -> "svc.cr"
  | Svc_msr -> "svc.msr"
  | Svc_idt -> "svc.idt"
  | Svc_smap -> "svc.smap"
  | Svc_ghci -> "svc.ghci"
  | Ve_handler -> "ve"
  | Pf_handler -> "pf"
  | Timer_handler -> "timer"
  | Syscall_dispatch -> "syscall"
  | Channel_crypto -> "crypto"
  | Scheduler -> "sched"
  | Exit_interpose -> "interpose"

let phase_domain = function
  | Boot -> Kernel
  | Scan -> Monitor
  | Attest -> Monitor
  | Run -> User
  | Emc_gate -> Monitor
  | Svc_mmu | Svc_cr | Svc_msr | Svc_idt | Svc_smap | Svc_ghci -> Monitor
  | Ve_handler -> Host
  | Pf_handler -> Kernel
  | Timer_handler -> Kernel
  | Syscall_dispatch -> Kernel
  | Channel_crypto -> Monitor
  | Scheduler -> Kernel
  | Exit_interpose -> Monitor

let gate_phase = function
  | Mmu -> Svc_mmu
  | Cr -> Svc_cr
  | Msr -> Svc_msr
  | Idt -> Svc_idt
  | Smap -> Svc_smap
  | Ghci -> Svc_ghci

type kind =
  | Emc_entry            (* one gate round trip; arg = measured cycles *)
  | Emc of emc_kind      (* one privop service; arg = service cycles charged *)
  | Syscall              (* arg = syscall code *)
  | Page_fault           (* arg = faulting address *)
  | Segfault             (* arg = faulting address *)
  | Timer_irq
  | Ve_exit
  | Context_switch       (* arg = next task's tid *)
  | Tdcall               (* arg = measured cycles *)
  | Vmcall               (* arg = measured cycles *)
  | Tlb_fill             (* arg = virtual address *)
  | Fault_raised         (* arg = hardware vector *)
  | Mmu_deny
  | Channel_send         (* arg = payload bytes *)
  | Channel_recv         (* arg = payload bytes *)
  | Sandbox_create       (* arg = sandbox id *)
  | Sandbox_seal         (* arg = sandbox id *)
  | Sandbox_kill         (* arg = sandbox id *)
  | Sandbox_exit         (* arg = sandbox id *)
  | Req_begin            (* arg = packed request ctx, see {!Request} *)
  | Req_end              (* arg = packed request ctx, see {!Request} *)
  | Slo_alert            (* arg = objective index lsl 1 lor fired *)
  | Health_transition    (* arg = subject id lsl 2 lor state index *)
  | Span_begin of phase
  | Span_end of phase

type event = { kind : kind; ts : int; arg : int }

let n_span_base = 28
let n_kinds = n_span_base + (2 * n_phases)

let index = function
  | Emc_entry -> 0
  | Emc Mmu -> 1
  | Emc Cr -> 2
  | Emc Msr -> 3
  | Emc Idt -> 4
  | Emc Smap -> 5
  | Emc Ghci -> 6
  | Syscall -> 7
  | Page_fault -> 8
  | Segfault -> 9
  | Timer_irq -> 10
  | Ve_exit -> 11
  | Context_switch -> 12
  | Tdcall -> 13
  | Vmcall -> 14
  | Tlb_fill -> 15
  | Fault_raised -> 16
  | Mmu_deny -> 17
  | Channel_send -> 18
  | Channel_recv -> 19
  | Sandbox_create -> 20
  | Sandbox_seal -> 21
  | Sandbox_kill -> 22
  | Sandbox_exit -> 23
  | Req_begin -> 24
  | Req_end -> 25
  | Slo_alert -> 26
  | Health_transition -> 27
  | Span_begin p -> n_span_base + phase_index p
  | Span_end p -> n_span_base + n_phases + phase_index p

let name = function
  | Emc_entry -> "emc"
  | Emc Mmu -> "emc.mmu"
  | Emc Cr -> "emc.cr"
  | Emc Msr -> "emc.msr"
  | Emc Idt -> "emc.idt"
  | Emc Smap -> "emc.smap"
  | Emc Ghci -> "emc.ghci"
  | Syscall -> "syscall"
  | Page_fault -> "page_fault"
  | Segfault -> "segfault"
  | Timer_irq -> "timer_irq"
  | Ve_exit -> "ve_exit"
  | Context_switch -> "context_switch"
  | Tdcall -> "tdcall"
  | Vmcall -> "vmcall"
  | Tlb_fill -> "tlb_fill"
  | Fault_raised -> "fault"
  | Mmu_deny -> "mmu_deny"
  | Channel_send -> "channel.send"
  | Channel_recv -> "channel.recv"
  | Sandbox_create -> "sandbox.create"
  | Sandbox_seal -> "sandbox.seal"
  | Sandbox_kill -> "sandbox.kill"
  | Sandbox_exit -> "sandbox.exit"
  | Req_begin -> "req.begin"
  | Req_end -> "req.end"
  | Slo_alert -> "slo.alert"
  | Health_transition -> "health.transition"
  | Span_begin p -> phase_name p
  | Span_end p -> phase_name p

(* Preallocated constants: [Emc _] and [Span_*] carry a payload, so naming
   them once here keeps every emission site allocation-free. *)
let emc_mmu = Emc Mmu
let emc_cr = Emc Cr
let emc_msr = Emc Msr
let emc_idt = Emc Idt
let emc_smap = Emc Smap
let emc_ghci = Emc Ghci

let emc_event = function
  | Mmu -> emc_mmu
  | Cr -> emc_cr
  | Msr -> emc_msr
  | Idt -> emc_idt
  | Smap -> emc_smap
  | Ghci -> emc_ghci

let span_begins = Array.map (fun p -> Span_begin p) phases_arr
let span_ends = Array.map (fun p -> Span_end p) phases_arr
let span_begin p = span_begins.(phase_index p)
let span_end p = span_ends.(phase_index p)

let all =
  [
    Emc_entry; emc_mmu; emc_cr; emc_msr; emc_idt; emc_smap; emc_ghci;
    Syscall; Page_fault; Segfault; Timer_irq; Ve_exit; Context_switch;
    Tdcall; Vmcall; Tlb_fill; Fault_raised; Mmu_deny;
    Channel_send; Channel_recv;
    Sandbox_create; Sandbox_seal; Sandbox_kill; Sandbox_exit;
    Req_begin; Req_end; Slo_alert; Health_transition;
  ]
  @ List.map span_begin all_phases
  @ List.map span_end all_phases

let kinds_arr = Array.of_list all
let kind_of_index i = kinds_arr.(i)

let pp_kind fmt k = Fmt.string fmt (name k)

let pp_event fmt e =
  Fmt.pf fmt "%d %s %d" e.ts (name e.kind) e.arg
