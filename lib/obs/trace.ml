(* The event taxonomy: every privilege-relevant occurrence in the simulated
   stack, from hardware faults up to sandbox lifecycle transitions. The type
   is deliberately flat and integer-indexable so sinks can use plain arrays
   and emission never allocates on the hot path (see the preallocated
   constants below). *)

type emc_kind = Mmu | Cr | Msr | Idt | Smap | Ghci

type phase = Boot | Scan | Attest | Run

type kind =
  | Emc_entry            (* one gate round trip; arg = measured cycles *)
  | Emc of emc_kind      (* one privop service; arg = service cycles charged *)
  | Syscall              (* arg = syscall code *)
  | Page_fault           (* arg = faulting address *)
  | Segfault             (* arg = faulting address *)
  | Timer_irq
  | Ve_exit
  | Context_switch       (* arg = next task's tid *)
  | Tdcall               (* arg = measured cycles *)
  | Vmcall               (* arg = measured cycles *)
  | Tlb_fill             (* arg = virtual address *)
  | Fault_raised         (* arg = hardware vector *)
  | Mmu_deny
  | Channel_send         (* arg = payload bytes *)
  | Channel_recv         (* arg = payload bytes *)
  | Sandbox_create       (* arg = sandbox id *)
  | Sandbox_seal         (* arg = sandbox id *)
  | Sandbox_kill         (* arg = sandbox id *)
  | Sandbox_exit         (* arg = sandbox id *)
  | Span_begin of phase
  | Span_end of phase

type event = { kind : kind; ts : int; arg : int }

let n_kinds = 32

let index = function
  | Emc_entry -> 0
  | Emc Mmu -> 1
  | Emc Cr -> 2
  | Emc Msr -> 3
  | Emc Idt -> 4
  | Emc Smap -> 5
  | Emc Ghci -> 6
  | Syscall -> 7
  | Page_fault -> 8
  | Segfault -> 9
  | Timer_irq -> 10
  | Ve_exit -> 11
  | Context_switch -> 12
  | Tdcall -> 13
  | Vmcall -> 14
  | Tlb_fill -> 15
  | Fault_raised -> 16
  | Mmu_deny -> 17
  | Channel_send -> 18
  | Channel_recv -> 19
  | Sandbox_create -> 20
  | Sandbox_seal -> 21
  | Sandbox_kill -> 22
  | Sandbox_exit -> 23
  | Span_begin Boot -> 24
  | Span_begin Scan -> 25
  | Span_begin Attest -> 26
  | Span_begin Run -> 27
  | Span_end Boot -> 28
  | Span_end Scan -> 29
  | Span_end Attest -> 30
  | Span_end Run -> 31

let phase_name = function
  | Boot -> "boot"
  | Scan -> "scan"
  | Attest -> "attest"
  | Run -> "run"

let name = function
  | Emc_entry -> "emc"
  | Emc Mmu -> "emc.mmu"
  | Emc Cr -> "emc.cr"
  | Emc Msr -> "emc.msr"
  | Emc Idt -> "emc.idt"
  | Emc Smap -> "emc.smap"
  | Emc Ghci -> "emc.ghci"
  | Syscall -> "syscall"
  | Page_fault -> "page_fault"
  | Segfault -> "segfault"
  | Timer_irq -> "timer_irq"
  | Ve_exit -> "ve_exit"
  | Context_switch -> "context_switch"
  | Tdcall -> "tdcall"
  | Vmcall -> "vmcall"
  | Tlb_fill -> "tlb_fill"
  | Fault_raised -> "fault"
  | Mmu_deny -> "mmu_deny"
  | Channel_send -> "channel.send"
  | Channel_recv -> "channel.recv"
  | Sandbox_create -> "sandbox.create"
  | Sandbox_seal -> "sandbox.seal"
  | Sandbox_kill -> "sandbox.kill"
  | Sandbox_exit -> "sandbox.exit"
  | Span_begin p -> phase_name p
  | Span_end p -> phase_name p

(* Preallocated constants: [Emc _] and [Span_*] carry a payload, so naming
   them once here keeps every emission site allocation-free. *)
let emc_mmu = Emc Mmu
let emc_cr = Emc Cr
let emc_msr = Emc Msr
let emc_idt = Emc Idt
let emc_smap = Emc Smap
let emc_ghci = Emc Ghci

let span_begin = function
  | Boot -> Span_begin Boot
  | Scan -> Span_begin Scan
  | Attest -> Span_begin Attest
  | Run -> Span_begin Run

let span_end = function
  | Boot -> Span_end Boot
  | Scan -> Span_end Scan
  | Attest -> Span_end Attest
  | Run -> Span_end Run

let all_phases = [ Boot; Scan; Attest; Run ]

let all =
  [
    Emc_entry; emc_mmu; emc_cr; emc_msr; emc_idt; emc_smap; emc_ghci;
    Syscall; Page_fault; Segfault; Timer_irq; Ve_exit; Context_switch;
    Tdcall; Vmcall; Tlb_fill; Fault_raised; Mmu_deny;
    Channel_send; Channel_recv;
    Sandbox_create; Sandbox_seal; Sandbox_kill; Sandbox_exit;
  ]
  @ List.map span_begin all_phases
  @ List.map span_end all_phases

let pp_kind fmt k = Fmt.string fmt (name k)

let pp_event fmt e =
  Fmt.pf fmt "%d %s %d" e.ts (name e.kind) e.arg
