type sink = Trace.kind -> ts:int -> arg:int -> unit

type t = { mutable sinks : sink array }

let create () = { sinks = [||] }

let attach t sink = t.sinks <- Array.append t.sinks [| sink |]

let sink_count t = Array.length t.sinks

let emit t kind ~ts ~arg =
  let sinks = t.sinks in
  for i = 0 to Array.length sinks - 1 do
    (Array.unsafe_get sinks i) kind ~ts ~arg
  done
