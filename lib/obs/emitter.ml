type sink = Trace.kind -> ts:int -> arg:int -> unit

type t = {
  mutable sinks : sink array;
  mutable audit : Audit.t option;
  mutable finalizers : (now:int -> unit) list;
  mutable finalized : bool;
}

let create () =
  { sinks = [||]; audit = None; finalizers = []; finalized = false }

let attach t sink = t.sinks <- Array.append t.sinks [| sink |]

let sink_count t = Array.length t.sinks

let emit t kind ~ts ~arg =
  let sinks = t.sinks in
  for i = 0 to Array.length sinks - 1 do
    (Array.unsafe_get sinks i) kind ~ts ~arg
  done

(* Audit hook: the structured side channel for decisions whose detail does
   not fit the int-arg bus. The detail thunk only runs when a log is
   attached, so instrumented paths stay allocation-free otherwise. *)

let set_audit t audit = t.audit <- audit
let audit t = t.audit

let audit_event t ~ts ~category ~verdict detail =
  match t.audit with
  | None -> ()
  | Some log -> Audit.append log ~ts ~category ~verdict ~detail:(detail ())

(* Finalizers: flush/close hooks for sinks with buffered or open state
   (attribution contexts, audit chains). [finalize] is idempotent so both
   the normal-exit path and an exception handler can call it. *)

let add_finalizer t f = t.finalizers <- f :: t.finalizers

let finalize t ~now =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter (fun f -> f ~now) (List.rev t.finalizers);
    match t.audit with None -> () | Some log -> Audit.finalize log ~now
  end

let finalized t = t.finalized
