(* Tamper-evident audit log: every monitor security decision becomes one
   record in an HMAC-SHA256 hash chain. Record [i]'s MAC covers the previous
   record's MAC plus a canonical encoding of its own body, so flipping a
   byte, dropping a record or swapping two records breaks every MAC from the
   damage point onward. A mandatory [finalize] close record carries the
   record count, which is what makes tail truncation detectable: a chain
   without a close record, or whose close record disagrees with the number
   of records present, does not verify. *)

type verdict = Allow | Deny | Kill | Info

let verdict_name = function
  | Allow -> "allow"
  | Deny -> "deny"
  | Kill -> "kill"
  | Info -> "info"

let verdict_of_name = function
  | "allow" -> Some Allow
  | "deny" -> Some Deny
  | "kill" -> Some Kill
  | "info" -> Some Info
  | _ -> None

type record = {
  seq : int;
  ts : int;                     (* virtual cycles at the decision point *)
  category : string;            (* "scan", "privop.cr", "mmu", "policy", ... *)
  verdict : verdict;
  detail : string;
  mac : string;                 (* lowercase hex, 64 chars *)
}

type t = {
  key : bytes;
  mutable records : record list; (* newest first *)
  mutable count : int;
  mutable last_mac : bytes;      (* raw 32-byte chain head *)
  mutable finalized : bool;
}

let chain_label = "erebor-audit-v1"
let close_category = "audit.close"

(* Canonical record body: unambiguous because the variable-length [detail]
   is length-prefixed and comes last. The MAC chain covers this encoding,
   not the JSON rendering, so the verifier recomputes it from parsed
   fields. *)
let body ~seq ~ts ~category ~verdict ~detail =
  Printf.sprintf "%d|%d|%s|%s|%d|%s" seq ts category (verdict_name verdict)
    (String.length detail) detail

let create ~key =
  {
    key;
    records = [];
    count = 0;
    last_mac = Crypto.Hmac.mac_string ~key chain_label;
    finalized = false;
  }

let append_raw t ~ts ~category ~verdict ~detail =
  let seq = t.count in
  let b = body ~seq ~ts ~category ~verdict ~detail in
  let mac =
    Crypto.Hmac.mac_string ~key:t.key (Bytes.to_string t.last_mac ^ b)
  in
  t.last_mac <- mac;
  t.count <- seq + 1;
  t.records <-
    { seq; ts; category; verdict; detail; mac = Crypto.Sha256.hex mac }
    :: t.records

let append t ~ts ~category ~verdict ~detail =
  if t.finalized then invalid_arg "Audit.append: log already finalized";
  append_raw t ~ts ~category ~verdict ~detail

let finalize t ~now =
  if not t.finalized then begin
    let n = t.count in
    append_raw t ~ts:now ~category:close_category ~verdict:Info
      ~detail:(Printf.sprintf "count=%d" n);
    t.finalized <- true
  end

let finalized t = t.finalized

(* Decision records only — the close record is chain framing, not a
   decision. *)
let length t = if t.finalized then t.count - 1 else t.count
let records t = List.rev t.records

(* JSON string escaping for [detail]/[category]; mirrors Chrome.escape_json
   but kept local so the verifier's unescape stays next to it. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n -> (
        incr i;
        match s.[!i] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' when !i + 4 < n ->
            let code = int_of_string ("0x" ^ String.sub s (!i + 1) 4) in
            Buffer.add_char buf (Char.chr (code land 0xff));
            i := !i + 4
        | c -> Buffer.add_char buf c)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let record_line r =
  Printf.sprintf
    {|{"seq":%d,"ts":%d,"category":"%s","verdict":"%s","detail":"%s","mac":"%s"}|}
    r.seq r.ts (escape r.category) (verdict_name r.verdict) (escape r.detail)
    r.mac

let to_string t =
  let buf = Buffer.create (64 * (t.count + 1)) in
  List.iter
    (fun r ->
      Buffer.add_string buf (record_line r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

(* --- Offline verifier ------------------------------------------------- *)

(* Minimal field extraction for the exact JSONL shape [record_line] writes.
   The verifier is deliberately strict: a line that does not parse is a
   verification failure, not a skip. *)
let parse_line ln =
  let field_string key =
    let pat = Printf.sprintf "\"%s\":\"" key in
    match
      (* find pat in ln *)
      let pl = String.length pat and ll = String.length ln in
      let rec find i =
        if i + pl > ll then None
        else if String.sub ln i pl = pat then Some (i + pl)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
        (* scan to the closing unescaped quote *)
        let buf = Buffer.create 16 in
        let rec go i =
          if i >= String.length ln then None
          else
            match ln.[i] with
            | '"' -> Some (Buffer.contents buf)
            | '\\' when i + 1 < String.length ln ->
                Buffer.add_char buf '\\';
                Buffer.add_char buf ln.[i + 1];
                go (i + 2)
            | c ->
                Buffer.add_char buf c;
                go (i + 1)
        in
        go start
  in
  let field_int key =
    let pat = Printf.sprintf "\"%s\":" key in
    let pl = String.length pat and ll = String.length ln in
    let rec find i =
      if i + pl > ll then None
      else if String.sub ln i pl = pat then Some (i + pl)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < ll && (ln.[!stop] = '-' || (ln.[!stop] >= '0' && ln.[!stop] <= '9'))
        do
          incr stop
        done;
        if !stop = start then None
        else int_of_string_opt (String.sub ln start (!stop - start))
  in
  match
    ( field_int "seq",
      field_int "ts",
      field_string "category",
      field_string "verdict",
      field_string "detail",
      field_string "mac" )
  with
  | Some seq, Some ts, Some category, Some verdict, Some detail, Some mac -> (
      match verdict_of_name verdict with
      | Some v ->
          Some
            {
              seq;
              ts;
              category = unescape category;
              verdict = v;
              detail = unescape detail;
              mac;
            }
      | None -> None)
  | _ -> None

let verify_string ~key s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let n_lines = List.length lines in
  if n_lines = 0 then Error "empty log: no records and no close record"
  else begin
    let chain = ref (Crypto.Hmac.mac_string ~key chain_label) in
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    List.iteri
      (fun i ln ->
        if !err = None then
          match parse_line ln with
          | None -> fail (Printf.sprintf "record %d: malformed line" i)
          | Some r ->
              if r.seq <> i then
                fail
                  (Printf.sprintf
                     "record %d: sequence mismatch (found seq=%d): record \
                      dropped or reordered"
                     i r.seq)
              else begin
                let b =
                  body ~seq:r.seq ~ts:r.ts ~category:r.category
                    ~verdict:r.verdict ~detail:r.detail
                in
                let expect =
                  Crypto.Hmac.mac_string ~key (Bytes.to_string !chain ^ b)
                in
                if Crypto.Sha256.hex expect <> r.mac then
                  fail
                    (Printf.sprintf
                       "record %d: MAC mismatch: record tampered, dropped or \
                        reordered"
                       i)
                else begin
                  chain := expect;
                  if i = n_lines - 1 then
                    if r.category <> close_category then
                      fail "truncated: last record is not the close record"
                    else if
                      r.detail <> Printf.sprintf "count=%d" (n_lines - 1)
                    then
                      fail
                        (Printf.sprintf
                           "close record count disagrees with %d records \
                            present: log truncated"
                           (n_lines - 1))
                end
              end)
      lines;
    match !err with Some m -> Error m | None -> Ok (n_lines - 1)
  end

let pp_record fmt r =
  Fmt.pf fmt "#%d @%d [%s] %s: %s" r.seq r.ts (verdict_name r.verdict)
    r.category r.detail
