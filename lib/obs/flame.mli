(** Flamegraph export for the {!Attrib} context tree. *)

val frame : Trace.phase -> string
(** The frame label for a phase: ["domain:phase"], e.g. ["monitor:svc.mmu"]. *)

val collapsed : ?root:string -> Attrib.t -> string
(** Brendan-Gregg collapsed-stack format: one ["root;frame;... self\n"]
    line per context with nonzero self-cycles (root line included when it
    holds unattributed cycles), deterministic order, counts summing to
    {!Attrib.total}. Feed to [flamegraph.pl], speedscope or inferno. *)

val tree : ?root:string -> Attrib.t -> string
(** Indented ASCII tree: per context, subtree total cycles and share of the
    grand total (plus self-cycles where they differ). *)
