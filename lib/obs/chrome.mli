(** Full-stream recorder sink with Chrome-trace and JSONL exporters.

    Records every event in order. {!to_chrome_json} renders the Chrome
    trace-event JSON object format (loadable in chrome://tracing /
    Perfetto): spans become "B"/"E" duration events, everything else an
    instant event carrying its argument; timestamps are virtual cycles.
    Because the simulation is single-threaded and seeded, the recorded
    stream is deterministic — two runs with the same seed produce identical
    event lists, making the recorder a golden-trace regression instrument. *)

type t

val create : unit -> t
val attach : Emitter.t -> t -> t

val length : t -> int
val events : t -> Trace.event list
val iter : t -> (Trace.event -> unit) -> unit

val escape_json : string -> string
(** JSON string-body escaping (quote, backslash, control characters). *)

val to_chrome_json : t -> string
(** Always a well-formed trace: names are JSON-escaped, an unmatched
    [Span_end] is dropped, and spans still open at end-of-recording are
    closed with synthetic ["E"] events at the last recorded timestamp. *)

val to_jsonl : t -> string

val clear : t -> unit
