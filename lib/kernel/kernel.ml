(** Re-exported submodules: the library's entry module shadows them. *)

module Layout = Layout
module Privops = Privops
module Alloc = Alloc
module Vma = Vma
module Task = Task
module Sched = Sched
module Fs = Fs
module Syscall = Syscall

type stats = {
  mutable page_faults : int;
  mutable syscalls : int;
  mutable timer_irqs : int;
  mutable ve_exits : int;
  mutable segfaults : int;
}

type t = {
  mem : Hw.Phys_mem.t;
  clock : Hw.Cycles.clock;
  cpu : Hw.Cpu.t;
  td : Tdx.Td_module.t;
  privops : Privops.t;
  frame_alloc : Alloc.t;
  cma : Alloc.t;
  fs : Fs.t;
  sched : Sched.t;
  kernel_root : int;
  tasks : (int, Task.t) Hashtbl.t;
  mutable next_tid : int;
  stats : stats;
  mutable frame_source :
    (Task.t -> Vma.region -> addr:int -> int option) option;
  futex_waiters : Task.t Queue.t;
  mutable mmu_batching : bool;
  mutable io_scratch : bytes;
      (* reusable landing buffer for special-file writes, grown on demand *)
}

let cost t c = Hw.Cycles.advance t.clock c

(* All kernel-side trace events go out on the CPU's emitter; emission never
   advances the virtual clock. *)
let emit t kind ~arg = Hw.Cpu.emit t.cpu kind ~arg

(* Attribution span around one handler body: the boundary events carry the
   current clock value, so the Attrib sink charges the enclosed cycles to
   [phase] (privops called inside nest their own monitor-side spans). *)
let span t phase f =
  emit t (Obs.Trace.span_begin phase) ~arg:0;
  match f () with
  | v ->
      emit t (Obs.Trace.span_end phase) ~arg:0;
      v
  | exception e ->
      emit t (Obs.Trace.span_end phase) ~arg:0;
      raise e

let alloc_ptp t () =
  match Alloc.alloc_zeroed t.frame_alloc t.mem with
  | Some pfn -> pfn
  | None -> failwith "Kernel: out of frames for page tables"

(* Demand-populate the kernel direct map for one frame. Intermediate levels
   below the shared boot-time PDPT are shared by every address space. *)
let ensure_direct_map t ~pfn =
  let vaddr = Layout.direct_map (Hw.Phys_mem.addr_of_pfn pfn) in
  match Hw.Page_table.walk t.mem ~root_pfn:t.kernel_root vaddr with
  | Some _ -> ()
  | None ->
      Hw.Page_table.map t.mem ~write_pte:t.privops.Privops.write_pte ~alloc_ptp:(alloc_ptp t)
        ~root_pfn:t.kernel_root ~vaddr
        (Hw.Pte.make ~pfn { Hw.Pte.default_flags with nx = true })

(* Eagerly allocate the PML4-slot subtrees shared between all address
   spaces, so later direct-map fills are visible through every root. *)
let preplant_shared_slot t root vaddr =
  let slot_index, _, _, _ = Hw.Page_table.split vaddr in
  let slot_addr = Hw.Phys_mem.addr_of_pfn root + (8 * slot_index) in
  let existing = Hw.Phys_mem.read_u64 t.mem slot_addr in
  if not (Hw.Pte.present existing) then begin
    let pdpt = alloc_ptp t () in
    t.privops.Privops.write_pte ~pte_addr:slot_addr
      (Hw.Pte.make ~pfn:pdpt { Hw.Pte.default_flags with user = true })
  end

let boot ~mem ~cpu ~td ~privops ~reserved_frames ~cma_frames =
  let frames = Hw.Phys_mem.frames mem in
  if reserved_frames + cma_frames >= frames then
    invalid_arg "Kernel.boot: reservations exceed physical memory";
  let general = frames - reserved_frames - cma_frames in
  let t =
    {
      mem;
      clock = cpu.Hw.Cpu.clock;
      cpu;
      td;
      privops;
      frame_alloc = Alloc.create ~first_pfn:reserved_frames ~frames:general;
      cma = Alloc.create ~first_pfn:(reserved_frames + general) ~frames:cma_frames;
      fs = Fs.create ();
      sched =
        Sched.create
          ~on_switch:(fun next ->
            Hw.Cpu.emit cpu Obs.Trace.Context_switch ~arg:next.Task.tid)
          ~quantum_ticks:4 ();
      kernel_root = 0 (* patched below *);
      tasks = Hashtbl.create 16;
      next_tid = 1;
      stats = { page_faults = 0; syscalls = 0; timer_irqs = 0; ve_exits = 0; segfaults = 0 };
      frame_source = None;
      futex_waiters = Queue.create ();
      mmu_batching = false;
      io_scratch = Bytes.create 4096;
    }
  in
  let root =
    match Alloc.alloc_zeroed t.frame_alloc mem with
    | Some pfn -> pfn
    | None -> failwith "Kernel.boot: no frame for root"
  in
  let t = { t with kernel_root = root } in
  privops.Privops.declare_root ~root_pfn:root;
  preplant_shared_slot t root Layout.direct_map_base;
  preplant_shared_slot t root Layout.kernel_text_base;
  privops.Privops.write_cr3 ~root_pfn:root;
  (* Stock hardening a modern guest enables; Erebor additionally forces
     these on and removes the kernel's ability to flip them back. *)
  privops.Privops.set_cr_bit ~reg:`Cr0 Hw.Cr.cr0_wp true;
  privops.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smep true;
  privops.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap true;
  t

let copy_kernel_half t root =
  List.iter
    (fun base ->
      let slot_index, _, _, _ = Hw.Page_table.split base in
      let src = Hw.Phys_mem.read_u64 t.mem (Hw.Phys_mem.addr_of_pfn t.kernel_root + (8 * slot_index)) in
      if Hw.Pte.present src then
        t.privops.Privops.write_pte
          ~pte_addr:(Hw.Phys_mem.addr_of_pfn root + (8 * slot_index))
          src)
    [ Layout.direct_map_base; Layout.kernel_text_base ]

let create_task t ~name ~kind =
  let root =
    match Alloc.alloc_zeroed t.frame_alloc t.mem with
    | Some pfn -> pfn
    | None -> failwith "Kernel.create_task: no frame for root"
  in
  t.privops.Privops.declare_root ~root_pfn:root;
  copy_kernel_half t root;
  let task = Task.make ~tid:t.next_tid ~name ~kind ~root_pfn:root in
  t.next_tid <- t.next_tid + 1;
  Hashtbl.replace t.tasks task.Task.tid task;
  Sched.enqueue t.sched task;
  task

let clone_thread t parent ~name =
  let task = Task.make ~tid:t.next_tid ~name ~kind:parent.Task.kind ~root_pfn:parent.Task.root_pfn in
  task.Task.vmas <- parent.Task.vmas;
  task.Task.brk <- parent.Task.brk;
  t.next_tid <- t.next_tid + 1;
  Hashtbl.replace t.tasks task.Task.tid task;
  Sched.enqueue t.sched task;
  task

let find_task t tid = Hashtbl.find_opt t.tasks tid

let live_task_count t =
  Hashtbl.fold (fun _ task acc -> if task.Task.state <> Task.Dead then acc + 1 else acc) t.tasks 0

let mmap _t task ~len ~prot ~kind =
  let len = Layout.page_align_up len in
  if len <= 0 then Error "mmap: empty length"
  else
    match Vma.find_gap task.Task.vmas ~hint:0x1000_0000 ~len ~limit:Layout.user_top with
    | None -> Error "mmap: address space exhausted"
    | Some start -> (
        match Vma.add task.Task.vmas { Vma.start; len; prot; kind } with
        | Ok vmas ->
            task.Task.vmas <- vmas;
            Ok start
        | Error e -> Error e)

let allocator_for t kind =
  match kind with Vma.Confined -> t.cma | Vma.Anon | Vma.Stack | Vma.File _ | Vma.Common -> t.frame_alloc

let handle_page_fault t task ~addr ~kind =
  span t Obs.Trace.Pf_handler @@ fun () ->
  cost t Hw.Cycles.Cost.page_fault_base;
  t.stats.page_faults <- t.stats.page_faults + 1;
  emit t Obs.Trace.Page_fault ~arg:addr;
  match Vma.find task.Task.vmas addr with
  | None ->
      t.stats.segfaults <- t.stats.segfaults + 1;
      emit t Obs.Trace.Segfault ~arg:addr;
      Error (Printf.sprintf "segfault: no mapping at 0x%x" addr)
  | Some region ->
      let allowed =
        match kind with
        | Hw.Fault.Read -> region.Vma.prot.Vma.read
        | Hw.Fault.Write -> region.Vma.prot.Vma.write
        | Hw.Fault.Execute -> region.Vma.prot.Vma.exec
      in
      if not allowed then begin
        t.stats.segfaults <- t.stats.segfaults + 1;
        emit t Obs.Trace.Segfault ~arg:addr;
        Error (Printf.sprintf "segfault: protection at 0x%x" addr)
      end
      else begin
        let page = Layout.page_align_down addr in
        let provided =
          match t.frame_source with
          | Some f -> f task region ~addr:page
          | None -> None
        in
        let pfn =
          match provided with
          | Some pfn -> Some pfn
          | None -> Alloc.alloc (allocator_for t region.Vma.kind)
        in
        match pfn with
        | None -> Error "out of memory"
        | Some pfn ->
            (* Sandbox-declared memory is deliberately absent from the
               kernel direct map: the monitor's single-mapping rule forbids
               a second (kernel-visible) mapping of confined frames. *)
            (match region.Vma.kind with
            | Vma.Confined | Vma.Common -> ()
            | Vma.Anon | Vma.Stack | Vma.File _ -> ensure_direct_map t ~pfn);
            let writable =
              (* Common regions may be writable in the VMA until the monitor
                 seals them; the PTE mirrors the VMA protection. *)
              region.Vma.prot.Vma.write
            in
            let pte =
              Hw.Pte.make ~pfn
                { Hw.Pte.default_flags with
                  user = Layout.is_user_addr page;
                  writable;
                  nx = not region.Vma.prot.Vma.exec }
            in
            Hw.Page_table.map t.mem ~write_pte:t.privops.Privops.write_pte
              ~alloc_ptp:(alloc_ptp t) ~root_pfn:task.Task.root_pfn ~vaddr:page pte;
            Ok ()
      end

(* Batched population: the demand-zero faults still occur page by page,
   but the leaf PTE stores are submitted to the monitor in batches of 64,
   sharing EMC round trips (§9.1's batched-MMU optimization). *)
let populate_batched t task ~first ~last =
  let batch = ref [] and count = ref 0 in
  let flush () =
    if !count > 0 then begin
      t.privops.Privops.write_pte_batch (Array.of_list (List.rev !batch));
      batch := [];
      count := 0
    end
  in
  let rec go page =
    if page >= last then begin
      flush ();
      Ok ()
    end
    else
      match Hw.Page_table.walk t.mem ~root_pfn:task.Task.root_pfn page with
      | Some _ -> go (page + Hw.Phys_mem.page_size)
      | None -> (
          cost t Hw.Cycles.Cost.page_fault_base;
          t.stats.page_faults <- t.stats.page_faults + 1;
          emit t Obs.Trace.Page_fault ~arg:page;
          match Vma.find task.Task.vmas page with
          | None -> Error (Printf.sprintf "segfault: no mapping at 0x%x" page)
          | Some region -> (
              let provided =
                match t.frame_source with
                | Some f -> f task region ~addr:page
                | None -> None
              in
              let pfn =
                match provided with
                | Some pfn -> Some pfn
                | None -> Alloc.alloc (allocator_for t region.Vma.kind)
              in
              match pfn with
              | None -> Error "out of memory"
              | Some pfn ->
                  (match region.Vma.kind with
                  | Vma.Confined | Vma.Common -> ()
                  | Vma.Anon | Vma.Stack | Vma.File _ -> ensure_direct_map t ~pfn);
                  let slot =
                    Hw.Page_table.prepare_leaf t.mem
                      ~write_pte:t.privops.Privops.write_pte ~alloc_ptp:(alloc_ptp t)
                      ~root_pfn:task.Task.root_pfn ~vaddr:page
                  in
                  let pte =
                    Hw.Pte.make ~pfn
                      { Hw.Pte.default_flags with
                        user = Layout.is_user_addr page;
                        writable = region.Vma.prot.Vma.write;
                        nx = not region.Vma.prot.Vma.exec }
                  in
                  batch := (slot, pte) :: !batch;
                  incr count;
                  if !count >= 64 then flush ();
                  go (page + Hw.Phys_mem.page_size)))
  in
  go first

let populate t task ~start ~len =
  let first = Layout.page_align_down start in
  let last = Layout.page_align_up (start + len) in
  if t.mmu_batching then
    span t Obs.Trace.Pf_handler (fun () -> populate_batched t task ~first ~last)
  else begin
    let rec go page =
      if page >= last then Ok ()
      else
        match Hw.Page_table.walk t.mem ~root_pfn:task.Task.root_pfn page with
        | Some _ -> go (page + Hw.Phys_mem.page_size)
        | None -> (
            match handle_page_fault t task ~addr:page ~kind:Hw.Fault.Write with
            | Ok () -> go (page + Hw.Phys_mem.page_size)
            | Error e -> Error e)
    in
    go first
  end

let set_mmu_batching t enabled = t.mmu_batching <- enabled

(* Dynamic kernel code (§7): loadable modules and text_poke go through the
   monitor's verifier before becoming executable. *)
let module_area_base = Layout.kernel_text_base + 0x1000_0000

let load_module t ~name ~code =
  match t.privops.Privops.verify_dynamic_code ~section:("module:" ^ name) code with
  | Error e -> Error ("module rejected: " ^ e)
  | Ok () ->
      let pages = max 1 (Layout.pages_of_bytes (Bytes.length code)) in
      let rec alloc_frames n acc =
        if n = 0 then Some (List.rev acc)
        else
          match Alloc.alloc t.frame_alloc with
          | Some pfn -> alloc_frames (n - 1) (pfn :: acc)
          | None -> None
      in
      (match alloc_frames pages [] with
      | None -> Error "module: out of memory"
      | Some frames ->
          let base =
            module_area_base + (t.next_tid * 0x100_0000) + (Hashtbl.hash name land 0xff_f000)
          in
          List.iteri
            (fun i pfn ->
              let off = i * Hw.Phys_mem.page_size in
              let chunk = min Hw.Phys_mem.page_size (Bytes.length code - off) in
              if chunk > 0 then
                Hw.Phys_mem.blit_from t.mem (Hw.Phys_mem.addr_of_pfn pfn) code ~off
                  ~len:chunk;
              (* Map read-only + executable: W^X for dynamic code too. *)
              Hw.Page_table.map t.mem ~write_pte:t.privops.Privops.write_pte
                ~alloc_ptp:(alloc_ptp t) ~root_pfn:t.kernel_root ~vaddr:(base + off)
                (Hw.Pte.make ~pfn { Hw.Pte.default_flags with writable = false }))
            frames;
          Ok base)

let poke_text t ~vaddr ~code =
  (* text_poke: the kernel cannot write its own (write-protected) text, so
     the monitor validates and performs the update (§7). *)
  match t.privops.Privops.verify_dynamic_code ~section:"text_poke" code with
  | Error e -> Error ("poke rejected: " ^ e)
  | Ok () -> (
      match Hw.Page_table.walk t.mem ~root_pfn:t.kernel_root vaddr with
      | None -> Error "poke: target not mapped"
      | Some w ->
          Hw.Phys_mem.write_bytes t.mem
            (Hw.Phys_mem.addr_of_pfn w.Hw.Page_table.pfn + Hw.Phys_mem.page_offset vaddr)
            code;
          Ok ())

let resolve_pfn t task ~addr =
  Option.map
    (fun w -> w.Hw.Page_table.pfn)
    (Hw.Page_table.walk t.mem ~root_pfn:task.Task.root_pfn addr)

let fork_process t parent ~name =
  let child = create_task t ~name ~kind:parent.Task.kind in
  child.Task.brk <- parent.Task.brk;
  Vma.iter
    (fun region ->
      (match Vma.add child.Task.vmas region with
      | Ok vmas -> child.Task.vmas <- vmas
      | Error e -> failwith ("fork: " ^ e));
      (* Eager copy of all present pages (no COW in this kernel). *)
      let page = ref region.Vma.start in
      while !page < Vma.region_end region do
        (match Hw.Page_table.walk t.mem ~root_pfn:parent.Task.root_pfn !page with
        | None -> ()
        | Some w -> (
            match Alloc.alloc (allocator_for t region.Vma.kind) with
            | None -> failwith "fork: out of memory"
            | Some pfn ->
                ensure_direct_map t ~pfn;
                let src = Hw.Phys_mem.addr_of_pfn (Hw.Pte.pfn w.Hw.Page_table.pte) in
                Hw.Phys_mem.copy t.mem ~src ~dst:(Hw.Phys_mem.addr_of_pfn pfn)
                  ~len:Hw.Phys_mem.page_size;
                cost t Hw.Cycles.Cost.page_fault_base;
                t.stats.page_faults <- t.stats.page_faults + 1;
                emit t Obs.Trace.Page_fault ~arg:!page;
                Hw.Page_table.map t.mem ~write_pte:t.privops.Privops.write_pte
                  ~alloc_ptp:(alloc_ptp t) ~root_pfn:child.Task.root_pfn ~vaddr:!page
                  (Hw.Pte.with_pfn w.Hw.Page_table.pte pfn)));
        page := !page + Hw.Phys_mem.page_size
      done)
    parent.Task.vmas;
  child

let munmap t task ~addr =
  match Vma.find task.Task.vmas addr with
  | None -> Error "munmap: no region"
  | Some region when region.Vma.start <> addr -> Error "munmap: not region start"
  | Some region ->
      let page = ref region.Vma.start in
      while !page < Vma.region_end region do
        (match Hw.Page_table.walk t.mem ~root_pfn:task.Task.root_pfn !page with
        | None -> ()
        | Some w ->
            let pfn = Hw.Pte.pfn w.Hw.Page_table.pte in
            Hw.Page_table.unmap t.mem ~write_pte:t.privops.Privops.write_pte
              ~root_pfn:task.Task.root_pfn ~vaddr:!page;
            (* Common frames back a shared instance other address spaces may
               still map: only the mapping goes away, never the frame. *)
            (match region.Vma.kind with
            | Vma.Common -> ()
            | Vma.Anon | Vma.Stack | Vma.File _ | Vma.Confined ->
                let allocator = allocator_for t region.Vma.kind in
                (try if Alloc.is_allocated allocator pfn then Alloc.free allocator pfn
                 with Invalid_argument _ -> ( (* frame owned elsewhere *) ))));
        page := !page + Hw.Phys_mem.page_size
      done;
      task.Task.vmas <- Vma.remove task.Task.vmas ~start:addr;
      Ok ()

let context_switch t ~prev ~next =
  span t Obs.Trace.Scheduler @@ fun () ->
  cost t Hw.Cycles.Cost.context_switch;
  (match prev with
  | Some p -> p.Task.saved_regs <- Some (Hw.Cpu.snapshot_regs t.cpu)
  | None -> ());
  (match next.Task.saved_regs with
  | Some regs -> Hw.Cpu.restore_regs t.cpu regs
  | None -> Hw.Cpu.scrub_regs t.cpu);
  t.privops.Privops.write_cr3 ~root_pfn:next.Task.root_pfn

let timer_interrupt t =
  span t Obs.Trace.Timer_handler @@ fun () ->
  cost t Hw.Cycles.Cost.interrupt_delivery;
  t.stats.timer_irqs <- t.stats.timer_irqs + 1;
  emit t Obs.Trace.Timer_irq ~arg:0;
  ignore (Sched.on_timer t.sched ~switch:(fun ~prev ~next -> context_switch t ~prev ~next))

let note_ve_exit t =
  t.stats.ve_exits <- t.stats.ve_exits + 1;
  emit t Obs.Trace.Ve_exit ~arg:0

let cpuid t _task ~leaf =
  span t Obs.Trace.Ve_handler @@ fun () ->
  cost t Hw.Cycles.Cost.ve_handling;
  t.stats.ve_exits <- t.stats.ve_exits + 1;
  emit t Obs.Trace.Ve_exit ~arg:leaf;
  match t.privops.Privops.tdcall (Tdx.Ghci.Vmcall (Tdx.Ghci.Cpuid leaf)) with
  | Tdx.Td_module.Ok_int v -> v
  | Tdx.Td_module.Ok_bytes _ | Tdx.Td_module.Ok_report _ | Tdx.Td_module.Ok_unit -> 0L
  | Tdx.Td_module.Error_leaf e -> failwith ("cpuid: " ^ e)

let exit_task t task ~code =
  Task.kill task ~exit_code:code;
  Sched.remove_dead t.sched

let brk _t task ~new_brk =
  let old = task.Task.brk in
  if new_brk <= old then Ok old
  else begin
    let start = Layout.page_align_up old in
    let len = Layout.page_align_up new_brk - start in
    if len = 0 then begin
      task.Task.brk <- new_brk;
      Ok new_brk
    end
    else
      match Vma.add task.Task.vmas { Vma.start; len; prot = Vma.prot_rw; kind = Vma.Anon } with
      | Ok vmas ->
          task.Task.vmas <- vmas;
          task.Task.brk <- new_brk;
          Ok new_brk
      | Error e -> Error e
  end

(* The dispatch body, bracketed by [syscall] below. Split out so the hot
   entry point can emit the span boundaries inline instead of building a
   closure per call. *)
let syscall_body t task call =
  cost t Hw.Cycles.Cost.syscall_roundtrip;
  t.stats.syscalls <- t.stats.syscalls + 1;
  emit t Obs.Trace.Syscall ~arg:(Syscall.code call);
  match call with
  | Syscall.Open { path } ->
      if not (Fs.exists t.fs path) then Fs.write_file t.fs path Bytes.empty;
      Syscall.Rint (Task.alloc_fd task path)
  | Syscall.Close { fd } ->
      if Task.close_fd task fd then Syscall.Rint 0 else Syscall.Rerr "close: bad fd"
  | Syscall.Read { fd; user_buf; len } -> (
      match Task.path_of_fd task fd with
      | None -> Syscall.Rerr "read: bad fd"
      | Some path -> (
          match Fs.read_path t.fs path with
          | None -> Syscall.Rerr "read: no such file"
          | Some data ->
              let n = min len (Bytes.length data) in
              if user_buf <> 0 then begin
                (* The payload lands in user memory; returning the count
                   keeps the steady-state read loop allocation-free. *)
                t.privops.Privops.copy_to_user_from ~user_addr:user_buf
                  ~buf:data ~off:0 ~len:n;
                Syscall.Rint n
              end
              else
                Syscall.Rbytes
                  (if n = Bytes.length data then data else Bytes.sub data 0 n)))
  | Syscall.Write { fd; user_buf; len } -> (
      match Task.path_of_fd task fd with
      | None -> Syscall.Rerr "write: bad fd"
      | Some path ->
          if Fs.is_special t.fs path then begin
            (* Specials get a (buffer, len) view of a reusable scratch:
               same user-copy costs and checks, no per-call buffer. *)
            if Bytes.length t.io_scratch < len then
              t.io_scratch <- Bytes.create len;
            t.privops.Privops.copy_from_user_into ~user_addr:user_buf
              ~buf:t.io_scratch ~off:0 ~len;
            ignore (Fs.write_special_view t.fs path t.io_scratch ~len);
            Syscall.Rint len
          end
          else begin
            let data = t.privops.Privops.copy_from_user ~user_addr:user_buf ~len in
            Fs.append_file t.fs path data;
            Syscall.Rint (Bytes.length data)
          end)
  | Syscall.Mmap { len; prot } -> (
      match mmap t task ~len ~prot ~kind:Vma.Anon with
      | Ok addr -> Syscall.Raddr addr
      | Error e -> Syscall.Rerr e)
  | Syscall.Munmap { addr } -> (
      match munmap t task ~addr with Ok () -> Syscall.Rok | Error e -> Syscall.Rerr e)
  | Syscall.Brk { new_brk } -> (
      match brk t task ~new_brk with Ok b -> Syscall.Raddr b | Error e -> Syscall.Rerr e)
  | Syscall.Clone { name } ->
      let child = clone_thread t task ~name in
      Syscall.Rint child.Task.tid
  | Syscall.Futex_wait ->
      Sched.block_current t.sched;
      Queue.add task t.futex_waiters;
      ignore (Sched.yield t.sched ~switch:(fun ~prev ~next -> context_switch t ~prev ~next));
      Syscall.Rok
  | Syscall.Futex_wake ->
      (match Queue.take_opt t.futex_waiters with
      | Some waiter -> Sched.wake t.sched waiter
      | None -> ());
      Syscall.Rok
  | Syscall.Ioctl { fd; request; arg } -> (
      match Task.path_of_fd task fd with
      | None -> Syscall.Rerr "ioctl: bad fd"
      | Some path -> (
          match request with
          | 1 -> (
              (* INPUT: read the node. *)
              match Fs.read_path t.fs path with
              | Some data -> Syscall.Rbytes data
              | None -> Syscall.Rerr "ioctl: no such node")
          | 2 ->
              (* OUTPUT: write through the node. *)
              ignore (Fs.write_path t.fs path arg);
              Syscall.Rok
          | _ -> Syscall.Rerr "ioctl: unknown request"))
  | Syscall.Getpid -> Syscall.Rint task.Task.tid
  | Syscall.Sched_yield ->
      ignore (Sched.yield t.sched ~switch:(fun ~prev ~next -> context_switch t ~prev ~next));
      Syscall.Rok
  | Syscall.Exit { code } ->
      exit_task t task ~code;
      Syscall.Rok

(* Span boundaries written out inline (the constructors are interned in
   [Obs.Trace]), so steady-state dispatch allocates nothing of its own. *)
let syscall t task call =
  emit t (Obs.Trace.span_begin Obs.Trace.Syscall_dispatch) ~arg:0;
  match syscall_body t task call with
  | r ->
      emit t (Obs.Trace.span_end Obs.Trace.Syscall_dispatch) ~arg:0;
      r
  | exception e ->
      emit t (Obs.Trace.span_end Obs.Trace.Syscall_dispatch) ~arg:0;
      raise e

(* Exposed for Erebor: install a custom provider of fault frames (common
   memory instances, pinned confined pools). *)
let set_frame_source t f = t.frame_source <- Some f
