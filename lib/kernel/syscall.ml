type call =
  | Read of { fd : int; user_buf : int; len : int }
  | Write of { fd : int; user_buf : int; len : int }
  | Open of { path : string }
  | Close of { fd : int }
  | Mmap of { len : int; prot : Vma.prot }
  | Munmap of { addr : int }
  | Brk of { new_brk : int }
  | Clone of { name : string }
  | Futex_wait
  | Futex_wake
  | Ioctl of { fd : int; request : int; arg : bytes }
  | Getpid
  | Sched_yield
  | Exit of { code : int }

type result =
  | Rint of int
  | Raddr of int
  | Rbytes of bytes
  | Rok
  | Rerr of string

let name = function
  | Read _ -> "read"
  | Write _ -> "write"
  | Open _ -> "open"
  | Close _ -> "close"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Brk _ -> "brk"
  | Clone _ -> "clone"
  | Futex_wait -> "futex_wait"
  | Futex_wake -> "futex_wake"
  | Ioctl _ -> "ioctl"
  | Getpid -> "getpid"
  | Sched_yield -> "sched_yield"
  | Exit _ -> "exit"

let code = function
  | Read _ -> 0
  | Write _ -> 1
  | Open _ -> 2
  | Close _ -> 3
  | Mmap _ -> 9
  | Munmap _ -> 11
  | Brk _ -> 12
  | Clone _ -> 56
  | Futex_wait -> 202
  | Futex_wake -> 203
  | Ioctl _ -> 16
  | Getpid -> 39
  | Sched_yield -> 24
  | Exit _ -> 60

let pp_result fmt = function
  | Rint n -> Fmt.pf fmt "%d" n
  | Raddr a -> Fmt.pf fmt "0x%x" a
  | Rbytes b -> Fmt.pf fmt "<%d bytes>" (Bytes.length b)
  | Rok -> Fmt.string fmt "ok"
  | Rerr e -> Fmt.pf fmt "error:%s" e
