type t = {
  label : string;
  write_pte : pte_addr:int -> Hw.Pte.t -> unit;
  write_pte_batch : (int * Hw.Pte.t) array -> unit;
  set_cr_bit : reg:[ `Cr0 | `Cr4 ] -> int64 -> bool -> unit;
  write_cr3 : root_pfn:int -> unit;
  declare_root : root_pfn:int -> unit;
  write_msr : int -> int64 -> unit;
  lidt : Hw.Idt.t -> unit;
  tdcall : Tdx.Ghci.leaf -> Tdx.Td_module.tdcall_result;
  verify_dynamic_code : section:string -> bytes -> (unit, string) result;
  copy_from_user : user_addr:int -> len:int -> bytes;
  copy_from_user_into : user_addr:int -> buf:bytes -> off:int -> len:int -> unit;
  copy_to_user : user_addr:int -> bytes -> unit;
  copy_to_user_from : user_addr:int -> buf:bytes -> off:int -> len:int -> unit;
}

let native ~cpu ~td =
  let clock = cpu.Hw.Cpu.clock in
  let cost c = Hw.Cycles.advance clock c in
  {
    label = "native";
    write_pte =
      (fun ~pte_addr pte ->
        cost Hw.Cycles.Cost.pte_write_native;
        Hw.Phys_mem.write_u64 cpu.Hw.Cpu.mem pte_addr pte;
        (* A PTE store invalidates any cached translation through it. The
           native kernel pairs set_pte with invlpg; we model the flush as
           part of the operation. *)
        Hw.Cpu.flush_tlb cpu);
    write_pte_batch =
      (fun entries ->
        cost (Hw.Cycles.Cost.pte_write_native * Array.length entries);
        Array.iter
          (fun (pte_addr, pte) -> Hw.Phys_mem.write_u64 cpu.Hw.Cpu.mem pte_addr pte)
          entries;
        Hw.Cpu.flush_tlb cpu);
    set_cr_bit =
      (fun ~reg bit v ->
        cost Hw.Cycles.Cost.cr_write_native;
        Hw.Cpu.set_cr_bit cpu ~reg bit v);
    write_cr3 =
      (fun ~root_pfn ->
        cost Hw.Cycles.Cost.cr_write_native;
        Hw.Cpu.write_cr3 cpu ~root_pfn);
    declare_root = (fun ~root_pfn -> ignore root_pfn (* nothing to do natively *));
    write_msr =
      (fun idx v ->
        cost Hw.Cycles.Cost.msr_write_native;
        Hw.Cpu.write_msr cpu idx v);
    lidt =
      (fun idt ->
        cost Hw.Cycles.Cost.lidt_native;
        Hw.Cpu.lidt cpu idt);
    tdcall = (fun leaf -> Tdx.Td_module.tdcall td cpu leaf);
    verify_dynamic_code = (fun ~section code -> ignore section; ignore code; Ok ());
    copy_from_user =
      (fun ~user_addr ~len ->
        cost Hw.Cycles.Cost.stac_native;
        cost (Hw.Cycles.Cost.usercopy_per_page * max 1 (Layout.pages_of_bytes len));
        Hw.Cpu.stac cpu;
        match Hw.Cpu.read_bytes cpu user_addr len with
        | v ->
            Hw.Cpu.clac cpu;
            v
        | exception e ->
            Hw.Cpu.clac cpu;
            raise e);
    copy_from_user_into =
      (fun ~user_addr ~buf ~off ~len ->
        cost Hw.Cycles.Cost.stac_native;
        cost (Hw.Cycles.Cost.usercopy_per_page * max 1 (Layout.pages_of_bytes len));
        Hw.Cpu.stac cpu;
        match Hw.Cpu.read_into cpu user_addr buf ~off ~len with
        | v ->
            Hw.Cpu.clac cpu;
            v
        | exception e ->
            Hw.Cpu.clac cpu;
            raise e);
    copy_to_user =
      (fun ~user_addr data ->
        cost Hw.Cycles.Cost.stac_native;
        cost
          (Hw.Cycles.Cost.usercopy_per_page
          * max 1 (Layout.pages_of_bytes (Bytes.length data)));
        Hw.Cpu.stac cpu;
        match Hw.Cpu.write_bytes cpu user_addr data with
        | v ->
            Hw.Cpu.clac cpu;
            v
        | exception e ->
            Hw.Cpu.clac cpu;
            raise e);
    copy_to_user_from =
      (fun ~user_addr ~buf ~off ~len ->
        cost Hw.Cycles.Cost.stac_native;
        cost (Hw.Cycles.Cost.usercopy_per_page * max 1 (Layout.pages_of_bytes len));
        Hw.Cpu.stac cpu;
        match Hw.Cpu.write_from cpu user_addr buf ~off ~len with
        | v ->
            Hw.Cpu.clac cpu;
            v
        | exception e ->
            Hw.Cpu.clac cpu;
            raise e);
  }

let count_pte_writes t =
  let n = ref 0 in
  let wrapped =
    {
      t with
      write_pte =
        (fun ~pte_addr pte ->
          incr n;
          t.write_pte ~pte_addr pte);
    }
  in
  (wrapped, fun () -> !n)
