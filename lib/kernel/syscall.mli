(** The guest syscall surface — the subset of Linux the workloads and the
    LibOS need. System calls are the primary AV2 leak channel the monitor
    disables for sandboxes once client data arrives (§6.2). *)

type call =
  | Read of { fd : int; user_buf : int; len : int }
      (** With [user_buf <> 0] the payload is copied to user memory and the
          result is [Rint count] (the POSIX shape, allocation-free in the
          kernel). With [user_buf = 0] the kernel buffers the payload and
          returns [Rbytes]; treat it as read-only — it may alias kernel or
          special-node storage. *)
  | Write of { fd : int; user_buf : int; len : int }
  | Open of { path : string }
  | Close of { fd : int }
  | Mmap of { len : int; prot : Vma.prot }
  | Munmap of { addr : int }
  | Brk of { new_brk : int }
  | Clone of { name : string }
  | Futex_wait
  | Futex_wake
  | Ioctl of { fd : int; request : int; arg : bytes }
  | Getpid
  | Sched_yield
  | Exit of { code : int }

type result =
  | Rint of int          (** fd, byte count, tid, pid... *)
  | Raddr of int         (** mmap/brk address. *)
  | Rbytes of bytes      (** kernel-buffered read payload; read-only. *)
  | Rok
  | Rerr of string

val name : call -> string

val code : call -> int
(** Linux syscall number (x86-64 ABI) — the argument carried by [Syscall]
    trace events. *)
val pp_result : Format.formatter -> result -> unit
