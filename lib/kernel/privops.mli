(** The privileged-operation table — the reproduction's rendering of the
    paper's kernel instrumentation (§5.1). Every sensitive instruction the
    kernel would execute (Table 2) goes through this record. The [native]
    implementation executes directly at native cost; Erebor substitutes an
    implementation that funnels each call through an EMC gate with policy
    validation, at the calibrated EMC cost. *)

type t = {
  label : string;  (** "native" or "erebor", for diagnostics. *)
  write_pte : pte_addr:int -> Hw.Pte.t -> unit;
      (** MMU: store one page-table entry. *)
  write_pte_batch : (int * Hw.Pte.t) array -> unit;
      (** MMU: store many entries in one request — the batched-update
          optimization the paper points at in §9.1 (after Nested Kernel).
          Under Erebor the whole batch shares a single EMC round trip;
          natively it is just a loop. *)
  set_cr_bit : reg:[ `Cr0 | `Cr4 ] -> int64 -> bool -> unit;
      (** CR: toggle a CR0/CR4 feature bit. *)
  write_cr3 : root_pfn:int -> unit;
      (** CR: switch address spaces (flushes the TLB). *)
  declare_root : root_pfn:int -> unit;
      (** MMU: announce a freshly-allocated page-table root before entries
          are stored into it (process page-table initialization goes through
          the monitor under Erebor). *)
  write_msr : int -> int64 -> unit;  (** MSR: wrmsr. *)
  lidt : Hw.Idt.t -> unit;           (** IDT: install an interrupt table. *)
  tdcall : Tdx.Ghci.leaf -> Tdx.Td_module.tdcall_result;
      (** GHCI: call the TDX module. *)
  verify_dynamic_code : section:string -> bytes -> (unit, string) result;
      (** Dynamic kernel code (modules, eBPF, text_poke payloads, §7): the
          monitor byte-scans it before it may become executable. Natively a
          no-op accept. *)
  copy_from_user : user_addr:int -> len:int -> bytes;
      (** SMAP-aware user copy (stac/…/clac). Raises [Fault.Fault] when the
          user range is unmapped or protected. *)
  copy_from_user_into : user_addr:int -> buf:bytes -> off:int -> len:int -> unit;
      (** Same checks, costs and events as [copy_from_user], but lands in a
          caller-owned buffer: the hot path for callers that drain packets
          into a reusable scratch page. [copy_from_user] is this plus a
          fresh buffer — and a 4 KiB buffer is a major-heap allocation, so
          loops must prefer this form. *)
  copy_to_user : user_addr:int -> bytes -> unit;
  copy_to_user_from : user_addr:int -> buf:bytes -> off:int -> len:int -> unit;
      (** [copy_to_user] from a slice of a caller-owned buffer — same
          checks, costs and events, but the source need not be an exactly
          sized bytes, so steady-state writers can push from a shared
          page without a per-call [Bytes.sub]. *)
}

val native : cpu:Hw.Cpu.t -> td:Tdx.Td_module.t -> t
(** Direct execution on [cpu], advancing the clock by the Table 4 native
    costs. PTE stores write physical memory through the kernel's direct map
    privilege (no PKS in the way in a stock CVM). *)

val count_pte_writes : t -> (t * (unit -> int))
(** Wrap [t] so PTE writes are counted; returns the wrapped table and a
    counter reader (used by statistics and tests). *)
