(** Re-exported submodules: the library's entry module shadows them. *)

module Layout = Layout
module Privops = Privops
module Alloc = Alloc
module Vma = Vma
module Task = Task
module Sched = Sched
module Fs = Fs
module Syscall = Syscall

(** The deprivileged guest kernel. All of its sensitive operations go through
    the {!Privops} table, so the same kernel code runs natively (direct
    execution) or under Erebor (every sensitive operation is an EMC). The
    kernel manages tasks, address spaces, demand paging, the scheduler, an
    in-memory filesystem and the #VE path to the host. *)

type stats = {
  mutable page_faults : int;
  mutable syscalls : int;
  mutable timer_irqs : int;
  mutable ve_exits : int;
  mutable segfaults : int;
}

type t = {
  mem : Hw.Phys_mem.t;
  clock : Hw.Cycles.clock;
  cpu : Hw.Cpu.t;
  td : Tdx.Td_module.t;
  privops : Privops.t;
  frame_alloc : Alloc.t;   (** General-purpose frames. *)
  cma : Alloc.t;           (** Reserved contiguous region for confined memory. *)
  fs : Fs.t;
  sched : Sched.t;
  kernel_root : int;       (** Master kernel page-table root (PML4 pfn). *)
  tasks : (int, Task.t) Hashtbl.t;
  mutable next_tid : int;
  stats : stats;
  mutable frame_source :
    (Task.t -> Vma.region -> addr:int -> int option) option;
      (** Erebor hook: serve fault frames from common-memory instances or
          pinned confined pools instead of the general allocator. *)
  futex_waiters : Task.t Queue.t;
  mutable mmu_batching : bool;
      (** When set, bulk operations ({!populate}) submit leaf PTEs through
          {!Privops.t.write_pte_batch} — §9.1's batched-MMU optimization. *)
  mutable io_scratch : bytes;
      (** Reusable landing buffer for special-file writes (grown on
          demand), so the steady-state write path allocates nothing. *)
}

val boot :
  mem:Hw.Phys_mem.t ->
  cpu:Hw.Cpu.t ->
  td:Tdx.Td_module.t ->
  privops:Privops.t ->
  reserved_frames:int ->
  cma_frames:int ->
  t
(** Bring up the kernel: build the master page-table root, enable
    SMEP/SMAP/WP via the privops table, carve out the allocators
    ([reserved_frames] at the bottom stay out of both — monitor + kernel
    image), and start the scheduler. *)

(** {2 Address spaces and paging} *)

val create_task : t -> name:string -> kind:Task.kind -> Task.t
(** New task with a fresh address space (kernel half shared with the master
    root). Enqueued runnable. *)

val clone_thread : t -> Task.t -> name:string -> Task.t
(** New task sharing the caller's address space (root and VMAs). *)

val fork_process : t -> Task.t -> name:string -> Task.t
(** Full fork: new address space, user VMAs copied, all present user pages
    duplicated (eager copy — the simulated kernel has no COW). *)

val mmap : t -> Task.t -> len:int -> prot:Vma.prot -> kind:Vma.kind -> (int, string) result
(** Reserve a user region (demand-paged); returns its base address. *)

val munmap : t -> Task.t -> addr:int -> (unit, string) result
(** Remove the region starting at [addr] and unmap + free its pages. *)

val handle_page_fault : t -> Task.t -> addr:int -> kind:Hw.Fault.access_kind -> (unit, string) result
(** Demand-pager: on a fault inside a valid VMA with sufficient protection,
    allocate a frame (CMA for confined regions) and install the PTE via
    privops. [Error _] is a segfault. *)

val populate : t -> Task.t -> start:int -> len:int -> (unit, string) result
(** Pre-fault every page of a range (confined-memory pinning; init cost). *)

val resolve_pfn : t -> Task.t -> addr:int -> int option
(** Leaf pfn currently mapped at a user address, if any. *)

val ensure_direct_map : t -> pfn:int -> unit
(** Make sure the kernel direct map covers a frame (demand-populated; each
    miss is one PTE install through privops). *)

(** {2 System calls, interrupts, #VE} *)

val syscall : t -> Task.t -> Syscall.call -> Syscall.result
(** Full syscall path: entry/exit cost, dispatch, user copies via privops. *)

val cpuid : t -> Task.t -> leaf:int -> int64
(** The #VE path: guest cpuid traps to the TDX module, the guest #VE handler
    re-issues it as a vmcall to the host (Fig. 1). Counts a #VE exit. *)

val timer_interrupt : t -> unit
(** Deliver one APIC timer tick: interrupt cost, scheduler tick, possible
    context switch (CR3 write through privops). *)

val note_ve_exit : t -> unit
(** Account one #VE exit that was serviced outside {!cpuid} (host I/O paths
    driven by the machine harness). Bumps the stat and emits [Ve_exit]. *)

val exit_task : t -> Task.t -> code:int -> unit

val brk : t -> Task.t -> new_brk:int -> (int, string) result
(** Grow the program break (shrinking is accepted but ignored). *)

val set_frame_source : t -> (Task.t -> Vma.region -> addr:int -> int option) -> unit
(** Install the Erebor fault-frame provider (see {!field-frame_source}). *)

val set_mmu_batching : t -> bool -> unit

(** {2 Dynamic kernel code (§7)} *)

val load_module : t -> name:string -> code:bytes -> (int, string) result
(** Verify (monitor byte-scan under Erebor), load and map a kernel module
    read-only + executable. Returns its base address. *)

val poke_text : t -> vaddr:int -> code:bytes -> (unit, string) result
(** text_poke: validated in-place update of kernel code, performed with the
    monitor's privilege since kernel text is write-protected. *)

(** {2 Introspection} *)

val find_task : t -> int -> Task.t option
val live_task_count : t -> int
