type t = {
  quantum_ticks : int;
  queue : Task.t Queue.t;
  mutable current : Task.t option;
  mutable ticks_left : int;
  mutable switches : int;
  on_switch : Task.t -> unit;
}

let create ?(on_switch = fun _ -> ()) ~quantum_ticks () =
  if quantum_ticks <= 0 then invalid_arg "Sched.create: quantum must be positive";
  { quantum_ticks; queue = Queue.create (); current = None; ticks_left = quantum_ticks;
    switches = 0; on_switch }

let enqueue t task =
  match t.current with
  | None -> t.current <- Some task
  | Some _ -> Queue.add task t.queue

let current t = t.current

let runnable_count t =
  let queued =
    Queue.fold (fun acc task -> if task.Task.state = Task.Runnable then acc + 1 else acc) 0 t.queue
  in
  queued + match t.current with Some { Task.state = Task.Runnable; _ } -> 1 | _ -> 0

let rec next_runnable t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some task -> (
      match task.Task.state with
      | Task.Runnable -> Some task
      | Task.Dead -> next_runnable t
      | Task.Blocked ->
          (* Blocked tasks stay parked; callers re-enqueue via [wake]. *)
          next_runnable t)

let rotate t ~switch =
  match next_runnable t with
  | None -> false
  | Some next ->
      let prev = t.current in
      (match prev with
      | Some p when p.Task.state = Task.Runnable -> Queue.add p t.queue
      | _ -> ());
      t.current <- Some next;
      t.ticks_left <- t.quantum_ticks;
      t.switches <- t.switches + 1;
      switch ~prev ~next;
      t.on_switch next;
      true

let on_timer t ~switch =
  t.ticks_left <- t.ticks_left - 1;
  if t.ticks_left <= 0 then begin
    let switched = rotate t ~switch in
    if not switched then t.ticks_left <- t.quantum_ticks;
    switched
  end
  else false

let yield t ~switch = rotate t ~switch

let block_current t =
  match t.current with
  | None -> ()
  | Some task -> task.Task.state <- Task.Blocked

let wake t task =
  if task.Task.state = Task.Blocked then begin
    task.Task.state <- Task.Runnable;
    Queue.add task t.queue
  end

let remove_dead t =
  let keep = Queue.create () in
  Queue.iter (fun task -> if task.Task.state <> Task.Dead then Queue.add task keep) t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  match t.current with
  | Some { Task.state = Task.Dead; _ } -> t.current <- next_runnable t
  | _ -> ()

let switches t = t.switches
