(** A small in-memory filesystem for the untrusted guest: regular files plus
    "special" nodes with custom read/write handlers — used to emulate the
    DebugFS channel the paper's artifact exposes at
    /sys/kernel/debug/encos-IO-emulate (§7) and the /dev/erebor driver the
    LibOS uses to issue EMCs. *)

type t

val create : unit -> t

(** {2 Regular files} *)

val write_file : t -> string -> bytes -> unit
(** Create or truncate-and-write. *)

val append_file : t -> string -> bytes -> unit
val read_file : t -> string -> bytes option
val exists : t -> string -> bool
val remove : t -> string -> bool
val list : t -> string list
(** All regular paths, sorted. *)

val file_size : t -> string -> int option

(** {2 Special nodes} *)

val register_special :
  t -> string -> read:(unit -> bytes) -> write:(bytes -> len:int -> unit) -> unit
(** [write] receives a (buffer, length) view; only the first [len] bytes
    are the payload and the buffer may be a shared scratch the caller
    reuses, so handlers must not retain it past the call. *)

val is_special : t -> string -> bool

val read_path : t -> string -> bytes option
(** Regular or special. *)

val write_path : t -> string -> bytes -> bool
(** Write through a special handler, or create/overwrite a regular file.
    Returns [false] only if a special node rejects… never currently; kept
    for symmetry. *)

val write_special_view : t -> string -> bytes -> len:int -> bool
(** Deliver the first [len] bytes of a caller-owned buffer to a special
    handler without copying; [false] when [path] is not special. *)
