(* A special node's [write] receives the payload as a (buffer, length)
   view: the buffer may be a caller-owned scratch longer than [len], so the
   kernel's steady-state write path can hand over a reusable page instead
   of allocating an exactly sized bytes per call. *)
type special = { read : unit -> bytes; write : bytes -> len:int -> unit }

type t = {
  files : (string, bytes ref) Hashtbl.t;
  specials : (string, special) Hashtbl.t;
}

let create () = { files = Hashtbl.create 64; specials = Hashtbl.create 8 }

let write_file t path data =
  match Hashtbl.find_opt t.files path with
  | Some r -> r := Bytes.copy data
  | None -> Hashtbl.replace t.files path (ref (Bytes.copy data))

let append_file t path data =
  match Hashtbl.find_opt t.files path with
  | Some r -> r := Bytes.cat !r data
  | None -> write_file t path data

let read_file t path = Option.map (fun r -> Bytes.copy !r) (Hashtbl.find_opt t.files path)

let exists t path = Hashtbl.mem t.files path || Hashtbl.mem t.specials path

let remove t path =
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    true
  end
  else false

let list t = List.sort compare (List.of_seq (Seq.map fst (Hashtbl.to_seq t.files)))

let file_size t path = Option.map (fun r -> Bytes.length !r) (Hashtbl.find_opt t.files path)

let register_special t path ~read ~write = Hashtbl.replace t.specials path { read; write }

let is_special t path = Hashtbl.mem t.specials path

let read_path t path =
  match Hashtbl.find_opt t.specials path with
  | Some s -> Some (s.read ())
  | None -> read_file t path

let write_path t path data =
  match Hashtbl.find_opt t.specials path with
  | Some s ->
      s.write data ~len:(Bytes.length data);
      true
  | None ->
      write_file t path data;
      true

let write_special_view t path buf ~len =
  match Hashtbl.find_opt t.specials path with
  | Some s ->
      s.write buf ~len;
      true
  | None -> false
