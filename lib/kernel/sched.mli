(** Round-robin scheduler driven by APIC timer ticks. Context switches load
    the next task's CR3 through the privileged-operation table, so under
    Erebor every switch pays an EMC — one of the mechanical sources of the
    system-wide overhead in §9.3. *)

type t

val create : ?on_switch:(Task.t -> unit) -> quantum_ticks:int -> unit -> t
(** A task is preempted after [quantum_ticks] timer interrupts. [on_switch]
    runs after every completed rotation with the incoming task — the
    kernel's hook for publishing [Context_switch] trace events. *)

val enqueue : t -> Task.t -> unit
val current : t -> Task.t option

val runnable_count : t -> int

val on_timer : t -> switch:(prev:Task.t option -> next:Task.t -> unit) -> bool
(** Account one tick; when the quantum expires and another runnable task
    waits, rotate and invoke [switch]. Returns whether a switch happened. *)

val yield : t -> switch:(prev:Task.t option -> next:Task.t -> unit) -> bool
(** Voluntary rotation (sched_yield, futex wait). *)

val block_current : t -> unit
val wake : t -> Task.t -> unit
val remove_dead : t -> unit
(** Drop dead tasks from the queue. *)

val switches : t -> int
