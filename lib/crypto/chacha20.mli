(** ChaCha20 stream cipher (RFC 8439), the confidentiality half of the
    client↔monitor secure channel. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val block : key:bytes -> nonce:bytes -> counter:int32 -> bytes
(** [block ~key ~nonce ~counter] is the raw 64-byte keystream block; exposed
    for test vectors. Raises [Invalid_argument] on wrong key/nonce sizes. *)

val block_into : key:bytes -> nonce:bytes -> counter:int32 -> bytes -> unit
(** [block_into ~key ~nonce ~counter dst] writes the 64-byte keystream block
    into the first 64 bytes of [dst], so steady-state consumers (the DRBG
    pool) can reuse one buffer instead of allocating per refill. Raises
    [Invalid_argument] if [dst] is shorter than 64 bytes. *)

val xor : key:bytes -> nonce:bytes -> ?counter:int32 -> bytes -> bytes
(** [xor ~key ~nonce data] encrypts (or, being an involution, decrypts) [data]
    with the keystream starting at block [counter] (default 1, reserving
    block 0 for a MAC key as AEAD constructions do). *)
