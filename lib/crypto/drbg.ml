type t = {
  mutable key : bytes;
  mutable counter : int;   (* block counter split into nonce + chacha counter *)
  pool : bytes;            (* one keystream block, refilled in place *)
  mutable pool_off : int;  (* consumed prefix; pool_size forces a refill *)
  nonce : bytes;           (* scratch for the per-refill nonce *)
}

let pool_size = 64

let create ~seed =
  {
    key = Sha256.digest_string seed;
    counter = 0;
    pool = Bytes.create pool_size;
    pool_off = pool_size;
    nonce = Bytes.make Chacha20.nonce_size '\000';
  }

let refill t =
  for i = 0 to 7 do
    Bytes.unsafe_set t.nonce i (Char.unsafe_chr ((t.counter lsr (8 * i)) land 0xff))
  done;
  t.counter <- t.counter + 1;
  Chacha20.block_into ~key:t.key ~nonce:t.nonce ~counter:0l t.pool;
  t.pool_off <- 0

let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if t.pool_off >= pool_size then refill t;
    let avail = pool_size - t.pool_off in
    let take = min avail (n - !filled) in
    Bytes.blit t.pool t.pool_off out !filled take;
    t.pool_off <- t.pool_off + take;
    filled := !filled + take
  done;
  out

(* Same byte stream as [bytes t 8], folded directly off the pool so the
   per-draw 8-byte buffer (and its copy) never exists. *)
let[@inline] next_byte t =
  if t.pool_off >= pool_size then refill t;
  let c = Char.code (Bytes.unsafe_get t.pool t.pool_off) in
  t.pool_off <- t.pool_off + 1;
  c

(* Eight stream bytes folded big-endian then shifted right once: 63 uniform
   bits. The value can reach 2^63 - 1, one bit more than a native int holds,
   so the first seven bytes build a 56-bit plain-int prefix and only the
   final splice happens on Int64 — an unboxed straight-line chain whose
   boxes the compiler eliminates. *)
let[@inline] draw64 t =
  let b0 = next_byte t in
  let b1 = next_byte t in
  let b2 = next_byte t in
  let b3 = next_byte t in
  let b4 = next_byte t in
  let b5 = next_byte t in
  let b6 = next_byte t in
  let b7 = next_byte t in
  let hi =
    (b0 lsl 48) lor (b1 lsl 40) lor (b2 lsl 32) lor (b3 lsl 24)
    lor (b4 lsl 16) lor (b5 lsl 8) lor b6
  in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 7) (Int64.of_int (b7 lsr 1))

let int64 t = draw64 t

let int t bound =
  if bound <= 0 then invalid_arg "Drbg.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^63. *)
  let limit = Int64.mul (Int64.div Int64.max_int (Int64.of_int bound)) (Int64.of_int bound) in
  let rec draw () =
    let v = draw64 t in
    if Int64.compare v limit >= 0 then draw ()
    else Int64.to_int (Int64.rem v (Int64.of_int bound))
  in
  draw ()

let float t =
  (* [draw64] yields 63 uniform bits; divide by 2^63 for [0, 1). *)
  Int64.to_float (draw64 t) /. 9.223372036854775808e18

let reseed t entropy =
  let ctx = Sha256.init () in
  Sha256.feed ctx t.key;
  Sha256.feed_string ctx entropy;
  t.key <- Sha256.digest ctx;
  t.pool_off <- pool_size
