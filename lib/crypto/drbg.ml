type t = {
  mutable key : bytes;
  mutable counter : int64; (* block counter split into nonce + chacha counter *)
  mutable pool : bytes;    (* unconsumed keystream *)
  mutable pool_off : int;
}

let create ~seed =
  { key = Sha256.digest_string seed; counter = 0L; pool = Bytes.empty; pool_off = 0 }

let refill t =
  let nonce = Bytes.make Chacha20.nonce_size '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical t.counter (8 * i)) 0xffL)))
  done;
  t.counter <- Int64.add t.counter 1L;
  t.pool <- Chacha20.block ~key:t.key ~nonce ~counter:0l;
  t.pool_off <- 0

let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if t.pool_off >= Bytes.length t.pool then refill t;
    let avail = Bytes.length t.pool - t.pool_off in
    let take = min avail (n - !filled) in
    Bytes.blit t.pool t.pool_off out !filled take;
    t.pool_off <- t.pool_off + take;
    filled := !filled + take
  done;
  out

(* Same byte stream as [bytes t 8], folded directly off the pool so the
   per-draw 8-byte buffer (and its copy) never exists. *)
let next_byte t =
  if t.pool_off >= Bytes.length t.pool then refill t;
  let c = Char.code (Bytes.unsafe_get t.pool t.pool_off) in
  t.pool_off <- t.pool_off + 1;
  c

let int64 t =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (next_byte t))
  done;
  Int64.shift_right_logical !v 1

let int t bound =
  if bound <= 0 then invalid_arg "Drbg.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
  let limit = Int64.mul (Int64.div Int64.max_int (Int64.of_int bound)) (Int64.of_int bound) in
  let rec draw () =
    let v = int64 t in
    if Int64.compare v limit >= 0 then draw ()
    else Int64.to_int (Int64.rem v (Int64.of_int bound))
  in
  draw ()

let float t =
  (* [int64] yields 63 uniform bits; divide by 2^63 for [0, 1). *)
  let v = int64 t in
  Int64.to_float v /. 9.223372036854775808e18

let reseed t entropy =
  let ctx = Sha256.init () in
  Sha256.feed ctx t.key;
  Sha256.feed_string ctx entropy;
  t.key <- Sha256.digest ctx;
  t.pool <- Bytes.empty;
  t.pool_off <- 0
