(* SHA-256 per FIPS 180-4. All word arithmetic is on plain ints holding
   values in [0, 2^32): one [land mask32] after each add keeps the math
   exact while every operation stays unboxed register arithmetic. The
   message schedule is loaded 8 bytes at a time ([Bytes.get_int64_be]) and
   lives in a per-context scratch array reused across blocks, so compressing
   a block allocates nothing. *)

let digest_size = 32
let block_size = 64

let mask32 = 0xffff_ffff

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  state : int array;          (* 8 words H0..H7, each in [0, 2^32) *)
  w : int array;              (* 64-word message schedule, reused per block *)
  buf : bytes;                (* partial block *)
  mutable buf_len : int;      (* bytes pending in [buf] *)
  mutable total : int;        (* total message bytes absorbed *)
  mutable finalized : bool;
}

let init () =
  {
    state =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    w = Array.make 64 0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
  }

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Compress one 64-byte block located at [off] in [b] into [ctx.state]. *)
let compress ctx b off =
  let w = ctx.w in
  (* Wide loads: two schedule words per 64-bit read. *)
  for i = 0 to 7 do
    let v = Bytes.get_int64_be b (off + (i * 8)) in
    Array.unsafe_set w (2 * i) (Int64.to_int (Int64.shift_right_logical v 32) land mask32);
    Array.unsafe_set w ((2 * i) + 1) (Int64.to_int v land mask32)
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3)
    and s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1) land mask32)
  done;
  let st = ctx.state in
  (* The eight working variables travel as loop parameters, so the whole
     round function runs in registers with no ref cells. *)
  let rec round i a b' c d e f g h =
    if i = 64 then begin
      st.(0) <- (st.(0) + a) land mask32;
      st.(1) <- (st.(1) + b') land mask32;
      st.(2) <- (st.(2) + c) land mask32;
      st.(3) <- (st.(3) + d) land mask32;
      st.(4) <- (st.(4) + e) land mask32;
      st.(5) <- (st.(5) + f) land mask32;
      st.(6) <- (st.(6) + g) land mask32;
      st.(7) <- (st.(7) + h) land mask32
    end
    else begin
      let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
      let ch = (e land f) lxor (lnot e land g land mask32) in
      let temp1 =
        (h + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask32
      in
      let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
      let maj = (a land b') lxor (a land c) lxor (b' land c) in
      let temp2 = (s0 + maj) land mask32 in
      round (i + 1) ((temp1 + temp2) land mask32) a b' c ((d + temp1) land mask32) e f g
    end
  in
  round 0 st.(0) st.(1) st.(2) st.(3) st.(4) st.(5) st.(6) st.(7)

let feed ctx ?(off = 0) ?len b =
  if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed: slice out of range";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill any partial block first. *)
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx b !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s)

let digest ctx =
  if ctx.finalized then invalid_arg "Sha256.digest: context already finalized";
  ctx.finalized <- true;
  let bit_len = ctx.total * 8 in
  (* Padding: 0x80, zeros, then the 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i) (Char.chr ((bit_len lsr shift) land 0xff))
  done;
  (* Absorb the tail without recounting it in [total]. *)
  let pos = ref 0 and remaining = ref (Bytes.length tail) in
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit tail 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx tail !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  assert (!remaining = 0 && ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytes.set_int32_be out (i * 4) (Int32.of_int ctx.state.(i))
  done;
  out

let digest_bytes b =
  let ctx = init () in
  feed ctx b;
  digest ctx

let digest_string s = digest_bytes (Bytes.of_string s)

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf
