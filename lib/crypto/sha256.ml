(* SHA-256 per FIPS 180-4. All word arithmetic is on Int32 so the
   implementation is exact on 64-bit OCaml without masking games. *)

let digest_size = 32
let block_size = 64

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  state : int32 array;        (* 8 words H0..H7 *)
  buf : bytes;                (* partial block *)
  mutable buf_len : int;      (* bytes pending in [buf] *)
  mutable total : int64;      (* total message bytes absorbed *)
  mutable finalized : bool;
}

let init () =
  {
    state =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
         0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
    finalized = false;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

(* Compress one 64-byte block located at [off] in [b] into [state]. *)
let compress state b off =
  let w = Array.make 64 0l in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be b (off + (i * 4))
  done;
  for i = 16 to 63 do
    let s0 =
      Int32.logxor
        (Int32.logxor (rotr w.(i - 15) 7) (rotr w.(i - 15) 18))
        (Int32.shift_right_logical w.(i - 15) 3)
    and s1 =
      Int32.logxor
        (Int32.logxor (rotr w.(i - 2) 17) (rotr w.(i - 2) 19))
        (Int32.shift_right_logical w.(i - 2) 10)
    in
    w.(i) <- Int32.add (Int32.add w.(i - 16) s0) (Int32.add w.(i - 7) s1)
  done;
  let a = ref state.(0) and b' = ref state.(1) and c = ref state.(2)
  and d = ref state.(3) and e = ref state.(4) and f = ref state.(5)
  and g = ref state.(6) and h = ref state.(7) in
  for i = 0 to 63 do
    let s1 =
      Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25)
    in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let temp1 = Int32.add (Int32.add (Int32.add !h s1) (Int32.add ch k.(i))) w.(i) in
    let s0 =
      Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22)
    in
    let maj =
      Int32.logxor
        (Int32.logxor (Int32.logand !a !b') (Int32.logand !a !c))
        (Int32.logand !b' !c)
    in
    let temp2 = Int32.add s0 maj in
    h := !g;
    g := !f;
    f := !e;
    e := Int32.add !d temp1;
    d := !c;
    c := !b';
    b' := !a;
    a := Int32.add temp1 temp2
  done;
  state.(0) <- Int32.add state.(0) !a;
  state.(1) <- Int32.add state.(1) !b';
  state.(2) <- Int32.add state.(2) !c;
  state.(3) <- Int32.add state.(3) !d;
  state.(4) <- Int32.add state.(4) !e;
  state.(5) <- Int32.add state.(5) !f;
  state.(6) <- Int32.add state.(6) !g;
  state.(7) <- Int32.add state.(7) !h

let feed ctx ?(off = 0) ?len b =
  if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed: slice out of range";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Fill any partial block first. *)
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx.state ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx.state b !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s)

let digest ctx =
  if ctx.finalized then invalid_arg "Sha256.digest: context already finalized";
  ctx.finalized <- true;
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, then the 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xffL)))
  done;
  (* Absorb the tail without recounting it in [total]. *)
  let pos = ref 0 and remaining = ref (Bytes.length tail) in
  if ctx.buf_len > 0 then begin
    let need = block_size - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit tail 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx.state ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx.state tail !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  assert (!remaining = 0 && ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytes.set_int32_be out (i * 4) ctx.state.(i)
  done;
  out

let digest_bytes b =
  let ctx = init () in
  feed ctx b;
  digest ctx

let digest_string s = digest_bytes (Bytes.of_string s)

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf
