let key_size = 32
let nonce_size = 12

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter_round st a b c d =
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 16;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 12;
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 8;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 7

let le32 b off = Bytes.get_int32_le b off
let store_le32 b off v = Bytes.set_int32_le b off v

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> key_size then invalid_arg "Chacha20: key must be 32 bytes";
  if Bytes.length nonce <> nonce_size then invalid_arg "Chacha20: nonce must be 12 bytes";
  let st = Array.make 16 0l in
  (* "expand 32-byte k" constants *)
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- counter;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  st

(* 20 rounds over [work], leaving the raw (pre-feed-forward) state there. *)
let rounds work =
  for _ = 1 to 10 do
    quarter_round work 0 4 8 12;
    quarter_round work 1 5 9 13;
    quarter_round work 2 6 10 14;
    quarter_round work 3 7 11 15;
    quarter_round work 0 5 10 15;
    quarter_round work 1 6 11 12;
    quarter_round work 2 7 8 13;
    quarter_round work 3 4 9 14
  done

let block ~key ~nonce ~counter =
  let st = init_state ~key ~nonce ~counter in
  let work = Array.copy st in
  rounds work;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    store_le32 out (4 * i) (Int32.add work.(i) st.(i))
  done;
  out

let xor ~key ~nonce ?(counter = 1l) data =
  let len = Bytes.length data in
  let out = Bytes.copy data in
  let st = init_state ~key ~nonce ~counter in
  let work = Array.make 16 0l in
  let blocks = (len + 63) / 64 in
  for b = 0 to blocks - 1 do
    st.(12) <- Int32.add counter (Int32.of_int b);
    Array.blit st 0 work 0 16;
    rounds work;
    let base = b * 64 in
    let n = len - base in
    if n >= 64 then
      (* Full block: xor the keystream in 16 aligned 32-bit words. *)
      for i = 0 to 15 do
        let ks = Int32.add work.(i) st.(i) in
        let off = base + (4 * i) in
        store_le32 out off (Int32.logxor (le32 out off) ks)
      done
    else
      for i = 0 to n - 1 do
        let word = Int32.add work.(i lsr 2) st.(i lsr 2) in
        let ks_byte =
          Int32.to_int (Int32.shift_right_logical word (8 * (i land 3))) land 0xff
        in
        Bytes.set out (base + i)
          (Char.chr (Char.code (Bytes.get out (base + i)) lxor ks_byte))
      done
  done;
  out
