(* ChaCha20 on plain OCaml ints. Every state word lives in [0, 2^32) inside
   a 63-bit int, so additions/rotations/xors are ordinary register arithmetic
   with one [land mask32] — no Int32 boxing on the hot path. The Int32 values
   at the API boundary are converted once per call. *)

let key_size = 32
let nonce_size = 12

let mask32 = 0xffff_ffff

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* All sixteen indices come from the constant round schedule below, so the
   unsafe accesses never go out of bounds. *)
let[@inline] quarter_round st a b c d =
  let va = (Array.unsafe_get st a + Array.unsafe_get st b) land mask32 in
  let vd = rotl (Array.unsafe_get st d lxor va) 16 in
  let vc = (Array.unsafe_get st c + vd) land mask32 in
  let vb = rotl (Array.unsafe_get st b lxor vc) 12 in
  let va = (va + vb) land mask32 in
  let vd = rotl (vd lxor va) 8 in
  let vc = (vc + vd) land mask32 in
  let vb = rotl (vb lxor vc) 7 in
  Array.unsafe_set st a va;
  Array.unsafe_set st b vb;
  Array.unsafe_set st c vc;
  Array.unsafe_set st d vd

let[@inline] le32 b off = Int32.to_int (Bytes.get_int32_le b off) land mask32
let[@inline] store_le32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> key_size then invalid_arg "Chacha20: key must be 32 bytes";
  if Bytes.length nonce <> nonce_size then invalid_arg "Chacha20: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  (* "expand 32-byte k" constants *)
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- Int32.to_int counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  st

(* 20 rounds over [work], leaving the raw (pre-feed-forward) state there. The
   eight quarter-rounds of each double round are written out so the whole body
   is straight-line word arithmetic. *)
let rounds work =
  for _ = 1 to 10 do
    quarter_round work 0 4 8 12;
    quarter_round work 1 5 9 13;
    quarter_round work 2 6 10 14;
    quarter_round work 3 7 11 15;
    quarter_round work 0 5 10 15;
    quarter_round work 1 6 11 12;
    quarter_round work 2 7 8 13;
    quarter_round work 3 4 9 14
  done

let block_into ~key ~nonce ~counter dst =
  if Bytes.length dst < 64 then invalid_arg "Chacha20.block_into: need 64 bytes";
  let st = init_state ~key ~nonce ~counter in
  let work = Array.copy st in
  rounds work;
  for i = 0 to 15 do
    store_le32 dst (4 * i) ((work.(i) + st.(i)) land mask32)
  done

let block ~key ~nonce ~counter =
  let out = Bytes.create 64 in
  block_into ~key ~nonce ~counter out;
  out

let xor ~key ~nonce ?(counter = 1l) data =
  let len = Bytes.length data in
  let out = Bytes.copy data in
  let st = init_state ~key ~nonce ~counter in
  let work = Array.make 16 0 in
  let counter = Int32.to_int counter land mask32 in
  let blocks = (len + 63) / 64 in
  for b = 0 to blocks - 1 do
    st.(12) <- (counter + b) land mask32;
    Array.blit st 0 work 0 16;
    rounds work;
    let base = b * 64 in
    let n = len - base in
    if n >= 64 then
      (* Full block: xor the keystream in 16 aligned 32-bit words. *)
      for i = 0 to 15 do
        let ks = (work.(i) + st.(i)) land mask32 in
        let off = base + (4 * i) in
        store_le32 out off (le32 out off lxor ks)
      done
    else
      for i = 0 to n - 1 do
        let word = (work.(i lsr 2) + st.(i lsr 2)) land mask32 in
        let ks_byte = (word lsr (8 * (i land 3))) land 0xff in
        Bytes.set out (base + i)
          (Char.chr (Char.code (Bytes.get out (base + i)) lxor ks_byte))
      done
  done;
  out
