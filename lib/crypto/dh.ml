type keypair = { secret : Bignum.t; public : Bignum.t }

(* RFC 3526, group 5 (1536-bit MODP). *)
let group_prime =
  Bignum.of_hex
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
     98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
     9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

let generator = Bignum.of_int 2

(* Eager for domain safety: Lazy.force from two domains races. *)
let ctx = Bignum.Mont.create group_prime

let public_width = 192 (* 1536 bits *)

let generate drbg =
  (* A 256-bit exponent gives ~128-bit security in this group. Force the top
     bit so the exponent is full-width, and avoid 0/1. *)
  let raw = Drbg.bytes drbg 32 in
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) lor 0x80));
  let secret = Bignum.of_bytes raw in
  let public = Bignum.Mont.modpow ctx generator secret in
  { secret; public }

let public_bytes kp = Bignum.to_bytes ~len:public_width kp.public

let shared_secret kp ~peer_public =
  let peer = Bignum.of_bytes peer_public in
  if Bignum.compare peer (Bignum.of_int 2) < 0
     || Bignum.compare peer group_prime >= 0
  then None
  else begin
    let shared = Bignum.Mont.modpow ctx peer kp.secret in
    let raw = Bignum.to_bytes ~len:public_width shared in
    Some (Hkdf.extract ~salt:(Bytes.of_string "erebor-dh") ~ikm:raw)
  end
