(* Little-endian 26-bit limbs. 26 bits keeps every intermediate product
   (limb*limb + limb + carry < 2^53) comfortably inside OCaml's 63-bit
   native int, with headroom for Montgomery accumulation. *)

let bits = 26
let base = 1 lsl bits
let mask = base - 1

type t = int array (* normalized: no trailing (most-significant) zero limbs *)

let zero : t = [||]
let one : t = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr bits) in
  Array.of_list (limbs n)

let is_zero a = Array.length a = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let v = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- v land mask;
    carry := v lsr bits
  done;
  out.(n) <- !carry;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let v = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if v < 0 then begin
      out.(i) <- v + base;
      borrow := 1
    end else begin
      out.(i) <- v;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land mask;
        carry := v lsr bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    normalize out
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * bits) + width top 0
  end

let test_bit a i =
  let limb = i / bits and off = i mod bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* Double [a] modulo [m]; both < m required, m > 0. *)
let double_mod a m =
  let d = add a a in
  if compare d m >= 0 then sub d m else d

let mod_ a m =
  if is_zero m then invalid_arg "Bignum.mod_: zero modulus";
  if compare a m < 0 then a
  else begin
    (* Binary long division: fold the bits of [a] into a running remainder. *)
    let r = ref zero in
    for i = bit_length a - 1 downto 0 do
      r := double_mod !r m;
      if test_bit a i then begin
        let r' = add !r one in
        r := if compare r' m >= 0 then sub r' m else r'
      end
    done;
    !r
  end

let divmod a b =
  if is_zero b then invalid_arg "Bignum.divmod: zero divisor";
  if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division, accumulating quotient bits. *)
    let n = bit_length a in
    let q = Array.make ((n / bits) + 1) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      r := add !r !r;
      if test_bit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / bits) <- q.(i / bits) lor (1 lsl (i mod bits))
      end
    done;
    (normalize q, !r)
  end

let is_even a = not (test_bit a 0)

let shift_right_one a =
  let n = Array.length a in
  if n = 0 then zero
  else begin
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let low_of_next = if i + 1 < n then (a.(i + 1) land 1) lsl (bits - 1) else 0 in
      out.(i) <- (a.(i) lsr 1) lor low_of_next
    done;
    normalize out
  end

(* Iterative extended Euclid. Coefficients of [a] are tracked as
   (negative?, magnitude) pairs over naturals: t_i * a = r_i (mod m). *)
let invmod a m =
  if is_zero m then None
  else begin
    let a = mod_ a m in
    if is_zero a then None
    else begin
      let rec go r0 r1 (s0, t0) (s1, t1) =
        if is_zero r1 then
          if equal r0 one then
            let v = mod_ t0 m in
            Some (if s0 && not (is_zero v) then sub m v else v)
          else None
        else begin
          let q, rem = divmod r0 r1 in
          let qt = mul q t1 in
          let s2, t2 =
            if s0 = s1 then
              if compare t0 qt >= 0 then (s0, sub t0 qt) else (not s0, sub qt t0)
            else (s0, add t0 qt)
          in
          go r1 rem (s1, t1) (s2, t2)
        end
      in
      go m a (false, zero) (false, one)
    end
  end

let of_hex s =
  let acc = ref zero in
  let sixteen = of_int 16 in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc sixteen) (of_int (Char.code c - Char.code '0'))
      | 'a' .. 'f' -> acc := add (mul !acc sixteen) (of_int (Char.code c - Char.code 'a' + 10))
      | 'A' .. 'F' -> acc := add (mul !acc sixteen) (of_int (Char.code c - Char.code 'A' + 10))
      | ' ' | '\t' | '\n' | '\r' -> ()
      | _ -> invalid_arg "Bignum.of_hex: bad character")
    s;
  !acc

let of_bytes b =
  let n = Bytes.length b in
  if n = 0 then zero
  else begin
    (* Pack big-endian bytes straight into limbs: byte i (counted from the
       little end) lands at bit offset 8i, spanning at most two limbs. *)
    let out = Array.make (((8 * n) + bits - 1) / bits) 0 in
    for i = 0 to n - 1 do
      let v = Char.code (Bytes.get b (n - 1 - i)) in
      let limb = 8 * i / bits and off = 8 * i mod bits in
      out.(limb) <- out.(limb) lor ((v lsl off) land mask);
      if off > bits - 8 then out.(limb + 1) <- out.(limb + 1) lor (v lsr (bits - off))
    done;
    normalize out
  end

let to_bytes ?len a =
  let nbytes = (bit_length a + 7) / 8 in
  let len =
    match len with
    | None -> nbytes
    | Some l ->
        if l < nbytes then invalid_arg "Bignum.to_bytes: value does not fit";
        l
  in
  let out = Bytes.make len '\000' in
  for i = 0 to nbytes - 1 do
    (* byte i counted from the little end *)
    let lo = i * 8 in
    let v = ref 0 in
    for bit = 7 downto 0 do
      v := (!v lsl 1) lor (if test_bit a (lo + bit) then 1 else 0)
    done;
    Bytes.set out (len - 1 - i) (Char.chr !v)
  done;
  out

module Mont = struct
  type ctx = {
    m : int array;    (* modulus, fixed k limbs *)
    k : int;
    n0inv : int;      (* -m0^{-1} mod 2^bits *)
    r_mod : int array; (* R mod m, fixed k limbs (= 1 in Montgomery domain) *)
    r2 : int array;    (* R^2 mod m, fixed k limbs *)
    modulus : t;
  }

  let to_fixed k (a : t) =
    let out = Array.make k 0 in
    Array.blit a 0 out 0 (Array.length a);
    out

  let of_fixed a = normalize (Array.copy a)

  (* Inverse of odd [m0] modulo 2^bits, by Newton iteration. *)
  let inv_limb m0 =
    let x = ref m0 in
    for _ = 1 to 6 do
      x := (!x * (2 - (m0 * !x))) land mask
    done;
    assert ((m0 * !x) land mask = 1);
    !x

  let create modulus =
    if compare modulus (of_int 3) < 0 then invalid_arg "Mont.create: modulus too small";
    if not (test_bit modulus 0) then invalid_arg "Mont.create: modulus must be odd";
    let k = Array.length modulus in
    let n0inv = (base - inv_limb modulus.(0)) land mask in
    (* R mod m by k*bits modular doublings of 1; R^2 mod m by k*bits more. *)
    let r = ref one in
    for _ = 1 to k * bits do
      r := double_mod !r modulus
    done;
    let r_mod = !r in
    for _ = 1 to k * bits do
      r := double_mod !r modulus
    done;
    {
      m = to_fixed k modulus;
      k;
      n0inv;
      r_mod = to_fixed k r_mod;
      r2 = to_fixed k !r;
      modulus;
    }

  let modulus ctx = ctx.modulus

  (* Fused CIOS Montgomery product: dst <- a*b*R^{-1} mod m. Inputs are fixed
     k-limb arrays representing values < m; [t] is caller-provided scratch of
     k+1 limbs. The reduction step for limb i folds the a_i*b multiply, the
     u_i*m addition and the one-limb shift into a single carry chain, so each
     product is one pass over the limbs instead of three. [dst] may alias [a]
     or [b] (it is only written after the last read); [t] may alias neither.
     Per-limb bound: t_j + a_i*b_j + u_i*m_j + carry < 2^26 + 2*2^52 + 2^28,
     well inside a 63-bit int. *)
  let mont_mul_into ctx t dst a b =
    let k = ctx.k in
    let m = ctx.m and n0inv = ctx.n0inv in
    Array.fill t 0 (k + 1) 0;
    let b0 = Array.unsafe_get b 0 in
    for i = 0 to k - 1 do
      let ai = Array.unsafe_get a i in
      let v0 = Array.unsafe_get t 0 + (ai * b0) in
      let u = ((v0 land mask) * n0inv) land mask in
      let carry = ref ((v0 + (u * Array.unsafe_get m 0)) lsr bits) in
      for j = 1 to k - 1 do
        let v =
          Array.unsafe_get t j + (ai * Array.unsafe_get b j)
          + (u * Array.unsafe_get m j) + !carry
        in
        Array.unsafe_set t (j - 1) (v land mask);
        carry := v lsr bits
      done;
      let v = Array.unsafe_get t k + !carry in
      Array.unsafe_set t (k - 1) (v land mask);
      Array.unsafe_set t k (v lsr bits)
    done;
    (* t now holds a value < 2m in limbs 0..k; conditional final subtraction. *)
    let ge =
      Array.unsafe_get t k > 0
      ||
      let rec go i =
        if i < 0 then true
        else
          let ti = Array.unsafe_get t i and mi = Array.unsafe_get m i in
          if ti <> mi then ti > mi else go (i - 1)
      in
      go (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let v = Array.unsafe_get t i - Array.unsafe_get m i - !borrow in
        if v < 0 then begin
          Array.unsafe_set dst i (v + base);
          borrow := 1
        end else begin
          Array.unsafe_set dst i v;
          borrow := 0
        end
      done
    end
    else Array.blit t 0 dst 0 k

  let modpow ctx b e =
    if compare b ctx.modulus >= 0 then invalid_arg "Mont.modpow: base >= modulus";
    let k = ctx.k in
    (* One scratch + two residue buffers reused across the whole ladder: the
       square-and-multiply loop allocates nothing. *)
    let t = Array.make (k + 1) 0 in
    let b_mont = Array.make k 0 in
    let acc = Array.make k 0 in
    mont_mul_into ctx t b_mont (to_fixed k b) ctx.r2;
    Array.blit ctx.r_mod 0 acc 0 k;
    for i = bit_length e - 1 downto 0 do
      mont_mul_into ctx t acc acc acc;
      if test_bit e i then mont_mul_into ctx t acc acc b_mont
    done;
    mont_mul_into ctx t acc acc (to_fixed k one);
    of_fixed acc
end
