let hw_key = Crypto.Sha256.digest_string "erebor-sim hardware key"
let firmware = Bytes.of_string "OVMF reference firmware"

(* The guest kernel image that gets scanned at stage-two boot. *)
let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data =
            Hw.Isa.assemble
              [ Hw.Isa.Endbr; Hw.Isa.Mov_imm (Hw.Isa.R0, 0); Hw.Isa.Call 2;
                Hw.Isa.Syscall; Hw.Isa.Iret; Hw.Isa.Cpuid; Hw.Isa.Clac; Hw.Isa.Ret ] };
        { Hw.Image.name = ".rodata"; vaddr = 0x10000; executable = false; writable = false;
          data = Bytes.make 128 'r' };
      ];
  }

let timer_period = 2_100_000 (* 1 kHz at 2.1 GHz *)
let io_chunk = 16384
let decrypt_cycles_per_byte = 2
let spin_waste = 9000 (* busy-wait burn when a LibOS spinlock contends *)
let tlb_refill_tax = 400
(* Downstream cost of the TLB flush each monitor MMU update performs: the
   working set re-faults into the TLB. Charged per EMC-mode PTE store at the
   event level so Table 4's per-instruction microcosts stay calibrated. *)
let scrub_cycles_per_page = 60

type t = {
  setting : Config.setting;
  mem : Hw.Phys_mem.t;
  clock : Hw.Cycles.clock;
  cpu : Hw.Cpu.t;
  td : Tdx.Td_module.t;
  host : Vmm.Host.t;
  kern : Kernel.t;
  monitor : Erebor.Monitor.t option;
  mgr : Erebor.Sandbox.manager option;
  proxy : Kernel.Task.t;
  proxy_buf : int;
  proxy_fd : int;
  scratch_slots : int array; (* leaf PTE addresses for packet-buffer churn *)
  copy_scratch : bytes; (* reusable landing page for proxy packet drains *)
  counters : Obs.Counter.t;
      (* Machine-wide counter sink, attached before any component boots:
         {!snapshot} is derived entirely from this event stream. *)
  requests : Obs.Request.t;
      (* Request-trace collector watching this machine's emitter; the
         attested-channel path mints one trace context per session. *)
  window : Obs.Window.t option;
      (* Optional sliding-window sink, attached before boot so live SLO /
         health telemetry sees the event stream from the first cycle. *)
  sketches : Obs.Sketch.Family.t option;
      (* Optional per-kind quantile-sketch family, attached before boot;
         unlike the log2 histogram its state merges across machines with
         bounded relative error, which is what fleet aggregation reads. *)
}

let setting t = t.setting
let kern t = t.kern
let manager t = t.mgr
let clock t = t.clock
let obs t = t.cpu.Hw.Cpu.obs
let counters t = t.counters
let requests t = t.requests
let window t = t.window
let sketches t = t.sketches

let page_size = Hw.Phys_mem.page_size

let create ?obs ?journal ?window ?sketches ?(backend = Erebor.Isolation.Pks)
    ?(frames = 262144) ?(cma_frames = 65536) ?(reserved_frames = 256)
    ?(collect_request_spans = false) ~setting () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let obs = match obs with Some e -> e | None -> Obs.Emitter.create () in
  (* The flight recorder attaches first so boot events land in the journal
     before any other sink sees them. *)
  (match journal with
  | Some w -> Obs.Journal.Writer.attach ~machine:"sim" w obs
  | None -> ());
  (* Attach the machine's counter sink before anything boots so every event
     from assembly onward is counted. *)
  let counters = Obs.Counter.attach obs (Obs.Counter.create ()) in
  (match window with
  | Some w -> ignore (Obs.Window.attach obs w)
  | None -> ());
  (match sketches with
  | Some f -> ignore (Obs.Sketch.Family.attach obs f)
  | None -> ());
  let requests = Obs.Request.create ~collect_spans:collect_request_spans () in
  Obs.Request.attach requests ~machine:"sim" obs;
  Obs.with_span obs ~now:(fun () -> Hw.Cycles.now clock) Obs.Trace.Boot
  @@ fun () ->
  let cpu = Hw.Cpu.create ~obs ~id:0 ~mem ~clock ~timer_period () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    if Config.has_monitor setting then
      Some
        (Erebor.Monitor.install ~backend ~cpu ~mem ~td ~firmware ~monitor_frames:32
           ~device_shared_frames:64 ())
    else None
  in
  let kern =
    match monitor with
    | Some m when Config.emc_privops setting -> (
        match
          Erebor.Monitor.boot_kernel m ~kernel_image ~reserved_frames ~cma_frames
        with
        | Ok k -> k
        | Error e -> failwith ("Machine.create: " ^ e))
    | Some _ | None ->
        let privops = Kernel.Privops.native ~cpu ~td in
        Kernel.boot ~mem ~cpu ~td ~privops ~reserved_frames ~cma_frames
  in
  let mgr =
    match monitor with
    | Some m -> Some (Erebor.Sandbox.create_manager ~monitor:m ~kern)
    | None -> None
  in
  (* The untrusted proxy / background program: owns a user buffer for
     syscall I/O and a scratch region whose PTEs model packet-buffer
     churn. *)
  let proxy = Kernel.create_task kern ~name:"proxy" ~kind:Kernel.Task.Normal in
  let proxy_buf =
    match Kernel.mmap kern proxy ~len:(4 * io_chunk) ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
    | Ok a -> a
    | Error e -> failwith e
  in
  (match Kernel.populate kern proxy ~start:proxy_buf ~len:(4 * io_chunk) with
  | Ok () -> ()
  | Error e -> failwith e);
  let scratch =
    match Kernel.mmap kern proxy ~len:(16 * page_size) ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
    | Ok a -> a
    | Error e -> failwith e
  in
  (match Kernel.populate kern proxy ~start:scratch ~len:(16 * page_size) with
  | Ok () -> ()
  | Error e -> failwith e);
  let scratch_slots =
    Array.init 16 (fun i ->
        match
          Hw.Page_table.leaf_addr mem ~root_pfn:proxy.Kernel.Task.root_pfn
            (scratch + (i * page_size))
        with
        | Some addr -> addr
        | None -> failwith "Machine.create: scratch leaf missing")
  in
  (* One shared, never-written sink buffer: readers get a (read-only) view
     and writers are discarded, so steady-state I/O never allocates. *)
  let net_sink = Bytes.make io_chunk '\000' in
  Kernel.Fs.register_special kern.Kernel.fs "/dev/net-sink"
    ~read:(fun () -> net_sink)
    ~write:(fun _ ~len:_ -> ());
  let proxy_fd = Kernel.Task.alloc_fd proxy "/dev/net-sink" in
  {
    setting; mem; clock; cpu; td; host; kern; monitor; mgr; proxy; proxy_buf;
    proxy_fd; scratch_slots; copy_scratch = Bytes.create page_size; counters;
    requests; window; sketches;
  }

(* Every field below is a per-kind count from the machine's counter sink;
   the modules' own mirrors (kernel stats, gate count, guard denials) are
   kept only for cross-checking, never read here. *)
let snapshot t =
  let now = Hw.Cycles.now t.clock in
  let c k = Obs.Counter.count t.counters k in
  {
    Stats.cycles = now;
    seconds = Hw.Cycles.to_seconds now;
    page_faults = c Obs.Trace.Page_fault;
    timer_irqs = c Obs.Trace.Timer_irq;
    ve_exits = c Obs.Trace.Ve_exit;
    syscalls = c Obs.Trace.Syscall;
    emc_total = c Obs.Trace.Emc_entry;
    emc_mmu = c Obs.Trace.emc_mmu;
    emc_cr = c Obs.Trace.emc_cr;
    emc_msr = c Obs.Trace.emc_msr;
    emc_idt = c Obs.Trace.emc_idt;
    emc_smap = c Obs.Trace.emc_smap;
    emc_ghci = c Obs.Trace.emc_ghci;
    context_switches = c Obs.Trace.Context_switch;
    mmu_denies = c Obs.Trace.Mmu_deny;
  }

type ops = {
  compute : int -> unit;
  parallel : total:int -> sync_ops:int -> unit;
  sync_op : contended:bool -> unit;
  touch_confined : page:int -> unit;
  touch_common : page:int -> unit;
  cold_fault : unit -> unit;
  pte_churn : n:int -> unit;
  service : unit -> unit;
  signal : unit -> unit;
  mmap_cycle : pages:int -> unit;
  fork_exit : unit -> unit;
  fs_io : write:bool -> len:int -> unit;
  host_io : bytes:int -> unit;
  cpuid : unit -> unit;
  recv_input : unit -> bytes;
  send_output : bytes -> unit;
  rng : Crypto.Drbg.t;
}

type spec = {
  name : string;
  sandboxed : bool;
  timer_hz : int;
  init_compute : int;
  confined_bytes : int;
  nominal_confined_mb : int;
  common : (string * int * int) option;
  threads : int;
  contention : float;
  input : bytes;
  output_bucket : int;
  body : ops -> unit;
}

type run_result = {
  setting : Config.setting;
  init_cycles : int;
  run_cycles : int;
  stats : Stats.snapshot;
  output : bytes;
  wire_output_len : int;
  killed : string option;
  common_frames : int;
}

(* A session's mutable context: which task runs, where the regions are. *)
type session = {
  machine : t;
  mutable cold_cursor : int;
  task : Kernel.Task.t;
  sb : Erebor.Sandbox.t option;
  libos : Libos.t option;
  confined_base : int;
  confined_pages : int;
  common_base : int;    (* 0 when absent *)
  common_pages : int;
  channel : Erebor.Channel.Server.t option;
  req_ctx : Obs.Request.ctx option;
      (* Trace context minted at the client end of the channel; the root
         request window closes when the response is sealed. *)
  io_buf : int;   (* user buffer mapped in [task]'s space (0 in sandboxes) *)
  io_fd : int;
  native_output : Buffer.t;
  spec : spec;
}

(* Attribution span at the machine layer. Machine- and kernel-level spans
   for the same logical handler nest; the Attrib sink collapses same-phase
   nesting, so e.g. [fault_on] plus [Kernel.handle_page_fault] read as one
   [Pf_handler] context. *)
(* Both exit arms are written out rather than shared through a [finish]
   closure — this brackets every hot handler, and the closure would cost a
   heap block per call. *)
let span_m m phase f =
  let obs = m.cpu.Hw.Cpu.obs in
  Obs.Emitter.emit obs (Obs.Trace.span_begin phase)
    ~ts:(Hw.Cycles.now m.clock) ~arg:0;
  match f () with
  | v ->
      Obs.Emitter.emit obs (Obs.Trace.span_end phase)
        ~ts:(Hw.Cycles.now m.clock) ~arg:0;
      v
  | exception e ->
      Obs.Emitter.emit obs (Obs.Trace.span_end phase)
        ~ts:(Hw.Cycles.now m.clock) ~arg:0;
      raise e

let tlb_tax s n =
  if Config.emc_privops s.machine.setting then
    Hw.Cycles.advance s.machine.clock (n * tlb_refill_tax)

(* Exit interposition (§6.2): IA32_LSTAR and the IDT point at the monitor.
   The syscall path is a streamlined re-vector (inspect and forward); the
   exception/interrupt path runs the full gate pair — state capture, #INT
   gate, return trampoline. *)
(* The interpose bodies are straight-line clock advances, so the span
   brackets are emitted inline: these run on every syscall/exception under
   exit interposition and must not build a closure per event. *)
let interpose_begin = Obs.Trace.span_begin Obs.Trace.Exit_interpose
let interpose_end = Obs.Trace.span_end Obs.Trace.Exit_interpose

let interpose_syscall s =
  let m = s.machine in
  if Config.interposes_exits m.setting then begin
    let obs = m.cpu.Hw.Cpu.obs in
    Obs.Emitter.emit obs interpose_begin ~ts:(Hw.Cycles.now m.clock) ~arg:0;
    Hw.Cycles.advance m.clock Hw.Cycles.Cost.monitor_exit_inspect;
    Obs.Emitter.emit obs interpose_end ~ts:(Hw.Cycles.now m.clock) ~arg:0
  end

let interpose_exception s =
  let m = s.machine in
  if Config.interposes_exits m.setting then begin
    let obs = m.cpu.Hw.Cpu.obs in
    Obs.Emitter.emit obs interpose_begin ~ts:(Hw.Cycles.now m.clock) ~arg:0;
    Hw.Cycles.advance m.clock
      ((2 * Hw.Cycles.Cost.emc_roundtrip) + Hw.Cycles.Cost.monitor_exit_inspect);
    Obs.Emitter.emit obs interpose_end ~ts:(Hw.Cycles.now m.clock) ~arg:0
  end

let deliver_timer s =
  let m = s.machine in
  span_m m Obs.Trace.Timer_handler @@ fun () ->
  Hw.Apic.acknowledge m.cpu.Hw.Cpu.apic;
  interpose_exception s;
  match (s.sb, Config.interposes_exits m.setting) with
  | Some sb, true when Erebor.Sandbox.phase sb = Erebor.Sandbox.Data_loaded ->
      let mgr = Option.get m.mgr in
      Erebor.Sandbox.handle_interrupt mgr sb (fun () -> Kernel.timer_interrupt m.kern)
  | _ -> Kernel.timer_interrupt m.kern

(* Advance virtual time, delivering timer interrupts as their deadlines
   pass (interrupts arrive between instructions, not during them). *)
let rec advance s n =
  if n > 0 then begin
    let m = s.machine in
    let until = Hw.Apic.deadline m.cpu.Hw.Cpu.apic - Hw.Cycles.now m.clock in
    if n < until then Hw.Cycles.advance m.clock n
    else begin
      Hw.Cycles.advance m.clock (max 0 until);
      deliver_timer s;
      advance s (n - max 0 until)
    end
  end

let zero_fill_cost = 600 (* demand-zero page clearing, same in every setting *)

let fault_on s task addr kind =
  let m = s.machine in
  span_m m Obs.Trace.Pf_handler @@ fun () ->
  Hw.Cycles.advance s.machine.clock zero_fill_cost;
  tlb_tax s 1;
  interpose_exception s;
  match (s.sb, m.mgr) with
  | Some sb, Some mgr ->
      (match Erebor.Sandbox.page_fault mgr sb ~addr ~kind with
      | Ok () -> ()
      | Error e -> failwith ("sandbox fault: " ^ e))
  | _ ->
      (match Kernel.handle_page_fault m.kern task ~addr ~kind with
      | Ok () -> ()
      | Error e -> failwith ("fault: " ^ e))

(* Reclaim one page (kernel page-cache behaviour): a legitimate MMU
   operation that, under Erebor, is one more EMC. The next touch of that
   page faults again — this is what sustains Table 6's runtime #PF rates. *)
let evict s base pages ~page =
  let m = s.machine in
  if pages > 0 then begin
    let addr = base + (page mod pages * page_size) in
    Hw.Page_table.unmap m.mem ~write_pte:m.kern.Kernel.privops.Kernel.Privops.write_pte
      ~root_pfn:s.task.Kernel.Task.root_pfn ~vaddr:addr
  end

let touch s base pages ~page ~kind =
  let m = s.machine in
  if pages > 0 then begin
    let addr = base + (page mod pages * page_size) in
    (match Kernel.resolve_pfn m.kern s.task ~addr with
    | Some _ -> ()
    | None -> fault_on s s.task addr kind);
    advance s 4
  end

let task_syscall s call =
  interpose_syscall s;
  Kernel.syscall s.machine.kern s.task call

(* Kernel file I/O on behalf of the session's task. Native programs and
   background servers own [io_buf] in their address space; a sandbox has no
   such path (its channel is the ioctl). *)
let fs_io s ~write ~len =
  if s.io_buf = 0 then invalid_arg "fs_io: not available inside a sandbox";
  let rec go remaining =
    if remaining > 0 then begin
      let chunk = min io_chunk remaining in
      let call =
        if write then
          Kernel.Syscall.Write { fd = s.io_fd; user_buf = s.io_buf; len = chunk }
        else Kernel.Syscall.Read { fd = s.io_fd; user_buf = s.io_buf; len = chunk }
      in
      (match task_syscall s call with
      | Kernel.Syscall.Rerr e -> failwith ("fs_io: " ^ e)
      | _ -> ());
      go (remaining - chunk)
    end
  in
  go len

let host_io s ~bytes =
  let m = s.machine in
  let ops = m.kern.Kernel.privops in
  (* Switch to the proxy: CR3 through the privops table. *)
  span_m m Obs.Trace.Scheduler (fun () ->
      Hw.Cycles.advance m.clock Hw.Cycles.Cost.context_switch;
      ops.Kernel.Privops.write_cr3 ~root_pfn:m.proxy.Kernel.Task.root_pfn);
  (* The proxy shuffles the payload packet by packet: one syscall and one
     user copy per ~4 KiB, plus packet-buffer PTE churn in the stack. *)
  let packets = min 16 (max 1 (bytes / page_size)) in
  interpose_syscall s;
  ignore (Kernel.syscall m.kern m.proxy Kernel.Syscall.Getpid);
  for i = 0 to packets - 1 do
    interpose_syscall s;
    ignore (Kernel.syscall m.kern m.proxy Kernel.Syscall.Getpid);
    ops.Kernel.Privops.copy_from_user_into ~user_addr:m.proxy_buf
      ~buf:m.copy_scratch ~off:0 ~len:(min bytes page_size);
    let slot = m.scratch_slots.(i) in
    ops.Kernel.Privops.write_pte ~pte_addr:slot (Hw.Phys_mem.read_u64 m.mem slot)
  done;
  tlb_tax s packets;
  (* Kick the device: a synchronous VM exit (#VE is an exception). *)
  span_m m Obs.Trace.Ve_handler (fun () ->
      interpose_exception s;
      Hw.Cycles.advance m.clock Hw.Cycles.Cost.ve_handling;
      Kernel.note_ve_exit m.kern;
      match ops.Kernel.Privops.tdcall (Tdx.Ghci.Vmcall Tdx.Ghci.Hlt) with
      | Tdx.Td_module.Ok_unit | Tdx.Td_module.Ok_int _ | Tdx.Td_module.Ok_bytes _ -> ()
      | Tdx.Td_module.Ok_report _ -> ()
      | Tdx.Td_module.Error_leaf e -> failwith ("host_io: " ^ e));
  (* Back to the service's address space. *)
  span_m m Obs.Trace.Scheduler (fun () ->
      Hw.Cycles.advance m.clock Hw.Cycles.Cost.context_switch;
      ops.Kernel.Privops.write_cr3 ~root_pfn:s.task.Kernel.Task.root_pfn)

let sync_op s ~contended =
  let m = s.machine in
  if Config.uses_libos m.setting then begin
    Hw.Cycles.advance m.clock Hw.Cycles.Cost.spinlock_acquire;
    if contended then advance s spin_waste
  end
  else begin
    (* futex-style kernel synchronization *)
    ignore (Kernel.syscall m.kern s.task Kernel.Syscall.Getpid);
    if contended then Hw.Cycles.advance m.clock Hw.Cycles.Cost.context_switch
  end

let service s =
  match s.libos with
  | Some libos -> Libos.runtime_service libos
  | None -> ignore (task_syscall s Kernel.Syscall.Getpid)

(* LMBench-style micro operations (Fig. 8), all on the session's task. *)
let signal_op s =
  ignore (task_syscall s Kernel.Syscall.Getpid); (* kill *)
  interpose_exception s;
  Hw.Cycles.advance s.machine.clock Hw.Cycles.Cost.interrupt_delivery;
  ignore (task_syscall s Kernel.Syscall.Getpid) (* sigreturn *)

let mmap_cycle s ~pages =
  let m = s.machine in
  let len = pages * page_size in
  interpose_syscall s;
  match Kernel.mmap m.kern s.task ~len ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
  | Error e -> failwith ("mmap_cycle: " ^ e)
  | Ok addr ->
      span_m m Obs.Trace.Syscall_dispatch (fun () ->
          Hw.Cycles.advance m.clock Hw.Cycles.Cost.syscall_roundtrip);
      for i = 0 to pages - 1 do
        fault_on s s.task (addr + (i * page_size)) Hw.Fault.Write
      done;
      interpose_syscall s;
      span_m m Obs.Trace.Syscall_dispatch (fun () ->
          Hw.Cycles.advance m.clock Hw.Cycles.Cost.syscall_roundtrip);
      tlb_tax s pages;
      (match Kernel.munmap m.kern s.task ~addr with
      | Ok () -> ()
      | Error e -> failwith ("mmap_cycle: " ^ e))

let fork_exit s =
  let m = s.machine in
  interpose_syscall s;
  span_m m Obs.Trace.Syscall_dispatch (fun () ->
      Hw.Cycles.advance m.clock Hw.Cycles.Cost.syscall_roundtrip);
  let child = Kernel.fork_process m.kern s.task ~name:"forked" in
  interpose_syscall s;
  Kernel.exit_task m.kern child ~code:0;
  (* Release the child's address space so fork loops don't exhaust RAM. *)
  Kernel.Vma.iter
    (fun region ->
      match Kernel.munmap m.kern child ~addr:region.Kernel.Vma.start with
      | Ok () -> ()
      | Error _ -> ())
    child.Kernel.Task.vmas

let cpuid_op s =
  let m = s.machine in
  match (s.sb, m.mgr, Config.interposes_exits m.setting) with
  | Some sb, Some mgr, true -> ignore (Erebor.Sandbox.cpuid mgr sb ~leaf:1)
  | _ -> ignore (Kernel.cpuid m.kern s.task ~leaf:1)

let make_ops s rng =
  let threads = max 1 s.spec.threads in
  {
    compute = (fun n -> advance s n);
    parallel =
      (fun ~total ~sync_ops ->
        advance s (total / threads);
        for _ = 1 to sync_ops do
          let contended = Crypto.Drbg.float rng < s.spec.contention in
          sync_op s ~contended
        done);
    sync_op = (fun ~contended -> sync_op s ~contended);
    touch_confined =
      (fun ~page -> touch s s.confined_base s.confined_pages ~page ~kind:Hw.Fault.Write);
    touch_common =
      (fun ~page -> touch s s.common_base s.common_pages ~page ~kind:Hw.Fault.Read);
    pte_churn =
      (fun ~n ->
        let m = s.machine in
        let ops = m.kern.Kernel.privops in
        tlb_tax s n;
        for i = 0 to n - 1 do
          let slot = m.scratch_slots.(i mod Array.length m.scratch_slots) in
          ops.Kernel.Privops.write_pte ~pte_addr:slot (Hw.Phys_mem.read_u64 m.mem slot)
        done);
    cold_fault =
      (fun () ->
        (* Rotate through the largest data region, evicting before touching
           so every call produces exactly one demand fault. *)
        let base, pages, kind =
          if s.common_pages > 0 then (s.common_base, s.common_pages, Hw.Fault.Read)
          else (s.confined_base, s.confined_pages, Hw.Fault.Write)
        in
        let page = s.cold_cursor in
        s.cold_cursor <- s.cold_cursor + 1;
        evict s base pages ~page;
        touch s base pages ~page ~kind);
    service = (fun () -> service s);
    signal = (fun () -> signal_op s);
    mmap_cycle = (fun ~pages -> mmap_cycle s ~pages);
    fork_exit = (fun () -> fork_exit s);
    fs_io = (fun ~write ~len -> fs_io s ~write ~len);
    host_io = (fun ~bytes -> host_io s ~bytes);
    cpuid = (fun () -> cpuid_op s);
    recv_input =
      (fun () ->
        match s.libos with
        | Some libos -> (
            match Libos.recv_input libos with
            | Ok b -> b
            | Error e -> failwith ("recv_input: " ^ e))
        | None ->
            fs_io s ~write:false ~len:(Bytes.length s.spec.input);
            Bytes.copy s.spec.input);
    send_output =
      (fun data ->
        match s.libos with
        | Some libos -> (
            match Libos.send_output libos data with
            | Ok () -> ()
            | Error e -> failwith ("send_output: " ^ e))
        | None ->
            fs_io s ~write:true ~len:(Bytes.length data);
            Buffer.add_bytes s.native_output data);
    rng;
  }

let input_region_bytes spec =
  Kernel.Layout.page_align_up (max page_size (Bytes.length spec.input + 64))

let init_native m spec =
  let task = Kernel.create_task m.kern ~name:spec.name ~kind:Kernel.Task.Normal in
  let conf = Kernel.Layout.page_align_up spec.confined_bytes in
  let confined_base =
    match Kernel.mmap m.kern task ~len:conf ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
    | Ok a -> a
    | Error e -> failwith e
  in
  (match Kernel.populate m.kern task ~start:confined_base ~len:conf with
  | Ok () -> ()
  | Error e -> failwith e);
  let common_base, common_pages =
    match spec.common with
    | None -> (0, 0)
    | Some (_, bytes, _) ->
        (* Demand-paged, like the sandbox's common region: pages fault in as
           the program streams through its model/database. *)
        let len = Kernel.Layout.page_align_up bytes in
        let base =
          match Kernel.mmap m.kern task ~len ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
          | Ok a -> a
          | Error e -> failwith e
        in
        (base, len / page_size)
  in
  let io_buf =
    match Kernel.mmap m.kern task ~len:io_chunk ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon with
    | Ok a -> a
    | Error e -> failwith e
  in
  (match Kernel.populate m.kern task ~start:io_buf ~len:io_chunk with
  | Ok () -> ()
  | Error e -> failwith e);
  let io_fd = Kernel.Task.alloc_fd task "/dev/net-sink" in
  {
    machine = m;
    cold_cursor = 0;
    task;
    sb = None;
    libos = None;
    confined_base;
    confined_pages = conf / page_size;
    common_base;
    common_pages;
    channel = None;
    req_ctx = None;
    io_buf;
    io_fd;
    native_output = Buffer.create 256;
    spec;
  }

let init_sandboxed m spec =
  let mgr = Option.get m.mgr in
  let input_bytes = input_region_bytes spec in
  let conf = Kernel.Layout.page_align_up spec.confined_bytes in
  let sb =
    match
      Erebor.Sandbox.create_sandbox mgr ~name:spec.name
        ~confined_budget:(input_bytes + conf)
    with
    | Ok sb -> sb
    | Error e -> failwith e
  in
  (* Region 0: where the monitor installs client data. *)
  (match Erebor.Sandbox.declare_confined mgr sb ~len:input_bytes with
  | Ok _ -> ()
  | Error e -> failwith e);
  let libos =
    match
      Libos.boot ~mgr ~sb ~heap_bytes:conf ~threads:spec.threads ~preload:[]
    with
    | Ok l -> l
    | Error e -> failwith e
  in
  let common_base, common_pages =
    match spec.common with
    | None -> (0, 0)
    | Some (name, bytes, _) ->
        let len = Kernel.Layout.page_align_up bytes in
        let base =
          match Erebor.Sandbox.attach_common mgr sb ~name ~size:len with
          | Ok a -> a
          | Error e -> failwith e
        in
        (base, len / page_size)
  in
  (* Install the client data. Full Erebor runs the attested channel; the
     ablations install directly. *)
  let channel, req_ctx =
    match m.setting with
    | Config.Erebor_full ->
        (* The request window opens at the client: everything from the
           handshake to the sealed response belongs to this trace. *)
        let cx = Obs.Request.mint m.requests in
        Obs.Emitter.emit m.cpu.Hw.Cpu.obs Obs.Trace.Req_begin
          ~ts:(Hw.Cycles.now m.clock)
          ~arg:(Obs.Request.pack cx ~root:true);
        Obs.with_span m.cpu.Hw.Cpu.obs
          ~now:(fun () -> Hw.Cycles.now m.clock)
          Obs.Trace.Attest
        @@ fun () ->
        let monitor = Option.get m.monitor in
        let rng_c = Crypto.Drbg.create ~seed:("client:" ^ spec.name) in
        let rng_s = Crypto.Drbg.create ~seed:("monitor:" ^ spec.name) in
        let expected =
          (Erebor.Monitor.tdreport monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
        in
        let client = Erebor.Channel.Client.create ~rng:rng_c ~hw_key ~expected_mrtd:expected in
        let hello = Erebor.Channel.Client.hello client in
        let server, server_hello =
          match Erebor.Channel.Server.accept ~monitor ~rng:rng_s ~client_hello:hello with
          | Ok pair -> pair
          | Error e -> failwith e
        in
        (match Erebor.Channel.Client.finish client ~server_hello with
        | Ok () -> ()
        | Error e -> failwith e);
        let sealed = Erebor.Channel.Client.seal_request ~ctx:cx client spec.input in
        let plaintext =
          match Erebor.Channel.Server.open_request server sealed with
          | Ok p -> p
          | Error e -> failwith e
        in
        span_m m Obs.Trace.Channel_crypto (fun () ->
            Hw.Cycles.advance m.clock
              (decrypt_cycles_per_byte * Bytes.length plaintext));
        (match Erebor.Sandbox.load_client_data mgr sb plaintext with
        | Ok _ -> ()
        | Error e -> failwith e);
        (Some server, Some cx)
    | Config.Libos_only | Config.Erebor_mmu | Config.Erebor_exit ->
        (match Erebor.Sandbox.load_client_data mgr sb spec.input with
        | Ok _ -> ()
        | Error e -> failwith e);
        (None, None)
    | Config.Native -> assert false
  in
  {
    machine = m;
    cold_cursor = 0;
    task = Erebor.Sandbox.main_task sb;
    sb = Some sb;
    libos = Some libos;
    confined_base = Libos.heap_base libos;
    confined_pages = conf / page_size;
    common_base;
    common_pages;
    channel;
    req_ctx;
    io_buf = 0;
    io_fd = -1;
    native_output = Buffer.create 16;
    spec;
  }

let run m spec =
  if spec.timer_hz > 0 then
    Hw.Apic.set_period m.cpu.Hw.Cpu.apic (2_100_000_000 / spec.timer_hz);
  let t0 = Hw.Cycles.now m.clock in
  (* Service initialization work (loading models/databases): identical in
     every setting. *)
  Hw.Cycles.advance m.clock spec.init_compute;
  let s =
    if spec.sandboxed && Config.uses_libos m.setting then init_sandboxed m spec
    else init_native m spec
  in
  (* Run in the service task's address space. *)
  m.kern.Kernel.privops.Kernel.Privops.write_cr3 ~root_pfn:s.task.Kernel.Task.root_pfn;
  let t1 = Hw.Cycles.now m.clock in
  let before = snapshot m in
  let rng = Crypto.Drbg.create ~seed:("workload:" ^ spec.name) in
  Obs.with_span m.cpu.Hw.Cpu.obs
    ~now:(fun () -> Hw.Cycles.now m.clock)
    Obs.Trace.Run
    (fun () -> spec.body (make_ops s rng));
  let after = snapshot m in
  let t2 = Hw.Cycles.now m.clock in
  (* Collect and return results. *)
  let output, wire_len =
    match (s.sb, m.mgr) with
    | Some sb, Some mgr -> (
        let raw = Erebor.Sandbox.take_output mgr sb in
        match s.channel with
        | Some server ->
            span_m m Obs.Trace.Channel_crypto (fun () ->
                Hw.Cycles.advance m.clock
                  (decrypt_cycles_per_byte * Bytes.length raw));
            let sealed =
              Erebor.Channel.Server.seal_response server ~bucket:spec.output_bucket raw
            in
            (* Close the root request window: the client has its sealed
               response in hand. *)
            (match s.req_ctx with
            | Some cx ->
                Obs.Emitter.emit m.cpu.Hw.Cpu.obs Obs.Trace.Req_end
                  ~ts:(Hw.Cycles.now m.clock)
                  ~arg:(Obs.Request.pack cx ~root:true)
            | None -> ());
            (raw, Bytes.length sealed)
        | None -> (raw, Bytes.length raw))
    | _ -> (Buffer.to_bytes s.native_output, Buffer.length s.native_output)
  in
  let killed = match s.sb with Some sb -> Erebor.Sandbox.kill_reason sb | None -> None in
  let common_frames =
    match (m.mgr, spec.common) with
    | Some mgr, Some (name, _, _) -> Erebor.Sandbox.common_instance_frames mgr ~name
    | _ -> 0
  in
  (* Terminal scrub under full Erebor. *)
  (match (s.sb, m.mgr, m.setting) with
  | Some sb, Some mgr, Config.Erebor_full ->
      Hw.Cycles.advance m.clock
        (scrub_cycles_per_page * (s.confined_pages + (input_region_bytes spec / page_size)));
      Erebor.Sandbox.terminate mgr sb
  | _ -> ());
  {
    setting = m.setting;
    init_cycles = t1 - t0;
    run_cycles = t2 - t1;
    stats = Stats.diff ~before ~after;
    output;
    wire_output_len = wire_len;
    killed;
    common_frames;
  }

let run_fresh ?backend ?frames ?cma_frames ~setting spec =
  let m = create ?backend ?frames ?cma_frames ~setting () in
  run m spec

let sandbox_rows t =
  match t.mgr with
  | None -> []
  | Some mgr -> List.map Stats.sandbox_row_of (Erebor.Sandbox.exit_stats_all mgr)
