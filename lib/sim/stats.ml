type snapshot = {
  cycles : int;
  seconds : float;
  page_faults : int;
  timer_irqs : int;
  ve_exits : int;
  syscalls : int;
  emc_total : int;
  emc_mmu : int;
  emc_cr : int;
  emc_msr : int;
  emc_idt : int;
  emc_smap : int;
  emc_ghci : int;
  context_switches : int;
  mmu_denies : int;
}

let zero =
  { cycles = 0; seconds = 0.0; page_faults = 0; timer_irqs = 0; ve_exits = 0;
    syscalls = 0; emc_total = 0; emc_mmu = 0; emc_cr = 0; emc_msr = 0;
    emc_idt = 0; emc_smap = 0; emc_ghci = 0; context_switches = 0;
    mmu_denies = 0 }

let diff ~before ~after =
  {
    cycles = after.cycles - before.cycles;
    seconds = after.seconds -. before.seconds;
    page_faults = after.page_faults - before.page_faults;
    timer_irqs = after.timer_irqs - before.timer_irqs;
    ve_exits = after.ve_exits - before.ve_exits;
    syscalls = after.syscalls - before.syscalls;
    emc_total = after.emc_total - before.emc_total;
    emc_mmu = after.emc_mmu - before.emc_mmu;
    emc_cr = after.emc_cr - before.emc_cr;
    emc_msr = after.emc_msr - before.emc_msr;
    emc_idt = after.emc_idt - before.emc_idt;
    emc_smap = after.emc_smap - before.emc_smap;
    emc_ghci = after.emc_ghci - before.emc_ghci;
    context_switches = after.context_switches - before.context_switches;
    mmu_denies = after.mmu_denies - before.mmu_denies;
  }

(* Per-sandbox exit accounting: one row per tenant, so Table 6's exit
   columns stay attributable when a machine hosts N > 1 sandboxes. Derived
   from [Sandbox.exit_stats_all]; additive to [snapshot], which remains the
   machine-wide aggregate. *)
type sandbox_row = {
  sandbox_id : int;
  sandbox_name : string;
  sb_page_faults : int;
  sb_timer_irqs : int;
  sb_ve_exits : int;
}

let sandbox_row_of (sandbox_id, sandbox_name, (pf, timer, ve)) =
  { sandbox_id; sandbox_name; sb_page_faults = pf; sb_timer_irqs = timer;
    sb_ve_exits = ve }

let pp_sandbox_row fmt r =
  Fmt.pf fmt "sb%d %-16s #PF=%d #Timer=%d #VE=%d" r.sandbox_id r.sandbox_name
    r.sb_page_faults r.sb_timer_irqs r.sb_ve_exits

let per_second s count = if s.seconds <= 0.0 then 0.0 else count /. s.seconds

let pf_rate s = per_second s (float_of_int s.page_faults)
let timer_rate s = per_second s (float_of_int s.timer_irqs)
let ve_rate s = per_second s (float_of_int s.ve_exits)
let exit_rate s = pf_rate s +. timer_rate s +. ve_rate s
let emc_rate s = per_second s (float_of_int s.emc_total)

let pp fmt s =
  Fmt.pf fmt
    "%.2fs  #PF=%.1f/s #Timer=%.1f/s #VE=%.1f/s EMC=%.1fk/s syscalls=%d ctxsw=%d denies=%d"
    s.seconds (pf_rate s) (timer_rate s) (ve_rate s)
    (emc_rate s /. 1000.0)
    s.syscalls s.context_switches s.mmu_denies
