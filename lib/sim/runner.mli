(** Domain pool for running independent simulated machines in parallel.

    Tasks must be self-contained (every simulated machine owns its physical
    memory, CPU and event bus, so whole-machine runs qualify). Output order
    always matches input order, and [map ~jobs] is element-for-element equal
    to [Array.map] — parallelism never changes results, only wall-clock. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

exception Task_error of exn
(** A task raised; carries the first failure (remaining tasks are cut short,
    the pool is still joined before this propagates). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] applies [f] to every element using at most [jobs]
    domains (including the calling one). [jobs <= 1] degrades to a plain
    sequential [Array.map] with no domain machinery. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
