(** Run statistics in the shape the paper reports (Table 6, Fig. 8–10):
    per-second exit rates, EMC rate, and virtual execution time. *)

type snapshot = {
  cycles : int;
  seconds : float;
  page_faults : int;
  timer_irqs : int;
  ve_exits : int;
  syscalls : int;
  emc_total : int;
  emc_mmu : int;
  emc_cr : int;
  emc_msr : int;
  emc_idt : int;
  emc_smap : int;
  emc_ghci : int;
  context_switches : int;
  mmu_denies : int;
      (** MMU-guard policy denials — lets security tests assert exact
          counts (C2–C4). *)
}

val zero : snapshot
val diff : before:snapshot -> after:snapshot -> snapshot

type sandbox_row = {
  sandbox_id : int;
  sandbox_name : string;
  sb_page_faults : int;
  sb_timer_irqs : int;
  sb_ve_exits : int;
}
(** Per-sandbox exit accounting — with N tenants per CVM the aggregate
    {!snapshot} no longer attributes exits, so Table 6 columns come from
    these rows. *)

val sandbox_row_of : int * string * (int * int * int) -> sandbox_row
(** Lift one [Sandbox.exit_stats_all] row. *)

val pp_sandbox_row : Format.formatter -> sandbox_row -> unit

val per_second : snapshot -> float -> float
(** [per_second s count] — rate of [count] events over the snapshot span. *)

val pf_rate : snapshot -> float
val timer_rate : snapshot -> float
val ve_rate : snapshot -> float
val exit_rate : snapshot -> float
(** PF + timer + #VE combined (Table 6 "Total"). *)

val emc_rate : snapshot -> float

val pp : Format.formatter -> snapshot -> unit
