(* Domain pool for fanning independent simulations across cores.

   Each simulated machine is self-contained (its own Phys_mem, Cpu, Obs
   emitter), so tasks share no mutable state; the only coordination is the
   work-stealing index below. Results land at the same index as their input,
   so [map ~jobs:n f a] equals [Array.map f a] element-for-element no matter
   how the scheduler interleaves — parallel runs stay deterministic. *)

let default_jobs () = Domain.recommended_domain_count ()

exception Task_error of exn

let map ?jobs f arr =
  let n = Array.length arr in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              ignore (Atomic.compare_and_set error None (Some e));
              continue := false
      done
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get error with Some e -> raise (Task_error e) | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
