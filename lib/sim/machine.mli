(** The evaluation machine: assembles hardware + TDX + VMM + kernel (+
    monitor, sandbox manager, LibOS) for one {!Config.setting}, then runs
    workload bodies written against the {!ops} interface. Every operation is
    routed the way that setting routes it — e.g. a heap service is a syscall
    natively but an in-process LibOS call elsewhere; a page fault installs a
    PTE directly natively but through an EMC under Erebor — so the
    performance numbers *emerge* from mechanism, not from per-setting
    constants. *)

type t

val create :
  ?obs:Obs.Emitter.t ->
  ?journal:Obs.Journal.Writer.t ->
  ?window:Obs.Window.t ->
  ?sketches:Obs.Sketch.Family.t ->
  ?backend:Erebor.Isolation.kind ->
  ?frames:int -> ?cma_frames:int -> ?reserved_frames:int ->
  ?collect_request_spans:bool -> setting:Config.setting ->
  unit -> t
(** [?obs] supplies the machine's event emitter — attach sinks (recorders,
    histograms) to it before [create] to observe boot as well. A fresh
    emitter is made otherwise. [?journal] attaches a flight-recorder writer
    (stream name ["sim"]) before any other sink, so the journal holds the
    complete event stream from machine assembly onward; the emitter's
    finalizer seals and closes it. [?window] attaches a sliding-window sink
    before boot, so live SLO/health telemetry covers the full event stream.
    [?sketches] attaches a per-kind mergeable quantile-sketch family before
    boot — the per-machine state fleet aggregation ({!Obs.Agg}) merges with
    bounded relative error.
    [?backend] picks the monitor's isolation backend (default [Pks], the
    calibrated configuration); it only matters for settings with a monitor.
    [?collect_request_spans] (default false) makes the machine's request
    collector retain full causal span trees for sampled requests; the
    default tracks only window bounds and latency, which is what the
    bench/density paths read. *)

val setting : t -> Config.setting
val kern : t -> Kernel.t
val manager : t -> Erebor.Sandbox.manager option
val clock : t -> Hw.Cycles.clock

val obs : t -> Obs.Emitter.t
(** The machine's event emitter (the one carried by its CPU). *)

val counters : t -> Obs.Counter.t
(** The machine-wide counter sink {!snapshot} is derived from. *)

val requests : t -> Obs.Request.t
(** The request-trace collector watching this machine's emitter. Under
    [Erebor_full], every sandboxed session mints one trace context at the
    channel client; the collector always tracks request windows and latency,
    and additionally assembles causal span trees when the machine was
    created with [~collect_request_spans:true]. *)

val window : t -> Obs.Window.t option
(** The sliding-window sink the machine was created with, if any. *)

val sketches : t -> Obs.Sketch.Family.t option
(** The quantile-sketch family the machine was created with, if any. *)

val snapshot : t -> Stats.snapshot

val sandbox_rows : t -> Stats.sandbox_row list
(** Per-sandbox exit rows ([] when the setting has no sandbox manager) —
    keeps Table 6's exit attribution meaningful with N > 1 tenants. *)

(** {2 Workload interface} *)

type ops = {
  compute : int -> unit;
      (** Pure user compute; timer interrupts are delivered on schedule. *)
  parallel : total:int -> sync_ops:int -> unit;
      (** Multi-threaded region: wall-clock = total / threads, plus
          synchronization (futex natively, spinlock in the LibOS). *)
  sync_op : contended:bool -> unit;
  touch_confined : page:int -> unit;
      (** Access a confined-heap page (faults on first touch). *)
  touch_common : page:int -> unit;
      (** Access a common-region page. *)
  cold_fault : unit -> unit;
      (** Evict-and-retouch one data page: one reclaim PTE clear plus one
          demand fault — the sustained runtime #PF source of Table 6. *)
  pte_churn : n:int -> unit;
      (** [n] kernel housekeeping PTE stores (page cache, slab, reclaim) —
          the background MMU activity behind Table 6's EMC rates. *)
  service : unit -> unit;
      (** One runtime service (heap/fs/misc): syscall vs LibOS call. *)
  signal : unit -> unit;
      (** kill + handler delivery + sigreturn (LMBench lat_sig). *)
  mmap_cycle : pages:int -> unit;
      (** mmap, fault in every page, munmap (LMBench lat_mmap). *)
  fork_exit : unit -> unit;
      (** fork a child (eager page copies), exit and reap it. *)
  fs_io : write:bool -> len:int -> unit;
      (** Kernel file I/O in chunks, with real user copies — used by native
          programs and by background (non-sandboxed) servers. *)
  host_io : bytes:int -> unit;
      (** The proxy moves packets for this service: context switch to the
          proxy, syscalls, user copies, packet-buffer PTE churn, and a
          synchronous VM exit. *)
  cpuid : unit -> unit;
  recv_input : unit -> bytes;
  send_output : bytes -> unit;
  rng : Crypto.Drbg.t;
}

type spec = {
  name : string;
  sandboxed : bool;
      (** Service workloads run in EREBOR-SANDBOX; background programs
          (LMBench, OpenSSH/Nginx) stay normal tasks even under Erebor. *)
  timer_hz : int;              (** APIC tick rate for this run (0 = keep). *)
  init_compute : int;
      (** Setting-independent initialization work (model/database load). *)
  confined_bytes : int;        (** Simulated (scaled) confined size. *)
  nominal_confined_mb : int;   (** Reported, as in Table 5/6. *)
  common : (string * int * int) option;
      (** (instance, simulated bytes, nominal MB). *)
  threads : int;
  contention : float;          (** Probability a sync op contends. *)
  input : bytes;
  output_bucket : int;
  body : ops -> unit;
}

type run_result = {
  setting : Config.setting;
  init_cycles : int;           (** Memory setup + data installation. *)
  run_cycles : int;            (** Body execution. *)
  stats : Stats.snapshot;      (** Over the body only. *)
  output : bytes;              (** Unpadded result payload. *)
  wire_output_len : int;       (** Padded/encrypted size (full Erebor). *)
  killed : string option;
  common_frames : int;         (** Frames backing the common instance. *)
}

val run : t -> spec -> run_result
(** Execute one client session of [spec] under this machine's setting. *)

val run_fresh :
  ?backend:Erebor.Isolation.kind ->
  ?frames:int -> ?cma_frames:int -> setting:Config.setting -> spec -> run_result
(** Convenience: fresh machine, one run. *)
