(* Tests for the paper's optional / future-work features implemented beyond
   the base system: batched MMU updates (§9.1), side-channel mitigations
   (§11), huge pages with forced splitting (§7), verified dynamic kernel
   code (§7), and warm-start sandbox pools (§9.2). *)

let hw_key = Crypto.Sha256.digest_string "fused hardware key"

let benign_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

type stack = {
  mem : Hw.Phys_mem.t;
  cpu : Hw.Cpu.t;
  monitor : Erebor.Monitor.t;
  kern : Kernel.t;
  mgr : Erebor.Sandbox.manager;
}

let make_stack ?(privilege = Erebor.Gate.Pks) ?(frames = 32768) ?(cma_frames = 8192) () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~privilege ~cpu ~mem ~td ~firmware:(Bytes.of_string "fw")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image:benign_image
         ~reserved_frames:128 ~cma_frames)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  { mem; cpu; monitor; kern; mgr }

(* ------------------------------------------------------------------ *)
(* Batched MMU updates (§9.1)                                          *)
(* ------------------------------------------------------------------ *)

let declare_cost st ~batched ~pages =
  Kernel.set_mmu_batching st.kern batched;
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr
         ~name:(Printf.sprintf "b%b" batched)
         ~confined_budget:(pages * 4096))
  in
  let t0 = Hw.Cycles.now st.kern.Kernel.clock in
  let base = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(pages * 4096)) in
  let cost = Hw.Cycles.now st.kern.Kernel.clock - t0 in
  Kernel.set_mmu_batching st.kern false;
  (cost, sb, base)

let test_batching_cheaper_same_result () =
  let st = make_stack () in
  let pages = 256 in
  let unbatched_cost, sb1, base1 = declare_cost st ~batched:false ~pages in
  let batched_cost, sb2, base2 = declare_cost st ~batched:true ~pages in
  Alcotest.(check bool) "batching saves EMC round trips" true
    (batched_cost < unbatched_cost);
  (* Rough shape: the unbatched path pays ~1224 cycles more per page. *)
  Alcotest.(check bool) "saves at least half the gate cost" true
    (unbatched_cost - batched_cost > pages * Hw.Cycles.Cost.emc_roundtrip / 2);
  (* Both produce fully-pinned, policy-checked mappings. *)
  List.iter
    (fun (sb, base) ->
      for i = 0 to pages - 1 do
        match
          Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb) ~addr:(base + (i * 4096))
        with
        | Some _ -> ()
        | None -> Alcotest.fail "page missing after populate"
      done)
    [ (sb1, base1); (sb2, base2) ]

let test_batch_policy_still_enforced () =
  let st = make_stack () in
  (* A batch containing a store outside any registered PTP must be refused
     atomically at that entry. *)
  match
    st.kern.Kernel.privops.Kernel.Privops.write_pte_batch
      [| (Hw.Phys_mem.addr_of_pfn 9000, Hw.Pte.make ~pfn:5 Hw.Pte.default_flags) |]
  with
  | () -> Alcotest.fail "stray batched store accepted"
  | exception Erebor.Monitor.Policy_violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Side-channel mitigations (§11)                                      *)
(* ------------------------------------------------------------------ *)

let test_mitigations_rate_limit () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.exit_rate_limit = Some 10; output_quantum = None;
        flush_on_exit = false }
  in
  for _ = 1 to 10 do
    Erebor.Mitigations.on_sandbox_exit m
  done;
  Alcotest.(check int) "under budget: no stalls" 0 (Erebor.Mitigations.stalls m);
  let t0 = Hw.Cycles.now clock in
  Erebor.Mitigations.on_sandbox_exit m;
  Alcotest.(check int) "over budget: stalled once" 1 (Erebor.Mitigations.stalls m);
  Alcotest.(check bool) "stalled to the next window" true
    (Hw.Cycles.now clock - t0 > 1_000_000_000)

let test_mitigations_quantized_output () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.exit_rate_limit = None; output_quantum = Some 10_000;
        flush_on_exit = false }
  in
  Hw.Cycles.advance clock 12_345;
  Erebor.Mitigations.release_output m;
  Alcotest.(check int) "release on the grid" 0 (Hw.Cycles.now clock mod 10_000);
  let at = Hw.Cycles.now clock in
  Erebor.Mitigations.release_output m;
  Alcotest.(check int) "already on the grid: no wait" at (Hw.Cycles.now clock)

let test_mitigations_flush_cost () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.none with Erebor.Mitigations.flush_on_exit = true }
  in
  let t0 = Hw.Cycles.now clock in
  Erebor.Mitigations.on_sandbox_exit m;
  Alcotest.(check bool) "flush costs cycles" true (Hw.Cycles.now clock > t0);
  Alcotest.(check int) "flush counted" 1 (Erebor.Mitigations.flushes m)

let test_mitigations_wired_into_sandbox () =
  let st = make_stack () in
  Erebor.Sandbox.set_mitigations st.mgr
    { Erebor.Mitigations.exit_rate_limit = Some 2; output_quantum = None;
      flush_on_exit = false };
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr ~name:"m" ~confined_budget:(16 * 4096))
  in
  ignore (Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:4096));
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "x")));
  (* Hammer exits: the third in the window must stall. *)
  for _ = 1 to 4 do
    Erebor.Sandbox.handle_interrupt st.mgr sb (fun () -> ())
  done;
  match Erebor.Sandbox.mitigation_stats st.mgr with
  | Some (stalls, stall_cycles, _) ->
      Alcotest.(check bool) "stalled" true (stalls >= 1 && stall_cycles > 0)
  | None -> Alcotest.fail "mitigations not armed"

(* ------------------------------------------------------------------ *)
(* Huge pages + forced splitting (§7)                                  *)
(* ------------------------------------------------------------------ *)

let make_raw_env () =
  let mem = Hw.Phys_mem.create ~frames:4096 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let next = ref 1 in
  let alloc_ptp () =
    let pfn = !next in
    incr next;
    pfn
  in
  let write_pte ~pte_addr pte = Hw.Phys_mem.write_u64 mem pte_addr pte in
  let root = alloc_ptp () in
  Hw.Cpu.write_cr3 cpu ~root_pfn:root;
  (mem, cpu, alloc_ptp, write_pte, root)

let test_huge_map_translate () =
  let mem, cpu, alloc_ptp, write_pte, root = make_raw_env () in
  let vaddr = 0x4020_0000 (* 2MiB aligned *) in
  Hw.Page_table.map_huge mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
    (Hw.Pte.make ~pfn:1024 Hw.Pte.default_flags);
  (* The walk resolves different 4K offsets to different frames. *)
  (match Hw.Page_table.walk mem ~root_pfn:root vaddr with
  | Some w ->
      Alcotest.(check bool) "huge" true w.Hw.Page_table.huge;
      Alcotest.(check int) "first frame" 1024 w.Hw.Page_table.pfn
  | None -> Alcotest.fail "unmapped");
  (match Hw.Page_table.walk mem ~root_pfn:root (vaddr + (7 * 4096)) with
  | Some w -> Alcotest.(check int) "seventh frame" 1031 w.Hw.Page_table.pfn
  | None -> Alcotest.fail "unmapped");
  (* And the CPU reads/writes through it. *)
  Hw.Cpu.write_u64 cpu (vaddr + (5 * 4096) + 16) 77L;
  Alcotest.(check int64) "cpu access via huge page" 77L
    (Hw.Phys_mem.read_u64 mem (Hw.Phys_mem.addr_of_pfn 1029 + 16));
  Alcotest.check_raises "unaligned vaddr"
    (Invalid_argument "Page_table.map_huge: vaddr must be 2MiB-aligned") (fun () ->
      Hw.Page_table.map_huge mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr:0x1000
        (Hw.Pte.make ~pfn:1024 Hw.Pte.default_flags))

let test_forced_splitting () =
  let st = make_stack ~frames:65536 () in
  let guard = Erebor.Monitor.guard st.monitor in
  let alloc_ptp () = Option.get (Kernel.Alloc.alloc_zeroed st.kern.Kernel.frame_alloc st.mem) in
  (* Build a huge kernel mapping (trusted), 2 MiB worth of direct-map-ish
     memory at an unused kernel address. *)
  let vaddr = Kernel.Layout.kernel_text_base + 0x4000_0000 in
  let base_frame = 16384 (* 2MiB-aligned, free *) in
  let write_pte ~pte_addr pte =
    match Erebor.Mmu_guard.write_pte guard ~trusted:true ~pte_addr pte with
    | Ok () -> ()
    | Error e -> failwith e
  in
  Hw.Page_table.map_huge st.mem ~write_pte ~alloc_ptp
    ~root_pfn:st.kern.Kernel.kernel_root ~vaddr
    (Hw.Pte.make ~pfn:base_frame Hw.Pte.default_flags);
  (* Retag one 4K page inside it with the monitor key: forces a split. *)
  (match
     Erebor.Mmu_guard.protect_page_splitting guard
       ~root_pfn:st.kern.Kernel.kernel_root
       ~vaddr:(vaddr + (9 * 4096))
       ~key:Erebor.Policy.key_monitor ~writable:false ~alloc_ptp
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The mapping is now 4K-grained; only page 9 carries the key. *)
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root (vaddr + (9 * 4096)) with
  | Some w ->
      Alcotest.(check bool) "split" false w.Hw.Page_table.huge;
      Alcotest.(check int) "keyed" Erebor.Policy.key_monitor (Hw.Pte.pkey w.Hw.Page_table.pte);
      Alcotest.(check bool) "read-only" false (Hw.Pte.writable w.Hw.Page_table.pte);
      Alcotest.(check int) "same frame" (base_frame + 9) w.Hw.Page_table.pfn
  | None -> Alcotest.fail "mapping lost");
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root (vaddr + (8 * 4096)) with
  | Some w ->
      Alcotest.(check int) "neighbour unkeyed" 0 (Hw.Pte.pkey w.Hw.Page_table.pte);
      Alcotest.(check bool) "neighbour writable" true (Hw.Pte.writable w.Hw.Page_table.pte);
      Alcotest.(check int) "neighbour frame" (base_frame + 8) w.Hw.Page_table.pfn
  | None -> Alcotest.fail "neighbour lost");
  (* The protected page now faults on kernel writes (PKS). *)
  (match Hw.Cpu.write_u64 st.cpu (vaddr + (9 * 4096)) 1L with
  | () -> Alcotest.fail "write to keyed page succeeded"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault { pkey_violation = true; _ }) -> ()
  | exception Hw.Fault.Fault f -> Alcotest.failf "wrong fault %s" (Hw.Fault.to_string f));
  (* Neighbour pages still writable. *)
  Hw.Cpu.write_u64 st.cpu (vaddr + (8 * 4096)) 1L

let test_untrusted_huge_policy () =
  let st = make_stack ~frames:65536 () in
  let ops = st.kern.Kernel.privops in
  (* Find the PD slot for a kernel vaddr by preparing intermediates. *)
  let vaddr = Kernel.Layout.kernel_text_base + 0x6000_0000 in
  let alloc_ptp () = Option.get (Kernel.Alloc.alloc_zeroed st.kern.Kernel.frame_alloc st.mem) in
  (* Build down to the PD level with individual (checked) stores. *)
  let pt_slot =
    Hw.Page_table.prepare_leaf st.mem
      ~write_pte:(fun ~pte_addr pte -> ops.Kernel.Privops.write_pte ~pte_addr pte)
      ~alloc_ptp ~root_pfn:st.kern.Kernel.kernel_root ~vaddr
  in
  ignore pt_slot;
  (* The PD slot is the parent of the PT containing pt_slot; rebuild it. *)
  let i4, i3, i2, _ = Hw.Page_table.split vaddr in
  let l4 = st.kern.Kernel.kernel_root in
  let entry mem pfn idx = Hw.Pte.pfn (Hw.Phys_mem.read_u64 mem (Hw.Phys_mem.addr_of_pfn pfn + (8 * idx))) in
  let l3 = entry st.mem l4 i4 in
  let l2 = entry st.mem l3 i3 in
  let pd_slot = Hw.Phys_mem.addr_of_pfn l2 + (8 * i2) in
  (* Clear the interior entry first so the huge install is not a re-point. *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot Hw.Pte.empty;
  (* A huge leaf over free, aligned frames is accepted... *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot
    (Hw.Pte.set_huge (Hw.Pte.make ~pfn:32768 Hw.Pte.default_flags) true);
  (* ...but over classified frames it is refused. *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot Hw.Pte.empty;
  let guard = Erebor.Monitor.guard st.monitor in
  (match Erebor.Mmu_guard.classify guard ~pfn:(34816 + 5) Erebor.Mmu_guard.Monitor with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    ops.Kernel.Privops.write_pte ~pte_addr:pd_slot
      (Hw.Pte.set_huge (Hw.Pte.make ~pfn:34816 Hw.Pte.default_flags) true)
  with
  | () -> Alcotest.fail "huge leaf over monitor frame accepted"
  | exception Erebor.Monitor.Policy_violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Dynamic kernel code (§7)                                            *)
(* ------------------------------------------------------------------ *)

let test_module_loading () =
  let st = make_stack () in
  let benign = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Add (Hw.Isa.R0, Hw.Isa.R1); Hw.Isa.Ret ] in
  (match Kernel.load_module st.kern ~name:"net_filter" ~code:benign with
  | Ok base -> (
      (* Mapped read-only + executable in the kernel tree. *)
      match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root base with
      | Some w ->
          Alcotest.(check bool) "not writable" false (Hw.Pte.writable w.Hw.Page_table.pte);
          Alcotest.(check bool) "executable" false (Hw.Pte.nx w.Hw.Page_table.pte);
          Alcotest.(check bytes) "code in place" benign
            (Hw.Phys_mem.read_bytes st.mem
               (Hw.Phys_mem.addr_of_pfn w.Hw.Page_table.pfn)
               (Bytes.length benign))
      | None -> Alcotest.fail "module unmapped")
  | Error e -> Alcotest.fail e);
  (* A module smuggling a sensitive instruction is refused. *)
  let evil = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Wrmsr; Hw.Isa.Ret ] in
  match Kernel.load_module st.kern ~name:"rootkit" ~code:evil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sensitive module accepted"

let test_text_poke () =
  let st = make_stack () in
  let base =
    Result.get_ok
      (Kernel.load_module st.kern ~name:"patch_target"
         ~code:(Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Nop; Hw.Isa.Ret ]))
  in
  (* Benign patch applies (via the monitor: the page is read-only). *)
  let patch = Hw.Isa.assemble [ Hw.Isa.Cpuid ] in
  (match Kernel.poke_text st.kern ~vaddr:(base + 4) ~code:patch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root base with
  | Some w ->
      Alcotest.(check bytes) "patched" patch
        (Hw.Phys_mem.read_bytes st.mem (Hw.Phys_mem.addr_of_pfn w.Hw.Page_table.pfn + 4) 4)
  | None -> Alcotest.fail "unmapped");
  (* Sensitive patch bytes are rejected. *)
  match Kernel.poke_text st.kern ~vaddr:(base + 4) ~code:(Hw.Isa.assemble [ Hw.Isa.Tdcall ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sensitive poke accepted"

let test_native_accepts_dynamic_code () =
  (* Without Erebor, module loading is unchecked (that's the point). *)
  let mem = Hw.Phys_mem.create ~frames:8192 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let privops = Kernel.Privops.native ~cpu ~td in
  let kern = Kernel.boot ~mem ~cpu ~td ~privops ~reserved_frames:64 ~cma_frames:1024 in
  match
    Kernel.load_module kern ~name:"anything"
      ~code:(Hw.Isa.assemble [ Hw.Isa.Wrmsr ])
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* SEV-style write-protect backend (§10, Table 7)                      *)
(* ------------------------------------------------------------------ *)

let test_wp_backend_boots () =
  let st = make_stack ~privilege:Erebor.Gate.Write_protect () in
  Alcotest.(check bool) "no PKS on this platform" false (Hw.Cr.pks st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "WP on in normal mode" true (Hw.Cr.wp st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "kernel booted" true (Erebor.Monitor.kernel st.monitor <> None)

let test_wp_protects_ptps () =
  let st = make_stack ~privilege:Erebor.Gate.Write_protect () in
  Kernel.ensure_direct_map st.kern ~pfn:st.kern.Kernel.kernel_root;
  let va = Kernel.Layout.direct_map (Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root) in
  (* Readable, like under PKS... *)
  ignore (Hw.Cpu.read_u64 st.cpu va);
  (* ...but kernel writes trip CR0.WP on the read-only mapping (a plain
     protection fault, not a pkey fault — no PKS here). *)
  (match Hw.Cpu.write_u64 st.cpu va 0xBADL with
  | () -> Alcotest.fail "PTP writable from normal mode"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault { pkey_violation = false; present = true; _ })
    -> ()
  | exception Hw.Fault.Fault f -> Alcotest.failf "wrong fault %s" (Hw.Fault.to_string f));
  (* Inside the gate, the monitor context may write (WP is cleared). *)
  let gate = Erebor.Monitor.gate st.monitor in
  Erebor.Gate.call gate (fun () ->
      let before = Hw.Phys_mem.read_u64 st.mem (Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root + 8 * 300) in
      Hw.Cpu.write_u64 st.cpu (va + (8 * 300)) before);
  (* And WP is re-asserted afterwards. *)
  Alcotest.(check bool) "WP restored after EMC" true (Hw.Cr.wp st.cpu.Hw.Cpu.cr)

let test_wp_interrupt_gate () =
  let st = make_stack ~privilege:Erebor.Gate.Write_protect () in
  let gate = Erebor.Monitor.gate st.monitor in
  let during = ref true and after = ref false in
  Erebor.Gate.call gate (fun () ->
      Erebor.Gate.interrupt_during_emc gate (fun () -> during := Hw.Cr.wp st.cpu.Hw.Cpu.cr);
      after := Hw.Cr.wp st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "WP re-asserted during IRQ" true !during;
  Alcotest.(check bool) "privilege restored after IRQ" false !after

let test_wp_sandbox_protection_holds () =
  (* The sandbox story is backend-independent. *)
  let st = make_stack ~privilege:Erebor.Gate.Write_protect () in
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr ~name:"wp-sb" ~confined_budget:(32 * 4096))
  in
  let base = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(8 * 4096)) in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "secret")));
  (* Post-data syscall kill. *)
  (match Erebor.Sandbox.handle_syscall st.mgr sb (Kernel.Syscall.Open { path = "/x" }) with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "syscall allowed");
  (* SMAP still blocks the kernel from sandbox memory. *)
  st.kern.Kernel.privops.Kernel.Privops.write_cr3
    ~root_pfn:(Erebor.Sandbox.main_task sb).Kernel.Task.root_pfn;
  match Hw.Cpu.read_u8 st.cpu base with
  | _ -> Alcotest.fail "kernel read sandbox memory"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault _) -> ()

(* ------------------------------------------------------------------ *)
(* Warm-start pool (§9.2)                                              *)
(* ------------------------------------------------------------------ *)

let test_pool_warm_vs_cold () =
  let st = make_stack ~cma_frames:16384 () in
  let clock = st.kern.Kernel.clock in
  let pool =
    Result.get_ok
      (Sim.Pool.create ~mgr:st.mgr ~name_prefix:"warm" ~heap_bytes:(128 * 4096)
         ~threads:2 ~size:2 ())
  in
  Alcotest.(check int) "two ready" 2 (Sim.Pool.ready pool);
  (* Warm acquisition is (virtually) free. *)
  let t0 = Hw.Cycles.now clock in
  let entry = Result.get_ok (Sim.Pool.acquire pool) in
  Alcotest.(check int) "warm hit costs nothing" t0 (Hw.Cycles.now clock);
  Alcotest.(check int) "one left" 1 (Sim.Pool.ready pool);
  (* The warm sandbox is immediately usable for a client session. *)
  ignore
    (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr entry.Sim.Pool.sb (Bytes.of_string "q")));
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  (* Pool empty: the next acquire cold-boots, paying init now. *)
  let t1 = Hw.Cycles.now clock in
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  Alcotest.(check bool) "cold boot pays init" true (Hw.Cycles.now clock - t1 > 100_000);
  Alcotest.(check int) "hits" 2 (Sim.Pool.warm_hits pool);
  Alcotest.(check int) "colds" 1 (Sim.Pool.cold_boots pool);
  (* Refill. *)
  (match Sim.Pool.prewarm pool 3 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "refilled" 3 (Sim.Pool.ready pool)

let () =
  Alcotest.run "extensions"
    [
      ( "batched mmu (9.1)",
        [
          Alcotest.test_case "cheaper, same result" `Quick test_batching_cheaper_same_result;
          Alcotest.test_case "policy in batches" `Quick test_batch_policy_still_enforced;
        ] );
      ( "mitigations (11)",
        [
          Alcotest.test_case "rate limit" `Quick test_mitigations_rate_limit;
          Alcotest.test_case "quantized output" `Quick test_mitigations_quantized_output;
          Alcotest.test_case "flush cost" `Quick test_mitigations_flush_cost;
          Alcotest.test_case "wired into sandbox" `Quick test_mitigations_wired_into_sandbox;
        ] );
      ( "huge pages (7)",
        [
          Alcotest.test_case "map/translate" `Quick test_huge_map_translate;
          Alcotest.test_case "forced splitting" `Quick test_forced_splitting;
          Alcotest.test_case "untrusted huge policy" `Quick test_untrusted_huge_policy;
        ] );
      ( "dynamic code (7)",
        [
          Alcotest.test_case "module loading" `Quick test_module_loading;
          Alcotest.test_case "text_poke" `Quick test_text_poke;
          Alcotest.test_case "native unchecked" `Quick test_native_accepts_dynamic_code;
        ] );
      ( "sev write-protect backend (10)",
        [
          Alcotest.test_case "boots without PKS" `Quick test_wp_backend_boots;
          Alcotest.test_case "WP protects PTPs" `Quick test_wp_protects_ptps;
          Alcotest.test_case "interrupt gate" `Quick test_wp_interrupt_gate;
          Alcotest.test_case "sandbox protection holds" `Quick test_wp_sandbox_protection_holds;
        ] );
      ( "warm pool (9.2)",
        [ Alcotest.test_case "warm vs cold" `Quick test_pool_warm_vs_cold ] );
    ]
