(* Tests for the paper's optional / future-work features implemented beyond
   the base system: batched MMU updates (§9.1), side-channel mitigations
   (§11), huge pages with forced splitting (§7), verified dynamic kernel
   code (§7), and warm-start sandbox pools (§9.2). *)

let hw_key = Crypto.Sha256.digest_string "fused hardware key"

let benign_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

type stack = {
  mem : Hw.Phys_mem.t;
  cpu : Hw.Cpu.t;
  monitor : Erebor.Monitor.t;
  kern : Kernel.t;
  mgr : Erebor.Sandbox.manager;
  audit : Obs.Audit.t;
}

let make_stack ?(backend = Erebor.Isolation.Pks) ?(frames = 32768) ?(cma_frames = 8192) () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let obs = Obs.Emitter.create () in
  let audit = Obs.Audit.create ~key:hw_key in
  Obs.Emitter.set_audit obs (Some audit);
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 ~obs () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~backend ~cpu ~mem ~td ~firmware:(Bytes.of_string "fw")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image:benign_image
         ~reserved_frames:128 ~cma_frames)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  { mem; cpu; monitor; kern; mgr; audit }

(* ------------------------------------------------------------------ *)
(* Batched MMU updates (§9.1)                                          *)
(* ------------------------------------------------------------------ *)

let declare_cost st ~batched ~pages =
  Kernel.set_mmu_batching st.kern batched;
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr
         ~name:(Printf.sprintf "b%b" batched)
         ~confined_budget:(pages * 4096))
  in
  let t0 = Hw.Cycles.now st.kern.Kernel.clock in
  let base = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(pages * 4096)) in
  let cost = Hw.Cycles.now st.kern.Kernel.clock - t0 in
  Kernel.set_mmu_batching st.kern false;
  (cost, sb, base)

let test_batching_cheaper_same_result () =
  let st = make_stack () in
  let pages = 256 in
  let unbatched_cost, sb1, base1 = declare_cost st ~batched:false ~pages in
  let batched_cost, sb2, base2 = declare_cost st ~batched:true ~pages in
  Alcotest.(check bool) "batching saves EMC round trips" true
    (batched_cost < unbatched_cost);
  (* Rough shape: the unbatched path pays ~1224 cycles more per page. *)
  Alcotest.(check bool) "saves at least half the gate cost" true
    (unbatched_cost - batched_cost > pages * Hw.Cycles.Cost.emc_roundtrip / 2);
  (* Both produce fully-pinned, policy-checked mappings. *)
  List.iter
    (fun (sb, base) ->
      for i = 0 to pages - 1 do
        match
          Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb) ~addr:(base + (i * 4096))
        with
        | Some _ -> ()
        | None -> Alcotest.fail "page missing after populate"
      done)
    [ (sb1, base1); (sb2, base2) ]

let test_batch_policy_still_enforced () =
  let st = make_stack () in
  (* A batch containing a store outside any registered PTP must be refused
     atomically at that entry. *)
  match
    st.kern.Kernel.privops.Kernel.Privops.write_pte_batch
      [| (Hw.Phys_mem.addr_of_pfn 9000, Hw.Pte.make ~pfn:5 Hw.Pte.default_flags) |]
  with
  | () -> Alcotest.fail "stray batched store accepted"
  | exception Erebor.Monitor.Policy_violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Side-channel mitigations (§11)                                      *)
(* ------------------------------------------------------------------ *)

let test_mitigations_rate_limit () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.exit_rate_limit = Some 10; output_quantum = None;
        flush_on_exit = false }
  in
  for _ = 1 to 10 do
    Erebor.Mitigations.on_sandbox_exit m
  done;
  Alcotest.(check int) "under budget: no stalls" 0 (Erebor.Mitigations.stalls m);
  let t0 = Hw.Cycles.now clock in
  Erebor.Mitigations.on_sandbox_exit m;
  Alcotest.(check int) "over budget: stalled once" 1 (Erebor.Mitigations.stalls m);
  Alcotest.(check bool) "stalled to the next window" true
    (Hw.Cycles.now clock - t0 > 1_000_000_000)

let test_mitigations_quantized_output () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.exit_rate_limit = None; output_quantum = Some 10_000;
        flush_on_exit = false }
  in
  Hw.Cycles.advance clock 12_345;
  Erebor.Mitigations.release_output m;
  Alcotest.(check int) "release on the grid" 0 (Hw.Cycles.now clock mod 10_000);
  let at = Hw.Cycles.now clock in
  Erebor.Mitigations.release_output m;
  Alcotest.(check int) "already on the grid: no wait" at (Hw.Cycles.now clock)

let test_mitigations_flush_cost () =
  let clock = Hw.Cycles.clock () in
  let mem = Hw.Phys_mem.create ~frames:16 in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let m =
    Erebor.Mitigations.create ~clock ~cpu
      { Erebor.Mitigations.none with Erebor.Mitigations.flush_on_exit = true }
  in
  let t0 = Hw.Cycles.now clock in
  Erebor.Mitigations.on_sandbox_exit m;
  Alcotest.(check bool) "flush costs cycles" true (Hw.Cycles.now clock > t0);
  Alcotest.(check int) "flush counted" 1 (Erebor.Mitigations.flushes m)

let test_mitigations_wired_into_sandbox () =
  let st = make_stack () in
  Erebor.Sandbox.set_mitigations st.mgr
    { Erebor.Mitigations.exit_rate_limit = Some 2; output_quantum = None;
      flush_on_exit = false };
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr ~name:"m" ~confined_budget:(16 * 4096))
  in
  ignore (Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:4096));
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "x")));
  (* Hammer exits: the third in the window must stall. *)
  for _ = 1 to 4 do
    Erebor.Sandbox.handle_interrupt st.mgr sb (fun () -> ())
  done;
  match Erebor.Sandbox.mitigation_stats st.mgr with
  | Some (stalls, stall_cycles, _) ->
      Alcotest.(check bool) "stalled" true (stalls >= 1 && stall_cycles > 0)
  | None -> Alcotest.fail "mitigations not armed"

(* ------------------------------------------------------------------ *)
(* Huge pages + forced splitting (§7)                                  *)
(* ------------------------------------------------------------------ *)

let make_raw_env () =
  let mem = Hw.Phys_mem.create ~frames:4096 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let next = ref 1 in
  let alloc_ptp () =
    let pfn = !next in
    incr next;
    pfn
  in
  let write_pte ~pte_addr pte = Hw.Phys_mem.write_u64 mem pte_addr pte in
  let root = alloc_ptp () in
  Hw.Cpu.write_cr3 cpu ~root_pfn:root;
  (mem, cpu, alloc_ptp, write_pte, root)

let test_huge_map_translate () =
  let mem, cpu, alloc_ptp, write_pte, root = make_raw_env () in
  let vaddr = 0x4020_0000 (* 2MiB aligned *) in
  Hw.Page_table.map_huge mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
    (Hw.Pte.make ~pfn:1024 Hw.Pte.default_flags);
  (* The walk resolves different 4K offsets to different frames. *)
  (match Hw.Page_table.walk mem ~root_pfn:root vaddr with
  | Some w ->
      Alcotest.(check bool) "huge" true w.Hw.Page_table.huge;
      Alcotest.(check int) "first frame" 1024 w.Hw.Page_table.pfn
  | None -> Alcotest.fail "unmapped");
  (match Hw.Page_table.walk mem ~root_pfn:root (vaddr + (7 * 4096)) with
  | Some w -> Alcotest.(check int) "seventh frame" 1031 w.Hw.Page_table.pfn
  | None -> Alcotest.fail "unmapped");
  (* And the CPU reads/writes through it. *)
  Hw.Cpu.write_u64 cpu (vaddr + (5 * 4096) + 16) 77L;
  Alcotest.(check int64) "cpu access via huge page" 77L
    (Hw.Phys_mem.read_u64 mem (Hw.Phys_mem.addr_of_pfn 1029 + 16));
  Alcotest.check_raises "unaligned vaddr"
    (Invalid_argument "Page_table.map_huge: vaddr must be 2MiB-aligned") (fun () ->
      Hw.Page_table.map_huge mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr:0x1000
        (Hw.Pte.make ~pfn:1024 Hw.Pte.default_flags))

let test_forced_splitting () =
  let st = make_stack ~frames:65536 () in
  let guard = Erebor.Monitor.guard st.monitor in
  let alloc_ptp () = Option.get (Kernel.Alloc.alloc_zeroed st.kern.Kernel.frame_alloc st.mem) in
  (* Build a huge kernel mapping (trusted), 2 MiB worth of direct-map-ish
     memory at an unused kernel address. *)
  let vaddr = Kernel.Layout.kernel_text_base + 0x4000_0000 in
  let base_frame = 16384 (* 2MiB-aligned, free *) in
  let write_pte ~pte_addr pte =
    match Erebor.Mmu_guard.write_pte guard ~trusted:true ~pte_addr pte with
    | Ok () -> ()
    | Error e -> failwith e
  in
  Hw.Page_table.map_huge st.mem ~write_pte ~alloc_ptp
    ~root_pfn:st.kern.Kernel.kernel_root ~vaddr
    (Hw.Pte.make ~pfn:base_frame Hw.Pte.default_flags);
  (* Retag one 4K page inside it with the monitor key: forces a split. *)
  (match
     Erebor.Mmu_guard.protect_page_splitting guard
       ~root_pfn:st.kern.Kernel.kernel_root
       ~vaddr:(vaddr + (9 * 4096))
       ~key:Erebor.Policy.key_monitor ~writable:false ~alloc_ptp
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The mapping is now 4K-grained; only page 9 carries the key. *)
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root (vaddr + (9 * 4096)) with
  | Some w ->
      Alcotest.(check bool) "split" false w.Hw.Page_table.huge;
      Alcotest.(check int) "keyed" Erebor.Policy.key_monitor (Hw.Pte.pkey w.Hw.Page_table.pte);
      Alcotest.(check bool) "read-only" false (Hw.Pte.writable w.Hw.Page_table.pte);
      Alcotest.(check int) "same frame" (base_frame + 9) w.Hw.Page_table.pfn
  | None -> Alcotest.fail "mapping lost");
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root (vaddr + (8 * 4096)) with
  | Some w ->
      Alcotest.(check int) "neighbour unkeyed" 0 (Hw.Pte.pkey w.Hw.Page_table.pte);
      Alcotest.(check bool) "neighbour writable" true (Hw.Pte.writable w.Hw.Page_table.pte);
      Alcotest.(check int) "neighbour frame" (base_frame + 8) w.Hw.Page_table.pfn
  | None -> Alcotest.fail "neighbour lost");
  (* The protected page now faults on kernel writes (PKS). *)
  (match Hw.Cpu.write_u64 st.cpu (vaddr + (9 * 4096)) 1L with
  | () -> Alcotest.fail "write to keyed page succeeded"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault { pkey_violation = true; _ }) -> ()
  | exception Hw.Fault.Fault f -> Alcotest.failf "wrong fault %s" (Hw.Fault.to_string f));
  (* Neighbour pages still writable. *)
  Hw.Cpu.write_u64 st.cpu (vaddr + (8 * 4096)) 1L

let test_untrusted_huge_policy () =
  let st = make_stack ~frames:65536 () in
  let ops = st.kern.Kernel.privops in
  (* Find the PD slot for a kernel vaddr by preparing intermediates. *)
  let vaddr = Kernel.Layout.kernel_text_base + 0x6000_0000 in
  let alloc_ptp () = Option.get (Kernel.Alloc.alloc_zeroed st.kern.Kernel.frame_alloc st.mem) in
  (* Build down to the PD level with individual (checked) stores. *)
  let pt_slot =
    Hw.Page_table.prepare_leaf st.mem
      ~write_pte:(fun ~pte_addr pte -> ops.Kernel.Privops.write_pte ~pte_addr pte)
      ~alloc_ptp ~root_pfn:st.kern.Kernel.kernel_root ~vaddr
  in
  ignore pt_slot;
  (* The PD slot is the parent of the PT containing pt_slot; rebuild it. *)
  let i4, i3, i2, _ = Hw.Page_table.split vaddr in
  let l4 = st.kern.Kernel.kernel_root in
  let entry mem pfn idx = Hw.Pte.pfn (Hw.Phys_mem.read_u64 mem (Hw.Phys_mem.addr_of_pfn pfn + (8 * idx))) in
  let l3 = entry st.mem l4 i4 in
  let l2 = entry st.mem l3 i3 in
  let pd_slot = Hw.Phys_mem.addr_of_pfn l2 + (8 * i2) in
  (* Clear the interior entry first so the huge install is not a re-point. *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot Hw.Pte.empty;
  (* A huge leaf over free, aligned frames is accepted... *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot
    (Hw.Pte.set_huge (Hw.Pte.make ~pfn:32768 Hw.Pte.default_flags) true);
  (* ...but over classified frames it is refused. *)
  ops.Kernel.Privops.write_pte ~pte_addr:pd_slot Hw.Pte.empty;
  let guard = Erebor.Monitor.guard st.monitor in
  (match Erebor.Mmu_guard.classify guard ~pfn:(34816 + 5) Erebor.Mmu_guard.Monitor with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    ops.Kernel.Privops.write_pte ~pte_addr:pd_slot
      (Hw.Pte.set_huge (Hw.Pte.make ~pfn:34816 Hw.Pte.default_flags) true)
  with
  | () -> Alcotest.fail "huge leaf over monitor frame accepted"
  | exception Erebor.Monitor.Policy_violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Dynamic kernel code (§7)                                            *)
(* ------------------------------------------------------------------ *)

let test_module_loading () =
  let st = make_stack () in
  let benign = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Add (Hw.Isa.R0, Hw.Isa.R1); Hw.Isa.Ret ] in
  (match Kernel.load_module st.kern ~name:"net_filter" ~code:benign with
  | Ok base -> (
      (* Mapped read-only + executable in the kernel tree. *)
      match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root base with
      | Some w ->
          Alcotest.(check bool) "not writable" false (Hw.Pte.writable w.Hw.Page_table.pte);
          Alcotest.(check bool) "executable" false (Hw.Pte.nx w.Hw.Page_table.pte);
          Alcotest.(check bytes) "code in place" benign
            (Hw.Phys_mem.read_bytes st.mem
               (Hw.Phys_mem.addr_of_pfn w.Hw.Page_table.pfn)
               (Bytes.length benign))
      | None -> Alcotest.fail "module unmapped")
  | Error e -> Alcotest.fail e);
  (* A module smuggling a sensitive instruction is refused. *)
  let evil = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Wrmsr; Hw.Isa.Ret ] in
  match Kernel.load_module st.kern ~name:"rootkit" ~code:evil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sensitive module accepted"

let test_text_poke () =
  let st = make_stack () in
  let base =
    Result.get_ok
      (Kernel.load_module st.kern ~name:"patch_target"
         ~code:(Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Nop; Hw.Isa.Ret ]))
  in
  (* Benign patch applies (via the monitor: the page is read-only). *)
  let patch = Hw.Isa.assemble [ Hw.Isa.Cpuid ] in
  (match Kernel.poke_text st.kern ~vaddr:(base + 4) ~code:patch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Hw.Page_table.walk st.mem ~root_pfn:st.kern.Kernel.kernel_root base with
  | Some w ->
      Alcotest.(check bytes) "patched" patch
        (Hw.Phys_mem.read_bytes st.mem (Hw.Phys_mem.addr_of_pfn w.Hw.Page_table.pfn + 4) 4)
  | None -> Alcotest.fail "unmapped");
  (* Sensitive patch bytes are rejected. *)
  match Kernel.poke_text st.kern ~vaddr:(base + 4) ~code:(Hw.Isa.assemble [ Hw.Isa.Tdcall ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sensitive poke accepted"

let test_native_accepts_dynamic_code () =
  (* Without Erebor, module loading is unchecked (that's the point). *)
  let mem = Hw.Phys_mem.create ~frames:8192 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let privops = Kernel.Privops.native ~cpu ~td in
  let kern = Kernel.boot ~mem ~cpu ~td ~privops ~reserved_frames:64 ~cma_frames:1024 in
  match
    Kernel.load_module kern ~name:"anything"
      ~code:(Hw.Isa.assemble [ Hw.Isa.Wrmsr ])
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* SEV-style write-protect backend (§10, Table 7)                      *)
(* ------------------------------------------------------------------ *)

let test_wp_backend_boots () =
  let st = make_stack ~backend:Erebor.Isolation.Write_protect () in
  Alcotest.(check bool) "no PKS on this platform" false (Hw.Cr.pks st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "WP on in normal mode" true (Hw.Cr.wp st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "kernel booted" true (Erebor.Monitor.kernel st.monitor <> None)

let test_wp_protects_ptps () =
  let st = make_stack ~backend:Erebor.Isolation.Write_protect () in
  Kernel.ensure_direct_map st.kern ~pfn:st.kern.Kernel.kernel_root;
  let va = Kernel.Layout.direct_map (Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root) in
  (* Readable, like under PKS... *)
  ignore (Hw.Cpu.read_u64 st.cpu va);
  (* ...but kernel writes trip CR0.WP on the read-only mapping (a plain
     protection fault, not a pkey fault — no PKS here). *)
  (match Hw.Cpu.write_u64 st.cpu va 0xBADL with
  | () -> Alcotest.fail "PTP writable from normal mode"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault { pkey_violation = false; present = true; _ })
    -> ()
  | exception Hw.Fault.Fault f -> Alcotest.failf "wrong fault %s" (Hw.Fault.to_string f));
  (* Inside the gate, the monitor context may write (WP is cleared). *)
  let gate = Erebor.Monitor.gate st.monitor in
  Erebor.Gate.call gate (fun () ->
      let before = Hw.Phys_mem.read_u64 st.mem (Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root + 8 * 300) in
      Hw.Cpu.write_u64 st.cpu (va + (8 * 300)) before);
  (* And WP is re-asserted afterwards. *)
  Alcotest.(check bool) "WP restored after EMC" true (Hw.Cr.wp st.cpu.Hw.Cpu.cr)

let test_wp_interrupt_gate () =
  let st = make_stack ~backend:Erebor.Isolation.Write_protect () in
  let gate = Erebor.Monitor.gate st.monitor in
  let during = ref true and after = ref false in
  Erebor.Gate.call gate (fun () ->
      Erebor.Gate.interrupt_during_emc gate (fun () -> during := Hw.Cr.wp st.cpu.Hw.Cpu.cr);
      after := Hw.Cr.wp st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "WP re-asserted during IRQ" true !during;
  Alcotest.(check bool) "privilege restored after IRQ" false !after

let test_wp_sandbox_protection_holds () =
  (* The sandbox story is backend-independent. *)
  let st = make_stack ~backend:Erebor.Isolation.Write_protect () in
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr ~name:"wp-sb" ~confined_budget:(32 * 4096))
  in
  let base = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(8 * 4096)) in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "secret")));
  (* Post-data syscall kill. *)
  (match Erebor.Sandbox.handle_syscall st.mgr sb (Kernel.Syscall.Open { path = "/x" }) with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "syscall allowed");
  (* SMAP still blocks the kernel from sandbox memory. *)
  st.kern.Kernel.privops.Kernel.Privops.write_cr3
    ~root_pfn:(Erebor.Sandbox.main_task sb).Kernel.Task.root_pfn;
  match Hw.Cpu.read_u8 st.cpu base with
  | _ -> Alcotest.fail "kernel read sandbox memory"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault _) -> ()

(* ------------------------------------------------------------------ *)
(* Warm-start pool (§9.2)                                              *)
(* ------------------------------------------------------------------ *)

let test_pool_warm_vs_cold () =
  let st = make_stack ~cma_frames:16384 () in
  let clock = st.kern.Kernel.clock in
  let pool =
    Result.get_ok
      (Sim.Pool.create ~mgr:st.mgr ~name_prefix:"warm" ~heap_bytes:(128 * 4096)
         ~threads:2 ~size:2 ())
  in
  Alcotest.(check int) "two ready" 2 (Sim.Pool.ready pool);
  (* Warm acquisition is (virtually) free. *)
  let t0 = Hw.Cycles.now clock in
  let entry = Result.get_ok (Sim.Pool.acquire pool) in
  Alcotest.(check int) "warm hit costs nothing" t0 (Hw.Cycles.now clock);
  Alcotest.(check int) "one left" 1 (Sim.Pool.ready pool);
  (* The warm sandbox is immediately usable for a client session. *)
  ignore
    (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr entry.Sim.Pool.sb (Bytes.of_string "q")));
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  (* Pool empty: the next acquire cold-boots, paying init now. *)
  let t1 = Hw.Cycles.now clock in
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  Alcotest.(check bool) "cold boot pays init" true (Hw.Cycles.now clock - t1 > 100_000);
  Alcotest.(check int) "hits" 2 (Sim.Pool.warm_hits pool);
  Alcotest.(check int) "colds" 1 (Sim.Pool.cold_boots pool);
  (* Refill. *)
  (match Sim.Pool.prewarm pool 3 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "refilled" 3 (Sim.Pool.ready pool)

(* ------------------------------------------------------------------ *)
(* Isolation backends + multi-tenant density                           *)
(* ------------------------------------------------------------------ *)

(* Denial records of one category on the stack's audit chain. *)
let denies st ~category =
  List.length
    (List.filter
       (fun r ->
         r.Obs.Audit.category = category && r.Obs.Audit.verdict = Obs.Audit.Deny)
       (Obs.Audit.records st.audit))

let make_tenant st ~name ~pages =
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox st.mgr ~name ~confined_budget:(pages * 4096))
  in
  let base =
    Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(pages * 4096))
  in
  (sb, base)

let tenant_pfn st sb addr =
  Option.get
    (Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb) ~addr)

(* A compromised-kernel context: a Normal task with one mapped anon page,
   whose leaf-PTE slot the attacker then abuses with raw privop stores. *)
let attacker_slot st =
  let atk = Kernel.create_task st.kern ~name:"atk" ~kind:Kernel.Task.Normal in
  let addr =
    Result.get_ok
      (Kernel.mmap st.kern atk ~len:4096 ~prot:Kernel.Vma.prot_rw
         ~kind:Kernel.Vma.Anon)
  in
  Result.get_ok (Kernel.handle_page_fault st.kern atk ~addr ~kind:Hw.Fault.Write);
  let leaf =
    Option.get
      (Hw.Page_table.leaf_addr st.mem ~root_pfn:atk.Kernel.Task.root_pfn addr)
  in
  (atk, addr, leaf)

let expect_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: monitor accepted the mapping" name
  | exception Erebor.Monitor.Policy_violation _ -> ()

(* Tenant A (and the outside kernel) must not be able to map tenant B's
   confined frames, on either backend, and every refusal must land on the
   audit chain. *)
let test_cross_tenant_map_denied backend () =
  let st = make_stack ~backend () in
  let a, base_a = make_tenant st ~name:"tenant-a" ~pages:4 in
  let b, base_b = make_tenant st ~name:"tenant-b" ~pages:4 in
  let pfn_b = tenant_pfn st b base_b in
  let write_pte = st.kern.Kernel.privops.Kernel.Privops.write_pte in
  let before = denies st ~category:"mmu" in
  (* From outside any sandbox. *)
  let _atk, _addr, leaf = attacker_slot st in
  expect_violation "outside map of confined frame" (fun () ->
      write_pte ~pte_addr:leaf
        (Hw.Pte.make ~pfn:pfn_b { Hw.Pte.default_flags with user = true }));
  (* From sibling tenant A's own tree: repoint A's confined leaf at B. *)
  let leaf_a =
    Option.get
      (Hw.Page_table.leaf_addr st.mem
         ~root_pfn:(Erebor.Sandbox.main_task a).Kernel.Task.root_pfn base_a)
  in
  expect_violation "sibling map of confined frame" (fun () ->
      write_pte ~pte_addr:leaf_a
        (Hw.Pte.make ~pfn:pfn_b { Hw.Pte.default_flags with user = true }));
  Alcotest.(check int) "both denials audited" (before + 2)
    (denies st ~category:"mmu");
  Alcotest.(check bool) "guard counted them" true
    (Erebor.Mmu_guard.denied_count (Erebor.Monitor.guard st.monitor) >= 2);
  (* B is unharmed: still owner-classified and readable. *)
  Alcotest.(check bool) "b still owns its frame" true
    (Erebor.Mmu_guard.class_of (Erebor.Monitor.guard st.monitor) pfn_b
    = Erebor.Mmu_guard.Confined { owner = Erebor.Sandbox.id b })

(* TME-MK: an untrusted PTE that names a nonzero key id the monitor did not
   stamp is a forgery and must be rejected before class dispatch. *)
let test_keyid_forgery_denied () =
  let st = make_stack ~backend:Erebor.Isolation.Tme_mk () in
  let b, base_b = make_tenant st ~name:"tenant-b" ~pages:4 in
  (* The legitimate install path DID stamp B's leaf with B's key id... *)
  let leaf_b =
    Option.get
      (Hw.Page_table.leaf_addr st.mem
         ~root_pfn:(Erebor.Sandbox.main_task b).Kernel.Task.root_pfn base_b)
  in
  Alcotest.(check int) "confined leaf stamped with owner key"
    (Erebor.Isolation.keyid_of_owner (Erebor.Sandbox.id b))
    (Hw.Pte.keyid (Hw.Phys_mem.read_u64 st.mem leaf_b));
  (* ...but an untrusted store may not present a key id of its own, even on
     the attacker's very own frame. *)
  let atk, addr, leaf = attacker_slot st in
  let own_pfn = Option.get (Kernel.resolve_pfn st.kern atk ~addr) in
  let before = denies st ~category:"mmu" in
  expect_violation "forged key id" (fun () ->
      st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf
        (Hw.Pte.set_keyid
           (Hw.Pte.make ~pfn:own_pfn { Hw.Pte.default_flags with user = true })
           (Erebor.Isolation.keyid_of_owner (Erebor.Sandbox.id b))));
  Alcotest.(check int) "forgery audited" (before + 1) (denies st ~category:"mmu")

(* TME-MK fill-time checks at the hardware layer: wrong key id and inactive
   key both fault with pkey_violation set and audit as "tme" denials; the
   matching active key fills and is charged as a keyed fill. *)
let test_tme_fill_faults () =
  let mem = Hw.Phys_mem.create ~frames:4096 in
  let clock = Hw.Cycles.clock () in
  let obs = Obs.Emitter.create () in
  let audit = Obs.Audit.create ~key:hw_key in
  Obs.Emitter.set_audit obs (Some audit);
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 ~obs () in
  let tme = Hw.Tme.create ~frames:4096 in
  cpu.Hw.Cpu.tme <- Some tme;
  let next = ref 1 in
  let alloc_ptp () =
    let p = !next in
    incr next;
    p
  in
  let write_pte ~pte_addr pte = Hw.Phys_mem.write_u64 mem pte_addr pte in
  let root = alloc_ptp () in
  Hw.Cpu.write_cr3 cpu ~root_pfn:root;
  let data_pfn = 128 and vaddr = 0x5000_0000 in
  Hw.Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
    (Hw.Pte.make ~pfn:data_pfn Hw.Pte.default_flags);
  Hw.Tme.tag tme ~pfn:data_pfn 3;
  (* Key-0 PTE over a key-3 frame: Wrong_key. *)
  (match Hw.Cpu.read_u8 cpu vaddr with
  | _ -> Alcotest.fail "wrong-key fill accepted"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault pf) ->
      Alcotest.(check bool) "wrong key is a pkey fault" true pf.Hw.Fault.pkey_violation);
  (* Correct key id but the tenant context is not active: Inactive_key. *)
  let leaf = Option.get (Hw.Page_table.leaf_addr mem ~root_pfn:root vaddr) in
  Hw.Phys_mem.write_u64 mem leaf
    (Hw.Pte.set_keyid (Hw.Pte.make ~pfn:data_pfn Hw.Pte.default_flags) 3);
  (match Hw.Cpu.read_u8 cpu vaddr with
  | _ -> Alcotest.fail "inactive-key fill accepted"
  | exception Hw.Fault.Fault (Hw.Fault.Page_fault pf) ->
      Alcotest.(check bool) "inactive key is a pkey fault" true pf.Hw.Fault.pkey_violation);
  (* Activate the key: the fill succeeds and is charged. *)
  Hw.Tme.set_active tme 3;
  let t0 = Hw.Cycles.now clock in
  ignore (Hw.Cpu.read_u8 cpu vaddr);
  Alcotest.(check bool) "keyed fill charges the key load" true
    (Hw.Cycles.now clock - t0 >= Hw.Cycles.Cost.tme_key_load);
  Alcotest.(check int) "two integrity faults" 2 (Hw.Tme.faults tme);
  Alcotest.(check bool) "keyed fills counted" true (Hw.Tme.keyed_fills tme >= 1);
  Alcotest.(check int) "both faults audited as tme denials" 2
    (List.length
       (List.filter
          (fun r ->
            r.Obs.Audit.category = "tme" && r.Obs.Audit.verdict = Obs.Audit.Deny)
          (Obs.Audit.records audit)))

(* Sealed common frames may be shared read-only across the CVM but never
   mapped writable from outside a sandbox. *)
let test_sealed_common_write_denied backend () =
  let st = make_stack ~backend () in
  let sb, _base = make_tenant st ~name:"tenant" ~pages:4 in
  let caddr =
    Result.get_ok
      (Erebor.Sandbox.attach_common st.mgr sb ~name:"corpus" ~size:(4 * 4096))
  in
  ignore
    (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "q")));
  (* Demand-fault the first common page in so it has a backing frame. *)
  (match Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb) ~addr:caddr with
  | Some _ -> ()
  | None ->
      Result.get_ok
        (Erebor.Sandbox.page_fault st.mgr sb ~addr:caddr ~kind:Hw.Fault.Read));
  let cpfn = tenant_pfn st sb caddr in
  let _atk, _addr, leaf = attacker_slot st in
  let before = denies st ~category:"mmu" in
  expect_violation "writable map of sealed common frame" (fun () ->
      st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf
        (Hw.Pte.make ~pfn:cpfn { Hw.Pte.default_flags with user = true }));
  Alcotest.(check int) "denial audited" (before + 1) (denies st ~category:"mmu");
  (* The read-only alias — the legitimate sharing mode — is still accepted. *)
  st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf
    (Hw.Pte.make ~pfn:cpfn
       { Hw.Pte.default_flags with user = true; writable = false })

(* Terminating one tenant scrubs exactly that tenant: siblings keep their
   frames, their translations, their counters and their key tags. *)
let test_teardown_leaves_siblings backend () =
  let st = make_stack ~backend () in
  let guard = Erebor.Monitor.guard st.monitor in
  let a, base_a = make_tenant st ~name:"a" ~pages:4 in
  let b, base_b = make_tenant st ~name:"b" ~pages:4 in
  let _c, _base_c = make_tenant st ~name:"c" ~pages:4 in
  let secret = Bytes.of_string "SIBLING-SECRET" in
  Erebor.Sandbox.write_sandbox_bytes st.mgr b ~addr:base_b secret;
  let pfn_a = tenant_pfn st a base_a and pfn_b = tenant_pfn st b base_b in
  Hw.Phys_mem.write_u64 st.mem (Hw.Phys_mem.addr_of_pfn pfn_a) 0xDEADL;
  (if backend = Erebor.Isolation.Tme_mk then
     let tme = Option.get st.cpu.Hw.Cpu.tme in
     Alcotest.(check int) "b's frame tagged with b's key"
       (Erebor.Isolation.keyid_of_owner (Erebor.Sandbox.id b))
       (Hw.Tme.tag_of tme ~pfn:pfn_b));
  let stats_b = Erebor.Sandbox.exit_stats b in
  let a_root = (Erebor.Sandbox.main_task a).Kernel.Task.root_pfn in
  Erebor.Sandbox.terminate st.mgr a;
  (* a: declassified, zeroed, translation gone, key tag cleared. *)
  Alcotest.(check bool) "a's frame declassified" true
    (Erebor.Mmu_guard.class_of guard pfn_a = Erebor.Mmu_guard.Free);
  Alcotest.(check int64) "a's frame scrubbed" 0L
    (Hw.Phys_mem.read_u64 st.mem (Hw.Phys_mem.addr_of_pfn pfn_a));
  Alcotest.(check bool) "no stale translation for a" true
    (Hw.Page_table.walk st.mem ~root_pfn:a_root base_a = None);
  (if backend = Erebor.Isolation.Tme_mk then
     let tme = Option.get st.cpu.Hw.Cpu.tme in
     Alcotest.(check int) "a's key tag cleared" 0 (Hw.Tme.tag_of tme ~pfn:pfn_a));
  (* b: untouched in every observable way. *)
  Alcotest.(check bool) "b still owns its frame" true
    (Erebor.Mmu_guard.class_of guard pfn_b
    = Erebor.Mmu_guard.Confined { owner = Erebor.Sandbox.id b });
  Alcotest.(check int) "b's translation intact" pfn_b (tenant_pfn st b base_b);
  Alcotest.(check bytes) "b's data intact" secret
    (Erebor.Sandbox.read_sandbox_bytes st.mgr b ~addr:base_b
       ~len:(Bytes.length secret));
  Alcotest.(check bool) "b's exit stats untouched" true
    (Erebor.Sandbox.exit_stats b = stats_b);
  (if backend = Erebor.Isolation.Tme_mk then
     let tme = Option.get st.cpu.Hw.Cpu.tme in
     Alcotest.(check int) "b's key tag intact"
       (Erebor.Isolation.keyid_of_owner (Erebor.Sandbox.id b))
       (Hw.Tme.tag_of tme ~pfn:pfn_b));
  (* b still serves: a user-mode access through the MMU (refilled after the
     scrub's TLB flushes) reads the right bytes. *)
  st.kern.Kernel.privops.Kernel.Privops.write_cr3
    ~root_pfn:(Erebor.Sandbox.main_task b).Kernel.Task.root_pfn;
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  let byte = Hw.Cpu.read_u8 st.cpu base_b in
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  Alcotest.(check int) "b serves after sibling teardown" (Char.code 'S') byte;
  (* Per-sandbox accounting still reports every tenant. *)
  Alcotest.(check int) "exit_stats_all rows" 3
    (List.length (Erebor.Sandbox.exit_stats_all st.mgr))

(* The EMC gate's fast path must stay allocation-free under backend
   dispatch — the first-class-module indirection may not cost a box per
   call on either backend. *)
let test_gate_call_no_alloc backend () =
  let st = make_stack ~backend () in
  let gate = Erebor.Monitor.gate st.monitor in
  ignore (Erebor.Gate.call gate (fun () -> 0));
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Erebor.Gate.call gate (fun () -> 0))
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool) "gate dispatch allocation-free" true (allocated < 256.0)

let () =
  Alcotest.run "extensions"
    [
      ( "batched mmu (9.1)",
        [
          Alcotest.test_case "cheaper, same result" `Quick test_batching_cheaper_same_result;
          Alcotest.test_case "policy in batches" `Quick test_batch_policy_still_enforced;
        ] );
      ( "mitigations (11)",
        [
          Alcotest.test_case "rate limit" `Quick test_mitigations_rate_limit;
          Alcotest.test_case "quantized output" `Quick test_mitigations_quantized_output;
          Alcotest.test_case "flush cost" `Quick test_mitigations_flush_cost;
          Alcotest.test_case "wired into sandbox" `Quick test_mitigations_wired_into_sandbox;
        ] );
      ( "huge pages (7)",
        [
          Alcotest.test_case "map/translate" `Quick test_huge_map_translate;
          Alcotest.test_case "forced splitting" `Quick test_forced_splitting;
          Alcotest.test_case "untrusted huge policy" `Quick test_untrusted_huge_policy;
        ] );
      ( "dynamic code (7)",
        [
          Alcotest.test_case "module loading" `Quick test_module_loading;
          Alcotest.test_case "text_poke" `Quick test_text_poke;
          Alcotest.test_case "native unchecked" `Quick test_native_accepts_dynamic_code;
        ] );
      ( "sev write-protect backend (10)",
        [
          Alcotest.test_case "boots without PKS" `Quick test_wp_backend_boots;
          Alcotest.test_case "WP protects PTPs" `Quick test_wp_protects_ptps;
          Alcotest.test_case "interrupt gate" `Quick test_wp_interrupt_gate;
          Alcotest.test_case "sandbox protection holds" `Quick test_wp_sandbox_protection_holds;
        ] );
      ( "warm pool (9.2)",
        [ Alcotest.test_case "warm vs cold" `Quick test_pool_warm_vs_cold ] );
      ( "isolation backends + tenancy",
        [
          Alcotest.test_case "cross-tenant map denied (pks)" `Quick
            (test_cross_tenant_map_denied Erebor.Isolation.Pks);
          Alcotest.test_case "cross-tenant map denied (tmemk)" `Quick
            (test_cross_tenant_map_denied Erebor.Isolation.Tme_mk);
          Alcotest.test_case "key-id forgery denied" `Quick test_keyid_forgery_denied;
          Alcotest.test_case "tme fill faults" `Quick test_tme_fill_faults;
          Alcotest.test_case "sealed common write denied (pks)" `Quick
            (test_sealed_common_write_denied Erebor.Isolation.Pks);
          Alcotest.test_case "sealed common write denied (tmemk)" `Quick
            (test_sealed_common_write_denied Erebor.Isolation.Tme_mk);
          Alcotest.test_case "teardown spares siblings (pks)" `Quick
            (test_teardown_leaves_siblings Erebor.Isolation.Pks);
          Alcotest.test_case "teardown spares siblings (tmemk)" `Quick
            (test_teardown_leaves_siblings Erebor.Isolation.Tme_mk);
          Alcotest.test_case "gate dispatch no-alloc (pks)" `Quick
            (test_gate_call_no_alloc Erebor.Isolation.Pks);
          Alcotest.test_case "gate dispatch no-alloc (tmemk)" `Quick
            (test_gate_call_no_alloc Erebor.Isolation.Tme_mk);
        ] );
    ]
