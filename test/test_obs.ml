(* Tests for the lib/obs event subsystem: sinks in isolation, counter-sink
   equivalence against the legacy per-layer mirrors on every setting,
   MMU-guard denial accounting, and golden-trace determinism. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let small_spec ?(sandboxed = true) ?(body = fun _ -> ()) ?(common = None) () =
  {
    Sim.Machine.name = "obs-test";
    sandboxed;
    timer_hz = 1000;
    init_compute = 0;
    confined_bytes = 32 * 4096;
    nominal_confined_mb = 1;
    common;
    threads = 2;
    contention = 0.2;
    input = Bytes.of_string "obs test input";
    output_bucket = 256;
    body;
  }

(* Exercises most event sources: compute (timer IRQs + context switches),
   demand faults, host I/O (#VE + proxy), services, cpuid, sync, PTE churn
   and the channel echo. *)
let rich_body (ops : Sim.Machine.ops) =
  ops.Sim.Machine.compute 10_000_000;
  ops.Sim.Machine.cold_fault ();
  ops.Sim.Machine.host_io ~bytes:4096;
  ops.Sim.Machine.service ();
  ops.Sim.Machine.cpuid ();
  ops.Sim.Machine.sync_op ~contended:false;
  ops.Sim.Machine.pte_churn ~n:3;
  let input = ops.Sim.Machine.recv_input () in
  ops.Sim.Machine.send_output (Bytes.cat (Bytes.of_string "echo:") input)

(* ------------------------------------------------------------------ *)
(* Sinks in isolation                                                  *)
(* ------------------------------------------------------------------ *)

let test_emitter_fanout () =
  let obs = Obs.Emitter.create () in
  let a = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let b = Obs.Counter.attach obs (Obs.Counter.create ()) in
  Alcotest.(check int) "two sinks" 2 (Obs.Emitter.sink_count obs);
  Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:1 ~arg:0;
  Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:2 ~arg:1;
  Obs.Emitter.emit obs Obs.Trace.Page_fault ~ts:3 ~arg:0x1000;
  List.iter
    (fun c ->
      Alcotest.(check int) "syscalls" 2 (Obs.Counter.count c Obs.Trace.Syscall);
      Alcotest.(check int) "faults" 1 (Obs.Counter.count c Obs.Trace.Page_fault);
      Alcotest.(check int) "total" 3 (Obs.Counter.total c);
      Alcotest.(check int) "arg sum" 1 (Obs.Counter.arg_sum c Obs.Trace.Syscall))
    [ a; b ];
  Obs.Counter.reset a;
  Alcotest.(check int) "reset" 0 (Obs.Counter.total a);
  Alcotest.(check int) "other sink untouched" 3 (Obs.Counter.total b)

let test_ring_wraparound () =
  let obs = Obs.Emitter.create () in
  let ring = Obs.Ring.attach obs (Obs.Ring.create ~capacity:8) in
  for i = 0 to 19 do
    Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:(100 + i) ~arg:i
  done;
  Alcotest.(check int) "capacity" 8 (Obs.Ring.capacity ring);
  Alcotest.(check int) "length" 8 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped" 12 (Obs.Ring.dropped ring);
  Alcotest.(check (list int)) "last 8, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Obs.Trace.arg) (Obs.Ring.to_list ring));
  Obs.Ring.clear ring;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped reset" 0 (Obs.Ring.dropped ring);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

let test_histogram_bucketing () =
  (* bucket b covers [2^(b-1), 2^b - 1]; bucket 0 is exactly 0. *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
        (Obs.Histogram.bucket_of v))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1024, 11) ];
  let obs = Obs.Emitter.create () in
  let hist = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  let values = [ 0; 1; 1; 2; 3; 4; 100; 128_081 ] in
  List.iteri
    (fun i v -> Obs.Emitter.emit obs Obs.Trace.Emc_entry ~ts:i ~arg:v)
    values;
  Alcotest.(check int) "count" (List.length values)
    (Obs.Histogram.count hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "sum"
    (List.fold_left ( + ) 0 values)
    (Obs.Histogram.sum hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "max" 128_081
    (Obs.Histogram.max_value hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "bucket [1,1] holds both ones" 2
    (Obs.Histogram.bucket_count hist Obs.Trace.Emc_entry ~value:1);
  Alcotest.(check int) "bucket [2,3]" 2
    (Obs.Histogram.bucket_count hist Obs.Trace.Emc_entry ~value:3);
  let buckets = Obs.Histogram.buckets hist Obs.Trace.Emc_entry in
  Alcotest.(check int) "bucket counts total" (List.length values)
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets);
  List.iter
    (fun (lo, hi, n) ->
      Alcotest.(check bool) "bucket bounds ordered" true (lo <= hi && n > 0))
    buckets;
  Alcotest.(check int) "other kind empty" 0
    (Obs.Histogram.count hist Obs.Trace.Syscall)

let test_with_span () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  let clock = ref 10 in
  let result =
    Obs.with_span obs
      ~now:(fun () -> !clock)
      Obs.Trace.Run
      (fun () ->
        clock := 25;
        42)
  in
  Alcotest.(check int) "body result" 42 result;
  match Obs.Chrome.events rec_ with
  | [ b; e ] ->
      Alcotest.(check bool) "begin" true
        (b.Obs.Trace.kind = Obs.Trace.Span_begin Obs.Trace.Run
        && b.Obs.Trace.ts = 10);
      Alcotest.(check bool) "end" true
        (e.Obs.Trace.kind = Obs.Trace.Span_end Obs.Trace.Run
        && e.Obs.Trace.ts = 25)
  | evs -> Alcotest.failf "expected 2 span events, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Counter-sink equivalence with the legacy per-layer mirrors          *)
(* ------------------------------------------------------------------ *)

(* The machine snapshot is derived exclusively from the counter sink on the
   event bus; the refactor kept the original per-layer counters (kernel
   stats record, scheduler switch count, gate/guard counts) as mirrors.
   They must agree exactly, on every setting, over a body that exercises
   every event source. *)
let test_counter_equivalence () =
  List.iter
    (fun setting ->
      let name field = Sim.Config.name setting ^ " " ^ field in
      let m =
        Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~setting ()
      in
      let r = Sim.Machine.run m (small_spec ~body:rich_body ()) in
      Alcotest.(check bool) (name "not killed") true (r.Sim.Machine.killed = None);
      let snap = Sim.Machine.snapshot m in
      let kern = Sim.Machine.kern m in
      let st = kern.Kernel.stats in
      Alcotest.(check int) (name "page faults") st.Kernel.page_faults
        snap.Sim.Stats.page_faults;
      Alcotest.(check int) (name "syscalls") st.Kernel.syscalls
        snap.Sim.Stats.syscalls;
      Alcotest.(check int) (name "timer irqs") st.Kernel.timer_irqs
        snap.Sim.Stats.timer_irqs;
      Alcotest.(check int) (name "ve exits") st.Kernel.ve_exits
        snap.Sim.Stats.ve_exits;
      Alcotest.(check int) (name "context switches")
        (Kernel.Sched.switches kern.Kernel.sched)
        snap.Sim.Stats.context_switches;
      (match Sim.Machine.manager m with
      | Some mgr ->
          let mon = Erebor.Sandbox.manager_monitor mgr in
          let es = Erebor.Monitor.emc_stats mon in
          Alcotest.(check int) (name "emc total")
            (Erebor.Monitor.emc_total mon)
            snap.Sim.Stats.emc_total;
          Alcotest.(check int) (name "emc mmu") es.Erebor.Monitor.mmu
            snap.Sim.Stats.emc_mmu;
          Alcotest.(check int) (name "emc cr") es.Erebor.Monitor.cr
            snap.Sim.Stats.emc_cr;
          Alcotest.(check int) (name "emc msr") es.Erebor.Monitor.msr
            snap.Sim.Stats.emc_msr;
          Alcotest.(check int) (name "emc idt") es.Erebor.Monitor.idt
            snap.Sim.Stats.emc_idt;
          Alcotest.(check int) (name "emc smap") es.Erebor.Monitor.smap
            snap.Sim.Stats.emc_smap;
          Alcotest.(check int) (name "emc ghci") es.Erebor.Monitor.ghci
            snap.Sim.Stats.emc_ghci;
          Alcotest.(check int) (name "mmu denies")
            (Erebor.Mmu_guard.denied_count (Erebor.Monitor.guard mon))
            snap.Sim.Stats.mmu_denies
      | None ->
          Alcotest.(check int) (name "no monitor: emc total") 0
            snap.Sim.Stats.emc_total;
          Alcotest.(check int) (name "no monitor: denies") 0
            snap.Sim.Stats.mmu_denies);
      (* The counter sink exposed by the machine is the snapshot's source. *)
      let c = Sim.Machine.counters m in
      Alcotest.(check int) (name "counter is source")
        (Obs.Counter.count c Obs.Trace.Page_fault)
        snap.Sim.Stats.page_faults)
    Sim.Config.all

(* Satellite: the new emc_idt snapshot field really counts lidt services
   (machine boot under Erebor programs the IDT through the monitor). *)
let test_emc_idt_counted () =
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let kern = Sim.Machine.kern m in
  for _ = 1 to 3 do
    kern.Kernel.privops.Kernel.Privops.lidt (Hw.Idt.create ())
  done;
  let snap = Sim.Machine.snapshot m in
  let mon =
    Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
  in
  let es = Erebor.Monitor.emc_stats mon in
  Alcotest.(check int) "idt mirrors monitor" es.Erebor.Monitor.idt
    snap.Sim.Stats.emc_idt;
  Alcotest.(check int) "idt services counted" 3 snap.Sim.Stats.emc_idt;
  (* And it participates in diff/pp. *)
  let d = Sim.Stats.diff ~before:Sim.Stats.zero ~after:snap in
  Alcotest.(check int) "diff keeps idt" snap.Sim.Stats.emc_idt
    d.Sim.Stats.emc_idt;
  let rendered = Fmt.str "%a" Sim.Stats.pp snap in
  Alcotest.(check bool) "pp reports denies" true
    (contains ~sub:"denies=" rendered)

(* Satellite: MMU-guard denial counts surface in the snapshot, so security
   tests can assert exact counts. A benign run must show zero; every
   policy-violating PTE store afterwards must count exactly once. *)
let test_denial_counts () =
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let snap0 = Sim.Machine.snapshot m in
  Alcotest.(check int) "benign run: zero denials" 0 snap0.Sim.Stats.mmu_denies;
  let kern = Sim.Machine.kern m in
  let denied = ref 0 in
  for i = 0 to 4 do
    (* Frames far above anything the kernel registered as page tables:
       stores there must be rejected by the guard. *)
    let pte_addr = Hw.Phys_mem.addr_of_pfn (20_000 + i) + 8 in
    let pte = Hw.Pte.make ~pfn:(100 + i) Hw.Pte.default_flags in
    match kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr pte with
    | () -> ()
    | exception Erebor.Monitor.Policy_violation _ -> incr denied
  done;
  Alcotest.(check int) "all stores denied" 5 !denied;
  let snap1 = Sim.Machine.snapshot m in
  Alcotest.(check int) "denials surfaced exactly" 5 snap1.Sim.Stats.mmu_denies;
  let mon =
    Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
  in
  Alcotest.(check int) "matches guard mirror"
    (Erebor.Mmu_guard.denied_count (Erebor.Monitor.guard mon))
    snap1.Sim.Stats.mmu_denies

(* ------------------------------------------------------------------ *)
(* Golden-trace determinism and Chrome export                          *)
(* ------------------------------------------------------------------ *)

let traced_run () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  let m =
    Sim.Machine.create ~obs ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  (m, rec_)

let test_golden_trace_determinism () =
  let _, r1 = traced_run () in
  let _, r2 = traced_run () in
  Alcotest.(check bool) "non-empty" true (Obs.Chrome.length r1 > 0);
  Alcotest.(check int) "same length" (Obs.Chrome.length r1)
    (Obs.Chrome.length r2);
  Alcotest.(check bool) "byte-identical event stream" true
    (Obs.Chrome.events r1 = Obs.Chrome.events r2);
  Alcotest.(check bool) "identical chrome JSON" true
    (String.equal (Obs.Chrome.to_chrome_json r1) (Obs.Chrome.to_chrome_json r2))

let test_trace_counts_match_snapshot () =
  let m, rec_ = traced_run () in
  let snap = Sim.Machine.snapshot m in
  let count k =
    let n = ref 0 in
    Obs.Chrome.iter rec_ (fun e -> if e.Obs.Trace.kind = k then incr n);
    !n
  in
  List.iter
    (fun (label, k, expected) ->
      Alcotest.(check int) label expected (count k))
    [
      ("page faults", Obs.Trace.Page_fault, snap.Sim.Stats.page_faults);
      ("syscalls", Obs.Trace.Syscall, snap.Sim.Stats.syscalls);
      ("timer irqs", Obs.Trace.Timer_irq, snap.Sim.Stats.timer_irqs);
      ("ve exits", Obs.Trace.Ve_exit, snap.Sim.Stats.ve_exits);
      ("ctx switches", Obs.Trace.Context_switch, snap.Sim.Stats.context_switches);
      ("emc entries", Obs.Trace.Emc_entry, snap.Sim.Stats.emc_total);
      ("emc mmu", Obs.Trace.emc_mmu, snap.Sim.Stats.emc_mmu);
      ("emc ghci", Obs.Trace.emc_ghci, snap.Sim.Stats.emc_ghci);
      ("denies", Obs.Trace.Mmu_deny, snap.Sim.Stats.mmu_denies);
    ];
  (* Boot / attest / run spans all appear, balanced. *)
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Obs.Trace.phase_name phase ^ " span balanced")
        true
        (count (Obs.Trace.span_begin phase) = count (Obs.Trace.span_end phase)
        && count (Obs.Trace.span_begin phase) > 0))
    [ Obs.Trace.Boot; Obs.Trace.Attest; Obs.Trace.Run ];
  let json = Obs.Chrome.to_chrome_json rec_ in
  Alcotest.(check bool) "chrome JSON object" true
    (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "has traceEvents" true
    (contains ~sub:"\"traceEvents\"" json);
  let jsonl = Obs.Chrome.to_jsonl rec_ in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one JSONL line per event" (Obs.Chrome.length rec_)
    (List.length lines)

let () =
  Alcotest.run "obs"
    [
      ( "sinks",
        [
          Alcotest.test_case "emitter fanout" `Quick test_emitter_fanout;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "with_span" `Quick test_with_span;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "counter sink mirrors legacy stats" `Quick
            test_counter_equivalence;
          Alcotest.test_case "emc_idt counted" `Quick test_emc_idt_counted;
          Alcotest.test_case "denial counts exact" `Quick test_denial_counts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden-trace determinism" `Quick
            test_golden_trace_determinism;
          Alcotest.test_case "trace counts match snapshot" `Quick
            test_trace_counts_match_snapshot;
        ] );
    ]
