(* Tests for the lib/obs event subsystem: sinks in isolation, counter-sink
   equivalence against the legacy per-layer mirrors on every setting,
   MMU-guard denial accounting, and golden-trace determinism. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let small_spec ?(sandboxed = true) ?(body = fun _ -> ()) ?(common = None) () =
  {
    Sim.Machine.name = "obs-test";
    sandboxed;
    timer_hz = 1000;
    init_compute = 0;
    confined_bytes = 32 * 4096;
    nominal_confined_mb = 1;
    common;
    threads = 2;
    contention = 0.2;
    input = Bytes.of_string "obs test input";
    output_bucket = 256;
    body;
  }

(* Exercises most event sources: compute (timer IRQs + context switches),
   demand faults, host I/O (#VE + proxy), services, cpuid, sync, PTE churn
   and the channel echo. *)
let rich_body (ops : Sim.Machine.ops) =
  ops.Sim.Machine.compute 10_000_000;
  ops.Sim.Machine.cold_fault ();
  ops.Sim.Machine.host_io ~bytes:4096;
  ops.Sim.Machine.service ();
  ops.Sim.Machine.cpuid ();
  ops.Sim.Machine.sync_op ~contended:false;
  ops.Sim.Machine.pte_churn ~n:3;
  let input = ops.Sim.Machine.recv_input () in
  ops.Sim.Machine.send_output (Bytes.cat (Bytes.of_string "echo:") input)

(* ------------------------------------------------------------------ *)
(* Sinks in isolation                                                  *)
(* ------------------------------------------------------------------ *)

let test_emitter_fanout () =
  let obs = Obs.Emitter.create () in
  let a = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let b = Obs.Counter.attach obs (Obs.Counter.create ()) in
  Alcotest.(check int) "two sinks" 2 (Obs.Emitter.sink_count obs);
  Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:1 ~arg:0;
  Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:2 ~arg:1;
  Obs.Emitter.emit obs Obs.Trace.Page_fault ~ts:3 ~arg:0x1000;
  List.iter
    (fun c ->
      Alcotest.(check int) "syscalls" 2 (Obs.Counter.count c Obs.Trace.Syscall);
      Alcotest.(check int) "faults" 1 (Obs.Counter.count c Obs.Trace.Page_fault);
      Alcotest.(check int) "total" 3 (Obs.Counter.total c);
      Alcotest.(check int) "arg sum" 1 (Obs.Counter.arg_sum c Obs.Trace.Syscall))
    [ a; b ];
  Obs.Counter.reset a;
  Alcotest.(check int) "reset" 0 (Obs.Counter.total a);
  Alcotest.(check int) "other sink untouched" 3 (Obs.Counter.total b)

let test_ring_wraparound () =
  let obs = Obs.Emitter.create () in
  let ring = Obs.Ring.attach obs (Obs.Ring.create ~capacity:8) in
  for i = 0 to 19 do
    Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:(100 + i) ~arg:i
  done;
  Alcotest.(check int) "capacity" 8 (Obs.Ring.capacity ring);
  Alcotest.(check int) "length" 8 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped" 12 (Obs.Ring.dropped ring);
  Alcotest.(check (list int)) "last 8, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Obs.Trace.arg) (Obs.Ring.to_list ring));
  Obs.Ring.clear ring;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped reset" 0 (Obs.Ring.dropped ring);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

let test_histogram_bucketing () =
  (* bucket b covers [2^(b-1), 2^b - 1]; bucket 0 is exactly 0. *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
        (Obs.Histogram.bucket_of v))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1024, 11) ];
  let obs = Obs.Emitter.create () in
  let hist = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  let values = [ 0; 1; 1; 2; 3; 4; 100; 128_081 ] in
  List.iteri
    (fun i v -> Obs.Emitter.emit obs Obs.Trace.Emc_entry ~ts:i ~arg:v)
    values;
  Alcotest.(check int) "count" (List.length values)
    (Obs.Histogram.count hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "sum"
    (List.fold_left ( + ) 0 values)
    (Obs.Histogram.sum hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "max" 128_081
    (Obs.Histogram.max_value hist Obs.Trace.Emc_entry);
  Alcotest.(check int) "bucket [1,1] holds both ones" 2
    (Obs.Histogram.bucket_count hist Obs.Trace.Emc_entry ~value:1);
  Alcotest.(check int) "bucket [2,3]" 2
    (Obs.Histogram.bucket_count hist Obs.Trace.Emc_entry ~value:3);
  let buckets = Obs.Histogram.buckets hist Obs.Trace.Emc_entry in
  Alcotest.(check int) "bucket counts total" (List.length values)
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets);
  List.iter
    (fun (lo, hi, n) ->
      Alcotest.(check bool) "bucket bounds ordered" true (lo <= hi && n > 0))
    buckets;
  Alcotest.(check int) "other kind empty" 0
    (Obs.Histogram.count hist Obs.Trace.Syscall)

let test_with_span () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  let clock = ref 10 in
  let result =
    Obs.with_span obs
      ~now:(fun () -> !clock)
      Obs.Trace.Run
      (fun () ->
        clock := 25;
        42)
  in
  Alcotest.(check int) "body result" 42 result;
  match Obs.Chrome.events rec_ with
  | [ b; e ] ->
      Alcotest.(check bool) "begin" true
        (b.Obs.Trace.kind = Obs.Trace.Span_begin Obs.Trace.Run
        && b.Obs.Trace.ts = 10);
      Alcotest.(check bool) "end" true
        (e.Obs.Trace.kind = Obs.Trace.Span_end Obs.Trace.Run
        && e.Obs.Trace.ts = 25)
  | evs -> Alcotest.failf "expected 2 span events, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Counter-sink equivalence with the legacy per-layer mirrors          *)
(* ------------------------------------------------------------------ *)

(* The machine snapshot is derived exclusively from the counter sink on the
   event bus; the refactor kept the original per-layer counters (kernel
   stats record, scheduler switch count, gate/guard counts) as mirrors.
   They must agree exactly, on every setting, over a body that exercises
   every event source. *)
let test_counter_equivalence () =
  List.iter
    (fun setting ->
      let name field = Sim.Config.name setting ^ " " ^ field in
      let m =
        Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~setting ()
      in
      let r = Sim.Machine.run m (small_spec ~body:rich_body ()) in
      Alcotest.(check bool) (name "not killed") true (r.Sim.Machine.killed = None);
      let snap = Sim.Machine.snapshot m in
      let kern = Sim.Machine.kern m in
      let st = kern.Kernel.stats in
      Alcotest.(check int) (name "page faults") st.Kernel.page_faults
        snap.Sim.Stats.page_faults;
      Alcotest.(check int) (name "syscalls") st.Kernel.syscalls
        snap.Sim.Stats.syscalls;
      Alcotest.(check int) (name "timer irqs") st.Kernel.timer_irqs
        snap.Sim.Stats.timer_irqs;
      Alcotest.(check int) (name "ve exits") st.Kernel.ve_exits
        snap.Sim.Stats.ve_exits;
      Alcotest.(check int) (name "context switches")
        (Kernel.Sched.switches kern.Kernel.sched)
        snap.Sim.Stats.context_switches;
      (match Sim.Machine.manager m with
      | Some mgr ->
          let mon = Erebor.Sandbox.manager_monitor mgr in
          let es = Erebor.Monitor.emc_stats mon in
          Alcotest.(check int) (name "emc total")
            (Erebor.Monitor.emc_total mon)
            snap.Sim.Stats.emc_total;
          Alcotest.(check int) (name "emc mmu") es.Erebor.Monitor.mmu
            snap.Sim.Stats.emc_mmu;
          Alcotest.(check int) (name "emc cr") es.Erebor.Monitor.cr
            snap.Sim.Stats.emc_cr;
          Alcotest.(check int) (name "emc msr") es.Erebor.Monitor.msr
            snap.Sim.Stats.emc_msr;
          Alcotest.(check int) (name "emc idt") es.Erebor.Monitor.idt
            snap.Sim.Stats.emc_idt;
          Alcotest.(check int) (name "emc smap") es.Erebor.Monitor.smap
            snap.Sim.Stats.emc_smap;
          Alcotest.(check int) (name "emc ghci") es.Erebor.Monitor.ghci
            snap.Sim.Stats.emc_ghci;
          Alcotest.(check int) (name "mmu denies")
            (Erebor.Mmu_guard.denied_count (Erebor.Monitor.guard mon))
            snap.Sim.Stats.mmu_denies
      | None ->
          Alcotest.(check int) (name "no monitor: emc total") 0
            snap.Sim.Stats.emc_total;
          Alcotest.(check int) (name "no monitor: denies") 0
            snap.Sim.Stats.mmu_denies);
      (* The counter sink exposed by the machine is the snapshot's source. *)
      let c = Sim.Machine.counters m in
      Alcotest.(check int) (name "counter is source")
        (Obs.Counter.count c Obs.Trace.Page_fault)
        snap.Sim.Stats.page_faults)
    Sim.Config.all

(* Satellite: the new emc_idt snapshot field really counts lidt services
   (machine boot under Erebor programs the IDT through the monitor). *)
let test_emc_idt_counted () =
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let kern = Sim.Machine.kern m in
  for _ = 1 to 3 do
    kern.Kernel.privops.Kernel.Privops.lidt (Hw.Idt.create ())
  done;
  let snap = Sim.Machine.snapshot m in
  let mon =
    Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
  in
  let es = Erebor.Monitor.emc_stats mon in
  Alcotest.(check int) "idt mirrors monitor" es.Erebor.Monitor.idt
    snap.Sim.Stats.emc_idt;
  Alcotest.(check int) "idt services counted" 3 snap.Sim.Stats.emc_idt;
  (* And it participates in diff/pp. *)
  let d = Sim.Stats.diff ~before:Sim.Stats.zero ~after:snap in
  Alcotest.(check int) "diff keeps idt" snap.Sim.Stats.emc_idt
    d.Sim.Stats.emc_idt;
  let rendered = Fmt.str "%a" Sim.Stats.pp snap in
  Alcotest.(check bool) "pp reports denies" true
    (contains ~sub:"denies=" rendered)

(* Satellite: MMU-guard denial counts surface in the snapshot, so security
   tests can assert exact counts. A benign run must show zero; every
   policy-violating PTE store afterwards must count exactly once. *)
let test_denial_counts () =
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let snap0 = Sim.Machine.snapshot m in
  Alcotest.(check int) "benign run: zero denials" 0 snap0.Sim.Stats.mmu_denies;
  let kern = Sim.Machine.kern m in
  let denied = ref 0 in
  for i = 0 to 4 do
    (* Frames far above anything the kernel registered as page tables:
       stores there must be rejected by the guard. *)
    let pte_addr = Hw.Phys_mem.addr_of_pfn (20_000 + i) + 8 in
    let pte = Hw.Pte.make ~pfn:(100 + i) Hw.Pte.default_flags in
    match kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr pte with
    | () -> ()
    | exception Erebor.Monitor.Policy_violation _ -> incr denied
  done;
  Alcotest.(check int) "all stores denied" 5 !denied;
  let snap1 = Sim.Machine.snapshot m in
  Alcotest.(check int) "denials surfaced exactly" 5 snap1.Sim.Stats.mmu_denies;
  let mon =
    Erebor.Sandbox.manager_monitor (Option.get (Sim.Machine.manager m))
  in
  Alcotest.(check int) "matches guard mirror"
    (Erebor.Mmu_guard.denied_count (Erebor.Monitor.guard mon))
    snap1.Sim.Stats.mmu_denies

(* ------------------------------------------------------------------ *)
(* Golden-trace determinism and Chrome export                          *)
(* ------------------------------------------------------------------ *)

let traced_run () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  let m =
    Sim.Machine.create ~obs ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  (m, rec_)

let test_golden_trace_determinism () =
  let _, r1 = traced_run () in
  let _, r2 = traced_run () in
  Alcotest.(check bool) "non-empty" true (Obs.Chrome.length r1 > 0);
  Alcotest.(check int) "same length" (Obs.Chrome.length r1)
    (Obs.Chrome.length r2);
  Alcotest.(check bool) "byte-identical event stream" true
    (Obs.Chrome.events r1 = Obs.Chrome.events r2);
  Alcotest.(check bool) "identical chrome JSON" true
    (String.equal (Obs.Chrome.to_chrome_json r1) (Obs.Chrome.to_chrome_json r2))

let test_trace_counts_match_snapshot () =
  let m, rec_ = traced_run () in
  let snap = Sim.Machine.snapshot m in
  let count k =
    let n = ref 0 in
    Obs.Chrome.iter rec_ (fun e -> if e.Obs.Trace.kind = k then incr n);
    !n
  in
  List.iter
    (fun (label, k, expected) ->
      Alcotest.(check int) label expected (count k))
    [
      ("page faults", Obs.Trace.Page_fault, snap.Sim.Stats.page_faults);
      ("syscalls", Obs.Trace.Syscall, snap.Sim.Stats.syscalls);
      ("timer irqs", Obs.Trace.Timer_irq, snap.Sim.Stats.timer_irqs);
      ("ve exits", Obs.Trace.Ve_exit, snap.Sim.Stats.ve_exits);
      ("ctx switches", Obs.Trace.Context_switch, snap.Sim.Stats.context_switches);
      ("emc entries", Obs.Trace.Emc_entry, snap.Sim.Stats.emc_total);
      ("emc mmu", Obs.Trace.emc_mmu, snap.Sim.Stats.emc_mmu);
      ("emc ghci", Obs.Trace.emc_ghci, snap.Sim.Stats.emc_ghci);
      ("denies", Obs.Trace.Mmu_deny, snap.Sim.Stats.mmu_denies);
    ];
  (* Boot / attest / run spans all appear, balanced. *)
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Obs.Trace.phase_name phase ^ " span balanced")
        true
        (count (Obs.Trace.span_begin phase) = count (Obs.Trace.span_end phase)
        && count (Obs.Trace.span_begin phase) > 0))
    [ Obs.Trace.Boot; Obs.Trace.Attest; Obs.Trace.Run ];
  let json = Obs.Chrome.to_chrome_json rec_ in
  Alcotest.(check bool) "chrome JSON object" true
    (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "has traceEvents" true
    (contains ~sub:"\"traceEvents\"" json);
  let jsonl = Obs.Chrome.to_jsonl rec_ in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one JSONL line per event" (Obs.Chrome.length rec_)
    (List.length lines)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                               *)
(* ------------------------------------------------------------------ *)

let test_percentile () =
  let obs = Obs.Emitter.create () in
  let h = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  (* Empty: no samples, every percentile is 0. *)
  Alcotest.(check int) "empty p50" 0
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:0.5);
  (* One sample: every percentile is exactly that sample. *)
  Obs.Emitter.emit obs Obs.Trace.Page_fault ~ts:0 ~arg:9;
  Alcotest.(check int) "single-sample p100" 9
    (Obs.Histogram.percentile h Obs.Trace.Page_fault ~p:1.0);
  Alcotest.(check int) "single-sample p50" 9
    (Obs.Histogram.percentile h Obs.Trace.Page_fault ~p:0.5);
  Alcotest.(check int) "single-sample p0" 9
    (Obs.Histogram.percentile h Obs.Trace.Page_fault ~p:0.0);
  (* Single bucket: three samples of 7 live in [4,7]; the interpolated
     estimate is clamped to the observed [min, max] — here both are 7. *)
  for i = 1 to 3 do
    Obs.Emitter.emit obs Obs.Trace.Emc_entry ~ts:i ~arg:7
  done;
  Alcotest.(check int) "single-bucket p0" 7
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:0.0);
  Alcotest.(check int) "single-bucket p50" 7
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:0.5);
  Alcotest.(check int) "single-bucket p100" 7
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:1.0);
  (* Out-of-range p is clamped, not an error. *)
  Alcotest.(check int) "p>1 clamped" 7
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:2.0);
  Alcotest.(check int) "p<0 clamped" 7
    (Obs.Histogram.percentile h Obs.Trace.Emc_entry ~p:(-1.0));
  Alcotest.(check int) "min_value tracked" 7
    (Obs.Histogram.min_value h Obs.Trace.Emc_entry);
  Alcotest.(check int) "min_value empty is 0" 0
    (Obs.Histogram.min_value h Obs.Trace.Tdcall);
  (* Multi-bucket: [1;1;2;3;4;100] spreads over four buckets. *)
  List.iteri
    (fun i v -> Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:i ~arg:v)
    [ 1; 1; 2; 3; 4; 100 ];
  Alcotest.(check int) "multi p50" 3
    (Obs.Histogram.percentile h Obs.Trace.Syscall ~p:0.5);
  (* The tail percentiles land in [64,127] but clamp to the true max. *)
  Alcotest.(check int) "multi p95 clamps to max" 100
    (Obs.Histogram.percentile h Obs.Trace.Syscall ~p:0.95);
  Alcotest.(check int) "multi p99 clamps to max" 100
    (Obs.Histogram.percentile h Obs.Trace.Syscall ~p:0.99);
  (* pp surfaces the percentile columns. *)
  let rendered = Fmt.str "%a" Obs.Histogram.pp (h, Obs.Trace.Syscall) in
  Alcotest.(check bool) "pp has percentiles" true
    (contains ~sub:"p50=3" rendered && contains ~sub:"p95=100" rendered)

(* ------------------------------------------------------------------ *)
(* Chrome hardening: JSON escaping, unbalanced span stacks             *)
(* ------------------------------------------------------------------ *)

let count_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let c = ref 0 in
  for i = 0 to m - n do
    if String.sub s i n = sub then incr c
  done;
  !c

let test_chrome_escape () =
  Alcotest.(check string) "plain untouched" "syscall"
    (Obs.Chrome.escape_json "syscall");
  Alcotest.(check string) "quote and backslash" "a\\\"b\\\\c"
    (Obs.Chrome.escape_json "a\"b\\c");
  Alcotest.(check string) "newline" "x\\ny" (Obs.Chrome.escape_json "x\ny");
  Alcotest.(check string) "control char" "\\u0001"
    (Obs.Chrome.escape_json "\001")

let test_chrome_unbalanced () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  (* A stray end with no open span must be dropped... *)
  Obs.Emitter.emit obs (Obs.Trace.span_end Obs.Trace.Run) ~ts:5 ~arg:0;
  (* ...and spans left open at export time get synthetic E events. *)
  Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Run) ~ts:10 ~arg:0;
  Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Emc_gate) ~ts:20 ~arg:0;
  Obs.Emitter.emit obs Obs.Trace.Syscall ~ts:30 ~arg:0;
  let json = Obs.Chrome.to_chrome_json rec_ in
  Alcotest.(check int) "every B has an E" (count_sub ~sub:{|"ph":"B"|} json)
    (count_sub ~sub:{|"ph":"E"|} json);
  Alcotest.(check int) "two spans closed synthetically" 2
    (count_sub ~sub:{|"ph":"E"|} json);
  (* Synthetic ends carry the last seen timestamp, keeping ts monotone. *)
  Alcotest.(check int) "synthetic ends at last ts" 2
    (count_sub ~sub:{|"ph":"E","ts":30|} json);
  (* A balanced stream is unaffected by the hardening. *)
  let obs2 = Obs.Emitter.create () in
  let rec2 = Obs.Chrome.attach obs2 (Obs.Chrome.create ()) in
  Obs.Emitter.emit obs2 (Obs.Trace.span_begin Obs.Trace.Run) ~ts:1 ~arg:0;
  Obs.Emitter.emit obs2 (Obs.Trace.span_end Obs.Trace.Run) ~ts:2 ~arg:0;
  let json2 = Obs.Chrome.to_chrome_json rec2 in
  Alcotest.(check int) "balanced: one B" 1 (count_sub ~sub:{|"ph":"B"|} json2);
  Alcotest.(check int) "balanced: one E" 1 (count_sub ~sub:{|"ph":"E"|} json2)

(* ------------------------------------------------------------------ *)
(* Cycle attribution: unit semantics, conservation on real machines    *)
(* ------------------------------------------------------------------ *)

(* A hand-driven event stream exercising nesting, same-phase collapse,
   stray ends and the close-time flush:
     0..10   outside any span          -> root
     10..30  boot                      -> boot
     30..50  boot > gate               -> gate
     50..60  boot > gate (re-entered)  -> gate
     60..80  boot > gate > gate(same)  -> gate (collapsed, no new node)
     80..90  boot > gate               -> gate
     90..100 boot                      -> boot
     100..120 closed                   -> root *)
let synthetic_attrib () =
  let obs = Obs.Emitter.create () in
  let a = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
  let b p ts = Obs.Emitter.emit obs (Obs.Trace.span_begin p) ~ts ~arg:0 in
  let e p ts = Obs.Emitter.emit obs (Obs.Trace.span_end p) ~ts ~arg:0 in
  b Obs.Trace.Boot 10;
  b Obs.Trace.Emc_gate 30;
  e Obs.Trace.Emc_gate 50;
  b Obs.Trace.Emc_gate 50;
  b Obs.Trace.Emc_gate 60;
  e Obs.Trace.Emc_gate 80;
  e Obs.Trace.Emc_gate 90;
  e Obs.Trace.Boot 100;
  (* Stray end at depth 0: ignored, never underflows. *)
  e Obs.Trace.Run 100;
  Obs.Attrib.close a ~now:120;
  a

let test_attrib_semantics () =
  let a = synthetic_attrib () in
  Alcotest.(check int) "balanced" 0 (Obs.Attrib.open_depth a);
  Alcotest.(check int) "total = final clock" 120 (Obs.Attrib.total a);
  Alcotest.(check int) "unattributed" 30 (Obs.Attrib.unattributed a);
  Alcotest.(check int) "boot self" 30
    (Obs.Attrib.phase_cycles a Obs.Trace.Boot);
  Alcotest.(check int) "gate self" 60
    (Obs.Attrib.phase_cycles a Obs.Trace.Emc_gate);
  Alcotest.(check int) "kernel domain" 30
    (Obs.Attrib.domain_cycles a Obs.Trace.Kernel);
  Alcotest.(check int) "monitor domain" 60
    (Obs.Attrib.domain_cycles a Obs.Trace.Monitor);
  (match Obs.Attrib.breakdown a with
  | [ (Obs.Trace.Kernel, Obs.Trace.Boot, 30);
      (Obs.Trace.Monitor, Obs.Trace.Emc_gate, 60) ] -> ()
  | other -> Alcotest.failf "unexpected breakdown (%d rows)" (List.length other));
  (* The context tree collapsed the same-phase re-entry: one gate node. *)
  let v = Obs.Attrib.view a in
  Alcotest.(check int) "root total" 120 v.Obs.Attrib.vtotal;
  Alcotest.(check int) "root self" 30 v.Obs.Attrib.vself;
  (match v.Obs.Attrib.vkids with
  | [ boot ] -> (
      Alcotest.(check bool) "boot node" true
        (boot.Obs.Attrib.vphase = Some Obs.Trace.Boot);
      Alcotest.(check int) "boot subtree" 90 boot.Obs.Attrib.vtotal;
      match boot.Obs.Attrib.vkids with
      | [ gate ] ->
          Alcotest.(check bool) "gate node" true
            (gate.Obs.Attrib.vphase = Some Obs.Trace.Emc_gate);
          Alcotest.(check int) "gate self" 60 gate.Obs.Attrib.vself;
          Alcotest.(check (list int)) "gate is a leaf" []
            (List.map (fun k -> k.Obs.Attrib.vself) gate.Obs.Attrib.vkids)
      | ks -> Alcotest.failf "expected 1 gate child, got %d" (List.length ks))
  | ks -> Alcotest.failf "expected 1 root child, got %d" (List.length ks))

(* HARD INVARIANT: on a real machine, attributed cycles sum exactly to the
   final clock — every cycle lands in exactly one domain x phase context.
   Checked on every setting with every event source exercised. *)
let test_attrib_conservation () =
  List.iter
    (fun setting ->
      let name field = Sim.Config.name setting ^ " " ^ field in
      let obs = Obs.Emitter.create () in
      let a = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
      let m = Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~obs ~setting () in
      ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
      let total = Hw.Cycles.now (Sim.Machine.clock m) in
      Obs.Attrib.close a ~now:total;
      Alcotest.(check int) (name "spans balanced") 0 (Obs.Attrib.open_depth a);
      Alcotest.(check int) (name "conservation: total") total (Obs.Attrib.total a);
      let summed =
        List.fold_left
          (fun acc (_, _, c) -> acc + c)
          (Obs.Attrib.unattributed a)
          (Obs.Attrib.breakdown a)
      in
      Alcotest.(check int) (name "conservation: breakdown sums") total summed;
      Alcotest.(check int) (name "matches stats snapshot")
        (Sim.Machine.snapshot m).Sim.Stats.cycles total)
    Sim.Config.all

(* Attaching the full sink complement must not move the clock: the run is
   cycle-identical to a bare run of the same spec. *)
let test_attrib_sinks_free () =
  let bare =
    let m =
      Sim.Machine.create ~frames:32768 ~cma_frames:4096
        ~setting:Sim.Config.Erebor_full ()
    in
    ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
    Hw.Cycles.now (Sim.Machine.clock m)
  in
  let observed =
    let obs = Obs.Emitter.create () in
    ignore (Obs.Attrib.attach obs (Obs.Attrib.create ()));
    ignore (Obs.Chrome.attach obs (Obs.Chrome.create ()));
    ignore (Obs.Histogram.attach obs (Obs.Histogram.create ()));
    ignore (Obs.Ring.attach obs (Obs.Ring.create ~capacity:64));
    let m =
      Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~obs
        ~setting:Sim.Config.Erebor_full ()
    in
    ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
    Hw.Cycles.now (Sim.Machine.clock m)
  in
  Alcotest.(check int) "sinks never advance the clock" bare observed

(* ------------------------------------------------------------------ *)
(* Flame and metrics exporters                                         *)
(* ------------------------------------------------------------------ *)

let test_flame_export () =
  let a = synthetic_attrib () in
  let folded = Obs.Flame.collapsed a in
  Alcotest.(check bool) "root line" true (contains ~sub:"erebor 30\n" folded);
  Alcotest.(check bool) "boot frame" true
    (contains ~sub:"erebor;kernel:boot 30\n" folded);
  Alcotest.(check bool) "nested gate frame" true
    (contains ~sub:"erebor;kernel:boot;monitor:gate 60\n" folded);
  (* Collapsed-stack wellformedness: "frames count" per line, counts
     summing to the attributed total. *)
  let sum =
    List.fold_left
      (fun acc line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed folded line %S" line
        | Some i ->
            acc + int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
      0
      (List.filter
         (fun l -> l <> "")
         (String.split_on_char '\n' folded))
  in
  Alcotest.(check int) "folded counts sum to total" (Obs.Attrib.total a) sum;
  let tree = Obs.Flame.tree a in
  Alcotest.(check bool) "tree shows frames" true
    (contains ~sub:"kernel:boot" tree && contains ~sub:"monitor:gate" tree)

let test_metrics_export () =
  let obs = Obs.Emitter.create () in
  let counter = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let hist = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  let a = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
  Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Boot) ~ts:10 ~arg:0;
  Obs.Emitter.emit obs Obs.Trace.Emc_entry ~ts:20 ~arg:1224;
  Obs.Emitter.emit obs Obs.Trace.Emc_entry ~ts:30 ~arg:1224;
  Obs.Emitter.emit obs (Obs.Trace.span_end Obs.Trace.Boot) ~ts:40 ~arg:0;
  Obs.Attrib.close a ~now:50;
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add reg ~label:"test" ~counter ~histogram:hist ~attrib:a ();
  let prom = Obs.Metrics.to_prometheus reg in
  Alcotest.(check bool) "counter family" true
    (contains ~sub:{|erebor_events_total{source="test",kind="emc"} 2|} prom);
  Alcotest.(check bool) "attribution family" true
    (contains
       ~sub:{|erebor_cycles_attributed_total{source="test",domain="kernel",phase="boot"} 30|}
       prom);
  Alcotest.(check bool) "unattributed row" true
    (contains ~sub:{|domain="none",phase="(outside)"} 20|} prom);
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains ~sub:{|le="+Inf"|} prom);
  (* Every sample line is "name{labels} value" with a parseable value. *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed sample line %S" line
        | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            Alcotest.(check bool)
              (Printf.sprintf "numeric value in %S" line)
              true
              (float_of_string_opt v <> None)
      end)
    (String.split_on_char '\n' prom);
  Alcotest.(check string) "label escaping" {|a\"b\\c\nd|}
    (Obs.Metrics.escape_label "a\"b\\c\nd");
  (* The JSON rendition parses and reproduces the attribution totals. *)
  let module J = Workloads.Bench_gate.Json in
  match J.parse (Obs.Metrics.to_json reg) with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok json -> (
      match Option.map (J.member "sources") (Some json) with
      | Some (Some (J.Arr [ src ])) ->
          let attribution = J.member "attribution" src in
          let total =
            Option.bind attribution (J.member "total")
          in
          Alcotest.(check bool) "json total" true (total = Some (J.Num 50.0))
      | _ -> Alcotest.fail "expected one source in metrics JSON")

(* ------------------------------------------------------------------ *)
(* Audit chain: tamper evidence                                        *)
(* ------------------------------------------------------------------ *)

let audit_test_key = Crypto.Sha256.digest_string "test audit key"

let replace_once ~sub ~by s =
  let n = String.length sub and m = String.length s in
  let rec find i = if i + n > m then None else if String.sub s i n = sub then Some i else find (i + 1) in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + n) (m - i - n)

let sample_chain () =
  let chain = Obs.Audit.create ~key:audit_test_key in
  List.iteri
    (fun i (category, verdict, detail) ->
      Obs.Audit.append chain ~ts:(100 + (10 * i)) ~category ~verdict ~detail)
    [
      ("scan", Obs.Audit.Allow, "kernel image accepted: 2 sections");
      ("privop.cr", Obs.Audit.Allow, "write_cr3");
      ("mmu", Obs.Audit.Deny, "PTE store outside registered tables");
      ("sandbox", Obs.Audit.Kill, "kill id=3: rate \"limit\"\nexceeded");
      ("attest", Obs.Audit.Info, "mrtd=deadbeef mac=00112233");
    ];
  chain

let test_audit_chain_roundtrip () =
  let chain = sample_chain () in
  Alcotest.(check int) "length before finalize" 5 (Obs.Audit.length chain);
  Alcotest.(check bool) "not finalized yet" false (Obs.Audit.finalized chain);
  Obs.Audit.finalize chain ~now:999;
  Obs.Audit.finalize chain ~now:12_345 (* idempotent *);
  Alcotest.(check bool) "finalized" true (Obs.Audit.finalized chain);
  Alcotest.(check int) "close record not counted" 5 (Obs.Audit.length chain);
  let recs = Obs.Audit.records chain in
  Alcotest.(check int) "records incl. close" 6 (List.length recs);
  Alcotest.(check (list int)) "append order" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun r -> r.Obs.Audit.seq) recs);
  Alcotest.check_raises "append after finalize"
    (Invalid_argument "Audit.append: log already finalized") (fun () ->
      Obs.Audit.append chain ~ts:1 ~category:"scan" ~verdict:Obs.Audit.Allow
        ~detail:"late");
  let s = Obs.Audit.to_string chain in
  (match Obs.Audit.verify_string ~key:audit_test_key s with
  | Ok n -> Alcotest.(check int) "verifies with count" 5 n
  | Error e -> Alcotest.failf "intact chain rejected: %s" e);
  (* The escaped detail survives the JSONL roundtrip byte-for-byte. *)
  Alcotest.(check bool) "escaped newline on the wire" true
    (contains ~sub:{|rate \"limit\"\nexceeded|} s)

let expect_reject name tampered ~msg_frag =
  match Obs.Audit.verify_string ~key:audit_test_key tampered with
  | Ok _ -> Alcotest.failf "%s: tampered chain verified" name
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error %S mentions %S" name e msg_frag)
        true (contains ~sub:msg_frag e)

let test_audit_tamper_rejected () =
  let chain = sample_chain () in
  Obs.Audit.finalize chain ~now:999;
  let good = Obs.Audit.to_string chain in
  let lines = String.split_on_char '\n' (String.trim good) in
  let unlines ls = String.concat "\n" ls ^ "\n" in
  (* Flip a byte inside a field value: the record still parses, so the
     chain MAC is what catches it. *)
  expect_reject "flipped byte"
    (replace_once ~sub:"write_cr3" ~by:"write_cr4" good)
    ~msg_frag:"MAC mismatch";
  (* Same for a flipped hex digit in a stored MAC. *)
  expect_reject "flipped mac"
    (let mac2 = (List.nth (Obs.Audit.records chain) 2).Obs.Audit.mac in
     let flipped =
       String.mapi
         (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c)
         mac2
     in
     replace_once ~sub:mac2 ~by:flipped good)
    ~msg_frag:"MAC mismatch";
  (* Dropping a record breaks the sequence numbering. *)
  expect_reject "dropped record"
    (unlines (List.filteri (fun i _ -> i <> 2) lines))
    ~msg_frag:"sequence mismatch";
  (* So does swapping two adjacent records. *)
  expect_reject "swapped records"
    (unlines
       (List.mapi
          (fun i _ ->
            List.nth lines (if i = 1 then 2 else if i = 2 then 1 else i))
          lines))
    ~msg_frag:"sequence mismatch";
  (* Truncation: the close record is gone. *)
  expect_reject "truncated"
    (unlines (List.filteri (fun i _ -> i <> List.length lines - 1) lines))
    ~msg_frag:"truncated";
  (* A different key rejects everything from the genesis onward. *)
  (match Obs.Audit.verify_string ~key:(Bytes.of_string "wrong key") good with
  | Ok _ -> Alcotest.fail "wrong key verified"
  | Error e ->
      Alcotest.(check bool) "wrong key: first record flagged" true
        (contains ~sub:"record 0" e));
  expect_reject "empty log" "" ~msg_frag:"empty log";
  (* And the untampered rendering still verifies after all that. *)
  match Obs.Audit.verify_string ~key:audit_test_key good with
  | Ok 5 -> ()
  | Ok n -> Alcotest.failf "expected 5 records, got %d" n
  | Error e -> Alcotest.failf "control chain rejected: %s" e

let test_audit_emitter_rail () =
  let obs = Obs.Emitter.create () in
  (* No chain attached: the detail thunk must not even run. *)
  let ran = ref false in
  Obs.Emitter.audit_event obs ~ts:1 ~category:"scan" ~verdict:Obs.Audit.Allow
    (fun () ->
      ran := true;
      "detail");
  Alcotest.(check bool) "thunk skipped without chain" false !ran;
  let chain = Obs.Audit.create ~key:audit_test_key in
  Obs.Emitter.set_audit obs (Some chain);
  Obs.Emitter.audit_event obs ~ts:2 ~category:"scan" ~verdict:Obs.Audit.Deny
    (fun () ->
      ran := true;
      "bad section");
  Alcotest.(check bool) "thunk ran with chain" true !ran;
  Alcotest.(check int) "record appended" 1 (Obs.Audit.length chain);
  (* Emitter.finalize closes the attached chain. *)
  Obs.Emitter.finalize obs ~now:50;
  Alcotest.(check bool) "chain finalized via emitter" true
    (Obs.Audit.finalized chain);
  match Obs.Audit.verify_string ~key:audit_test_key (Obs.Audit.to_string chain) with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 record, got %d" n
  | Error e -> Alcotest.failf "chain rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Request-scoped tracing: packing, windows, cross-machine trees       *)
(* ------------------------------------------------------------------ *)

let test_request_pack_roundtrip () =
  List.iter
    (fun (trace_id, sampled, root) ->
      let cx = { Obs.Request.trace_id; span_id = 7; sampled } in
      let cx', root' = Obs.Request.unpack (Obs.Request.pack cx ~root) in
      Alcotest.(check int) "trace id" trace_id cx'.Obs.Request.trace_id;
      Alcotest.(check bool) "sampled" sampled cx'.Obs.Request.sampled;
      Alcotest.(check bool) "root bit" root root';
      Alcotest.(check int) "span id does not travel" 0 cx'.Obs.Request.span_id)
    [ (1, true, true); (2, false, true); (1000, true, false); (0, false, false) ]

(* One emitter carries both the client-side (root) and the server-side
   (non-root) markers of the same trace — the in-process Erebor_full shape.
   The non-root Req_end must NOT close the root window. *)
let test_request_single_emitter_window () =
  let obs = Obs.Emitter.create () in
  let reqs = Obs.Request.create () in
  Obs.Request.attach reqs ~machine:"sim" obs;
  let cx = Obs.Request.mint reqs in
  let arg ~root = Obs.Request.pack cx ~root in
  Obs.Emitter.emit obs Obs.Trace.Req_begin ~ts:100 ~arg:(arg ~root:true);
  Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Attest) ~ts:110 ~arg:0;
  Obs.Emitter.emit obs (Obs.Trace.span_end Obs.Trace.Attest) ~ts:130 ~arg:0;
  (* Server-side end of the same trace: root bit clear, window stays open. *)
  Obs.Emitter.emit obs Obs.Trace.Req_end ~ts:150 ~arg:(arg ~root:false);
  Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Run) ~ts:160 ~arg:0;
  Obs.Emitter.emit obs (Obs.Trace.span_end Obs.Trace.Run) ~ts:190 ~arg:0;
  Obs.Emitter.emit obs Obs.Trace.Req_end ~ts:200 ~arg:(arg ~root:true);
  Alcotest.(check int) "one request completed" 1 (Obs.Request.completed reqs);
  Alcotest.(check (option int)) "root cycles span the full window" (Some 100)
    (Obs.Request.root_cycles reqs ~trace_id:cx.Obs.Request.trace_id);
  match Obs.Request.tree reqs ~trace_id:cx.Obs.Request.trace_id with
  | [ seg ] ->
      Alcotest.(check bool) "root segment" true seg.Obs.Request.root;
      Alcotest.(check string) "machine label" "sim" seg.Obs.Request.machine;
      Alcotest.(check int) "both spans collected" 2
        (List.length seg.Obs.Request.spans)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs)

let test_request_cross_machine_tree () =
  let obs_client = Obs.Emitter.create () in
  let obs_fleet = Obs.Emitter.create () in
  let reqs = Obs.Request.create () in
  Obs.Request.attach reqs ~machine:"client" obs_client;
  Obs.Request.attach reqs ~machine:"fleet" obs_fleet;
  let cx = Obs.Request.mint reqs in
  Obs.Emitter.emit obs_client Obs.Trace.Req_begin ~ts:100
    ~arg:(Obs.Request.pack cx ~root:true);
  Obs.Emitter.emit obs_client (Obs.Trace.span_begin Obs.Trace.Attest) ~ts:105 ~arg:0;
  Obs.Emitter.emit obs_client (Obs.Trace.span_end Obs.Trace.Attest) ~ts:140 ~arg:0;
  Obs.Emitter.emit obs_fleet Obs.Trace.Req_begin ~ts:150
    ~arg:(Obs.Request.pack cx ~root:false);
  Obs.Emitter.emit obs_fleet (Obs.Trace.span_begin Obs.Trace.Emc_gate) ~ts:200 ~arg:0;
  Obs.Emitter.emit obs_fleet (Obs.Trace.span_begin Obs.Trace.Svc_mmu) ~ts:210 ~arg:0;
  Obs.Emitter.emit obs_fleet (Obs.Trace.span_end Obs.Trace.Svc_mmu) ~ts:230 ~arg:0;
  Obs.Emitter.emit obs_fleet (Obs.Trace.span_end Obs.Trace.Emc_gate) ~ts:240 ~arg:0;
  Obs.Emitter.emit obs_fleet Obs.Trace.Req_end ~ts:350
    ~arg:(Obs.Request.pack cx ~root:false);
  Obs.Emitter.emit obs_client Obs.Trace.Req_end ~ts:400
    ~arg:(Obs.Request.pack cx ~root:true);
  let id = cx.Obs.Request.trace_id in
  Alcotest.(check (option int)) "end-to-end cycles" (Some 300)
    (Obs.Request.root_cycles reqs ~trace_id:id);
  (match Obs.Request.tree reqs ~trace_id:id with
  | [ root; leaf ] ->
      Alcotest.(check string) "root machine" "client" root.Obs.Request.machine;
      Alcotest.(check bool) "root first" true root.Obs.Request.root;
      Alcotest.(check string) "leaf machine" "fleet" leaf.Obs.Request.machine;
      Alcotest.(check int) "leaf window" 200
        (leaf.Obs.Request.seg_t1 - leaf.Obs.Request.seg_t0);
      (* Nesting preserved: gate > svc.mmu. *)
      (match leaf.Obs.Request.spans with
      | [ gate ] -> (
          Alcotest.(check bool) "gate phase" true
            (gate.Obs.Request.phase = Obs.Trace.Emc_gate);
          match gate.Obs.Request.children with
          | [ svc ] ->
              Alcotest.(check bool) "nested svc.mmu" true
                (svc.Obs.Request.phase = Obs.Trace.Svc_mmu);
              Alcotest.(check int) "svc duration" 20
                (svc.Obs.Request.t1 - svc.Obs.Request.t0)
          | ks -> Alcotest.failf "expected 1 child, got %d" (List.length ks))
      | sp -> Alcotest.failf "expected 1 fleet span, got %d" (List.length sp));
      (* The tree is causal: every segment fits inside the root window. *)
      Alcotest.(check bool) "leaf inside root" true
        (leaf.Obs.Request.seg_t0 >= root.Obs.Request.seg_t0
        && leaf.Obs.Request.seg_t1 <= root.Obs.Request.seg_t1)
  | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs));
  (* Exports are well-formed JSON. *)
  let module J = Workloads.Bench_gate.Json in
  (match J.parse (Obs.Request.to_json reqs) with
  | Error e -> Alcotest.failf "to_json does not parse: %s" e
  | Ok _ -> ());
  match J.parse (Obs.Request.to_chrome_json reqs ~trace_id:id) with
  | Error e -> Alcotest.failf "to_chrome_json does not parse: %s" e
  | Ok _ -> ()

let test_request_sampling_and_latency () =
  let obs = Obs.Emitter.create () in
  let reqs = Obs.Request.create ~sample_every:2 () in
  Obs.Request.attach reqs ~machine:"m" obs;
  let durations = [ 100; 100; 100; 100 ] in
  let minted =
    List.mapi
      (fun i d ->
        let cx = Obs.Request.mint reqs in
        let t0 = 1000 * (i + 1) in
        Obs.Emitter.emit obs Obs.Trace.Req_begin ~ts:t0
          ~arg:(Obs.Request.pack cx ~root:true);
        Obs.Emitter.emit obs (Obs.Trace.span_begin Obs.Trace.Run) ~ts:t0 ~arg:0;
        Obs.Emitter.emit obs (Obs.Trace.span_end Obs.Trace.Run) ~ts:(t0 + d) ~arg:0;
        Obs.Emitter.emit obs Obs.Trace.Req_end ~ts:(t0 + d)
          ~arg:(Obs.Request.pack cx ~root:true);
        cx)
      durations
  in
  Alcotest.(check int) "half the mints sampled" 2
    (List.length (List.filter (fun cx -> cx.Obs.Request.sampled) minted));
  (* Every request completes and feeds the latency distribution... *)
  Alcotest.(check int) "all completed" 4 (Obs.Request.completed reqs);
  Alcotest.(check int) "all in the latency histogram" 4
    (Obs.Request.latency_count reqs);
  Alcotest.(check (float 0.001)) "mean latency" 100.0
    (Obs.Request.latency_mean reqs);
  Alcotest.(check int) "p100 clamps to max" 100
    (Obs.Request.latency_percentile reqs ~p:1.0);
  Alcotest.(check bool) "p50 within observed range" true
    (let p50 = Obs.Request.latency_percentile reqs ~p:0.5 in
     p50 > 0 && p50 <= 100);
  (* ...but only sampled traces kept their span trees. *)
  Alcotest.(check int) "sampled trees only" 2
    (List.length (Obs.Request.sampled_traces reqs));
  List.iter
    (fun cx ->
      let id = cx.Obs.Request.trace_id in
      let n_segs = List.length (Obs.Request.tree reqs ~trace_id:id) in
      if cx.Obs.Request.sampled then
        Alcotest.(check int) "sampled: segment kept" 1 n_segs
      else
        Alcotest.(check int) "unsampled: no segments" 0 n_segs)
    minted

(* Machine names land in Chrome span names; control characters must not
   break the JSON. *)
let test_request_chrome_escaping () =
  let obs = Obs.Emitter.create () in
  let reqs = Obs.Request.create () in
  Obs.Request.attach reqs ~machine:"cli\"ent\n\001" obs;
  let cx = Obs.Request.mint reqs in
  Obs.Emitter.emit obs Obs.Trace.Req_begin ~ts:10
    ~arg:(Obs.Request.pack cx ~root:true);
  Obs.Emitter.emit obs Obs.Trace.Req_end ~ts:20
    ~arg:(Obs.Request.pack cx ~root:true);
  let json = Obs.Request.to_chrome_json reqs ~trace_id:cx.Obs.Request.trace_id in
  Alcotest.(check bool) "quote escaped" true (contains ~sub:{|cli\"ent|} json);
  Alcotest.(check bool) "newline escaped" true (contains ~sub:{|\n|} json);
  Alcotest.(check bool) "control char escaped" true
    (contains ~sub:{|\u0001|} json);
  let module J = Workloads.Bench_gate.Json in
  match J.parse json with
  | Error e -> Alcotest.failf "escaped chrome JSON does not parse: %s" e
  | Ok _ -> ()

(* ------------------------------------------------------------------ *)
(* Trace-context propagation through the sealed channel                *)
(* ------------------------------------------------------------------ *)

let ctx_hw_key = Crypto.Sha256.digest_string "obs channel test hw key"

let ctx_kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true;
          writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

let make_channel_stack () =
  let mem = Hw.Phys_mem.create ~frames:16384 in
  let clock = Hw.Cycles.clock () in
  let obs = Obs.Emitter.create () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:200_000 ~obs () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key:ctx_hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "OVMF")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  (match
     Erebor.Monitor.boot_kernel monitor ~kernel_image:ctx_kernel_image
       ~reserved_frames:128 ~cma_frames:4096
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (monitor, obs)

let test_channel_ctx_header () =
  let cx = { Obs.Request.trace_id = 0xbeef; span_id = 42; sampled = true } in
  let payload = Bytes.of_string "private payload" in
  let framed = Erebor.Channel.encode_ctx cx payload in
  Alcotest.(check int) "header length"
    (Erebor.Channel.ctx_header_len + Bytes.length payload)
    (Bytes.length framed);
  (match Erebor.Channel.decode_ctx framed with
  | Some (cx', rest) ->
      Alcotest.(check int) "trace id" 0xbeef cx'.Obs.Request.trace_id;
      Alcotest.(check int) "span id" 42 cx'.Obs.Request.span_id;
      Alcotest.(check bool) "sampled" true cx'.Obs.Request.sampled;
      Alcotest.(check bytes) "payload intact" payload rest
  | None -> Alcotest.fail "framed header did not decode");
  (* A payload without the magic passes through undecoded. *)
  Alcotest.(check bool) "no header -> None" true
    (Erebor.Channel.decode_ctx payload = None)

let test_channel_ctx_propagation () =
  let monitor, obs = make_channel_stack () in
  let counter = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let reqs = Obs.Request.create () in
  Obs.Request.attach reqs ~machine:"monitor" obs;
  let rng_c = Crypto.Drbg.create ~seed:"ctx client" in
  let rng_s = Crypto.Drbg.create ~seed:"ctx server" in
  let expected =
    (Erebor.Monitor.tdreport monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client =
    Erebor.Channel.Client.create ~rng:rng_c ~hw_key:ctx_hw_key
      ~expected_mrtd:expected
  in
  let hello = Erebor.Channel.Client.hello client in
  let server, server_hello =
    Result.get_ok
      (Erebor.Channel.Server.accept ~monitor ~rng:rng_s ~client_hello:hello)
  in
  Result.get_ok (Erebor.Channel.Client.finish client ~server_hello);
  let cx = Obs.Request.mint reqs in
  let secret = Bytes.of_string "the plaintext the monitor must see" in
  let sealed = Erebor.Channel.Client.seal_request ~ctx:cx client secret in
  let plaintext = Result.get_ok (Erebor.Channel.Server.open_request server sealed) in
  (* The header is stripped before the plaintext reaches the monitor. *)
  Alcotest.(check bytes) "header stripped" secret plaintext;
  (match Erebor.Channel.Server.last_ctx server with
  | Some cx' ->
      Alcotest.(check int) "ctx survives the seal" cx.Obs.Request.trace_id
        cx'.Obs.Request.trace_id
  | None -> Alcotest.fail "server did not decode the trace context");
  Alcotest.(check int) "server emitted Req_begin" 1
    (Obs.Counter.count counter Obs.Trace.Req_begin);
  let response =
    Erebor.Channel.Server.seal_response server ~bucket:256 (Bytes.of_string "ok")
  in
  Alcotest.(check int) "server emitted Req_end" 1
    (Obs.Counter.count counter Obs.Trace.Req_end);
  Alcotest.(check bool) "ctx cleared after response" true
    (Erebor.Channel.Server.last_ctx server = None);
  Alcotest.(check bytes) "response opens" (Bytes.of_string "ok")
    (Result.get_ok (Erebor.Channel.Client.open_response client response));
  (* Without ?ctx nothing changes on the wire path: no markers, payload
     returned as sealed. *)
  let sealed2 = Erebor.Channel.Client.seal_request client secret in
  let plaintext2 =
    Result.get_ok (Erebor.Channel.Server.open_request server sealed2)
  in
  Alcotest.(check bytes) "no-ctx passthrough" secret plaintext2;
  Alcotest.(check int) "no extra Req_begin" 1
    (Obs.Counter.count counter Obs.Trace.Req_begin)

(* Under Erebor_full, the machine mints a context per session and the
   collector assembles the tree; the root segment accounts for the whole
   client-observed window. *)
let test_machine_request_tree () =
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096
      ~collect_request_spans:true ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let reqs = Sim.Machine.requests m in
  Alcotest.(check int) "one request per session" 1 (Obs.Request.completed reqs);
  match Obs.Request.sampled_traces reqs with
  | [ id ] -> (
      match Obs.Request.tree reqs ~trace_id:id with
      | root :: _ ->
          Alcotest.(check bool) "root segment collected" true
            root.Obs.Request.root;
          Alcotest.(check bool) "spans inside the window" true
            (root.Obs.Request.spans <> []);
          Alcotest.(check (option int)) "root cycles = window"
            (Some (root.Obs.Request.seg_t1 - root.Obs.Request.seg_t0))
            (Obs.Request.root_cycles reqs ~trace_id:id)
      | [] -> Alcotest.fail "no segments collected")
  | ids -> Alcotest.failf "expected 1 sampled trace, got %d" (List.length ids)

(* ------------------------------------------------------------------ *)
(* Abnormal-exit flushing: exports stay well-formed after a raise      *)
(* ------------------------------------------------------------------ *)

let test_finalize_on_abnormal_exit () =
  let obs = Obs.Emitter.create () in
  let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
  let attrib = Obs.Attrib.attach obs (Obs.Attrib.create ()) in
  Obs.Emitter.add_finalizer obs (fun ~now -> Obs.Attrib.close attrib ~now);
  let chain = Obs.Audit.create ~key:audit_test_key in
  Obs.Emitter.set_audit obs (Some chain);
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~obs
      ~setting:Sim.Config.Erebor_full ()
  in
  let boom (_ : Sim.Machine.ops) = raise Exit in
  (match Sim.Machine.run m (small_spec ~body:boom ()) with
  | _ -> Alcotest.fail "expected the body to raise"
  | exception Exit -> ());
  (* The exception handler path: flush everything exactly once. *)
  let now = Hw.Cycles.now (Sim.Machine.clock m) in
  Obs.Emitter.finalize obs ~now;
  Obs.Emitter.finalize obs ~now (* idempotent *);
  Alcotest.(check bool) "emitter finalized" true (Obs.Emitter.finalized obs);
  (* Chrome export balanced despite the mid-run raise. *)
  let json = Obs.Chrome.to_chrome_json rec_ in
  Alcotest.(check int) "every B closed" (count_sub ~sub:{|"ph":"B"|} json)
    (count_sub ~sub:{|"ph":"E"|} json);
  let module J = Workloads.Bench_gate.Json in
  (match J.parse json with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok _ -> ());
  (* Attribution closed by the registered finalizer: conservation holds. *)
  Alcotest.(check int) "attrib closed" 0 (Obs.Attrib.open_depth attrib);
  Alcotest.(check int) "attrib covers the aborted run" now
    (Obs.Attrib.total attrib);
  (* The audit chain was finalized, so it verifies offline. *)
  Alcotest.(check bool) "chain finalized" true (Obs.Audit.finalized chain);
  match Obs.Audit.verify_string ~key:audit_test_key (Obs.Audit.to_string chain) with
  | Ok n -> Alcotest.(check bool) "decisions recorded before the raise" true (n > 0)
  | Error e -> Alcotest.failf "aborted run's chain rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Sliding windows: rotation, merged percentiles, allocation-free path *)
(* ------------------------------------------------------------------ *)

let test_window_rotation () =
  let w = Obs.Window.create ~width:100 ~buckets:4 () in
  Obs.Window.record w Obs.Trace.Syscall ~ts:10 ~arg:5;
  Obs.Window.record w Obs.Trace.Syscall ~ts:50 ~arg:7;
  Alcotest.(check int) "current bucket" 2
    (Obs.Window.count w ~windows:1 Obs.Trace.Syscall);
  Alcotest.(check int) "arg sum" 12
    (Obs.Window.arg_sum w ~windows:1 Obs.Trace.Syscall);
  Obs.Window.record w Obs.Trace.Syscall ~ts:150 ~arg:1;
  Alcotest.(check int) "rotated bucket holds one" 1
    (Obs.Window.count w ~windows:1 Obs.Trace.Syscall);
  Alcotest.(check int) "ring holds all three" 3
    (Obs.Window.count w Obs.Trace.Syscall);
  Obs.Window.record w Obs.Trace.Syscall ~ts:250 ~arg:1;
  Obs.Window.record w Obs.Trace.Syscall ~ts:350 ~arg:1;
  (* The ring is full; the next bucket evicts [0, 100) and its 2 events. *)
  Obs.Window.record w Obs.Trace.Syscall ~ts:450 ~arg:1;
  Alcotest.(check int) "oldest bucket aged out" 4
    (Obs.Window.count w Obs.Trace.Syscall);
  Alcotest.(check int) "lifetime total unaffected" 6
    (Obs.Window.total_count w Obs.Trace.Syscall);
  (* A gap longer than the whole ring clears it in one pass and keeps
     bucket alignment relative to the old start. *)
  Obs.Window.record w Obs.Trace.Syscall ~ts:1_000_000 ~arg:1;
  Alcotest.(check int) "big gap cleared the ring" 1
    (Obs.Window.count w Obs.Trace.Syscall);
  Obs.Window.record w Obs.Trace.Syscall ~ts:1_000_050 ~arg:1;
  Alcotest.(check int) "aligned bucket after the jump" 2
    (Obs.Window.count w ~windows:1 Obs.Trace.Syscall);
  Alcotest.(check int) "lifetime total spans the gap" 8
    (Obs.Window.total_count w Obs.Trace.Syscall);
  (match Obs.Window.count w ~windows:0 Obs.Trace.Syscall with
  | _ -> Alcotest.fail "windows = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Obs.Window.create ~width:0 ~buckets:4 () with
  | _ -> Alcotest.fail "width = 0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_window_percentile () =
  let w =
    Obs.Window.create ~hist_kinds:[ Obs.Trace.Req_end ] ~width:100 ~buckets:8
      ()
  in
  let pct ?windows p = Obs.Window.percentile w ?windows Obs.Trace.Req_end ~p in
  Alcotest.(check int) "empty window" 0 (pct 0.5);
  Obs.Window.record w Obs.Trace.Req_end ~ts:10 ~arg:9;
  Alcotest.(check int) "single sample p50 exact" 9 (pct 0.5);
  Alcotest.(check int) "single sample p0" 9 (pct 0.0);
  Alcotest.(check int) "single sample p100" 9 (pct 1.0);
  Obs.Window.record w Obs.Trace.Req_end ~ts:150 ~arg:100;
  Obs.Window.record w Obs.Trace.Req_end ~ts:160 ~arg:100;
  Obs.Window.record w Obs.Trace.Req_end ~ts:250 ~arg:1000;
  (* Merged over {9, 100, 100, 1000}: the p50 rank lands in the 100s'
     log2 bucket [64, 127] and interpolates to 96. *)
  Alcotest.(check int) "merge-on-read p50" 96 (pct 0.5);
  Alcotest.(check int) "merged p0 clamps to observed min" 9 (pct 0.0);
  Alcotest.(check int) "merged p100 clamps to observed max" 1000 (pct 1.0);
  Alcotest.(check int) "current bucket only: single sample" 1000
    (pct ~windows:1 0.5);
  Alcotest.(check int) "two-bucket merge min" 100 (pct ~windows:2 0.0);
  Alcotest.(check int) "over is log2-conservative" 1
    (Obs.Window.over w Obs.Trace.Req_end ~threshold:128);
  match Obs.Window.percentile w Obs.Trace.Syscall ~p:0.5 with
  | _ -> Alcotest.fail "untracked kind must be rejected"
  | exception Invalid_argument _ -> ()

(* The record path (rotation included) must not allocate: the live sink
   rides inside the machine's hot event loop. The slack absorbs the boxed
   floats from the Gc counter reads themselves. *)
let test_window_record_allocation_free () =
  let w = Obs.Window.create ~width:100 ~buckets:16 () in
  let spin () =
    for i = 1 to 10_000 do
      Obs.Window.record w Obs.Trace.Req_end ~ts:(i * 37) ~arg:(i land 1023)
    done;
    Obs.Window.record w Obs.Trace.Emc_entry ~ts:10_000_000 ~arg:7
  in
  spin ();
  let before = Gc.minor_words () in
  spin ();
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "record allocates nothing (%.0f words)" delta)
    true (delta <= 32.0)

(* ------------------------------------------------------------------ *)
(* SLO burn-rate alerts                                                *)
(* ------------------------------------------------------------------ *)

let slo_latency_objective () =
  Obs.Slo.objective ~name:"lat"
    ~condition:
      (Obs.Slo.Latency_above { kind = Obs.Trace.Req_end; threshold = 1000 })
    ~budget:0.01 ()

let test_slo_fire_and_clear () =
  let obs = Obs.Emitter.create () in
  let counter = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let w =
    Obs.Window.create ~hist_kinds:[ Obs.Trace.Req_end ] ~width:100 ~buckets:64
      ()
  in
  let slo =
    Obs.Slo.create ~emit:obs ~fast_windows:5 ~slow_windows:30 ~window:w
      ~objectives:[ slo_latency_objective () ] ()
  in
  (* Healthy traffic: 20 fast requests, one per 50 cycles. *)
  for i = 1 to 20 do
    Obs.Window.record w Obs.Trace.Req_end ~ts:(i * 50) ~arg:10
  done;
  Obs.Slo.evaluate slo ~now:1000;
  Alcotest.(check int) "clean traffic: nothing firing" 0
    (List.length (Obs.Slo.firing slo));
  (* Burst of slow requests: both the fast and the slow window burn far
     past 10x the 1% budget. *)
  for i = 1 to 5 do
    Obs.Window.record w Obs.Trace.Req_end ~ts:(1000 + (i * 10)) ~arg:5000
  done;
  Obs.Slo.evaluate slo ~now:1050;
  Alcotest.(check int) "burst fires the alert" 1
    (List.length (Obs.Slo.firing slo));
  Alcotest.(check bool) "fired_ever" true (Obs.Slo.fired_ever slo ~name:"lat");
  (* Recovery traffic pushes the bad samples out of the fast window, but
     the slow window still burns: hysteresis keeps the alert up. *)
  for i = 0 to 10 do
    Obs.Window.record w Obs.Trace.Req_end ~ts:(1100 + (i * 50)) ~arg:10
  done;
  Obs.Slo.evaluate slo ~now:1600;
  Alcotest.(check int) "slow burn holds the alert up" 1
    (List.length (Obs.Slo.firing slo));
  (* Once both burns drop below clear_burn, it still takes clear_evals
     consecutive evaluations to clear. *)
  Obs.Slo.evaluate slo ~now:20_000;
  Obs.Slo.evaluate slo ~now:20_100;
  Alcotest.(check int) "two clean evals: still firing" 1
    (List.length (Obs.Slo.firing slo));
  Obs.Slo.evaluate slo ~now:20_200;
  Alcotest.(check int) "third clean eval clears" 0
    (List.length (Obs.Slo.firing slo));
  Alcotest.(check int) "evals counted" 6 (Obs.Slo.evals slo);
  (match Obs.Slo.transitions slo with
  | [ (1050, _, true); (20_200, _, false) ] -> ()
  | ts -> Alcotest.failf "unexpected transitions (%d)" (List.length ts));
  Alcotest.(check int) "one Slo_alert event per transition" 2
    (Obs.Counter.count counter Obs.Trace.Slo_alert);
  (* Construction guards. *)
  (match
     Obs.Slo.objective ~name:"bad"
       ~condition:(Obs.Slo.Ratio { bad = Obs.Trace.Mmu_deny; total = Obs.Trace.Emc_entry })
       ~budget:0.0 ()
   with
  | _ -> Alcotest.fail "zero budget must be rejected"
  | exception Invalid_argument _ -> ());
  match
    Obs.Slo.create ~fast_windows:8 ~slow_windows:4 ~window:w ~objectives:[] ()
  with
  | _ -> Alcotest.fail "fast > slow must be rejected"
  | exception Invalid_argument _ -> ()

(* A burst old enough to have left the fast window must not fire, however
   hard the slow window burns: firing needs BOTH windows over threshold. *)
let test_slo_needs_both_windows () =
  let w =
    Obs.Window.create ~hist_kinds:[ Obs.Trace.Req_end ] ~width:100 ~buckets:64
      ()
  in
  let slo =
    Obs.Slo.create ~fast_windows:5 ~slow_windows:30 ~window:w
      ~objectives:[ slo_latency_objective () ] ()
  in
  for i = 1 to 5 do
    Obs.Window.record w Obs.Trace.Req_end ~ts:(i * 10) ~arg:5000
  done;
  for i = 0 to 8 do
    Obs.Window.record w Obs.Trace.Req_end ~ts:(600 + (i * 50)) ~arg:10
  done;
  Obs.Slo.evaluate slo ~now:1050;
  match Obs.Slo.statuses slo with
  | [ s ] ->
      Alcotest.(check bool) "slow window burns" true
        (s.Obs.Slo.slow_burn >= 10.0);
      Alcotest.(check bool) "fast window is clean" true
        (s.Obs.Slo.fast_burn < 1.0);
      Alcotest.(check bool) "no fire on slow burn alone" false
        s.Obs.Slo.firing
  | ss -> Alcotest.failf "expected 1 status, got %d" (List.length ss)

(* ------------------------------------------------------------------ *)
(* Health watchdogs                                                    *)
(* ------------------------------------------------------------------ *)

let tight_rules =
  {
    Obs.Health.stall_cycles = 1000;
    deadline_cycles = 5000;
    denial_spike = 3;
    degrade_after = 2;
    unhealthy_after = 2;
    recover_after = 2;
  }

let test_health_stall_ladder () =
  let obs = Obs.Emitter.create () in
  let counter = Obs.Counter.attach obs (Obs.Counter.create ()) in
  let ring = Obs.Ring.attach obs (Obs.Ring.create ~capacity:32) in
  let chain = Obs.Audit.create ~key:audit_test_key in
  Obs.Emitter.set_audit obs (Some chain);
  let h = Obs.Health.create ~emit:obs ~rules:tight_rules () in
  let s = Obs.Health.register h ~name:"t0" ~now:0 in
  Alcotest.(check string) "initially healthy" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  (* A request goes in flight and the subject falls silent: the EMC-stall
     watchdog scores it bad once [stall_cycles] pass without a call. *)
  Obs.Health.begin_request s ~now:0;
  Obs.Health.note_emc s ~now:0;
  Obs.Health.check h ~now:500;
  Alcotest.(check string) "under the stall threshold" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  Obs.Health.check h ~now:1600;
  Alcotest.(check string) "one bad check is not enough" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  Obs.Health.check h ~now:1700;
  Alcotest.(check string) "degrade_after bad checks demote" "degraded"
    (Obs.Health.state_name (Obs.Health.state s));
  Obs.Health.check h ~now:1800;
  Obs.Health.check h ~now:1900;
  Alcotest.(check string) "unhealthy_after more demote again" "unhealthy"
    (Obs.Health.state_name (Obs.Health.state s));
  (* The request completes inside its deadline: clean checks walk the
     subject back up one level per recover_after streak. *)
  Obs.Health.note_emc s ~now:2000;
  Obs.Health.end_request h s ~now:2000 ~latency:2000;
  Obs.Health.check h ~now:2100;
  Obs.Health.check h ~now:2200;
  Alcotest.(check string) "recovery steps one level" "degraded"
    (Obs.Health.state_name (Obs.Health.state s));
  Obs.Health.check h ~now:2300;
  Obs.Health.check h ~now:2400;
  Alcotest.(check string) "full recovery" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  (match Obs.Health.transitions_of h s with
  | [ (1700, Obs.Health.Degraded); (1900, Obs.Health.Unhealthy);
      (2200, Obs.Health.Degraded); (2400, Obs.Health.Healthy) ] -> ()
  | ts -> Alcotest.failf "unexpected transition list (%d)" (List.length ts));
  Alcotest.(check int) "one event per transition" 4
    (Obs.Counter.count counter Obs.Trace.Health_transition);
  (* Events pack (id lsl 2 lor state index); subject 0 -> bare indices. *)
  Alcotest.(check (list int)) "packed state indices"
    [ 1; 2; 1; 0 ]
    (List.filter_map
       (fun e ->
         if e.Obs.Trace.kind = Obs.Trace.Health_transition then
           Some e.Obs.Trace.arg
         else None)
       (Obs.Ring.to_list ring));
  (* Transitions land on the audit rail and the chain verifies offline. *)
  Obs.Emitter.finalize obs ~now:2400;
  Alcotest.(check bool) "audit rail carries health records" true
    (contains ~sub:"health" (Obs.Audit.to_string chain));
  match
    Obs.Audit.verify_string ~key:audit_test_key (Obs.Audit.to_string chain)
  with
  | Ok n ->
      Alcotest.(check bool) "all transitions on the chain" true (n >= 4)
  | Error e -> Alcotest.failf "health audit chain rejected: %s" e

let test_health_overrun_and_spike () =
  let h = Obs.Health.create ~rules:tight_rules () in
  let s = Obs.Health.register h ~name:"t1" ~now:0 in
  (* Two consecutive completed-request deadline overruns demote. *)
  Obs.Health.begin_request s ~now:0;
  Obs.Health.note_emc s ~now:5900;
  Obs.Health.end_request h s ~now:6000 ~latency:6000;
  Obs.Health.check h ~now:6100;
  Obs.Health.begin_request s ~now:6100;
  Obs.Health.note_emc s ~now:12_400;
  Obs.Health.end_request h s ~now:12_500 ~latency:6400;
  Obs.Health.check h ~now:12_600;
  Alcotest.(check string) "overruns demote" "degraded"
    (Obs.Health.state_name (Obs.Health.state s));
  Alcotest.(check int) "overruns counted" 2 (Obs.Health.total_overruns s);
  Alcotest.(check int) "requests counted" 2 (Obs.Health.requests s);
  Obs.Health.check h ~now:12_700;
  Obs.Health.check h ~now:12_800;
  Alcotest.(check string) "recovered" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  (* A denial spike (>= denial_spike since the last check) scores bad;
     a sub-threshold trickle does not. *)
  for _ = 1 to 3 do Obs.Health.note_denial s done;
  Obs.Health.check h ~now:13_000;
  for _ = 1 to 3 do Obs.Health.note_denial s done;
  Obs.Health.check h ~now:13_100;
  Alcotest.(check string) "denial spikes demote" "degraded"
    (Obs.Health.state_name (Obs.Health.state s));
  Obs.Health.note_denial s;
  Obs.Health.note_denial s;
  Obs.Health.check h ~now:13_200;
  Obs.Health.check h ~now:13_300;
  Alcotest.(check string) "trickle under the spike recovers" "healthy"
    (Obs.Health.state_name (Obs.Health.state s));
  Alcotest.(check int) "denials counted" 8 (Obs.Health.total_denials s)

(* ------------------------------------------------------------------ *)
(* Live telemetry end to end: clock identity, anchors, kill-mid-run    *)
(* ------------------------------------------------------------------ *)

let live_objectives () =
  [
    Obs.Slo.objective ~name:"emc-latency"
      ~condition:
        (Obs.Slo.Latency_above { kind = Obs.Trace.Emc_entry; threshold = 65536 })
      ~budget:0.02 ();
    Obs.Slo.objective ~name:"audit-denials"
      ~condition:
        (Obs.Slo.Ratio { bad = Obs.Trace.Mmu_deny; total = Obs.Trace.Emc_entry })
      ~budget:0.02 ();
  ]

(* Attaching the whole live-telemetry complement (window, SLO evaluator,
   health watchdog, dashboard) must leave the run cycle-identical to a
   bare one: observability never advances the virtual clock. *)
let test_live_sinks_clock_free () =
  let bare =
    let m =
      Sim.Machine.create ~frames:32768 ~cma_frames:4096
        ~setting:Sim.Config.Erebor_full ()
    in
    ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
    Hw.Cycles.now (Sim.Machine.clock m)
  in
  let live =
    let obs = Obs.Emitter.create () in
    let window = Obs.Window.create ~width:1_000_000 ~buckets:64 () in
    let slo =
      Obs.Slo.create ~emit:obs ~window ~objectives:(live_objectives ()) ()
    in
    let health = Obs.Health.create ~emit:obs () in
    let m =
      Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~obs ~window
        ~setting:Sim.Config.Erebor_full ()
    in
    let subject =
      Obs.Health.register health ~name:"obs-test"
        ~now:(Hw.Cycles.now (Sim.Machine.clock m))
    in
    Obs.Health.watch health subject obs;
    ignore
      (Obs.Dash.attach obs
         (Obs.Dash.create ~slo ~health ~refresh_cycles:500_000 ~window ()));
    ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
    Hw.Cycles.now (Sim.Machine.clock m)
  in
  Alcotest.(check int) "live sinks never advance the clock" bare live

(* The regression-gate anchors (Tables 3/4) must render byte-identically
   whether or not live telemetry is attached to the bench machines. *)
let test_anchors_identical_under_telemetry () =
  let base = Workloads.Bench_gate.render_anchors () in
  let instrumented =
    Workloads.Bench_gate.render_anchors
      ~instrument:(fun obs ->
        let window = Obs.Window.create ~width:1_000_000 ~buckets:32 () in
        ignore (Obs.Window.attach obs window);
        ignore
          (Obs.Dash.attach obs
             (Obs.Dash.create ~refresh_cycles:1_000_000 ~window ())))
      ()
  in
  Alcotest.(check string) "anchors byte-identical under live telemetry" base
    instrumented

(* Kill-mid-run coverage for the dashboard snapshot: the emitter finalizer
   must leave a complete, parseable snapshot even when the body raises. *)
let test_dash_snapshot_abnormal_exit () =
  let obs = Obs.Emitter.create () in
  let window = Obs.Window.create ~width:100_000 ~buckets:64 () in
  let slo =
    Obs.Slo.create ~emit:obs ~window ~objectives:(live_objectives ()) ()
  in
  let health = Obs.Health.create ~emit:obs () in
  let m =
    Sim.Machine.create ~frames:32768 ~cma_frames:4096 ~obs ~window
      ~setting:Sim.Config.Erebor_full ()
  in
  let subject =
    Obs.Health.register health ~name:"obs-test"
      ~now:(Hw.Cycles.now (Sim.Machine.clock m))
  in
  Obs.Health.watch health subject obs;
  let dash =
    Obs.Dash.create ~label:"abnormal" ~slo ~health ~refresh_cycles:100_000
      ~window ()
  in
  ignore (Obs.Dash.attach obs dash);
  let snapshot = ref "" in
  Obs.Emitter.add_finalizer obs (fun ~now ->
      snapshot := Obs.Dash.snapshot_json dash ~now);
  let boom (ops : Sim.Machine.ops) =
    ops.Sim.Machine.compute 10_000_000;
    raise Exit
  in
  (match Sim.Machine.run m (small_spec ~body:boom ()) with
  | _ -> Alcotest.fail "expected the body to raise"
  | exception Exit -> ());
  let now = Hw.Cycles.now (Sim.Machine.clock m) in
  Obs.Emitter.finalize obs ~now;
  Alcotest.(check bool) "dash refreshed before the kill" true
    (Obs.Dash.refreshes dash > 0);
  Alcotest.(check bool) "finalizer wrote a snapshot" true (!snapshot <> "");
  let module J = Workloads.Bench_gate.Json in
  match J.parse !snapshot with
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  | Ok doc ->
      let str field =
        match J.member field doc with
        | Some (J.Str s) -> s
        | _ -> Alcotest.failf "snapshot missing %S" field
      in
      Alcotest.(check string) "schema" "erebor-dash/1" (str "schema");
      Alcotest.(check string) "label" "abnormal" (str "label");
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (Printf.sprintf "%s section present" field)
            true
            (J.member field doc <> None))
        [ "ts"; "window"; "slo"; "health"; "refreshes" ]

(* ------------------------------------------------------------------ *)
(* Journal: flight-recorder round trips, corruption, offline engines   *)
(* ------------------------------------------------------------------ *)

let journal_path name = Printf.sprintf ".test-journal-%s.ejrn" name
let rm_journal path = try Sys.remove path with Sys_error _ -> ()

(* Write a two-machine event list [(stream01, kind, ts, arg); ...] and
   finalize; returns nothing (read it back through the public reader). *)
let write_journal ?(segment_bytes = 512) ?(meta = []) ~path evs =
  let w = Obs.Journal.Writer.create ~segment_bytes ~meta ~path () in
  let s0 = Obs.Journal.Writer.stream w ~machine:"alpha" in
  let s1 = Obs.Journal.Writer.stream w ~machine:"beta" in
  let last = ref 0 in
  List.iter
    (fun (st, kind, ts, arg) ->
      Obs.Journal.Writer.record w
        ~stream:(if st = 0 then s0 else s1)
        kind ~ts ~arg;
      if ts > !last then last := ts)
    evs;
  Obs.Journal.Writer.close w ~now:!last

let read_journal ?strict path =
  match Obs.Journal.read ?strict ~path () with
  | Ok (evs, info) -> (evs, info)
  | Error e -> Alcotest.failf "journal read: %s" e

(* Random event streams survive the delta/varint codec bit for bit:
   arbitrary kinds, non-monotone timestamps (negative deltas stress the
   zigzag path), full-range arguments, interleaved streams, and a segment
   size small enough that every run seals several segments. *)
let prop_journal_roundtrip =
  QCheck.Test.make ~name:"journal roundtrip = identity" ~count:60
    QCheck.(
      list_of_size
        Gen.(0 -- 400)
        (quad (int_bound 1) (int_bound (Obs.Trace.n_kinds - 1))
           (int_range (-50) 5_000) QCheck.int))
    (fun raw ->
      let path = journal_path "prop" in
      let _, evs =
        List.fold_left
          (fun (ts, acc) (st, ki, dts, arg) ->
            let ts = Stdlib.max 0 (ts + dts) in
            (ts, (st, Obs.Trace.kind_of_index ki, ts, arg) :: acc))
          (0, []) raw
      in
      let evs = List.rev evs in
      write_journal ~path evs;
      let got, info = read_journal path in
      rm_journal path;
      info.Obs.Journal.complete
      && info.Obs.Journal.events = List.length evs
      && List.length got = List.length evs
      && List.for_all2
           (fun (st, k, ts, arg) (e : Obs.Journal.event) ->
             e.Obs.Journal.stream = st
             && e.Obs.Journal.kind = k
             && e.Obs.Journal.ts = ts
             && e.Obs.Journal.arg = arg)
           evs got)

let sample_events n =
  List.init n (fun i ->
      (i mod 2, Obs.Trace.Page_fault, i * 10, (i land 7) * 4096))

let expect_journal_error name path ~msg_frag =
  match Obs.Journal.read ~path () with
  | Ok _ -> Alcotest.failf "%s: corruption accepted" name
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the cause (%S in %S)" name msg_frag e)
        true
        (contains ~sub:msg_frag e)

let test_journal_corruption_rejected () =
  let path = journal_path "corrupt" in
  write_journal ~path (sample_events 300);
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let write_raw s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  (* Bit-flip inside the last frame's payload: CRC mismatch, named frame. *)
  let flipped = Bytes.of_string raw in
  let k = Bytes.length flipped - 1 in
  Bytes.set flipped k (Char.chr (Char.code (Bytes.get flipped k) lxor 1));
  write_raw (Bytes.to_string flipped);
  expect_journal_error "bit flip" path ~msg_frag:"CRC mismatch";
  expect_journal_error "bit flip frame id" path ~msg_frag:"frame";
  (* Trailing data after the END frame is never silently ignored: a whole
     duplicated frame is "data after END", junk bytes are an unknown tag.
     Find the last frame by walking the header chain (magic is 6 bytes,
     each frame is 12 header bytes + a LE u32 payload length). *)
  let last_frame =
    let u32 off =
      Char.code raw.[off]
      lor (Char.code raw.[off + 1] lsl 8)
      lor (Char.code raw.[off + 2] lsl 16)
      lor (Char.code raw.[off + 3] lsl 24)
    in
    let rec walk off =
      let next = off + 12 + u32 (off + 4) in
      if next >= String.length raw then off else walk next
    in
    walk 6
  in
  write_raw (raw ^ String.sub raw last_frame (String.length raw - last_frame));
  expect_journal_error "data after END" path ~msg_frag:"data after END";
  write_raw (raw ^ "XXXXXXXXXXXX");
  expect_journal_error "junk after END" path ~msg_frag:"unknown tag";
  (* A clobbered magic fails before any decoding. *)
  write_raw ("X" ^ String.sub raw 1 (String.length raw - 1));
  expect_journal_error "bad magic" path ~msg_frag:"bad magic";
  (* A tail cut mid-frame is tolerated by default (sealed segments remain
     readable, [complete = false]) and a precise error under [~strict]. *)
  write_raw (String.sub raw 0 (String.length raw - 3));
  let evs, info = read_journal path in
  Alcotest.(check bool) "truncated tail: not finalized" false
    info.Obs.Journal.complete;
  Alcotest.(check int) "truncated tail: sealed events intact" 300
    (List.length evs);
  (match Obs.Journal.read ~strict:true ~path () with
  | Ok _ -> Alcotest.fail "strict read accepted a truncated file"
  | Error e ->
      Alcotest.(check bool) "strict truncation error" true
        (contains ~sub:"mid-frame" e || contains ~sub:"mid-header" e
        || contains ~sub:"never finalized" e));
  rm_journal path

let test_journal_kill_mid_run () =
  let path = journal_path "killed" in
  let w = Obs.Journal.Writer.create ~segment_bytes:512 ~path () in
  let s = Obs.Journal.Writer.stream w ~machine:"sim" in
  let evs = sample_events 2000 in
  List.iter
    (fun (_, kind, ts, arg) -> Obs.Journal.Writer.record w ~stream:s kind ~ts ~arg)
    evs;
  (* No close: the process "died". Sealed segments were flushed frame by
     frame, so the file is readable up to the last seal. *)
  Alcotest.(check bool) "several segments sealed" true
    (Obs.Journal.Writer.segments w > 2);
  let got, info = read_journal path in
  Alcotest.(check bool) "not finalized" false info.Obs.Journal.complete;
  Alcotest.(check int) "sealed segments readable" info.Obs.Journal.segments
    (Obs.Journal.Writer.segments w);
  Alcotest.(check bool) "a true prefix survives" true
    (List.length got > 0 && List.length got < 2000);
  List.iteri
    (fun i (e : Obs.Journal.event) ->
      let _, k, ts, arg = List.nth evs i in
      Alcotest.(check bool) "prefix event intact" true
        (e.Obs.Journal.kind = k && e.Obs.Journal.ts = ts
        && e.Obs.Journal.arg = arg))
    got;
  Obs.Journal.Writer.close w ~now:0;
  rm_journal path

(* The journal is a complete, faithful recording: a snapshot rebuilt purely
   from replaying it equals the machine's live counter-derived snapshot. *)
let test_journal_snapshot_replay () =
  let path = journal_path "snapshot" in
  let obs = Obs.Emitter.create () in
  let w = Obs.Journal.Writer.create ~path () in
  let m =
    Sim.Machine.create ~obs ~journal:w ~frames:32768 ~cma_frames:4096
      ~setting:Sim.Config.Erebor_full ()
  in
  ignore (Sim.Machine.run m (small_spec ~body:rich_body ()));
  let snap = Sim.Machine.snapshot m in
  let now = Hw.Cycles.now (Sim.Machine.clock m) in
  Obs.Emitter.finalize obs ~now;
  let robs = Obs.Emitter.create () in
  let rc = Obs.Counter.attach robs (Obs.Counter.create ()) in
  let info =
    match
      Obs.Journal.fold ~path ~init:() (fun () (e : Obs.Journal.event) ->
          Obs.Emitter.emit robs e.Obs.Journal.kind ~ts:e.Obs.Journal.ts
            ~arg:e.Obs.Journal.arg)
    with
    | Ok ((), info) -> info
    | Error e -> Alcotest.failf "replay: %s" e
  in
  Alcotest.(check bool) "finalized by emitter finalizer" true
    info.Obs.Journal.complete;
  Alcotest.(check int) "final timestamp = machine clock" now
    info.Obs.Journal.last_ts;
  let c k = Obs.Counter.count rc k in
  List.iter
    (fun (label, k, expected) -> Alcotest.(check int) label expected (c k))
    [
      ("page faults", Obs.Trace.Page_fault, snap.Sim.Stats.page_faults);
      ("timer irqs", Obs.Trace.Timer_irq, snap.Sim.Stats.timer_irqs);
      ("ve exits", Obs.Trace.Ve_exit, snap.Sim.Stats.ve_exits);
      ("syscalls", Obs.Trace.Syscall, snap.Sim.Stats.syscalls);
      ("emc total", Obs.Trace.Emc_entry, snap.Sim.Stats.emc_total);
      ("emc mmu", Obs.Trace.emc_mmu, snap.Sim.Stats.emc_mmu);
      ("emc cr", Obs.Trace.emc_cr, snap.Sim.Stats.emc_cr);
      ("emc msr", Obs.Trace.emc_msr, snap.Sim.Stats.emc_msr);
      ("emc idt", Obs.Trace.emc_idt, snap.Sim.Stats.emc_idt);
      ("emc smap", Obs.Trace.emc_smap, snap.Sim.Stats.emc_smap);
      ("emc ghci", Obs.Trace.emc_ghci, snap.Sim.Stats.emc_ghci);
      ("ctx switches", Obs.Trace.Context_switch, snap.Sim.Stats.context_switches);
      ("denies", Obs.Trace.Mmu_deny, snap.Sim.Stats.mmu_denies);
    ];
  rm_journal path

(* A small hand-built single-stream scenario shared by the three offline
   engines: boot span, then one request whose window covers a Run span
   with a nested page-fault handler, closing 20 cycles after Run ends.

     boot [0,100]   req [100,220]   run [100,200]   pf [150,170]  *)
let scenario_a =
  let req_arg = (7 lsl 2) lor (1 lsl 1) lor 1 in
  [
    (0, Obs.Trace.span_begin Obs.Trace.Boot, 0, 0);
    (0, Obs.Trace.span_end Obs.Trace.Boot, 100, 0);
    (0, Obs.Trace.Req_begin, 100, req_arg);
    (0, Obs.Trace.span_begin Obs.Trace.Run, 100, 0);
    (0, Obs.Trace.Page_fault, 150, 4096);
    (0, Obs.Trace.span_begin Obs.Trace.Pf_handler, 150, 0);
    (0, Obs.Trace.span_end Obs.Trace.Pf_handler, 170, 0);
    (0, Obs.Trace.Page_fault, 180, 12288);
    (0, Obs.Trace.span_end Obs.Trace.Run, 200, 0);
    (0, Obs.Trace.Req_end, 220, req_arg);
  ]

let test_journal_query () =
  let path = journal_path "query" in
  write_journal ~path scenario_a;
  (* By_kind: page faults aggregate count / arg-sum / extrema. *)
  (match Obs.Query.run ~path () with
  | Error e -> Alcotest.failf "query: %s" e
  | Ok (rows, _) -> (
      match
        List.find_opt
          (fun (r : Obs.Query.row) -> r.Obs.Query.label = "page_fault")
          rows
      with
      | None -> Alcotest.fail "no page_fault row"
      | Some r ->
          Alcotest.(check int) "pf count" 2 r.Obs.Query.count;
          Alcotest.(check int) "pf arg sum" 16384 r.Obs.Query.sum;
          Alcotest.(check int) "pf min" 4096 r.Obs.Query.min;
          Alcotest.(check int) "pf max" 12288 r.Obs.Query.max));
  (* Kind + time-range filter composes. *)
  (match
     Obs.Query.run
       ~filter:
         {
           Obs.Query.no_filter with
           Obs.Query.kinds = [ Obs.Trace.Page_fault ];
           t0 = Some 160;
         }
       ~path ()
   with
  | Error e -> Alcotest.failf "filtered query: %s" e
  | Ok (rows, _) ->
      Alcotest.(check int) "one row" 1 (List.length rows);
      let r = List.hd rows in
      Alcotest.(check int) "one late fault" 1 r.Obs.Query.count;
      Alcotest.(check int) "its arg" 12288 r.Obs.Query.sum);
  (* By_phase: inclusive span durations per phase. *)
  (match Obs.Query.run ~group:Obs.Query.By_phase ~path () with
  | Error e -> Alcotest.failf "phase query: %s" e
  | Ok (rows, _) ->
      Alcotest.(check int) "three phases" 3 (List.length rows);
      let sums =
        List.map (fun (r : Obs.Query.row) -> r.Obs.Query.sum) rows
        |> List.sort Stdlib.compare
      in
      Alcotest.(check (list int)) "boot/run inclusive, pf nested" [ 20; 100; 100 ]
        sums);
  rm_journal path

let test_journal_critical () =
  let path = journal_path "critical" in
  write_journal ~path scenario_a;
  (match Obs.Critical.analyze ~path () with
  | Error e -> Alcotest.failf "critical: %s" e
  | Ok (rep, _) ->
      Alcotest.(check int) "one request" 1 rep.Obs.Critical.n;
      let r = List.hd rep.Obs.Critical.requests in
      Alcotest.(check int) "trace id" 7 r.Obs.Critical.trace_id;
      Alcotest.(check bool) "root" true r.Obs.Critical.root;
      Alcotest.(check int) "total latency" 120 r.Obs.Critical.total;
      Alcotest.(check int) "service = run overlap" 100 r.Obs.Critical.service;
      Alcotest.(check int) "queueing = remainder" 20 r.Obs.Critical.queueing;
      (match r.Obs.Critical.path with
      | [ a; b ] ->
          Alcotest.(check bool) "dominant blame user:run 80" true
            (a.Obs.Critical.bphase = Obs.Trace.Run
            && a.Obs.Critical.bdomain = Obs.Trace.User
            && a.Obs.Critical.bcycles = 80);
          Alcotest.(check bool) "nested blame kernel:pf 20" true
            (b.Obs.Critical.bphase = Obs.Trace.Pf_handler
            && b.Obs.Critical.bdomain = Obs.Trace.Kernel
            && b.Obs.Critical.bcycles = 20)
      | p -> Alcotest.failf "expected 2 blame entries, got %d" (List.length p)));
  rm_journal path

let test_journal_diff () =
  let path_a = journal_path "diff-a" in
  let path_b = journal_path "diff-b" in
  write_journal ~path:path_a scenario_a;
  (* Self-diff is exactly silent. *)
  (match Obs.Diff.compare_files ~a:path_a ~b:path_a with
  | Error e -> Alcotest.failf "self diff: %s" e
  | Ok d ->
      Alcotest.(check bool) "all deltas zero" true
        (List.for_all
           (fun (e : Obs.Diff.entry) -> e.Obs.Diff.delta = 0)
           d.Obs.Diff.entries);
      Alcotest.(check int) "no regressions"
        0
        (List.length (Obs.Diff.regressions ~min_cycles:0 d)));
  (* Run B: the Run span stretches 100 extra user cycles — flagged. *)
  let scenario_b =
    List.map
      (fun (st, k, ts, arg) ->
        match k with
        | Obs.Trace.Span_end Obs.Trace.Run -> (st, k, 300, arg)
        | Obs.Trace.Req_end -> (st, k, 320, arg)
        | _ -> (st, k, ts, arg))
      scenario_a
  in
  write_journal ~path:path_b scenario_b;
  (match Obs.Diff.compare_files ~a:path_a ~b:path_b with
  | Error e -> Alcotest.failf "seeded diff: %s" e
  | Ok d ->
      let regs = Obs.Diff.regressions ~threshold:5.0 ~min_cycles:10 d in
      Alcotest.(check bool) "user/run regression flagged" true
        (List.exists
           (fun (e : Obs.Diff.entry) ->
             e.Obs.Diff.ephase = Obs.Trace.Run
             && e.Obs.Diff.edomain = Obs.Trace.User
             && e.Obs.Diff.delta = 100)
           regs));
  rm_journal path_a;
  rm_journal path_b

(* ------------------------------------------------------------------ *)
(* Fleet telemetry: sketches, heavy hitters, exemplars, aggregator     *)
(* ------------------------------------------------------------------ *)

(* The exact order statistic [quantile] targets: rank ceil(p * n),
   1-based, over the sorted stream. *)
let oracle_quantile sorted ~p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (idx - 1)))

let sketch_of ?alpha ?capacity vs =
  let s = Obs.Sketch.create ?alpha ?capacity () in
  List.iter (Obs.Sketch.record s) vs;
  s

let check_sketch_accuracy name values =
  let sk = sketch_of values in
  let sorted = Array.of_list (List.sort compare values) in
  List.iter
    (fun p ->
      let est = Obs.Sketch.quantile sk ~p in
      let exact = oracle_quantile sorted ~p in
      let bound =
        (Obs.Sketch.alpha sk *. float_of_int (abs exact)) +. 1.0
      in
      if float_of_int (abs (est - exact)) > bound then
        Alcotest.failf "%s: p=%.3f est %d vs exact %d (bound %.1f)" name p est
          exact bound)
    [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99; 0.999 ]

(* Deterministic LCG so the adversarial streams are reproducible. *)
let lcg seed =
  let s = ref seed in
  fun m ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod m

let test_sketch_accuracy_adversarial () =
  check_sketch_accuracy "constant" (List.init 1000 (fun _ -> 777));
  check_sketch_accuracy "single-sample" [ 42 ];
  check_sketch_accuracy "two-sample" [ 5; 5_000_000 ];
  check_sketch_accuracy "bimodal"
    (List.init 1000 (fun i -> if i mod 2 = 0 then 10 else 1_000_000));
  check_sketch_accuracy "uniform" (List.init 2048 (fun i -> i + 1));
  check_sketch_accuracy "zeros+positive"
    (List.init 600 (fun i -> if i mod 4 = 0 then 0 else i));
  let rand = lcg 987654321 in
  check_sketch_accuracy "heavy-tailed"
    (List.init 2000 (fun _ ->
         let e = rand 9 in
         let base = int_of_float (10.0 ** float_of_int e) in
         base + rand (max 1 base)))

(* Satellite: Obs.Histogram.percentile and Obs.Sketch.quantile must agree
   on identical streams — exactly on the pinned edges (empty, single
   sample, p <= 0, p >= 1), and within one log2 bucket band elsewhere
   (the histogram's own resolution). *)
let test_sketch_histogram_crosscheck () =
  let kind = Obs.Trace.Req_end in
  let rand = lcg 24681357 in
  let streams =
    [
      ("empty", []);
      ("single", [ 5000 ]);
      ("constant", List.init 300 (fun _ -> 123456));
      ("uniform", List.init 1000 (fun i -> i + 1));
      ("bimodal", List.init 500 (fun i -> if i mod 3 = 0 then 64 else 262144));
      ("random", List.init 800 (fun _ -> rand 1_000_000));
    ]
  in
  List.iter
    (fun (name, vs) ->
      let obs = Obs.Emitter.create () in
      let h = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
      let sk = sketch_of vs in
      List.iter (fun v -> Obs.Emitter.emit obs kind ~ts:0 ~arg:v) vs;
      List.iter
        (fun p ->
          let hv = Obs.Histogram.percentile h kind ~p in
          let sv = Obs.Sketch.quantile sk ~p in
          if vs = [] || List.length vs = 1 || p <= 0.0 || p >= 1.0 then begin
            if hv <> sv then
              Alcotest.failf "%s: edge p=%.2f diverges (hist %d, sketch %d)"
                name p hv sv
          end
          else begin
            let bh = Obs.Histogram.bucket_of hv
            and bs = Obs.Histogram.bucket_of sv in
            if abs (bh - bs) > 1 then
              Alcotest.failf
                "%s: p=%.2f outside the log2 band (hist %d b%d, sketch %d b%d)"
                name p hv bh sv bs
          end)
        [ -0.5; 0.0; 0.25; 0.50; 0.95; 0.99; 1.0; 1.5 ])
    streams

let test_sketch_collapse_and_edges () =
  (* Collapse-lowest: a tiny capacity keeps the tail accurate while the
     collapsed low end stays within [min, max]. *)
  let sk = Obs.Sketch.create ~capacity:8 () in
  List.iter (Obs.Sketch.record sk) (List.init 1000 (fun i -> i + 1));
  Alcotest.(check bool) "collapse engaged" true (Obs.Sketch.bucket_floor sk > 0);
  let p99 = Obs.Sketch.quantile sk ~p:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "tail accuracy survives collapse (p99=%d)" p99)
    true
    (abs (p99 - 990) <= 11);
  let p01 = Obs.Sketch.quantile sk ~p:0.01 in
  Alcotest.(check bool) "collapsed head stays in [min,max]" true
    (p01 >= 1 && p01 <= 1000);
  (* Same multiset through a different record order: byte-identical. *)
  let sk2 = Obs.Sketch.create ~capacity:8 () in
  List.iter (Obs.Sketch.record sk2) (List.init 1000 (fun i -> 1000 - i));
  Alcotest.(check string) "record order never changes state"
    (Obs.Sketch.serialize sk) (Obs.Sketch.serialize sk2);
  (* Deserialize rejects corruption with a named cause. *)
  let blob = Obs.Sketch.serialize sk in
  (match Obs.Sketch.deserialize (blob ^ "x") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error e -> Alcotest.(check bool) "trailing named" true
      (contains ~sub:"trailing" e));
  (match Obs.Sketch.deserialize "not a sketch" with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error e ->
      Alcotest.(check bool) "magic named" true (contains ~sub:"magic" e))

(* qcheck: merging per-chunk sketches — in any order or grouping — leaves
   byte-identical state, equal to recording the whole stream into one
   sketch. Small capacities exercise the collapse path. *)
let prop_sketch_merge_canonical =
  QCheck.Test.make ~name:"sketch merge assoc/comm: canonical bytes" ~count:60
    QCheck.(
      pair (int_range 4 64)
        (list_of_size
           Gen.(0 -- 6)
           (list_of_size Gen.(0 -- 60) (int_bound (1 lsl 30)))))
    (fun (cap, chunks) ->
      let mk () = Obs.Sketch.create ~capacity:cap () in
      let parts =
        List.map
          (fun vs ->
            let s = mk () in
            List.iter (Obs.Sketch.record s) vs;
            s)
          chunks
      in
      let merged l =
        let acc = mk () in
        List.iter (fun s -> Obs.Sketch.merge ~into:acc s) l;
        Obs.Sketch.serialize acc
      in
      let all = mk () in
      List.iter (fun vs -> List.iter (Obs.Sketch.record all) vs) chunks;
      let reference = Obs.Sketch.serialize all in
      let halves l =
        let rec go i acc = function
          | rest when i = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: xs -> go (i - 1) (x :: acc) xs
        in
        go (List.length l / 2) [] l
      in
      let a, b = halves parts in
      let regrouped =
        let acc = mk () in
        (match Obs.Sketch.deserialize (merged a) with
        | Ok s -> Obs.Sketch.merge ~into:acc s
        | Error e -> Alcotest.failf "half deserialize: %s" e);
        (match Obs.Sketch.deserialize (merged b) with
        | Ok s -> Obs.Sketch.merge ~into:acc s
        | Error e -> Alcotest.failf "half deserialize: %s" e);
        Obs.Sketch.serialize acc
      in
      merged parts = reference
      && merged (List.rev parts) = reference
      && regrouped = reference
      &&
      match Obs.Sketch.deserialize reference with
      | Ok s -> Obs.Sketch.serialize s = reference
      | Error _ -> false)

(* qcheck: space-saving guarantees. For any stream and a deliberately
   tiny table: tracked keys obey lower <= exact <= upper, untracked keys
   have exact <= floor_total, and merged summaries are byte-identical
   for any merge order. *)
let prop_topk_bounds =
  QCheck.Test.make ~name:"topk error bounds + merge invariance" ~count:80
    QCheck.(list_of_size Gen.(0 -- 240) (int_bound 11))
    (fun ids ->
      (* Skew the alphabet so some keys genuinely dominate. *)
      let keys = List.map (fun i -> Printf.sprintf "k%d" (i * i / 24)) ids in
      let exact = Hashtbl.create 16 in
      List.iter
        (fun k ->
          Hashtbl.replace exact k
            (1 + try Hashtbl.find exact k with Not_found -> 0))
        keys;
      let exact_count k = try Hashtbl.find exact k with Not_found -> 0 in
      (* Three machines see interleaved thirds of the stream. *)
      let parts = Array.init 3 (fun _ -> Obs.Topk.create ~capacity:4 ()) in
      List.iteri
        (fun i k -> Obs.Topk.observe parts.(i mod 3) ~key:k ~weight:1)
        keys;
      let sums = Array.to_list (Array.map Obs.Topk.seal parts) in
      let merged =
        List.fold_left Obs.Topk.merge_summaries Obs.Topk.empty_summary sums
      in
      let merged_rev =
        List.fold_left Obs.Topk.merge_summaries Obs.Topk.empty_summary
          (List.rev sums)
      in
      let bounds_ok =
        List.for_all
          (fun (r : Obs.Topk.ranked) ->
            let e = exact_count r.Obs.Topk.rkey in
            r.Obs.Topk.lower <= e && e <= r.Obs.Topk.upper)
          (Obs.Topk.top merged)
      in
      let tracked =
        List.map (fun (r : Obs.Topk.ranked) -> r.Obs.Topk.rkey)
          (Obs.Topk.top merged)
      in
      let absent_ok =
        Hashtbl.fold
          (fun k c ok ->
            ok && (List.mem k tracked || c <= Obs.Topk.floor_total merged))
          exact true
      in
      bounds_ok && absent_ok
      && Obs.Topk.serialize merged = Obs.Topk.serialize merged_rev
      &&
      match Obs.Topk.deserialize (Obs.Topk.serialize merged) with
      | Ok s -> Obs.Topk.serialize s = Obs.Topk.serialize merged
      | Error _ -> false)

let test_exemplar_reservoir () =
  let mk l =
    let t = Obs.Exemplar.create () in
    List.iter
      (fun (lat, id, m, off, ts) ->
        Obs.Exemplar.record t ~latency:lat ~trace_id:id ~machine:m ~offset:off
          ~ts)
      l;
    t
  in
  let a = mk [ (100, 1, "m0", 10, 5); (900, 2, "m0", 20, 6) ] in
  let b = mk [ (1000, 3, "m1", 30, 7); (80, 4, "m1", 40, 8) ] in
  (* 900 and 1000 share band 10; the slower one wins any merge order. *)
  let m1 = Obs.Exemplar.create () in
  Obs.Exemplar.merge ~into:m1 a;
  Obs.Exemplar.merge ~into:m1 b;
  let m2 = Obs.Exemplar.create () in
  Obs.Exemplar.merge ~into:m2 b;
  Obs.Exemplar.merge ~into:m2 a;
  Alcotest.(check string) "merge order invariant"
    (Obs.Exemplar.serialize m1) (Obs.Exemplar.serialize m2);
  (match Obs.Exemplar.best m1 ~band:(Obs.Exemplar.band_of 1000) with
  | Some e ->
      Alcotest.(check int) "slowest wins the band" 3 e.Obs.Exemplar.i_trace_id;
      Alcotest.(check string) "machine travels" "m1" e.Obs.Exemplar.i_machine
  | None -> Alcotest.fail "band empty after merge");
  (* for_value falls back to the nearest occupied band. *)
  (match Obs.Exemplar.for_value m1 500 with
  | Some e -> Alcotest.(check int) "nearest band below" 100 e.Obs.Exemplar.i_latency
  | None -> Alcotest.fail "for_value found nothing");
  match Obs.Exemplar.deserialize (Obs.Exemplar.serialize m1) with
  | Ok r ->
      Alcotest.(check string) "roundtrip" (Obs.Exemplar.serialize m1)
        (Obs.Exemplar.serialize r)
  | Error e -> Alcotest.failf "roundtrip: %s" e

(* A seeded tail spike in one tenant must be attributable from the merged
   snapshot alone: Topk ranks it first and the p99 exemplar carries the
   spike's trace id — for every merge order. *)
let test_agg_spike_attribution () =
  let mk_part m = Obs.Agg.part ~machine:m () in
  let parts = [| mk_part "m0"; mk_part "m1"; mk_part "m2" |] in
  let rand = lcg 1357924680 in
  for i = 0 to 899 do
    let p = parts.(i mod 3) in
    let alice = Obs.Agg.tenant p "alice" in
    Obs.Agg.record p alice Obs.Trace.Req_end ~latency:(500 + rand 200)
      ~trace_id:i ~offset:(-1) ~ts:i
  done;
  (* bob's tail spikes: 40 of 2400 requests (> 1% of the 3300-request
     fleet) at 9M cycles, so the fleet p99 lands in the spike band. The
     seeded request i = 0 wins the exemplar tie-break (equal latency,
     lowest trace id) and carries a journal offset. *)
  for i = 0 to 2399 do
    let p = parts.(i mod 3) in
    let bob = Obs.Agg.tenant p "bob" in
    let spiked = i mod 60 = 0 in
    Obs.Agg.record p bob Obs.Trace.Req_end
      ~latency:(if spiked then 9_000_000 else 600 + rand 200)
      ~trace_id:(10_000 + i)
      ~offset:(if i = 0 then 4242 else -1)
      ~ts:(1000 + i)
  done;
  let sealed = Array.to_list (Array.map Obs.Agg.seal parts) in
  let snap = Obs.Agg.merge_all sealed in
  let perm = Obs.Agg.merge_all (List.rev sealed) in
  Alcotest.(check string) "merge order byte-identical"
    (Obs.Agg.serialize snap) (Obs.Agg.serialize perm);
  Alcotest.(check string) "render deterministic" (Obs.Agg.render snap)
    (Obs.Agg.render perm);
  (match Obs.Agg.top ~n:1 snap with
  | [ r ] ->
      Alcotest.(check string) "spiked tenant ranks first" "bob/req.end"
        r.Obs.Topk.rkey
  | _ -> Alcotest.fail "no heavy hitter");
  (match Obs.Agg.exemplar_for snap ~p:0.99 with
  | Some e ->
      Alcotest.(check int) "p99 exemplar is the spike" 10_000
        e.Obs.Exemplar.i_trace_id;
      Alcotest.(check int) "journal offset travels" 4242
        e.Obs.Exemplar.i_offset;
      Alcotest.(check string) "machine travels" "m0" e.Obs.Exemplar.i_machine
  | None -> Alcotest.fail "no p99 exemplar");
  Alcotest.(check (list string)) "machines sorted" [ "m0"; "m1"; "m2" ]
    (Obs.Agg.machines snap);
  Alcotest.(check int) "request total" 3300 (Obs.Agg.requests snap);
  (match Obs.Agg.deserialize (Obs.Agg.serialize snap) with
  | Ok r ->
      Alcotest.(check string) "snapshot roundtrip" (Obs.Agg.serialize snap)
        (Obs.Agg.serialize r)
  | Error e -> Alcotest.failf "agg roundtrip: %s" e);
  let panel = Obs.Agg.render snap in
  Alcotest.(check bool) "panel lists tenants" true
    (contains ~sub:"alice" panel && contains ~sub:"bob" panel);
  Alcotest.(check bool) "panel shows exemplar offset" true
    (contains ~sub:"offset 4242" panel)

(* The whole fleet record path — sketch + topk hit + exemplar challenge —
   in steady state allocates nothing. *)
let test_fleet_record_allocation_free () =
  let p = Obs.Agg.part ~machine:"m0" () in
  let ten = Obs.Agg.tenant p "alice" in
  let spin () =
    for i = 1 to 10_000 do
      Obs.Agg.record p ten Obs.Trace.Req_end
        ~latency:(1 + (i land 4095))
        ~trace_id:i ~offset:(i * 64) ~ts:i
    done
  in
  spin ();
  let before = Gc.minor_words () in
  spin ();
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "fleet record allocates nothing (%.0f words)" delta)
    true (delta <= 32.0)

(* Satellite: escape_label / escape_json round-trips, plus the new
   OpenMetrics surface (# EOF terminator, # UNIT metadata, exemplar
   syntax on sketch bucket lines). *)
let unescape_label s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    (if s.[!i] = '\\' && !i + 1 < String.length s then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let prop_escape_label_roundtrip =
  QCheck.Test.make ~name:"escape_label roundtrip" ~count:200
    QCheck.(string_gen (Gen.oneofl [ 'a'; '"'; '\\'; '\n'; ' '; 'z' ]))
    (fun s -> unescape_label (Obs.Metrics.escape_label s) = s)

let prop_escape_json_roundtrip =
  QCheck.Test.make ~name:"escape_json roundtrip via parser" ~count:200
    QCheck.(
      string_gen
        (Gen.oneofl [ 'a'; '"'; '\\'; '\n'; '\r'; '\t'; '\001'; 'q' ]))
    (fun s ->
      let quoted = "\"" ^ Obs.Metrics.escape_json s ^ "\"" in
      match Workloads.Bench_gate.Json.parse quoted with
      | Ok (Workloads.Bench_gate.Json.Str v) -> v = s
      | _ -> false)

let test_metrics_openmetrics_sketch () =
  let sk = sketch_of (List.init 500 (fun i -> i + 1)) in
  let ex = Obs.Exemplar.create () in
  Obs.Exemplar.record ex ~latency:499 ~trace_id:0xBEEF ~machine:"m0"
    ~offset:777 ~ts:123;
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add reg ~label:"fleet" ~sketch:sk ~exemplar:ex ();
  let prom = Obs.Metrics.to_prometheus reg in
  Alcotest.(check bool) "ends with # EOF" true
    (let n = String.length prom in
     n >= 6 && String.sub prom (n - 6) 6 = "# EOF\n");
  Alcotest.(check bool) "UNIT metadata" true
    (contains ~sub:"# UNIT erebor_sketch_latency_cycles cycles" prom
    && contains ~sub:"# UNIT erebor_sketch_quantile_cycles cycles" prom);
  Alcotest.(check bool) "TYPE metadata" true
    (contains ~sub:"# TYPE erebor_sketch_latency_cycles histogram" prom
    && contains ~sub:"# TYPE erebor_sketch_quantile_cycles summary" prom);
  Alcotest.(check bool) "quantile series" true
    (contains ~sub:{|erebor_sketch_quantile_cycles{source="fleet",quantile="0.99"}|}
       prom);
  Alcotest.(check bool) "exemplar on the 499 bucket line" true
    (contains ~sub:{|# {trace_id="0xbeef",machine="m0",offset="777"} 499 123|}
       prom);
  Alcotest.(check bool) "+Inf closes the histogram" true
    (contains ~sub:{|erebor_sketch_latency_cycles_bucket{source="fleet",le="+Inf"} 500|}
       prom);
  let json = Obs.Metrics.to_json reg in
  match Workloads.Bench_gate.Json.parse json with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok _ ->
      Alcotest.(check bool) "json carries sketch + exemplars" true
        (contains ~sub:{|"sketch":{"alpha":0.01|} json
        && contains ~sub:{|"trace_id":48879|} json)

(* Journal frame offsets: what Writer.offset reported at record time is
   what the reader hands back in event.off, and it points at a SEGM
   frame header. *)
let test_journal_frame_offsets () =
  let path = journal_path "offsets" in
  let w = Obs.Journal.Writer.create ~segment_bytes:512 ~path () in
  let s = Obs.Journal.Writer.stream w ~machine:"sim" in
  let expected =
    List.init 600 (fun i ->
        let off = Obs.Journal.Writer.offset w in
        Obs.Journal.Writer.record w ~stream:s Obs.Trace.Page_fault ~ts:(i * 7)
          ~arg:(i land 63 * 4096);
        off)
  in
  Obs.Journal.Writer.close w ~now:(600 * 7);
  let evs, info = read_journal path in
  Alcotest.(check bool) "several frames" true (info.Obs.Journal.segments > 2);
  let raw = In_channel.with_open_bin path In_channel.input_all in
  List.iter2
    (fun off (e : Obs.Journal.event) ->
      Alcotest.(check int) "offset matches reader" off e.Obs.Journal.off;
      Alcotest.(check string) "offset points at a SEGM frame" "SEGM"
        (String.sub raw off 4))
    expected evs;
  rm_journal path

let () =
  Alcotest.run "obs"
    [
      ( "sinks",
        [
          Alcotest.test_case "emitter fanout" `Quick test_emitter_fanout;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "with_span" `Quick test_with_span;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "counter sink mirrors legacy stats" `Quick
            test_counter_equivalence;
          Alcotest.test_case "emc_idt counted" `Quick test_emc_idt_counted;
          Alcotest.test_case "denial counts exact" `Quick test_denial_counts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden-trace determinism" `Quick
            test_golden_trace_determinism;
          Alcotest.test_case "trace counts match snapshot" `Quick
            test_trace_counts_match_snapshot;
        ] );
      ( "percentile",
        [ Alcotest.test_case "interpolated percentiles" `Quick test_percentile ] );
      ( "chrome",
        [
          Alcotest.test_case "JSON escaping" `Quick test_chrome_escape;
          Alcotest.test_case "unbalanced spans" `Quick test_chrome_unbalanced;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "span semantics" `Quick test_attrib_semantics;
          Alcotest.test_case "conservation on every setting" `Quick
            test_attrib_conservation;
          Alcotest.test_case "sinks never move the clock" `Quick
            test_attrib_sinks_free;
        ] );
      ( "export",
        [
          Alcotest.test_case "flame collapsed + tree" `Quick test_flame_export;
          Alcotest.test_case "metrics prometheus + json" `Quick
            test_metrics_export;
        ] );
      ( "audit",
        [
          Alcotest.test_case "chain roundtrip + close record" `Quick
            test_audit_chain_roundtrip;
          Alcotest.test_case "tampering rejected" `Quick
            test_audit_tamper_rejected;
          Alcotest.test_case "emitter audit rail" `Quick
            test_audit_emitter_rail;
        ] );
      ( "request",
        [
          Alcotest.test_case "ctx pack roundtrip" `Quick
            test_request_pack_roundtrip;
          Alcotest.test_case "single-emitter window" `Quick
            test_request_single_emitter_window;
          Alcotest.test_case "cross-machine tree" `Quick
            test_request_cross_machine_tree;
          Alcotest.test_case "sampling + latency" `Quick
            test_request_sampling_and_latency;
          Alcotest.test_case "chrome escaping of machine names" `Quick
            test_request_chrome_escaping;
        ] );
      ( "channel-ctx",
        [
          Alcotest.test_case "header encode/decode" `Quick
            test_channel_ctx_header;
          Alcotest.test_case "sealed propagation + strip" `Quick
            test_channel_ctx_propagation;
          Alcotest.test_case "machine assembles request tree" `Quick
            test_machine_request_tree;
        ] );
      ( "finalize",
        [
          Alcotest.test_case "abnormal exit flushes exports" `Quick
            test_finalize_on_abnormal_exit;
        ] );
      ( "window",
        [
          Alcotest.test_case "rotation + aging" `Quick test_window_rotation;
          Alcotest.test_case "merge-on-read percentiles" `Quick
            test_window_percentile;
          Alcotest.test_case "record path is allocation-free" `Quick
            test_window_record_allocation_free;
        ] );
      ( "slo",
        [
          Alcotest.test_case "multi-window fire + hysteretic clear" `Quick
            test_slo_fire_and_clear;
          Alcotest.test_case "slow burn alone never fires" `Quick
            test_slo_needs_both_windows;
        ] );
      ( "health",
        [
          Alcotest.test_case "stall ladder + recovery" `Quick
            test_health_stall_ladder;
          Alcotest.test_case "overrun + denial-spike watchdogs" `Quick
            test_health_overrun_and_spike;
        ] );
      ( "live",
        [
          Alcotest.test_case "live sinks never move the clock" `Quick
            test_live_sinks_clock_free;
          Alcotest.test_case "anchors byte-identical under telemetry" `Quick
            test_anchors_identical_under_telemetry;
          Alcotest.test_case "abnormal exit snapshots the dash" `Quick
            test_dash_snapshot_abnormal_exit;
        ] );
      ( "journal",
        [
          QCheck_alcotest.to_alcotest prop_journal_roundtrip;
          Alcotest.test_case "corruption rejected with precise errors" `Quick
            test_journal_corruption_rejected;
          Alcotest.test_case "kill mid-run: sealed prefix readable" `Quick
            test_journal_kill_mid_run;
          Alcotest.test_case "snapshot = journal replay" `Quick
            test_journal_snapshot_replay;
          Alcotest.test_case "query: filter + group-by" `Quick
            test_journal_query;
          Alcotest.test_case "critical path: queueing vs service" `Quick
            test_journal_critical;
          Alcotest.test_case "diff: self silent, slowdown flagged" `Quick
            test_journal_diff;
          Alcotest.test_case "frame offsets resolve" `Quick
            test_journal_frame_offsets;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "accuracy vs oracle (adversarial)" `Quick
            test_sketch_accuracy_adversarial;
          Alcotest.test_case "histogram cross-check" `Quick
            test_sketch_histogram_crosscheck;
          Alcotest.test_case "collapse + wire edges" `Quick
            test_sketch_collapse_and_edges;
          QCheck_alcotest.to_alcotest prop_sketch_merge_canonical;
        ] );
      ( "topk", [ QCheck_alcotest.to_alcotest prop_topk_bounds ] );
      ( "fleet-agg",
        [
          Alcotest.test_case "exemplar reservoir" `Quick
            test_exemplar_reservoir;
          Alcotest.test_case "seeded spike attributable end-to-end" `Quick
            test_agg_spike_attribution;
          Alcotest.test_case "record path is allocation-free" `Quick
            test_fleet_record_allocation_free;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "sketch families + EOF + exemplars" `Quick
            test_metrics_openmetrics_sketch;
          QCheck_alcotest.to_alcotest prop_escape_label_roundtrip;
          QCheck_alcotest.to_alcotest prop_escape_json_roundtrip;
        ] );
    ]
