(* Tests for the Gramine-like LibOS running inside Erebor sandboxes. *)

let hw_key = Crypto.Sha256.digest_string "fused hardware key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Ret ] };
      ];
  }

let make_env () =
  let mem = Hw.Phys_mem.create ~frames:32768 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:200_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "fw")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128
         ~cma_frames:8192)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  (mgr, kern)

let make_libos ?(heap_bytes = 64 * 4096) ?(threads = 4) ?(preload = []) mgr =
  let sb =
    Result.get_ok
      (Erebor.Sandbox.create_sandbox mgr ~name:"libos-sb" ~confined_budget:(256 * 4096))
  in
  (sb, Result.get_ok (Libos.boot ~mgr ~sb ~heap_bytes ~threads ~preload))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_alloc_free () =
  let h = Libos.Heap.create ~base:0x1000 ~len:4096 in
  let a = Option.get (Libos.Heap.alloc h 100) in
  let b = Option.get (Libos.Heap.alloc h 200) in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check int) "used" (112 + 208) (Libos.Heap.used_bytes h);
  Libos.Heap.free h a;
  Libos.Heap.free h b;
  Alcotest.(check int) "all free" 0 (Libos.Heap.used_bytes h);
  (* Coalescing: the full arena is allocatable again. *)
  Alcotest.(check bool) "coalesced" true (Libos.Heap.alloc h 4096 <> None)

let test_heap_exhaustion_and_double_free () =
  let h = Libos.Heap.create ~base:0 ~len:256 in
  let a = Option.get (Libos.Heap.alloc h 128) in
  Alcotest.(check (option int)) "exhausted" None (Libos.Heap.alloc h 200);
  Libos.Heap.free h a;
  Alcotest.check_raises "double free" (Invalid_argument "Heap.free: unknown or double-freed block")
    (fun () -> Libos.Heap.free h a)

let prop_heap_no_overlap =
  QCheck.Test.make ~name:"heap allocations never overlap" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 1 200))
    (fun sizes ->
      let h = Libos.Heap.create ~base:0 ~len:(1 lsl 16) in
      let blocks = List.filter_map (fun n -> Option.map (fun a -> (a, n)) (Libos.Heap.alloc h n)) sizes in
      let rec disjoint = function
        | [] -> true
        | (a, n) :: rest ->
            List.for_all (fun (b, m) -> a + n <= b || b + m <= a) rest && disjoint rest
      in
      disjoint blocks)

(* ------------------------------------------------------------------ *)
(* Spinlock                                                            *)
(* ------------------------------------------------------------------ *)

let test_spinlock () =
  let clock = Hw.Cycles.clock () in
  let l = Libos.Spinlock.create ~clock in
  Libos.Spinlock.with_lock l (fun () -> ());
  Alcotest.(check int) "one acquisition" 1 (Libos.Spinlock.acquisitions l);
  Alcotest.(check int) "uncontended" 0 (Libos.Spinlock.contended l);
  let t0 = Hw.Cycles.now clock in
  Libos.Spinlock.acquire l;
  Alcotest.(check int) "uncontended cost" Hw.Cycles.Cost.spinlock_acquire
    (Hw.Cycles.now clock - t0);
  (* Second acquire while held: contended, costs more. *)
  let t1 = Hw.Cycles.now clock in
  Libos.Spinlock.acquire l;
  Alcotest.(check bool) "contended costs more" true
    (Hw.Cycles.now clock - t1 > Hw.Cycles.Cost.spinlock_acquire);
  Alcotest.(check int) "contention counted" 1 (Libos.Spinlock.contended l);
  Libos.Spinlock.release l;
  Alcotest.check_raises "release unheld" (Invalid_argument "Spinlock.release: not held")
    (fun () -> Libos.Spinlock.release l)

(* ------------------------------------------------------------------ *)
(* Memfs + LibOS boot                                                  *)
(* ------------------------------------------------------------------ *)

let test_libos_boot_preload () =
  let mgr, kern = make_env () in
  let sb, libos =
    make_libos mgr ~preload:[ ("/lib/libc.so", Bytes.of_string "libc bytes");
                              ("/app/config", Bytes.of_string "cfg") ]
  in
  Alcotest.(check int) "threads pre-created" 4 (Libos.thread_count libos);
  Alcotest.(check int) "worker tasks exist" 3 (List.length (Erebor.Sandbox.threads sb));
  Alcotest.(check (list string)) "preloaded files" [ "/app/config"; "/lib/libc.so" ]
    (Libos.Memfs.list (Libos.fs libos));
  (match Libos.read_file libos "/lib/libc.so" with
  | Ok b -> Alcotest.(check string) "content" "libc bytes" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  ignore kern

let test_memfs_contents_in_confined_memory () =
  let mgr, kern = make_env () in
  let sb, libos = make_libos mgr in
  (match Libos.write_file libos "/tmp/scratch" (Bytes.of_string "CONFINED-DATA") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The payload physically lives in a CMA (confined) frame. *)
  let task = Erebor.Sandbox.main_task sb in
  let heap_page = Kernel.Layout.page_align_down (Libos.heap_base libos) in
  let pfn = Option.get (Kernel.resolve_pfn kern task ~addr:heap_page) in
  Alcotest.(check bool) "file bytes in CMA frames" true
    (Kernel.Alloc.is_allocated kern.Kernel.cma pfn)

let test_memfs_lifecycle () =
  let mgr, _ = make_env () in
  let _, libos = make_libos mgr in
  let fs = Libos.fs libos in
  (match Libos.Memfs.write_file fs "/a" (Bytes.of_string "one") with Ok () -> () | Error e -> Alcotest.fail e);
  (match Libos.Memfs.append_file fs "/a" (Bytes.of_string "+two") with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "append" (Some "one+two")
    (Option.map Bytes.to_string (Libos.Memfs.read_file fs "/a"));
  (* Rewriting a large file with a small one frees the old block. *)
  (match Libos.Memfs.write_file fs "/a" (Bytes.make 512 'y') with Ok () -> () | Error e -> Alcotest.fail e);
  let used_before = Libos.Heap.used_bytes (Libos.heap libos) in
  (match Libos.Memfs.write_file fs "/a" (Bytes.of_string "x") with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "old payload freed" true
    (Libos.Heap.used_bytes (Libos.heap libos) < used_before);
  Alcotest.(check bool) "removed" true (Libos.Memfs.remove fs "/a");
  Alcotest.(check bool) "gone" false (Libos.Memfs.exists fs "/a");
  (* Empty files are fine. *)
  (match Libos.Memfs.write_file fs "/empty" Bytes.empty with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option int)) "empty size" (Some 0) (Libos.Memfs.file_size fs "/empty")

let test_memfs_heap_exhaustion () =
  let mgr, _ = make_env () in
  let _, libos = make_libos mgr ~heap_bytes:(4 * 4096) in
  match Libos.write_file libos "/big" (Bytes.make (5 * 4096) 'x') with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized file accepted"

(* ------------------------------------------------------------------ *)
(* Runtime services after sealing                                      *)
(* ------------------------------------------------------------------ *)

let test_io_channel_after_seal () =
  let mgr, _ = make_env () in
  let sb, libos = make_libos mgr in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "prompt: hi")));
  (match Libos.recv_input libos with
  | Ok b -> Alcotest.(check string) "input via ioctl" "prompt: hi" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (match Libos.send_output libos (Bytes.of_string "answer") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "output shepherded" "answer"
    (Bytes.to_string (Erebor.Sandbox.take_output mgr sb));
  Alcotest.(check bool) "sandbox alive" true (Erebor.Sandbox.kill_reason sb = None)

let test_services_stay_inside_after_seal () =
  let mgr, kern = make_env () in
  let sb, libos = make_libos mgr in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "data")));
  let syscalls_before = kern.Kernel.stats.Kernel.syscalls in
  (* Heap, files, locks — all in-process; no kernel syscalls, no kill. *)
  let addr = Result.get_ok (Libos.malloc libos 4096) in
  Libos.store libos ~addr (Bytes.of_string "tmp");
  (match Libos.write_file libos "/tmp/t" (Bytes.of_string "temp file") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Libos.with_lock libos (fun () -> ());
  Libos.free libos addr;
  Alcotest.(check int) "no kernel syscalls" syscalls_before kern.Kernel.stats.Kernel.syscalls;
  Alcotest.(check bool) "not killed" true (Erebor.Sandbox.kill_reason sb = None)

let test_parallel_compute_scaling () =
  let mgr, kern = make_env () in
  let _, libos = make_libos mgr ~threads:8 in
  let t0 = Hw.Cycles.now kern.Kernel.clock in
  Libos.parallel_compute libos ~total_cycles:8_000_000 ~sync_ops:0;
  Alcotest.(check int) "8 threads split the work" 1_000_000 (Hw.Cycles.now kern.Kernel.clock - t0);
  let t1 = Hw.Cycles.now kern.Kernel.clock in
  Libos.parallel_compute libos ~total_cycles:0 ~sync_ops:10;
  Alcotest.(check bool) "sync adds cost" true (Hw.Cycles.now kern.Kernel.clock - t1 > 0)

let test_service_cost_accounting () =
  let mgr, kern = make_env () in
  let _, libos = make_libos mgr in
  let n0 = Libos.service_calls libos in
  let t0 = Hw.Cycles.now kern.Kernel.clock in
  ignore (Libos.malloc libos 64);
  Alcotest.(check int) "counted" (n0 + 1) (Libos.service_calls libos);
  Alcotest.(check int) "libos service cost" Hw.Cycles.Cost.libos_service
    (Hw.Cycles.now kern.Kernel.clock - t0)

(* ------------------------------------------------------------------ *)
(* POSIX surface                                                       *)
(* ------------------------------------------------------------------ *)

let make_posix () =
  let mgr, kern = make_env () in
  let sb, libos = make_libos mgr in
  ignore sb;
  ignore kern;
  (libos, Libos.Posix.attach libos)

let get = function Ok v -> v | Error e -> Alcotest.failf "errno %s" (Libos.Posix.errno_to_string e)

let test_posix_open_read_write () =
  let _, d = make_posix () in
  let fd = get (Libos.Posix.openf d "/tmp/f" [ Libos.Posix.O_CREAT; Libos.Posix.O_RDWR ]) in
  Alcotest.(check int) "write" 5 (get (Libos.Posix.write d fd (Bytes.of_string "hello")));
  Alcotest.(check int) "append write" 6 (get (Libos.Posix.write d fd (Bytes.of_string " world")));
  ignore (get (Libos.Posix.lseek d fd 0 Libos.Posix.SEEK_SET));
  Alcotest.(check string) "read back" "hello world"
    (Bytes.to_string (get (Libos.Posix.read d fd 64)));
  Alcotest.(check string) "eof" "" (Bytes.to_string (get (Libos.Posix.read d fd 64)));
  get (Libos.Posix.close d fd);
  (match Libos.Posix.read d fd 1 with
  | Error Libos.Posix.EBADF -> ()
  | _ -> Alcotest.fail "read after close");
  Alcotest.(check int) "no leaked fds" 0 (Libos.Posix.open_fds d)

let test_posix_flags () =
  let _, d = make_posix () in
  (match Libos.Posix.openf d "/absent" [ Libos.Posix.O_RDONLY ] with
  | Error Libos.Posix.ENOENT -> ()
  | _ -> Alcotest.fail "open absent");
  let fd = get (Libos.Posix.openf d "/f" [ Libos.Posix.O_CREAT ]) in
  get (Libos.Posix.close d fd);
  (match Libos.Posix.openf d "/f" [ Libos.Posix.O_CREAT; Libos.Posix.O_EXCL ] with
  | Error Libos.Posix.EEXIST -> ()
  | _ -> Alcotest.fail "excl on existing");
  (* O_TRUNC clears. *)
  let fd = get (Libos.Posix.openf d "/f" [ Libos.Posix.O_RDWR ]) in
  ignore (get (Libos.Posix.write d fd (Bytes.of_string "content")));
  get (Libos.Posix.close d fd);
  let fd = get (Libos.Posix.openf d "/f" [ Libos.Posix.O_RDWR; Libos.Posix.O_TRUNC ]) in
  Alcotest.(check int) "truncated" 0 (get (Libos.Posix.stat_size d "/f"));
  get (Libos.Posix.close d fd);
  (* Read-only write fails. *)
  let fd = get (Libos.Posix.openf d "/f" [ Libos.Posix.O_RDONLY ]) in
  match Libos.Posix.write d fd (Bytes.of_string "x") with
  | Error Libos.Posix.EACCES -> ()
  | _ -> Alcotest.fail "write to rdonly"

let test_posix_seek_sparse () =
  let _, d = make_posix () in
  let fd = get (Libos.Posix.openf d "/s" [ Libos.Posix.O_CREAT; Libos.Posix.O_RDWR ]) in
  ignore (get (Libos.Posix.lseek d fd 10 Libos.Posix.SEEK_SET));
  ignore (get (Libos.Posix.write d fd (Bytes.of_string "x")));
  Alcotest.(check int) "sparse size" 11 (get (Libos.Posix.stat_size d "/s"));
  ignore (get (Libos.Posix.lseek d fd 0 Libos.Posix.SEEK_SET));
  let data = get (Libos.Posix.read d fd 11) in
  Alcotest.(check char) "hole is zero" '\000' (Bytes.get data 0);
  Alcotest.(check char) "written byte" 'x' (Bytes.get data 10);
  (match Libos.Posix.lseek d fd (-99) Libos.Posix.SEEK_CUR with
  | Error Libos.Posix.EINVAL -> ()
  | _ -> Alcotest.fail "negative seek")

let test_posix_append_rename_unlink () =
  let _, d = make_posix () in
  let fd = get (Libos.Posix.openf d "/log" [ Libos.Posix.O_CREAT; Libos.Posix.O_APPEND ]) in
  ignore (get (Libos.Posix.write d fd (Bytes.of_string "a")));
  ignore (get (Libos.Posix.lseek d fd 0 Libos.Posix.SEEK_SET));
  ignore (get (Libos.Posix.write d fd (Bytes.of_string "b")));
  Alcotest.(check int) "append ignores pos" 2 (get (Libos.Posix.stat_size d "/log"));
  get (Libos.Posix.rename d "/log" "/archive");
  (match Libos.Posix.stat_size d "/log" with
  | Error Libos.Posix.ENOENT -> ()
  | _ -> Alcotest.fail "old name survives rename");
  Alcotest.(check int) "renamed" 2 (get (Libos.Posix.stat_size d "/archive"));
  get (Libos.Posix.unlink d "/archive");
  match Libos.Posix.unlink d "/archive" with
  | Error Libos.Posix.ENOENT -> ()
  | _ -> Alcotest.fail "double unlink"

let test_posix_dup () =
  let _, d = make_posix () in
  let fd = get (Libos.Posix.openf d "/d" [ Libos.Posix.O_CREAT; Libos.Posix.O_RDWR ]) in
  ignore (get (Libos.Posix.write d fd (Bytes.of_string "abcdef")));
  ignore (get (Libos.Posix.lseek d fd 2 Libos.Posix.SEEK_SET));
  let fd2 = get (Libos.Posix.dup d fd) in
  Alcotest.(check string) "dup inherits offset" "cd"
    (Bytes.to_string (get (Libos.Posix.read d fd2 2)));
  (* Independent offsets afterwards. *)
  Alcotest.(check string) "original offset unmoved" "cdef"
    (Bytes.to_string (get (Libos.Posix.read d fd 4)))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "libos"
    [
      ( "heap",
        [
          Alcotest.test_case "alloc/free" `Quick test_heap_alloc_free;
          Alcotest.test_case "exhaustion/double free" `Quick test_heap_exhaustion_and_double_free;
          qt prop_heap_no_overlap;
        ] );
      ("spinlock", [ Alcotest.test_case "semantics" `Quick test_spinlock ]);
      ( "memfs",
        [
          Alcotest.test_case "boot preload" `Quick test_libos_boot_preload;
          Alcotest.test_case "contents confined" `Quick test_memfs_contents_in_confined_memory;
          Alcotest.test_case "lifecycle" `Quick test_memfs_lifecycle;
          Alcotest.test_case "heap exhaustion" `Quick test_memfs_heap_exhaustion;
        ] );
      ( "posix",
        [
          Alcotest.test_case "open/read/write" `Quick test_posix_open_read_write;
          Alcotest.test_case "flags" `Quick test_posix_flags;
          Alcotest.test_case "seek/sparse" `Quick test_posix_seek_sparse;
          Alcotest.test_case "append/rename/unlink" `Quick test_posix_append_rename_unlink;
          Alcotest.test_case "dup" `Quick test_posix_dup;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "io channel" `Quick test_io_channel_after_seal;
          Alcotest.test_case "in-process services" `Quick test_services_stay_inside_after_seal;
          Alcotest.test_case "parallel compute" `Quick test_parallel_compute_scaling;
          Alcotest.test_case "service cost" `Quick test_service_cost_accounting;
        ] );
    ]
